// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (run them all with `go test -bench=. -benchmem`), plus
// ablation benchmarks for the design choices DESIGN.md calls out.
//
// The figure benchmarks report the paper's metrics as custom units:
// quality (mean approximation ratio, paper hovers in [0.9, 1.1]) and
// speedup over random sampling (paper: web ≈2.7×, social ≈2.0×,
// community ≈1.4×, road ≈2.0×). Dataset sizes are scaled down via
// benchScale so a full run stays in CPU-minutes; raise it to stress.
package brics_test

import (
	"testing"

	brics "repro"
	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/queue"
	"repro/internal/reduce"
	"repro/internal/stats"
)

// benchScale shrinks the Table I stand-ins for benchmarking (1.0 = the
// cmd/experiments default sizes).
const benchScale = 0.25

func benchConfig() experiments.Config {
	return experiments.Config{Scale: benchScale, Seed: 1}
}

// BenchmarkTableI regenerates Table I: the reduction pipeline plus
// biconnected decomposition over all twelve datasets.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableI(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 12 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func benchFig4(b *testing.B, cumFrac, randFrac float64) {
	b.Helper()
	var rows []experiments.CompareRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig4(benchConfig(), cumFrac, randFrac)
		if err != nil {
			b.Fatal(err)
		}
	}
	var q, sp float64
	for _, r := range rows {
		q += r.CumQuality
		sp += r.Speedup
	}
	b.ReportMetric(q/float64(len(rows)), "quality")
	b.ReportMetric(sp/float64(len(rows)), "speedup")
}

// BenchmarkFig4a: Cumulative vs Random, both at 40% sampling.
func BenchmarkFig4a(b *testing.B) { benchFig4(b, 0.4, 0.4) }

// BenchmarkFig4b: Cumulative at 20% vs Random at 30%.
func BenchmarkFig4b(b *testing.B) { benchFig4(b, 0.2, 0.3) }

// BenchmarkFig5 regenerates the per-node AR comparison on the social graph.
func BenchmarkFig5(b *testing.B) {
	var res *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig5(benchConfig(), 0.3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.BiCCSumm.Mean, "bicc-quality")
	b.ReportMetric(res.RandomSumm.Mean, "random-quality")
}

func benchFigClass(b *testing.B, class gen.Class) {
	b.Helper()
	var rows []experiments.ConfigResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.FigClass(benchConfig(), class, 0.4)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the cumulative (last configuration) averages.
	var q, sp float64
	n := 0
	for _, r := range rows {
		if r.Config != 0 && r.Config&core.TechBiCC != 0 {
			q += r.Quality
			sp += r.Speedup
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(q/float64(n), "quality")
		b.ReportMetric(sp/float64(n), "speedup")
	}
}

// BenchmarkFig6: web-graph ablation (C+R, I+C+R, Cumulative).
func BenchmarkFig6(b *testing.B) { benchFigClass(b, gen.ClassWeb) }

// BenchmarkFig7: social-graph ablation (C, I+C, B+I+C).
func BenchmarkFig7(b *testing.B) { benchFigClass(b, gen.ClassSocial) }

// BenchmarkFig8: community-network ablation (C+R, I+C+R, Cumulative).
func BenchmarkFig8(b *testing.B) { benchFigClass(b, gen.ClassCommunity) }

// BenchmarkFig9: road-network ablation (C, B+C).
func BenchmarkFig9(b *testing.B) { benchFigClass(b, gen.ClassRoad) }

// ---- ablation benchmarks beyond the paper's figures ----

func webGraph(b *testing.B) *graph.Graph {
	b.Helper()
	return gen.Web(6000, 1)
}

// BenchmarkEstimator compares the two extrapolation rules at equal cost
// (same traversals, different assembly); quality is the interesting metric.
func BenchmarkEstimator(b *testing.B) {
	g := webGraph(b)
	actual := core.ExactFarness(g, 0)
	for _, kind := range []struct {
		name string
		k    core.EstimatorKind
	}{{"weighted", core.EstimatorWeighted}, {"paper", core.EstimatorPaper}} {
		b.Run(kind.name, func(b *testing.B) {
			var q float64
			for i := 0; i < b.N; i++ {
				res, err := core.Estimate(g, core.Options{
					Techniques:     core.TechCumulative,
					SampleFraction: 0.2,
					Seed:           1,
					Estimator:      kind.k,
				})
				if err != nil {
					b.Fatal(err)
				}
				q = stats.Quality(res.Farness, actual)
			}
			b.ReportMetric(q, "quality")
		})
	}
}

// BenchmarkExactPropagation measures the closed-form propagation's effect
// (Facts III.3/III.4 generalised) against plain sampled estimates.
func BenchmarkExactPropagation(b *testing.B) {
	g := webGraph(b)
	actual := core.ExactFarness(g, 0)
	for _, c := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		b.Run(c.name, func(b *testing.B) {
			var q float64
			for i := 0; i < b.N; i++ {
				res, err := core.Estimate(g, core.Options{
					Techniques:              core.TechCumulative,
					SampleFraction:          0.2,
					Seed:                    1,
					DisableExactPropagation: c.disable,
				})
				if err != nil {
					b.Fatal(err)
				}
				q = stats.Quality(res.Farness, actual)
			}
			b.ReportMetric(q, "quality")
		})
	}
}

// BenchmarkReductionStages times each reduction stage in isolation.
func BenchmarkReductionStages(b *testing.B) {
	g := webGraph(b)
	for _, c := range []struct {
		name string
		opts reduce.Options
	}{
		{"I", reduce.Options{Twins: true}},
		{"C", reduce.Options{Chains: true}},
		{"R", reduce.Options{Redundant: true}},
		{"ICR", reduce.All()},
	} {
		b.Run(c.name, func(b *testing.B) {
			var removed int
			for i := 0; i < b.N; i++ {
				red, err := reduce.Run(g, c.opts)
				if err != nil {
					b.Fatal(err)
				}
				removed = red.NumRemoved()
			}
			b.ReportMetric(float64(removed), "removed")
		})
	}
}

// BenchmarkTraversalKernels compares plain BFS, direction-optimising BFS
// and Dial's algorithm on the same (unweighted) graph.
func BenchmarkTraversalKernels(b *testing.B) {
	g := gen.Social(20000, 2)
	wg := g.ToWeighted()
	n := g.NumNodes()
	dist := make([]int32, n)
	q := queue.NewFIFO(n)
	bq := queue.NewBucket(1)
	b.Run("bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bfs.Distances(g, graph.NodeID(i%n), dist, q)
		}
	})
	b.Run("direction-optimizing", func(b *testing.B) {
		s := &bfs.Scratch{}
		for i := 0; i < b.N; i++ {
			bfs.HybridDistances(g, graph.NodeID(i%n), dist, s)
		}
	})
	b.Run("dial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bfs.WDistances(wg, graph.NodeID(i%n), dist, bq)
		}
	})
}

// BenchmarkTraversalEngines compares the per-source and batched (64-wide
// bit-parallel multi-source) traversal engines on all four generator
// families at the paper's 20% sampling fraction, for both the random
// baseline (unreduced, unweighted graph) and the full cumulative estimator
// (per-block batching on the weighted reduced graph). Both engines produce
// identical farness values; the interesting number is wall-clock per op.
func BenchmarkTraversalEngines(b *testing.B) {
	families := []struct {
		name  string
		build func(n int, seed int64) *graph.Graph
	}{
		{"web", gen.Web},
		{"social", gen.Social},
		{"community", gen.Community},
		{"road", gen.Road},
	}
	modes := []struct {
		name string
		mode core.TraversalMode
	}{
		{"per-source", core.TraversalPerSource},
		{"batched", core.TraversalBatched},
	}
	for _, fam := range families {
		g := fam.build(6000, 1)
		for _, m := range modes {
			b.Run(fam.name+"/random20/"+m.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					core.RandomSamplingMode(g, 0.2, 0, 1, m.mode)
				}
			})
			b.Run(fam.name+"/cumulative20/"+m.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Estimate(g, core.Options{
						Techniques:     core.TechCumulative,
						SampleFraction: 0.2,
						Seed:           1,
						Traversal:      m.mode,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEndToEnd is the headline number: full BRICS vs the baseline on a
// mid-size web graph at the paper's recommended operating point
// (cumulative @ 20% vs random @ 30%, Fig. 4(b)).
func BenchmarkEndToEnd(b *testing.B) {
	g := webGraph(b)
	b.Run("random30", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			brics.RandomSampling(g, 0.3, 0, 1)
		}
	})
	b.Run("brics20", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := brics.Estimate(g, brics.Options{
				Techniques:     brics.TechCumulative,
				SampleFraction: 0.2,
				Seed:           1,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
