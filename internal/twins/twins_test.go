package twins

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bfs"
	"repro/internal/graph"
)

func TestOpenTwins(t *testing.T) {
	// 0 and 1 both adjacent to {2,3} and nothing else: open twins.
	// (2 and 3 are additionally closed twins: N[2] = N[3] = {0,1,2,3}.)
	g := graph.FromEdges(4, [][2]int32{{0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	r := Find(g)
	if len(r.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(r.Groups))
	}
	var open *Group
	for i := range r.Groups {
		if r.Groups[i].Kind == Open {
			open = &r.Groups[i]
		}
	}
	if open == nil {
		t.Fatal("no open group found")
	}
	if len(open.Members) != 2 || open.Members[0] != 0 || open.Members[1] != 1 {
		t.Fatalf("members = %v, want [0 1]", open.Members)
	}
	if open.Dist() != 2 {
		t.Fatalf("Dist = %d, want 2", open.Dist())
	}
	if !r.IsRemoved(1) || r.IsRemoved(0) {
		t.Error("rep/removal flags wrong")
	}
	if r.Removed != 2 {
		t.Errorf("Removed = %d, want 2 (one twin from each group)", r.Removed)
	}
}

func TestClosedTwins(t *testing.T) {
	// Triangle 0-1-2 plus both 0 and 1 adjacent to 3: N[0] = N[1] = {0,1,2,3}.
	// (2 and 3 are additionally open twins: N(2) = N(3) = {0,1}.)
	g := graph.FromEdges(4, [][2]int32{{0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3}})
	r := Find(g)
	if len(r.Groups) != 2 {
		t.Fatalf("groups = %d, want 2: %+v", len(r.Groups), r.Groups)
	}
	var grp *Group
	for i := range r.Groups {
		if r.Groups[i].Kind == Closed {
			grp = &r.Groups[i]
		}
	}
	if grp == nil {
		t.Fatal("no closed group found")
	}
	if grp.Dist() != 1 {
		t.Fatalf("Dist = %d, want 1", grp.Dist())
	}
	if len(grp.Members) != 2 || grp.Members[0] != 0 || grp.Members[1] != 1 {
		t.Fatalf("members = %v, want [0 1]", grp.Members)
	}
}

func TestLeafTwins(t *testing.T) {
	// Two leaves on the same hub are open twins.
	g := graph.FromEdges(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}})
	r := Find(g)
	if len(r.Groups) != 1 || len(r.Groups[0].Members) != 3 {
		t.Fatalf("want one group of 3 leaves, got %+v", r.Groups)
	}
}

func TestNoTwins(t *testing.T) {
	g := graph.FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	r := Find(g)
	if len(r.Groups) != 0 || r.Removed != 0 {
		t.Fatalf("path should have no twins, got %+v", r.Groups)
	}
}

func TestGroupTransitivity(t *testing.T) {
	// Three mutual open twins {0,1,2} hanging off {3,4}; nodes 3 and 4
	// are themselves open twins (N = {0,1,2}).
	g := graph.FromEdges(5, [][2]int32{{0, 3}, {0, 4}, {1, 3}, {1, 4}, {2, 3}, {2, 4}})
	r := Find(g)
	if len(r.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(r.Groups))
	}
	var big *Group
	for i := range r.Groups {
		if len(r.Groups[i].Members) == 3 {
			big = &r.Groups[i]
		}
	}
	if big == nil {
		t.Fatal("no group of size 3 found")
	}
	for _, m := range []graph.NodeID{1, 2} {
		if r.RepOf[m] != 0 {
			t.Errorf("RepOf[%d] = %d, want 0", m, r.RepOf[m])
		}
	}
}

func randomConnected(rng *rand.Rand, n int, extra int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(int32(rng.Intn(i)), int32(i))
	}
	for i := 0; i < extra; i++ {
		_ = b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.Build()
}

// Property: twins found by hashing match the brute-force definition, and
// every twin group has identical exact farness (the paper's core claim).
func TestTwinsMatchBruteForceAndFarness(t *testing.T) {
	sameList := func(a, b []graph.NodeID) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(25) + 3
		g := randomConnected(rng, n, 2*n)
		r := Find(g)
		// Brute force pair check: any twin pair must be grouped together,
		// and any grouped pair must be twins.
		for u := int32(0); u < int32(n); u++ {
			for v := u + 1; v < int32(n); v++ {
				open := sameOpen(g, u, v)
				closed := sameClosed(g, u, v)
				grouped := r.GroupOf[u] >= 0 && r.GroupOf[u] == r.GroupOf[v]
				if (open || closed) != grouped {
					// A node can belong to only one group; a u,v pair
					// that is twin-related through *different* relations
					// than its assigned groups is legitimate only if
					// both already sit in (distinct) groups.
					if (open || closed) && r.GroupOf[u] >= 0 && r.GroupOf[v] >= 0 {
						continue
					}
					return false
				}
				_ = sameList
			}
		}
		// Farness equality inside each group.
		far := bfs.ExactFarness(g, 1)
		for _, grp := range r.Groups {
			for _, m := range grp.Members[1:] {
				if far[m] != far[grp.Rep()] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if Open.String() != "open" || Closed.String() != "closed" {
		t.Error("Kind.String broken")
	}
}
