// Package twins implements the "I" of BRICS: detection of identical nodes
// (Section III-A of the paper). Two nodes are open twins when they have the
// same open neighbourhood N(u) = N(v) (they are then non-adjacent and at
// mutual distance exactly 2 through any shared neighbour), and closed twins
// when N[u] = N[v] (they are then adjacent, mutual distance 1). Either kind
// of group shares a single farness value, so all but one representative can
// be removed from the graph, with the representative carrying the group's
// population weight.
//
// Detection hashes each node's sorted adjacency list (the paper: "by hashing
// the neighbour list of each node, we can find all the groups of identical
// nodes") and confirms candidate groups by exact list comparison, so hash
// collisions cannot create false twins.
package twins

import (
	"hash/maphash"
	"sort"

	"repro/internal/graph"
	"repro/internal/par"
)

// Kind distinguishes the two twin relations.
type Kind uint8

const (
	// Open marks groups with equal open neighbourhoods; members are
	// pairwise non-adjacent at distance 2.
	Open Kind = iota
	// Closed marks groups with equal closed neighbourhoods; members are
	// pairwise adjacent at distance 1.
	Closed
)

// String returns "open" or "closed".
func (k Kind) String() string {
	if k == Closed {
		return "closed"
	}
	return "open"
}

// Group is one set of mutually identical nodes. Members are sorted; the
// first member is the representative that stays in the reduced graph.
type Group struct {
	Members []graph.NodeID
	Kind    Kind
}

// Rep returns the group's representative (its smallest member).
func (g *Group) Rep() graph.NodeID { return g.Members[0] }

// Dist returns the pairwise distance between any two members of the group:
// 1 for closed twins, 2 for open twins.
func (g *Group) Dist() int32 {
	if g.Kind == Closed {
		return 1
	}
	return 2
}

// Result of twin detection over a graph.
type Result struct {
	// Groups lists every twin group with at least two members.
	Groups []Group
	// RepOf maps each node to its representative: itself for nodes that
	// stay, the group representative for removed twins.
	RepOf []graph.NodeID
	// GroupOf maps each node to its index in Groups, or -1.
	GroupOf []int32
	// Removed is the number of nodes a reduction pass may delete
	// (Σ (len(group)-1)).
	Removed int
}

// IsRemoved reports whether node v is a non-representative twin.
func (r *Result) IsRemoved(v graph.NodeID) bool { return r.RepOf[v] != v }

var seed = maphash.MakeSeed()

func hashList(nbrs []graph.NodeID, extra graph.NodeID) uint64 {
	var h maphash.Hash
	h.SetSeed(seed)
	var buf [4]byte
	write := func(v graph.NodeID) {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		_, _ = h.Write(buf[:])
	}
	// Adjacency is sorted; fold extra (the node itself, for closed
	// neighbourhoods) into its sorted position so equal closed
	// neighbourhoods hash equally.
	if extra < 0 {
		for _, v := range nbrs {
			write(v)
		}
	} else {
		placed := false
		for _, v := range nbrs {
			if !placed && extra < v {
				write(extra)
				placed = true
			}
			write(v)
		}
		if !placed {
			write(extra)
		}
	}
	return h.Sum64()
}

func sameOpen(g *graph.Graph, u, v graph.NodeID) bool {
	a, b := g.Neighbors(u), g.Neighbors(v)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameClosed reports N[u] == N[v]. Since adjacency excludes self, this holds
// iff u∈N(v), v∈N(u) and N(u)\{v} == N(v)\{u}.
func sameClosed(g *graph.Graph, u, v graph.NodeID) bool {
	a, b := g.Neighbors(u), g.Neighbors(v)
	if len(a) != len(b) {
		return false
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		if x == v {
			i++
			continue
		}
		if y == u {
			j++
			continue
		}
		if x != y {
			return false
		}
		i++
		j++
	}
	for i < len(a) && a[i] == v {
		i++
	}
	for j < len(b) && b[j] == u {
		j++
	}
	if i != len(a) || j != len(b) {
		return false
	}
	// The skipped entries must actually have been present (adjacency).
	return g.HasEdge(u, v)
}

// Find detects all twin groups of g. Nodes of degree 0 are ignored (the
// pipeline operates on connected graphs where they cannot occur). Each node
// joins at most one group; open grouping takes precedence, matching the
// paper's single identical-nodes pass. Find is FindWorkers at one worker —
// every worker count yields the same Result.
func Find(g *graph.Graph) *Result { return FindWorkers(g, 1) }

// FindWorkers is Find with the neighbourhood hashing and candidate
// verification spread over the given number of workers (<1 means
// GOMAXPROCS). Per-node hashes are computed in a data-parallel pass, the
// hash space is sharded across workers (each shard buckets and verifies its
// own candidates — groups are exact-equality classes, so their membership
// does not depend on discovery order), and the merged groups are sorted by
// representative. The output is bit-identical for every worker count:
// groups listed open-pass first, each pass sorted by representative,
// members ascending.
func FindWorkers(g *graph.Graph, workers int) *Result {
	n := g.NumNodes()
	workers = par.Workers(workers)
	res := &Result{
		RepOf:   make([]graph.NodeID, n),
		GroupOf: make([]int32, n),
	}
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			res.RepOf[v] = graph.NodeID(v)
			res.GroupOf[v] = -1
		}
	})
	assigned := make([]bool, n)
	hashes := make([]uint64, n)

	// collect finds the canonical equality groups of one pass: hash every
	// live node, shard candidates by hash across workers, verify each
	// bucket by exact list comparison, then order the discovered groups by
	// representative. assigned is read-only here; apply() commits a pass.
	collect := func(kind Kind) []Group {
		par.ForBlocks(n, workers, func(_, lo, hi int) {
			for v := lo; v < hi; v++ {
				if assigned[v] || g.Degree(graph.NodeID(v)) == 0 {
					continue
				}
				if kind == Open {
					hashes[v] = hashList(g.Neighbors(graph.NodeID(v)), -1)
				} else {
					hashes[v] = hashList(g.Neighbors(graph.NodeID(v)), graph.NodeID(v))
				}
			}
		})
		shards := workers
		perShard := make([][]Group, shards)
		par.For(shards, workers, func(s int) {
			buckets := make(map[uint64][]graph.NodeID)
			for v := 0; v < n; v++ {
				if assigned[v] || g.Degree(graph.NodeID(v)) == 0 {
					continue
				}
				h := hashes[v]
				if int(h%uint64(shards)) != s {
					continue
				}
				buckets[h] = append(buckets[h], graph.NodeID(v))
			}
			var local []Group
			for _, cand := range buckets {
				if len(cand) < 2 {
					continue
				}
				sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
				used := make([]bool, len(cand))
				for i := 0; i < len(cand); i++ {
					if used[i] {
						continue
					}
					members := []graph.NodeID{cand[i]}
					for j := i + 1; j < len(cand); j++ {
						if used[j] {
							continue
						}
						var eq bool
						if kind == Open {
							eq = sameOpen(g, cand[i], cand[j])
						} else {
							eq = sameClosed(g, cand[i], cand[j])
						}
						if eq {
							members = append(members, cand[j])
							used[j] = true
						}
					}
					if len(members) >= 2 {
						local = append(local, Group{Members: members, Kind: kind})
					}
				}
			}
			perShard[s] = local
		})
		var groups []Group
		for _, local := range perShard {
			groups = append(groups, local...)
		}
		sort.Slice(groups, func(i, j int) bool { return groups[i].Members[0] < groups[j].Members[0] })
		return groups
	}

	apply := func(groups []Group) {
		for _, grp := range groups {
			gi := int32(len(res.Groups))
			res.Groups = append(res.Groups, grp)
			for _, m := range grp.Members {
				assigned[m] = true
				res.GroupOf[m] = gi
				res.RepOf[m] = grp.Members[0]
			}
			res.Removed += len(grp.Members) - 1
		}
	}

	apply(collect(Open))
	apply(collect(Closed))
	return res
}
