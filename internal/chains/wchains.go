package chains

import (
	"repro/internal/graph"
)

// WChain is a chain discovered in a *weighted* (already contracted) graph.
// Removing twins, chains and redundant nodes exposes new degree-≤2 nodes
// that the paper's single pass leaves in place; iterating the reduction
// (reduce.RunIterative) contracts them too, and those chains carry
// non-unit edge weights.
type WChain struct {
	// U and V are the anchors; V is -1 for dangling chains and equals U
	// for pendant cycles.
	U, V graph.NodeID
	// Interior lists the removed nodes in path order from U.
	Interior []graph.NodeID
	// Offsets[i] is the weighted distance from U to Interior[i] along the
	// chain (strictly increasing).
	Offsets []int32
	// Total is the weighted length of the whole chain from U to V
	// (meaningful for Parallel and Cycle chains; for Dangling chains it
	// equals Offsets[len-1]).
	Total int32
	// Type classifies the chain exactly like the unweighted case.
	Type Type
}

// WResult of weighted chain discovery.
type WResult struct {
	Chains []WChain
	// Removed counts interior nodes.
	Removed int
	// WholeGraph marks a pure weighted path/cycle input.
	WholeGraph bool
}

// WFind discovers maximal chains of degree-≤2 nodes in a weighted graph,
// mirroring Find but tracking weighted offsets.
func WFind(g *graph.WGraph) *WResult {
	n := g.NumNodes()
	res := &WResult{}
	isInterior := func(v graph.NodeID) bool {
		d := g.Degree(v)
		return d == 1 || d == 2
	}
	anchors := 0
	for v := 0; v < n; v++ {
		if !isInterior(graph.NodeID(v)) {
			anchors++
		}
	}
	if anchors == 0 {
		res.WholeGraph = n > 0
		return res
	}
	visited := make([]bool, n)

	// walk follows a degree-≤2 run from `first` (entered from `from` over
	// an edge of weight w0), accumulating weighted offsets.
	walk := func(from, first graph.NodeID, w0 int32) (interior []graph.NodeID, offsets []int32, end graph.NodeID, total int32) {
		prev, cur := from, first
		dist := w0
		for {
			if !isInterior(cur) {
				return interior, offsets, cur, dist
			}
			visited[cur] = true
			interior = append(interior, cur)
			offsets = append(offsets, dist)
			if g.Degree(cur) == 1 {
				return interior, offsets, -1, dist
			}
			nbrs := g.Neighbors(cur)
			ws := g.Weights(cur)
			ni := 0
			if nbrs[0] == prev {
				ni = 1
			}
			dist += ws[ni]
			prev, cur = cur, nbrs[ni]
		}
	}

	for a := 0; a < n; a++ {
		u := graph.NodeID(a)
		if isInterior(u) {
			continue
		}
		nbrs := g.Neighbors(u)
		ws := g.Weights(u)
		for i, first := range nbrs {
			if !isInterior(first) || visited[first] {
				continue
			}
			interior, offsets, end, total := walk(u, first, ws[i])
			c := WChain{U: u, V: end, Interior: interior, Offsets: offsets, Total: total}
			switch {
			case end == -1:
				c.Type = Dangling
				c.Total = offsets[len(offsets)-1]
			case end == u:
				c.Type = Cycle
			default:
				c.Type = Parallel
			}
			res.Chains = append(res.Chains, c)
			res.Removed += len(interior)
		}
	}
	return res
}

// InteriorDistance returns d(s, Interior[i]) given anchor distances, the
// weighted analogue of the paper's Algorithm 2 split formula.
func (c *WChain) InteriorDistance(du, dv int32, i int) int32 {
	off := c.Offsets[i]
	switch c.Type {
	case Dangling:
		return du + off
	case Cycle:
		other := c.Total - off
		if other < off {
			off = other
		}
		return du + off
	default:
		a := du + off
		b := dv + c.Total - off
		if b < a {
			return b
		}
		return a
	}
}

// SumInteriorDistances returns Σ_i d(s, Interior[i]) in O(ℓ); unlike the
// unit-weight case there is no closed form over arbitrary offsets.
func (c *WChain) SumInteriorDistances(du, dv int32) int64 {
	var s int64
	for i := range c.Interior {
		s += int64(c.InteriorDistance(du, dv, i))
	}
	return s
}

// walkNext helper note: the two-neighbour selection above picks the
// non-`prev` neighbour. A pendant cycle's closing step (cur adjacent to u
// twice is impossible in a simple weighted graph) terminates because u is
// an anchor.
