package chains

import (
	"repro/internal/graph"
	"repro/internal/par"
)

// WChain is a chain discovered in a *weighted* (already contracted) graph.
// Removing twins, chains and redundant nodes exposes new degree-≤2 nodes
// that the paper's single pass leaves in place; iterating the reduction
// (reduce.RunIterative) contracts them too, and those chains carry
// non-unit edge weights.
type WChain struct {
	// U and V are the anchors; V is -1 for dangling chains and equals U
	// for pendant cycles.
	U, V graph.NodeID
	// Interior lists the removed nodes in path order from U.
	Interior []graph.NodeID
	// Offsets[i] is the weighted distance from U to Interior[i] along the
	// chain (strictly increasing).
	Offsets []int32
	// Total is the weighted length of the whole chain from U to V
	// (meaningful for Parallel and Cycle chains; for Dangling chains it
	// equals Offsets[len-1]).
	Total int32
	// Type classifies the chain exactly like the unweighted case.
	Type Type
}

// WResult of weighted chain discovery.
type WResult struct {
	Chains []WChain
	// Removed counts interior nodes.
	Removed int
	// WholeGraph marks a pure weighted path/cycle input.
	WholeGraph bool
}

// WFind discovers maximal chains of degree-≤2 nodes in a weighted graph,
// mirroring Find but tracking weighted offsets. WFind is WFindWorkers at
// one worker — every worker count yields the same WResult.
func WFind(g *graph.WGraph) *WResult { return WFindWorkers(g, 1) }

// WFindWorkers fans weighted chain discovery out over the anchors with the
// same canonical ownership rule as FindWorkers (smaller anchor owns a
// Parallel chain, smaller entry owns a pendant cycle), so the result is
// bit-identical to the sequential scan for every worker count — including
// the direction-dependent Offsets of cycles, which are always enumerated
// from the smaller entry.
func WFindWorkers(g *graph.WGraph, workers int) *WResult {
	n := g.NumNodes()
	workers = par.Workers(workers)
	res := &WResult{}
	interior := make([]bool, n)
	anchors := anchorScan(n, workers, g.Degree, interior)
	if anchors == nil {
		res.WholeGraph = n > 0
		return res
	}

	// walk follows a degree-≤2 run from `first` (entered from `from` over
	// an edge of weight w0), accumulating weighted offsets. Read-only.
	walk := func(from, first graph.NodeID, w0 int32) (run []graph.NodeID, offsets []int32, end graph.NodeID, total int32) {
		prev, cur := from, first
		dist := w0
		for {
			if !interior[cur] {
				return run, offsets, cur, dist
			}
			run = append(run, cur)
			offsets = append(offsets, dist)
			if g.Degree(cur) == 1 {
				return run, offsets, -1, dist
			}
			nbrs := g.Neighbors(cur)
			ws := g.Weights(cur)
			ni := 0
			if nbrs[0] == prev {
				ni = 1
			}
			dist += ws[ni]
			prev, cur = cur, nbrs[ni]
		}
	}

	perAnchor := make([][]WChain, len(anchors))
	par.ForDynamic(len(anchors), workers, 32, func(_, ai int) {
		u := anchors[ai]
		nbrs := g.Neighbors(u)
		ws := g.Weights(u)
		var local []WChain
		for i, first := range nbrs {
			if !interior[first] {
				continue
			}
			run, offsets, end, total := walk(u, first, ws[i])
			c := WChain{U: u, V: end, Interior: run, Offsets: offsets, Total: total}
			switch {
			case end == -1:
				c.Type = Dangling
				c.Total = offsets[len(offsets)-1]
			case end == u:
				if len(run) > 1 && run[0] > run[len(run)-1] {
					continue // owned by the smaller entry's walk
				}
				c.Type = Cycle
			default:
				if end < u {
					continue // owned by the smaller anchor
				}
				c.Type = Parallel
			}
			local = append(local, c)
		}
		perAnchor[ai] = local
	})
	for _, local := range perAnchor {
		for i := range local {
			res.Removed += len(local[i].Interior)
		}
		res.Chains = append(res.Chains, local...)
	}
	return res
}

// InteriorDistance returns d(s, Interior[i]) given anchor distances, the
// weighted analogue of the paper's Algorithm 2 split formula.
func (c *WChain) InteriorDistance(du, dv int32, i int) int32 {
	off := c.Offsets[i]
	switch c.Type {
	case Dangling:
		return du + off
	case Cycle:
		other := c.Total - off
		if other < off {
			off = other
		}
		return du + off
	default:
		a := du + off
		b := dv + c.Total - off
		if b < a {
			return b
		}
		return a
	}
}

// SumInteriorDistances returns Σ_i d(s, Interior[i]) in O(ℓ); unlike the
// unit-weight case there is no closed form over arbitrary offsets.
func (c *WChain) SumInteriorDistances(du, dv int32) int64 {
	var s int64
	for i := range c.Interior {
		s += int64(c.InteriorDistance(du, dv, i))
	}
	return s
}

// walkNext helper note: the two-neighbour selection above picks the
// non-`prev` neighbour. A pendant cycle's closing step (cur adjacent to u
// twice is impossible in a simple weighted graph) terminates because u is
// an anchor.
