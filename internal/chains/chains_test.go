package chains

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bfs"
	"repro/internal/graph"
)

func TestFindDangling(t *testing.T) {
	// Hub 0 with a dangling tail 1-2-3; the stub triangle 0-4-5 is itself
	// a pendant cycle chain (4 and 5 have degree 2).
	g := graph.FromEdges(6, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {0, 4}, {0, 5}, {4, 5}})
	r := Find(g)
	if len(r.Chains) != 2 {
		t.Fatalf("chains = %d, want 2 (%+v)", len(r.Chains), r.Chains)
	}
	var c *Chain
	for i := range r.Chains {
		if r.Chains[i].Type == Dangling {
			c = &r.Chains[i]
		}
	}
	if c == nil || c.U != 0 || c.V != -1 {
		t.Fatalf("chains = %+v, want a dangling chain from 0", r.Chains)
	}
	want := []graph.NodeID{1, 2, 3}
	for i := range want {
		if c.Interior[i] != want[i] {
			t.Fatalf("interior = %v, want %v", c.Interior, want)
		}
	}
	if r.Removed != 5 {
		t.Errorf("Removed = %d, want 5", r.Removed)
	}
}

func TestFindSingleLeaf(t *testing.T) {
	// A single leaf off a triangle is a dangling chain of length 1; the
	// triangle's other two (degree-2) nodes form a pendant cycle.
	g := graph.FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {0, 3}})
	r := Find(g)
	var leaf *Chain
	for i := range r.Chains {
		if r.Chains[i].Type == Dangling {
			leaf = &r.Chains[i]
		}
	}
	if leaf == nil || len(leaf.Interior) != 1 || leaf.Interior[0] != 3 {
		t.Fatalf("chains = %+v, want dangling [3]", r.Chains)
	}
}

func TestFindCycleChain(t *testing.T) {
	// Pendant cycle 0-1-2-3-0 where 0 also anchors a triangle 0-4-5.
	// Note the "anchor triangle" 0-4-5 is itself a second pendant cycle
	// (nodes 4 and 5 have degree 2).
	g := graph.FromEdges(6, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}, {0, 5}, {4, 5}})
	r := Find(g)
	if len(r.Chains) != 2 {
		t.Fatalf("chains = %+v, want 2 cycle chains", r.Chains)
	}
	for _, c := range r.Chains {
		if c.Type != Cycle || c.U != 0 || c.V != 0 {
			t.Fatalf("chain = %+v", c)
		}
	}
	if len(r.Chains[0].Interior)+len(r.Chains[1].Interior) != 5 {
		t.Fatalf("interiors = %+v", r.Chains)
	}
}

func TestFindParallel(t *testing.T) {
	// Two anchors 0 and 4 (each with an extra triangle to be degree ≥3),
	// connected by chain 0-1-2-3-4 and chain 0-8-4.
	g := graph.FromEdges(11, [][2]int32{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, // long chain, interior 1,2,3
		{0, 8}, {8, 4}, // short chain, interior 8
		{0, 5}, {0, 6}, {5, 6}, // triangle at 0
		{4, 7}, {4, 9}, {7, 9}, // triangle at 4
		{5, 10}, {6, 10}, // keep 5,6 at degree 3
	})
	r := Find(g)
	var between04 int
	for _, c := range r.Chains {
		if c.Type == Parallel && ((c.U == 0 && c.V == 4) || (c.U == 4 && c.V == 0)) {
			between04++
		}
	}
	// Node 10 forms a third parallel chain between 5 and 6; only the two
	// 0↔4 chains are asserted here.
	if between04 != 2 {
		t.Fatalf("parallel chains between 0 and 4 = %d, want 2 (%+v)", between04, r.Chains)
	}
}

func TestWholeGraphPathAndCycle(t *testing.T) {
	path := graph.FromEdges(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	if r := Find(path); !r.WholeGraph {
		t.Error("path graph should be flagged WholeGraph")
	}
	cycle := graph.FromEdges(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	if r := Find(cycle); !r.WholeGraph {
		t.Error("cycle graph should be flagged WholeGraph")
	}
}

func TestInteriorDistanceAgainstBFS(t *testing.T) {
	// Graph: anchors 0 and 4 connected by interior chain 1-2-3 and by a
	// direct edge; plus stubs to give anchors degree ≥ 3.
	g := graph.FromEdges(9, [][2]int32{
		{0, 1}, {1, 2}, {2, 3}, {3, 4},
		{0, 4},
		{0, 5}, {5, 6}, {6, 0}, // triangle at 0 (nodes 5,6 degree 2 -> also chains, ignore)
		{4, 7}, {7, 8}, {8, 4},
	})
	r := Find(g)
	var chain *Chain
	for i := range r.Chains {
		if r.Chains[i].Type == Parallel {
			chain = &r.Chains[i]
		}
	}
	if chain == nil {
		t.Fatalf("no parallel chain found: %+v", r.Chains)
	}
	dist := make([]int32, g.NumNodes())
	for src := int32(0); src < int32(g.NumNodes()); src++ {
		interiorSet := map[graph.NodeID]bool{}
		for _, x := range chain.Interior {
			interiorSet[x] = true
		}
		if interiorSet[src] {
			continue // formula applies to sources outside the chain
		}
		bfs.Distances(g, src, dist, nil)
		var sum int64
		for i, x := range chain.Interior {
			got := chain.InteriorDistance(dist[chain.U], dist[chain.V], i)
			if got != dist[x] {
				t.Errorf("src %d interior %d: formula %d, BFS %d", src, x, got, dist[x])
			}
			sum += int64(dist[x])
		}
		if s := chain.SumInteriorDistances(dist[chain.U], dist[chain.V]); s != sum {
			t.Errorf("src %d: SumInteriorDistances = %d, want %d", src, s, sum)
		}
	}
}

// Property: on random "caterpillar" constructions every chain's formulas
// agree with BFS for all outside sources and the discovered interiors are
// disjoint.
func TestChainsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Core: random connected graph with min degree 3-ish.
		nc := rng.Intn(6) + 4
		b := graph.NewGrowingBuilder()
		for i := 1; i < nc; i++ {
			_ = b.AddEdge(int32(rng.Intn(i)), int32(i))
		}
		for i := 0; i < 3*nc; i++ {
			_ = b.AddEdge(int32(rng.Intn(nc)), int32(rng.Intn(nc)))
		}
		next := int32(nc)
		// Attach random chains: dangling, cycles, parallels.
		for c := 0; c < rng.Intn(5)+1; c++ {
			l := rng.Intn(4) + 1
			u := int32(rng.Intn(nc))
			prev := u
			for j := 0; j < l; j++ {
				_ = b.AddEdge(prev, next)
				prev = next
				next++
			}
			switch rng.Intn(3) {
			case 0: // dangling: leave it
			case 1: // cycle: close back to u
				_ = b.AddEdge(prev, u)
			case 2: // parallel: close to another core node
				v := int32(rng.Intn(nc))
				if v != u {
					_ = b.AddEdge(prev, v)
				}
			}
		}
		g := b.Build()
		r := Find(g)
		if r.WholeGraph {
			return true // degenerate accept
		}
		seen := map[graph.NodeID]bool{}
		for _, c := range r.Chains {
			for _, x := range c.Interior {
				if seen[x] {
					return false // overlapping interiors
				}
				seen[x] = true
				if g.Degree(x) > 2 {
					return false
				}
			}
		}
		// Distance formulas.
		dist := make([]int32, g.NumNodes())
		for src := int32(0); src < int32(g.NumNodes()); src++ {
			if seen[src] {
				continue
			}
			bfs.Distances(g, src, dist, nil)
			for ci := range r.Chains {
				c := &r.Chains[ci]
				var dv int32
				if c.V >= 0 {
					dv = dist[c.V]
				}
				var sum int64
				for i, x := range c.Interior {
					if got := c.InteriorDistance(dist[c.U], dv, i); got != dist[x] {
						return false
					}
					sum += int64(dist[x])
				}
				if c.SumInteriorDistances(dist[c.U], dv) != sum {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeString(t *testing.T) {
	for _, c := range []struct {
		tp   Type
		want string
	}{{Dangling, "dangling(type-1)"}, {Cycle, "cycle(type-2)"}, {Parallel, "parallel(type-3/4)"}, {Type(0), "invalid"}} {
		if c.tp.String() != c.want {
			t.Errorf("String(%d) = %q, want %q", c.tp, c.tp.String(), c.want)
		}
	}
}
