// Package chains implements the "C" of BRICS: discovery, classification and
// contraction of chain nodes (Section III-B of the paper). A chain is a
// maximal path u - a₁ - a₂ - … - a_ℓ - v whose interior nodes all have
// degree two. The paper's four chain types are:
//
//	Type-1: one endpoint is a degree-1 node (a dangling tail) — redundant.
//	Type-2: both endpoints are the same node (a pendant cycle) — redundant.
//	Type-3: a chain strictly longer than a parallel connection — redundant.
//	Type-4: identical chains (equal endpoints, equal length) — all but one
//	        redundant.
//
// Where the paper says chain nodes are "removed", non-redundant chains must
// keep the graph connected, so this package *contracts* every chain with two
// distinct live endpoints into a single weighted edge of weight ℓ+1 and
// removes the interior nodes; redundant parallels are then dropped
// automatically by the weighted builder, which keeps only the lightest edge
// of each parallel group. Interior distances are recovered per BFS source by
// the split formula of the paper's Algorithm 2 (see Extend).
package chains

import (
	"repro/internal/graph"
	"repro/internal/par"
)

// Type classifies a chain per the paper's Fig. 1.
type Type uint8

const (
	// Dangling is Type-1: the chain ends in a degree-1 node; only the u
	// anchor exists.
	Dangling Type = iota + 1
	// Cycle is Type-2: both endpoints are the same node.
	Cycle
	// Parallel is Type-3/4: a chain between two distinct anchors. Whether
	// it is redundant (3/4) or the surviving connection is decided later
	// by comparing contracted edges; the interior post-processing is
	// identical either way.
	Parallel
)

func (t Type) String() string {
	switch t {
	case Dangling:
		return "dangling(type-1)"
	case Cycle:
		return "cycle(type-2)"
	case Parallel:
		return "parallel(type-3/4)"
	default:
		return "invalid"
	}
}

// Chain records one discovered chain. Node ids are in the coordinate system
// of the graph handed to Find.
type Chain struct {
	// U is the anchor the interior is enumerated from. For Dangling
	// chains it is the only anchor.
	U graph.NodeID
	// V is the far anchor; -1 for Dangling chains; equal to U for Cycle
	// chains.
	V graph.NodeID
	// Interior lists the removed nodes in path order starting adjacent
	// to U. Interior[i] is at offset i+1 from U along the chain.
	Interior []graph.NodeID
	// Type classifies the chain.
	Type Type
}

// Len returns ℓ, the number of interior nodes.
func (c *Chain) Len() int { return len(c.Interior) }

// EdgeWeight returns the weight of the contracted edge (ℓ+1). Meaningful
// only for Parallel chains with U != V.
func (c *Chain) EdgeWeight() int32 { return int32(len(c.Interior)) + 1 }

// Result of chain discovery.
type Result struct {
	// Chains lists every discovered chain.
	Chains []Chain
	// Removed is the total number of interior nodes across chains.
	Removed int
	// WholeGraph is set when the entire input is a single path or cycle
	// (every node has degree ≤ 2). No chains are emitted in that case;
	// callers must special-case such graphs (closed-form farness).
	WholeGraph bool
}

// Find discovers all maximal chains of g. The returned chains have disjoint
// interiors; anchors (degree ≠ 2 nodes) are never interior to any chain.
//
// Degree-1 nodes adjacent to an anchor become singleton Dangling chains;
// degree-1 nodes ending a run of degree-2 nodes are folded into that run's
// Dangling chain, matching the paper's Type-1. Find is FindWorkers at one
// worker — every worker count yields the same Result.
func Find(g *graph.Graph) *Result { return FindWorkers(g, 1) }

// anchorScan fills interior flags for a graph given by degree lookup and
// returns the ascending anchor list, or nil when the graph has no anchor
// (a pure path/cycle input).
func anchorScan(n, workers int, degree func(graph.NodeID) int, interior []bool) []graph.NodeID {
	nb := par.NumBlocks(n, workers)
	counts := make([]int64, nb)
	par.ForBlocks(n, workers, func(b, lo, hi int) {
		cnt := int64(0)
		for v := lo; v < hi; v++ {
			d := degree(graph.NodeID(v))
			interior[v] = d == 1 || d == 2
			if !interior[v] {
				cnt++
			}
		}
		counts[b] = cnt
	})
	var total int64
	for b := range counts {
		c := counts[b]
		counts[b] = total
		total += c
	}
	if total == 0 {
		return nil
	}
	anchors := make([]graph.NodeID, total)
	par.ForBlocks(n, workers, func(b, lo, hi int) {
		out := counts[b]
		for v := lo; v < hi; v++ {
			if !interior[v] {
				anchors[out] = graph.NodeID(v)
				out++
			}
		}
	})
	return anchors
}

// FindWorkers is Find with chain discovery fanned out over the anchors
// (<1 worker means GOMAXPROCS). Without the sequential pass's shared
// visited[] marks, each chain is walked from both of its entries; a
// canonical ownership rule keeps exactly the copy the sequential scan
// would have emitted — a Parallel chain belongs to its smaller anchor, a
// pendant cycle to its smaller entry neighbour, a Dangling chain to its
// only anchor — so the concatenation of the per-anchor chain lists in
// anchor order is bit-identical to the sequential result for every worker
// count.
func FindWorkers(g *graph.Graph, workers int) *Result {
	n := g.NumNodes()
	workers = par.Workers(workers)
	res := &Result{}
	interior := make([]bool, n)
	anchors := anchorScan(n, workers, g.Degree, interior)
	if anchors == nil {
		res.WholeGraph = n > 0
		return res
	}

	// walk follows a run of degree-≤2 nodes starting from `first`, which
	// was reached from `from`. It returns the interior nodes in order and
	// the terminating anchor (or -1 if the run ends at a degree-1 node).
	// Read-only: safe from concurrent walkers.
	walk := func(from, first graph.NodeID) (run []graph.NodeID, end graph.NodeID) {
		prev, cur := from, first
		for {
			if !interior[cur] {
				return run, cur
			}
			run = append(run, cur)
			if g.Degree(cur) == 1 {
				return run, -1
			}
			nbrs := g.Neighbors(cur)
			next := nbrs[0]
			if next == prev {
				next = nbrs[1]
			}
			prev, cur = cur, next
		}
	}

	perAnchor := make([][]Chain, len(anchors))
	par.ForDynamic(len(anchors), workers, 32, func(_, ai int) {
		u := anchors[ai]
		var local []Chain
		for _, first := range g.Neighbors(u) {
			if !interior[first] {
				continue
			}
			run, end := walk(u, first)
			switch {
			case end == -1:
				local = append(local, Chain{U: u, V: -1, Interior: run, Type: Dangling})
			case end == u:
				// A pendant cycle is walked from both of u's entry edges;
				// keep the walk that entered through the smaller entry —
				// the one the sequential neighbour scan found first.
				if len(run) > 1 && run[0] > run[len(run)-1] {
					continue
				}
				local = append(local, Chain{U: u, V: u, Interior: run, Type: Cycle})
			default:
				// A chain between two anchors is walked from both; its
				// smaller anchor owns it, matching the ascending anchor
				// scan of the sequential pass.
				if end < u {
					continue
				}
				local = append(local, Chain{U: u, V: end, Interior: run, Type: Parallel})
			}
		}
		perAnchor[ai] = local
	})
	for _, local := range perAnchor {
		for i := range local {
			res.Removed += len(local[i].Interior)
		}
		res.Chains = append(res.Chains, local...)
	}
	return res
}

// InteriorDistance returns d(s, Interior[i]) given the source's distances
// to the chain's anchors, using the split formula of the paper's
// Algorithm 2. du is d(s,U); dv is d(s,V) and ignored for Dangling chains.
// Position i is 0-based (Interior[i] sits i+1 steps from U).
func (c *Chain) InteriorDistance(du, dv int32, i int) int32 {
	off := int32(i) + 1
	switch c.Type {
	case Dangling:
		return du + off
	case Cycle:
		// Around the pendant cycle of length ℓ+1 edges.
		other := int32(len(c.Interior)) + 1 - off
		if other < off {
			off = other
		}
		return du + off
	default:
		l := int32(len(c.Interior)) + 1 // contracted edge weight
		a := du + off
		b := dv + l - off
		if b < a {
			return b
		}
		return a
	}
}

// SumInteriorDistances returns Σ_i d(s, Interior[i]) in O(1), used to add a
// chain's contribution to the farness of a BFS source without touching each
// interior node (the optimisation the paper describes for Type-1 chains,
// generalised to all types).
func (c *Chain) SumInteriorDistances(du, dv int32) int64 {
	l := int64(len(c.Interior))
	if l == 0 {
		return 0
	}
	switch c.Type {
	case Dangling:
		// Σ_{o=1..ℓ} (du+o) = ℓ·du + ℓ(ℓ+1)/2
		return l*int64(du) + l*(l+1)/2
	case Cycle:
		// Offsets min(o, ℓ+1-o) for o=1..ℓ form the ramp 1..⌈ℓ/2⌉..1;
		// closed form: m(m+1) for ℓ=2m, (m+1)² for ℓ=2m+1.
		m := l / 2
		var s int64
		if l%2 == 0 {
			s = m * (m + 1)
		} else {
			s = (m + 1) * (m + 1)
		}
		return l*int64(du) + s
	default:
		// Split point: offsets o where du+o <= dv+L-o, i.e.
		// o <= (dv-du+L)/2. Left side contributes du+o, right dv+L-o.
		L := l + 1
		t := (int64(dv) - int64(du) + L) / 2
		if t < 0 {
			t = 0
		}
		if t > l {
			t = l
		}
		// left: o=1..t
		left := t*int64(du) + t*(t+1)/2
		// right: o=t+1..ℓ of dv+L-o; substitute r=L-o, r=L-ℓ..L-t-1=1..L-t-1
		rcount := l - t
		// Σ_{o=t+1..ℓ} (L-o) = Σ_{r=1..L-t-1} r − Σ_{r=1..L-ℓ-1} r, and L-ℓ-1 = 0
		rsum := (L - t - 1) * (L - t) / 2
		right := rcount*int64(dv) + rsum
		return left + right
	}
}
