package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/bicc"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/reduce"
)

// ReductionRow is one (dataset, worker-count) measurement of the
// preprocessing pipeline: total wall-clock plus the per-stage split from
// reduce.Timings, the biconnected decomposition of the reduced graph (the
// "B" stage that follows the reductions on the preprocessing critical
// path, with its engine and substage split), and the speedup over the same
// dataset's sequential (workers=1) run. The pipeline's output is
// bit-identical across worker counts, so only time is compared.
type ReductionRow struct {
	Dataset gen.Dataset    `json:"-"`
	Name    string         `json:"name"`
	Class   string         `json:"class"`
	Nodes   int            `json:"nodes"`
	Edges   int            `json:"edges"`
	Workers int            `json:"workers"`
	Total   time.Duration  `json:"total_ns"`
	Timings reduce.Timings `json:"stages_ns"`
	BiCC    bicc.Timings   `json:"bicc_ns"`
	Speedup float64        `json:"speedup_vs_sequential"`
}

// reductionWorkerSweep returns the worker counts the preprocessing table
// reports: 1, 2, 4 and GOMAXPROCS, deduplicated and ascending.
func reductionWorkerSweep() []int {
	sweep := []int{1, 2, 4}
	p := runtime.GOMAXPROCS(0)
	if p != 1 && p != 2 && p != 4 {
		i := len(sweep)
		for i > 0 && sweep[i-1] > p {
			i--
		}
		sweep = append(sweep[:i], append([]int{p}, sweep[i:]...)...)
	}
	return sweep
}

// ReductionBench times the full iterative reduction pipeline on one dataset
// per graph class at 1/2/4/GOMAXPROCS workers. Each point is the best of
// three runs (preprocessing is short enough that the first run's allocator
// warm-up dominates a single sample).
func ReductionBench(cfg Config) ([]ReductionRow, error) {
	var rows []ReductionRow
	seen := map[gen.Class]bool{}
	for _, ds := range gen.Datasets(cfg.scale()) {
		if seen[ds.Class] {
			continue
		}
		seen[ds.Class] = true
		g := ds.Build()
		var seqTotal time.Duration
		for _, w := range reductionWorkerSweep() {
			row, err := reductionPoint(ds, g, w)
			if err != nil {
				return nil, err
			}
			if w == 1 {
				seqTotal = row.Total
			}
			if row.Total > 0 {
				row.Speedup = float64(seqTotal) / float64(row.Total)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func reductionPoint(ds gen.Dataset, g *graph.Graph, workers int) (ReductionRow, error) {
	row := ReductionRow{
		Dataset: ds,
		Name:    ds.Name,
		Class:   string(ds.Class),
		Nodes:   g.NumNodes(),
		Edges:   g.NumEdges(),
		Workers: workers,
	}
	opts := reduce.Options{Twins: true, Chains: true, Redundant: true, Workers: workers}
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		red, err := reduce.RunIterative(g, opts, 0)
		total := time.Since(start)
		if err != nil {
			return row, fmt.Errorf("%s workers=%d: %v", ds.Name, workers, err)
		}
		_, biccT := bicc.DecomposeTimed(red.G, bicc.AlgoAuto, workers)
		if rep == 0 || total < row.Total {
			row.Total = total
			row.Timings = red.Timings
		}
		if rep == 0 || biccT.Total < row.BiCC.Total {
			row.BiCC = biccT
		}
	}
	return row, nil
}

// FprintReduction renders the preprocessing-time table, mirroring the
// traversal-engine table: per-stage wall-clock and the speedup over the
// sequential pipeline at each worker count.
func FprintReduction(w io.Writer, rows []ReductionRow) {
	fmt.Fprintf(w, "Reduction pipeline: preprocessing wall-clock by worker count (output is identical at every count)\n")
	fmt.Fprintf(w, "%-28s %-10s %7s %10s %10s %10s %10s %10s %8s %10s %-16s\n",
		"Graph", "Class", "workers", "twins", "chains", "redundant", "rounds", "total", "speedup", "bicc", "bicc-engine")
	prev := ""
	for _, r := range rows {
		name, class := r.Name, r.Class
		if name == prev {
			name, class = "", ""
		} else {
			prev = name
		}
		fmt.Fprintf(w, "%-28s %-10s %7d %10s %10s %10s %10s %10s %7.2fx %10s %-16s\n",
			name, class, r.Workers,
			fmtDur(r.Timings.Twins), fmtDur(r.Timings.Chains), fmtDur(r.Timings.Redundant),
			fmtDur(r.Timings.Rounds), fmtDur(r.Total), r.Speedup,
			fmtDur(r.BiCC.Total), r.BiCC.Algorithm)
	}
}

// reductionReport is the BENCH_reduction.json document.
type reductionReport struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	Scale      float64        `json:"scale"`
	Note       string         `json:"note"`
	Rows       []ReductionRow `json:"rows"`
}

// WriteReductionJSON writes the preprocessing benchmark to path as JSON so
// `make bench` leaves a machine-readable record next to the text tables.
func WriteReductionJSON(path string, cfg Config, rows []ReductionRow) error {
	rep := reductionReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Scale:      cfg.scale(),
		Note: "total_ns/stages_ns are wall-clock; speedup_vs_sequential compares against the " +
			"workers=1 run on the same dataset. Worker counts above num_cpu time-slice a single " +
			"core and cannot show real speedup.",
		Rows: rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
