package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/bfs"
	"repro/internal/gen"
)

// FrontierRow is one (dataset, engine, worker count) point of the frontier
// scaling study: the wall-clock of a full exact farness run (one traversal
// per node) and its speedup over the sequential baseline — the per-source
// engine at one worker, i.e. a plain BFS loop. The two engines place their
// parallelism on opposite axes (per-source: sources across workers, one
// sequential BFS each; frontier: sources sequential, each BFS's levels split
// across workers), and both must reproduce the baseline farness bit for bit —
// the bench verifies that on every cell before recording it.
type FrontierRow struct {
	Dataset gen.Dataset   `json:"-"`
	Name    string        `json:"name"`
	Class   string        `json:"class"`
	Engine  string        `json:"engine"`
	Workers int           `json:"workers"`
	Total   time.Duration `json:"total_ns"`
	Speedup float64       `json:"speedup_vs_seq"`
}

// frontierWorkerSweep is the scaling axis of the study.
var frontierWorkerSweep = []int{1, 2, 4, 8}

// FrontierBench measures exact-farness scaling of both engines on one dataset
// per graph class. Each cell is the best of two runs (the first pays
// allocator warm-up). Note the frontier engine's level fan-out cannot beat
// the sequential loop on graphs whose frontiers stay narrow (road networks:
// long diameter, thin waves); the study exists to show exactly that contrast
// against the wide-frontier web/social classes.
func FrontierBench(cfg Config) ([]FrontierRow, error) {
	var rows []FrontierRow
	seen := map[gen.Class]bool{}
	for _, ds := range gen.Datasets(cfg.scale()) {
		if seen[ds.Class] {
			continue
		}
		seen[ds.Class] = true
		g := ds.Build()
		var baseline time.Duration
		var want []float64
		for _, engine := range []string{"per-source", "frontier"} {
			for _, w := range frontierWorkerSweep {
				row := FrontierRow{
					Dataset: ds,
					Name:    ds.Name,
					Class:   string(ds.Class),
					Engine:  engine,
					Workers: w,
				}
				var far []float64
				for rep := 0; rep < 2; rep++ {
					start := time.Now()
					if engine == "per-source" {
						far = bfs.ExactFarness(g, w)
					} else {
						far = bfs.ExactFarnessFrontier(g, w)
					}
					if total := time.Since(start); rep == 0 || total < row.Total {
						row.Total = total
					}
				}
				if want == nil {
					want = far // per-source, workers=1: the sequential baseline
					baseline = row.Total
				} else {
					for v := range want {
						if far[v] != want[v] {
							return nil, fmt.Errorf("%s %s/w=%d: farness[%d] = %v, sequential %v",
								ds.Name, engine, w, v, far[v], want[v])
						}
					}
				}
				if row.Total > 0 {
					row.Speedup = float64(baseline) / float64(row.Total)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// FprintFrontier renders the scaling table; speedup >1 means the cell beats
// the sequential BFS loop on that dataset.
func FprintFrontier(w io.Writer, rows []FrontierRow) {
	fmt.Fprintf(w, "Frontier-parallel scaling: full exact farness run, engine x workers\n")
	fmt.Fprintf(w, "(identical farness in every cell; speedup is vs the same dataset's per-source/1-worker run)\n")
	fmt.Fprintf(w, "%-28s %-10s %-11s %8s %10s %8s\n",
		"Graph", "Class", "engine", "workers", "total", "speedup")
	prev := ""
	for _, r := range rows {
		name, class := r.Name, r.Class
		if name == prev {
			name, class = "", ""
		} else {
			prev = name
		}
		fmt.Fprintf(w, "%-28s %-10s %-11s %8d %10s %7.2fx\n",
			name, class, r.Engine, r.Workers, fmtDur(r.Total), r.Speedup)
	}
}

// frontierReport is the BENCH_frontier.json document.
type frontierReport struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Scale      float64       `json:"scale"`
	Note       string        `json:"note"`
	Rows       []FrontierRow `json:"rows"`
}

// WriteFrontierJSON writes the scaling study to path as JSON so
// `make bench-frontier` leaves a machine-readable record next to the text
// table.
func WriteFrontierJSON(path string, cfg Config, rows []FrontierRow) error {
	rep := frontierReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Scale:      cfg.scale(),
		Note: "Full exact-farness wall-clock per (engine, worker count) cell; every cell verified " +
			"bit-identical to the sequential baseline before recording. speedup_vs_seq compares against " +
			"the per-source/1-worker cell of the same dataset. Worker counts above num_cpu oversubscribe " +
			"and cannot show real scaling on this host.",
		Rows: rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
