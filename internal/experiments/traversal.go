package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TraversalRow is one (dataset, relabel ordering, traversal engine) point of
// the locality matrix: full cumulative-estimate wall-clock at 20% sampling,
// the traversal-phase share of it, and the speedup over the same dataset's
// default configuration (relabel=none, traversal=auto). Every cell produces
// bit-identical farness values — the matrix isolates pure memory-layout and
// kernel-direction effects.
type TraversalRow struct {
	Dataset   gen.Dataset   `json:"-"`
	Name      string        `json:"name"`
	Class     string        `json:"class"`
	Relabel   string        `json:"relabel"`
	Traversal string        `json:"traversal"`
	Total     time.Duration `json:"total_ns"`
	Traverse  time.Duration `json:"traverse_ns"`
	Speedup   float64       `json:"speedup_vs_default"`
}

// traversalOrderings and traversalEngines span the matrix axes.
var traversalOrderings = []graph.RelabelMode{graph.RelabelNone, graph.RelabelDegree, graph.RelabelBFS}
var traversalEngines = []core.TraversalMode{core.TraversalAuto, core.TraversalPerSource, core.TraversalBatched, core.TraversalHybrid}

// TraversalBench measures the full ordering×engine matrix on one dataset per
// graph class. Each cell is the best of two runs (the first run pays
// allocator warm-up); the speedup column compares against the (none, auto)
// cell of the same dataset, i.e. what the estimator does with no knobs set.
func TraversalBench(cfg Config, fraction float64) ([]TraversalRow, error) {
	if fraction <= 0 {
		fraction = 0.2
	}
	var rows []TraversalRow
	seen := map[gen.Class]bool{}
	for _, ds := range gen.Datasets(cfg.scale()) {
		if seen[ds.Class] {
			continue
		}
		seen[ds.Class] = true
		g := ds.Build()
		var baseline time.Duration
		for _, ord := range traversalOrderings {
			for _, eng := range traversalEngines {
				row := TraversalRow{
					Dataset:   ds,
					Name:      ds.Name,
					Class:     string(ds.Class),
					Relabel:   ord.String(),
					Traversal: eng.String(),
				}
				for rep := 0; rep < 2; rep++ {
					start := time.Now()
					res, err := core.Estimate(g, core.Options{
						Techniques:     core.TechCumulative,
						SampleFraction: fraction,
						Workers:        cfg.Workers,
						Seed:           cfg.Seed,
						Traversal:      eng,
						Relabel:        ord,
					})
					total := time.Since(start)
					if err != nil {
						return nil, fmt.Errorf("%s %s/%s: %v", ds.Name, ord, eng, err)
					}
					if rep == 0 || total < row.Total {
						row.Total = total
						row.Traverse = res.Stats.Traverse
					}
				}
				if ord == graph.RelabelNone && eng == core.TraversalAuto {
					baseline = row.Total
				}
				if row.Total > 0 {
					row.Speedup = float64(baseline) / float64(row.Total)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// FprintTraversal renders the locality matrix; speedup >1 means the
// configuration beats the default (relabel=none, traversal=auto) on that
// dataset.
func FprintTraversal(w io.Writer, fraction float64, rows []TraversalRow) {
	fmt.Fprintf(w, "Traversal locality matrix: relabel ordering x engine, cumulative estimate at %.0f%% sampling\n", fraction*100)
	fmt.Fprintf(w, "(identical farness in every cell; speedup is vs the same dataset's relabel=none/traversal=auto run)\n")
	fmt.Fprintf(w, "%-28s %-10s %-8s %-11s %10s %10s %8s\n",
		"Graph", "Class", "relabel", "engine", "traverse", "total", "speedup")
	prev := ""
	for _, r := range rows {
		name, class := r.Name, r.Class
		if name == prev {
			name, class = "", ""
		} else {
			prev = name
		}
		fmt.Fprintf(w, "%-28s %-10s %-8s %-11s %10s %10s %7.2fx\n",
			name, class, r.Relabel, r.Traversal, fmtDur(r.Traverse), fmtDur(r.Total), r.Speedup)
	}
}

// traversalReport is the BENCH_traversal.json document.
type traversalReport struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	Scale      float64        `json:"scale"`
	Fraction   float64        `json:"fraction"`
	Note       string         `json:"note"`
	Rows       []TraversalRow `json:"rows"`
}

// WriteTraversalJSON writes the locality matrix to path as JSON so
// `make bench-traversal` leaves a machine-readable record next to the text
// table.
func WriteTraversalJSON(path string, cfg Config, fraction float64, rows []TraversalRow) error {
	rep := traversalReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Scale:      cfg.scale(),
		Fraction:   fraction,
		Note: "Full cumulative-estimate wall-clock per (relabel ordering, traversal engine) cell; " +
			"every cell produces bit-identical farness. speedup_vs_default compares against the " +
			"relabel=none/traversal=auto cell of the same dataset.",
		Rows: rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
