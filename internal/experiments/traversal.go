package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// TraversalRow compares the per-source and batched traversal engines on one
// dataset at the paper's 20% sampling fraction. Both engines produce
// identical farness values for the same seed, so only wall-clock is
// reported: RandomPS/RandomB time the unreduced-graph baseline
// (Algorithm 1), CumPS/CumB the full cumulative estimator, and the Ratio
// columns are per-source over batched (>1 means batching wins).
type TraversalRow struct {
	Dataset     gen.Dataset
	RandomPS    time.Duration
	RandomB     time.Duration
	RandomRatio float64
	CumPS       time.Duration
	CumB        time.Duration
	CumRatio    float64
}

// TraversalBench measures the engines head to head on one dataset per
// graph class (the first stand-in of each family keeps the sweep under a
// few seconds at default scale).
func TraversalBench(cfg Config, fraction float64) ([]TraversalRow, error) {
	if fraction <= 0 {
		fraction = 0.2
	}
	var rows []TraversalRow
	seen := map[gen.Class]bool{}
	for _, ds := range gen.Datasets(cfg.scale()) {
		if seen[ds.Class] {
			continue
		}
		seen[ds.Class] = true
		g := ds.Build()

		row := TraversalRow{Dataset: ds}
		start := time.Now()
		core.RandomSamplingMode(g, fraction, cfg.Workers, cfg.Seed, core.TraversalPerSource)
		row.RandomPS = time.Since(start)
		start = time.Now()
		core.RandomSamplingMode(g, fraction, cfg.Workers, cfg.Seed, core.TraversalBatched)
		row.RandomB = time.Since(start)

		estimate := func(mode core.TraversalMode) (time.Duration, error) {
			start := time.Now()
			_, err := core.Estimate(g, core.Options{
				Techniques:     core.TechCumulative,
				SampleFraction: fraction,
				Workers:        cfg.Workers,
				Seed:           cfg.Seed,
				Traversal:      mode,
			})
			return time.Since(start), err
		}
		var err error
		if row.CumPS, err = estimate(core.TraversalPerSource); err != nil {
			return nil, fmt.Errorf("%s: %v", ds.Name, err)
		}
		if row.CumB, err = estimate(core.TraversalBatched); err != nil {
			return nil, fmt.Errorf("%s: %v", ds.Name, err)
		}
		row.RandomRatio = ratio(row.RandomPS, row.RandomB)
		row.CumRatio = ratio(row.CumPS, row.CumB)
		rows = append(rows, row)
	}
	return rows, nil
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// FprintTraversal renders the engine comparison with the per-source/batched
// wall-clock ratios.
func FprintTraversal(w io.Writer, fraction float64, rows []TraversalRow) {
	fmt.Fprintf(w, "Traversal engines: per-source vs batched 64-wide multi-source at %.0f%% sampling\n", fraction*100)
	fmt.Fprintf(w, "%-28s %-10s %10s %10s %8s %10s %10s %8s\n",
		"Graph", "Class", "RandPS", "RandBatch", "xRand", "CumPS", "CumBatch", "xCum")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %-10s %10s %10s %7.2fx %10s %10s %7.2fx\n",
			r.Dataset.Name, r.Dataset.Class, fmtDur(r.RandomPS), fmtDur(r.RandomB), r.RandomRatio,
			fmtDur(r.CumPS), fmtDur(r.CumB), r.CumRatio)
	}
}
