package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/bfs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sketch"
)

// SketchRow is one dataset of the distance-sketch study: the one-time build
// cost and footprint of the cluster-BFS sketch, then the sustained
// point-to-point query throughput of the three /v1/distance answering modes
// — exact (bidirectional BFS per query), sketch (O(k) bound lookup, upper
// bound answered) and auto (sketch when the bound is tight at tol=0, exact
// BFS otherwise). Before any timing, every benchmark pair is checked against
// the exact oracle: lower ≤ exact ≤ upper must hold or the bench errors out.
type SketchRow struct {
	Dataset gen.Dataset `json:"-"`
	Name    string      `json:"name"`
	Class   string      `json:"class"`
	Nodes   int         `json:"nodes"`
	Edges   int         `json:"edges"`

	Clusters    int           `json:"clusters"`
	BuildTime   time.Duration `json:"build_ns"`
	SketchBytes int64         `json:"sketch_bytes"`

	ExactQPS  float64 `json:"exact_qps"`
	SketchQPS float64 `json:"sketch_qps"`
	AutoQPS   float64 `json:"auto_qps"`
	// Speedup is SketchQPS / ExactQPS — the acceptance ratio.
	Speedup float64 `json:"sketch_speedup_vs_exact"`
	// TightFrac is the fraction of pairs whose sketch bound was already
	// exact (lower == upper): auto mode answers these without a traversal.
	TightFrac float64 `json:"tight_bound_fraction"`
	// MeanGap is the average upper−lower bound width across the pairs.
	MeanGap float64 `json:"mean_bound_gap"`
	// MeanErr is the average upper−exact overestimate of sketch mode.
	MeanErr float64 `json:"mean_upper_error"`
}

// sketchMinMeasure is the minimum wall-clock per timing loop; the pair set
// is swept repeatedly until it accumulates, so even the nanosecond-scale
// sketch lookups get a stable rate.
const sketchMinMeasure = 50 * time.Millisecond

// sketchQPS sweeps the pair set through query until at least
// sketchMinMeasure has elapsed and returns queries per second.
func sketchQPS(pairs [][2]graph.NodeID, query func(u, v graph.NodeID)) float64 {
	queries := 0
	start := time.Now()
	for time.Since(start) < sketchMinMeasure {
		for _, p := range pairs {
			query(p[0], p[1])
		}
		queries += len(pairs)
	}
	return float64(queries) / time.Since(start).Seconds()
}

// SketchBench measures the distance sketch on one dataset per graph class.
// Datasets are connected first (the paper's preprocessing), matching what
// the server would hold.
func SketchBench(cfg Config) ([]SketchRow, error) {
	var rows []SketchRow
	seen := map[gen.Class]bool{}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, ds := range gen.Datasets(cfg.scale()) {
		if seen[ds.Class] {
			continue
		}
		seen[ds.Class] = true
		g := graph.Connect(ds.Build())
		n := g.NumNodes()
		row := SketchRow{
			Dataset: ds,
			Name:    ds.Name,
			Class:   string(ds.Class),
			Nodes:   n,
			Edges:   g.NumEdges(),
		}

		start := time.Now()
		sk := sketch.Build(g, sketch.Options{Workers: cfg.Workers})
		row.BuildTime = time.Since(start)
		row.Clusters = sk.Clusters()
		row.SketchBytes = sk.Bytes()

		const numPairs = 256
		pairs := make([][2]graph.NodeID, numPairs)
		for i := range pairs {
			pairs[i] = [2]graph.NodeID{graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))}
		}

		// Correctness gate before any timing: proven bounds must bracket the
		// exact distance on every benchmark pair.
		tight, gapSum, errSum := 0, 0.0, 0.0
		for _, p := range pairs {
			d := bfs.PointToPoint(g, p[0], p[1])
			lo, hi, ok := sk.Bounds(p[0], p[1])
			if !ok {
				return nil, fmt.Errorf("%s: sketch cannot bound pair (%d,%d) on a connected graph",
					ds.Name, p[0], p[1])
			}
			if lo > d || d > hi {
				return nil, fmt.Errorf("%s: bounds [%d,%d] exclude exact d(%d,%d)=%d",
					ds.Name, lo, hi, p[0], p[1], d)
			}
			if lo == hi {
				tight++
			}
			gapSum += float64(hi - lo)
			errSum += float64(hi - d)
		}
		row.TightFrac = float64(tight) / numPairs
		row.MeanGap = gapSum / numPairs
		row.MeanErr = errSum / numPairs

		row.ExactQPS = sketchQPS(pairs, func(u, v graph.NodeID) {
			bfs.PointToPoint(g, u, v)
		})
		row.SketchQPS = sketchQPS(pairs, func(u, v graph.NodeID) {
			sk.Bounds(u, v)
		})
		row.AutoQPS = sketchQPS(pairs, func(u, v graph.NodeID) {
			if lo, hi, ok := sk.Bounds(u, v); !ok || lo != hi {
				bfs.PointToPoint(g, u, v)
			}
		})
		if row.ExactQPS > 0 {
			row.Speedup = row.SketchQPS / row.ExactQPS
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintSketch renders the query-throughput table.
func FprintSketch(w io.Writer, rows []SketchRow) {
	fmt.Fprintf(w, "Distance sketch: point-to-point queries/sec by answering mode\n")
	fmt.Fprintf(w, "(bounds verified to bracket the exact distance on every pair before timing;\n")
	fmt.Fprintf(w, " auto answers from the sketch when lower==upper, exact BFS otherwise)\n")
	fmt.Fprintf(w, "%-28s %-10s %9s %10s %12s %12s %12s %9s %6s %7s\n",
		"Graph", "Class", "build", "bytes", "exact q/s", "sketch q/s", "auto q/s", "speedup", "tight", "gap")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %-10s %9s %10d %12.0f %12.0f %12.0f %8.0fx %5.0f%% %7.2f\n",
			r.Name, r.Class, fmtDur(r.BuildTime), r.SketchBytes,
			r.ExactQPS, r.SketchQPS, r.AutoQPS, r.Speedup, 100*r.TightFrac, r.MeanGap)
	}
}

// sketchReport is the BENCH_sketch.json document.
type sketchReport struct {
	GOMAXPROCS int         `json:"gomaxprocs"`
	NumCPU     int         `json:"num_cpu"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Scale      float64     `json:"scale"`
	Note       string      `json:"note"`
	Rows       []SketchRow `json:"rows"`
}

// WriteSketchJSON writes the study to path as JSON so `make bench-sketch`
// leaves a machine-readable record next to the text table.
func WriteSketchJSON(path string, cfg Config, rows []SketchRow) error {
	rep := sketchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Scale:      cfg.scale(),
		Note: "Point-to-point distance throughput of the three /v1/distance answering modes, measured " +
			"on the kernels behind the endpoint (bidirectional BFS vs O(k) sketch bound lookup) over a " +
			"fixed random pair set per dataset. Bounds were verified to bracket the exact distance on " +
			"every pair before timing. build_ns and sketch_bytes are the one-time per-generation cost.",
		Rows: rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
