package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
)

// The experiment tests run at a small scale: they assert the *shape* of
// the paper's results (who wins, which class shows which structure), not
// wall-clock numbers — timings at this scale are too noisy for speedup
// assertions beyond sanity.

func smallCfg() Config { return Config{Scale: 0.08, Workers: 2, Seed: 5} }

func TestTableIShapes(t *testing.T) {
	rows, err := TableI(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	byClass := map[gen.Class][]TableIRow{}
	for _, r := range rows {
		byClass[r.Dataset.Class] = append(byClass[r.Dataset.Class], r)
		if r.Nodes <= 0 || r.Edges <= 0 || r.BlockCount <= 0 {
			t.Errorf("%s: degenerate row %+v", r.Dataset.Name, r)
		}
		if r.ReducedNodes >= r.Nodes {
			t.Errorf("%s: no reduction (%d -> %d)", r.Dataset.Name, r.Nodes, r.ReducedNodes)
		}
	}
	for _, r := range byClass[gen.ClassWeb] {
		if float64(r.IdenticalNodes)/float64(r.Nodes) < 0.15 {
			t.Errorf("web %s: identical fraction too low", r.Dataset.Name)
		}
		if r.RedundantNodes == 0 {
			t.Errorf("web %s: no redundant nodes", r.Dataset.Name)
		}
	}
	for _, r := range byClass[gen.ClassRoad] {
		if r.IdenticalNodes > r.Nodes/50 {
			t.Errorf("road %s: too many identical nodes (%d)", r.Dataset.Name, r.IdenticalNodes)
		}
		if float64(r.ChainNodes)/float64(r.Nodes) < 0.5 {
			t.Errorf("road %s: chain fraction too low (%d of %d)", r.Dataset.Name, r.ChainNodes, r.Nodes)
		}
		// Road networks: few blocks, the largest covering most nodes.
		if float64(r.BlockMax)/float64(r.Nodes) < 0.5 {
			t.Errorf("road %s: largest block covers only %d of %d", r.Dataset.Name, r.BlockMax, r.Nodes)
		}
	}
	var buf bytes.Buffer
	FprintTableI(&buf, rows)
	for _, want := range []string{"web-NotreDame", "usroads", "-- road --", "BiCC#"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}

func TestFig4Quality(t *testing.T) {
	rows, err := Fig4(smallCfg(), 0.2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Both approaches must land near quality 1 (paper's plots sit in
		// [0.9, 1.1]); small graphs earn some slack.
		if r.CumQuality < 0.85 || r.CumQuality > 1.15 {
			t.Errorf("%s: cumulative quality %v out of range", r.Dataset.Name, r.CumQuality)
		}
		if r.RandomQuality < 0.85 || r.RandomQuality > 1.15 {
			t.Errorf("%s: random quality %v out of range", r.Dataset.Name, r.RandomQuality)
		}
		if r.Speedup <= 0 {
			t.Errorf("%s: nonpositive speedup", r.Dataset.Name)
		}
	}
	var buf bytes.Buffer
	FprintCompare(&buf, "t", rows)
	if !strings.Contains(buf.String(), "Speedup") {
		t.Error("render missing header")
	}
}

func TestFig5Distribution(t *testing.T) {
	res, err := Fig5(smallCfg(), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset.Class != gen.ClassSocial {
		t.Fatalf("fig5 dataset class = %s, want social", res.Dataset.Class)
	}
	if len(res.RandomAR) != len(res.BiCCAR) || len(res.RandomAR) == 0 {
		t.Fatal("AR slices inconsistent")
	}
	if res.BiCCSumm.Mean < 0.85 || res.BiCCSumm.Mean > 1.15 {
		t.Errorf("bicc mean AR = %v", res.BiCCSumm.Mean)
	}
	if res.BiCCCorr < 0.9 {
		t.Errorf("bicc correlation = %v, want near 1", res.BiCCCorr)
	}
	var buf bytes.Buffer
	FprintFig5(&buf, res)
	if !strings.Contains(buf.String(), "bicc") {
		t.Error("render missing bicc row")
	}
}

func TestClassConfigs(t *testing.T) {
	if len(ClassConfigs(gen.ClassWeb)) != 3 {
		t.Error("web wants 3 configs")
	}
	if len(ClassConfigs(gen.ClassRoad)) != 2 {
		t.Error("road wants 2 configs")
	}
	if len(ClassConfigs(gen.ClassSocial)) != 3 {
		t.Error("social wants 3 configs")
	}
}

func TestFigClassShapes(t *testing.T) {
	for _, class := range []gen.Class{gen.ClassWeb, gen.ClassSocial, gen.ClassCommunity, gen.ClassRoad} {
		rows, err := FigClass(smallCfg(), class, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		perDataset := len(ClassConfigs(class)) + 1 // + random baseline
		if len(rows) != 3*perDataset {
			t.Fatalf("%s: rows = %d, want %d", class, len(rows), 3*perDataset)
		}
		for _, r := range rows {
			if r.Quality < 0.8 || r.Quality > 1.25 {
				t.Errorf("%s %s %s: quality %v out of range", class, r.Dataset.Name, r.Label, r.Quality)
			}
		}
		var buf bytes.Buffer
		FprintFigClass(&buf, class, rows)
		if !strings.Contains(buf.String(), FigureFor(class)) {
			t.Errorf("render missing figure id for %s", class)
		}
	}
}

func TestFigureFor(t *testing.T) {
	want := map[gen.Class]string{
		gen.ClassWeb: "Fig 6", gen.ClassSocial: "Fig 7",
		gen.ClassCommunity: "Fig 8", gen.ClassRoad: "Fig 9",
	}
	for c, f := range want {
		if FigureFor(c) != f {
			t.Errorf("FigureFor(%s) = %s, want %s", c, FigureFor(c), f)
		}
	}
}

func TestAblationsShapes(t *testing.T) {
	rows, err := Ablations(smallCfg(), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// One representative per class, four variants each.
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(rows))
	}
	byVariant := map[string][]AblationRow{}
	for _, r := range rows {
		byVariant[r.Label] = append(byVariant[r.Label], r)
		if r.Reduced <= 0 || r.Quality <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	// The calibrated estimator must dominate the paper-literal scaling on
	// average (the key ablation finding).
	var wq, pq float64
	for i := range byVariant["weighted-est"] {
		wq += byVariant["weighted-est"][i].Quality
		pq += byVariant["paper-est"][i].Quality
	}
	if !(absf(wq/4-1) < absf(pq/4-1)) {
		t.Errorf("weighted estimator (avg quality %.4f) should beat paper scaling (%.4f)", wq/4, pq/4)
	}
	// Iterative reduction never keeps more nodes than the single pass.
	for i := range byVariant["iterative-red"] {
		if byVariant["iterative-red"][i].Reduced > byVariant["weighted-est"][i].Reduced {
			t.Errorf("%s: iterative kept more nodes", byVariant["iterative-red"][i].Dataset.Name)
		}
	}
	var buf bytes.Buffer
	FprintAblations(&buf, rows)
	if !strings.Contains(buf.String(), "iterative-red") {
		t.Error("render missing variant")
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestChartRenderers(t *testing.T) {
	cfg := smallCfg()
	rows, err := Fig4(cfg, 0.3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	FprintCompareChart(&buf, "t", rows)
	if !strings.Contains(buf.String(), "speedup over random") || !strings.Contains(buf.String(), "quality") {
		t.Errorf("compare chart: %q", buf.String())
	}
	fc, err := FigClass(cfg, gen.ClassRoad, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	FprintFigClassChart(&buf, gen.ClassRoad, fc)
	if !strings.Contains(buf.String(), "Fig 9") {
		t.Errorf("class chart: %q", buf.String())
	}
	f5, err := Fig5(cfg, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	FprintFig5Histograms(&buf, f5)
	if !strings.Contains(buf.String(), "Fig 5(a)") || !strings.Contains(buf.String(), "Fig 5(b)") {
		t.Errorf("fig5 histograms: %q", buf.String())
	}
}

func TestFractionSweep(t *testing.T) {
	pts, err := FractionSweep(smallCfg(), gen.ClassWeb, []float64{0.2, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Fraction != 0.2 || pts[1].Fraction != 0.4 {
		t.Fatalf("points = %+v", pts)
	}
	for _, p := range pts {
		if p.CumQuality < 0.8 || p.CumQuality > 1.2 {
			t.Errorf("quality %v out of range at %v", p.CumQuality, p.Fraction)
		}
	}
	var buf bytes.Buffer
	FprintSweep(&buf, gen.ClassWeb, pts)
	if !strings.Contains(buf.String(), "sweep (web class)") {
		t.Errorf("render: %q", buf.String())
	}
}
