// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV) on the synthetic dataset stand-ins. Each
// experiment returns structured rows and can render itself as an aligned
// text table; cmd/experiments and the root benchmark suite are thin
// wrappers around this package.
//
// Experiment index (see DESIGN.md §3):
//
//	TableI  — dataset structural statistics
//	Fig4    — Cumulative vs Random sampling: quality and speedup
//	Fig5    — per-node approximation-ratio distribution, random vs BiCC
//	FigClass — Fig. 6/7/8/9: per-class relative speedup of C+R, I+C+R,
//	           Cumulative
package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/bicc"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/reduce"
	"repro/internal/stats"
	"repro/internal/viz"
)

// exactCache memoises the exact-farness oracle per (dataset, size): several
// figures evaluate the same datasets and the oracle (one BFS per node) is
// by far the most expensive part of the harness.
var exactCache sync.Map // key string -> []float64

func exactFor(cfg Config, ds gen.Dataset, g *graph.Graph) []float64 {
	key := fmt.Sprintf("%s/%d/%d", ds.Name, g.NumNodes(), g.NumEdges())
	if v, ok := exactCache.Load(key); ok {
		return v.([]float64)
	}
	far := core.ExactFarness(g, cfg.Workers)
	exactCache.Store(key, far)
	return far
}

// Config parameterises a run.
type Config struct {
	// Scale multiplies dataset sizes (1.0 = default stand-in sizes).
	Scale float64
	// Workers caps parallelism (<1 = GOMAXPROCS).
	Workers int
	// Seed drives sampling.
	Seed int64
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

// TableIRow mirrors one row of the paper's Table I.
type TableIRow struct {
	Dataset                    gen.Dataset
	Nodes, Edges               int
	IdenticalNodes             int
	IdenticalChainNodes        int
	RedundantNodes             int
	ChainNodes                 int
	BlockCount, BlockMax       int
	BlockAvg                   float64
	ReducedNodes, ReducedEdges int
}

// TableI computes the structural statistics of every dataset: twin,
// chain and redundant counts from the reduction pipeline, and the
// biconnected decomposition of the input graph.
func TableI(cfg Config) ([]TableIRow, error) {
	var rows []TableIRow
	for _, ds := range gen.Datasets(cfg.scale()) {
		g := ds.Build()
		ropts := reduce.All()
		ropts.Workers = cfg.Workers
		red, err := reduce.Run(g, ropts)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", ds.Name, err)
		}
		d := bicc.DecomposeWorkers(g.ToWeighted(), cfg.Workers)
		bs := d.Summarize()
		rows = append(rows, TableIRow{
			Dataset:             ds,
			Nodes:               g.NumNodes(),
			Edges:               g.NumEdges(),
			IdenticalNodes:      red.Stats.IdenticalNodes,
			IdenticalChainNodes: red.Stats.IdenticalChainNodes,
			RedundantNodes:      red.Stats.RedundantNodes,
			ChainNodes:          red.Stats.ChainNodes,
			BlockCount:          bs.Count,
			BlockMax:            bs.Max,
			BlockAvg:            bs.Avg,
			ReducedNodes:        red.G.NumNodes(),
			ReducedEdges:        red.G.NumEdges(),
		})
	}
	return rows, nil
}

// FprintTableI renders Table I.
func FprintTableI(w io.Writer, rows []TableIRow) {
	fmt.Fprintf(w, "%-28s %8s %9s %9s %9s %9s %9s %7s %8s %7s\n",
		"Graph", "|V|", "|E|", "Ident.", "Id.ChN", "Redund.", "ChainN", "BiCC#", "BiCCmax", "BiCCavg")
	var class gen.Class
	for _, r := range rows {
		if r.Dataset.Class != class {
			class = r.Dataset.Class
			fmt.Fprintf(w, "-- %s --\n", class)
		}
		fmt.Fprintf(w, "%-28s %8d %9d %9d %9d %9d %9d %7d %8d %7.1f\n",
			r.Dataset.Name, r.Nodes, r.Edges, r.IdenticalNodes, r.IdenticalChainNodes,
			r.RedundantNodes, r.ChainNodes, r.BlockCount, r.BlockMax, r.BlockAvg)
	}
}

// CompareRow is one dataset's Cumulative-vs-Random comparison (Fig. 4).
type CompareRow struct {
	Dataset        gen.Dataset
	RandomQuality  float64
	RandomErrorPct float64
	RandomTime     time.Duration
	CumQuality     float64
	CumErrorPct    float64
	CumTime        time.Duration
	Speedup        float64
	RandomFraction float64
	CumFraction    float64
}

// Fig4 runs the paper's Fig. 4 comparison at the given sampling fractions:
// 4(a) uses 0.4/0.4, 4(b) uses cumulative 0.2 vs random 0.3.
func Fig4(cfg Config, cumFraction, randFraction float64) ([]CompareRow, error) {
	var rows []CompareRow
	for _, ds := range gen.Datasets(cfg.scale()) {
		g := ds.Build()
		row, err := compareOne(cfg, ds, g, cumFraction, randFraction)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func compareOne(cfg Config, ds gen.Dataset, g *graph.Graph, cumFraction, randFraction float64) (CompareRow, error) {
	actual := exactFor(cfg, ds, g)

	start := time.Now()
	rnd := core.RandomSampling(g, randFraction, cfg.Workers, cfg.Seed)
	randTime := time.Since(start)

	start = time.Now()
	cum, err := core.Estimate(g, core.Options{
		Techniques:     core.TechCumulative,
		SampleFraction: cumFraction,
		Workers:        cfg.Workers,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return CompareRow{}, fmt.Errorf("%s: %v", ds.Name, err)
	}
	cumTime := time.Since(start)

	return CompareRow{
		Dataset:        ds,
		RandomQuality:  stats.Quality(rnd.Farness, actual),
		RandomErrorPct: stats.AvgErrorPercent(rnd.Farness, actual),
		RandomTime:     randTime,
		CumQuality:     stats.Quality(cum.Farness, actual),
		CumErrorPct:    stats.AvgErrorPercent(cum.Farness, actual),
		CumTime:        cumTime,
		Speedup:        stats.Speedup(randTime, cumTime),
		RandomFraction: randFraction,
		CumFraction:    cumFraction,
	}, nil
}

// FprintCompare renders a Fig. 4-style table.
func FprintCompare(w io.Writer, title string, rows []CompareRow) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-28s %10s %8s %10s %10s %8s %10s %8s\n",
		"Graph", "RandQual", "RandErr%", "RandTime", "CumQual", "CumErr%", "CumTime", "Speedup")
	var class gen.Class
	for _, r := range rows {
		if r.Dataset.Class != class {
			class = r.Dataset.Class
			fmt.Fprintf(w, "-- %s --\n", class)
		}
		fmt.Fprintf(w, "%-28s %10.4f %8.2f %10s %10.4f %8.2f %10s %8.2f\n",
			r.Dataset.Name, r.RandomQuality, r.RandomErrorPct, fmtDur(r.RandomTime),
			r.CumQuality, r.CumErrorPct, fmtDur(r.CumTime), r.Speedup)
	}
}

// Fig5Result holds the per-node AR distributions of the two approaches on
// one (social) graph — the scatter of the paper's Fig. 5.
type Fig5Result struct {
	Dataset    gen.Dataset
	RandomAR   []float64
	BiCCAR     []float64
	RandomSumm stats.Summary
	BiCCSumm   stats.Summary
	RandomCorr float64
	BiCCCorr   float64
}

// Fig5 compares per-node approximation ratios of random sampling vs the
// BiCC-based cumulative approach on the first social dataset.
func Fig5(cfg Config, fraction float64) (*Fig5Result, error) {
	var ds gen.Dataset
	for _, d := range gen.Datasets(cfg.scale()) {
		if d.Class == gen.ClassSocial {
			ds = d
			break
		}
	}
	g := ds.Build()
	actual := exactFor(cfg, ds, g)
	rnd := core.RandomSampling(g, fraction, cfg.Workers, cfg.Seed)
	cum, err := core.Estimate(g, core.Options{
		Techniques:     core.TechCumulative,
		SampleFraction: fraction,
		Workers:        cfg.Workers,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{
		Dataset:    ds,
		RandomAR:   stats.AR(rnd.Farness, actual),
		BiCCAR:     stats.AR(cum.Farness, actual),
		RandomCorr: stats.Pearson(rnd.Farness, actual),
		BiCCCorr:   stats.Pearson(cum.Farness, actual),
	}
	res.RandomSumm = stats.Summarize(res.RandomAR)
	res.BiCCSumm = stats.Summarize(res.BiCCAR)
	return res, nil
}

// FprintFig5 renders the AR distribution summary.
func FprintFig5(w io.Writer, r *Fig5Result) {
	fmt.Fprintf(w, "Fig 5: per-node approximation ratio on %s\n", r.Dataset.Name)
	fmt.Fprintf(w, "%-10s %8s %8s %8s %8s %8s %8s %8s\n", "approach", "min", "p25", "median", "p75", "max", "mean", "corr")
	s := r.RandomSumm
	fmt.Fprintf(w, "%-10s %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f\n", "random", s.Min, s.P25, s.Median, s.P75, s.Max, s.Mean, r.RandomCorr)
	s = r.BiCCSumm
	fmt.Fprintf(w, "%-10s %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f\n", "bicc", s.Min, s.P25, s.Median, s.P75, s.Max, s.Mean, r.BiCCCorr)
}

// ConfigResult is one (dataset, technique-configuration) measurement of
// the Fig. 6–9 ablations.
type ConfigResult struct {
	Dataset  gen.Dataset
	Config   core.Technique
	Label    string
	Time     time.Duration
	Quality  float64
	ErrorPct float64
	Speedup  float64 // vs random sampling at the same fraction
}

// classFigure maps classes to the paper's figure numbers.
var classFigure = map[gen.Class]string{
	gen.ClassWeb:       "Fig 6",
	gen.ClassSocial:    "Fig 7",
	gen.ClassCommunity: "Fig 8",
	gen.ClassRoad:      "Fig 9",
}

// FigureFor returns the paper figure id for a class.
func FigureFor(class gen.Class) string { return classFigure[class] }

// ClassConfigs returns the technique configurations the paper evaluates
// for each class (Section IV-C2): web and community run C+R, I+C+R and
// Cumulative; social skips R (few redundant nodes); road uses the chain
// optimisation and the BiCC variant.
func ClassConfigs(class gen.Class) []core.Technique {
	switch class {
	case gen.ClassSocial:
		return []core.Technique{
			core.TechChains,
			core.TechIdentical | core.TechChains,
			core.TechBiCC | core.TechIdentical | core.TechChains,
		}
	case gen.ClassRoad:
		return []core.Technique{
			core.TechChains,
			core.TechBiCC | core.TechChains,
		}
	default:
		return []core.Technique{
			core.TechCR,
			core.TechICR,
			core.TechCumulative,
		}
	}
}

// FigClass runs the per-class ablation (Figs. 6–9) at the given fraction
// (the paper uses 0.4).
func FigClass(cfg Config, class gen.Class, fraction float64) ([]ConfigResult, error) {
	var out []ConfigResult
	for _, ds := range gen.Datasets(cfg.scale()) {
		if ds.Class != class {
			continue
		}
		g := ds.Build()
		actual := exactFor(cfg, ds, g)

		start := time.Now()
		rnd := core.RandomSampling(g, fraction, cfg.Workers, cfg.Seed)
		randTime := time.Since(start)
		out = append(out, ConfigResult{
			Dataset: ds, Config: 0, Label: "random",
			Time:     randTime,
			Quality:  stats.Quality(rnd.Farness, actual),
			ErrorPct: stats.AvgErrorPercent(rnd.Farness, actual),
			Speedup:  1,
		})
		for _, tech := range ClassConfigs(class) {
			start = time.Now()
			res, err := core.Estimate(g, core.Options{
				Techniques:     tech,
				SampleFraction: fraction,
				Workers:        cfg.Workers,
				Seed:           cfg.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("%s %v: %v", ds.Name, tech, err)
			}
			dur := time.Since(start)
			out = append(out, ConfigResult{
				Dataset: ds, Config: tech, Label: tech.String(),
				Time:     dur,
				Quality:  stats.Quality(res.Farness, actual),
				ErrorPct: stats.AvgErrorPercent(res.Farness, actual),
				Speedup:  stats.Speedup(randTime, dur),
			})
		}
	}
	return out, nil
}

// FprintFigClass renders a Fig. 6–9-style table.
func FprintFigClass(w io.Writer, class gen.Class, rows []ConfigResult) {
	fmt.Fprintf(w, "%s: relative speedup of optimisations on %s graphs (baseline: random sampling)\n",
		classFigure[class], class)
	fmt.Fprintf(w, "%-28s %-8s %10s %9s %8s %8s\n", "Graph", "config", "time", "speedup", "quality", "err%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %-8s %10s %9.2f %8.4f %8.2f\n",
			r.Dataset.Name, r.Label, fmtDur(r.Time), r.Speedup, r.Quality, r.ErrorPct)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// FprintCompareChart renders a Fig. 4-style comparison as a speedup bar
// chart with quality annotations (mirroring how the paper annotates its
// histogram bars with speedup values).
func FprintCompareChart(w io.Writer, title string, rows []CompareRow) {
	bars := make([]viz.Bar, 0, len(rows))
	for _, r := range rows {
		bars = append(bars, viz.Bar{
			Label: r.Dataset.Name,
			Value: r.Speedup,
			Note:  fmt.Sprintf("quality %.4f (random %.4f)", r.CumQuality, r.RandomQuality),
		})
	}
	viz.BarChart(w, title+" — speedup over random sampling", bars, 40)
}

// FprintFigClassChart renders a Fig. 6–9-style ablation as grouped speedup
// bars.
func FprintFigClassChart(w io.Writer, class gen.Class, rows []ConfigResult) {
	bars := make([]viz.Bar, 0, len(rows))
	for _, r := range rows {
		bars = append(bars, viz.Bar{
			Label: r.Dataset.Name + " " + r.Label,
			Value: r.Speedup,
			Note:  fmt.Sprintf("quality %.4f", r.Quality),
		})
	}
	viz.BarChart(w, fmt.Sprintf("%s (%s graphs) — relative speedup", classFigure[class], class), bars, 40)
}

// FprintFig5Histograms renders the two AR distributions as histograms —
// the textual analogue of the paper's Fig. 5 scatter plots.
func FprintFig5Histograms(w io.Writer, r *Fig5Result) {
	const bins = 12
	c1, min1, w1 := stats.Histogram(r.RandomAR, bins)
	viz.Histogram(w, fmt.Sprintf("Fig 5(a) random sampling AR distribution on %s", r.Dataset.Name), c1, min1, w1, 36)
	c2, min2, w2 := stats.Histogram(r.BiCCAR, bins)
	viz.Histogram(w, fmt.Sprintf("Fig 5(b) BiCC sampling AR distribution on %s", r.Dataset.Name), c2, min2, w2, 36)
}

// AblationRow is one configuration of the beyond-the-paper ablation table.
type AblationRow struct {
	Dataset  gen.Dataset
	Label    string
	Time     time.Duration
	Quality  float64
	ErrorPct float64
	Reduced  int
}

// Ablations runs the design-choice comparisons DESIGN.md calls out, on one
// representative graph per class: estimator kinds, exact propagation
// on/off, and single-pass vs fixpoint reduction.
func Ablations(cfg Config, fraction float64) ([]AblationRow, error) {
	var out []AblationRow
	seen := map[gen.Class]bool{}
	for _, ds := range gen.Datasets(cfg.scale()) {
		if seen[ds.Class] {
			continue
		}
		seen[ds.Class] = true
		g := ds.Build()
		actual := exactFor(cfg, ds, g)
		variants := []struct {
			label string
			opts  core.Options
		}{
			{"weighted-est", core.Options{Techniques: core.TechCumulative, SampleFraction: fraction}},
			{"paper-est", core.Options{Techniques: core.TechCumulative, SampleFraction: fraction, Estimator: core.EstimatorPaper}},
			{"no-propagation", core.Options{Techniques: core.TechCumulative, SampleFraction: fraction, DisableExactPropagation: true}},
			{"iterative-red", core.Options{Techniques: core.TechCumulative, SampleFraction: fraction, IterateReductions: true}},
		}
		for _, v := range variants {
			v.opts.Workers = cfg.Workers
			v.opts.Seed = cfg.Seed
			start := time.Now()
			res, err := core.Estimate(g, v.opts)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %v", ds.Name, v.label, err)
			}
			out = append(out, AblationRow{
				Dataset:  ds,
				Label:    v.label,
				Time:     time.Since(start),
				Quality:  stats.Quality(res.Farness, actual),
				ErrorPct: stats.AvgErrorPercent(res.Farness, actual),
				Reduced:  res.Stats.ReducedNodes,
			})
		}
	}
	return out, nil
}

// FprintAblations renders the ablation table.
func FprintAblations(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "Ablations (beyond the paper): estimator, propagation, fixpoint reduction")
	fmt.Fprintf(w, "%-28s %-16s %10s %8s %8s %9s\n", "Graph", "variant", "time", "quality", "err%", "reduced")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %-16s %10s %8.4f %8.2f %9d\n",
			r.Dataset.Name, r.Label, fmtDur(r.Time), r.Quality, r.ErrorPct, r.Reduced)
	}
}

// SweepPoint is one sampling fraction's measurement in the crossover sweep.
type SweepPoint struct {
	Fraction                  float64
	RandQuality, CumQuality   float64
	RandErrorPct, CumErrorPct float64
	RandTime, CumTime         time.Duration
}

// FractionSweep measures quality and time for both approaches across
// sampling fractions on one representative graph per class — the series
// behind the paper's Fig. 4 claim that cumulative@20% ≥ random@30%.
func FractionSweep(cfg Config, class gen.Class, fractions []float64) ([]SweepPoint, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5}
	}
	var ds gen.Dataset
	for _, d := range gen.Datasets(cfg.scale()) {
		if d.Class == class {
			ds = d
			break
		}
	}
	g := ds.Build()
	actual := exactFor(cfg, ds, g)
	var out []SweepPoint
	for _, f := range fractions {
		start := time.Now()
		rnd := core.RandomSampling(g, f, cfg.Workers, cfg.Seed)
		randTime := time.Since(start)
		start = time.Now()
		cum, err := core.Estimate(g, core.Options{
			Techniques:     core.TechCumulative,
			SampleFraction: f,
			Workers:        cfg.Workers,
			Seed:           cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("%s @%g: %v", ds.Name, f, err)
		}
		out = append(out, SweepPoint{
			Fraction:     f,
			RandQuality:  stats.Quality(rnd.Farness, actual),
			CumQuality:   stats.Quality(cum.Farness, actual),
			RandErrorPct: stats.AvgErrorPercent(rnd.Farness, actual),
			CumErrorPct:  stats.AvgErrorPercent(cum.Farness, actual),
			RandTime:     randTime,
			CumTime:      time.Since(start),
		})
	}
	return out, nil
}

// FprintSweep renders the sweep with error sparklines.
func FprintSweep(w io.Writer, class gen.Class, pts []SweepPoint) {
	fmt.Fprintf(w, "Sampling-fraction sweep (%s class): cumulative vs random\n", class)
	fmt.Fprintf(w, "%8s %10s %8s %10s %10s %8s %10s\n",
		"fraction", "RandQual", "RandErr%", "RandTime", "CumQual", "CumErr%", "CumTime")
	var randErr, cumErr []float64
	for _, p := range pts {
		fmt.Fprintf(w, "%8.2f %10.4f %8.2f %10s %10.4f %8.2f %10s\n",
			p.Fraction, p.RandQuality, p.RandErrorPct, fmtDur(p.RandTime),
			p.CumQuality, p.CumErrorPct, fmtDur(p.CumTime))
		randErr = append(randErr, p.RandErrorPct)
		cumErr = append(cumErr, p.CumErrorPct)
	}
	fmt.Fprintf(w, "error%% vs fraction: random %s  cumulative %s\n",
		viz.Sparkline(randErr), viz.Sparkline(cumErr))
}
