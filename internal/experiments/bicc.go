package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"time"

	"repro/internal/bicc"
	"repro/internal/gen"
	"repro/internal/reduce"
)

// BiCCRow is one (dataset, engine, worker count) point of the biconnected-
// decomposition scaling study. The decomposition runs on the *reduced*
// graph of each dataset — that is the graph the pipeline's "B" stage
// actually sees — and every cell is verified bit-identical to the
// sequential one-worker decomposition before it is recorded, the same
// contract the other engine studies enforce.
type BiCCRow struct {
	Dataset gen.Dataset   `json:"-"`
	Name    string        `json:"name"`
	Class   string        `json:"class"`
	Nodes   int           `json:"nodes"`
	Edges   int           `json:"edges"`
	Blocks  int           `json:"blocks"`
	Engine  string        `json:"engine"`
	Workers int           `json:"workers"`
	Total   time.Duration `json:"total_ns"`
	Timings bicc.Timings  `json:"stages_ns"`
	Speedup float64       `json:"speedup_vs_seq"`
}

// biccWorkerSweep is the scaling axis of the study.
var biccWorkerSweep = []int{1, 2, 4, 8}

// BiCCBench measures both decomposition engines on the reduced graph of one
// dataset per class, engine × worker count, best of three runs per cell.
// The sequential Hopcroft–Tarjan engine only fans out across connected
// components, so on a reduced graph dominated by one giant component its
// sweep is flat by construction — the contrast against the FAST-BCC
// engine's intra-component sweep is the point of the table.
func BiCCBench(cfg Config) ([]BiCCRow, error) {
	var rows []BiCCRow
	seen := map[gen.Class]bool{}
	for _, ds := range gen.Datasets(cfg.scale()) {
		if seen[ds.Class] {
			continue
		}
		seen[ds.Class] = true
		g := ds.Build()
		ropts := reduce.All()
		ropts.Workers = cfg.Workers
		red, err := reduce.Run(g, ropts)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", ds.Name, err)
		}
		wg := red.G
		want := bicc.DecomposeAlgo(wg, bicc.AlgoSequential, 1)
		var baseline time.Duration
		for _, algo := range []bicc.Algorithm{bicc.AlgoSequential, bicc.AlgoParallel} {
			for _, w := range biccWorkerSweep {
				row := BiCCRow{
					Dataset: ds,
					Name:    ds.Name,
					Class:   string(ds.Class),
					Nodes:   wg.NumNodes(),
					Edges:   wg.NumEdges(),
					Blocks:  want.NumBlocks(),
					Engine:  algo.String(),
					Workers: w,
				}
				for rep := 0; rep < 3; rep++ {
					d, t := bicc.DecomposeTimed(wg, algo, w)
					if !reflect.DeepEqual(d, want) {
						return nil, fmt.Errorf("%s %s/w=%d: decomposition differs from sequential baseline",
							ds.Name, algo, w)
					}
					if rep == 0 || t.Total < row.Total {
						row.Total = t.Total
						row.Timings = t
					}
				}
				if algo == bicc.AlgoSequential && w == 1 {
					baseline = row.Total
				}
				if row.Total > 0 {
					row.Speedup = float64(baseline) / float64(row.Total)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// FprintBiCC renders the decomposition scaling table with the parallel
// engine's substage split; speedup >1 beats the sequential Hopcroft–Tarjan
// DFS at one worker on the same reduced graph.
func FprintBiCC(w io.Writer, rows []BiCCRow) {
	fmt.Fprintf(w, "BiCC decomposition scaling: reduced graph, engine x workers\n")
	fmt.Fprintf(w, "(identical Decomposition in every cell; speedup is vs the same dataset's hopcroft-tarjan/1-worker run)\n")
	fmt.Fprintf(w, "%-28s %-10s %8s %8s %-16s %8s %9s %9s %9s %9s %10s %8s\n",
		"Graph", "Class", "nodes", "blocks", "engine", "workers", "forest", "tags", "label", "assemble", "total", "speedup")
	prev := ""
	for _, r := range rows {
		name, class := r.Name, r.Class
		if name == prev {
			name, class = "", ""
		} else {
			prev = name
		}
		fmt.Fprintf(w, "%-28s %-10s %8d %8d %-16s %8d %9s %9s %9s %9s %10s %7.2fx\n",
			name, class, r.Nodes, r.Blocks, r.Engine, r.Workers,
			fmtDur(r.Timings.SpanningForest), fmtDur(r.Timings.Tagging), fmtDur(r.Timings.Labeling),
			fmtDur(r.Timings.Assemble), fmtDur(r.Total), r.Speedup)
	}
}

// biccReport is the BENCH_bicc.json document.
type biccReport struct {
	GOMAXPROCS int       `json:"gomaxprocs"`
	NumCPU     int       `json:"num_cpu"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	Scale      float64   `json:"scale"`
	Note       string    `json:"note"`
	Rows       []BiCCRow `json:"rows"`
}

// WriteBiCCJSON writes the decomposition scaling study to path as JSON so
// `make bench-bicc` leaves a machine-readable record next to the text table.
func WriteBiCCJSON(path string, cfg Config, rows []BiCCRow) error {
	rep := biccReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Scale:      cfg.scale(),
		Note: "Biconnected decomposition of each dataset's reduced graph, engine x worker count; every " +
			"cell verified bit-identical to the hopcroft-tarjan/1-worker Decomposition before recording. " +
			"stages_ns splits the fastbcc engine's phases (forest/tags/label; zero under hopcroft-tarjan, " +
			"which only fans out across connected components). speedup_vs_seq compares against the " +
			"hopcroft-tarjan/1-worker cell of the same dataset. Worker counts above num_cpu time-slice " +
			"a single core and cannot show real scaling on this host.",
		Rows: rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
