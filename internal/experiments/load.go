package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/bfs"
	"repro/internal/bincsr"
	"repro/internal/gen"
	"repro/internal/graph"
	repro_io "repro/internal/io"
)

// LoadRow is one dataset of the cold-start study: time-to-first-query (load
// the graph, answer one BFS) through the three load paths a server can take
// — parse the text edge list, read the binary CSR artifact through a
// buffered stream, or mmap the artifact zero-copy. FirstTraversal isolates
// the page-fault cost of the mmap path: the first BFS is what actually
// touches the mapped adjacency pages, so it is the honest place to account
// for them. Before any timing, the CSR loaded through every path is checked
// word-for-word identical to the built graph — bit-identical farness follows
// because every estimator is deterministic on the CSR.
type LoadRow struct {
	Dataset gen.Dataset `json:"-"`
	Name    string      `json:"name"`
	Class   string      `json:"class"`
	Nodes   int         `json:"nodes"`
	Edges   int         `json:"edges"`
	// Largest marks the biggest graph of the run — the acceptance row for
	// the mmap-vs-text speedup.
	Largest bool `json:"largest"`

	TextBytes int64 `json:"text_bytes"`
	BinBytes  int64 `json:"artifact_bytes"`

	// TTFQ = load + one full BFS from node 0, best of loadReps runs with a
	// warm page cache (the registry's steady state: artifacts sit in the
	// cache, processes come and go).
	TextTTFQ time.Duration `json:"text_ttfq_ns"`
	BinTTFQ  time.Duration `json:"bin_ttfq_ns"`
	MmapTTFQ time.Duration `json:"mmap_ttfq_ns"`

	// MmapOpen is the map+verify portion alone (header and offsets CRC, no
	// edge pages touched); FirstTraversal is the first BFS over the fresh
	// mapping, where the adjacency pages actually fault in.
	MmapOpen       time.Duration `json:"mmap_open_ns"`
	FirstTraversal time.Duration `json:"mmap_first_traversal_ns"`

	// Speedup is TextTTFQ / MmapTTFQ — the acceptance ratio (≥10x on the
	// largest graph).
	Speedup float64 `json:"mmap_ttfq_speedup_vs_text"`
	// Mapped is false on hosts without mmap support, where the "mmap" path
	// silently degrades to a heap copy (the numbers then measure that).
	Mapped bool `json:"mapped"`
}

// loadReps is how many times each load path runs; the minimum is reported,
// the standard cold-start benchmarking stance (the minimum is the run least
// disturbed by the scheduler, and the page cache is deliberately warm).
const loadReps = 3

// firstQuery answers one full BFS from node 0 and folds the distances so
// the traversal cannot be optimised away. It is the "first query" of TTFQ:
// cheap against a text parse, yet it walks every CSR page once — exactly
// the access pattern that makes a lazy mmap load pay its deferred cost.
func firstQuery(g *graph.Graph) int64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	dist := make([]int32, n)
	bfs.Distances(g, 0, dist, nil)
	var sum int64
	for _, d := range dist {
		sum += int64(d)
	}
	return sum
}

// sameCSR reports whether two graphs hold word-for-word identical CSR
// arrays. Identical CSR ⇒ bit-identical farness at every worker count:
// every traversal kernel is deterministic on the CSR words.
func sameCSR(a, b *graph.Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	ao, aa := a.CSR()
	bo, ba := b.CSR()
	for i := range ao {
		if ao[i] != bo[i] {
			return false
		}
	}
	for i := range aa {
		if aa[i] != ba[i] {
			return false
		}
	}
	return true
}

// minLoad times one load path loadReps times and keeps the fastest.
func minLoad(load func() (time.Duration, error)) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < loadReps; i++ {
		d, err := load()
		if err != nil {
			return 0, err
		}
		if i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// LoadBench measures the three load paths on one dataset per graph class.
// Datasets are connected first and written to a temp dir as both a text
// edge list and a .bricsbin artifact; each path then loads its file back
// and answers one BFS. The largest graph of the run carries the acceptance
// ratio.
func LoadBench(cfg Config) ([]LoadRow, error) {
	dir, err := os.MkdirTemp("", "brics-load")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var rows []LoadRow
	seen := map[gen.Class]bool{}
	for _, ds := range gen.Datasets(cfg.scale()) {
		if seen[ds.Class] {
			continue
		}
		seen[ds.Class] = true
		g := graph.Connect(ds.Build())
		row := LoadRow{
			Dataset: ds,
			Name:    ds.Name,
			Class:   string(ds.Class),
			Nodes:   g.NumNodes(),
			Edges:   g.NumEdges(),
		}

		txtPath := filepath.Join(dir, fmt.Sprintf("%s.txt", ds.Class))
		binPath := filepath.Join(dir, fmt.Sprintf("%s.bricsbin", ds.Class))
		f, err := os.Create(txtPath)
		if err != nil {
			return nil, err
		}
		if err := repro_io.WriteEdgeList(f, g); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		if err := bincsr.WriteFile(binPath, g, bincsr.FlagConnected); err != nil {
			return nil, err
		}
		for _, p := range []struct {
			path string
			size *int64
		}{{txtPath, &row.TextBytes}, {binPath, &row.BinBytes}} {
			st, err := os.Stat(p.path)
			if err != nil {
				return nil, err
			}
			*p.size = st.Size()
		}

		// Correctness gate before any timing: every load path must hand back
		// the exact CSR words the generator built (farness bit-identity
		// follows; the bincsr identity test additionally proves it end to
		// end at several worker counts).
		want := firstQuery(g)
		gate := func(name string, got *graph.Graph) error {
			if !sameCSR(g, got) {
				return fmt.Errorf("%s: %s load path returned a different CSR", ds.Name, name)
			}
			if q := firstQuery(got); q != want {
				return fmt.Errorf("%s: %s load path: BFS checksum %d, want %d", ds.Name, name, q, want)
			}
			return nil
		}
		gt, err := repro_io.ReadAny(txtPath)
		if err != nil {
			return nil, err
		}
		if err := gate("text", gt); err != nil {
			return nil, err
		}
		gb, err := bincsr.ReadFile(binPath)
		if err != nil {
			return nil, err
		}
		if err := gate("binary", gb.G); err != nil {
			return nil, err
		}
		m, err := bincsr.OpenMapped(binPath, bincsr.Options{Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		row.Mapped = m.Mapped()
		gerr := gate("mmap", m.G)
		if cerr := m.Close(); gerr == nil && cerr != nil {
			gerr = cerr
		}
		if gerr != nil {
			return nil, gerr
		}

		// Text parse TTFQ.
		row.TextTTFQ, err = minLoad(func() (time.Duration, error) {
			start := time.Now()
			g, err := repro_io.ReadAny(txtPath)
			if err != nil {
				return 0, err
			}
			firstQuery(g)
			return time.Since(start), nil
		})
		if err != nil {
			return nil, err
		}

		// Binary buffered-read TTFQ.
		row.BinTTFQ, err = minLoad(func() (time.Duration, error) {
			start := time.Now()
			art, err := bincsr.ReadFile(binPath)
			if err != nil {
				return 0, err
			}
			firstQuery(art.G)
			return time.Since(start), nil
		})
		if err != nil {
			return nil, err
		}

		// Mmap TTFQ, split into the open (header+offsets verify, no edge
		// pages) and the first traversal (pages fault in here). The split
		// reported is the one from the fastest run, so open + traversal sum
		// to the TTFQ cell.
		var best time.Duration
		row.MmapTTFQ, err = minLoad(func() (time.Duration, error) {
			start := time.Now()
			m, err := bincsr.OpenMapped(binPath, bincsr.Options{Workers: cfg.Workers})
			if err != nil {
				return 0, err
			}
			opened := time.Since(start)
			firstQuery(m.G)
			total := time.Since(start)
			if err := m.Close(); err != nil {
				return 0, err
			}
			if best == 0 || total < best {
				best = total
				row.MmapOpen = opened
				row.FirstTraversal = total - opened
			}
			return total, nil
		})
		if err != nil {
			return nil, err
		}
		if row.MmapTTFQ > 0 {
			row.Speedup = float64(row.TextTTFQ) / float64(row.MmapTTFQ)
		}
		rows = append(rows, row)
	}
	// The acceptance criterion reads off the largest graph of the run.
	largest := -1
	for i, r := range rows {
		if largest < 0 || r.Nodes > rows[largest].Nodes {
			largest = i
		}
	}
	if largest >= 0 {
		rows[largest].Largest = true
	}
	return rows, nil
}

// FprintLoad renders the cold-start table.
func FprintLoad(w io.Writer, rows []LoadRow) {
	fmt.Fprintf(w, "Artifact load paths: time-to-first-query (load + one BFS), best of %d\n", loadReps)
	fmt.Fprintf(w, "(CSR verified word-identical across all three paths before timing;\n")
	fmt.Fprintf(w, " mmap open verifies header+offsets only — edge pages fault in during the first traversal)\n")
	fmt.Fprintf(w, "%-28s %-10s %9s %9s %10s %10s %10s %10s %10s %9s\n",
		"Graph", "Class", "text B", "bin B", "text ttfq", "bin ttfq", "mmap ttfq", "map+vrfy", "1st trav", "speedup")
	for _, r := range rows {
		mark := " "
		if r.Largest {
			mark = "*"
		}
		fmt.Fprintf(w, "%-27s%s %-10s %9d %9d %10s %10s %10s %10s %10s %8.1fx\n",
			r.Name, mark, r.Class, r.TextBytes, r.BinBytes,
			fmtDur(r.TextTTFQ), fmtDur(r.BinTTFQ), fmtDur(r.MmapTTFQ),
			fmtDur(r.MmapOpen), fmtDur(r.FirstTraversal), r.Speedup)
	}
	fmt.Fprintf(w, "(* largest graph — the acceptance row for the mmap-vs-text ratio)\n")
}

// loadReport is the BENCH_load.json document.
type loadReport struct {
	GOMAXPROCS int       `json:"gomaxprocs"`
	NumCPU     int       `json:"num_cpu"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	Scale      float64   `json:"scale"`
	Note       string    `json:"note"`
	Rows       []LoadRow `json:"rows"`
}

// WriteLoadJSON writes the study to path as JSON so `make bench-load`
// leaves a machine-readable record next to the text table.
func WriteLoadJSON(path string, cfg Config, rows []LoadRow) error {
	rep := loadReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Scale:      cfg.scale(),
		Note: "Time-to-first-query (load + one full BFS) of the three graph load paths: text edge-list " +
			"parse, buffered binary CSR read, and mmap zero-copy open. Best of " +
			fmt.Sprint(loadReps) + " runs with a warm page cache (the registry steady state). " +
			"mmap_open_ns covers map + header/offsets verification only; the adjacency pages fault in " +
			"during mmap_first_traversal_ns. The CSR from every path was verified word-identical to the " +
			"generated graph before timing, which pins bit-identical farness across paths. The row with " +
			"largest=true carries the acceptance ratio (mmap TTFQ >= 10x faster than text parse).",
		Rows: rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
