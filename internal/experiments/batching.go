package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// BatchingRow is one (dataset, estimator engine, batching mode) point of the
// source-packing matrix: wall-clock of the run, its traversal-phase share,
// and the speedup over the same (dataset, engine) pair's arbitrary-order
// run. Batching only permutes the order sampled sources enter the 64-wide
// bit-parallel batches — every cell of a (dataset, engine) pair produces
// bit-identical farness (the bench verifies this), so the matrix isolates
// the pure lane-overlap effect of proximity clustering.
type BatchingRow struct {
	Dataset  gen.Dataset   `json:"-"`
	Name     string        `json:"name"`
	Class    string        `json:"class"`
	Engine   string        `json:"engine"`
	Batching string        `json:"batching"`
	Total    time.Duration `json:"total_ns"`
	Traverse time.Duration `json:"traverse_ns"`
	Speedup  float64       `json:"speedup_vs_arbitrary"`
}

// batchingEngines names the two estimator paths the matrix exercises:
// "sampling" is the pure random-sampling baseline on the raw graph (batched
// kernel cost dominates, so the clustering effect shows undiluted) and
// "cumulative" is the full BRICS pipeline (reductions shrink the traversal
// share, measuring what clustering is worth end to end).
var batchingEngines = []string{"sampling", "cumulative"}

var batchingModes = []core.BatchingMode{core.BatchingArbitrary, core.BatchingClustered}

// BatchingBench measures the batching×engine matrix on one dataset per graph
// class at the given sampling fraction. Each cell is the best of two runs
// (the first pays allocator warm-up); the speedup column compares against
// the arbitrary-order cell of the same (dataset, engine) pair. The bench
// fails if any clustered run's farness differs from its arbitrary twin —
// clustering that changed an output value would be a correctness bug, not a
// perf result.
func BatchingBench(cfg Config, fraction float64) ([]BatchingRow, error) {
	if fraction <= 0 {
		fraction = 0.2
	}
	var rows []BatchingRow
	seen := map[gen.Class]bool{}
	for _, ds := range gen.Datasets(cfg.scale()) {
		if seen[ds.Class] {
			continue
		}
		seen[ds.Class] = true
		g := ds.Build()
		for _, eng := range batchingEngines {
			var arbitrary time.Duration
			var arbFar []float64
			for _, bm := range batchingModes {
				row := BatchingRow{
					Dataset:  ds,
					Name:     ds.Name,
					Class:    string(ds.Class),
					Engine:   eng,
					Batching: bm.String(),
				}
				var far []float64
				for rep := 0; rep < 2; rep++ {
					start := time.Now()
					var res *core.Result
					var err error
					if eng == "sampling" {
						res, err = core.RandomSamplingModeContext(context.Background(), g, fraction,
							cfg.Workers, cfg.Seed, core.TraversalBatched, bm)
					} else {
						res, err = core.Estimate(g, core.Options{
							Techniques:     core.TechCumulative,
							SampleFraction: fraction,
							Workers:        cfg.Workers,
							Seed:           cfg.Seed,
							Traversal:      core.TraversalBatched,
							Batching:       bm,
						})
					}
					total := time.Since(start)
					if err != nil {
						return nil, fmt.Errorf("%s %s/%s: %v", ds.Name, eng, bm, err)
					}
					if rep == 0 || total < row.Total {
						row.Total = total
						row.Traverse = res.Stats.Traverse
					}
					far = res.Farness
				}
				switch bm {
				case core.BatchingArbitrary:
					arbitrary = row.Total
					arbFar = far
					row.Speedup = 1
				default:
					for v := range far {
						if far[v] != arbFar[v] {
							return nil, fmt.Errorf("%s %s: clustered batching changed farness[%d]: %g != %g",
								ds.Name, eng, v, far[v], arbFar[v])
						}
					}
					if row.Total > 0 {
						row.Speedup = float64(arbitrary) / float64(row.Total)
					}
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// FprintBatching renders the source-packing matrix; speedup >1 means
// proximity clustering beats sample-draw order on that (dataset, engine)
// pair.
func FprintBatching(w io.Writer, fraction float64, rows []BatchingRow) {
	fmt.Fprintf(w, "Source-batching matrix: batching mode x estimator engine, batched traversal at %.0f%% sampling\n", fraction*100)
	fmt.Fprintf(w, "(identical farness in every cell; speedup is vs the same dataset+engine's batching=arbitrary run)\n")
	fmt.Fprintf(w, "%-28s %-10s %-11s %-10s %10s %10s %8s\n",
		"Graph", "Class", "engine", "batching", "traverse", "total", "speedup")
	prev := ""
	for _, r := range rows {
		name, class := r.Name, r.Class
		if name == prev {
			name, class = "", ""
		} else {
			prev = name
		}
		fmt.Fprintf(w, "%-28s %-10s %-11s %-10s %10s %10s %7.2fx\n",
			name, class, r.Engine, r.Batching, fmtDur(r.Traverse), fmtDur(r.Total), r.Speedup)
	}
}

// batchingReport is the BENCH_batching.json document.
type batchingReport struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Scale      float64       `json:"scale"`
	Fraction   float64       `json:"fraction"`
	Note       string        `json:"note"`
	Rows       []BatchingRow `json:"rows"`
}

// WriteBatchingJSON writes the source-packing matrix to path as JSON so
// `make bench-batching` leaves a machine-readable record next to the text
// table.
func WriteBatchingJSON(path string, cfg Config, fraction float64, rows []BatchingRow) error {
	rep := batchingReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Scale:      cfg.scale(),
		Fraction:   fraction,
		Note: "Wall-clock per (batching mode, estimator engine) cell under the batched traversal engine; " +
			"batching only permutes source order, never the sample set, so every cell of a dataset+engine " +
			"pair produces bit-identical farness (verified by the bench). speedup_vs_arbitrary compares " +
			"against the batching=arbitrary cell of the same pair.",
		Rows: rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
