package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Test(i) {
			t.Errorf("fresh set should not contain %d", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Errorf("Set(%d) then Test failed", i)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("Count = %d, want 8", b.Count())
	}
	b.Clear(64)
	if b.Test(64) {
		t.Error("Clear(64) failed")
	}
	if b.Count() != 7 {
		t.Fatalf("Count after clear = %d, want 7", b.Count())
	}
}

func TestResetAndAny(t *testing.T) {
	b := New(100)
	if b.Any() {
		t.Error("fresh set should be empty")
	}
	b.Set(42)
	if !b.Any() {
		t.Error("set with element should be Any")
	}
	b.Reset()
	if b.Any() || b.Count() != 0 {
		t.Error("Reset should empty the set")
	}
}

func TestForEachOrder(t *testing.T) {
	b := New(200)
	want := []int{3, 64, 65, 199}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ForEach[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestUnion(t *testing.T) {
	a, b := New(70), New(70)
	a.Set(1)
	b.Set(69)
	a.Union(b)
	if !a.Test(1) || !a.Test(69) {
		t.Error("Union missing elements")
	}
	if a.Count() != 2 {
		t.Errorf("Count = %d, want 2", a.Count())
	}
}

// Property: the bitset agrees with a map[int]bool model under random ops.
func TestModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) + 1
		b := New(n)
		model := map[int]bool{}
		for op := 0; op < 200; op++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				b.Set(i)
				model[i] = true
			case 1:
				b.Clear(i)
				delete(model, i)
			case 2:
				if b.Test(i) != model[i] {
					return false
				}
			}
		}
		return b.Count() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
