// Package bitset provides a dense fixed-size bitset used by graph
// traversals and the reduction pipeline. It is deliberately minimal: the
// hot loops of direction-optimising BFS iterate over raw words.
package bitset

import "math/bits"

// Bitset is a fixed-capacity set of small non-negative integers.
type Bitset struct {
	words []uint64
	n     int
}

// New returns a bitset able to hold values in [0, n).
func New(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity n the set was created with.
func (b *Bitset) Len() int { return b.n }

// Set adds i to the set.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear removes i from the set.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports whether i is in the set.
func (b *Bitset) Test(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of elements in the set.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset removes all elements.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// ForEach calls fn for every element in increasing order.
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			i := wi<<6 + bit
			if i >= b.n {
				return
			}
			fn(i)
			w &= w - 1
		}
	}
}

// Union sets b to b ∪ other. Both sets must have the same capacity.
func (b *Bitset) Union(other *Bitset) {
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// Any reports whether the set is non-empty.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}
