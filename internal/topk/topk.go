// Package topk finds the k most central nodes (lowest farness / highest
// closeness) — the ranking problem of Okamoto, Chen and Li that the paper's
// related-work section cites — using the estimate-then-verify strategy:
// a cheap BRICS estimate orders candidates, then exact traversals confirm
// them best-first until the k-th confirmed value provably (under the
// margin assumption) beats everything unverified.
//
// Nodes whose estimate is flagged exact (sampled nodes, propagated twins
// and chain interiors) need no verification traversal at all, which on
// heavily reducible graphs eliminates most of the work.
package topk

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/queue"
	"repro/internal/sketch"
)

// Options configures the search.
type Options struct {
	// Estimate configures the underlying BRICS estimation run.
	Estimate core.Options
	// Margin is the assumed maximum relative underestimation of the
	// estimator: verification stops once kthBest ≤ nextEstimate/(1+Margin).
	// The result is provably exact if every estimate e(v) satisfies
	// true(v) ≥ e(v)/(1+Margin). Default 0.15.
	Margin float64
	// MaxVerify caps exact traversals (0 = no cap). When the cap fires
	// the result is best-effort and Result.Certain is false.
	MaxVerify int
	// Sketch, when non-nil, enables the cluster-sketch candidate filter: the
	// sketch's proven per-node farness lower bounds (see
	// sketch.FarnessLowerBounds) let the search skip the verification BFS of
	// any candidate that provably cannot enter the top k — once k exact
	// values are known, a candidate whose lower bound meets the k-th best
	// farness is discarded unverified. The filter never changes the returned
	// top-k set (the bound is proven, and ties cannot displace an
	// equal-farness incumbent); with MaxVerify set it can only stretch the
	// budget further. Result.Filtered counts the traversals saved.
	Sketch *sketch.Sketch
}

// Result of a top-k search.
type Result struct {
	// Nodes holds the k most central nodes in increasing farness order.
	Nodes []graph.NodeID
	// Farness holds their exact farness values.
	Farness []float64
	// Verified counts the exact traversals spent.
	Verified int
	// Filtered counts candidates whose verification traversal the sketch
	// filter proved unnecessary (0 unless Options.Sketch was set).
	Filtered int
	// Certain reports whether the stopping rule concluded (true) or the
	// MaxVerify cap fired (false).
	Certain bool
	// Partial marks an anytime search (Options.Estimate.Anytime) that was
	// cut short by its context: Farness may mix exact values with estimates
	// from a partial estimation run, and Certain is always false. A Partial
	// result must never be cached or served as exact.
	Partial bool
	// EstimateStats carries the underlying estimation run's statistics.
	EstimateStats core.RunStats
}

// Closeness returns the k nodes with the smallest farness.
func Closeness(g *graph.Graph, k int, opts Options) (*Result, error) {
	return ClosenessContext(context.Background(), g, k, opts)
}

// ClosenessContext is Closeness with cooperative cancellation: the
// underlying estimation run checks ctx at its stage boundaries, and the
// verification phase checks it before (and inside) every exact traversal. A
// canceled run returns a core.ErrCanceled-wrapping error.
func ClosenessContext(ctx context.Context, g *graph.Graph, k int, opts Options) (*Result, error) {
	n := g.NumNodes()
	if k <= 0 {
		return nil, fmt.Errorf("topk: k = %d out of range", k)
	}
	if k > n {
		k = n
	}
	if opts.Margin <= 0 {
		opts.Margin = 0.15
	}
	est, err := core.EstimateContext(ctx, g, opts.Estimate)
	if err != nil {
		return nil, err
	}
	estPartial := est.Partial

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return est.Farness[order[i]] < est.Farness[order[j]] })

	type cand struct {
		v   graph.NodeID
		far float64
	}
	best := make([]cand, 0, k+1) // sorted ascending, capped at k
	insert := func(c cand) {
		pos := sort.Search(len(best), func(i int) bool { return best[i].far > c.far })
		best = append(best, cand{})
		copy(best[pos+1:], best[pos:])
		best[pos] = c
		if len(best) > k {
			best = best[:k]
		}
	}
	res := &Result{Certain: true, EstimateStats: est.Stats}
	dist := make([]int32, n)
	// Verification consumes candidates one at a time (the stopping rule is
	// inherently sequential), but the traversals themselves need not be: when
	// the estimate run's traversal mode allows batching, the next group of
	// unverified candidates is prefetched speculatively through one ≤64-lane
	// bit-parallel sweep — candidates adjacent in estimate order tend to be
	// central and near each other, so their lane frontiers merge quickly and
	// the group costs little more than one BFS. The group size starts small
	// (the stopping rule often fires within a few candidates) and doubles as
	// verification keeps going. Every lane computed counts against MaxVerify
	// — groups are clipped to the remaining budget, never exceeding it — and
	// per-lane sums are bit-identical to bfs.Sum over a per-source row, so
	// results match the per-source path exactly.
	workers := par.Workers(opts.Estimate.Workers)
	// Verification traversals follow the estimate's traversal policy: the
	// frontier-parallel engine when the mode (forced or Auto, always with
	// k = 1 — one verification BFS at a time) selects it, the sequential
	// kernel otherwise. Forced per-source/hybrid/frontier modes also opt out
	// of the speculative batch prefetch below.
	useFrontier := opts.Estimate.Traversal.Frontier(1, workers, n)
	var q *queue.FIFO
	var frontierScratch *bfs.FrontierScratch
	if useFrontier {
		frontierScratch = bfs.NewFrontierScratch()
	} else {
		q = queue.NewFIFO(n)
	}
	batchVerify := opts.Estimate.Traversal != core.TraversalPerSource &&
		opts.Estimate.Traversal != core.TraversalHybrid &&
		opts.Estimate.Traversal != core.TraversalFrontier
	exactCache := make([]float64, n)
	haveExact := make([]bool, n)
	// Sketch filter: proven farness lower bounds let the loop below discard
	// candidates that cannot enter the top k without spending a BFS on them.
	// skippable(v) is true only when the skip is provably result-neutral:
	// k exact values are already held and far(v) ≥ lbFar[v] ≥ kth best, so
	// inserting v's exact value would change nothing (an equal-farness
	// candidate sorts after the incumbent and is truncated away).
	var lbFar []int64
	if opts.Sketch != nil {
		lbFar = opts.Sketch.FarnessLowerBounds(workers)
	}
	skippable := func(v graph.NodeID) bool {
		return lbFar != nil && len(best) == k && float64(lbFar[v]) >= best[k-1].far &&
			!est.Exact[v] && !haveExact[v]
	}
	var ms *bfs.MSScratch
	groupSize := 8
	done := ctx.Done()
	prefetch := func(startIdx int) {
		size := groupSize
		if opts.MaxVerify > 0 {
			if rem := opts.MaxVerify - res.Verified; rem < size {
				size = rem
			}
		}
		if size < 2 {
			return // nothing to share a sweep with; per-source handles it
		}
		batch := make([]graph.NodeID, 0, size)
		for _, vi := range order[startIdx:] {
			v := graph.NodeID(vi)
			if est.Exact[v] || haveExact[v] || skippable(v) {
				continue // skippable lanes would be filtered before their
				// cached sum is ever read — don't waste prefetch width
			}
			batch = append(batch, v)
			if len(batch) == size {
				break
			}
		}
		if len(batch) < 2 {
			return
		}
		if ms == nil {
			ms = bfs.NewMSScratch(n, 1)
			ms.SetDone(done)
		}
		var farBySlot [bfs.MSBFSWidth]int64
		laneFar := farBySlot[:len(batch)]
		bfs.MultiSourceMasksInto(g, batch, ms, func(_ graph.NodeID, mask uint64, d int32) {
			bfs.AccumulateLanes(laneFar, mask, int64(d))
		})
		if par.Interrupted(done) {
			return // partial sums; the caller is about to surface ctx.Err()
		}
		for lane, v := range batch {
			exactCache[v] = float64(farBySlot[lane])
			haveExact[v] = true
			res.Verified++
		}
		if groupSize < bfs.MSBFSWidth {
			groupSize *= 2
		}
	}
	exactOf := func(idx int, v graph.NodeID) (float64, error) {
		if est.Exact[v] {
			return est.Farness[v], nil
		}
		if batchVerify && !haveExact[v] {
			prefetch(idx)
		}
		if haveExact[v] {
			return exactCache[v], nil
		}
		if err := fault.Checkpoint(ctx, "topk.verify"); err != nil {
			return 0, err
		}
		var err error
		if useFrontier {
			err = bfs.FrontierDistancesCtx(ctx, g, v, dist, workers, frontierScratch)
		} else {
			err = bfs.DistancesCtx(ctx, g, v, dist, q)
		}
		if err != nil {
			return 0, err
		}
		sum, _ := bfs.Sum(dist)
		res.Verified++
		return float64(sum), nil
	}

	for idx, vi := range order {
		v := graph.NodeID(vi)
		if len(best) == k {
			// Stopping rule: everything unverified has estimate ≥ this
			// one (sorted); under the margin assumption its true value is
			// ≥ estimate/(1+margin).
			bound := est.Farness[v] / (1 + opts.Margin)
			if best[k-1].far <= bound {
				break
			}
		}
		if skippable(v) {
			res.Filtered++
			continue
		}
		if opts.MaxVerify > 0 && res.Verified >= opts.MaxVerify && !est.Exact[v] && !haveExact[v] {
			// Budget exhausted; remaining candidates stay unverified.
			res.Certain = false
			// Fill any remaining slots with estimates of the best
			// unverified candidates so callers still get k entries.
			for _, rest := range order[idx:] {
				if len(best) == k {
					break
				}
				insert(cand{graph.NodeID(rest), est.Farness[rest]})
			}
			break
		}
		far, err := exactOf(idx, v)
		if err != nil {
			// Anytime degradation: a canceled verification keeps the
			// best-so-far ranking, filling any remaining slots from the
			// estimate order — exactly like the MaxVerify budget path, but
			// flagged Partial so no caller mistakes it for an exact ranking.
			if opts.Estimate.Anytime && errors.Is(err, core.ErrCanceled) {
				res.Partial, res.Certain = true, false
				for _, rest := range order[idx:] {
					if len(best) == k {
						break
					}
					insert(cand{graph.NodeID(rest), est.Farness[rest]})
				}
				break
			}
			return nil, err
		}
		insert(cand{v, far})
	}
	if estPartial {
		// The ranking was ordered by a partial estimate; even a completed
		// verification sweep inherits that uncertainty in which candidates
		// were considered.
		res.Partial, res.Certain = true, false
	}

	for _, c := range best {
		res.Nodes = append(res.Nodes, c.v)
		res.Farness = append(res.Farness, c.far)
	}
	return res, nil
}

// Exact computes the exact top-k by brute force (one traversal per node);
// the oracle tests compare against.
func Exact(g *graph.Graph, k int, workers int) *Result {
	far := core.ExactFarness(g, workers)
	n := len(far)
	if k > n {
		k = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return far[order[i]] < far[order[j]] })
	res := &Result{Certain: true, Verified: n}
	for _, v := range order[:k] {
		res.Nodes = append(res.Nodes, graph.NodeID(v))
		res.Farness = append(res.Farness, far[v])
	}
	return res
}
