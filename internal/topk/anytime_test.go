package topk

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gen"
)

// TestClosenessAnytimeVerificationCanceled: cancelling mid-verification on an
// anytime run degrades to the best-so-far ranking (k entries, Partial,
// not Certain) instead of failing.
func TestClosenessAnytimeVerificationCanceled(t *testing.T) {
	g := gen.Community(700, 9)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var verifies atomic.Int64
	restore := fault.Set("topk.verify", func(context.Context) error {
		if verifies.Add(1) == 2 { // let one exact traversal land, then cancel
			cancel()
		}
		return nil
	})
	defer restore()
	res, err := ClosenessContext(ctx, g, 10, Options{
		Estimate: core.Options{
			SampleFraction: 0.2, Seed: 31, Workers: 1,
			Traversal: core.TraversalPerSource, Anytime: true,
		},
	})
	if err != nil {
		t.Fatalf("want degraded ranking, got %v", err)
	}
	if !res.Partial || res.Certain {
		t.Fatalf("degraded ranking flags: partial=%v certain=%v", res.Partial, res.Certain)
	}
	if len(res.Nodes) != 10 || len(res.Farness) != 10 {
		t.Fatalf("degraded ranking returned %d nodes", len(res.Nodes))
	}
	for i := 1; i < len(res.Farness); i++ {
		if res.Farness[i] < res.Farness[i-1] {
			t.Fatalf("ranking not sorted at %d: %v", i, res.Farness)
		}
	}
}

// TestClosenessAnytimePartialEstimate: a ranking built on a partial estimate
// is itself Partial even when verification runs to completion.
func TestClosenessAnytimePartialEstimate(t *testing.T) {
	g := gen.Community(500, 12)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	prog := &core.Progress{}
	prog.OnAdvance = func(completed, planned int64) {
		if completed == planned/2 {
			cancel()
		}
	}
	res, err := ClosenessContext(ctx, g, 5, Options{
		Estimate: core.Options{
			SampleFraction: 0.4, Seed: 7, Workers: 1,
			Traversal: core.TraversalPerSource, Anytime: true, Progress: prog,
		},
		MaxVerify: 0,
	})
	if err != nil {
		t.Fatalf("want partial-estimate ranking, got %v", err)
	}
	if !res.Partial || res.Certain {
		t.Fatalf("flags after partial estimate: partial=%v certain=%v", res.Partial, res.Certain)
	}
	if len(res.Nodes) != 5 {
		t.Fatalf("got %d nodes, want 5", len(res.Nodes))
	}
}

// TestClosenessAnytimeFullRunUnchanged: with Anytime set but no
// interruption, the ranking matches the plain run exactly.
func TestClosenessAnytimeFullRunUnchanged(t *testing.T) {
	g := gen.Community(500, 12)
	opts := Options{Estimate: core.Options{SampleFraction: 0.3, Seed: 3, Workers: 2}}
	want, err := Closeness(g, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Estimate.Anytime = true
	got, err := ClosenessContext(context.Background(), g, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial {
		t.Fatal("uninterrupted anytime ranking marked Partial")
	}
	for i := range want.Nodes {
		if want.Nodes[i] != got.Nodes[i] || want.Farness[i] != got.Farness[i] {
			t.Fatalf("ranking diverged at %d: (%d, %v) vs (%d, %v)",
				i, want.Nodes[i], want.Farness[i], got.Nodes[i], got.Farness[i])
		}
	}
}
