package topk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestExactOracle(t *testing.T) {
	// Path 0-1-2-3-4: farness [10,7,6,7,10]; top-1 is node 2, top-3 is
	// {2,1,3} (ties broken by order).
	b := graph.NewBuilder(5)
	for i := 0; i < 4; i++ {
		_ = b.AddEdge(int32(i), int32(i+1))
	}
	g := b.Build()
	res := Exact(g, 3, 1)
	if res.Nodes[0] != 2 || res.Farness[0] != 6 {
		t.Fatalf("top-1 = %d/%v, want 2/6", res.Nodes[0], res.Farness[0])
	}
	if len(res.Nodes) != 3 {
		t.Fatalf("len = %d", len(res.Nodes))
	}
	set := map[graph.NodeID]bool{res.Nodes[0]: true, res.Nodes[1]: true, res.Nodes[2]: true}
	if !set[1] || !set[2] || !set[3] {
		t.Fatalf("top-3 = %v, want {1,2,3}", res.Nodes)
	}
}

func TestClosenessMatchesExactValues(t *testing.T) {
	g := gen.Social(2500, 4)
	k := 10
	got, err := Closeness(g, k, Options{
		Estimate: core.Options{
			Techniques:     core.TechCumulative,
			SampleFraction: 0.3,
			Seed:           1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Exact(g, k, 0)
	if !got.Certain {
		t.Error("search should conclude on this graph")
	}
	// The k-th farness values must agree even if tied node identities
	// differ; with a sane margin the whole prefix agrees.
	for i := 0; i < k; i++ {
		if got.Farness[i] != want.Farness[i] {
			t.Errorf("rank %d: farness %v, want %v (node %d vs %d)",
				i, got.Farness[i], want.Farness[i], got.Nodes[i], want.Nodes[i])
		}
	}
	if got.Verified >= g.NumNodes()/2 {
		t.Errorf("verified %d of %d nodes — estimate ordering is not helping", got.Verified, g.NumNodes())
	}
	// All returned farness values must be truly exact.
	far := core.ExactFarness(g, 0)
	for i, v := range got.Nodes {
		if far[v] != got.Farness[i] {
			t.Errorf("node %d: reported %v, true %v", v, got.Farness[i], far[v])
		}
	}
}

func TestClosenessBudgetCap(t *testing.T) {
	g := gen.Road(1500, 2)
	res, err := Closeness(g, 5, Options{
		Estimate:  core.Options{Techniques: core.TechChains, SampleFraction: 0.1, Seed: 1},
		MaxVerify: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 5 {
		t.Fatalf("want 5 results even under budget, got %d", len(res.Nodes))
	}
	if res.Verified > 1 {
		t.Fatalf("verified %d > cap", res.Verified)
	}
}

func TestClosenessArgumentChecks(t *testing.T) {
	g := gen.Road(200, 1)
	if _, err := Closeness(g, 0, Options{}); err == nil {
		t.Error("k=0 should error")
	}
	res, err := Closeness(g, 10_000, Options{
		Estimate: core.Options{SampleFraction: 0.5, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != g.NumNodes() {
		t.Errorf("k>n should clamp to n: %d vs %d", len(res.Nodes), g.NumNodes())
	}
}

// Property: with a generous margin, the k-th farness value returned always
// matches the brute-force oracle on random mixed graphs.
func TestClosenessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(150) + 20
		g := gen.ErdosRenyi(n, 3*n, seed)
		k := rng.Intn(5) + 1
		got, err := Closeness(g, k, Options{
			Estimate: core.Options{
				Techniques:     core.TechCumulative,
				SampleFraction: 0.3,
				Seed:           seed,
			},
			Margin: 0.5, // generous: guarantees exactness at extra cost
		})
		if err != nil {
			return false
		}
		want := Exact(g, k, 1)
		for i := range want.Farness {
			if got.Farness[i] != want.Farness[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
