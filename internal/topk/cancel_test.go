package topk

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestClosenessContextMatchesCloseness(t *testing.T) {
	g := gen.Community(900, 6)
	opts := Options{Estimate: core.Options{Techniques: core.TechCumulative, SampleFraction: 0.2, Seed: 3}}
	want, err := Closeness(g, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ClosenessContext(context.Background(), g, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Nodes) != len(got.Nodes) {
		t.Fatalf("lengths differ: %d vs %d", len(want.Nodes), len(got.Nodes))
	}
	for i := range want.Nodes {
		if want.Nodes[i] != got.Nodes[i] || want.Farness[i] != got.Farness[i] {
			t.Fatalf("entry %d differs: (%d, %v) vs (%d, %v)", i, want.Nodes[i], want.Farness[i], got.Nodes[i], got.Farness[i])
		}
	}
}

func TestClosenessContextPreCanceled(t *testing.T) {
	g := gen.Community(400, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ClosenessContext(ctx, g, 5, Options{Estimate: core.Options{Techniques: core.TechCumulative}})
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if res != nil {
		t.Fatal("canceled run must not return a Result")
	}
}
