package topk

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sketch"
)

// The sketch candidate filter must never change the returned top-k set —
// only save verification traversals. Checked across all four generator
// families and several k values against the unfiltered run and the exact
// oracle.
func TestSketchFilterIdenticalTopK(t *testing.T) {
	cases := map[string]*graph.Graph{
		"web":       graph.Connect(gen.Web(1200, 71)),
		"social":    graph.Connect(gen.Social(1000, 72)),
		"community": graph.Connect(gen.Community(1000, 73)),
		"road":      graph.Connect(gen.Road(900, 74)),
	}
	anyFiltered := false
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			sk := sketch.Build(g, sketch.Options{Clusters: 8, Workers: 4})
			for _, k := range []int{1, 5, 10} {
				opts := Options{Estimate: core.Options{Techniques: core.TechCumulative, SampleFraction: 0.3, Seed: 5, Workers: 4}}
				plain, err := Closeness(g, k, opts)
				if err != nil {
					t.Fatal(err)
				}
				opts.Sketch = sk
				filtered, err := Closeness(g, k, opts)
				if err != nil {
					t.Fatal(err)
				}
				if len(plain.Nodes) != len(filtered.Nodes) {
					t.Fatalf("k=%d: %d nodes with filter, %d without", k, len(filtered.Nodes), len(plain.Nodes))
				}
				for i := range plain.Nodes {
					if plain.Nodes[i] != filtered.Nodes[i] || plain.Farness[i] != filtered.Farness[i] {
						t.Fatalf("k=%d: entry %d diverged: (%d, %v) with filter vs (%d, %v) without",
							k, i, filtered.Nodes[i], filtered.Farness[i], plain.Nodes[i], plain.Farness[i])
					}
				}
				if filtered.Verified+filtered.Filtered < plain.Verified && filtered.Filtered == 0 {
					t.Fatalf("k=%d: verified shrank (%d -> %d) without any filtering recorded",
						k, plain.Verified, filtered.Verified)
				}
				if filtered.Filtered > 0 {
					anyFiltered = true
				}
			}
		})
	}
	if !anyFiltered {
		t.Log("filter never fired on these inputs; bounds too weak to save traversals here")
	}
}
