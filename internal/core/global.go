package core

import (
	"context"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/bfs"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/queue"
	"repro/internal/reduce"
)

// estimateGlobal runs the reduction-based estimator without the
// biconnected decomposition (the paper's C+R and I+C+R configurations):
// sample kept nodes of the reduced graph, traverse it per source, extend
// distances over the removal log, and accumulate. Cancellation lands before
// the traversal fan-out ("core.traverse"), at every source boundary inside
// it, within the kernels themselves, and before aggregation
// ("core.aggregate"); on a non-nil error the partially filled accumulators
// are discarded with the rest of the run.
func estimateGlobal(ctx context.Context, red *reduce.Reduction, opts *Options) (*Result, error) {
	n := red.Orig.NumNodes()
	nR := red.G.NumNodes()
	res := &Result{
		Farness: make([]float64, n),
		Exact:   make([]bool, n),
	}
	k := samplesFor(nR, opts.fraction())
	rng := rand.New(rand.NewSource(opts.Seed))
	samplesReduced := sampleK(nR, k, rng)

	// Degenerate-reduction augmentation: when the graph reduces so hard
	// that fewer than minSamples sources remain (e.g. a star plus twins
	// collapses to one node), the extrapolation has nothing to calibrate
	// against. Add a few uniformly random *original* nodes as extra
	// sources; their traversals run on the original graph and feed the
	// same accumulators.
	const minSamples = 4
	var extraOrig []graph.NodeID
	if k < minSamples && n > k {
		keptSet := make(map[graph.NodeID]bool, k)
		for _, sR := range samplesReduced {
			keptSet[red.ToOld[sR]] = true
		}
		for _, cand := range sampleK(n, minSamples, rng) {
			if len(extraOrig)+k >= minSamples {
				break
			}
			if !keptSet[cand] {
				extraOrig = append(extraOrig, cand)
			}
		}
	}
	res.Stats.Samples = k + len(extraOrig)

	// Anytime bookkeeping: every completed row marks its source done under a
	// read lock, so snapshots (and the end-of-run partial assembly) only ever
	// observe whole-source accumulator states.
	var any *anyState
	if opts.Anytime || opts.Progress != nil {
		any = newAnyState(n, k+len(extraOrig), opts.Progress)
	}

	if err := fault.Checkpoint(ctx, "core.traverse"); err != nil {
		return nil, err
	}
	start := time.Now()
	done := ctx.Done()
	workers := par.Workers(opts.Workers)
	unweighted := red.G.Unweighted()
	maxW := red.G.MaxWeight()
	// Traversals run on the (possibly cache-relabeled) copy of the reduced
	// graph; sampling above and the removal log stay canonical, so results
	// are independent of the ordering. Sources map through perm on the way
	// in, distance rows map back through ScatterPerm on the way out.
	tg, perm := red.TraversalGraph()
	permOf := func(sR graph.NodeID) graph.NodeID {
		if perm != nil {
			return perm[sR]
		}
		return sR
	}

	acc := make([]int64, n)      // Σ over sources of d(s, ·), original ids
	exactFar := make([]int64, n) // exact farness of sampled nodes
	var sumSq []int64
	if opts.ComputeStdErr {
		sumSq = make([]int64, n)
	}
	isSample := make([]bool, n)
	for _, sR := range samplesReduced {
		isSample[red.ToOld[sR]] = true
	}
	for _, s := range extraOrig {
		isSample[s] = true
	}
	kEff := k + len(extraOrig)
	// Calibration accumulators for the ratio estimator: distances from
	// samples to other samples vs to non-samples.
	var s2s, s2n int64

	type ws struct {
		s        *bfs.Scratch
		distOrig []int32
		origQ    *queue.FIFO
	}
	scratch := make([]ws, workers)
	for i := range scratch {
		scratch[i] = ws{s: bfs.NewScratch(nR, maxW), distOrig: make([]int32, n), origQ: queue.NewFIFO(n)}
	}

	accumulateRow := func(w *ws, srcOrig graph.NodeID) {
		if any != nil {
			any.mu.RLock()
		}
		var own, toSamples int64
		for v, d := range w.distOrig {
			own += int64(d)
			atomic.AddInt64(&acc[v], int64(d))
			if sumSq != nil {
				atomic.AddInt64(&sumSq[v], int64(d)*int64(d))
			}
			if isSample[v] {
				toSamples += int64(d)
			}
		}
		atomic.StoreInt64(&exactFar[srcOrig], own)
		atomic.AddInt64(&s2s, toSamples)
		atomic.AddInt64(&s2n, own-toSamples)
		if any != nil {
			any.markDone(srcOrig, w.distOrig)
			any.mu.RUnlock()
			any.advance()
		}
	}
	if any != nil && opts.Anytime {
		any.assemble = func() *Result {
			any.mu.Lock()
			accC := append([]int64(nil), acc...)
			exC := append([]int64(nil), exactFar...)
			doneC := append([]bool(nil), any.doneSrc...)
			any.mu.Unlock()
			return assemblePartial(n, int(any.planned), accC, exC, doneC, any.landmarkRows())
		}
	}
	// partialOr converts a canceled fan-out into the partial result when the
	// run is anytime and at least one source completed.
	partialOr := func(err error) (*Result, error) {
		if any != nil && opts.Anytime && canceledErr(err) {
			if pr := any.final(); pr != nil {
				pr.Stats.Traverse = time.Since(start)
				return pr, nil
			}
		}
		return nil, err
	}

	if opts.Traversal.batched(k) {
		// Batched engine: 64-wide multi-source sweeps over the traversal
		// graph; each lane's row is scattered and extended exactly like a
		// per-source traversal, so the accumulated integers are identical.
		// Sources are handed over in traversal-graph ids; the handler's base
		// index recovers each lane's canonical sample.
		sourcesT := samplesReduced
		if perm != nil {
			sourcesT = make([]graph.NodeID, k)
			for i, sR := range samplesReduced {
				sourcesT[i] = perm[sR]
			}
		}
		// Proximity-clustered batching: permute the (sourcesT, laneSamples)
		// pairs together so each 64-wide batch covers one neighbourhood of a
		// BFS ordering of the traversal graph. Under RelabelBFS the traversal
		// ids already are that ordering; otherwise one throwaway ordering
		// pass computes the positions. Accumulation stays keyed by
		// laneSamples, so the reorder cannot change any output integer.
		laneSamples := samplesReduced
		if opts.Batching.clustered(k) {
			var pos []graph.NodeID
			if perm == nil || opts.Relabel != graph.RelabelBFS {
				pos = graph.OrderW(tg, graph.RelabelBFS, workers).Perm
			}
			ord := clusterOrder(sourcesT, pos)
			st := make([]graph.NodeID, k)
			ls := make([]graph.NodeID, k)
			for i, j := range ord {
				st[i] = sourcesT[j]
				ls[i] = samplesReduced[j]
			}
			sourcesT, laneSamples = st, ls
		}
		err := bfs.RunBatchesWCtx(ctx, tg, sourcesT, workers, func(worker, base int, batch []graph.NodeID, rows [][]int32) {
			w := &scratch[worker]
			for lane := range batch {
				srcR := laneSamples[base+lane]
				red.ScatterPerm(rows[lane], perm, w.distOrig)
				red.Extend(w.distOrig)
				accumulateRow(w, red.ToOld[srcR])
			}
		})
		if err != nil {
			return partialOr(err)
		}
		err = par.ForDynamicCtx(ctx, len(extraOrig), workers, 1, func(worker, i int) {
			w := &scratch[worker]
			src := extraOrig[i]
			bfs.Distances(red.Orig, src, w.distOrig, w.origQ)
			accumulateRow(w, src)
		})
		if err != nil {
			return partialOr(err)
		}
	} else if opts.Traversal.Frontier(kEff, workers, nR) {
		// Frontier-parallel engine: the transposed fan-out — sources run
		// sequentially, each traversal splits its levels across the worker
		// pool. Chosen when fewer sources than workers would leave most of
		// the pool idle under per-source parallelism (or forced by
		// TraversalFrontier). Per-row post-processing is identical to the
		// per-source path, so the accumulated integers are too.
		w := &scratch[0]
		fs := bfs.NewFrontierScratch()
		for i := 0; i < kEff; i++ {
			if i < k {
				srcR := samplesReduced[i]
				if err := bfs.WFrontierDistancesCtx(ctx, tg, unweighted, permOf(srcR), w.s.Dist, workers, fs); err != nil {
					return partialOr(err)
				}
				red.ScatterPerm(w.s.Dist, perm, w.distOrig)
				red.Extend(w.distOrig)
				accumulateRow(w, red.ToOld[srcR])
				continue
			}
			// Augmentation source: frontier BFS on the original graph.
			src := extraOrig[i-k]
			if err := bfs.FrontierDistancesCtx(ctx, red.Orig, src, w.distOrig, workers, fs); err != nil {
				return partialOr(err)
			}
			accumulateRow(w, src)
		}
	} else {
		err := par.ForDynamicCtx(ctx, kEff, workers, 1, func(worker, i int) {
			w := &scratch[worker]
			if i < k {
				srcR := samplesReduced[i]
				if unweighted && opts.Traversal.hybrid() {
					_ = bfs.WHybridDistancesAutoCtx(ctx, tg, true, permOf(srcR), w.s)
				} else {
					_ = bfs.WDistancesAutoCtx(ctx, tg, unweighted, permOf(srcR), w.s)
				}
				if par.Interrupted(done) {
					return // partial row; the whole run is about to error out
				}
				red.ScatterPerm(w.s.Dist, perm, w.distOrig)
				red.Extend(w.distOrig)
				accumulateRow(w, red.ToOld[srcR])
				return
			}
			// Augmentation source: plain BFS on the original graph.
			src := extraOrig[i-k]
			bfs.Distances(red.Orig, src, w.distOrig, w.origQ)
			accumulateRow(w, src)
		})
		if err != nil {
			return partialOr(err)
		}
	}
	res.Stats.Traverse = time.Since(start)

	if err := fault.Checkpoint(ctx, "core.aggregate"); err != nil {
		return partialOr(err)
	}
	aggStart := time.Now()
	for _, sR := range samplesReduced {
		res.Exact[red.ToOld[sR]] = true
	}
	for _, s := range extraOrig {
		res.Exact[s] = true
	}
	k = kEff
	// EstimatorPaper: scale the sampled distance sum by (n−1)/k — the
	// literal reading of the paper's Algorithm 1 adaptation.
	//
	// EstimatorWeighted: additive offset calibration. Samples are kept
	// (well-connected) nodes, so an unsampled node's mean distance to the
	// non-sampled population (mostly reduced-away peripheral nodes)
	// exceeds its mean distance to the samples by roughly the same offset
	// Δ the sample rows exhibit: Δ = mean(sample→non-sample) −
	// mean(sample→sample). Estimate Σ_{w non-sample} d(x,w) as
	// (mean_s d(s,x) + Δ)·(m−1).
	paperScale := float64(n-1) / float64(k)
	m := int64(n - k) // non-sampled population
	useOffset := opts.Estimator == EstimatorWeighted && m > 0 && k > 1
	delta := 0.0
	if useOffset {
		mss := float64(s2s) / float64(k*(k-1))
		msn := float64(s2n) / float64(int64(k)*m)
		delta = msn - mss
	}
	// Single-sample degenerate case (tiny graphs reduced to almost
	// nothing): the offset has nothing to calibrate against, so fall back
	// to the landmark midpoint heuristic over the non-sampled population.
	var lm []float64
	var lmIdx []int
	if opts.Estimator == EstimatorWeighted && !useOffset && k == 1 && m > 1 {
		lmIdx = make([]int, 0, m)
		ds := make([]int64, 0, m)
		for v := 0; v < n; v++ {
			if !res.Exact[v] {
				lmIdx = append(lmIdx, v)
				ds = append(ds, acc[v])
			}
		}
		lm = landmarkSums(ds)
	}
	for v := 0; v < n; v++ {
		switch {
		case res.Exact[v]:
			res.Farness[v] = float64(exactFar[v])
		case useOffset:
			mu := float64(acc[v])/float64(k) + delta
			if mu < 1 {
				mu = 1 // distinct nodes are at distance ≥ 1
			}
			res.Farness[v] = float64(acc[v]) + mu*float64(m-1)
		default:
			res.Farness[v] = float64(acc[v]) * paperScale
		}
	}
	for i, v := range lmIdx {
		res.Farness[v] = float64(acc[v]) + lm[i]
	}
	if sumSq != nil {
		// StdErr of the extrapolated part: the estimate scales the mean
		// sampled distance μ̂ by the unsampled mass, so its standard
		// error is (m−1)·s/√k with s the sample standard deviation of
		// the node's distances.
		res.StdErr = make([]float64, n)
		if k > 1 && m > 1 {
			for v := 0; v < n; v++ {
				if res.Exact[v] {
					continue
				}
				mean := float64(acc[v]) / float64(k)
				variance := (float64(sumSq[v])/float64(k) - mean*mean) * float64(k) / float64(k-1)
				if variance < 0 {
					variance = 0
				}
				res.StdErr[v] = float64(m-1) * math.Sqrt(variance/float64(k))
			}
		}
	}
	res.Stats.Aggregate = time.Since(aggStart)
	return res, nil
}
