package core

import (
	"math"
	"math/rand"
	"testing"
)

// Regression seeds from historical property-test failures.
func TestRegressionGlobalSeeds(t *testing.T) {
	for _, seed := range []int64{5039225800229852003} {
		rng := rand.New(rand.NewSource(seed))
		g := randomMixed(rng, 12)
		want := ExactFarness(g, 2)
		for _, tech := range []Technique{TechChains, TechICR, TechIdentical, TechRedundant} {
			res, err := Estimate(g, Options{
				Techniques:     tech,
				SampleFraction: 1.0,
				Workers:        2,
				Seed:           seed,
			})
			if err != nil {
				t.Fatalf("tech %v: %v", tech, err)
			}
			for v := range want {
				if res.Exact[v] && res.Farness[v] != want[v] {
					t.Fatalf("tech %v node %d: exact-flagged %v, want %v", tech, v, res.Farness[v], want[v])
				}
				if !(res.Farness[v] > 0) || math.IsInf(res.Farness[v], 0) {
					t.Fatalf("tech %v node %d: bad estimate %v (want %v)", tech, v, res.Farness[v], want[v])
				}
			}
		}
	}
}

func TestRegressionCumulativeSeeds(t *testing.T) {
	for _, seed := range []int64{3525524512728477606, 8015806781869127342} {
		rng := rand.New(rand.NewSource(seed))
		g := randomMixed(rng, 15)
		want := ExactFarness(g, 2)
		res, err := Estimate(g, Options{
			Techniques:     TechCumulative,
			SampleFraction: 1.0,
			Workers:        2,
			Seed:           seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.FallbackAssignments != 0 {
			t.Fatalf("fallback assignments: %d", res.Stats.FallbackAssignments)
		}
		for v := range want {
			if res.Exact[v] && math.Abs(res.Farness[v]-want[v]) > 1e-9 {
				t.Errorf("node %d: exact-flagged %v, want %v", v, res.Farness[v], want[v])
			}
			denom := math.Max(want[v], 1)
			if math.Abs(res.Farness[v]-want[v])/denom > 0.5 {
				t.Errorf("node %d: estimate %v too far from %v", v, res.Farness[v], want[v])
			}
		}
		if t.Failed() {
			t.Logf("n=%d stats=%+v", g.NumNodes(), res.Stats)
			t.FailNow()
		}
	}
}
