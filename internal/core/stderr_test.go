package core

import (
	"math"
	"math/rand"
	"testing"
)

// StdErr sanity: exact nodes get 0; estimated nodes get positive errors
// that roughly bracket the true deviation on average.
func TestComputeStdErr(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomMixed(rng, 80)
	want := ExactFarness(g, 2)
	for _, tech := range []Technique{TechICR, TechCumulative} {
		res, err := Estimate(g, Options{
			Techniques:     tech,
			SampleFraction: 0.3,
			Seed:           2,
			ComputeStdErr:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.StdErr == nil {
			t.Fatal("StdErr not computed")
		}
		var covered, estimated int
		for v := range want {
			if res.Exact[v] {
				if res.StdErr[v] != 0 {
					t.Fatalf("exact node %d has StdErr %v", v, res.StdErr[v])
				}
				continue
			}
			estimated++
			// 3-sigma coverage should hold for the bulk of nodes.
			if math.Abs(res.Farness[v]-want[v]) <= 3*res.StdErr[v]+1e-9 {
				covered++
			}
		}
		if estimated > 0 && float64(covered)/float64(estimated) < 0.5 {
			t.Errorf("tech %v: 3-sigma coverage only %d of %d", tech, covered, estimated)
		}
	}
	// Off by default.
	res, err := Estimate(g, Options{Techniques: TechICR, SampleFraction: 0.3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.StdErr != nil {
		t.Fatal("StdErr should be nil when not requested")
	}
}
