// Package core implements the BRICS farness-centrality estimators: the
// exact oracle, the random-sampling baseline (the paper's Algorithm 1), the
// reduction-based global estimator, and the full Cumulative estimator that
// adds the biconnected-component decomposition and block cut-vertex tree
// aggregation (Algorithms 4–6).
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bfs"
	"repro/internal/bicc"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/reduce"
)

// ErrCanceled is returned (wrapped) by EstimateContext and every other
// ctx-aware entry point when the run was abandoned because its context was
// canceled or timed out. The returned error also satisfies
// errors.Is(err, ctx.Err()), so callers can distinguish deadline expiry from
// explicit cancellation.
var ErrCanceled = par.ErrCanceled

// Technique is a bitmask selecting BRICS optimisations; the letters follow
// the paper's acronym.
type Technique uint8

const (
	// TechIdentical removes identical nodes (I).
	TechIdentical Technique = 1 << iota
	// TechChains contracts chain nodes (C).
	TechChains
	// TechRedundant removes redundant 3/4-degree nodes (R).
	TechRedundant
	// TechBiCC decomposes into biconnected components and aggregates
	// across the block cut-vertex tree (B).
	TechBiCC
)

// TechCumulative is the paper's full "Cumulative" configuration: B+R+I+C
// (sampling is always on).
const TechCumulative = TechIdentical | TechChains | TechRedundant | TechBiCC

// TechCR is the paper's "C+R" ablation configuration.
const TechCR = TechChains | TechRedundant

// TechICR is the paper's "I+C+R" ablation configuration.
const TechICR = TechIdentical | TechChains | TechRedundant

// String renders the enabled techniques in BRICS letter order; sampling (S)
// is always part of the estimator.
func (t Technique) String() string {
	s := ""
	if t&TechBiCC != 0 {
		s += "B"
	}
	if t&TechRedundant != 0 {
		s += "R"
	}
	if t&TechIdentical != 0 {
		s += "I"
	}
	if t&TechChains != 0 {
		s += "C"
	}
	return s + "S"
}

// EstimatorKind selects how sampled distance sums are extrapolated to full
// farness estimates for unsampled nodes.
type EstimatorKind int

const (
	// EstimatorWeighted extrapolates the unsampled population with the
	// average distance over the uniformly drawn samples, keeping the
	// always-sampled cut vertices as exact additive terms. Default.
	EstimatorWeighted EstimatorKind = iota
	// EstimatorPaper is the literal reading of the paper: scale the total
	// sampled distance sum by (population−1)/k.
	EstimatorPaper
)

// Options configures Estimate.
type Options struct {
	// Techniques is the set of enabled reductions; zero means pure
	// sampling on the input graph.
	Techniques Technique
	// SampleFraction is the fraction of (reduced) nodes used as BFS
	// sources, in (0, 1]. Zero defaults to 0.2, the operating point the
	// paper recommends for the cumulative approach (Fig. 4(b)).
	SampleFraction float64
	// Workers caps the parallelism of the whole run — the reduction
	// pipeline (twins/chains/redundant detection, BiCC decomposition, CSR
	// rebuilds) and the traversals alike; <1 means GOMAXPROCS. Results
	// are bit-identical for every worker count.
	Workers int
	// Seed makes sampling deterministic.
	Seed int64
	// Estimator selects the extrapolation rule.
	Estimator EstimatorKind
	// Traversal selects the traversal engine for sampled sources:
	// TraversalAuto (default) batches sources into 64-wide bit-parallel
	// sweeps whenever at least 8 of them share a component/block,
	// TraversalPerSource and TraversalBatched force either engine. Both
	// engines produce identical farness values for the same seed.
	Traversal TraversalMode
	// Batching selects how sampled sources are packed into the 64-wide
	// bit-parallel batches when the batched traversal engine runs:
	// BatchingAuto (default) reorders sources by graph proximity whenever a
	// traversal unit spans more than one batch, BatchingArbitrary keeps
	// sample-draw order, BatchingClustered forces the proximity pass. The
	// sample set itself is never re-drawn, so farness is bit-identical
	// across modes; only lane-frontier overlap (and wall-clock) changes.
	Batching BatchingMode
	// Relabel selects a cache-aware node reordering for the traversal
	// phase: the reduced graph (and, under TechBiCC, every block-local
	// graph) is rebuilt under a degree-descending or BFS-order permutation
	// before the sampled traversals run, and distance rows are mapped back
	// through the permutation. Sampling, reduction events and aggregation
	// all stay in canonical ids, so results are bit-identical to
	// RelabelNone at every worker count; only memory locality changes.
	Relabel graph.RelabelMode
	// DisableExactPropagation turns off the closed-form farness
	// propagation for twins, dangling chains and pendant cycles
	// (Facts III.3/III.4 generalised); useful only for ablation.
	DisableExactPropagation bool
	// IterateReductions repeats the chain and redundant stages on the
	// weighted reduced graph until a fixpoint, going beyond the paper's
	// single pass (cascaded removals expose new chains and redundant
	// neighbourhoods).
	IterateReductions bool
	// ComputeStdErr additionally estimates each unsampled node's standard
	// error from the variance of its sampled distances (Cohen et al.'s
	// adaptive error estimation, per node). Costs one extra accumulation
	// array; Result.StdErr is nil when off.
	ComputeStdErr bool
	// Anytime turns the run into an anytime computation: instead of
	// discarding everything on ctx cancellation/deadline, the estimator
	// assembles a Partial result from the sources that completed — exact
	// farness for them, clamped extrapolations plus proven [Low, High]
	// bounds for the rest (see DESIGN.md §12). Uninterrupted runs are
	// bit-identical to Anytime=false. When no source completed before the
	// cancellation (or the cumulative gating fails, see estimateCumulative)
	// the run still returns nil + ErrCanceled.
	Anytime bool
	// Progress, when non-nil, receives live planned/completed counts and —
	// under Anytime — periodically published partial snapshots that a
	// concurrent observer (e.g. a server hitting its soft deadline) can
	// serve without interrupting the run.
	Progress *Progress
}

func (o *Options) fraction() float64 {
	if o.SampleFraction <= 0 {
		return 0.2
	}
	if o.SampleFraction > 1 {
		return 1
	}
	return o.SampleFraction
}

// RunStats reports what an estimation run did.
type RunStats struct {
	// Reduction summarises the removal stages.
	Reduction reduce.Stats
	// ReducedNodes and ReducedEdges size the reduced graph.
	ReducedNodes, ReducedEdges int
	// Blocks summarises the biconnected decomposition (zero unless
	// TechBiCC ran).
	Blocks bicc.Stats
	// BiCC reports which decomposition engine ran (sequential
	// Hopcroft–Tarjan vs parallel FAST-BCC under the auto policy) and its
	// per-substage wall clock; zero unless the decomposition ran.
	BiCC bicc.Timings
	// Samples is the number of BFS/Dial sources actually used.
	Samples int
	// FallbackAssignments counts removed nodes whose block assignment had
	// to fall back to a heuristic (expected zero; see DESIGN.md).
	FallbackAssignments int
	// ClosedForm is set when the input was a pure path or cycle and the
	// whole computation was answered in closed form.
	ClosedForm bool
	// Preprocess, Traverse and Aggregate partition the run time.
	Preprocess, Traverse, Aggregate time.Duration
}

// Result of an estimation run.
type Result struct {
	// Farness holds the estimated (or exact) farness per node.
	Farness []float64
	// Exact[v] is true when Farness[v] is exact rather than estimated
	// (sampled nodes, closed forms, propagated values).
	Exact []bool
	// StdErr estimates each node's standard error (0 for exact values);
	// nil unless Options.ComputeStdErr was set.
	StdErr []float64
	// Partial marks an anytime run that was cut short: Farness mixes exact
	// values (Exact[v] true) with bounded extrapolations, Completed out of
	// Planned sources finished, and Low/High bracket every node's true
	// farness (Low[v] = High[v] = Farness[v] where Exact). A Partial result
	// must never be cached or served as exact.
	Partial bool
	// Completed and Planned report the sampling progress of a Partial run
	// (zero on full runs).
	Completed, Planned int
	// Low and High are proven per-node farness bounds, derived from the
	// completed rows plus landmark triangle inequalities; nil unless
	// Partial.
	Low, High []float64
	// Stats reports run metadata.
	Stats RunStats
}

// ExactFarness computes the exact farness of every node (the ground-truth
// oracle): one traversal per node, in parallel.
func ExactFarness(g *graph.Graph, workers int) []float64 {
	return bfs.ExactFarness(g, workers)
}

// Estimate runs the BRICS estimator with the given options. The graph must
// be simple, undirected and connected (see graph.Connect).
func Estimate(g *graph.Graph, opts Options) (*Result, error) {
	return EstimateContext(context.Background(), g, opts)
}

// EstimateContext is Estimate with cooperative cancellation: the run checks
// ctx at every stage boundary (reduction stages, BiCC decomposition,
// traversal fan-out, aggregation) and inside the traversal kernels, and
// abandons the computation with an ErrCanceled-wrapping error once ctx is
// done. All pooled scratch is returned on the abort path, and a run whose
// context never fires produces farness bit-identical to Estimate.
func EstimateContext(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	n := g.NumNodes()
	if n == 0 {
		return &Result{}, nil
	}
	if n == 1 {
		return &Result{Farness: []float64{0}, Exact: []bool{true}}, nil
	}
	if !graph.IsConnected(g) {
		return nil, fmt.Errorf("core: graph is disconnected; connect it first (graph.Connect)")
	}
	if res, ok := closedForm(g); ok {
		return res, nil
	}
	if err := fault.Checkpoint(ctx, "core.reduce"); err != nil {
		return nil, err
	}

	start := time.Now()
	ropts := reduce.Options{
		Twins:     opts.Techniques&TechIdentical != 0,
		Chains:    opts.Techniques&TechChains != 0,
		Redundant: opts.Techniques&TechRedundant != 0,
		Workers:   opts.Workers,
	}
	if opts.Techniques&TechBiCC == 0 {
		// The global estimators traverse the reduced graph directly, so the
		// reduction carries the relabeled copy. Under TechBiCC traversals run
		// on block-local graphs, which estimateCumulative relabels itself.
		ropts.Relabel = opts.Relabel
	}
	var red *reduce.Reduction
	var err error
	if opts.IterateReductions {
		red, err = reduce.RunIterativeContext(ctx, g, ropts, 0)
	} else {
		red, err = reduce.RunContext(ctx, g, ropts)
	}
	if err != nil {
		return nil, err
	}
	prep := time.Since(start)

	var res *Result
	if opts.Techniques&TechBiCC != 0 {
		res, err = estimateCumulative(ctx, red, &opts)
	} else {
		res, err = estimateGlobal(ctx, red, &opts)
	}
	if err != nil {
		return nil, err
	}
	res.Stats.Preprocess += prep
	res.Stats.Reduction = red.Stats
	res.Stats.ReducedNodes = red.G.NumNodes()
	res.Stats.ReducedEdges = red.G.NumEdges()

	if !opts.DisableExactPropagation {
		propagateExact(red, res)
	}
	// Propagation may rewrite a partial run's values (closed forms for
	// twins/chains); restore the bound invariants afterwards.
	res.finishPartial()
	return res, nil
}

// closedForm answers pure paths and cycles exactly in O(n): every node of
// such a graph is a chain node, so the reduction pipeline has no anchor to
// hang chains from and the estimator special-cases them.
func closedForm(g *graph.Graph) (*Result, bool) {
	n := g.NumNodes()
	deg1 := 0
	for v := 0; v < n; v++ {
		switch g.Degree(graph.NodeID(v)) {
		case 1:
			deg1++
		case 2:
		default:
			return nil, false
		}
	}
	far := make([]float64, n)
	exact := make([]bool, n)
	for i := range exact {
		exact[i] = true
	}
	if deg1 == 0 {
		// Cycle: identical farness everywhere — the ramp sum
		// Σ_{o=1..n-1} min(o, n−o).
		l := int64(n) - 1
		m := l / 2
		var s int64
		if l%2 == 0 {
			s = m * (m + 1)
		} else {
			s = (m + 1) * (m + 1)
		}
		for i := range far {
			far[i] = float64(s)
		}
		return &Result{Farness: far, Exact: exact, Stats: RunStats{ClosedForm: true}}, true
	}
	// Path: walk from one end; farness of the i-th node is
	// i(i+1)/2 + (n−1−i)(n−i)/2.
	var first graph.NodeID = -1
	for v := 0; v < n; v++ {
		if g.Degree(graph.NodeID(v)) == 1 {
			first = graph.NodeID(v)
			break
		}
	}
	pos := 0
	prev, cur := graph.NodeID(-1), first
	for {
		i := int64(pos)
		nn := int64(n)
		far[cur] = float64(i*(i+1)/2 + (nn-1-i)*(nn-i)/2)
		next := graph.NodeID(-1)
		for _, w := range g.Neighbors(cur) {
			if w != prev {
				next = w
				break
			}
		}
		if next < 0 {
			break
		}
		prev, cur = cur, next
		pos++
	}
	return &Result{Farness: far, Exact: exact, Stats: RunStats{ClosedForm: true}}, true
}

// ParseTechniques converts a letter string like "BRIC" (any order,
// spaces/'+' tolerated, 'S' accepted as a no-op since sampling is always
// on) into a Technique mask.
func ParseTechniques(s string) (Technique, error) {
	var t Technique
	for _, c := range s {
		switch c {
		case 'B', 'b':
			t |= TechBiCC
		case 'R', 'r':
			t |= TechRedundant
		case 'I', 'i':
			t |= TechIdentical
		case 'C', 'c':
			t |= TechChains
		case 'S', 's', ' ', '+':
		default:
			return 0, fmt.Errorf("core: unknown technique letter %q (want B,R,I,C)", c)
		}
	}
	return t, nil
}
