package core

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
)

// anytimeFamilies are the four generator families of the acceptance
// criteria. Sizes are kept small enough that the exact oracle stays cheap
// but every reduction technique still fires.
func anytimeFamilies(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"web":       gen.Web(260, 3),
		"social":    gen.Social(260, 5),
		"community": gen.Community(260, 7),
		"road":      gen.Road(240, 9),
	}
}

// cancelAt returns a Progress whose OnAdvance cancels ctx the moment the
// completed count reaches target. With Workers=1 the fan-out is sequential,
// so exactly target sources complete — a deterministic partial run.
func cancelAt(cancel context.CancelFunc, target int64) *Progress {
	p := &Progress{}
	p.OnAdvance = func(completed, _ int64) {
		if completed == target {
			cancel()
		}
	}
	return p
}

// TestAnytimePartialBoundsContainExact is the acceptance property test:
// a partial result's confidence interval [Low, High] must contain the true
// farness of every vertex, on all four generator families, for the plain
// sampling estimator, the ICR-reduced estimator and the cumulative method.
func TestAnytimePartialBoundsContainExact(t *testing.T) {
	for name, g := range anytimeFamilies(t) {
		exact := ExactFarness(g, 4)
		n := g.NumNodes()
		for _, tech := range []Technique{0, TechICR, TechCumulative} {
			ctx, cancel := context.WithCancel(context.Background())
			prog := &Progress{}
			opts := Options{
				Techniques:     tech,
				SampleFraction: 0.5,
				Seed:           11,
				Workers:        1,
				Traversal:      TraversalPerSource,
				Anytime:        true,
				Progress:       prog,
			}
			// The cumulative path can only degrade once every cut traversal
			// has completed (cuts-first ordering banks those first), so it is
			// interrupted near the end; the global paths halfway through.
			prog.OnAdvance = func(completed, planned int64) {
				var target int64
				if tech == TechCumulative {
					target = planned - 2
				} else {
					target = planned / 2
				}
				if target < 1 {
					target = 1
				}
				if completed == target {
					cancel()
				}
			}
			res, err := EstimateContext(ctx, g, opts)
			cancel()
			if err != nil {
				t.Fatalf("%s/%v: want partial result, got error %v", name, tech, err)
			}
			if !res.Partial {
				t.Fatalf("%s/%v: interrupted run not marked Partial", name, tech)
			}
			if res.Completed <= 0 || res.Completed >= res.Planned {
				t.Fatalf("%s/%v: implausible progress %d/%d", name, tech, res.Completed, res.Planned)
			}
			if len(res.Low) != n || len(res.High) != n || len(res.Farness) != n {
				t.Fatalf("%s/%v: bound slices sized %d/%d (farness %d), want %d",
					name, tech, len(res.Low), len(res.High), len(res.Farness), n)
			}
			const eps = 1e-9
			for v := 0; v < n; v++ {
				if res.Low[v] > exact[v]+eps || res.High[v] < exact[v]-eps {
					t.Fatalf("%s/%v: vertex %d exact farness %v outside CI [%v, %v] (exact flag %v)",
						name, tech, v, exact[v], res.Low[v], res.High[v], res.Exact[v])
				}
				if res.Farness[v] < res.Low[v]-eps || res.Farness[v] > res.High[v]+eps {
					t.Fatalf("%s/%v: vertex %d estimate %v outside its own CI [%v, %v]",
						name, tech, v, res.Farness[v], res.Low[v], res.High[v])
				}
				if res.Exact[v] && math.Abs(res.Farness[v]-exact[v]) > eps {
					t.Fatalf("%s/%v: vertex %d flagged exact but farness %v != %v",
						name, tech, v, res.Farness[v], exact[v])
				}
			}
		}
	}
}

// TestAnytimeFullRunsBitIdentical: an uninterrupted anytime run must produce
// exactly the same floats as the plain run, at every worker count and for
// every technique — the anytime bookkeeping adds observation, never changes
// an accumulated integer.
func TestAnytimeFullRunsBitIdentical(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"community": gen.Community(600, 4),
		"web":       gen.Web(500, 6),
	} {
		for _, tech := range []Technique{0, TechICR, TechCumulative} {
			for _, workers := range []int{1, 2, 4} {
				opts := Options{Techniques: tech, SampleFraction: 0.3, Seed: 21, Workers: workers}
				want, err := Estimate(g, opts)
				if err != nil {
					t.Fatalf("%s/%v/w%d: %v", name, tech, workers, err)
				}
				prog := &Progress{}
				opts.Anytime = true
				opts.Progress = prog
				got, err := EstimateContext(context.Background(), g, opts)
				if err != nil {
					t.Fatalf("%s/%v/w%d anytime: %v", name, tech, workers, err)
				}
				if got.Partial {
					t.Fatalf("%s/%v/w%d: uninterrupted run marked Partial", name, tech, workers)
				}
				for i := range want.Farness {
					if want.Farness[i] != got.Farness[i] {
						t.Fatalf("%s/%v/w%d: farness[%d] %v (plain) != %v (anytime)",
							name, tech, workers, i, want.Farness[i], got.Farness[i])
					}
					if want.Exact[i] != got.Exact[i] {
						t.Fatalf("%s/%v/w%d: exact[%d] differs", name, tech, workers, i)
					}
				}
				if c, p := prog.Completed(), prog.Planned(); c != p || p == 0 {
					t.Fatalf("%s/%v/w%d: progress %d/%d after a full run", name, tech, workers, c, p)
				}
			}
		}
	}
}

// TestAnytimeSnapshots: a running global estimation publishes monotonically
// fresher snapshots; each published snapshot is internally consistent.
func TestAnytimeSnapshots(t *testing.T) {
	g := gen.Community(500, 13)
	prog := &Progress{}
	var snaps int64
	prog.OnAdvance = func(completed, planned int64) {
		if s := prog.Snapshot(); s != nil {
			atomic.AddInt64(&snaps, 1)
			if !s.Partial || s.Completed <= 0 || s.Completed > int(completed) {
				panic("inconsistent snapshot")
			}
		}
	}
	opts := Options{SampleFraction: 0.4, Seed: 3, Workers: 1, Traversal: TraversalPerSource,
		Anytime: true, Progress: prog}
	if _, err := EstimateContext(context.Background(), g, opts); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&snaps) == 0 {
		t.Fatal("no snapshot was ever observable during the run")
	}
	final := prog.Snapshot()
	if final == nil || !final.Partial {
		t.Fatal("final published snapshot missing or not partial")
	}
	if len(final.Low) != g.NumNodes() {
		t.Fatalf("snapshot bounds sized %d, want %d", len(final.Low), g.NumNodes())
	}
}

// TestAnytimeNothingCompleted: cancellation before any source completes has
// no partial result to offer — the run must fail with ErrCanceled exactly as
// a non-anytime run does.
func TestAnytimeNothingCompleted(t *testing.T) {
	g := gen.Community(300, 2)
	ctx, cancel := context.WithCancel(context.Background())
	restore := fault.Set("core.traverse", func(context.Context) error {
		cancel() // before the fan-out claims its first source
		return nil
	})
	defer restore()
	res, err := EstimateContext(ctx, g, Options{SampleFraction: 0.3, Seed: 1, Anytime: true})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if res != nil {
		t.Fatal("run with zero completed sources must not fabricate a partial result")
	}
}

// TestRandomSamplingAnytime covers the standalone random-sampling driver:
// partial runs carry bounds containing the truth, full runs stay
// bit-identical to the plain mode across traversal engines.
func TestRandomSamplingAnytime(t *testing.T) {
	g := gen.Community(400, 8)
	exact := ExactFarness(g, 4)
	n := g.NumNodes()

	// Bit-identity of the uninterrupted run, per traversal mode and worker
	// count — the anytime batched path swaps the mask-streaming engine for
	// whole-row batches, which must not change a single accumulated integer.
	for _, mode := range []TraversalMode{TraversalPerSource, TraversalBatched, TraversalAuto} {
		for _, workers := range []int{1, 3} {
			want, err := RandomSamplingModeContext(context.Background(), g, 0.3, workers, 5, mode, BatchingAuto)
			if err != nil {
				t.Fatalf("mode %v w%d: %v", mode, workers, err)
			}
			prog := &Progress{}
			got, err := RandomSamplingAnytimeContext(context.Background(), g, 0.3, workers, 5, mode, BatchingAuto, prog)
			if err != nil {
				t.Fatalf("mode %v w%d anytime: %v", mode, workers, err)
			}
			for i := range want.Farness {
				if want.Farness[i] != got.Farness[i] {
					t.Fatalf("mode %v w%d: farness[%d] %v != %v", mode, workers, i, want.Farness[i], got.Farness[i])
				}
			}
		}
	}

	// Deterministic partial run: cancel halfway, workers=1, per-source.
	ctx, cancel := context.WithCancel(context.Background())
	prog := &Progress{}
	prog.OnAdvance = func(completed, planned int64) {
		if completed == planned/2 {
			cancel()
		}
	}
	res, err := RandomSamplingAnytimeContext(ctx, g, 0.4, 1, 5, TraversalPerSource, BatchingAuto, prog)
	cancel()
	if err != nil {
		t.Fatalf("want partial result, got %v", err)
	}
	if !res.Partial || res.Completed <= 0 || res.Completed >= res.Planned {
		t.Fatalf("bad partial: partial=%v %d/%d", res.Partial, res.Completed, res.Planned)
	}
	const eps = 1e-9
	for v := 0; v < n; v++ {
		if res.Low[v] > exact[v]+eps || res.High[v] < exact[v]-eps {
			t.Fatalf("vertex %d exact %v outside CI [%v, %v]", v, exact[v], res.Low[v], res.High[v])
		}
	}
}

// TestAdaptivePartial: a round interrupted mid-flight surfaces that round's
// partial result (bounds included) instead of failing the whole escalation.
func TestAdaptivePartial(t *testing.T) {
	g := gen.Community(400, 6)
	ctx, cancel := context.WithCancel(context.Background())
	prog := &Progress{}
	var total atomic.Int64
	prog.OnAdvance = func(int64, int64) {
		// Let round 0 finish (small fraction) and cancel partway into a later
		// round: total advances across rounds share one counter.
		if total.Add(1) == 40 {
			cancel()
		}
	}
	res, err := EstimateAdaptiveContext(ctx, g, AdaptiveOptions{
		Base:            Options{Seed: 17, Workers: 1, Traversal: TraversalPerSource, Anytime: true, Progress: prog},
		InitialFraction: 0.05,
		TargetError:     1e-9, // force escalation until the cancel lands
	})
	cancel()
	if err != nil {
		t.Fatalf("want degraded adaptive result, got %v", err)
	}
	if !res.Partial {
		t.Fatal("interrupted adaptive run not marked Partial")
	}
	if len(res.Farness) != g.NumNodes() {
		t.Fatalf("result sized %d, want %d", len(res.Farness), g.NumNodes())
	}
}

// TestAdaptivePrevRoundFallback: when a later round dies before completing a
// single source, the escalation falls back to the last full round's result,
// re-marked Partial.
func TestAdaptivePrevRoundFallback(t *testing.T) {
	g := gen.Community(400, 6)
	ctx, cancel := context.WithCancel(context.Background())
	var rounds atomic.Int64
	restore := fault.Set("core.traverse", func(context.Context) error {
		if rounds.Add(1) == 2 { // kill round 1 before its fan-out starts
			cancel()
		}
		return nil
	})
	defer restore()
	res, err := EstimateAdaptiveContext(ctx, g, AdaptiveOptions{
		Base:            Options{Seed: 23, Anytime: true},
		InitialFraction: 0.05,
		TargetError:     1e-9,
	})
	cancel()
	if err != nil {
		t.Fatalf("want previous round's result, got %v", err)
	}
	if !res.Partial {
		t.Fatal("fallback result not marked Partial")
	}
	if len(res.Rounds) != 1 {
		t.Fatalf("expected exactly the first round recorded, got %v", res.Rounds)
	}
}
