package core

import (
	"repro/internal/gen"

	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// randomMixed builds a connected graph exercising every reduction: random
// core plus twins, chains of all kinds, and redundant-node constructions.
func randomMixed(rng *rand.Rand, scale int) *graph.Graph {
	nc := rng.Intn(scale) + 5
	b := graph.NewGrowingBuilder()
	for i := 1; i < nc; i++ {
		_ = b.AddEdge(int32(rng.Intn(i)), int32(i))
	}
	for i := 0; i < 2*nc; i++ {
		_ = b.AddEdge(int32(rng.Intn(nc)), int32(rng.Intn(nc)))
	}
	next := int32(nc)
	for c := 0; c < rng.Intn(3); c++ {
		hub := int32(rng.Intn(nc))
		for j := 0; j < rng.Intn(3)+2; j++ {
			_ = b.AddEdge(hub, next)
			next++
		}
	}
	for c := 0; c < rng.Intn(5); c++ {
		l := rng.Intn(5) + 1
		u := int32(rng.Intn(nc))
		prev := u
		for j := 0; j < l; j++ {
			_ = b.AddEdge(prev, next)
			prev = next
			next++
		}
		switch rng.Intn(3) {
		case 0:
		case 1:
			_ = b.AddEdge(prev, u)
		case 2:
			v := int32(rng.Intn(nc))
			if v != u {
				_ = b.AddEdge(prev, v)
			}
		}
	}
	for c := 0; c < rng.Intn(3); c++ {
		x, y, z := int32(rng.Intn(nc)), int32(rng.Intn(nc)), int32(rng.Intn(nc))
		if x == y || y == z || x == z {
			continue
		}
		_ = b.AddEdge(x, y)
		_ = b.AddEdge(y, z)
		_ = b.AddEdge(x, z)
		_ = b.AddEdge(next, x)
		_ = b.AddEdge(next, y)
		_ = b.AddEdge(next, z)
		next++
	}
	return graph.Connect(b.Build())
}

func maxAbsRel(a, b []float64) float64 {
	var worst float64
	for i := range a {
		denom := math.Max(math.Abs(b[i]), 1)
		if r := math.Abs(a[i]-b[i]) / denom; r > worst {
			worst = r
		}
	}
	return worst
}

func TestExactFarnessMatchesDefinition(t *testing.T) {
	// Square with a tail: 0-1-2-3-0, 3-4.
	g := graph.FromEdges(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {3, 4}})
	far := ExactFarness(g, 2)
	want := []float64{
		1 + 2 + 1 + 2, // node 0
		1 + 1 + 2 + 3, // node 1
		2 + 1 + 1 + 2, // node 2
		1 + 2 + 1 + 1, // node 3
		2 + 3 + 2 + 1, // node 4
	}
	for i := range want {
		if far[i] != want[i] {
			t.Errorf("farness[%d] = %v, want %v", i, far[i], want[i])
		}
	}
}

func TestClosedFormPath(t *testing.T) {
	b := graph.NewBuilder(7)
	for i := 0; i < 6; i++ {
		_ = b.AddEdge(int32(i), int32(i+1))
	}
	g := b.Build()
	res, err := Estimate(g, Options{Techniques: TechCumulative})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.ClosedForm {
		t.Fatal("path should take the closed form")
	}
	want := ExactFarness(g, 1)
	for i := range want {
		if res.Farness[i] != want[i] || !res.Exact[i] {
			t.Errorf("farness[%d] = %v (exact=%v), want %v", i, res.Farness[i], res.Exact[i], want[i])
		}
	}
}

func TestClosedFormCycle(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8, 9} {
		b := graph.NewBuilder(n)
		for i := 0; i < n; i++ {
			_ = b.AddEdge(int32(i), int32((i+1)%n))
		}
		g := b.Build()
		res, err := Estimate(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := ExactFarness(g, 1)
		for i := range want {
			if res.Farness[i] != want[i] {
				t.Errorf("n=%d: farness[%d] = %v, want %v", n, i, res.Farness[i], want[i])
			}
		}
	}
}

func TestRandomSamplingFullFractionIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomMixed(rng, 15)
	res := RandomSampling(g, 1.0, 2, 7)
	want := ExactFarness(g, 2)
	for i := range want {
		if res.Farness[i] != want[i] || !res.Exact[i] {
			t.Fatalf("farness[%d] = %v (exact=%v), want %v", i, res.Farness[i], res.Exact[i], want[i])
		}
	}
}

func TestGlobalFullFractionExactOnKept(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomMixed(rng, 12)
		want := ExactFarness(g, 2)
		for _, tech := range []Technique{TechChains, TechICR, TechIdentical, TechRedundant} {
			res, err := Estimate(g, Options{
				Techniques:     tech,
				SampleFraction: 1.0,
				Workers:        2,
				Seed:           seed,
			})
			if err != nil {
				return false
			}
			for v := range want {
				if res.Exact[v] && res.Farness[v] != want[v] {
					return false
				}
				// Estimated values must still be positive and finite.
				if !(res.Farness[v] > 0) || math.IsInf(res.Farness[v], 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The strongest end-to-end property: with only the BiCC decomposition (no
// reductions) and 100% sampling, every node's farness is exact — this
// exercises the full block/cut-tree aggregation machinery.
func TestCumulativeBiCCOnlyFullFractionIsExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomMixed(rng, 15)
		want := ExactFarness(g, 2)
		res, err := Estimate(g, Options{
			Techniques:     TechBiCC,
			SampleFraction: 1.0,
			Workers:        2,
			Seed:           seed,
		})
		if err != nil {
			return false
		}
		for v := range want {
			if res.Farness[v] != want[v] {
				return false
			}
			if !res.Exact[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Full BRICS at 100% sampling: every value flagged exact must match the
// oracle exactly; estimated values (removed-removed distance pairs) stay
// within a factor of 2 per node and the average quality stays near 1.
// The per-node slack is deliberate: these adversarial 10-30 node graphs
// can reduce to 2-4 kept nodes, where any sampling estimator is noisy —
// the realistic-workload quality assertions live in internal/experiments.
func TestCumulativeFullFractionExactFlags(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomMixed(rng, 15)
		want := ExactFarness(g, 2)
		res, err := Estimate(g, Options{
			Techniques:     TechCumulative,
			SampleFraction: 1.0,
			Workers:        2,
			Seed:           seed,
		})
		if err != nil {
			return false
		}
		if res.Stats.FallbackAssignments != 0 {
			return false
		}
		var quality float64
		for v := range want {
			if res.Exact[v] && math.Abs(res.Farness[v]-want[v]) > 1e-9 {
				return false
			}
			denom := math.Max(want[v], 1)
			if math.Abs(res.Farness[v]-want[v])/denom > 1.0 {
				return false
			}
			quality += res.Farness[v] / denom
		}
		quality /= float64(len(want))
		return quality > 0.8 && quality < 1.25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateRejectsDisconnected(t *testing.T) {
	g := graph.FromEdges(4, [][2]int32{{0, 1}, {2, 3}})
	if _, err := Estimate(g, Options{}); err == nil {
		t.Fatal("expected error for disconnected graph")
	}
}

func TestEstimateTinyGraphs(t *testing.T) {
	empty := graph.FromEdges(0, nil)
	if res, err := Estimate(empty, Options{}); err != nil || len(res.Farness) != 0 {
		t.Fatalf("empty graph: %v %v", res, err)
	}
	single := graph.FromEdges(1, nil)
	res, err := Estimate(single, Options{})
	if err != nil || res.Farness[0] != 0 || !res.Exact[0] {
		t.Fatalf("single node: %+v %v", res, err)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := randomMixed(rng, 20)
	opts := Options{Techniques: TechCumulative, SampleFraction: 0.3, Workers: 3, Seed: 123}
	a, err := Estimate(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Farness {
		if a.Farness[i] != b.Farness[i] {
			t.Fatalf("non-deterministic at node %d: %v vs %v", i, a.Farness[i], b.Farness[i])
		}
	}
}

func TestEstimatorKindsBothReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomMixed(rng, 30)
	want := ExactFarness(g, 2)
	for _, kind := range []EstimatorKind{EstimatorWeighted, EstimatorPaper} {
		res, err := Estimate(g, Options{
			Techniques:     TechCumulative,
			SampleFraction: 0.5,
			Seed:           1,
			Estimator:      kind,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r := maxAbsRel(res.Farness, want); r > 1.0 {
			t.Errorf("estimator %d: worst relative error %v too large", kind, r)
		}
	}
}

func TestTechniqueString(t *testing.T) {
	cases := map[Technique]string{
		0:                        "S",
		TechIdentical:            "IS",
		TechChains:               "CS",
		TechCR:                   "RCS",
		TechICR:                  "RICS",
		TechCumulative:           "BRICS",
		TechBiCC:                 "BS",
		TechBiCC | TechIdentical: "BIS",
	}
	for tech, want := range cases {
		if got := tech.String(); got != want {
			t.Errorf("String(%b) = %q, want %q", tech, got, want)
		}
	}
}

func TestSampleFractionDefaults(t *testing.T) {
	o := &Options{}
	if o.fraction() != 0.2 {
		t.Errorf("default fraction = %v, want 0.2", o.fraction())
	}
	o.SampleFraction = 2.5
	if o.fraction() != 1 {
		t.Errorf("clamped fraction = %v, want 1", o.fraction())
	}
}

// Lower sampling keeps reasonable quality on structured graphs (smoke-level
// quality assertion; the benchmarks quantify it properly).
func TestQualityAtModerateSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomMixed(rng, 60)
	want := ExactFarness(g, 2)
	res, err := Estimate(g, Options{
		Techniques:     TechCumulative,
		SampleFraction: 0.4,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var quality float64
	for i := range want {
		quality += res.Farness[i] / want[i]
	}
	quality /= float64(len(want))
	if quality < 0.85 || quality > 1.15 {
		t.Errorf("quality = %v, want within [0.85, 1.15]", quality)
	}
}

// The iterative (fixpoint) reduction must preserve the exactness contract.
func TestIterativeReductionExactFlags(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomMixed(rng, 15)
		want := ExactFarness(g, 2)
		for _, tech := range []Technique{TechICR, TechCumulative} {
			res, err := Estimate(g, Options{
				Techniques:        tech,
				SampleFraction:    1.0,
				Seed:              seed,
				IterateReductions: true,
			})
			if err != nil {
				return false
			}
			var quality float64
			for v := range want {
				if res.Exact[v] && math.Abs(res.Farness[v]-want[v]) > 1e-9 {
					return false
				}
				denom := math.Max(want[v], 1)
				if math.Abs(res.Farness[v]-want[v])/denom > 1.0 {
					return false
				}
				quality += res.Farness[v] / denom
			}
			quality /= float64(len(want))
			if quality < 0.75 || quality > 1.3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIterativeReducesMore(t *testing.T) {
	g := gen.Road(6000, 3)
	single, err := Estimate(g, Options{Techniques: TechCR, SampleFraction: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	iter, err := Estimate(g, Options{Techniques: TechCR, SampleFraction: 0.2, Seed: 1, IterateReductions: true})
	if err != nil {
		t.Fatal(err)
	}
	if iter.Stats.ReducedNodes > single.Stats.ReducedNodes {
		t.Fatalf("iterative kept more nodes (%d) than single pass (%d)",
			iter.Stats.ReducedNodes, single.Stats.ReducedNodes)
	}
}
