package core

import (
	"repro/internal/chains"
	"repro/internal/reduce"
)

// propagateExact replaces sampled estimates with closed-form exact values
// for the removed nodes whose farness is a pure function of an anchor's
// farness:
//
//   - identical nodes: farness(twin) = farness(rep) — the paper's
//     Section III-A observation, exact for both open and closed twins;
//   - dangling (Type-1) chain interiors: every shortest path leaves through
//     the anchor u, so farness(a_i) = farness(u) + pos·(n−ℓ) − Σpos +
//     within-chain term (Fact III.3/III.4 generalised);
//   - pendant-cycle (Type-2) interiors: likewise through u, collapsing to
//     farness(a_i) = farness(u) + off_i·(n−ℓ−1).
//
// Parallel-chain interiors and redundant nodes have no such closed form
// (their distances take a min over two+ anchors) and keep their sampled
// estimates. Events are replayed in reverse removal order so an anchor that
// was itself removed later already carries its final value.
func propagateExact(red *reduce.Reduction, res *Result) {
	n := int64(red.Orig.NumNodes())
	// anchorNodes collects every node some event hangs structure off: twin
	// representatives, chain anchors and redundant-node neighbours. A
	// chain whose *interior* contains such a node violates the
	// "everything outside routes through the chain's own anchors"
	// assumption (the hung structure attaches mid-chain), so it keeps its
	// sampled estimate. In the paper's single pass only twin reps can
	// occur inside interiors; the iterative pipeline's later rounds make
	// the general check necessary.
	anchorNodes := make(map[int32]bool)
	// Twins of the chain's own anchor are correctable rather than unsafe:
	// a twin t of u sits at d(a_i, t) = d(a_i, u), while the through-u
	// decomposition charges pos_i + d(u, t) — an overcount of exactly
	// GroupDist per twin, which anchorExcess subtracts.
	anchorExcess := make(map[int32]int64)
	for _, e := range red.Events {
		for _, a := range e.Anchors() {
			anchorNodes[a] = true
		}
		if te, ok := e.(*reduce.TwinEvent); ok {
			anchorExcess[te.Rep] = int64(len(te.Members)) * int64(te.GroupDist)
		}
	}
	chainSafe := func(e *reduce.ChainEvent) bool {
		for _, x := range e.Interior {
			if anchorNodes[x] {
				return false
			}
		}
		return true
	}
	for i := len(red.Events) - 1; i >= 0; i-- {
		switch e := red.Events[i].(type) {
		case *reduce.TwinEvent:
			for _, m := range e.Members {
				res.Farness[m] = res.Farness[e.Rep]
				res.Exact[m] = res.Exact[e.Rep]
				if res.StdErr != nil {
					res.StdErr[m] = res.StdErr[e.Rep]
				}
			}
		case *reduce.ChainEvent:
			if !chainSafe(e) {
				continue
			}
			switch e.Kind {
			case chains.Dangling:
				if e.Offsets != nil {
					propagateWeightedDangling(e, res, n, anchorExcess[e.U])
					continue
				}
				l := int64(len(e.Interior))
				sumPos := l * (l + 1) / 2
				fu := res.Farness[e.U]
				excess := anchorExcess[e.U]
				for idx, node := range e.Interior {
					pos := int64(idx) + 1
					within := pos*(pos-1)/2 + (l-pos)*(l-pos+1)/2
					res.Farness[node] = float64(pos*(n-l)-sumPos+within-excess) + fu
					res.Exact[node] = res.Exact[e.U]
					if res.StdErr != nil {
						res.StdErr[node] = res.StdErr[e.U]
					}
				}
			case chains.Cycle:
				if e.Offsets != nil {
					// Weighted pendant cycles keep their sampled
					// estimates: the cyclic within-distance has no cheap
					// closed form over arbitrary offsets.
					continue
				}
				l := int64(len(e.Interior))
				L := l + 1
				fu := res.Farness[e.U]
				excess := anchorExcess[e.U]
				for idx, node := range e.Interior {
					pos := int64(idx) + 1
					off := pos
					if L-pos < off {
						off = L - pos
					}
					res.Farness[node] = float64(off*(n-l-1)-excess) + fu
					res.Exact[node] = res.Exact[e.U]
					if res.StdErr != nil {
						res.StdErr[node] = res.StdErr[e.U]
					}
				}
			}
		}
	}
}

// propagateWeightedDangling is the Offsets generalisation of the dangling
// closed form: farness(a_i) = off_i·(n−ℓ) + f(u) − Σ_j off_j +
// Σ_{j≠i} |off_i − off_j| − anchorExcess, computed with prefix sums over
// the (increasing) offsets.
func propagateWeightedDangling(e *reduce.ChainEvent, res *Result, n int64, excess int64) {
	l := int64(len(e.Interior))
	fu := res.Farness[e.U]
	prefix := make([]int64, l+1)
	for i, off := range e.Offsets {
		prefix[i+1] = prefix[i] + int64(off)
	}
	total := prefix[l]
	for idx, node := range e.Interior {
		off := int64(e.Offsets[idx])
		i := int64(idx)
		// Offsets are strictly increasing along the chain.
		within := (i*off - prefix[idx]) + ((total - prefix[idx+1]) - (l-i-1)*off)
		res.Farness[node] = float64(off*(n-l)-total+within-excess) + fu
		res.Exact[node] = res.Exact[e.U]
		if res.StdErr != nil {
			res.StdErr[node] = res.StdErr[e.U]
		}
	}
}
