package core

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// These tests pin the cache-aware relabeling contract: Options.Relabel is a
// pure memory-layout knob. For every generator family, technique mix,
// traversal engine and worker count, an estimate with relabeling on is
// bit-for-bit the estimate with relabeling off — farness, exactness flags
// and sample counts alike.

func relabelFamilies() []struct {
	name string
	gen  func(int, int64) *graph.Graph
} {
	return []struct {
		name string
		gen  func(int, int64) *graph.Graph
	}{
		{"web", gen.Web},
		{"social", gen.Social},
		{"community", gen.Community},
		{"road", gen.Road},
	}
}

func relabelWorkerSweep() []int {
	out := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		out = append(out, p)
	}
	return out
}

// assertSameResult fails unless got matches want in every output field.
// Farness is compared with ==, not a tolerance: the relabeling contract is
// bit-identity, and every accumulator on the path is integer arithmetic.
func assertSameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if len(want.Farness) != len(got.Farness) {
		t.Fatalf("%s: length differs: want %d, got %d", label, len(want.Farness), len(got.Farness))
	}
	for v := range want.Farness {
		if want.Farness[v] != got.Farness[v] {
			t.Fatalf("%s: farness[%d] differs: want %v, got %v", label, v, want.Farness[v], got.Farness[v])
		}
		if want.Exact[v] != got.Exact[v] {
			t.Fatalf("%s: exact[%d] differs: want %v, got %v", label, v, want.Exact[v], got.Exact[v])
		}
	}
	if want.Stats.Samples != got.Stats.Samples {
		t.Fatalf("%s: samples differ: want %d, got %d", label, want.Stats.Samples, got.Stats.Samples)
	}
}

// TestEstimateRelabelBitIdentical is the acceptance property of the
// relabeling tentpole: Estimate with each relabel mode equals Estimate
// without, across all four families, the global and cumulative estimators,
// every traversal engine, and 1/2/4/GOMAXPROCS workers.
func TestEstimateRelabelBitIdentical(t *testing.T) {
	techs := []struct {
		name string
		t    Technique
	}{
		{"ICR", TechICR},
		{"cumulative", TechCumulative},
	}
	travs := []TraversalMode{TraversalAuto, TraversalPerSource, TraversalBatched, TraversalHybrid}
	for _, fam := range relabelFamilies() {
		g := graph.Connect(fam.gen(3000, 42))
		for _, tech := range techs {
			for _, trav := range travs {
				base, err := Estimate(g, Options{
					Techniques:     tech.t,
					SampleFraction: 0.2,
					Seed:           7,
					Workers:        1,
					Traversal:      trav,
				})
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", fam.name, tech.name, trav, err)
				}
				for _, mode := range []graph.RelabelMode{graph.RelabelDegree, graph.RelabelBFS} {
					for _, w := range relabelWorkerSweep() {
						got, err := Estimate(g, Options{
							Techniques:     tech.t,
							SampleFraction: 0.2,
							Seed:           7,
							Workers:        w,
							Traversal:      trav,
							Relabel:        mode,
						})
						if err != nil {
							t.Fatalf("%s/%s/%s/%s workers=%d: %v", fam.name, tech.name, trav, mode, w, err)
						}
						label := fmt.Sprintf("%s/%s/%s/%s workers=%d", fam.name, tech.name, trav, mode, w)
						assertSameResult(t, label, base, got)
					}
				}
			}
		}
	}
}

// TestEstimateHybridMatchesPerSource pins the direction-optimising kernel's
// half of the contract on its own: forcing TraversalHybrid changes no output
// relative to the plain per-source engine (BFS levels are unique, so push
// and pull produce the same distance rows).
func TestEstimateHybridMatchesPerSource(t *testing.T) {
	for _, fam := range relabelFamilies() {
		g := graph.Connect(fam.gen(3000, 9))
		for _, tech := range []Technique{0, TechICR, TechCumulative} {
			base, err := Estimate(g, Options{Techniques: tech, SampleFraction: 0.2, Seed: 3, Traversal: TraversalPerSource})
			if err != nil {
				t.Fatalf("%s/%v: %v", fam.name, tech, err)
			}
			got, err := Estimate(g, Options{Techniques: tech, SampleFraction: 0.2, Seed: 3, Traversal: TraversalHybrid})
			if err != nil {
				t.Fatalf("%s/%v hybrid: %v", fam.name, tech, err)
			}
			assertSameResult(t, fmt.Sprintf("%s/%v hybrid-vs-per-source", fam.name, tech), base, got)
		}
	}
}

// TestRandomSamplingHybridMatches covers the unreduced baseline path: the
// hybrid kernel behind TraversalHybrid/Auto per-source sampling produces the
// same result as the FIFO kernel.
func TestRandomSamplingHybridMatches(t *testing.T) {
	for _, fam := range relabelFamilies() {
		g := graph.Connect(fam.gen(2000, 11))
		base := RandomSamplingMode(g, 0.3, 2, 5, TraversalPerSource)
		got := RandomSamplingMode(g, 0.3, 2, 5, TraversalHybrid)
		assertSameResult(t, fam.name+"/random-hybrid", base, got)
	}
}
