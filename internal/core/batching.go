package core

import (
	"fmt"
	"sort"

	"repro/internal/bfs"
	"repro/internal/graph"
)

// BatchingMode selects how sampled sources are packed into the ≤64-wide
// bit-parallel batches of the batched traversal engine. The sample *set* is
// never re-drawn — batching only permutes the order sources are handed to
// the batch driver — so farness output is bit-identical across modes; only
// how much the lanes of one batch overlap (and therefore the wall-clock)
// changes.
type BatchingMode int

const (
	// BatchingAuto (default) clusters whenever the batched engine runs
	// with more than one batch in a traversal unit; a single batch has a
	// fixed composition, so reordering it is pure overhead.
	BatchingAuto BatchingMode = iota
	// BatchingArbitrary fills batches in sample-draw order (the pre-PR-5
	// behaviour): lanes of one batch land anywhere in the graph, so their
	// frontiers rarely coincide and every batch pays full memory traffic.
	BatchingArbitrary
	// BatchingClustered reorders the sampled sources by a Cuthill–McKee
	// (BFS) position pass over the traversal graph before batching, so each
	// batch covers one neighbourhood. Nearby sources reach every node at
	// nearly the same level, which merges the 64 lane frontiers after a few
	// hops — the multi-source kernels then expand each adjacency row once
	// for all lanes (see bfs.MultiSourceMasksInto) instead of once per
	// distinct arrival level.
	BatchingClustered
)

// String names the mode for flags, logs and cache keys.
func (m BatchingMode) String() string {
	switch m {
	case BatchingArbitrary:
		return "arbitrary"
	case BatchingClustered:
		return "clustered"
	default:
		return "auto"
	}
}

// ParseBatchingMode converts a mode name (as produced by String, with a few
// aliases) into a BatchingMode; the empty string is Auto.
func ParseBatchingMode(s string) (BatchingMode, error) {
	switch s {
	case "", "auto":
		return BatchingAuto, nil
	case "arbitrary", "arb", "sample-order":
		return BatchingArbitrary, nil
	case "clustered", "cluster", "proximity":
		return BatchingClustered, nil
	}
	return 0, fmt.Errorf("core: unknown batching mode %q (want auto, arbitrary or clustered)", s)
}

// clustered reports whether a traversal unit with k batched sources should
// pay the proximity-ordering pass under this mode. Below two batches the
// grouping cannot change (every source shares the single batch), so even
// the forced mode skips the pass.
func (m BatchingMode) clustered(k int) bool {
	if k <= bfs.MSBFSWidth {
		return false
	}
	return m != BatchingArbitrary
}

// clusterOrder returns a permutation of [0, len(sources)) that sorts the
// sources by pos (their position in a proximity ordering of the traversal
// graph), ties by original index. A nil pos means the graph's own ids are
// already proximity positions (it was rebuilt under a BFS relabeling), so
// sources sort by value. Consecutive runs of the result land in the same
// ≤64-wide batch, so each batch covers one neighbourhood of the ordering.
// The caller keeps the original slice: accumulation stays keyed by
// sources[order[i]], which is what makes clustering output-invariant.
func clusterOrder(sources []graph.NodeID, pos []graph.NodeID) []int {
	posOf := func(v graph.NodeID) graph.NodeID { return v }
	if pos != nil {
		posOf = func(v graph.NodeID) graph.NodeID { return pos[v] }
	}
	order := make([]int, len(sources))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := posOf(sources[order[a]]), posOf(sources[order[b]])
		if pa != pb {
			return pa < pb
		}
		return order[a] < order[b]
	})
	return order
}
