package core

// TraversalMode selects the traversal engine the estimators use for their
// sampled sources.
type TraversalMode int

const (
	// TraversalAuto (default) picks TraversalBatched whenever at least
	// batchMinSources sampled sources share a traversal unit — the whole
	// (reduced) graph for the global estimators, one biconnected block for
	// the cumulative one — and TraversalPerSource below that, where batch
	// setup costs outweigh the shared edge scans.
	TraversalAuto TraversalMode = iota
	// TraversalPerSource runs one BFS/Dial per sampled source, parallel
	// across sources (the original engine).
	TraversalPerSource
	// TraversalBatched groups sources into ≤64-wide bit-parallel batches
	// that share edge scans (see internal/bfs MultiSource/MultiSourceW)
	// and fans the batches out across the worker pool. Farness output is
	// bit-identical to TraversalPerSource for the same seed.
	TraversalBatched
)

// batchMinSources is the Auto threshold: below 8 sources in a traversal
// unit a 64-lane sweep mostly carries empty lanes and the per-source
// engine's simpler inner loop wins.
const batchMinSources = 8

// String names the mode for logs and experiment tables.
func (m TraversalMode) String() string {
	switch m {
	case TraversalPerSource:
		return "per-source"
	case TraversalBatched:
		return "batched"
	default:
		return "auto"
	}
}

// batched reports whether a traversal unit with k sampled sources should
// use the batched engine under this mode.
func (m TraversalMode) batched(k int) bool {
	switch m {
	case TraversalPerSource:
		return false
	case TraversalBatched:
		return k > 0
	default:
		return k >= batchMinSources
	}
}
