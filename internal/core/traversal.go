package core

import "fmt"

// TraversalMode selects the traversal engine the estimators use for their
// sampled sources.
type TraversalMode int

const (
	// TraversalAuto (default) picks TraversalBatched whenever at least
	// batchMinSources sampled sources share a traversal unit — the whole
	// (reduced) graph for the global estimators, one biconnected block for
	// the cumulative one — and the direction-optimising per-source kernel
	// below that, where batch setup costs outweigh the shared edge scans.
	TraversalAuto TraversalMode = iota
	// TraversalPerSource runs one plain top-down BFS/Dial per sampled
	// source, parallel across sources (the original engine).
	TraversalPerSource
	// TraversalBatched groups sources into ≤64-wide bit-parallel batches
	// that share edge scans (see internal/bfs MultiSource/MultiSourceW)
	// and fans the batches out across the worker pool. Farness output is
	// bit-identical to TraversalPerSource for the same seed.
	TraversalBatched
	// TraversalHybrid forces the direction-optimising (push/pull) per-source
	// BFS kernel for unweighted traversals, never batching. Weighted
	// traversals keep Dial's algorithm — pull sweeps need the unit-weight
	// guarantee. Farness output is bit-identical to the other modes: BFS
	// levels are unique, so push and pull produce the same distances.
	TraversalHybrid
	// TraversalFrontier forces the frontier-parallel edge-map engine: the
	// sampled sources run sequentially and every traversal splits its
	// frontier levels (BFS) or bucket relaxations (Dial) across the worker
	// pool — the transposed parallelization, right when there are fewer
	// sources than workers. Farness output is bit-identical to the other
	// modes at every worker count: BFS levels and shortest-path distances
	// are unique, so whichever worker claims a node writes the same value.
	TraversalFrontier
)

// batchMinSources is the Auto threshold: below 8 sources in a traversal
// unit a 64-lane sweep mostly carries empty lanes and the per-source
// engine's simpler inner loop wins.
const batchMinSources = 8

// String names the mode for logs and experiment tables.
func (m TraversalMode) String() string {
	switch m {
	case TraversalPerSource:
		return "per-source"
	case TraversalBatched:
		return "batched"
	case TraversalHybrid:
		return "hybrid"
	case TraversalFrontier:
		return "frontier"
	default:
		return "auto"
	}
}

// ParseTraversalMode converts a mode name (as produced by String, with a few
// aliases) into a TraversalMode; the empty string is Auto.
func ParseTraversalMode(s string) (TraversalMode, error) {
	switch s {
	case "", "auto":
		return TraversalAuto, nil
	case "per-source", "persource", "sequential":
		return TraversalPerSource, nil
	case "batched", "batch", "msbfs":
		return TraversalBatched, nil
	case "hybrid", "direction-optimizing", "do":
		return TraversalHybrid, nil
	case "frontier", "edge-map", "edgemap":
		return TraversalFrontier, nil
	}
	return 0, fmt.Errorf("core: unknown traversal mode %q (want auto, per-source, batched, hybrid or frontier)", s)
}

// batched reports whether a traversal unit with k sampled sources should
// use the batched engine under this mode.
func (m TraversalMode) batched(k int) bool {
	switch m {
	case TraversalPerSource, TraversalHybrid, TraversalFrontier:
		return false
	case TraversalBatched:
		return k > 0
	default:
		return k >= batchMinSources
	}
}

// hybrid reports whether per-source unweighted traversals should use the
// direction-optimising kernel under this mode. True for Hybrid (forced) and
// Auto (the hybrid kernel degrades to plain top-down levels on graphs where
// pull never pays, so Auto loses nothing by defaulting to it).
func (m TraversalMode) hybrid() bool {
	return m == TraversalHybrid || m == TraversalAuto
}

// frontierMinNodes is the Auto floor for the frontier-parallel engine: below
// it a traversal's levels are too small for the per-level fan-out to pay and
// the per-source kernels win outright.
const frontierMinNodes = 1 << 12

// Frontier reports whether a traversal unit of n nodes carrying k sampled
// sources should run each source on the frontier-parallel engine at the
// given worker count. Forced under TraversalFrontier. Under Auto it fires
// only when source-level parallelism cannot fill the machine — fewer than
// half the workers would have a source to run (sequential sources each
// fanning out over all workers then finish sooner than starved per-source
// rounds) — and the unit is large enough to amortise the per-level fan-out.
// Exact/all-sources work and topk verification call this with k = 1.
// Exported so that topk (and external drivers) apply the same policy as the
// estimators; callers check batched() first — sampled batches keep the
// batched engine.
func (m TraversalMode) Frontier(k, workers, n int) bool {
	switch m {
	case TraversalFrontier:
		return true
	case TraversalAuto:
		return workers > 1 && k > 0 && 2*k <= workers && n >= frontierMinNodes
	default:
		return false
	}
}
