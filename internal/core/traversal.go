package core

import "fmt"

// TraversalMode selects the traversal engine the estimators use for their
// sampled sources.
type TraversalMode int

const (
	// TraversalAuto (default) picks TraversalBatched whenever at least
	// batchMinSources sampled sources share a traversal unit — the whole
	// (reduced) graph for the global estimators, one biconnected block for
	// the cumulative one — and the direction-optimising per-source kernel
	// below that, where batch setup costs outweigh the shared edge scans.
	TraversalAuto TraversalMode = iota
	// TraversalPerSource runs one plain top-down BFS/Dial per sampled
	// source, parallel across sources (the original engine).
	TraversalPerSource
	// TraversalBatched groups sources into ≤64-wide bit-parallel batches
	// that share edge scans (see internal/bfs MultiSource/MultiSourceW)
	// and fans the batches out across the worker pool. Farness output is
	// bit-identical to TraversalPerSource for the same seed.
	TraversalBatched
	// TraversalHybrid forces the direction-optimising (push/pull) per-source
	// BFS kernel for unweighted traversals, never batching. Weighted
	// traversals keep Dial's algorithm — pull sweeps need the unit-weight
	// guarantee. Farness output is bit-identical to the other modes: BFS
	// levels are unique, so push and pull produce the same distances.
	TraversalHybrid
)

// batchMinSources is the Auto threshold: below 8 sources in a traversal
// unit a 64-lane sweep mostly carries empty lanes and the per-source
// engine's simpler inner loop wins.
const batchMinSources = 8

// String names the mode for logs and experiment tables.
func (m TraversalMode) String() string {
	switch m {
	case TraversalPerSource:
		return "per-source"
	case TraversalBatched:
		return "batched"
	case TraversalHybrid:
		return "hybrid"
	default:
		return "auto"
	}
}

// ParseTraversalMode converts a mode name (as produced by String, with a few
// aliases) into a TraversalMode; the empty string is Auto.
func ParseTraversalMode(s string) (TraversalMode, error) {
	switch s {
	case "", "auto":
		return TraversalAuto, nil
	case "per-source", "persource", "sequential":
		return TraversalPerSource, nil
	case "batched", "batch", "msbfs":
		return TraversalBatched, nil
	case "hybrid", "direction-optimizing", "do":
		return TraversalHybrid, nil
	}
	return 0, fmt.Errorf("core: unknown traversal mode %q (want auto, per-source, batched or hybrid)", s)
}

// batched reports whether a traversal unit with k sampled sources should
// use the batched engine under this mode.
func (m TraversalMode) batched(k int) bool {
	switch m {
	case TraversalPerSource, TraversalHybrid:
		return false
	case TraversalBatched:
		return k > 0
	default:
		return k >= batchMinSources
	}
}

// hybrid reports whether per-source unweighted traversals should use the
// direction-optimising kernel under this mode. True for Hybrid (forced) and
// Auto (the hybrid kernel degrades to plain top-down levels on graphs where
// pull never pays, so Auto loses nothing by defaulting to it).
func (m TraversalMode) hybrid() bool {
	return m == TraversalHybrid || m == TraversalAuto
}
