package core

import (
	"context"
	"math/bits"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/bfs"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/queue"
)

// sampleK draws k distinct values from [0, n) uniformly at random using a
// partial Fisher–Yates shuffle. k is clamped to [1, n].
func sampleK(n, k int, rng *rand.Rand) []graph.NodeID {
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		ids[i], ids[j] = ids[j], ids[i]
	}
	return ids[:k]
}

// samplesFor converts a fraction into a source count.
func samplesFor(n int, fraction float64) int {
	k := int(fraction*float64(n) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// RandomSampling is the paper's Algorithm 1: choose k = fraction·n nodes
// uniformly at random, traverse from each, report exact farness for the
// sampled nodes and the (n−1)/k-scaled distance sum for the rest. The
// traversal engine is chosen automatically (see TraversalAuto); use
// RandomSamplingMode to force one.
func RandomSampling(g *graph.Graph, fraction float64, workers int, seed int64) *Result {
	return RandomSamplingMode(g, fraction, workers, seed, TraversalAuto)
}

// RandomSamplingMode is RandomSampling with an explicit traversal engine.
// Farness output is identical across modes for the same seed; only the
// wall-clock differs.
func RandomSamplingMode(g *graph.Graph, fraction float64, workers int, seed int64, mode TraversalMode) *Result {
	res, _ := RandomSamplingModeContext(context.Background(), g, fraction, workers, seed, mode, BatchingAuto)
	return res
}

// RandomSamplingModeContext is RandomSamplingMode with cooperative
// cancellation — traversals stop at the next source (or frontier level) once
// ctx is done and the run returns a nil Result with an ErrCanceled-wrapping
// error — plus an explicit batching mode: under the batched engine the
// sampled source *order* may be rearranged by proximity before batching
// (see BatchingMode), which changes only the wall-clock, never the sample
// set or the farness output.
func RandomSamplingModeContext(ctx context.Context, g *graph.Graph, fraction float64, workers int, seed int64, mode TraversalMode, batching BatchingMode) (*Result, error) {
	return randomSampling(ctx, g, fraction, workers, seed, mode, batching, false, nil)
}

// RandomSamplingAnytimeContext is RandomSamplingModeContext as an anytime
// computation: on ctx cancellation/deadline it returns a Partial result built
// from the completed sources (exact farness for them, clamped extrapolations
// plus proven [Low, High] bounds for the rest) instead of nil + ErrCanceled,
// and publishes periodic snapshots into prog (which may be nil). A run whose
// context never fires produces farness bit-identical to
// RandomSamplingModeContext.
func RandomSamplingAnytimeContext(ctx context.Context, g *graph.Graph, fraction float64, workers int, seed int64, mode TraversalMode, batching BatchingMode, prog *Progress) (*Result, error) {
	return randomSampling(ctx, g, fraction, workers, seed, mode, batching, true, prog)
}

func randomSampling(ctx context.Context, g *graph.Graph, fraction float64, workers int, seed int64, mode TraversalMode, batching BatchingMode, anytime bool, prog *Progress) (*Result, error) {
	n := g.NumNodes()
	res := &Result{
		Farness: make([]float64, n),
		Exact:   make([]bool, n),
	}
	if n <= 1 {
		for i := range res.Exact {
			res.Exact[i] = true
		}
		return res, nil
	}
	if fraction <= 0 {
		fraction = 0.3
	}
	if fraction > 1 {
		fraction = 1
	}
	k := samplesFor(n, fraction)
	rng := rand.New(rand.NewSource(seed))
	samples := sampleK(n, k, rng)
	res.Stats.Samples = k

	start := time.Now()
	workers = par.Workers(workers)
	acc := make([]int64, n)
	exactFar := make([]int64, n)
	done := ctx.Done()
	var any *anyState
	if anytime || prog != nil {
		any = newAnyState(n, k, prog)
	}
	// accumulateAny is the anytime row consumer shared by every engine path:
	// whole-row accumulation under the read lock keeps snapshots consistent.
	accumulateAny := func(src graph.NodeID, dist []int32) {
		any.mu.RLock()
		var own int64
		for w, d := range dist {
			own += int64(d)
			atomic.AddInt64(&acc[w], int64(d))
		}
		atomic.StoreInt64(&exactFar[src], own)
		any.markDone(src, dist)
		any.mu.RUnlock()
		any.advance()
	}
	if any != nil && anytime {
		any.assemble = func() *Result {
			any.mu.Lock()
			accC := append([]int64(nil), acc...)
			exC := append([]int64(nil), exactFar...)
			doneC := append([]bool(nil), any.doneSrc...)
			any.mu.Unlock()
			return assemblePartial(n, k, accC, exC, doneC, any.landmarkRows())
		}
	}
	partialOr := func(err error) (*Result, error) {
		if any != nil && anytime && canceledErr(err) {
			if pr := any.final(); pr != nil {
				pr.Stats.Traverse = time.Since(start)
				return pr, nil
			}
		}
		return nil, err
	}
	if mode.batched(k) && any != nil {
		// Anytime batched path: the mask-granularity engine streams visits
		// mid-sweep, which would leave torn rows in the accumulators on a
		// cancellation. Consume whole rows instead — the same integers reach
		// acc, so a full run stays bit-identical to the mask path; only the
		// wall-clock differs.
		sources := samples
		if batching.clustered(k) {
			pos := graph.Order(g, graph.RelabelBFS, workers).Perm
			ord := clusterOrder(samples, pos)
			sources = make([]graph.NodeID, k)
			for i, j := range ord {
				sources[i] = samples[j]
			}
		}
		err := bfs.RunBatchesCtx(ctx, g, sources, workers, func(_, base int, batch []graph.NodeID, rows [][]int32) {
			for lane, src := range batch {
				accumulateAny(src, rows[lane])
			}
		})
		if err != nil {
			return partialOr(err)
		}
	} else if mode.batched(k) {
		// The batched engine consumes the visit stream at mask granularity:
		// one d·popcount add per (node, arriving lane set) instead of one add
		// per lane. When clustering merges the lane frontiers the common case
		// is a single full-mask visit per node — 64 accumulator updates for
		// the price of one atomic.
		sources := samples
		if batching.clustered(k) {
			pos := graph.Order(g, graph.RelabelBFS, workers).Perm
			ord := clusterOrder(samples, pos)
			sources = make([]graph.NodeID, k)
			for i, j := range ord {
				sources[i] = samples[j]
			}
		}
		// farBySlot[base+lane] is only ever written by the goroutine running
		// that batch's sweep (slots of one batch never span batches), so the
		// per-source sums need no atomics; only the shared acc cells do.
		farBySlot := make([]int64, k)
		err := bfs.RunBatchesMaskCtx(ctx, g, sources, workers, func(_, base int, batch []graph.NodeID, v graph.NodeID, mask uint64, d int32) {
			atomic.AddInt64(&acc[v], int64(d)*int64(bits.OnesCount64(mask)))
			bfs.AccumulateLanes(farBySlot[base:base+len(batch)], mask, int64(d))
		})
		if err != nil {
			return nil, err
		}
		for i, src := range sources {
			exactFar[src] = farBySlot[i]
		}
	} else if mode.Frontier(k, workers, n) {
		// Frontier-parallel engine: sources sequential, each BFS fans its
		// levels out across the workers (see TraversalFrontier). The row
		// accumulation matches the per-source path, so farness is
		// bit-identical.
		fs := bfs.NewFrontierScratch()
		dist := make([]int32, n)
		for _, src := range samples {
			if err := bfs.FrontierDistancesCtx(ctx, g, src, dist, workers, fs); err != nil {
				return partialOr(err)
			}
			if any != nil {
				accumulateAny(src, dist)
				continue
			}
			var own int64
			for w, d := range dist {
				own += int64(d)
				acc[w] += int64(d)
			}
			exactFar[src] = own
		}
	} else {
		accumulateRow := func(src graph.NodeID, dist []int32) {
			if any != nil {
				accumulateAny(src, dist)
				return
			}
			var own int64
			for w, d := range dist {
				own += int64(d)
				atomic.AddInt64(&acc[w], int64(d))
			}
			atomic.StoreInt64(&exactFar[src], own)
		}
		hybrid := mode.hybrid()
		type ws struct {
			dist []int32
			q    *queue.FIFO
			s    *bfs.Scratch
		}
		scratch := make([]ws, workers)
		for i := range scratch {
			w := ws{dist: make([]int32, n)}
			if hybrid {
				w.s = &bfs.Scratch{}
			} else {
				w.q = queue.NewFIFO(n)
			}
			scratch[i] = w
		}
		err := par.ForDynamicCtx(ctx, k, workers, 1, func(worker, i int) {
			s := &scratch[worker]
			src := samples[i]
			if hybrid {
				_ = bfs.HybridDistancesCtx(ctx, g, src, s.dist, s.s)
			} else {
				_ = bfs.DistancesCtx(ctx, g, src, s.dist, s.q)
			}
			if par.Interrupted(done) {
				return // partial row; an anytime run keeps only whole rows
			}
			accumulateRow(src, s.dist)
		})
		if err != nil {
			return partialOr(err)
		}
	}
	res.Stats.Traverse = time.Since(start)

	scale := float64(n-1) / float64(k)
	for _, s := range samples {
		res.Exact[s] = true
	}
	for v := 0; v < n; v++ {
		if res.Exact[v] {
			res.Farness[v] = float64(exactFar[v])
		} else {
			res.Farness[v] = float64(acc[v]) * scale
		}
	}
	return res, nil
}
