package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestEstimateAdaptiveConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomMixed(rng, 80)
	res, err := EstimateAdaptive(g, AdaptiveOptions{
		Base:        Options{Techniques: TechCumulative, Seed: 7},
		TargetError: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) == 0 {
		t.Fatal("no rounds recorded")
	}
	if len(res.Drifts) != len(res.Rounds)-1 {
		t.Fatalf("drifts %d, rounds %d", len(res.Drifts), len(res.Rounds))
	}
	// Fractions must escalate monotonically up to the cap.
	for i := 1; i < len(res.Rounds); i++ {
		if res.Rounds[i] <= res.Rounds[i-1] {
			t.Fatalf("rounds not escalating: %v", res.Rounds)
		}
	}
	// The returned estimate must be decent.
	want := ExactFarness(g, 2)
	var q float64
	for i := range want {
		q += res.Farness[i] / math.Max(want[i], 1)
	}
	q /= float64(len(want))
	if q < 0.85 || q > 1.15 {
		t.Fatalf("adaptive quality = %v", q)
	}
}

func TestEstimateAdaptiveRespectsMaxFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomMixed(rng, 40)
	res, err := EstimateAdaptive(g, AdaptiveOptions{
		Base:            Options{Techniques: TechChains, Seed: 1},
		TargetError:     1e-12, // unreachable: force escalation to the cap
		InitialFraction: 0.1,
		MaxFraction:     0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := res.Rounds[len(res.Rounds)-1]
	if last > 0.3+1e-9 {
		t.Fatalf("fraction exceeded cap: %v", res.Rounds)
	}
}

func TestEstimateAdaptiveDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomMixed(rng, 30)
	if _, err := EstimateAdaptive(g, AdaptiveOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomMixed(rng, 30)
	res, err := Estimate(g, Options{Techniques: TechCumulative, SampleFraction: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q, e, err := VerifyQuality(g, res, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q < 0.7 || q > 1.3 || e < 0 {
		t.Fatalf("quality %v err%% %v", q, e)
	}
	bad := &Result{Farness: []float64{1}}
	if _, _, err := VerifyQuality(g, bad, 1); err == nil {
		t.Fatal("size mismatch should error")
	}
}
