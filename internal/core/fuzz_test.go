package core

import (
	"testing"

	"repro/internal/graph"
)

// FuzzEstimatePipeline: any connected graph decoded from fuzz bytes must
// run the full cumulative pipeline without panicking, with exact-flagged
// values matching the oracle.
func FuzzEstimatePipeline(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 3, 3, 0})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 2, 1, 3, 2, 3, 4, 0, 5, 0})
	f.Add([]byte{0, 1, 1, 2, 2, 0, 2, 3, 3, 4, 4, 5, 5, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 || len(data) > 240 {
			return
		}
		// Decode pairs of bytes as edges over at most 32 nodes.
		b := graph.NewGrowingBuilder()
		for i := 0; i+1 < len(data); i += 2 {
			_ = b.AddEdge(graph.NodeID(data[i]%32), graph.NodeID(data[i+1]%32))
		}
		g := graph.Connect(b.Build())
		if g.NumNodes() < 2 {
			return
		}
		res, err := Estimate(g, Options{
			Techniques:     TechCumulative,
			SampleFraction: 1.0,
			Seed:           1,
		})
		if err != nil {
			t.Fatalf("estimate: %v", err)
		}
		want := ExactFarness(g, 1)
		for v := range want {
			if res.Exact[v] && res.Farness[v] != want[v] {
				t.Fatalf("node %d: exact-flagged %v != oracle %v", v, res.Farness[v], want[v])
			}
			if res.Farness[v] < 0 {
				t.Fatalf("node %d: negative farness %v", v, res.Farness[v])
			}
		}
	})
}
