package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/reduce"
)

func TestRegressionSeedDiagnostics(t *testing.T) {
	seed := int64(3371262653333254495)
	rng := rand.New(rand.NewSource(seed))
	g := randomMixed(rng, 15)
	n := g.NumNodes()
	want := ExactFarness(g, 1)
	red, _ := reduce.Run(g, reduce.Options{Twins: true, Chains: true, Redundant: true})
	res, err := Estimate(g, Options{Techniques: TechCumulative, SampleFraction: 1.0, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fallbacks=%d", res.Stats.FallbackAssignments)
	for v := 0; v < n; v++ {
		flag := ""
		if res.Exact[v] && res.Farness[v] != want[v] {
			flag = " <-- BADEXACT"
		}
		if math.Abs(res.Farness[v]-want[v])/math.Max(want[v], 1) > 0.5 {
			flag += " <-- FAR"
		}
		if flag != "" {
			t.Logf("node %2d (%-22s): got=%6.1f want=%6.1f exact=%v%s",
				v, nodeKind(red, int32(v)), res.Farness[v], want[v], res.Exact[v], flag)
		}
	}
	for i, e := range red.Events {
		t.Logf("event [%d] %T removed=%v anchors=%v", i, e, e.Removed(), e.Anchors())
	}
	var edges [][2]int32
	g.Edges(func(u, v int32) { edges = append(edges, [2]int32{u, v}) })
	t.Logf("n=%d edges=%v", n, edges)
}

func nodeKind(red *reduce.Reduction, v int32) string {
	if red.ToNew[v] >= 0 {
		return "kept"
	}
	for _, e := range red.Events {
		for _, r := range e.Removed() {
			if r == v {
				switch ev := e.(type) {
				case *reduce.TwinEvent:
					return "twin"
				case *reduce.ChainEvent:
					return "chain:" + ev.Kind.String()
				case *reduce.RedundantEvent:
					return "redundant"
				}
			}
		}
	}
	return "unknown"
}
