package core

import (
	"fmt"
	"testing"

	"repro/internal/graph"
)

// These tests pin the clustered-batching contract: Options.Batching permutes
// only the order sampled sources enter the 64-wide bit-parallel batches —
// never the sample set — so for every generator family, technique mix,
// relabel ordering and worker count, every batching mode is bit-for-bit the
// per-source engine's output.

func TestParseBatchingMode(t *testing.T) {
	cases := []struct {
		in   string
		want BatchingMode
	}{
		{"", BatchingAuto},
		{"auto", BatchingAuto},
		{"arbitrary", BatchingArbitrary},
		{"arb", BatchingArbitrary},
		{"sample-order", BatchingArbitrary},
		{"clustered", BatchingClustered},
		{"cluster", BatchingClustered},
		{"proximity", BatchingClustered},
	}
	for _, c := range cases {
		got, err := ParseBatchingMode(c.in)
		if err != nil {
			t.Fatalf("ParseBatchingMode(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseBatchingMode(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := ParseBatchingMode("bogus"); err == nil {
		t.Fatal("ParseBatchingMode accepted a bogus mode")
	}
	for _, m := range []BatchingMode{BatchingAuto, BatchingArbitrary, BatchingClustered} {
		back, err := ParseBatchingMode(m.String())
		if err != nil || back != m {
			t.Fatalf("String round-trip broke for %v: got %v, err %v", m, back, err)
		}
	}
}

// TestEstimateBatchingBitIdentical is the acceptance property of the
// clustered-batching tentpole: the batched engine under every batching mode
// equals the per-source engine, across the four families, the global and
// cumulative estimators, relabeled and canonical layouts, and multiple
// worker counts.
func TestEstimateBatchingBitIdentical(t *testing.T) {
	techs := []struct {
		name string
		t    Technique
	}{
		{"ICR", TechICR},
		{"cumulative", TechCumulative},
	}
	batchings := []BatchingMode{BatchingArbitrary, BatchingClustered}
	relabels := []graph.RelabelMode{graph.RelabelNone, graph.RelabelBFS}
	for _, fam := range relabelFamilies() {
		g := graph.Connect(fam.gen(3000, 42))
		for _, tech := range techs {
			base, err := Estimate(g, Options{
				Techniques:     tech.t,
				SampleFraction: 0.2,
				Seed:           7,
				Workers:        1,
				Traversal:      TraversalPerSource,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", fam.name, tech.name, err)
			}
			for _, bm := range batchings {
				for _, rel := range relabels {
					for _, w := range []int{1, 4} {
						got, err := Estimate(g, Options{
							Techniques:     tech.t,
							SampleFraction: 0.2,
							Seed:           7,
							Workers:        w,
							Traversal:      TraversalBatched,
							Batching:       bm,
							Relabel:        rel,
						})
						if err != nil {
							t.Fatalf("%s/%s/%s/%s workers=%d: %v", fam.name, tech.name, bm, rel, w, err)
						}
						label := fmt.Sprintf("%s/%s/batching=%s/relabel=%s workers=%d", fam.name, tech.name, bm, rel, w)
						assertSameResult(t, label, base, got)
					}
				}
			}
		}
	}
}

// TestRandomSamplingBatchingBitIdentical covers the unreduced baseline path:
// the mask-granularity batched accumulator under both batching modes equals
// the per-source row accumulator, at several worker counts.
func TestRandomSamplingBatchingBitIdentical(t *testing.T) {
	for _, fam := range relabelFamilies() {
		g := graph.Connect(fam.gen(2500, 11))
		base := RandomSamplingMode(g, 0.3, 1, 5, TraversalPerSource)
		for _, bm := range []BatchingMode{BatchingAuto, BatchingArbitrary, BatchingClustered} {
			for _, w := range relabelWorkerSweep() {
				got, err := RandomSamplingModeContext(t.Context(), g, 0.3, w, 5, TraversalBatched, bm)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", fam.name, bm, w, err)
				}
				label := fmt.Sprintf("%s/batching=%s workers=%d", fam.name, bm, w)
				assertSameResult(t, label, base, got)
			}
		}
	}
}
