package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
)

func estCancelGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"community": gen.Community(1200, 11),
		"road":      gen.Road(900, 5),
	}
}

func TestEstimateContextMatchesEstimate(t *testing.T) {
	for name, g := range estCancelGraphs(t) {
		for _, tech := range []Technique{TechCumulative, TechICR, 0} {
			opts := Options{Techniques: tech, SampleFraction: 0.25, Seed: 42, Workers: 3}
			want, err := Estimate(g, opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, tech, err)
			}
			got, err := EstimateContext(context.Background(), g, opts)
			if err != nil {
				t.Fatalf("%s/%s ctx: %v", name, tech, err)
			}
			for i := range want.Farness {
				if want.Farness[i] != got.Farness[i] {
					t.Fatalf("%s/%s: farness[%d] %v vs %v", name, tech, i, want.Farness[i], got.Farness[i])
				}
			}
		}
	}
}

func TestEstimateContextPreCanceled(t *testing.T) {
	g := gen.Community(300, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := EstimateContext(ctx, g, Options{Techniques: TechCumulative, Seed: 1})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled wrapped, got %v", err)
	}
	if res != nil {
		t.Fatal("canceled run must not return a Result")
	}
}

func TestEstimateContextDeadline(t *testing.T) {
	g := gen.Community(300, 2)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := EstimateContext(ctx, g, Options{Techniques: TechCumulative, Seed: 1})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded wrapped, got %v", err)
	}
}

// TestEstimateContextAbandonsSlowStage is the acceptance-criteria latency
// test: a fault-injected 5s stage must be abandoned within 100ms of the
// context being canceled. The hook signals when the run has entered the slow
// stage, the test cancels, and the clock runs from the cancellation to
// EstimateContext's return.
func TestEstimateContextAbandonsSlowStage(t *testing.T) {
	g := gen.Community(1200, 11)
	for _, point := range []string{"core.traverse", "reduce.chains"} {
		entered := make(chan struct{})
		restore := fault.Set(point, func(ctx context.Context) error {
			close(entered)
			return fault.Sleep(ctx, 5*time.Second)
		})
		ctx, cancel := context.WithCancel(context.Background())
		type out struct {
			res *Result
			err error
			at  time.Time
		}
		doneCh := make(chan out, 1)
		go func() {
			res, err := EstimateContext(ctx, g, Options{Techniques: TechCumulative, SampleFraction: 0.2, Seed: 7})
			doneCh <- out{res, err, time.Now()}
		}()
		<-entered
		canceledAt := time.Now()
		cancel()
		o := <-doneCh
		restore()
		if !errors.Is(o.err, ErrCanceled) {
			t.Fatalf("%s: want ErrCanceled, got %v", point, o.err)
		}
		if o.res != nil {
			t.Fatalf("%s: canceled run must not return a Result", point)
		}
		if latency := o.at.Sub(canceledAt); latency > 100*time.Millisecond {
			t.Fatalf("%s: run abandoned %v after cancellation (want ≤100ms)", point, latency)
		}
	}
}

func TestEstimateContextCanceledDuringTraversal(t *testing.T) {
	// Cancel while traversals are in flight (not just at a checkpoint): the
	// fan-out must stop claiming sources and return ErrCanceled.
	g := gen.Community(1500, 3)
	for _, tr := range []TraversalMode{TraversalPerSource, TraversalBatched} {
		ctx, cancel := context.WithCancel(context.Background())
		restore := fault.Set("core.traverse", func(context.Context) error {
			// Fires right before the fan-out; cancel now so the workers see
			// a done context while claiming tasks.
			cancel()
			return nil
		})
		_, err := EstimateContext(ctx, g, Options{Techniques: TechCumulative, SampleFraction: 0.3, Seed: 9, Traversal: tr})
		restore()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("traversal=%v: want ErrCanceled, got %v", tr, err)
		}
	}
}

func TestRandomSamplingModeContextCanceled(t *testing.T) {
	g := gen.Community(800, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RandomSamplingModeContext(ctx, g, 0.3, 2, 1, TraversalPerSource, BatchingAuto)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if res != nil {
		t.Fatal("canceled run must not return a Result")
	}
}

func TestEstimateAdaptiveContextCanceled(t *testing.T) {
	g := gen.Community(600, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EstimateAdaptiveContext(ctx, g, AdaptiveOptions{Base: Options{Techniques: TechCumulative}})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}
