package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// These tests pin the sampling primitives the whole estimator stack rests
// on: sampleK must return exactly k distinct in-range ids (clamped), every
// element must be equally likely (the partial Fisher–Yates must not skew),
// and samplesFor must round the fraction to the nearest count with the
// documented clamps. Clustered batching reorders sampleK's output, so any
// bias or duplication here would silently corrupt every estimator.

func TestSampleKExactlyKDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, k, want int }{
		{10, 3, 3},
		{10, 10, 10},
		{10, 15, 10}, // k > n clamps to n
		{10, 0, 1},   // k < 1 clamps to 1
		{10, -5, 1},
		{1, 1, 1},
		{1000, 999, 999},
	} {
		got := sampleK(tc.n, tc.k, rng)
		if len(got) != tc.want {
			t.Fatalf("sampleK(%d, %d): len = %d, want %d", tc.n, tc.k, len(got), tc.want)
		}
		seen := make(map[graph.NodeID]bool, len(got))
		for _, v := range got {
			if v < 0 || int(v) >= tc.n {
				t.Fatalf("sampleK(%d, %d): out-of-range id %d", tc.n, tc.k, v)
			}
			if seen[v] {
				t.Fatalf("sampleK(%d, %d): duplicate id %d", tc.n, tc.k, v)
			}
			seen[v] = true
		}
	}
}

// TestSampleKUnbiased is a frequency test over many seeds: drawing k of n
// repeatedly, every element must be chosen with probability k/n. The
// tolerance is six standard deviations of the Binomial(T, k/n) count, so a
// correct implementation fails with probability ≈ 2e-9 per cell while an
// off-by-one in the Fisher–Yates range (rng.Intn(n-i) vs rng.Intn(n-i)+i)
// lands tens of deviations out.
func TestSampleKUnbiased(t *testing.T) {
	const n, k, trials = 20, 5, 20000
	counts := make([]int, n)
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, v := range sampleK(n, k, rng) {
			counts[v]++
		}
	}
	p := float64(k) / float64(n)
	mean := trials * p
	sigma := math.Sqrt(trials * p * (1 - p))
	for v, c := range counts {
		if math.Abs(float64(c)-mean) > 6*sigma {
			t.Fatalf("element %d drawn %d times, want %.0f ± %.0f (6σ): sampler is biased", v, c, mean, 6*sigma)
		}
	}
}

// TestSampleKFirstPositionUniform guards the per-position distribution too:
// the first drawn element alone must be uniform over [0, n). A sampler that
// is set-unbiased but position-biased would still skew batched traversal
// order statistics.
func TestSampleKFirstPositionUniform(t *testing.T) {
	const n, trials = 16, 16000
	counts := make([]int, n)
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		counts[sampleK(n, 4, rng)[0]]++
	}
	p := 1.0 / float64(n)
	mean := trials * p
	sigma := math.Sqrt(trials * p * (1 - p))
	for v, c := range counts {
		if math.Abs(float64(c)-mean) > 6*sigma {
			t.Fatalf("first position drew %d %d times, want %.0f ± %.0f (6σ)", v, c, mean, 6*sigma)
		}
	}
}

func TestSamplesForRounding(t *testing.T) {
	for _, tc := range []struct {
		n    int
		f    float64
		want int
	}{
		{10, 0.25, 3},  // 2.5 rounds up
		{10, 0.24, 2},  // 2.4 rounds down
		{10, 1.0, 10},  // full population
		{10, 0.001, 1}, // floor clamp: at least one source
		{1, 1.0, 1},
		{3, 0.5, 2},      // 1.5 rounds up
		{1000, 0.2, 200}, // exact
		{7, 0.9999, 7},   // 6.9993+0.5 = 7.4993 truncates to 7, ceiling clamp holds
	} {
		if got := samplesFor(tc.n, tc.f); got != tc.want {
			t.Fatalf("samplesFor(%d, %g) = %d, want %d", tc.n, tc.f, got, tc.want)
		}
	}
	// The ceiling clamp: rounding can never exceed n.
	for n := 1; n <= 50; n++ {
		if got := samplesFor(n, 1.0); got != n {
			t.Fatalf("samplesFor(%d, 1.0) = %d, want %d", n, got, n)
		}
	}
}
