package core

import "sort"

// landmarkSums implements the single-landmark midpoint heuristic: with only
// one traversal source s available, the distance between two unsampled
// nodes x, y is bracketed by the triangle inequality,
// |d(s,x)−d(s,y)| ≤ d(x,y) ≤ d(s,x)+d(s,y), whose midpoint is
// max(d(s,x), d(s,y)). For each index i it returns
//
//	Σ_{j≠i} max(ds[i], ds[j])
//
// in O(n log n) via sorting and suffix sums. This replaces the
// scale-by-average extrapolation when a block (or the whole reduced graph)
// ends up with a single usable sample, where averages have nothing to
// calibrate against. The midpoint is exact on stars (the landmark on every
// path) and errs toward over- rather than underestimation on well-connected
// graphs — the safer direction for farness.
func landmarkSums(ds []int64) []float64 {
	n := len(ds)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	sorted := append([]int64(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// suffix[i] = Σ_{j >= i} sorted[j]
	suffix := make([]int64, n+1)
	for i := n - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + sorted[i]
	}
	for i, dx := range ds {
		// #values <= dx (including dx itself at least once).
		le := sort.Search(n, func(k int) bool { return sorted[k] > dx })
		out[i] = float64(dx)*float64(le-1) + float64(suffix[le])
	}
	return out
}
