package core

import (
	"errors"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Progress tracks a running estimation's sampling progress and, when the run
// is anytime (Options.Anytime), holds the most recently published partial
// snapshot. A Progress may be polled concurrently with the run it observes;
// all methods are safe for concurrent use. The zero value is ready to use.
type Progress struct {
	planned   atomic.Int64
	completed atomic.Int64
	snap      atomic.Pointer[Result]

	// OnAdvance, when non-nil, is called after every completed source with
	// the new completed count and the planned total. It must be set before
	// the run starts and must be fast and non-blocking; it runs on worker
	// goroutines. Tests use it to cancel a run at an exact progress point.
	OnAdvance func(completed, planned int64)
}

// Planned reports the total number of traversal sources the run intends to
// complete (0 until sampling has been decided).
func (p *Progress) Planned() int64 { return p.planned.Load() }

// Completed reports how many sources have been fully accumulated so far.
func (p *Progress) Completed() int64 { return p.completed.Load() }

// Fraction reports Completed/Planned in [0,1]; 0 while Planned is unknown.
func (p *Progress) Fraction() float64 {
	pl := p.planned.Load()
	if pl <= 0 {
		return 0
	}
	f := float64(p.completed.Load()) / float64(pl)
	if f > 1 {
		f = 1
	}
	return f
}

// Snapshot returns the most recently published partial result, or nil if the
// run has not published one yet (too early, or the run is not anytime).
// The returned Result is immutable — the run never mutates a published
// snapshot — so callers may serve it directly.
func (p *Progress) Snapshot() *Result { return p.snap.Load() }

// anyState is the bookkeeping an anytime run threads through its traversal
// fan-out. Consistency contract: workers hold mu.RLock for the whole
// accumulation of one source's row (so shared accumulators only ever move
// between snapshots by whole sources), and the snapshot assembler holds
// mu.Lock while copying them. After the fan-out has returned (ForDynamicCtx
// and the batch drivers join their workers before returning an error), the
// accumulators are quiescent and assembly needs no lock at all — but takes
// it anyway for simplicity.
type anyState struct {
	mu      sync.RWMutex
	n       int
	planned int64
	prog    *Progress // may be nil: anytime without an observer

	completed atomic.Int64
	lastPub   atomic.Int64

	// doneSrc[original id] = this source's row has been fully accumulated.
	// Written under mu.RLock; indices are distinct per source.
	doneSrc []bool

	// Up to maxLandmarks full extended distance rows (original ids) captured
	// from the first completed sources; immutable once appended.
	lmMu      sync.Mutex
	landmarks [][]int32

	// assemble builds a partial Result from the current accumulators (it
	// takes mu.Lock itself). Set by the driver once its accumulators exist;
	// nil disables snapshot publication.
	assemble func() *Result
}

const maxLandmarks = 4

func newAnyState(n int, planned int, prog *Progress) *anyState {
	a := &anyState{n: n, planned: int64(planned), prog: prog, doneSrc: make([]bool, n)}
	if prog != nil {
		prog.planned.Store(int64(planned))
	}
	return a
}

// markDone records a completed source and captures its extended distance row
// as a landmark while slots remain. Must be called under mu.RLock, with row
// holding original-id distances (len n).
func (a *anyState) markDone(srcOrig graph.NodeID, row []int32) {
	a.doneSrc[srcOrig] = true
	if len(row) != a.n {
		return
	}
	a.lmMu.Lock()
	if len(a.landmarks) < maxLandmarks {
		a.landmarks = append(a.landmarks, append([]int32(nil), row...))
	}
	a.lmMu.Unlock()
}

// advance bumps the completed counter, notifies the observer, and publishes
// a fresh snapshot when one is due. Must be called after mu.RUnlock.
func (a *anyState) advance() {
	c := a.completed.Add(1)
	if a.prog != nil {
		a.prog.completed.Store(c)
		if f := a.prog.OnAdvance; f != nil {
			f(c, a.planned)
		}
	}
	if a.prog == nil || a.assemble == nil || !a.publishDue(c) {
		return
	}
	// Elect a single publisher per due point; losing the CAS means a more
	// recent snapshot is already on its way.
	last := a.lastPub.Load()
	if c <= last || !a.lastPub.CompareAndSwap(last, c) {
		return
	}
	if res := a.assemble(); res != nil {
		a.prog.snap.Store(res)
	}
}

// publishDue spaces snapshots: every power of two early on (so a soft
// deadline landing moments into the run still finds something), then every
// planned/8 completions.
func (a *anyState) publishDue(c int64) bool {
	if c&(c-1) == 0 {
		return true
	}
	interval := a.planned / 8
	if interval < 1 {
		interval = 1
	}
	return c%interval == 0
}

// final assembles the end-of-run partial result after a canceled fan-out has
// quiesced; nil when nothing completed.
func (a *anyState) final() *Result {
	if a.assemble == nil {
		return nil
	}
	return a.assemble()
}

// landmarkRows returns the captured rows (the slice header is copied; the
// rows themselves are immutable).
func (a *anyState) landmarkRows() [][]int32 {
	a.lmMu.Lock()
	defer a.lmMu.Unlock()
	return append([][]int32(nil), a.landmarks...)
}

// partialBounds computes proven per-vertex farness bounds from completed
// sample rows plus landmark triangle inequalities. For a vertex v whose own
// traversal did not complete,
//
//	farness(v) = Σ_{s done} d(v,s) + Σ_{w not done, w≠v} d(v,w)
//
// where the first term is exactly acc[v] (the run accumulated d(s,·) row by
// whole rows). Each unknown term is bracketed through any completed landmark
// row ℓ by the triangle inequality over the original graph:
//
//	max(1, |dℓ(v) − dℓ(w)|)  ≤  d(v,w)  ≤  dℓ(v) + dℓ(w)
//
// (distinct vertices of a connected unweighted graph are at distance ≥ 1).
// Summed over the not-done population U with sorting + prefix sums this is
// O(n log n) per landmark; the bound takes the max (lower) / min (upper)
// over all captured landmarks. For done vertices Low = High = exact farness.
// Degenerate calls (no landmarks) return (nil, nil).
func partialBounds(n int, acc, exactFar []int64, done []bool, landmarks [][]int32) (low, high []float64) {
	if len(landmarks) == 0 {
		return nil, nil
	}
	low = make([]float64, n)
	high = make([]float64, n)
	for v := 0; v < n; v++ {
		if done[v] {
			f := float64(exactFar[v])
			low[v], high[v] = f, f
		} else {
			low[v] = math.Inf(-1)
			high[v] = math.Inf(1)
		}
	}
	// The not-done population, shared by every landmark pass.
	u := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if !done[v] {
			u = append(u, v)
		}
	}
	if len(u) == 0 {
		return low, high
	}
	vals := make([]int64, len(u))
	prefix := make([]int64, len(u)+1)
	for _, lmRow := range landmarks {
		for i, v := range u {
			vals[i] = int64(lmRow[v])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for i, x := range vals {
			prefix[i+1] = prefix[i] + x
		}
		sumU := prefix[len(u)]
		m := int64(len(u))
		for _, v := range u {
			x := int64(lmRow[v])
			// cLE values ≤ x with sum sumLE; cLT values < x.
			cLE := sort.Search(len(u), func(k int) bool { return vals[k] > x })
			cLT := sort.Search(len(u), func(k int) bool { return vals[k] >= x })
			sumLE := prefix[cLE]
			// T = Σ_{w∈U} |x − dℓ(w)|  (v's own term is 0).
			t := x*int64(cLE) - sumLE + (sumU - sumLE) - x*(m-int64(cLE))
			ties := int64(cLE - cLT) // values == x, including v itself
			lowC := t + ties - 1     // each zero-gap pair still has d ≥ 1
			highC := (m-1)*x + (sumU - x)
			lo := float64(acc[v] + lowC)
			hi := float64(acc[v] + highC)
			if lo > low[v] {
				low[v] = lo
			}
			if hi < high[v] {
				high[v] = hi
			}
		}
	}
	return low, high
}

// assemblePartial builds the partial Result of an interrupted sampling run:
// exact farness for every source whose row completed, the (n−1)/k′-scaled
// extrapolation clamped into the proven bounds for the rest. Returns nil
// when nothing usable completed.
func assemblePartial(n int, planned int, acc, exactFar []int64, done []bool, landmarks [][]int32) *Result {
	k := 0
	for _, d := range done {
		if d {
			k++
		}
	}
	if k == 0 || len(landmarks) == 0 {
		return nil
	}
	low, high := partialBounds(n, acc, exactFar, done, landmarks)
	res := &Result{
		Farness:   make([]float64, n),
		Exact:     append([]bool(nil), done...),
		Low:       low,
		High:      high,
		Partial:   true,
		Completed: k,
		Planned:   planned,
	}
	scale := float64(n-1) / float64(k)
	for v := 0; v < n; v++ {
		if done[v] {
			res.Farness[v] = float64(exactFar[v])
			continue
		}
		est := float64(acc[v]) * scale
		if est < low[v] {
			est = low[v]
		}
		if est > high[v] {
			est = high[v]
		}
		res.Farness[v] = est
	}
	res.Stats.Samples = k
	return res
}

// finishPartial re-establishes the partial invariants after exact
// propagation may have rewritten values: exact vertices collapse their
// bounds, estimated vertices are clamped back inside theirs.
func (r *Result) finishPartial() {
	if !r.Partial || r.Low == nil {
		return
	}
	for v := range r.Farness {
		if r.Exact[v] {
			r.Low[v], r.High[v] = r.Farness[v], r.Farness[v]
			continue
		}
		if r.Farness[v] < r.Low[v] {
			r.Farness[v] = r.Low[v]
		}
		if r.Farness[v] > r.High[v] {
			r.Farness[v] = r.High[v]
		}
	}
}

// canceledErr reports whether err came from context cancellation or deadline
// expiry (the only errors an anytime run degrades into a partial result).
func canceledErr(err error) bool {
	return err != nil && errors.Is(err, ErrCanceled)
}
