package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/stats"
)

// AdaptiveOptions configures EstimateAdaptive.
type AdaptiveOptions struct {
	// Base configures each estimation round; its SampleFraction is
	// ignored (the adaptive loop chooses fractions itself).
	Base Options
	// TargetError is the desired mean relative deviation between
	// consecutive rounds' estimates; the loop stops once the observed
	// inter-round drift falls below it. Default 0.01 (1%).
	TargetError float64
	// InitialFraction seeds the first round; default 0.05.
	InitialFraction float64
	// MaxFraction caps the escalation; default 0.5.
	MaxFraction float64
	// GrowthFactor multiplies the fraction between rounds; default 2.
	GrowthFactor float64
}

// AdaptiveResult extends Result with the escalation trace.
type AdaptiveResult struct {
	Result
	// Rounds lists the sampling fraction used in each round.
	Rounds []float64
	// Drifts lists the mean relative change between consecutive rounds
	// (len = len(Rounds)−1).
	Drifts []float64
}

// EstimateAdaptive runs the BRICS estimator with an escalating sampling
// fraction until the estimates stabilise — the practical answer to "which
// sampling rate does my graph need?" that the paper resolves empirically
// (20 % for the cumulative method, Fig. 4(b)). The stopping rule uses the
// inter-round drift of the estimates as a proxy for their error, in the
// spirit of Cohen et al.'s adaptive error estimation: when doubling the
// sample leaves the values (mean relative change) within TargetError, the
// current round is returned.
func EstimateAdaptive(g *graph.Graph, opts AdaptiveOptions) (*AdaptiveResult, error) {
	return EstimateAdaptiveContext(context.Background(), g, opts)
}

// EstimateAdaptiveContext is EstimateAdaptive with cooperative cancellation:
// ctx is threaded into every round's EstimateContext, so a cancellation
// aborts the current round at its next checkpoint and the loop returns the
// ErrCanceled-wrapping error.
func EstimateAdaptiveContext(ctx context.Context, g *graph.Graph, opts AdaptiveOptions) (*AdaptiveResult, error) {
	if opts.TargetError <= 0 {
		opts.TargetError = 0.01
	}
	if opts.InitialFraction <= 0 {
		opts.InitialFraction = 0.05
	}
	if opts.MaxFraction <= 0 || opts.MaxFraction > 1 {
		opts.MaxFraction = 0.5
	}
	if opts.GrowthFactor <= 1 {
		opts.GrowthFactor = 2
	}
	var prev *Result
	out := &AdaptiveResult{}
	fraction := opts.InitialFraction
	for round := 0; ; round++ {
		o := opts.Base
		o.SampleFraction = fraction
		o.Seed = opts.Base.Seed + int64(round) // decorrelate rounds
		res, err := EstimateContext(ctx, g, o)
		if err != nil {
			// Anytime degradation: a canceled round falls back to the last
			// completed round's full result, re-marked Partial — it is a
			// genuine estimate, just not the escalation's converged answer.
			// (The interrupted round itself degrades via res.Partial below.)
			if o.Anytime && prev != nil && canceledErr(err) {
				out.Result = *prev
				out.Result.Partial = true
				out.Result.Completed = prev.Stats.Samples
				out.Result.Planned = prev.Stats.Samples
				return out, nil
			}
			return nil, err
		}
		if res.Partial {
			// The round itself degraded into a partial result; surface it
			// with its bounds rather than escalating further.
			out.Rounds = append(out.Rounds, fraction)
			out.Result = *res
			return out, nil
		}
		out.Rounds = append(out.Rounds, fraction)
		if prev != nil {
			drift := meanRelDiff(prev.Farness, res.Farness)
			out.Drifts = append(out.Drifts, drift)
			if drift <= opts.TargetError || fraction >= opts.MaxFraction {
				out.Result = *res
				return out, nil
			}
		} else if fraction >= opts.MaxFraction {
			out.Result = *res
			return out, nil
		}
		prev = res
		fraction = math.Min(fraction*opts.GrowthFactor, opts.MaxFraction)
	}
}

func meanRelDiff(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range a {
		denom := math.Max(math.Abs(b[i]), 1)
		s += math.Abs(a[i]-b[i]) / denom
	}
	return s / float64(len(a))
}

// VerifyQuality is a convenience for tests and tooling: it computes the
// paper's Quality and average-error metrics of an estimate against the
// exact oracle (which it computes — expensive).
func VerifyQuality(g *graph.Graph, res *Result, workers int) (quality, avgErrPct float64, err error) {
	if len(res.Farness) != g.NumNodes() {
		return 0, 0, fmt.Errorf("core: result size %d != graph %d", len(res.Farness), g.NumNodes())
	}
	actual := ExactFarness(g, workers)
	return stats.Quality(res.Farness, actual), stats.AvgErrorPercent(res.Farness, actual), nil
}
