package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/bct"
	"repro/internal/bfs"
	"repro/internal/bicc"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/queue"
	"repro/internal/reduce"
)

// estimateCumulative is the full BRICS pipeline (the paper's Algorithm 5):
// decompose the reduced graph into biconnected components, sample inside
// each block with every cut vertex always sampled, traverse blocks
// independently, aggregate cross-block contributions over the block
// cut-vertex tree (Algorithm 6), and assemble per-node farness.
// Cancellation checkpoints sit before the decomposition ("core.decompose"),
// before the pass-1 fan-out ("core.traverse", with per-task and in-kernel
// checks inside it), and before the tree aggregation + pass 2
// ("core.aggregate"); a non-nil error discards all partial accumulation.
func estimateCumulative(ctx context.Context, red *reduce.Reduction, opts *Options) (*Result, error) {
	n := red.Orig.NumNodes()
	nR := red.G.NumNodes()
	if nR <= 2 {
		return estimateGlobal(ctx, red, opts)
	}

	if err := fault.Checkpoint(ctx, "core.decompose"); err != nil {
		return nil, err
	}
	prepStart := time.Now()
	d, biccT := bicc.DecomposeTimed(red.G, bicc.AlgoAuto, opts.Workers)
	if d.NumBlocks() <= 1 {
		// A single biconnected block degenerates to the global estimator.
		res, err := estimateGlobal(ctx, red, opts)
		if err == nil {
			res.Stats.Blocks = d.Summarize()
			res.Stats.BiCC = biccT
		}
		return res, err
	}
	tree := bct.NewTree(d, largestBlock(d))
	if err := tree.Validate(); err != nil {
		return nil, err
	}

	nb := d.NumBlocks()

	// Home block of every kept (reduced) node.
	homeOf := make([]int32, nR)
	for v := 0; v < nR; v++ {
		if ci := tree.CutIndex[v]; ci >= 0 {
			homeOf[v] = tree.HomeBlock[ci]
		} else {
			homeOf[v] = d.BlocksOf[v][0]
		}
	}

	// Assign every removal event to the block its anchors live in.
	evOf := make([]int32, n)
	for i := range evOf {
		evOf[i] = -1
	}
	for i, e := range red.Events {
		for _, r := range e.Removed() {
			evOf[r] = int32(i)
		}
	}
	eventBlock := make([]int32, len(red.Events))
	fallbacks := 0
	anchorBlock := func(orig graph.NodeID) int32 {
		// Location of an anchor: its home block when kept, otherwise the
		// block of the (later) event that removed it — already assigned
		// because events are visited in reverse order.
		if rid := red.ToNew[orig]; rid >= 0 {
			return homeOf[rid]
		}
		return eventBlock[evOf[orig]]
	}
	inBlock := func(b int32, orig graph.NodeID) bool {
		if rid := red.ToNew[orig]; rid >= 0 {
			for _, bb := range d.BlocksOf[rid] {
				if bb == b {
					return true
				}
			}
			return false
		}
		return eventBlock[evOf[orig]] == b
	}
	for i := len(red.Events) - 1; i >= 0; i-- {
		var b int32 = -1
		switch e := red.Events[i].(type) {
		case *reduce.TwinEvent:
			b = anchorBlock(e.Rep)
		case *reduce.ChainEvent:
			if e.V >= 0 && e.V != e.U {
				ur, vr := red.ToNew[e.U], red.ToNew[e.V]
				switch {
				case ur >= 0 && vr >= 0:
					b = d.CommonBlock(ur, vr)
				case ur < 0:
					b = eventBlock[evOf[e.U]]
				default:
					b = eventBlock[evOf[e.V]]
				}
				// Both anchors must be reachable in the assigned block.
				if b >= 0 && (!inBlock(b, e.U) || !inBlock(b, e.V)) {
					b = -1
				}
			} else {
				b = anchorBlock(e.U)
			}
		case *reduce.RedundantEvent:
			// All neighbours of a redundant node share a block. A
			// neighbour removed by a *later* iterative round resolves to
			// that event's block (already assigned in this reverse scan).
			var cand []int32
			for _, x := range e.Nbrs {
				var blocks []int32
				if rid := red.ToNew[x]; rid >= 0 {
					blocks = d.BlocksOf[rid]
				} else {
					blocks = []int32{eventBlock[evOf[x]]}
				}
				if cand == nil {
					cand = append(cand, blocks...)
				} else {
					cand = intersectBlocks(cand, blocks)
				}
			}
			if len(cand) > 0 {
				b = cand[0]
			}
		}
		if b < 0 {
			// Should not happen (see DESIGN.md); keep the run alive with
			// the first anchor's block and count the imprecision.
			fallbacks++
			b = anchorBlock(red.Events[i].Anchors()[0])
		}
		eventBlock[i] = b
	}

	// Per-block event lists (ascending; replayed descending = reverse
	// removal order) and populations.
	blockEvents := make([][]int32, nb)
	pop := make([]int64, nb)
	for i := range red.Events {
		b := eventBlock[i]
		blockEvents[b] = append(blockEvents[b], int32(i))
		pop[b] += int64(len(red.Events[i].Removed()))
	}
	for v := 0; v < nR; v++ {
		pop[homeOf[v]]++
	}

	// Sampling: cut vertices always, plus a per-block share of the global
	// budget drawn uniformly among non-cut members (Algorithm 5, lines
	// 7–10).
	kTotal := samplesFor(nR, opts.fraction())
	blockSamples := make([][]graph.NodeID, nb) // reduced ids
	numRand := make([]int, nb)
	numAssignedSamples := make([]int, nb)
	totalSamples := 0
	for b := 0; b < nb; b++ {
		members := d.BlockNodes[b]
		var cuts, nonCut []graph.NodeID
		for _, v := range members {
			if tree.CutIndex[v] >= 0 {
				cuts = append(cuts, v)
			} else {
				nonCut = append(nonCut, v)
			}
		}
		kb := (kTotal*len(members) + nR - 1) / nR
		kb -= len(cuts)
		if kb < 0 {
			kb = 0
		}
		if kb > len(nonCut) {
			kb = len(nonCut)
		}
		samples := append([]graph.NodeID(nil), cuts...)
		if kb > 0 {
			rng := rand.New(rand.NewSource(opts.Seed + int64(b)*7919))
			idx := sampleK(len(nonCut), kb, rng)
			for _, j := range idx {
				samples = append(samples, nonCut[j])
			}
		}
		blockSamples[b] = samples
		numRand[b] = len(samples) - len(cuts)
		numAssignedSamples[b] = numRand[b]
		for _, c := range cuts {
			if homeOf[c] == int32(b) {
				numAssignedSamples[b]++
			}
		}
		totalSamples += len(samples)
	}

	// Anytime bookkeeping. "Planned" counts traversal units — a cut vertex
	// once per block it belongs to — matching totalSamples. A partial
	// cumulative result additionally requires every cut traversal to have
	// completed (the tree aggregation has no per-source fallback), which the
	// cuts-first task ordering below makes the common case; eff* hold the
	// per-block completed counts the partial assembly substitutes for the
	// planned ones.
	var any *anyState
	var effNs, effRand, effAssigned []int64
	var cutPairsDone atomic.Int64
	totalCutPairs := 0
	for b := 0; b < nb; b++ {
		totalCutPairs += len(tree.BlockCuts[b])
	}
	if opts.Anytime || opts.Progress != nil {
		any = newAnyState(n, totalSamples, opts.Progress)
		effNs = make([]int64, nb)
		effRand = make([]int64, nb)
		effAssigned = make([]int64, nb)
	}

	// Local (per-block) weighted subgraphs.
	localG := make([]*graph.WGraph, nb)
	localUnw := make([]bool, nb)
	maxBlockNodes := 0
	if err := par.ForBlocksCtx(ctx, nb, opts.Workers, func(_, lo, hi int) {
		for b := lo; b < hi; b++ {
			localG[b] = buildBlockGraph(d, int32(b))
			localUnw[b] = localG[b].Unweighted()
		}
	}); err != nil {
		return nil, err
	}
	for b := 0; b < nb; b++ {
		if len(d.BlockNodes[b]) > maxBlockNodes {
			maxBlockNodes = len(d.BlockNodes[b])
		}
	}

	// Cache-aware relabeling, block-local edition: each block graph is
	// rebuilt under the requested ordering and blockPerm[b] maps canonical
	// local ids to relabeled ones. Sampling, event replay and the cut
	// bookkeeping all stay canonical — only traversal sources map through
	// the permutation on the way in and distance rows map back on the way
	// out, so farness is bit-identical to the unrelabeled run.
	// blockScatter composes each block's inverse permutation with the
	// member→original map (blockScatter[b][traversal-local id] = original
	// id), so a relabeled distance row scatters with one sequential read per
	// node instead of a gather through the permutation.
	var blockPerm, blockScatter [][]graph.NodeID
	if opts.Relabel != graph.RelabelNone {
		blockPerm = make([][]graph.NodeID, nb)
		blockScatter = make([][]graph.NodeID, nb)
		if err := par.ForBlocksCtx(ctx, nb, opts.Workers, func(_, lo, hi int) {
			for b := lo; b < hi; b++ {
				rg, r := graph.RelabelW(localG[b], opts.Relabel, 1)
				if r == nil {
					continue
				}
				localG[b], blockPerm[b] = rg, r.Perm
				members := d.BlockNodes[b]
				sc := make([]graph.NodeID, len(r.Inv))
				for j, li := range r.Inv {
					sc[j] = red.ToOld[members[li]]
				}
				blockScatter[b] = sc
			}
		}); err != nil {
			return nil, err
		}
	}
	// localSrc converts a reduced-graph source id to its traversal-space
	// block-local index.
	localSrc := func(b int32, src graph.NodeID) graph.NodeID {
		li := graph.NodeID(localIndex(d.BlockNodes[b], src))
		if blockPerm != nil && blockPerm[b] != nil {
			return blockPerm[b][li]
		}
		return li
	}

	// localCutPos holds, per block and cut, the cut's index into the block's
	// traversal-space distance rows (i.e. already mapped through blockPerm).
	localCutPos := make([][]int32, nb)
	for b := 0; b < nb; b++ {
		cuts := tree.BlockCuts[b]
		localCutPos[b] = make([]int32, len(cuts))
		for i, ci := range cuts {
			localCutPos[b][i] = int32(localSrc(int32(b), tree.Cuts[ci]))
		}
	}
	prep := time.Since(prepStart)

	if err := fault.Checkpoint(ctx, "core.traverse"); err != nil {
		return nil, err
	}
	done := ctx.Done()

	// Pass 1: every sampled source.
	travStart := time.Now()
	sumAll := make([]int64, n)
	sumAssigned := make([]int64, n)
	sumRand := make([]int64, n)
	exactIn := make([]int64, n)
	var sumSqA []int64
	if opts.ComputeStdErr {
		sumSqA = make([]int64, n)
	}
	// Per-block ratio-calibration accumulators (see estimateGlobal):
	// distances from assigned samples to assigned samples vs to assigned
	// non-samples.
	aS2S := make([]int64, nb)
	aS2N := make([]int64, nb)
	sampledReduced := make([]bool, nR)
	for b := 0; b < nb; b++ {
		for _, s := range blockSamples[b] {
			sampledReduced[s] = true
		}
	}
	sumDist := make([][]int64, nb)
	cutDist := make([][][]int32, nb)
	for b := 0; b < nb; b++ {
		k := len(tree.BlockCuts[b])
		sumDist[b] = make([]int64, k)
		cutDist[b] = make([][]int32, k)
		for i := range cutDist[b] {
			cutDist[b][i] = make([]int32, k)
		}
	}

	// Cut-row cache: pass 2 needs, per (block, cut), the distances from
	// the cut to every node assigned to the block — exactly what the
	// cut's pass-1 traversal computes. When the total fits the budget we
	// keep those rows and pass 2 becomes a pure accumulation loop;
	// otherwise pass 2 re-traverses (memory-bounded mode).
	const cutCacheBudget = 16 << 20 // int32 entries (64 MiB)
	assignedCount := make([]int64, nb)
	for v := 0; v < nR; v++ {
		assignedCount[homeOf[v]]++
	}
	for i := range red.Events {
		assignedCount[eventBlock[i]] += int64(len(red.Events[i].Removed()))
	}
	var cacheTotal int64
	for b := 0; b < nb; b++ {
		cacheTotal += int64(len(tree.BlockCuts[b])) * assignedCount[b]
	}
	useCutCache := cacheTotal <= cutCacheBudget
	var cutRows [][]int32 // indexed by global row id per (block, cutpos)
	cutRowBase := make([]int32, nb)
	if useCutCache {
		rows := 0
		for b := 0; b < nb; b++ {
			cutRowBase[b] = int32(rows)
			rows += len(tree.BlockCuts[b])
		}
		cutRows = make([][]int32, rows)
	}

	// A task is one traversal unit: a single source (per-source engine) or
	// a ≤64-wide group of sources sharing a block (batched engine). The
	// engine choice is per block — Auto batches a block only when enough
	// of the sample budget landed inside it.
	type task struct {
		b    int32
		srcs []graph.NodeID // reduced ids, all in block b
	}
	var tasks []task
	anyBatched := false
	// Frontier-parallel blocks: a block whose sample share is too small to
	// occupy the worker pool runs each of its sources on the edge-map engine
	// (levels split across workers) instead of starving the per-source
	// fan-out. The choice is per block, like the batching choice; tasks from
	// frontier blocks still flow through the same dynamic task loop, with
	// GOMAXPROCS bounding real parallelism when both levels fan out.
	workersEff := par.Workers(opts.Workers)
	frontierBlock := make([]bool, nb)
	anyFrontier := false
	for b := 0; b < nb; b++ {
		ss := blockSamples[b]
		if opts.Traversal.batched(len(ss)) && len(ss) > 1 {
			anyBatched = true
			// Proximity-clustered batching, block-local edition: when a
			// block's sample share spans several 64-wide batches, order the
			// sources by their position in a BFS ordering of the block graph
			// so each batch covers one neighbourhood. Under RelabelBFS the
			// traversal-space ids already are those positions; otherwise one
			// throwaway ordering pass per (large) block computes them.
			// blockSamples[b] itself is left untouched — every later use is a
			// set operation, and accumulateSource keys by the source id, so
			// the reorder cannot change any accumulated integer.
			if opts.Batching.clustered(len(ss)) {
				tls := make([]graph.NodeID, len(ss))
				for i, s := range ss {
					tls[i] = localSrc(int32(b), s)
				}
				var pos []graph.NodeID
				if opts.Relabel != graph.RelabelBFS || blockPerm == nil || blockPerm[b] == nil {
					pos = graph.OrderW(localG[b], graph.RelabelBFS, opts.Workers).Perm
				}
				ord := clusterOrder(tls, pos)
				css := make([]graph.NodeID, len(ss))
				for i, j := range ord {
					css[i] = ss[j]
				}
				ss = css
			}
			for base := 0; base < len(ss); base += bfs.MSBFSWidth {
				hi := base + bfs.MSBFSWidth
				if hi > len(ss) {
					hi = len(ss)
				}
				tasks = append(tasks, task{int32(b), ss[base:hi]})
			}
		} else {
			if opts.Traversal.Frontier(len(ss), workersEff, len(d.BlockNodes[b])) {
				frontierBlock[b] = true
				anyFrontier = true
			}
			for i := range ss {
				tasks = append(tasks, task{int32(b), ss[i : i+1]})
			}
		}
	}
	// Cuts-first ordering for anytime runs: every accumulator is keyed by
	// source id, so task order never changes an output integer — but running
	// the cut traversals first means an interrupted run has usually banked
	// all of them, which is what gates the partial assembly.
	if any != nil {
		hasCut := func(t task) bool {
			for _, s := range t.srcs {
				if tree.CutIndex[s] >= 0 {
					return true
				}
			}
			return false
		}
		sort.SliceStable(tasks, func(i, j int) bool { return hasCut(tasks[i]) && !hasCut(tasks[j]) })
	}
	workers := workersEff
	maxW := red.G.MaxWeight()
	type ws struct {
		s        *bfs.Scratch
		distOrig []int32
		ms       *bfs.MSScratch // batched-engine state, nil when unused
		rows     [][]int32      // 64-row distance slab over block-local ids
		views    [][]int32      // rows re-sliced to the current block size
		locals   []graph.NodeID
		fs       *bfs.FrontierScratch // frontier-engine state, nil when unused
	}
	scratch := make([]ws, workers)
	for i := range scratch {
		w := ws{s: bfs.NewScratch(maxBlockNodes, maxW), distOrig: make([]int32, n)}
		if anyFrontier {
			w.fs = bfs.NewFrontierScratch()
		}
		if anyBatched {
			w.ms = bfs.NewMSScratch(maxBlockNodes, maxW)
			w.ms.SetDone(done)
			slab := make([]int32, bfs.MSBFSWidth*maxBlockNodes)
			w.rows = make([][]int32, bfs.MSBFSWidth)
			for j := range w.rows {
				w.rows[j] = slab[j*maxBlockNodes : (j+1)*maxBlockNodes]
			}
			w.views = make([][]int32, bfs.MSBFSWidth)
			w.locals = make([]graph.NodeID, bfs.MSBFSWidth)
		}
		scratch[i] = w
	}

	// extendBlock scatters a block-local distance row (in traversal-space
	// ids, i.e. through blockPerm when relabeled) to original ids and
	// replays the block's removal events, exactly as a per-source
	// traversal would.
	extendBlock := func(w *ws, b int32, dist []int32) {
		if blockScatter != nil && blockScatter[b] != nil {
			for j, o := range blockScatter[b] {
				w.distOrig[o] = dist[j]
			}
		} else {
			for j, m := range d.BlockNodes[b] {
				w.distOrig[red.ToOld[m]] = dist[j]
			}
		}
		evs := blockEvents[b]
		for i := len(evs) - 1; i >= 0; i-- {
			red.Events[evs[i]].Extend(w.distOrig)
		}
	}
	useHybrid := opts.Traversal.hybrid()
	// blockTraverse fills dist with the block-local distances from src under
	// the block's chosen engine (frontier, hybrid BFS or Dial).
	blockTraverse := func(w *ws, b int32, src graph.NodeID, dist []int32) {
		switch {
		case frontierBlock[b]:
			_ = bfs.WFrontierDistancesCtx(ctx, localG[b], localUnw[b], localSrc(b, src), dist, workers, w.fs)
		case useHybrid && localUnw[b]:
			_ = bfs.WHybridDistancesBFSCtx(ctx, localG[b], localSrc(b, src), dist, w.s)
		default:
			_ = bfs.WDistancesCtx(ctx, localG[b], localSrc(b, src), dist, w.s.B)
		}
	}
	runBlockSource := func(w *ws, b int32, src graph.NodeID) {
		dist := w.s.Dist[:len(d.BlockNodes[b])]
		blockTraverse(w, b, src, dist)
		extendBlock(w, b, dist)
	}

	// accumulateSource consumes one source's block-local distance row:
	// extend to removed nodes, then feed every accumulator. Shared by both
	// engines, so their farness outputs are bit-identical. Under anytime the
	// whole consumption runs inside the read lock and ends by recording the
	// completed traversal unit.
	accumulateSource := func(w *ws, b int32, src graph.NodeID, dist []int32) {
		if any != nil {
			any.mu.RLock()
			defer func() {
				srcAssigned := homeOf[src] == b
				atomic.AddInt64(&effNs[b], 1)
				if tree.CutIndex[src] < 0 {
					atomic.AddInt64(&effRand[b], 1)
				} else {
					cutPairsDone.Add(1)
				}
				if srcAssigned {
					atomic.AddInt64(&effAssigned[b], 1)
					any.doneSrc[red.ToOld[src]] = true
				}
				any.mu.RUnlock()
				any.advance()
			}()
		}
		extendBlock(w, b, dist)
		members := d.BlockNodes[b]
		srcAssigned := homeOf[src] == b
		srcCut := tree.CutIndex[src]
		srcIsRand := srcCut < 0
		var row []int32
		if useCutCache && srcCut >= 0 {
			row = make([]int32, 0, assignedCount[b])
		}
		var inSum, toSamples int64
		accumulate := func(o graph.NodeID, isSample bool) {
			dd := int64(w.distOrig[o])
			inSum += dd
			if isSample {
				toSamples += dd
			}
			if row != nil {
				row = append(row, w.distOrig[o])
			}
			atomic.AddInt64(&sumAll[o], dd)
			if srcIsRand {
				atomic.AddInt64(&sumRand[o], dd)
			}
			if srcAssigned {
				atomic.AddInt64(&sumAssigned[o], dd)
				if sumSqA != nil {
					atomic.AddInt64(&sumSqA[o], dd*dd)
				}
			}
		}
		for _, m := range members {
			if homeOf[m] == b {
				accumulate(red.ToOld[m], sampledReduced[m])
			}
		}
		for _, ei := range blockEvents[b] {
			for _, r := range red.Events[ei].Removed() {
				accumulate(r, false)
			}
		}
		if srcAssigned {
			atomic.StoreInt64(&exactIn[red.ToOld[src]], inSum)
			atomic.AddInt64(&aS2S[b], toSamples)
			atomic.AddInt64(&aS2N[b], inSum-toSamples)
		}
		if srcCut >= 0 {
			li := tree.CutPos(b, srcCut)
			sumDist[b][li] = inSum
			for lj := range tree.BlockCuts[b] {
				cutDist[b][li][lj] = dist[localCutPos[b][lj]]
			}
			if row != nil {
				cutRows[int(cutRowBase[b])+li] = row
			}
		}
	}

	passErr := par.ForDynamicCtx(ctx, len(tasks), workers, 1, func(worker, ti int) {
		w := &scratch[worker]
		t := tasks[ti]
		members := d.BlockNodes[t.b]
		if len(t.srcs) == 1 {
			src := t.srcs[0]
			dist := w.s.Dist[:len(members)]
			blockTraverse(w, t.b, src, dist)
			if par.Interrupted(done) {
				return // partial row; an anytime run keeps only whole rows
			}
			accumulateSource(w, t.b, src, dist)
			return
		}
		// Batched: one bit-parallel sweep covers the whole group, then the
		// per-lane post-processing is identical to the per-source path.
		locals := w.locals[:len(t.srcs)]
		for i, s := range t.srcs {
			locals[i] = localSrc(t.b, s)
		}
		rows := w.views[:len(t.srcs)]
		for i := range rows {
			rows[i] = w.rows[i][:len(members)]
		}
		bfs.MultiSourceWRows(localG[t.b], localUnw[t.b], locals, w.ms, rows)
		if par.Interrupted(done) {
			return
		}
		for lane, src := range t.srcs {
			accumulateSource(w, t.b, src, rows[lane])
		}
	})
	trav := time.Since(travStart)
	// canPartial gates graceful degradation: the tree aggregation and pass 2
	// are all-or-nothing over the cut traversals, so a partial cumulative
	// result exists only when every (block, cut) traversal completed (the
	// cuts-first ordering banks those first) and pass 2 can replay cached cut
	// rows rather than re-traverse under a dead context. Otherwise the run
	// fails over to the historical nil + ErrCanceled.
	canPartial := func(err error) bool {
		return any != nil && opts.Anytime && canceledErr(err) && useCutCache &&
			totalCutPairs > 0 && int(cutPairsDone.Load()) == totalCutPairs
	}
	partial := false
	if passErr != nil {
		if !canPartial(passErr) {
			return nil, passErr
		}
		partial = true
	}

	// Aggregate across the tree. One correction first: a twin whose
	// representative is a cut vertex c behaves as a copy *at* c — for any
	// outside node w, d(w, twin) = d(w, c) + 0, not + GroupDist. The
	// extension necessarily reports d(c, twin) = GroupDist (correct for
	// c's own farness, which keeps the uncorrected inSum), so c's dCarry
	// row in its home block must subtract that excess.
	for i, e := range red.Events {
		te, ok := e.(*reduce.TwinEvent)
		if !ok {
			continue
		}
		rid := red.ToNew[te.Rep]
		if rid < 0 {
			continue
		}
		ci := tree.CutIndex[rid]
		if ci < 0 {
			continue
		}
		b := eventBlock[i] // the rep's home block
		if li := tree.CutPos(b, ci); li >= 0 {
			sumDist[b][li] -= int64(len(te.Members)) * int64(te.GroupDist)
		}
	}
	if !partial {
		if err := fault.Checkpoint(ctx, "core.aggregate"); err != nil {
			if !canPartial(err) {
				return nil, err
			}
			partial = true
		}
	}
	aggStart := time.Now()
	contrib := tree.Aggregate(&bct.Inputs{Pop: pop, SumDist: sumDist, CutDist: cutDist})
	if contrib.TotalPop != int64(n) {
		return nil, fmt.Errorf("core: population accounting mismatch: %d != %d", contrib.TotalPop, n)
	}

	// Pass 2: cut sources again, scaled by the outside weights.
	crossAcc := make([]int64, n)
	crossConst := make([]int64, nb)
	var cutTasks []task
	for b := 0; b < nb; b++ {
		var c int64
		for li, ci := range tree.BlockCuts[b] {
			c += contrib.Dout[b][li]
			cutTasks = append(cutTasks, task{int32(b), tree.Cuts[ci : ci+1]})
		}
		crossConst[b] = c
	}
	pass2 := func(p2ctx context.Context) error {
		return par.ForDynamicCtx(p2ctx, len(cutTasks), workers, 1, func(worker, ti int) {
			t := cutTasks[ti]
			b := t.b
			src := t.srcs[0]
			li := tree.CutPos(b, tree.CutIndex[src])
			wout := contrib.Wout[b][li]
			if useCutCache {
				// Replay the cached pass-1 row in its canonical order:
				// assigned members first, then per-event removed nodes.
				row := cutRows[int(cutRowBase[b])+li]
				i := 0
				for _, m := range d.BlockNodes[b] {
					if homeOf[m] == b {
						atomic.AddInt64(&crossAcc[red.ToOld[m]], wout*int64(row[i]))
						i++
					}
				}
				for _, ei := range blockEvents[b] {
					for _, r := range red.Events[ei].Removed() {
						atomic.AddInt64(&crossAcc[r], wout*int64(row[i]))
						i++
					}
				}
				return
			}
			w := &scratch[worker]
			runBlockSource(w, b, src)
			for _, m := range d.BlockNodes[b] {
				if homeOf[m] == b {
					o := red.ToOld[m]
					atomic.AddInt64(&crossAcc[o], wout*int64(w.distOrig[o]))
				}
			}
			for _, ei := range blockEvents[b] {
				for _, r := range red.Events[ei].Removed() {
					atomic.AddInt64(&crossAcc[r], wout*int64(w.distOrig[r]))
				}
			}
		})
	}
	// A partial run replays pass 2 under a fresh context (ctx is already
	// dead, and the gating above guarantees the cached-row path). A full run
	// whose context dies *during* pass 2 leaves crossAcc torn — zero it and
	// replay cleanly if the gate allows, else abandon as before.
	p2ctx := ctx
	if partial {
		p2ctx = context.Background()
	}
	if err := pass2(p2ctx); err != nil {
		if !canPartial(err) {
			return nil, err
		}
		partial = true
		for i := range crossAcc {
			crossAcc[i] = 0
		}
		if err := pass2(context.Background()); err != nil {
			return nil, err
		}
	}

	// Assembly.
	res := &Result{
		Farness: make([]float64, n),
		Exact:   make([]bool, n),
		Stats: RunStats{
			Blocks:              d.Summarize(),
			BiCC:                biccT,
			Samples:             totalSamples,
			FallbackAssignments: fallbacks,
			Preprocess:          prep,
			Traverse:            trav,
		},
	}
	// A partial run only trusts sources whose assigned traversal completed;
	// everything else falls back to the extrapolation branches below with
	// the effective (completed) counts in place of the planned ones.
	sampled := make([]bool, n)
	if partial {
		copy(sampled, any.doneSrc)
	} else {
		for b := 0; b < nb; b++ {
			for _, s := range blockSamples[b] {
				sampled[red.ToOld[s]] = true
			}
		}
	}
	nsOf := func(b int32) int {
		if partial {
			return int(effNs[b])
		}
		return len(blockSamples[b])
	}
	kaOf := func(b int32) int64 {
		if partial {
			return effAssigned[b]
		}
		return int64(numAssignedSamples[b])
	}
	nrOf := func(b int32) int64 {
		if partial {
			return effRand[b]
		}
		return int64(numRand[b])
	}
	if sumSqA != nil && !partial {
		res.StdErr = make([]float64, n)
	}
	// Blocks whose assigned population is covered by a single sample get
	// the landmark midpoint estimate for their in-block part (see
	// landmarkSums); averages cannot be calibrated from one row. (Partial
	// runs skip this and the offset calibration: both mix planned-sample
	// bookkeeping with completed-source sums, which no longer match.)
	lmVal := make([]float64, n)
	lmSet := make([]bool, n)
	if opts.Estimator == EstimatorWeighted && !partial {
		for b := 0; b < nb; b++ {
			if numAssignedSamples[b] != 1 || pop[b] <= 2 {
				continue
			}
			var ids []graph.NodeID
			var ds []int64
			add := func(o graph.NodeID) {
				if !sampled[o] {
					ids = append(ids, o)
					ds = append(ds, sumAssigned[o])
				}
			}
			for _, m := range d.BlockNodes[b] {
				if homeOf[m] == int32(b) {
					add(red.ToOld[m])
				}
			}
			for _, ei := range blockEvents[b] {
				for _, r := range red.Events[ei].Removed() {
					add(r)
				}
			}
			if len(ids) < 2 {
				continue
			}
			lm := landmarkSums(ds)
			for i, o := range ids {
				lmVal[o] = float64(ds[i]) + lm[i]
				lmSet[o] = true
			}
		}
	}
	blockOfOrig := func(o graph.NodeID) int32 {
		if rid := red.ToNew[o]; rid >= 0 {
			return homeOf[rid]
		}
		return eventBlock[evOf[o]]
	}
	for o := 0; o < n; o++ {
		b := blockOfOrig(graph.NodeID(o))
		cross := float64(crossAcc[o] + crossConst[b])
		if sampled[o] {
			res.Exact[o] = true
			res.Farness[o] = float64(exactIn[o]) + cross
			continue
		}
		var inEst float64
		ns := nsOf(b)
		m := pop[b] - kaOf(b) // assigned non-sample mass
		switch {
		case lmSet[o]:
			inEst = lmVal[o]
		case opts.Estimator == EstimatorPaper:
			if ns > 0 {
				inEst = float64(pop[b]-1) / float64(ns) * float64(sumAll[o])
			}
		case !partial && numAssignedSamples[b] > 1 && m > 0:
			// Additive offset calibration (see estimateGlobal): the
			// assigned non-sampled mass sits on average Δ farther than
			// the samples do from each other.
			ka := int64(numAssignedSamples[b])
			mss := float64(aS2S[b]) / float64(ka*(ka-1))
			msn := float64(aS2N[b]) / float64(ka*m)
			mu := float64(sumAssigned[o])/float64(ka) + (msn - mss)
			if mu < 1 {
				mu = 1
			}
			inEst = float64(sumAssigned[o]) + mu*float64(m-1)
		default:
			// Fallback (no usable calibration): average-based
			// extrapolation over the uniform samples.
			unknown := m - 1
			if unknown < 0 {
				unknown = 0
			}
			var avg float64
			if nr := nrOf(b); nr > 0 {
				avg = float64(sumRand[o]) / float64(nr)
			} else if ns > 0 {
				avg = float64(sumAll[o]) / float64(ns)
			}
			inEst = float64(sumAssigned[o]) + avg*float64(unknown)
		}
		res.Farness[o] = inEst + cross
		if res.StdErr != nil {
			// In-block standard error: the cross-block part is exact, so
			// only the in-block extrapolation contributes variance.
			if ka := int64(numAssignedSamples[b]); ka > 1 && m > 1 {
				mean := float64(sumAssigned[o]) / float64(ka)
				variance := (float64(sumSqA[o])/float64(ka) - mean*mean) * float64(ka) / float64(ka-1)
				if variance < 0 {
					variance = 0
				}
				res.StdErr[o] = float64(m-1) * math.Sqrt(variance/float64(ka))
			}
		}
	}
	if partial {
		// Proven bounds for the partial result. The cumulative accumulators
		// hold block-local sums, not full-graph rows, so no completed-source
		// sharpening applies; instead run up to maxLandmarks fresh BFS
		// traversals from cut vertices (central by construction) on the
		// original graph and bracket every farness with pure landmark
		// triangle bounds, then clamp the estimates into them.
		lmSrcs := tree.Cuts
		if len(lmSrcs) > maxLandmarks {
			lmSrcs = lmSrcs[:maxLandmarks]
		}
		lms := make([][]int32, 0, len(lmSrcs))
		q := queue.NewFIFO(n)
		for _, c := range lmSrcs {
			row := make([]int32, n)
			bfs.Distances(red.Orig, red.ToOld[c], row, q)
			lms = append(lms, row)
		}
		low, high := partialBounds(n, make([]int64, n), make([]int64, n), make([]bool, n), lms)
		if low == nil {
			return nil, passErr
		}
		for o := 0; o < n; o++ {
			if res.Exact[o] {
				low[o], high[o] = res.Farness[o], res.Farness[o]
				continue
			}
			if res.Farness[o] < low[o] {
				res.Farness[o] = low[o]
			}
			if res.Farness[o] > high[o] {
				res.Farness[o] = high[o]
			}
		}
		res.Partial = true
		res.Completed = int(any.completed.Load())
		res.Planned = totalSamples
		res.Low, res.High = low, high
		res.Stats.Samples = res.Completed
	}
	res.Stats.Aggregate = time.Since(aggStart)
	return res, nil
}

// largestBlock returns the id of the block with the most nodes; rooting the
// BCT there keeps the tree shallow on skewed decompositions.
func largestBlock(d *bicc.Decomposition) int32 {
	best, bestN := int32(0), -1
	for b, nodes := range d.BlockNodes {
		if len(nodes) > bestN {
			best, bestN = int32(b), len(nodes)
		}
	}
	return best
}

// buildBlockGraph materialises one block as a standalone weighted graph in
// local coordinates (index into the block's sorted node list).
func buildBlockGraph(d *bicc.Decomposition, b int32) *graph.WGraph {
	members := d.BlockNodes[b]
	wb := graph.NewWBuilder(len(members))
	for _, e := range d.BlockEdges[b] {
		_ = wb.AddEdge(graph.NodeID(localIndex(members, e.U)), graph.NodeID(localIndex(members, e.V)), e.W)
	}
	return wb.Build()
}

// localIndex finds v in the sorted member list.
func localIndex(members []graph.NodeID, v graph.NodeID) int {
	return sort.Search(len(members), func(i int) bool { return members[i] >= v })
}

// intersectBlocks filters a (small) candidate block list by membership in
// another.
func intersectBlocks(cand, other []int32) []int32 {
	out := cand[:0]
	for _, c := range cand {
		for _, o := range other {
			if c == o {
				out = append(out, c)
				break
			}
		}
	}
	return out
}
