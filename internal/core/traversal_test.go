package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

var traversalFamilies = []struct {
	name  string
	build func(n int, seed int64) *graph.Graph
}{
	{"web", gen.Web},
	{"social", gen.Social},
	{"community", gen.Community},
	{"road", gen.Road},
}

// TestRandomSamplingTraversalModesIdentical: the batched engine must
// reproduce the per-source engine's farness output bit-for-bit — both are
// integer accumulations over the same sampled rows, so any divergence is a
// kernel bug, not estimator noise.
func TestRandomSamplingTraversalModesIdentical(t *testing.T) {
	for _, fam := range traversalFamilies {
		t.Run(fam.name, func(t *testing.T) {
			g := fam.build(1500, 42)
			per := RandomSamplingMode(g, 0.2, 4, 7, TraversalPerSource)
			bat := RandomSamplingMode(g, 0.2, 4, 7, TraversalBatched)
			if per.Stats.Samples != bat.Stats.Samples {
				t.Fatalf("sample counts differ: %d vs %d", per.Stats.Samples, bat.Stats.Samples)
			}
			for v := range per.Farness {
				if per.Farness[v] != bat.Farness[v] {
					t.Fatalf("node %d: per-source %v, batched %v", v, per.Farness[v], bat.Farness[v])
				}
				if per.Exact[v] != bat.Exact[v] {
					t.Fatalf("node %d: exactness flags differ", v)
				}
			}
		})
	}
}

// TestEstimateTraversalModesIdentical checks the same invariant through the
// full estimator stack: global (C+R, I+C+R) and cumulative (BiCC) paths,
// where batching happens on the reduced graph and inside blocks.
func TestEstimateTraversalModesIdentical(t *testing.T) {
	techs := []Technique{TechCR, TechICR, TechCumulative}
	for _, fam := range traversalFamilies {
		for _, tech := range techs {
			t.Run(fam.name+"/"+tech.String(), func(t *testing.T) {
				g := fam.build(1200, 5)
				run := func(mode TraversalMode) *Result {
					res, err := Estimate(g, Options{
						Techniques:     tech,
						SampleFraction: 0.2,
						Workers:        4,
						Seed:           3,
						Traversal:      mode,
					})
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				per := run(TraversalPerSource)
				bat := run(TraversalBatched)
				if per.Stats.Samples != bat.Stats.Samples {
					t.Fatalf("sample counts differ: %d vs %d", per.Stats.Samples, bat.Stats.Samples)
				}
				for v := range per.Farness {
					if per.Farness[v] != bat.Farness[v] {
						t.Fatalf("node %d: per-source %v, batched %v", v, per.Farness[v], bat.Farness[v])
					}
					if per.Exact[v] != bat.Exact[v] {
						t.Fatalf("node %d: exactness flags differ", v)
					}
				}
			})
		}
	}
}

// TestTraversalAutoPolicy pins the Auto threshold: tiny source counts stay
// per-source, larger ones batch.
func TestTraversalAutoPolicy(t *testing.T) {
	cases := []struct {
		mode TraversalMode
		k    int
		want bool
	}{
		{TraversalAuto, 1, false},
		{TraversalAuto, batchMinSources - 1, false},
		{TraversalAuto, batchMinSources, true},
		{TraversalAuto, 1000, true},
		{TraversalPerSource, 1000, false},
		{TraversalBatched, 1, true},
		{TraversalBatched, 0, false},
	}
	for _, c := range cases {
		if got := c.mode.batched(c.k); got != c.want {
			t.Errorf("%v.batched(%d) = %v, want %v", c.mode, c.k, got, c.want)
		}
	}
}
