package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

var traversalFamilies = []struct {
	name  string
	build func(n int, seed int64) *graph.Graph
}{
	{"web", gen.Web},
	{"social", gen.Social},
	{"community", gen.Community},
	{"road", gen.Road},
}

// TestRandomSamplingTraversalModesIdentical: the batched engine must
// reproduce the per-source engine's farness output bit-for-bit — both are
// integer accumulations over the same sampled rows, so any divergence is a
// kernel bug, not estimator noise.
func TestRandomSamplingTraversalModesIdentical(t *testing.T) {
	for _, fam := range traversalFamilies {
		t.Run(fam.name, func(t *testing.T) {
			g := fam.build(1500, 42)
			per := RandomSamplingMode(g, 0.2, 4, 7, TraversalPerSource)
			for _, mode := range []TraversalMode{TraversalBatched, TraversalFrontier} {
				got := RandomSamplingMode(g, 0.2, 4, 7, mode)
				if per.Stats.Samples != got.Stats.Samples {
					t.Fatalf("%v: sample counts differ: %d vs %d", mode, per.Stats.Samples, got.Stats.Samples)
				}
				for v := range per.Farness {
					if per.Farness[v] != got.Farness[v] {
						t.Fatalf("%v node %d: per-source %v, got %v", mode, v, per.Farness[v], got.Farness[v])
					}
					if per.Exact[v] != got.Exact[v] {
						t.Fatalf("%v node %d: exactness flags differ", mode, v)
					}
				}
			}
		})
	}
}

// TestEstimateTraversalModesIdentical checks the same invariant through the
// full estimator stack: global (C+R, I+C+R) and cumulative (BiCC) paths,
// where batching happens on the reduced graph and inside blocks.
func TestEstimateTraversalModesIdentical(t *testing.T) {
	techs := []Technique{TechCR, TechICR, TechCumulative}
	for _, fam := range traversalFamilies {
		for _, tech := range techs {
			t.Run(fam.name+"/"+tech.String(), func(t *testing.T) {
				g := fam.build(1200, 5)
				run := func(mode TraversalMode) *Result {
					res, err := Estimate(g, Options{
						Techniques:     tech,
						SampleFraction: 0.2,
						Workers:        4,
						Seed:           3,
						Traversal:      mode,
					})
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				per := run(TraversalPerSource)
				for _, mode := range []TraversalMode{TraversalBatched, TraversalFrontier} {
					got := run(mode)
					if per.Stats.Samples != got.Stats.Samples {
						t.Fatalf("%v: sample counts differ: %d vs %d", mode, per.Stats.Samples, got.Stats.Samples)
					}
					for v := range per.Farness {
						if per.Farness[v] != got.Farness[v] {
							t.Fatalf("%v node %d: per-source %v, got %v", mode, v, per.Farness[v], got.Farness[v])
						}
						if per.Exact[v] != got.Exact[v] {
							t.Fatalf("%v node %d: exactness flags differ", mode, v)
						}
					}
				}
			})
		}
	}
}

// TestTraversalAutoPolicy pins the Auto threshold: tiny source counts stay
// per-source, larger ones batch.
func TestTraversalAutoPolicy(t *testing.T) {
	cases := []struct {
		mode TraversalMode
		k    int
		want bool
	}{
		{TraversalAuto, 1, false},
		{TraversalAuto, batchMinSources - 1, false},
		{TraversalAuto, batchMinSources, true},
		{TraversalAuto, 1000, true},
		{TraversalPerSource, 1000, false},
		{TraversalBatched, 1, true},
		{TraversalBatched, 0, false},
	}
	for _, c := range cases {
		if got := c.mode.batched(c.k); got != c.want {
			t.Errorf("%v.batched(%d) = %v, want %v", c.mode, c.k, got, c.want)
		}
	}
}

// TestTraversalFrontierPolicy pins when the frontier engine is selected: a
// forced mode always, Auto only when the unit's source count cannot fill the
// worker pool (2k ≤ workers) on a graph big enough to amortise the fan-out.
func TestTraversalFrontierPolicy(t *testing.T) {
	big := frontierMinNodes
	cases := []struct {
		mode       TraversalMode
		k, workers int
		n          int
		want       bool
	}{
		{TraversalFrontier, 1, 1, 10, true}, // forced: always
		{TraversalFrontier, 100, 8, 10, true},
		{TraversalAuto, 1, 8, big, true},  // one source, many workers
		{TraversalAuto, 4, 8, big, true},  // 2k == workers: boundary in
		{TraversalAuto, 5, 8, big, false}, // sources can fill the pool
		{TraversalAuto, 1, 1, big, false}, // no parallelism to exploit
		{TraversalAuto, 0, 8, big, false},
		{TraversalAuto, 1, 8, big - 1, false}, // too small to amortise
		{TraversalPerSource, 1, 8, big, false},
		{TraversalBatched, 1, 8, big, false},
		{TraversalHybrid, 1, 8, big, false},
	}
	for _, c := range cases {
		if got := c.mode.Frontier(c.k, c.workers, c.n); got != c.want {
			t.Errorf("%v.Frontier(%d, %d, %d) = %v, want %v", c.mode, c.k, c.workers, c.n, got, c.want)
		}
	}
}
