// Package bct builds the rooted block cut-vertex tree over a biconnected
// decomposition and runs the bottom-up/top-down contribution aggregation of
// the paper's Algorithm 6 and Fig. 3.
//
// Terminology follows the paper: every block/cut pair carries a *weight*
// (the number of graph nodes — including nodes removed by the reductions —
// that live strictly beyond that cut, as seen from the block) and a *dCarry*
// (the sum of distances from the cut vertex to all of those nodes). Given
// those two aggregates, the farness of any node v of block B is
//
//	farness(v) = inBlock(v) + Σ_{cuts c of B} ( W(B,c)·d(v,c) + D(B,c) )
//
// with every term beyond the in-block one exact, because cut vertices are
// always sampled and so in-block distances from cuts are exact.
//
// The package is deliberately independent of how per-block populations and
// cut-to-node distance sums were computed: core feeds it Inputs assembled
// from the sampled traversals and reads back the per-(block,cut) outside
// contributions.
package bct

import (
	"fmt"

	"repro/internal/bicc"
	"repro/internal/graph"
)

// Tree is a rooted block cut-vertex tree.
type Tree struct {
	D *bicc.Decomposition

	// Cuts lists the articulation points; CutIndex inverts it (-1 for
	// non-cut nodes).
	Cuts     []graph.NodeID
	CutIndex []int32

	// BlockCuts lists, per block, the global cut ids of its cut vertices
	// (in the order of the block's sorted node list).
	BlockCuts [][]int32

	// Root is the root block id.
	Root int32
	// ParentCut is the cut id between a block and its parent block (-1
	// for the root block).
	ParentCut []int32
	// ParentBlock is the parent block of each cut in the rooted tree.
	ParentBlock []int32
	// ChildBlocks lists, per cut, its child blocks.
	ChildBlocks [][]int32
	// Order lists blocks in BFS order from the root; bottom-up passes
	// iterate it in reverse.
	Order []int32
	// HomeBlock assigns each cut vertex the single block in which its own
	// population is counted (the block through which it is first
	// discovered from the root; any consistent choice works).
	HomeBlock []int32
}

// NewTree roots the block cut-vertex tree of d at the given block. The
// decomposition must come from a connected graph (a single tree); Validate
// reports violations.
func NewTree(d *bicc.Decomposition, root int32) *Tree {
	n := len(d.BlocksOf)
	t := &Tree{
		D:        d,
		CutIndex: make([]int32, n),
	}
	for v := 0; v < n; v++ {
		if d.IsCut[v] {
			t.CutIndex[v] = int32(len(t.Cuts))
			t.Cuts = append(t.Cuts, graph.NodeID(v))
		} else {
			t.CutIndex[v] = -1
		}
	}
	nb := d.NumBlocks()
	nc := len(t.Cuts)
	t.BlockCuts = make([][]int32, nb)
	for b := 0; b < nb; b++ {
		for _, v := range d.BlockNodes[b] {
			if ci := t.CutIndex[v]; ci >= 0 {
				t.BlockCuts[b] = append(t.BlockCuts[b], ci)
			}
		}
	}
	t.Root = root
	t.ParentCut = make([]int32, nb)
	t.ParentBlock = make([]int32, nc)
	t.ChildBlocks = make([][]int32, nc)
	t.HomeBlock = make([]int32, nc)
	for i := range t.ParentCut {
		t.ParentCut[i] = -1
	}
	for i := range t.ParentBlock {
		t.ParentBlock[i] = -1
		t.HomeBlock[i] = -1
	}
	seenBlock := make([]bool, nb)
	seenCut := make([]bool, nc)
	queue := []int32{root}
	seenBlock[root] = true
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		t.Order = append(t.Order, b)
		for _, ci := range t.BlockCuts[b] {
			if seenCut[ci] {
				continue
			}
			seenCut[ci] = true
			t.ParentBlock[ci] = b
			t.HomeBlock[ci] = b
			for _, nb2 := range t.D.BlocksOf[t.Cuts[ci]] {
				if !seenBlock[nb2] {
					seenBlock[nb2] = true
					t.ParentCut[nb2] = ci
					t.ChildBlocks[ci] = append(t.ChildBlocks[ci], nb2)
					queue = append(queue, nb2)
				}
			}
		}
	}
	return t
}

// CutPos returns the position of global cut id ci within block b's
// BlockCuts list, or -1.
func (t *Tree) CutPos(b, ci int32) int {
	for i, c := range t.BlockCuts[b] {
		if c == ci {
			return i
		}
	}
	return -1
}

// Validate checks that the rooted structure spans every block exactly once.
func (t *Tree) Validate() error {
	if len(t.Order) != t.D.NumBlocks() {
		return fmt.Errorf("bct: BFS order covers %d of %d blocks (disconnected input?)", len(t.Order), t.D.NumBlocks())
	}
	for ci := range t.Cuts {
		if t.ParentBlock[ci] < 0 {
			return fmt.Errorf("bct: cut %d unreached", ci)
		}
	}
	return nil
}

// Inputs carries the per-block aggregates the DP consumes. All distance
// sums are over the nodes *assigned* to the block: kept non-cut nodes,
// removed (reduction) nodes attached to it, and cut vertices whose
// HomeBlock it is.
type Inputs struct {
	// Pop[b] is the assigned population of block b. Σ Pop must equal the
	// total node count of the original graph.
	Pop []int64
	// SumDist[b][i] is Σ_{w assigned to b} d(cut, w) for the i-th cut of
	// BlockCuts[b]; distances are in-block (exact).
	SumDist [][]int64
	// CutDist[b][i][j] is the in-block distance between the i-th and j-th
	// cuts of block b.
	CutDist [][][]int32
}

// Contrib is the aggregation output: for block b and its i-th cut,
// Wout[b][i] nodes live beyond that cut, at total distance Dout[b][i] from
// the cut vertex.
type Contrib struct {
	Wout, Dout [][]int64
	TotalPop   int64
}

// Aggregate runs the bottom-up and top-down passes.
func (t *Tree) Aggregate(in *Inputs) *Contrib {
	nb := t.D.NumBlocks()
	nc := len(t.Cuts)
	// Bottom-up state.
	wsub := make([]int64, nb) // population of the subtree hanging below block b (incl. b)
	dsub := make([]int64, nb) // Σ distances from b's parent cut to that population
	wdown := make([]int64, nc)
	ddown := make([]int64, nc)

	var total int64
	for _, p := range in.Pop {
		total += p
	}

	// Bottom-up: reverse BFS order guarantees children before parents.
	for i := len(t.Order) - 1; i >= 0; i-- {
		b := t.Order[i]
		cuts := t.BlockCuts[b]
		pc := t.ParentCut[b]
		w := in.Pop[b]
		for li, ci := range cuts {
			if ci == pc || t.ParentBlock[ci] != b {
				continue
			}
			_ = li
			w += wdown[ci]
		}
		wsub[b] = w
		if pc >= 0 {
			pi := t.CutPos(b, pc)
			d := in.SumDist[b][pi]
			for li, ci := range cuts {
				if ci == pc || t.ParentBlock[ci] != b {
					continue
				}
				d += wdown[ci]*int64(in.CutDist[b][pi][li]) + ddown[ci]
			}
			dsub[b] = d
			wdown[pc] += wsub[b]
			ddown[pc] += dsub[b]
		}
	}

	out := &Contrib{
		Wout:     make([][]int64, nb),
		Dout:     make([][]int64, nb),
		TotalPop: total,
	}
	for b := 0; b < nb; b++ {
		out.Wout[b] = make([]int64, len(t.BlockCuts[b]))
		out.Dout[b] = make([]int64, len(t.BlockCuts[b]))
	}

	// Top-down in BFS order: parents finished before children.
	for _, b := range t.Order {
		cuts := t.BlockCuts[b]
		pc := t.ParentCut[b]
		for li, ci := range cuts {
			switch {
			case ci == pc:
				// Everything outside this block's subtree.
				out.Wout[b][li] = total - wsub[b]
				p := t.ParentBlock[ci]
				ppos := t.CutPos(p, ci)
				// Through the parent block: its assigned nodes plus
				// everything beyond its *other* cuts.
				d := in.SumDist[p][ppos]
				for lj, cj := range t.BlockCuts[p] {
					if cj == ci {
						continue
					}
					d += out.Wout[p][lj]*int64(in.CutDist[p][ppos][lj]) + out.Dout[p][lj]
				}
				// Sibling blocks hanging off the same cut.
				d += ddown[ci] - dsub[b]
				out.Dout[b][li] = d
			case t.ParentBlock[ci] == b:
				// A child cut: its subtree, precomputed bottom-up.
				out.Wout[b][li] = wdown[ci]
				out.Dout[b][li] = ddown[ci]
			default:
				// A cut of b whose parent block is another block: can
				// only happen for disconnected inputs; Validate rejects
				// them.
				panic("bct: cut parented outside block")
			}
		}
	}
	return out
}
