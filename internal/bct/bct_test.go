package bct

import (
	"math/rand"
	"testing/quick"

	"testing"

	"repro/internal/bfs"
	"repro/internal/bicc"
	"repro/internal/graph"
)

// chainOfTriangles builds k triangles glued in a chain at cut vertices:
// 0-1-2, 2-3-4, 4-5-6, ... Node 2i is shared between triangle i-1 and i.
func chainOfTriangles(k int) *graph.WGraph {
	b := graph.NewWBuilder(2*k + 1)
	for i := 0; i < k; i++ {
		a := int32(2 * i)
		_ = b.AddEdge(a, a+1, 1)
		_ = b.AddEdge(a+1, a+2, 1)
		_ = b.AddEdge(a, a+2, 1)
	}
	return b.Build()
}

func TestNewTreeStructure(t *testing.T) {
	g := chainOfTriangles(3)
	d := bicc.Decompose(g)
	if d.NumBlocks() != 3 {
		t.Fatalf("blocks = %d, want 3", d.NumBlocks())
	}
	tree := NewTree(d, 0)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tree.Cuts) != 2 {
		t.Fatalf("cuts = %v, want nodes 2 and 4", tree.Cuts)
	}
	if len(tree.Order) != 3 {
		t.Fatalf("order = %v", tree.Order)
	}
	if tree.ParentCut[tree.Root] != -1 {
		t.Error("root must have no parent cut")
	}
	// Each non-root block has a parent cut that belongs to it.
	for _, b := range tree.Order[1:] {
		pc := tree.ParentCut[b]
		if pc < 0 || tree.CutPos(b, pc) < 0 {
			t.Errorf("block %d: bad parent cut %d", b, pc)
		}
	}
}

// aggregateExact feeds the DP with exact per-block data for a fully known
// graph and checks the farness identity for every node.
func TestAggregateExactIdentity(t *testing.T) {
	for k := 1; k <= 4; k++ {
		g := chainOfTriangles(k)
		checkAggregate(t, g)
	}
	// A tree of blocks with branching: star of triangles sharing node 0.
	b := graph.NewWBuilder(7)
	for i := 0; i < 3; i++ {
		x := int32(1 + 2*i)
		_ = b.AddEdge(0, x, 1)
		_ = b.AddEdge(0, x+1, 1)
		_ = b.AddEdge(x, x+1, 1)
	}
	checkAggregate(t, b.Build())
	// Mixed weights.
	wb := graph.NewWBuilder(6)
	_ = wb.AddEdge(0, 1, 2)
	_ = wb.AddEdge(1, 2, 3)
	_ = wb.AddEdge(0, 2, 1)
	_ = wb.AddEdge(2, 3, 4)
	_ = wb.AddEdge(3, 4, 1)
	_ = wb.AddEdge(4, 5, 2)
	_ = wb.AddEdge(3, 5, 2)
	checkAggregate(t, wb.Build())
}

func checkAggregate(t *testing.T, g *graph.WGraph) {
	t.Helper()
	n := g.NumNodes()
	d := bicc.Decompose(g)
	tree := NewTree(d, 0)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	ap := bfs.AllPairsW(g)

	nb := d.NumBlocks()
	// Home block per node.
	home := make([]int32, n)
	for v := 0; v < n; v++ {
		if ci := tree.CutIndex[v]; ci >= 0 {
			home[v] = tree.HomeBlock[ci]
		} else {
			home[v] = d.BlocksOf[v][0]
		}
	}
	in := &Inputs{
		Pop:     make([]int64, nb),
		SumDist: make([][]int64, nb),
		CutDist: make([][][]int32, nb),
	}
	for v := 0; v < n; v++ {
		in.Pop[home[v]]++
	}
	for b := 0; b < nb; b++ {
		cuts := tree.BlockCuts[b]
		in.SumDist[b] = make([]int64, len(cuts))
		in.CutDist[b] = make([][]int32, len(cuts))
		for i, ci := range cuts {
			cv := tree.Cuts[ci]
			for v := 0; v < n; v++ {
				if home[v] == int32(b) {
					in.SumDist[b][i] += int64(ap[cv][v])
				}
			}
			in.CutDist[b][i] = make([]int32, len(cuts))
			for j, cj := range cuts {
				in.CutDist[b][i][j] = ap[cv][tree.Cuts[cj]]
			}
		}
	}
	out := tree.Aggregate(in)
	if out.TotalPop != int64(n) {
		t.Fatalf("TotalPop = %d, want %d", out.TotalPop, n)
	}
	// farness(v) must equal inBlock(v) + Σ cuts (Wout·d(v,c) + Dout).
	for v := 0; v < n; v++ {
		b := home[v]
		var got int64
		for w := 0; w < n; w++ {
			if home[w] == b {
				got += int64(ap[v][w])
			}
		}
		for li, ci := range tree.BlockCuts[b] {
			cv := tree.Cuts[ci]
			got += out.Wout[b][li]*int64(ap[v][cv]) + out.Dout[b][li]
		}
		var want int64
		for w := 0; w < n; w++ {
			want += int64(ap[v][w])
		}
		if got != want {
			t.Fatalf("node %d: aggregated farness %d, want %d", v, got, want)
		}
	}
}

// Property: the aggregation identity holds on random connected weighted
// graphs with arbitrary block structures.
func TestAggregateRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 3
		b := graph.NewWBuilder(n)
		for i := 1; i < n; i++ {
			_ = b.AddEdge(int32(rng.Intn(i)), int32(i), int32(rng.Intn(3)+1))
		}
		extra := rng.Intn(n)
		for i := 0; i < extra; i++ {
			_ = b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), int32(rng.Intn(3)+1))
		}
		g := b.Build()
		d := bicc.Decompose(g)
		if d.NumBlocks() == 0 {
			return true
		}
		tree := NewTree(d, 0)
		if tree.Validate() != nil {
			return false
		}
		ap := bfs.AllPairsW(g)
		nb := d.NumBlocks()
		home := make([]int32, n)
		for v := 0; v < n; v++ {
			if ci := tree.CutIndex[v]; ci >= 0 {
				home[v] = tree.HomeBlock[ci]
			} else {
				home[v] = d.BlocksOf[v][0]
			}
		}
		in := &Inputs{
			Pop:     make([]int64, nb),
			SumDist: make([][]int64, nb),
			CutDist: make([][][]int32, nb),
		}
		for v := 0; v < n; v++ {
			in.Pop[home[v]]++
		}
		for bid := 0; bid < nb; bid++ {
			cuts := tree.BlockCuts[bid]
			in.SumDist[bid] = make([]int64, len(cuts))
			in.CutDist[bid] = make([][]int32, len(cuts))
			for i, ci := range cuts {
				cv := tree.Cuts[ci]
				for v := 0; v < n; v++ {
					if home[v] == int32(bid) {
						in.SumDist[bid][i] += int64(ap[cv][v])
					}
				}
				in.CutDist[bid][i] = make([]int32, len(cuts))
				for j, cj := range cuts {
					in.CutDist[bid][i][j] = ap[cv][tree.Cuts[cj]]
				}
			}
		}
		out := tree.Aggregate(in)
		if out.TotalPop != int64(n) {
			return false
		}
		for v := 0; v < n; v++ {
			bid := home[v]
			var got int64
			for w := 0; w < n; w++ {
				if home[w] == bid {
					got += int64(ap[v][w])
				}
			}
			for li, ci := range tree.BlockCuts[bid] {
				got += out.Wout[bid][li]*int64(ap[v][tree.Cuts[ci]]) + out.Dout[bid][li]
			}
			var want int64
			for w := 0; w < n; w++ {
				want += int64(ap[v][w])
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
