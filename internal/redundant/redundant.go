// Package redundant implements the "R" of BRICS: removal of redundant
// degree-3 and degree-4 nodes (Section III-C of the paper). A node v is
// redundant when no shortest path passes through it except as an endpoint;
// it can then be deleted from the traversal graph and its per-source
// distance recovered as d(s,v) = min over neighbours x of d(s,x) + w(x,v)
// (the paper's Algorithm 3, generalised to the weighted edges that chain
// contraction introduces).
//
// The paper's structural conditions — degree 3 with mutually adjacent
// neighbours (Fig. 1(e)), degree 4 with every neighbour adjacent to at
// least two other neighbours (Fig. 1(f)) — are exact only on unweighted
// graphs. This package checks the precise condition instead: for every
// neighbour pair (x, y), the shortest x→y path inside the subgraph induced
// by N(v) must be no longer than w(x,v)+w(v,y). On all-weight-1 graphs this
// coincides with the paper's conditions for the triangle case and subsumes
// the degree-4 case.
//
// Marked nodes form an independent set: once v is marked, its neighbours
// are skipped. This guarantees that every removed node has all of its
// neighbours present in the final reduced graph, which Algorithm 3's
// one-hop recovery step requires.
package redundant

import (
	"repro/internal/graph"
	"repro/internal/par"
)

// Node records one removed redundant node together with the neighbour list
// that recovers its distances.
type Node struct {
	V       graph.NodeID
	Nbrs    []graph.NodeID
	Weights []int32
}

// Distance returns d(s, V) given a distance oracle over the kept graph:
// the minimum of d(s,x) + w(x,V) over neighbours x (Algorithm 3). dist
// values of bfs.Unreached (-1) are skipped; the result is -1 when no
// neighbour was reached.
func (r *Node) Distance(dist []int32) int32 {
	best := int32(-1)
	for i, x := range r.Nbrs {
		dx := dist[x]
		if dx < 0 {
			continue
		}
		d := dx + r.Weights[i]
		if best < 0 || d < best {
			best = d
		}
	}
	return best
}

// Result of redundant-node detection.
type Result struct {
	Nodes []Node
	// Marked[v] is true for removed nodes.
	Marked []bool
}

// MaxDegree bounds the degree of candidate nodes; the paper considers 3 and
// 4. Raising it trades preprocessing time for more removals.
const MaxDegree = 4

// Find detects an independent set of redundant nodes of degree 3..MaxDegree
// in the weighted graph g. Nodes listed in `protected` (e.g. nodes another
// stage already depends on) are never marked. Find is FindWorkers at one
// worker — every worker count yields the same Result.
func Find(g *graph.WGraph, protected []bool) *Result { return FindWorkers(g, protected, 1) }

// FindWorkers splits detection into two phases: the expensive per-node
// local test (the neighbourhood Floyd–Warshall plus 2-connectivity check)
// is embarrassingly parallel and runs over all candidates at once, then a
// cheap sequential greedy sweep in ascending id order selects the
// independent set — the same set the one-pass sequential scan picks,
// because the local test never depends on the marks. Bit-identical output
// for every worker count.
func FindWorkers(g *graph.WGraph, protected []bool, workers int) *Result {
	n := g.NumNodes()
	workers = par.Workers(workers)
	res := &Result{Marked: make([]bool, n)}
	cand := make([]bool, n)
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			id := graph.NodeID(v)
			deg := g.Degree(id)
			if deg < 3 || deg > MaxDegree {
				continue
			}
			if protected != nil && protected[v] {
				continue
			}
			cand[v] = isRedundant(g, id)
		}
	})
	for v := 0; v < n; v++ {
		if !cand[v] {
			continue
		}
		id := graph.NodeID(v)
		// Independence: skip if any neighbour is already marked.
		nbrs := g.Neighbors(id)
		skip := false
		for _, x := range nbrs {
			if res.Marked[x] {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		res.Marked[v] = true
		res.Nodes = append(res.Nodes, Node{
			V:       id,
			Nbrs:    append([]graph.NodeID(nil), nbrs...),
			Weights: append([]int32(nil), g.Weights(id)...),
		})
	}
	return res
}

// isRedundant checks two conditions.
//
// Detour: for every pair of neighbours (x, y) of v there must be a path
// from x to y inside the subgraph induced by N(v) whose length is at most
// w(x,v)+w(v,y) — then no shortest path needs v. The neighbourhood has at
// most MaxDegree nodes, so a tiny Floyd–Warshall over it is cheapest.
//
// Biconnectivity: the neighbour-induced subgraph must itself be
// 2-vertex-connected. A 2-connected subgraph lies inside a single
// biconnected component of any supergraph, which is what lets the
// Cumulative estimator assign the removed node to one block (Fact III.6).
// Without this, a detour that runs through a third neighbour can leave the
// neighbours spread over several blocks once v is gone. On unweighted
// graphs this condition coincides with the paper's: a degree-3 node needs
// mutually adjacent neighbours (a triangle), and a degree-4 neighbourhood
// with every neighbour adjacent to ≥2 others has minimum degree 2 on 4
// vertices, which is always 2-connected.
func isRedundant(g *graph.WGraph, v graph.NodeID) bool {
	nbrs := g.Neighbors(v)
	ws := g.Weights(v)
	k := len(nbrs)
	const inf = int32(1 << 30)
	var d [MaxDegree][MaxDegree]int32
	var adj [MaxDegree][MaxDegree]bool
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i == j {
				d[i][j] = 0
			} else {
				d[i][j] = inf
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if w, ok := g.EdgeWeight(nbrs[i], nbrs[j]); ok {
				if w < d[i][j] {
					d[i][j] = w
					d[j][i] = w
				}
				adj[i][j] = true
				adj[j][i] = true
			}
		}
	}
	if !smallBiconnected(&adj, k) {
		return false
	}
	for m := 0; m < k; m++ {
		for i := 0; i < k; i++ {
			if d[i][m] >= inf {
				continue // avoid inf+inf overflow
			}
			for j := 0; j < k; j++ {
				if d[m][j] < inf && d[i][m]+d[m][j] < d[i][j] {
					d[i][j] = d[i][m] + d[m][j]
				}
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if d[i][j] > ws[i]+ws[j] {
				return false
			}
		}
	}
	return true
}

// smallBiconnected reports whether the k-node graph given by the adjacency
// matrix is 2-vertex-connected: connected, and still connected after
// deleting any single vertex. k is at most MaxDegree, so brute force wins.
func smallBiconnected(adj *[MaxDegree][MaxDegree]bool, k int) bool {
	if k < 3 {
		return false
	}
	connectedWithout := func(skip int) bool {
		start := -1
		count := 0
		for i := 0; i < k; i++ {
			if i != skip {
				count++
				if start < 0 {
					start = i
				}
			}
		}
		var seen [MaxDegree]bool
		var stack [MaxDegree]int
		top := 0
		stack[top] = start
		top++
		seen[start] = true
		reached := 1
		for top > 0 {
			top--
			u := stack[top]
			for w := 0; w < k; w++ {
				if w != skip && !seen[w] && adj[u][w] {
					seen[w] = true
					reached++
					stack[top] = w
					top++
				}
			}
		}
		return reached == count
	}
	if !connectedWithout(-1) {
		return false
	}
	for skip := 0; skip < k; skip++ {
		if !connectedWithout(skip) {
			return false
		}
	}
	return true
}
