package redundant

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bfs"
	"repro/internal/graph"
)

func TestDegree3Triangle(t *testing.T) {
	// Node 0 with neighbours {1,2,3} mutually adjacent (paper Fig. 1(e)),
	// plus extra structure so the neighbours stay.
	g := graph.FromWeightedEdges(6, [][3]int32{
		{0, 1, 1}, {0, 2, 1}, {0, 3, 1},
		{1, 2, 1}, {1, 3, 1}, {2, 3, 1},
		{1, 4, 1}, {2, 5, 1},
	})
	r := Find(g, nil)
	found := false
	for _, n := range r.Nodes {
		if n.V == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("node 0 should be redundant; got %+v", r.Nodes)
	}
}

func TestDegree4CycleNeighbourhood(t *testing.T) {
	// Node 0 adjacent to 4-cycle 1-2-3-4 (paper Fig. 1(f)): each
	// neighbour adjacent to exactly two other neighbours.
	g := graph.FromWeightedEdges(7, [][3]int32{
		{0, 1, 1}, {0, 2, 1}, {0, 3, 1}, {0, 4, 1},
		{1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {4, 1, 1},
		{1, 5, 1}, {3, 6, 1},
	})
	r := Find(g, nil)
	found := false
	for _, n := range r.Nodes {
		if n.V == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("node 0 should be redundant; got %+v", r.Nodes)
	}
}

func TestNotRedundantOnPath(t *testing.T) {
	// Star centre: no neighbour interconnection → not redundant.
	g := graph.FromWeightedEdges(4, [][3]int32{{0, 1, 1}, {0, 2, 1}, {0, 3, 1}})
	r := Find(g, nil)
	if len(r.Nodes) != 0 {
		t.Fatalf("star centre must not be redundant: %+v", r.Nodes)
	}
}

func TestWeightedDetour(t *testing.T) {
	// Triangle neighbours but the detour edges are heavy: 0-x edges weight
	// 1, x-y edges weight 5 > 1+1 → 0 is NOT redundant.
	g := graph.FromWeightedEdges(5, [][3]int32{
		{0, 1, 1}, {0, 2, 1}, {0, 3, 1},
		{1, 2, 5}, {1, 3, 5}, {2, 3, 5},
		{1, 4, 1},
	})
	r := Find(g, nil)
	for _, nd := range r.Nodes {
		// Node 0's neighbour pairs need detours of length 5 > 1+1.
		// (Node 2 is legitimately redundant: its heavy v-edges make even
		// the weight-5 detours acceptable.)
		if nd.V == 0 {
			t.Fatalf("heavy detours must block redundancy of node 0: %+v", r.Nodes)
		}
	}
	// With detour weight exactly 2 the condition holds with equality.
	g2 := graph.FromWeightedEdges(5, [][3]int32{
		{0, 1, 1}, {0, 2, 1}, {0, 3, 1},
		{1, 2, 2}, {1, 3, 2}, {2, 3, 2},
		{1, 4, 1},
	})
	r2 := Find(g2, nil)
	if len(r2.Nodes) != 1 || r2.Nodes[0].V != 0 {
		t.Fatalf("equality detours should allow redundancy: %+v", r2.Nodes)
	}
}

func TestIndependence(t *testing.T) {
	// Two adjacent redundant candidates inside K5: only an independent
	// subset may be marked.
	b := graph.NewWBuilder(5)
	for i := int32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			_ = b.AddEdge(i, j, 1)
		}
	}
	g := b.Build()
	r := Find(g, nil)
	for _, n := range r.Nodes {
		for _, x := range n.Nbrs {
			if r.Marked[x] {
				t.Fatalf("adjacent nodes %d and %d both marked", n.V, x)
			}
		}
	}
}

func TestProtected(t *testing.T) {
	g := graph.FromWeightedEdges(6, [][3]int32{
		{0, 1, 1}, {0, 2, 1}, {0, 3, 1},
		{1, 2, 1}, {1, 3, 1}, {2, 3, 1},
		{1, 4, 1}, {2, 5, 1},
	})
	prot := make([]bool, 6)
	prot[0] = true
	r := Find(g, prot)
	for _, n := range r.Nodes {
		if n.V == 0 {
			t.Fatal("protected node was marked")
		}
	}
}

// Property: removing the marked nodes never changes distances between the
// remaining nodes, and Algorithm 3's recovery is exact.
func TestRemovalPreservesDistances(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 5
		b := graph.NewWBuilder(n)
		for i := 1; i < n; i++ {
			_ = b.AddEdge(int32(rng.Intn(i)), int32(i), int32(rng.Intn(3)+1))
		}
		for i := 0; i < 3*n; i++ {
			_ = b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), int32(rng.Intn(3)+1))
		}
		g := b.Build()
		r := Find(g, nil)
		if len(r.Nodes) == 0 {
			return true
		}
		keep := make([]bool, n)
		for i := range keep {
			keep[i] = !r.Marked[i]
		}
		sub, toOld, toNew := graph.WSubgraph(g, keep)
		apFull := bfs.AllPairsW(g)
		apSub := bfs.AllPairsW(sub)
		for u := 0; u < sub.NumNodes(); u++ {
			for v := 0; v < sub.NumNodes(); v++ {
				if apSub[u][v] != apFull[toOld[u]][toOld[v]] {
					return false
				}
			}
		}
		// Recovery: for every kept source, the redundant nodes' distances
		// follow from neighbours.
		for srcSub := 0; srcSub < sub.NumNodes(); srcSub++ {
			src := toOld[srcSub]
			distFull := make([]int32, n)
			for v := 0; v < n; v++ {
				distFull[v] = -1
			}
			for v := 0; v < sub.NumNodes(); v++ {
				distFull[toOld[v]] = apSub[srcSub][v]
			}
			for i := range r.Nodes {
				nd := &r.Nodes[i]
				if got := nd.Distance(distFull); got != apFull[src][nd.V] {
					return false
				}
			}
			_ = toNew
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
