package graph

import (
	"sort"

	"repro/internal/par"
)

// This file holds the parallel CSR construction shared by every stage of
// the reduction pipeline: induced-subgraph extraction and chain
// contraction, built as three data-parallel passes over the CSR arrays —
// a per-node kept-neighbour count, a prefix sum turning counts into
// offsets, and a per-node adjacency copy. The node renumbering is monotone
// (kept nodes keep their relative order), so filtered adjacency lists stay
// sorted and no per-node sort is needed, unlike the Builder path. All
// passes use static block schedules and associative reductions, so the
// output is bit-identical for every worker count.

// WEdge is an explicit weighted edge handed to the contraction builders
// (the contracted stand-in for a removed chain).
type WEdge struct {
	U, V NodeID
	W    int32
}

// CompactIDs fills toNew with the dense renumbering of the kept nodes —
// toNew[v] = rank of v among keep==true nodes, -1 for dropped ones — and
// returns the kept count. toNew must have len(keep) entries. The
// renumbering is monotone, which is what keeps filtered CSR adjacency
// sorted without re-sorting.
func CompactIDs(keep []bool, toNew []NodeID, workers int) int {
	n := len(keep)
	workers = par.Workers(workers)
	if workers == 1 || n < 4096 {
		kept := 0
		for v := 0; v < n; v++ {
			if keep[v] {
				toNew[v] = NodeID(kept)
				kept++
			} else {
				toNew[v] = -1
			}
		}
		return kept
	}
	nb := par.NumBlocks(n, workers)
	sums := make([]int64, nb)
	par.ForBlocks(n, workers, func(b, lo, hi int) {
		cnt := int64(0)
		for v := lo; v < hi; v++ {
			if keep[v] {
				cnt++
			}
		}
		sums[b] = cnt
	})
	var total int64
	for b := range sums {
		s := sums[b]
		sums[b] = total
		total += s
	}
	par.ForBlocks(n, workers, func(b, lo, hi int) {
		id := NodeID(sums[b])
		for v := lo; v < hi; v++ {
			if keep[v] {
				toNew[v] = id
				id++
			} else {
				toNew[v] = -1
			}
		}
	})
	return int(total)
}

// SubgraphInto extracts the subgraph induced by keep in parallel, writing
// the old→new renumbering into toNew (len g.NumNodes(), -1 for dropped
// nodes). Output is bit-identical to Subgraph for every worker count.
func SubgraphInto(g *Graph, keep []bool, toNew []NodeID, workers int) *Graph {
	n := g.NumNodes()
	kept := CompactIDs(keep, toNew, workers)
	offsets := make([]int64, kept+1)
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			nv := toNew[v]
			if nv < 0 {
				continue
			}
			cnt := int64(0)
			for _, w := range g.Neighbors(NodeID(v)) {
				if keep[w] {
					cnt++
				}
			}
			offsets[nv+1] = cnt
		}
	})
	total := par.PrefixSum(offsets, workers)
	adj := make([]NodeID, total)
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			nv := toNew[v]
			if nv < 0 {
				continue
			}
			out := offsets[nv]
			for _, w := range g.Neighbors(NodeID(v)) {
				if nw := toNew[w]; nw >= 0 {
					adj[out] = nw
					out++
				}
			}
		}
	})
	return &Graph{offsets: offsets, adj: adj}
}

// WSubgraphInto is SubgraphInto for weighted graphs.
func WSubgraphInto(g *WGraph, keep []bool, toNew []NodeID, workers int) *WGraph {
	n := g.NumNodes()
	kept := CompactIDs(keep, toNew, workers)
	offsets := make([]int64, kept+1)
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			nv := toNew[v]
			if nv < 0 {
				continue
			}
			cnt := int64(0)
			for _, w := range g.Neighbors(NodeID(v)) {
				if keep[w] {
					cnt++
				}
			}
			offsets[nv+1] = cnt
		}
	})
	total := par.PrefixSum(offsets, workers)
	adj := make([]NodeID, total)
	wts := make([]int32, total)
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			nv := toNew[v]
			if nv < 0 {
				continue
			}
			out := offsets[nv]
			nbrs := g.Neighbors(NodeID(v))
			ws := g.Weights(NodeID(v))
			for i, w := range nbrs {
				if nw := toNew[w]; nw >= 0 {
					adj[out] = nw
					wts[out] = ws[i]
					out++
				}
			}
		}
	})
	return &WGraph{offsets: offsets, adj: adj, weights: wts}
}

// extEntry is one directed contracted-edge entry in new-id space.
type extEntry struct {
	from, to NodeID
	w        int32
}

// buildExtEntries remaps the extra edges into new-id space, doubles them
// into directed entries and sorts by (from, to, w) so that per-node
// segments are sorted and the lightest parallel duplicate comes first —
// exactly the WBuilder dedup rule. Extra edges are few (one per contracted
// chain), so this stays sequential and deterministic.
func buildExtEntries(extra []WEdge, toNew []NodeID) []extEntry {
	if len(extra) == 0 {
		return nil
	}
	ents := make([]extEntry, 0, 2*len(extra))
	for _, e := range extra {
		u, v := toNew[e.U], toNew[e.V]
		if u < 0 || v < 0 || u == v {
			continue // self loops never carry shortest paths; endpoints must be kept
		}
		ents = append(ents, extEntry{u, v, e.W}, extEntry{v, u, e.W})
	}
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].from != ents[j].from {
			return ents[i].from < ents[j].from
		}
		if ents[i].to != ents[j].to {
			return ents[i].to < ents[j].to
		}
		return ents[i].w < ents[j].w
	})
	return ents
}

// extSegment returns the half-open range of ents whose from == v.
func extSegment(ents []extEntry, v NodeID) []extEntry {
	lo := sort.Search(len(ents), func(i int) bool { return ents[i].from >= v })
	hi := sort.Search(len(ents), func(i int) bool { return ents[i].from > v })
	return ents[lo:hi]
}

// mergeCount returns the number of distinct neighbour ids in the union of
// the remapped kept neighbours of old node v and its ext segment.
func mergeCount(nbrs []NodeID, toNew []NodeID, ext []extEntry) int64 {
	cnt := int64(0)
	j := 0
	var prev NodeID = -1
	emit := func(id NodeID) {
		if id != prev {
			cnt++
			prev = id
		}
	}
	for _, w := range nbrs {
		nw := toNew[w]
		if nw < 0 {
			continue
		}
		for j < len(ext) && ext[j].to < nw {
			emit(ext[j].to)
			j++
		}
		emit(nw)
		for j < len(ext) && ext[j].to == nw {
			j++
		}
	}
	for j < len(ext) {
		emit(ext[j].to)
		j++
	}
	return cnt
}

// mergeFill writes the merged (neighbour, weight) lists for old node v into
// adj/wts at out, taking the minimum weight when a graph edge and an extra
// edge (or several extra edges) connect the same pair.
func mergeFill(nbrs []NodeID, ws []int32, toNew []NodeID, ext []extEntry, adj []NodeID, wts []int32, out int64) {
	j := 0
	flushExtBefore := func(limit NodeID) {
		for j < len(ext) && ext[j].to < limit {
			to, w := ext[j].to, ext[j].w
			j++
			for j < len(ext) && ext[j].to == to {
				j++ // heavier duplicates of the same contracted pair
			}
			adj[out] = to
			wts[out] = w
			out++
		}
	}
	for i, nb := range nbrs {
		nw := toNew[nb]
		if nw < 0 {
			continue
		}
		flushExtBefore(nw)
		w := ws[i]
		for j < len(ext) && ext[j].to == nw {
			if ext[j].w < w {
				w = ext[j].w
			}
			j++
		}
		adj[out] = nw
		wts[out] = w
		out++
	}
	flushExtBefore(NodeID(len(toNew)))
}

// ones returns an all-ones weight view of length n for contracting an
// unweighted graph, grown lazily in the caller's per-worker buffer.
func ones(n int, buf *[]int32) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
		for i := range *buf {
			(*buf)[i] = 1
		}
	}
	return (*buf)[:n]
}

// ContractInto builds the weighted graph over the kept nodes of the simple
// graph g: every kept-kept edge survives with weight 1 and the extra edges
// (contracted chains, in g's ids, both endpoints kept) are merged in,
// keeping the lightest of each parallel group — the WBuilder rule, built
// directly in CSR form. toNew is filled like SubgraphInto. Bit-identical
// output for every worker count.
func ContractInto(g *Graph, keep []bool, toNew []NodeID, extra []WEdge, workers int) *WGraph {
	n := g.NumNodes()
	kept := CompactIDs(keep, toNew, workers)
	ents := buildExtEntries(extra, toNew)
	offsets := make([]int64, kept+1)
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			nv := toNew[v]
			if nv < 0 {
				continue
			}
			offsets[nv+1] = mergeCount(g.Neighbors(NodeID(v)), toNew, extSegment(ents, nv))
		}
	})
	total := par.PrefixSum(offsets, workers)
	adj := make([]NodeID, total)
	wts := make([]int32, total)
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		var localOnes []int32
		for v := lo; v < hi; v++ {
			nv := toNew[v]
			if nv < 0 {
				continue
			}
			nbrs := g.Neighbors(NodeID(v))
			mergeFill(nbrs, ones(len(nbrs), &localOnes), toNew, extSegment(ents, nv), adj, wts, offsets[nv])
		}
	})
	return &WGraph{offsets: offsets, adj: adj, weights: wts}
}

// WContractInto is ContractInto over an already-weighted graph: kept-kept
// edges keep their weights and extra edges merge in under the min-weight
// parallel rule.
func WContractInto(g *WGraph, keep []bool, toNew []NodeID, extra []WEdge, workers int) *WGraph {
	n := g.NumNodes()
	kept := CompactIDs(keep, toNew, workers)
	ents := buildExtEntries(extra, toNew)
	offsets := make([]int64, kept+1)
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			nv := toNew[v]
			if nv < 0 {
				continue
			}
			offsets[nv+1] = mergeCount(g.Neighbors(NodeID(v)), toNew, extSegment(ents, nv))
		}
	})
	total := par.PrefixSum(offsets, workers)
	adj := make([]NodeID, total)
	wts := make([]int32, total)
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			nv := toNew[v]
			if nv < 0 {
				continue
			}
			mergeFill(g.Neighbors(NodeID(v)), g.Weights(NodeID(v)), toNew, extSegment(ents, nv), adj, wts, offsets[nv])
		}
	})
	return &WGraph{offsets: offsets, adj: adj, weights: wts}
}
