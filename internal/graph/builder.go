package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces a normalised Graph. It tolerates
// raw real-world input: duplicate edges, both orientations of the same edge,
// and self loops are all silently dropped, matching the paper's
// preprocessing ("each graph is made simple undirected, unweighted ... by
// removing self loops, multiple edges", Section IV-B).
type Builder struct {
	n     int
	us    []NodeID
	vs    []NodeID
	fixed bool // n was set explicitly and must not grow
}

// NewBuilder returns a builder for a graph with n nodes. Edges touching
// nodes outside [0, n) are rejected by AddEdge.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, fixed: true}
}

// NewGrowingBuilder returns a builder whose node count is the largest
// endpoint seen plus one. Useful when streaming unknown edge lists.
func NewGrowingBuilder() *Builder {
	return &Builder{}
}

// AddEdge records the undirected edge {u, v}. Self loops are dropped.
func (b *Builder) AddEdge(u, v NodeID) error {
	if u < 0 || v < 0 {
		return fmt.Errorf("graph: negative node id in edge {%d,%d}", u, v)
	}
	if b.fixed && (int(u) >= b.n || int(v) >= b.n) {
		return fmt.Errorf("graph: edge {%d,%d} outside fixed node range [0,%d)", u, v, b.n)
	}
	if !b.fixed {
		if int(u) >= b.n {
			b.n = int(u) + 1
		}
		if int(v) >= b.n {
			b.n = int(v) + 1
		}
	}
	if u == v {
		return nil // self loop: normalised away
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	return nil
}

// NumNodes returns the current node count.
func (b *Builder) NumNodes() int { return b.n }

// Build produces the CSR graph. The builder can be reused afterwards.
func (b *Builder) Build() *Graph {
	n := b.n
	deg := make([]int64, n+1)
	for i := range b.us {
		deg[b.us[i]+1]++
		deg[b.vs[i]+1]++
	}
	for v := 0; v < n; v++ {
		deg[v+1] += deg[v]
	}
	adj := make([]NodeID, deg[n])
	cursor := make([]int64, n)
	for i := range b.us {
		u, v := b.us[i], b.vs[i]
		adj[deg[u]+cursor[u]] = v
		cursor[u]++
		adj[deg[v]+cursor[v]] = u
		cursor[v]++
	}
	// Sort each adjacency list and strip duplicates in place.
	out := adj[:0]
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		lo, hi := deg[v], deg[v+1]
		nbrs := adj[lo:hi]
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		offsets[v] = int64(len(out))
		var prev NodeID = -1
		for _, w := range nbrs {
			if w != prev {
				out = append(out, w)
				prev = w
			}
		}
	}
	offsets[n] = int64(len(out))
	return &Graph{offsets: offsets, adj: out[:len(out):len(out)]}
}

// FromEdges builds a graph with n nodes from an explicit edge list. It is a
// convenience wrapper used heavily by tests.
func FromEdges(n int, edges [][2]NodeID) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			panic(err) // programmer error in literal edge list
		}
	}
	return b.Build()
}

// WBuilder accumulates weighted edges and produces a WGraph. When parallel
// edges are added, only the minimum-weight one is kept: heavier parallel
// edges never carry shortest paths, which is exactly the Type-3/Type-4
// redundant-chain rule after contraction.
type WBuilder struct {
	n  int
	us []NodeID
	vs []NodeID
	ws []int32
}

// NewWBuilder returns a weighted builder for a graph with n nodes.
func NewWBuilder(n int) *WBuilder { return &WBuilder{n: n} }

// AddEdge records the undirected weighted edge {u, v}. Weights must be
// positive; self loops are dropped (a self loop never carries a shortest
// path).
func (b *WBuilder) AddEdge(u, v NodeID, w int32) error {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		return fmt.Errorf("graph: edge {%d,%d} outside node range [0,%d)", u, v, b.n)
	}
	if w <= 0 {
		return fmt.Errorf("graph: edge {%d,%d} has non-positive weight %d", u, v, w)
	}
	if u == v {
		return nil
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	b.ws = append(b.ws, w)
	return nil
}

// Build produces the weighted CSR graph, dropping all but the lightest of
// each group of parallel edges.
func (b *WBuilder) Build() *WGraph {
	n := b.n
	deg := make([]int64, n+1)
	for i := range b.us {
		deg[b.us[i]+1]++
		deg[b.vs[i]+1]++
	}
	for v := 0; v < n; v++ {
		deg[v+1] += deg[v]
	}
	adj := make([]NodeID, deg[n])
	wts := make([]int32, deg[n])
	cursor := make([]int64, n)
	put := func(from, to NodeID, w int32) {
		idx := deg[from] + cursor[from]
		adj[idx] = to
		wts[idx] = w
		cursor[from]++
	}
	for i := range b.us {
		put(b.us[i], b.vs[i], b.ws[i])
		put(b.vs[i], b.us[i], b.ws[i])
	}
	outAdj := adj[:0]
	outW := wts[:0]
	offsets := make([]int64, n+1)
	type nw struct {
		v NodeID
		w int32
	}
	var scratch []nw
	for v := 0; v < n; v++ {
		lo, hi := deg[v], deg[v+1]
		scratch = scratch[:0]
		for i := lo; i < hi; i++ {
			scratch = append(scratch, nw{adj[i], wts[i]})
		}
		sort.Slice(scratch, func(i, j int) bool {
			if scratch[i].v != scratch[j].v {
				return scratch[i].v < scratch[j].v
			}
			return scratch[i].w < scratch[j].w
		})
		offsets[v] = int64(len(outAdj))
		var prev NodeID = -1
		for _, e := range scratch {
			if e.v != prev {
				outAdj = append(outAdj, e.v)
				outW = append(outW, e.w)
				prev = e.v
			}
		}
	}
	offsets[n] = int64(len(outAdj))
	return &WGraph{
		offsets: offsets,
		adj:     outAdj[:len(outAdj):len(outAdj)],
		weights: outW[:len(outW):len(outW)],
	}
}

// FromWeightedEdges builds a weighted graph from an explicit edge list;
// convenience wrapper for tests.
func FromWeightedEdges(n int, edges [][3]int32) *WGraph {
	b := NewWBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1], e[2]); err != nil {
			panic(err)
		}
	}
	return b.Build()
}
