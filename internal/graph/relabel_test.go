package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraph builds a random simple graph with n nodes and ~3n edge
// attempts.
func randomGraph(rng *rand.Rand, n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < 3*n; i++ {
		_ = b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	return b.Build()
}

func randomWGraph(rng *rand.Rand, n int) *WGraph {
	b := NewWBuilder(n)
	for i := 0; i < 3*n; i++ {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		_ = b.AddEdge(u, v, int32(rng.Intn(7)+1))
	}
	return b.Build()
}

func TestParseRelabelMode(t *testing.T) {
	cases := []struct {
		in   string
		want RelabelMode
		ok   bool
	}{
		{"", RelabelNone, true},
		{"none", RelabelNone, true},
		{"off", RelabelNone, true},
		{"degree", RelabelDegree, true},
		{"deg", RelabelDegree, true},
		{"hub", RelabelDegree, true},
		{"bfs", RelabelBFS, true},
		{"rcm", RelabelBFS, true},
		{"bogus", RelabelNone, false},
	}
	for _, c := range cases {
		got, err := ParseRelabelMode(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseRelabelMode(%q) = (%v, %v), want (%v, ok=%v)", c.in, got, err, c.want, c.ok)
		}
	}
	for _, m := range []RelabelMode{RelabelNone, RelabelDegree, RelabelBFS} {
		back, err := ParseRelabelMode(m.String())
		if err != nil || back != m {
			t.Errorf("round trip %v via %q failed: (%v, %v)", m, m.String(), back, err)
		}
	}
}

// checkPermutation asserts Perm and Inv are inverse permutations of [0, n).
func checkPermutation(t *testing.T, r *Relabeling, n int) {
	t.Helper()
	if len(r.Perm) != n || len(r.Inv) != n {
		t.Fatalf("permutation lengths (%d, %d), want %d", len(r.Perm), len(r.Inv), n)
	}
	for v := 0; v < n; v++ {
		p := r.Perm[v]
		if p < 0 || int(p) >= n {
			t.Fatalf("Perm[%d] = %d out of range", v, p)
		}
		if r.Inv[p] != NodeID(v) {
			t.Fatalf("Inv[Perm[%d]] = %d, want %d", v, r.Inv[p], v)
		}
	}
}

// Property: relabeling under either mode is a permutation round trip that
// preserves the edge set (and passes Validate) on random graphs.
func TestRelabelPreservesGraph(t *testing.T) {
	for _, mode := range []RelabelMode{RelabelDegree, RelabelBFS} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				n := rng.Intn(60) + 2
				g := randomGraph(rng, n)
				g2, r := Relabel(g, mode, 4)
				checkPermutation(t, r, n)
				if err := g2.Validate(); err != nil {
					t.Fatalf("relabeled graph invalid: %v", err)
				}
				if g2.NumEdges() != g.NumEdges() {
					return false
				}
				ok := true
				g.Edges(func(u, v NodeID) {
					if !g2.HasEdge(r.Perm[u], r.Perm[v]) {
						ok = false
					}
				})
				return ok
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: weighted relabeling carries each edge's weight through the
// renumbering.
func TestRelabelWPreservesWeights(t *testing.T) {
	for _, mode := range []RelabelMode{RelabelDegree, RelabelBFS} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				n := rng.Intn(50) + 2
				g := randomWGraph(rng, n)
				g2, r := RelabelW(g, mode, 3)
				checkPermutation(t, r, n)
				if err := g2.Validate(); err != nil {
					t.Fatalf("relabeled wgraph invalid: %v", err)
				}
				ok := true
				g.Edges(func(u, v NodeID, w int32) {
					got, has := g2.EdgeWeight(r.Perm[u], r.Perm[v])
					if !has || got != w {
						ok = false
					}
				})
				return ok
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// RelabelNone is the identity and allocates nothing.
func TestRelabelNoneIsIdentity(t *testing.T) {
	g := pathGraph(5)
	g2, r := Relabel(g, RelabelNone, 2)
	if g2 != g || r != nil {
		t.Fatalf("RelabelNone returned (%p, %v), want the input graph and nil", g2, r)
	}
	wg := g.ToWeighted()
	wg2, wr := RelabelW(wg, RelabelNone, 2)
	if wg2 != wg || wr != nil {
		t.Fatalf("RelabelW none returned (%p, %v), want the input graph and nil", wg2, wr)
	}
}

// The degree ordering sorts new ids by descending degree with ascending
// old-id tie-breaks.
func TestDegreeOrderSorts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 80)
	g2, r := Relabel(g, RelabelDegree, 4)
	for nv := 1; nv < g2.NumNodes(); nv++ {
		dPrev, d := g2.Degree(NodeID(nv-1)), g2.Degree(NodeID(nv))
		if dPrev < d {
			t.Fatalf("degree order violated at new id %d: deg %d before %d", nv, dPrev, d)
		}
		if dPrev == d && r.Inv[nv-1] >= r.Inv[nv] {
			t.Fatalf("tie-break violated at new id %d: old %d before %d", nv, r.Inv[nv-1], r.Inv[nv])
		}
	}
}

// The BFS ordering starts at the min-degree node (lowest id on ties); on a
// path graph it yields a bandwidth-1 numbering (every edge connects
// consecutive new ids at most 2 apart, exactly the CM property).
func TestBFSOrderOnPath(t *testing.T) {
	g := pathGraph(10)
	g2, r := Relabel(g, RelabelBFS, 1)
	if r.Inv[0] != 0 && r.Inv[0] != 9 {
		t.Fatalf("BFS root = %d, want an endpoint of the path", r.Inv[0])
	}
	g2.Edges(func(u, v NodeID) {
		d := int(v - u)
		if d < 0 {
			d = -d
		}
		if d > 2 {
			t.Fatalf("path relabeling has bandwidth %d edge {%d,%d}", d, u, v)
		}
	})
}

// Property: the permutation and the rebuilt CSR are bit-identical at every
// worker count.
func TestRelabelWorkerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 300)
	wg := randomWGraph(rng, 300)
	for _, mode := range []RelabelMode{RelabelDegree, RelabelBFS} {
		ref, rRef := Relabel(g, mode, 1)
		wRef, _ := RelabelW(wg, mode, 1)
		for _, workers := range []int{2, 3, 4, 7, 8} {
			got, r := Relabel(g, mode, workers)
			for v := range rRef.Perm {
				if r.Perm[v] != rRef.Perm[v] {
					t.Fatalf("mode %v workers %d: Perm[%d] = %d, want %d", mode, workers, v, r.Perm[v], rRef.Perm[v])
				}
			}
			for v := 0; v < ref.NumNodes(); v++ {
				a, b := ref.Neighbors(NodeID(v)), got.Neighbors(NodeID(v))
				if len(a) != len(b) {
					t.Fatalf("mode %v workers %d: node %d degree differs", mode, workers, v)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("mode %v workers %d: adjacency of %d differs", mode, workers, v)
					}
				}
			}
			wGot, _ := RelabelW(wg, mode, workers)
			for v := 0; v < wRef.NumNodes(); v++ {
				a, b := wGot.Neighbors(NodeID(v)), wRef.Neighbors(NodeID(v))
				wa, wb := wGot.Weights(NodeID(v)), wRef.Weights(NodeID(v))
				for i := range a {
					if a[i] != b[i] || wa[i] != wb[i] {
						t.Fatalf("mode %v workers %d: weighted adjacency of %d differs", mode, workers, v)
					}
				}
			}
		}
	}
}
