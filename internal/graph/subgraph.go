package graph

// Subgraph extracts the subgraph of g induced by the nodes where keep[v] is
// true. It returns the new graph, a mapping newID -> oldID, and a mapping
// oldID -> newID (-1 for removed nodes). Edges between kept nodes survive.
// It is the sequential convenience form of SubgraphInto.
func Subgraph(g *Graph, keep []bool) (sub *Graph, toOld []NodeID, toNew []NodeID) {
	toNew = make([]NodeID, g.NumNodes())
	sub = SubgraphInto(g, keep, toNew, 1)
	return sub, invertCompact(toNew, sub.NumNodes()), toNew
}

// WSubgraph is Subgraph for weighted graphs.
func WSubgraph(g *WGraph, keep []bool) (sub *WGraph, toOld []NodeID, toNew []NodeID) {
	toNew = make([]NodeID, g.NumNodes())
	sub = WSubgraphInto(g, keep, toNew, 1)
	return sub, invertCompact(toNew, sub.NumNodes()), toNew
}

// invertCompact turns a compact old→new renumbering into its newID→oldID
// inverse.
func invertCompact(toNew []NodeID, kept int) []NodeID {
	toOld := make([]NodeID, kept)
	for v, nv := range toNew {
		if nv >= 0 {
			toOld[nv] = NodeID(v)
		}
	}
	return toOld
}

// DegreeStats summarises the degree distribution of a graph; Table I's
// structural columns are derived from these plus the reduction registries.
type DegreeStats struct {
	Min, Max   int
	Mean       float64
	CountDeg1  int // nodes of degree 1
	CountDeg2  int // nodes of degree 2
	CountDeg34 int // nodes of degree 3 or 4
}

// Degrees computes degree statistics for g.
func Degrees(g *Graph) DegreeStats {
	n := g.NumNodes()
	if n == 0 {
		return DegreeStats{}
	}
	s := DegreeStats{Min: g.Degree(0)}
	total := 0
	for v := 0; v < n; v++ {
		d := g.Degree(NodeID(v))
		total += d
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
		switch {
		case d == 1:
			s.CountDeg1++
		case d == 2:
			s.CountDeg2++
		case d == 3 || d == 4:
			s.CountDeg34++
		}
	}
	s.Mean = float64(total) / float64(n)
	return s
}
