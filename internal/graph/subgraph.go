package graph

// Subgraph extracts the subgraph of g induced by the nodes where keep[v] is
// true. It returns the new graph, a mapping newID -> oldID, and a mapping
// oldID -> newID (-1 for removed nodes). Edges between kept nodes survive.
func Subgraph(g *Graph, keep []bool) (sub *Graph, toOld []NodeID, toNew []NodeID) {
	n := g.NumNodes()
	toNew = make([]NodeID, n)
	for v := 0; v < n; v++ {
		if keep[v] {
			toNew[v] = NodeID(len(toOld))
			toOld = append(toOld, NodeID(v))
		} else {
			toNew[v] = -1
		}
	}
	b := NewBuilder(len(toOld))
	g.Edges(func(u, v NodeID) {
		if keep[u] && keep[v] {
			_ = b.AddEdge(toNew[u], toNew[v])
		}
	})
	return b.Build(), toOld, toNew
}

// WSubgraph is Subgraph for weighted graphs.
func WSubgraph(g *WGraph, keep []bool) (sub *WGraph, toOld []NodeID, toNew []NodeID) {
	n := g.NumNodes()
	toNew = make([]NodeID, n)
	for v := 0; v < n; v++ {
		if keep[v] {
			toNew[v] = NodeID(len(toOld))
			toOld = append(toOld, NodeID(v))
		} else {
			toNew[v] = -1
		}
	}
	b := NewWBuilder(len(toOld))
	g.Edges(func(u, v NodeID, w int32) {
		if keep[u] && keep[v] {
			_ = b.AddEdge(toNew[u], toNew[v], w)
		}
	})
	return b.Build(), toOld, toNew
}

// DegreeStats summarises the degree distribution of a graph; Table I's
// structural columns are derived from these plus the reduction registries.
type DegreeStats struct {
	Min, Max   int
	Mean       float64
	CountDeg1  int // nodes of degree 1
	CountDeg2  int // nodes of degree 2
	CountDeg34 int // nodes of degree 3 or 4
}

// Degrees computes degree statistics for g.
func Degrees(g *Graph) DegreeStats {
	n := g.NumNodes()
	if n == 0 {
		return DegreeStats{}
	}
	s := DegreeStats{Min: g.Degree(0)}
	total := 0
	for v := 0; v < n; v++ {
		d := g.Degree(NodeID(v))
		total += d
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
		switch {
		case d == 1:
			s.CountDeg1++
		case d == 2:
			s.CountDeg2++
		case d == 3 || d == 4:
			s.CountDeg34++
		}
	}
	s.Mean = float64(total) / float64(n)
	return s
}
