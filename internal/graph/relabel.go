package graph

import (
	"fmt"
	"sort"

	"repro/internal/par"
)

// This file implements cache-aware CSR relabeling: a vertex renumbering
// chosen for memory locality, plus the parallel rebuild of the CSR arrays
// under that renumbering. BFS-per-source workloads stream the adjacency of
// every frontier node; when frontier neighbours live close together in the
// adjacency array, those streams hit cache lines that are already resident.
// Two orderings are provided:
//
//   - RelabelDegree: degree-descending. Hubs — the nodes every traversal
//     touches first and most often — are packed at the front of the arrays,
//     so the hot working set of a scale-free graph fits in cache.
//   - RelabelBFS: BFS order from a min-degree root with degree-ascending
//     tie-breaks (Cuthill–McKee style). Consecutive new ids are graph
//     neighbours, which compresses the CSR bandwidth; frontier expansion
//     then touches near-contiguous index ranges.
//
// Orderings are pure permutations: the relabeled graph is isomorphic to the
// input, so BFS/SSSP distances are invariant under the renumbering and every
// estimator that maps its sources through Perm and its distance rows back
// through Inv produces bit-identical output to an unrelabeled run.
//
// The rebuild (offset scatter, prefix sum, adjacency fill + per-node sort)
// is data-parallel over the par helpers with deterministic block schedules.
// The degree ordering is a fully parallel counting sort. The BFS ordering's
// degree keys are computed in parallel; the sweep itself is sequential
// because the visit order *is* the output.

// RelabelMode selects the vertex ordering used to rebuild a CSR for memory
// locality before the traversal phase.
type RelabelMode int

const (
	// RelabelNone keeps the input ordering (no rebuild, zero cost).
	RelabelNone RelabelMode = iota
	// RelabelDegree renumbers by descending degree, ties by ascending old
	// id — packs hubs first; best for scale-free (web/social) graphs.
	RelabelDegree
	// RelabelBFS renumbers in BFS visit order from a minimum-degree root,
	// neighbours visited degree-ascending (Cuthill–McKee style) — best for
	// low-diameter locality and mesh-like graphs.
	RelabelBFS
)

// String returns the flag spelling of the mode.
func (m RelabelMode) String() string {
	switch m {
	case RelabelNone:
		return "none"
	case RelabelDegree:
		return "degree"
	case RelabelBFS:
		return "bfs"
	default:
		return fmt.Sprintf("RelabelMode(%d)", int(m))
	}
}

// ParseRelabelMode parses a flag/query spelling of a relabel mode.
func ParseRelabelMode(s string) (RelabelMode, error) {
	switch s {
	case "", "none", "off":
		return RelabelNone, nil
	case "degree", "deg", "hub":
		return RelabelDegree, nil
	case "bfs", "rcm", "cm":
		return RelabelBFS, nil
	}
	return RelabelNone, fmt.Errorf("graph: unknown relabel mode %q (want none, degree or bfs)", s)
}

// Relabeling is a vertex renumbering: Perm[old] = new, Inv[new] = old.
// Both slices have one entry per node and are inverse permutations of each
// other.
type Relabeling struct {
	Perm []NodeID
	Inv  []NodeID
}

// Relabel returns g rebuilt under the given ordering together with the
// permutation that produced it. RelabelNone returns (g, nil) unchanged.
// Output is bit-identical for every worker count.
func Relabel(g *Graph, mode RelabelMode, workers int) (*Graph, *Relabeling) {
	r := orderOf(g.offsets, g.adj, mode, workers)
	if r == nil {
		return g, nil
	}
	return applyPerm(g, r, workers), r
}

// RelabelW is Relabel for weighted graphs; edge weights follow their edges
// through the renumbering.
func RelabelW(g *WGraph, mode RelabelMode, workers int) (*WGraph, *Relabeling) {
	r := orderOf(g.offsets, g.adj, mode, workers)
	if r == nil {
		return g, nil
	}
	return applyPermW(g, r, workers), r
}

// Order computes the permutation of a relabel mode without rebuilding the
// graph — for callers that want the ordering itself rather than the
// relabeled CSR. Proximity-clustered source batching is the main consumer:
// sorting traversal sources by their RelabelBFS (Cuthill–McKee) position
// groups graph-nearby sources into the same position range, so consecutive
// ≤64-wide batches cover one neighbourhood each. Returns nil for
// RelabelNone. Deterministic at every worker count.
func Order(g *Graph, mode RelabelMode, workers int) *Relabeling {
	return orderOf(g.offsets, g.adj, mode, workers)
}

// OrderW is Order for weighted graphs (the ordering ignores weights — BFS
// hop proximity is what batching wants to cluster by, and chain-contracted
// weights still connect hop-adjacent survivors).
func OrderW(g *WGraph, mode RelabelMode, workers int) *Relabeling {
	return orderOf(g.offsets, g.adj, mode, workers)
}

// orderOf computes the permutation for a mode, or nil for RelabelNone.
func orderOf(offsets []int64, adj []NodeID, mode RelabelMode, workers int) *Relabeling {
	switch mode {
	case RelabelDegree:
		return degreeOrder(offsets, workers)
	case RelabelBFS:
		return bfsOrder(offsets, adj, workers)
	default:
		return nil
	}
}

// degreeOrder is a parallel counting sort by (degree descending, old id
// ascending): per-block degree histograms, a sequential scan over the
// (small) degree axis to turn them into per-block placement cursors, then a
// parallel placement pass. Blocks follow the deterministic ForBlocks
// schedule, so within a degree the ascending-block, ascending-id placement
// reproduces the sequential tie-break exactly at every worker count.
func degreeOrder(offsets []int64, workers int) *Relabeling {
	n := len(offsets) - 1
	if n == 0 {
		return &Relabeling{}
	}
	workers = par.Workers(workers)
	nb := par.NumBlocks(n, workers)

	blockMax := make([]int, nb)
	par.ForBlocks(n, workers, func(b, lo, hi int) {
		m := 0
		for v := lo; v < hi; v++ {
			if d := int(offsets[v+1] - offsets[v]); d > m {
				m = d
			}
		}
		blockMax[b] = m
	})
	maxDeg := 0
	for _, m := range blockMax {
		if m > maxDeg {
			maxDeg = m
		}
	}

	blockCnt := make([][]int64, nb)
	par.ForBlocks(n, workers, func(b, lo, hi int) {
		cnt := make([]int64, maxDeg+1)
		for v := lo; v < hi; v++ {
			cnt[offsets[v+1]-offsets[v]]++
		}
		blockCnt[b] = cnt
	})

	// Turn histograms into placement cursors: degrees descend across the
	// output, blocks (= ascending old id) ascend within a degree.
	var run int64
	for d := maxDeg; d >= 0; d-- {
		for b := 0; b < nb; b++ {
			c := blockCnt[b][d]
			blockCnt[b][d] = run
			run += c
		}
	}

	perm := make([]NodeID, n)
	inv := make([]NodeID, n)
	par.ForBlocks(n, workers, func(b, lo, hi int) {
		next := blockCnt[b]
		for v := lo; v < hi; v++ {
			d := offsets[v+1] - offsets[v]
			p := next[d]
			next[d]++
			perm[v] = NodeID(p)
			inv[p] = NodeID(v)
		}
	})
	return &Relabeling{Perm: perm, Inv: inv}
}

// bfsOrder computes a Cuthill–McKee-style BFS numbering: start from the
// minimum-degree node (lowest id on ties), visit each popped node's
// unvisited neighbours in (degree ascending, id ascending) order, and seed
// the next unvisited min-degree node when a component is exhausted. The
// degree keys and the root priority order are computed in parallel; the
// sweep is sequential because the visit order is the output itself, and a
// sequential sweep is what makes it deterministic.
func bfsOrder(offsets []int64, adj []NodeID, workers int) *Relabeling {
	n := len(offsets) - 1
	if n == 0 {
		return &Relabeling{}
	}
	deg := make([]int32, n)
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			deg[v] = int32(offsets[v+1] - offsets[v])
		}
	})

	roots := make([]NodeID, n)
	for i := range roots {
		roots[i] = NodeID(i)
	}
	sort.Slice(roots, func(i, j int) bool {
		if deg[roots[i]] != deg[roots[j]] {
			return deg[roots[i]] < deg[roots[j]]
		}
		return roots[i] < roots[j]
	})

	perm := make([]NodeID, n)
	for i := range perm {
		perm[i] = -1
	}
	inv := make([]NodeID, 0, n) // doubles as the BFS queue: inv IS the visit order
	nbuf := make([]NodeID, 0, 64)
	rootIdx := 0
	for qi := 0; qi < n; qi++ {
		if qi == len(inv) {
			for perm[roots[rootIdx]] >= 0 {
				rootIdx++
			}
			r := roots[rootIdx]
			perm[r] = NodeID(len(inv))
			inv = append(inv, r)
		}
		v := inv[qi]
		nbuf = nbuf[:0]
		for _, w := range adj[offsets[v]:offsets[v+1]] {
			if perm[w] < 0 {
				nbuf = append(nbuf, w)
			}
		}
		sort.Slice(nbuf, func(i, j int) bool {
			if deg[nbuf[i]] != deg[nbuf[j]] {
				return deg[nbuf[i]] < deg[nbuf[j]]
			}
			return nbuf[i] < nbuf[j]
		})
		for _, w := range nbuf {
			perm[w] = NodeID(len(inv))
			inv = append(inv, w)
		}
	}
	return &Relabeling{Perm: perm, Inv: inv}
}

// applyPerm rebuilds g's CSR under r: degree scatter, prefix sum, then a
// fill pass that iterates *new* ids (sequential writes, the access pattern
// the relabeling exists to create) and re-sorts each adjacency list, since
// a permutation does not preserve neighbour order.
func applyPerm(g *Graph, r *Relabeling, workers int) *Graph {
	n := g.NumNodes()
	offsets, adj := g.offsets, g.adj
	noff := make([]int64, n+1)
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			noff[r.Perm[v]+1] = offsets[v+1] - offsets[v]
		}
	})
	par.PrefixSum(noff, workers)
	nadj := make([]NodeID, len(adj))
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for nv := lo; nv < hi; nv++ {
			v := r.Inv[nv]
			out := noff[nv]
			for _, w := range adj[offsets[v]:offsets[v+1]] {
				nadj[out] = r.Perm[w]
				out++
			}
			sortIDs(nadj[noff[nv]:out])
		}
	})
	return &Graph{offsets: noff, adj: nadj}
}

// applyPermW is applyPerm for weighted graphs; weights travel with their
// edges through the per-node sort.
func applyPermW(g *WGraph, r *Relabeling, workers int) *WGraph {
	n := g.NumNodes()
	offsets, adj, wts := g.offsets, g.adj, g.weights
	noff := make([]int64, n+1)
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			noff[r.Perm[v]+1] = offsets[v+1] - offsets[v]
		}
	})
	par.PrefixSum(noff, workers)
	nadj := make([]NodeID, len(adj))
	nwts := make([]int32, len(wts))
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for nv := lo; nv < hi; nv++ {
			v := r.Inv[nv]
			out := noff[nv]
			lo64 := out
			base := offsets[v]
			for i, w := range adj[base:offsets[v+1]] {
				nadj[out] = r.Perm[w]
				nwts[out] = wts[base+int64(i)]
				out++
			}
			sortPairs(nadj[lo64:out], nwts[lo64:out])
		}
	})
	return &WGraph{offsets: noff, adj: nadj, weights: nwts}
}

// sortIDs sorts a small adjacency segment ascending: insertion sort up to a
// threshold (the common case — most degrees are small), sort.Slice beyond.
func sortIDs(a []NodeID) {
	if len(a) <= 32 {
		for i := 1; i < len(a); i++ {
			x := a[i]
			j := i - 1
			for j >= 0 && a[j] > x {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = x
		}
		return
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

// sortPairs co-sorts an adjacency segment and its parallel weights by
// neighbour id.
func sortPairs(a []NodeID, w []int32) {
	if len(a) <= 32 {
		for i := 1; i < len(a); i++ {
			x, xw := a[i], w[i]
			j := i - 1
			for j >= 0 && a[j] > x {
				a[j+1], w[j+1] = a[j], w[j]
				j--
			}
			a[j+1], w[j+1] = x, xw
		}
		return
	}
	sort.Sort(&pairSorter{a, w})
}

type pairSorter struct {
	a []NodeID
	w []int32
}

func (p *pairSorter) Len() int           { return len(p.a) }
func (p *pairSorter) Less(i, j int) bool { return p.a[i] < p.a[j] }
func (p *pairSorter) Swap(i, j int) {
	p.a[i], p.a[j] = p.a[j], p.a[i]
	p.w[i], p.w[j] = p.w[j], p.w[i]
}
