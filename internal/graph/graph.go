// Package graph provides compact CSR (compressed sparse row) representations
// of undirected graphs, together with the construction, normalisation and
// subgraph utilities that the BRICS reduction pipeline is built on.
//
// Two representations are provided:
//
//   - Graph: a simple, unweighted, undirected graph. This is the input type
//     of the whole system; the paper's preprocessing (Section IV-B) turns any
//     raw edge list into this form.
//   - WGraph: an integer-weighted undirected multigraph. Chain contraction
//     (internal/chains) produces these: a contracted chain of interior
//     length ℓ becomes a single edge of weight ℓ+1.
//
// Node identifiers are dense int32 values in [0, NumNodes()). Every adjacency
// list is sorted, which the twin-detection hashing and the redundant-node
// local checks rely on.
package graph

import "fmt"

// NodeID identifies a node. IDs are dense: a graph with n nodes uses IDs
// 0..n-1.
type NodeID = int32

// MaxNodeID bounds accepted node identifiers (2^27 ≈ 134M). Ids are used
// directly as dense indices, so a single absurd id in a corrupt file would
// otherwise allocate gigabytes; the largest paper dataset has 10^6 nodes.
// Every untrusted loader (internal/io text parsers, internal/bincsr binary
// artifacts) enforces this bound before allocating.
const MaxNodeID = 1 << 27

// Graph is a simple undirected graph in CSR form. Both directions of every
// edge are stored, so len(Adj) == 2*NumEdges(). Adjacency lists are sorted
// in increasing order and contain no duplicates and no self loops.
type Graph struct {
	offsets []int64
	adj     []NodeID
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.offsets) - 1 }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.adj) / 2 }

// Degree returns the degree of v.
func (g *Graph) Degree(v NodeID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases the graph's storage and must not be modified.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the edge {u, v} is present. It runs a binary
// search over the (sorted) shorter adjacency list.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	nbrs := g.Neighbors(u)
	lo, hi := 0, len(nbrs)
	for lo < hi {
		mid := (lo + hi) / 2
		if nbrs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(nbrs) && nbrs[lo] == v
}

// CSR exposes the raw offsets and adjacency arrays. The hot traversal
// kernels (direction-optimising sweeps, bit-parallel multi-source) iterate
// the arrays directly instead of paying a method call per node. Both slices
// alias the graph's storage and must not be modified.
func (g *Graph) CSR() (offsets []int64, adj []NodeID) {
	return g.offsets, g.adj
}

// FromCSR wraps pre-built CSR arrays in a Graph without copying them.
//
// Aliasing contract: the Graph returned is a read-only *view* — it aliases
// offsets and adj directly, so the caller must not modify either slice for
// the lifetime of the graph, and the backing memory must outlive every
// reader (for an mmap-backed artifact that means the mapping may only be
// unmapped after all traversals over the graph have finished). Traversal
// and reduction kernels run directly on the supplied arrays with no copy.
//
// Only the offsets array is checked here (non-empty, starts at 0, monotone,
// ends at len(adj)) — a single O(n) pass over the small array. Neighbour
// range, sortedness and symmetry are the caller's responsibility: binary
// artifact loaders enforce them via checksums and Validate, trusted
// builders by construction.
func FromCSR(offsets []int64, adj []NodeID) (*Graph, error) {
	if err := checkOffsets(offsets, int64(len(adj))); err != nil {
		return nil, err
	}
	return &Graph{offsets: offsets, adj: adj}, nil
}

// WFromCSR is FromCSR for weighted graphs; weights must parallel adj. The
// same aliasing contract applies to all three arrays.
func WFromCSR(offsets []int64, adj []NodeID, weights []int32) (*WGraph, error) {
	if err := checkOffsets(offsets, int64(len(adj))); err != nil {
		return nil, err
	}
	if len(weights) != len(adj) {
		return nil, fmt.Errorf("graph: weights length %d != adjacency length %d", len(weights), len(adj))
	}
	return &WGraph{offsets: offsets, adj: adj, weights: weights}, nil
}

// checkOffsets validates a CSR offsets array against an adjacency length.
func checkOffsets(offsets []int64, adjLen int64) error {
	if len(offsets) == 0 {
		return fmt.Errorf("graph: empty offsets array")
	}
	if int64(len(offsets)-1) > MaxNodeID {
		return fmt.Errorf("graph: %d nodes exceeds MaxNodeID (%d)", len(offsets)-1, MaxNodeID)
	}
	if offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", offsets[0])
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return fmt.Errorf("graph: offsets not monotone at node %d", i-1)
		}
	}
	if last := offsets[len(offsets)-1]; last != adjLen {
		return fmt.Errorf("graph: offsets end at %d, want adjacency length %d", last, adjLen)
	}
	return nil
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		offsets: make([]int64, len(g.offsets)),
		adj:     make([]NodeID, len(g.adj)),
	}
	copy(c.offsets, g.offsets)
	copy(c.adj, g.adj)
	return c
}

// Edges calls fn once per undirected edge {u, v} with u < v.
func (g *Graph) Edges(fn func(u, v NodeID)) {
	for u := NodeID(0); u < NodeID(g.NumNodes()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				fn(u, v)
			}
		}
	}
}

// Validate checks the structural invariants of the CSR representation:
// offsets monotone, adjacency sorted, no self loops, no duplicates, and the
// symmetry of every edge. It is used by tests and by the I/O layer after
// parsing untrusted input.
func (g *Graph) Validate() error {
	n := g.NumNodes()
	if g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	for v := 0; v < n; v++ {
		if g.offsets[v+1] < g.offsets[v] {
			return fmt.Errorf("graph: offsets not monotone at node %d", v)
		}
		nbrs := g.Neighbors(NodeID(v))
		for i, w := range nbrs {
			if w < 0 || int(w) >= n {
				return fmt.Errorf("graph: node %d has out-of-range neighbour %d", v, w)
			}
			if int(w) == v {
				return fmt.Errorf("graph: node %d has a self loop", v)
			}
			if i > 0 && nbrs[i-1] >= w {
				return fmt.Errorf("graph: adjacency of node %d not strictly sorted", v)
			}
			if !g.HasEdge(w, NodeID(v)) {
				return fmt.Errorf("graph: edge {%d,%d} not symmetric", v, w)
			}
		}
	}
	if int(g.offsets[n]) != len(g.adj) {
		return fmt.Errorf("graph: offsets[n] = %d, want %d", g.offsets[n], len(g.adj))
	}
	return nil
}

// WGraph is an integer-weighted undirected multigraph in CSR form. Parallel
// edges with different weights may exist only transiently during
// construction; NewWGraph keeps the minimum-weight edge of each parallel
// group, since a heavier parallel edge can never lie on a shortest path.
type WGraph struct {
	offsets []int64
	adj     []NodeID
	weights []int32
}

// NumNodes returns the number of nodes.
func (g *WGraph) NumNodes() int { return len(g.offsets) - 1 }

// NumEdges returns the number of undirected edges.
func (g *WGraph) NumEdges() int { return len(g.adj) / 2 }

// Degree returns the degree of v.
func (g *WGraph) Degree(v NodeID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The slice aliases graph
// storage.
func (g *WGraph) Neighbors(v NodeID) []NodeID {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// Weights returns the edge weights parallel to Neighbors(v). The slice
// aliases graph storage.
func (g *WGraph) Weights(v NodeID) []int32 {
	return g.weights[g.offsets[v]:g.offsets[v+1]]
}

// CSR exposes the raw offsets, adjacency and weight arrays (see Graph.CSR).
// All three slices alias the graph's storage and must not be modified.
func (g *WGraph) CSR() (offsets []int64, adj []NodeID, weights []int32) {
	return g.offsets, g.adj, g.weights
}

// EdgeWeight returns the weight of edge {u, v} and whether it exists.
func (g *WGraph) EdgeWeight(u, v NodeID) (int32, bool) {
	nbrs := g.Neighbors(u)
	ws := g.Weights(u)
	for i, w := range nbrs {
		if w == v {
			return ws[i], true
		}
	}
	return 0, false
}

// MaxWeight returns the largest edge weight, or 0 for an edgeless graph.
// Dial's algorithm sizes its bucket ring from this.
func (g *WGraph) MaxWeight() int32 {
	var mw int32
	for _, w := range g.weights {
		if w > mw {
			mw = w
		}
	}
	return mw
}

// Edges calls fn once per undirected edge {u, v, weight} with u < v.
func (g *WGraph) Edges(fn func(u, v NodeID, w int32)) {
	for u := NodeID(0); u < NodeID(g.NumNodes()); u++ {
		nbrs := g.Neighbors(u)
		ws := g.Weights(u)
		for i, v := range nbrs {
			if u < v {
				fn(u, v, ws[i])
			}
		}
	}
}

// Validate checks the CSR invariants of a weighted graph: sorted adjacency,
// positive weights, no self loops, and symmetric edges with equal weights.
func (g *WGraph) Validate() error {
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(NodeID(v))
		ws := g.Weights(NodeID(v))
		for i, w := range nbrs {
			if w < 0 || int(w) >= n {
				return fmt.Errorf("wgraph: node %d has out-of-range neighbour %d", v, w)
			}
			if int(w) == v {
				return fmt.Errorf("wgraph: node %d has a self loop", v)
			}
			if i > 0 && nbrs[i-1] >= w {
				return fmt.Errorf("wgraph: adjacency of node %d not strictly sorted", v)
			}
			if ws[i] <= 0 {
				return fmt.Errorf("wgraph: edge {%d,%d} has non-positive weight %d", v, w, ws[i])
			}
			back, ok := g.EdgeWeight(w, NodeID(v))
			if !ok || back != ws[i] {
				return fmt.Errorf("wgraph: edge {%d,%d} asymmetric (weights %d vs %d, ok=%v)", v, w, ws[i], back, ok)
			}
		}
	}
	if int(g.offsets[n]) != len(g.adj) {
		return fmt.Errorf("wgraph: offsets[n] = %d, want %d", g.offsets[n], len(g.adj))
	}
	return nil
}

// Unweighted reports whether every edge has weight 1; traversals can then
// use plain BFS instead of Dial's algorithm.
func (g *WGraph) Unweighted() bool {
	for _, w := range g.weights {
		if w != 1 {
			return false
		}
	}
	return true
}

// ToWeighted converts a simple graph into the equivalent weighted graph with
// all weights 1.
func (g *Graph) ToWeighted() *WGraph {
	w := &WGraph{
		offsets: g.offsets,
		adj:     g.adj,
		weights: make([]int32, len(g.adj)),
	}
	for i := range w.weights {
		w.weights[i] = 1
	}
	return w
}
