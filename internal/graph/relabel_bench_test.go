// Locality benchmark for the CSR relabeling layer: the same BFS-per-source
// workload the estimators run, over the original and relabeled orderings of
// each generator family. Lives in the external test package so it can use
// the gen and bfs packages without an import cycle.
package graph_test

import (
	"fmt"
	"testing"

	"repro/internal/bfs"
	"repro/internal/gen"
	"repro/internal/graph"
)

// BenchmarkRelabelLocality measures full BFS sweeps from a fixed set of
// sources under each ordering. The work (nodes and edges relaxed) is
// identical across orderings; any delta is pure memory-layout effect.
func BenchmarkRelabelLocality(b *testing.B) {
	families := []struct {
		name string
		make func(n int, seed int64) *graph.Graph
	}{
		{"web", gen.Web},
		{"social", gen.Social},
		{"community", gen.Community},
		{"road", gen.Road},
	}
	const n, sources = 20000, 16
	for _, fam := range families {
		base := graph.Connect(fam.make(n, 1))
		for _, mode := range []graph.RelabelMode{graph.RelabelNone, graph.RelabelDegree, graph.RelabelBFS} {
			g, r := graph.Relabel(base, mode, 0)
			src := make([]graph.NodeID, sources)
			for i := range src {
				s := graph.NodeID(i * (n / sources))
				if r != nil {
					s = r.Perm[s]
				}
				src[i] = s
			}
			b.Run(fmt.Sprintf("%s/%s", fam.name, mode), func(b *testing.B) {
				s := bfs.NewScratch(g.NumNodes(), 0)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					bfs.Distances(g, src[i%sources], s.Dist, s.Q)
				}
			})
		}
	}
}

// BenchmarkRelabelBuild measures the cost of computing and applying the
// permutations themselves — the one-off price the estimation path pays
// before its traversals.
func BenchmarkRelabelBuild(b *testing.B) {
	base := graph.Connect(gen.Social(50000, 1))
	for _, mode := range []graph.RelabelMode{graph.RelabelDegree, graph.RelabelBFS} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				graph.Relabel(base, mode, 0)
			}
		})
	}
}
