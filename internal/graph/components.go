package graph

import (
	"sync/atomic"

	"repro/internal/par"
)

// ComponentsFromEdges labels the connected components of an n-node graph
// given as a bare edge list, in parallel. The returned label of every node
// is the smallest node id in its component — nodes touched by no edge stay
// their own singleton component — so the result is deterministic for every
// worker count and edge order.
//
// The algorithm is Shiloach–Vishkin-style min-label hooking with pointer
// jumping: each round relaxes every edge by hooking the larger of the two
// endpoint labels onto the smaller, then compresses label chains, and the
// rounds repeat until a full round changes nothing. Labels only decrease
// and every intermediate label is a node of the same component, which gives
// both termination and the min-id fixpoint. The BiCC skeleton connectivity
// is the intended caller; unlike Components/WComponents this needs no CSR,
// so classification passes can feed it a filtered edge subset directly.
func ComponentsFromEdges(n int, edges [][2]NodeID, workers int) []int32 {
	labels := make([]int32, n)
	workers = par.Workers(workers)
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			labels[i] = int32(i)
		}
	})
	if n == 0 || len(edges) == 0 {
		return labels
	}
	for {
		var changed atomic.Bool
		// Hook: point the root-ish label of the larger side at the smaller.
		par.ForBlocks(len(edges), workers, func(_, lo, hi int) {
			ch := false
			for i := lo; i < hi; i++ {
				u, v := edges[i][0], edges[i][1]
				lu := atomic.LoadInt32(&labels[u])
				lv := atomic.LoadInt32(&labels[v])
				switch {
				case lu < lv:
					ch = atomicMinInt32(&labels[lv], lu) || ch
				case lv < lu:
					ch = atomicMinInt32(&labels[lu], lv) || ch
				}
			}
			if ch {
				changed.Store(true)
			}
		})
		// Compress: shortcut label chains until every node points at a
		// fixpoint label.
		par.ForBlocks(n, workers, func(_, lo, hi int) {
			ch := false
			for v := lo; v < hi; v++ {
				for {
					p := atomic.LoadInt32(&labels[v])
					pp := atomic.LoadInt32(&labels[p])
					if pp == p {
						break
					}
					atomic.CompareAndSwapInt32(&labels[v], p, pp)
					ch = true
				}
			}
			if ch {
				changed.Store(true)
			}
		})
		if !changed.Load() {
			return labels
		}
	}
}

// atomicMinInt32 lowers *addr to x if x is smaller, reporting whether it
// changed anything.
func atomicMinInt32(addr *int32, x int32) bool {
	for {
		old := atomic.LoadInt32(addr)
		if old <= x {
			return false
		}
		if atomic.CompareAndSwapInt32(addr, old, x) {
			return true
		}
	}
}
