package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func pathGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(NodeID(i), NodeID(i+1)); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

func TestBuilderBasic(t *testing.T) {
	g := FromEdges(4, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, v := range []NodeID{0, 1, 2, 3} {
		if g.Degree(v) != 2 {
			t.Errorf("Degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
}

func TestBuilderDropsSelfLoopsAndDuplicates(t *testing.T) {
	b := NewBuilder(3)
	for _, e := range [][2]NodeID{{0, 1}, {1, 0}, {0, 1}, {1, 1}, {2, 2}, {1, 2}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 (self loops and duplicates dropped)", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 2); err == nil {
		t.Fatal("expected error for out-of-range endpoint")
	}
	if err := b.AddEdge(-1, 0); err == nil {
		t.Fatal("expected error for negative endpoint")
	}
}

func TestGrowingBuilder(t *testing.T) {
	b := NewGrowingBuilder()
	if err := b.AddEdge(5, 9); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", g.NumNodes())
	}
}

func TestHasEdge(t *testing.T) {
	g := FromEdges(5, [][2]NodeID{{0, 1}, {1, 2}, {3, 4}})
	cases := []struct {
		u, v NodeID
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {1, 2, true}, {3, 4, true},
		{0, 2, false}, {2, 3, false}, {0, 4, false}, {0, 3, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestEdgesIteration(t *testing.T) {
	g := FromEdges(4, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}})
	var got [][2]NodeID
	g.Edges(func(u, v NodeID) { got = append(got, [2]NodeID{u, v}) })
	want := [][2]NodeID{{0, 1}, {1, 2}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %d edges, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("edge %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestClone(t *testing.T) {
	g := pathGraph(5)
	c := g.Clone()
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Fatal("clone size mismatch")
	}
	c.adj[0] = 99 // mutate clone
	if g.adj[0] == 99 {
		t.Fatal("clone shares storage with original")
	}
}

func TestComponents(t *testing.T) {
	g := FromEdges(6, [][2]NodeID{{0, 1}, {1, 2}, {3, 4}})
	labels, count := Components(g)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("nodes 0,1,2 should share a component")
	}
	if labels[3] != labels[4] {
		t.Error("nodes 3,4 should share a component")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Error("node 5 should be alone")
	}
}

func TestConnect(t *testing.T) {
	g := FromEdges(6, [][2]NodeID{{0, 1}, {2, 3}, {4, 5}})
	c := Connect(g)
	if !IsConnected(c) {
		t.Fatal("Connect result is not connected")
	}
	if c.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5 (3 original + 2 bridges)", c.NumEdges())
	}
	// Already-connected graphs are returned untouched.
	p := pathGraph(4)
	if Connect(p) != p {
		t.Error("Connect should return connected input unchanged")
	}
}

func TestIsConnectedTrivial(t *testing.T) {
	if !IsConnected(FromEdges(0, nil)) {
		t.Error("empty graph should count as connected")
	}
	if !IsConnected(FromEdges(1, nil)) {
		t.Error("single node should count as connected")
	}
	if IsConnected(FromEdges(2, nil)) {
		t.Error("two isolated nodes are disconnected")
	}
}

func TestSubgraph(t *testing.T) {
	g := FromEdges(5, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	keep := []bool{true, false, true, true, true}
	sub, toOld, toNew := Subgraph(g, keep)
	if sub.NumNodes() != 4 {
		t.Fatalf("sub nodes = %d, want 4", sub.NumNodes())
	}
	// Edges 2-3, 3-4, 4-0 survive; 0-1 and 1-2 die with node 1.
	if sub.NumEdges() != 3 {
		t.Fatalf("sub edges = %d, want 3", sub.NumEdges())
	}
	if toNew[1] != -1 {
		t.Error("removed node should map to -1")
	}
	for newID, oldID := range toOld {
		if toNew[oldID] != NodeID(newID) {
			t.Errorf("mapping mismatch: toOld[%d]=%d but toNew[%d]=%d", newID, oldID, oldID, toNew[oldID])
		}
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDegrees(t *testing.T) {
	// Star with 4 leaves: hub degree 4, leaves degree 1.
	g := FromEdges(5, [][2]NodeID{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	s := Degrees(g)
	if s.Min != 1 || s.Max != 4 {
		t.Errorf("min/max = %d/%d, want 1/4", s.Min, s.Max)
	}
	if s.CountDeg1 != 4 {
		t.Errorf("CountDeg1 = %d, want 4", s.CountDeg1)
	}
	if s.CountDeg34 != 1 {
		t.Errorf("CountDeg34 = %d, want 1", s.CountDeg34)
	}
	if s.Mean != 8.0/5.0 {
		t.Errorf("Mean = %v, want 1.6", s.Mean)
	}
}

func TestWBuilderParallelEdgesKeepMin(t *testing.T) {
	g := FromWeightedEdges(2, [][3]int32{{0, 1, 5}, {0, 1, 2}, {1, 0, 7}})
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	w, ok := g.EdgeWeight(0, 1)
	if !ok || w != 2 {
		t.Fatalf("EdgeWeight = %d,%v, want 2,true", w, ok)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWBuilderRejectsBadWeight(t *testing.T) {
	b := NewWBuilder(2)
	if err := b.AddEdge(0, 1, 0); err == nil {
		t.Fatal("expected error for zero weight")
	}
	if err := b.AddEdge(0, 1, -3); err == nil {
		t.Fatal("expected error for negative weight")
	}
}

func TestToWeighted(t *testing.T) {
	g := pathGraph(4)
	w := g.ToWeighted()
	if !w.Unweighted() {
		t.Fatal("ToWeighted should produce all-1 weights")
	}
	if w.NumEdges() != g.NumEdges() {
		t.Fatal("edge count changed")
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.MaxWeight() != 1 {
		t.Fatalf("MaxWeight = %d, want 1", w.MaxWeight())
	}
}

// Property: any random edge list builds a graph that passes Validate, and
// node/edge counts match the deduplicated input.
func TestBuilderValidatesRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 2
		b := NewBuilder(n)
		seen := map[[2]NodeID]bool{}
		for i := 0; i < rng.Intn(120); i++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			if err := b.AddEdge(u, v); err != nil {
				return false
			}
			if u != v {
				if u > v {
					u, v = v, u
				}
				seen[[2]NodeID{u, v}] = true
			}
		}
		g := b.Build()
		return g.Validate() == nil && g.NumEdges() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Subgraph preserves exactly the induced edges.
func TestSubgraphInducedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 2
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			_ = b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g := b.Build()
		keep := make([]bool, n)
		for i := range keep {
			keep[i] = rng.Intn(2) == 0
		}
		sub, toOld, _ := Subgraph(g, keep)
		// Every subgraph edge must exist in g between the mapped originals.
		ok := true
		sub.Edges(func(u, v NodeID) {
			if !g.HasEdge(toOld[u], toOld[v]) {
				ok = false
			}
		})
		// Count induced edges of g and compare.
		want := 0
		g.Edges(func(u, v NodeID) {
			if keep[u] && keep[v] {
				want++
			}
		})
		return ok && sub.NumEdges() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
