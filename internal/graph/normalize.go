package graph

// Components labels the connected components of g. It returns a label per
// node (labels are dense, 0-based, assigned in order of the lowest node id
// in each component) and the number of components.
func Components(g *Graph) (labels []int32, count int) {
	n := g.NumNodes()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var stack []NodeID
	for v := 0; v < n; v++ {
		if labels[v] != -1 {
			continue
		}
		c := int32(count)
		count++
		labels[v] = c
		stack = append(stack[:0], NodeID(v))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(u) {
				if labels[w] == -1 {
					labels[w] = c
					stack = append(stack, w)
				}
			}
		}
	}
	return labels, count
}

// IsConnected reports whether g is connected. The empty graph and the
// single-node graph are connected.
func IsConnected(g *Graph) bool {
	if g.NumNodes() <= 1 {
		return true
	}
	_, c := Components(g)
	return c == 1
}

// Connect returns a connected graph, adding the minimum number of edges
// (component-representative to component-representative, in a chain) when g
// is disconnected. This mirrors the paper's preprocessing: "if the graph is
// disconnected, we added few edges to make it connected" (Section IV-B).
// If g is already connected it is returned unmodified.
func Connect(g *Graph) *Graph {
	labels, count := Components(g)
	if count <= 1 {
		return g
	}
	reps := make([]NodeID, count)
	for i := range reps {
		reps[i] = -1
	}
	for v := 0; v < g.NumNodes(); v++ {
		if reps[labels[v]] == -1 {
			reps[labels[v]] = NodeID(v)
		}
	}
	b := NewBuilder(g.NumNodes())
	g.Edges(func(u, v NodeID) {
		_ = b.AddEdge(u, v)
	})
	for i := 1; i < count; i++ {
		_ = b.AddEdge(reps[i-1], reps[i])
	}
	return b.Build()
}

// WComponents labels connected components of a weighted graph; semantics
// match Components.
func WComponents(g *WGraph) (labels []int32, count int) {
	n := g.NumNodes()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var stack []NodeID
	for v := 0; v < n; v++ {
		if labels[v] != -1 {
			continue
		}
		c := int32(count)
		count++
		labels[v] = c
		stack = append(stack[:0], NodeID(v))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(u) {
				if labels[w] == -1 {
					labels[w] = c
					stack = append(stack, w)
				}
			}
		}
	}
	return labels, count
}
