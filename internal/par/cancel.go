package par

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrCanceled is the sentinel every cooperative cancellation point of the
// estimation stack wraps: when a context passed to EstimateContext (or any
// of the ctx-aware drivers below) is canceled or times out, the run is
// abandoned at the next checkpoint and the returned error satisfies both
// errors.Is(err, ErrCanceled) and errors.Is(err, ctx.Err()).
var ErrCanceled = errors.New("run canceled")

// CtxErr converts a context's state into the stack's cancellation error:
// nil while ctx is live, an ErrCanceled-wrapping error once it is done.
// Every cooperative checkpoint is a call to this function.
func CtxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return nil
}

// Interrupted reports whether the done channel (a ctx.Done(), possibly nil)
// has fired — the non-blocking poll hot traversal loops use between
// frontiers. A nil channel means "not cancellable" and always returns false.
func Interrupted(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// ForBlocksCtx is ForBlocks with cooperative cancellation: each block checks
// the context before running, so a canceled context skips every block that
// has not started yet (blocks already running finish — fn is never
// interrupted mid-block). It returns CtxErr(ctx); on a non-nil return the
// loop's output is partial and must be discarded.
func ForBlocksCtx(ctx context.Context, n, workers int, fn func(block, lo, hi int)) error {
	workers = Workers(workers)
	if n <= 0 {
		return CtxErr(ctx)
	}
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	chunk := blockSize(n, workers)
	if workers == 1 {
		if !Interrupted(done) {
			fn(0, 0, n)
		}
		return CtxErr(ctx)
	}
	var wg sync.WaitGroup
	for b := 0; b*chunk < n; b++ {
		lo := b * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			if Interrupted(done) {
				return
			}
			fn(b, lo, hi)
		}(b, lo, hi)
	}
	wg.Wait()
	return CtxErr(ctx)
}

// ForDynamicCtx is ForDynamic with cooperative cancellation: workers check
// the context before claiming each chunk and stop claiming once it is done,
// which makes every chunk boundary a preemption point (the batch drivers
// pass chunk = 1, so one traversal task is the cancellation granularity).
// It returns CtxErr(ctx); on a non-nil return the loop's output is partial
// and must be discarded. For a live context the schedule is identical to
// ForDynamic.
func ForDynamicCtx(ctx context.Context, n, workers, chunk int, fn func(worker, i int)) error {
	workers = Workers(workers)
	if n <= 0 {
		return CtxErr(ctx)
	}
	if chunk < 1 {
		chunk = 1
	}
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	if workers == 1 {
		for i := 0; i < n; i += chunk {
			if Interrupted(done) {
				break
			}
			hi := i + chunk
			if hi > n {
				hi = n
			}
			for j := i; j < hi; j++ {
				fn(0, j)
			}
		}
		return CtxErr(ctx)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				if Interrupted(done) {
					return
				}
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(worker, i)
				}
			}
		}(w)
	}
	wg.Wait()
	return CtxErr(ctx)
}
