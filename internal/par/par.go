// Package par contains the small set of parallel-execution helpers the rest
// of the system is built on: a bounded parallel-for over an index range and
// a dynamic (work-stealing-ish, chunk-grabbing) variant for irregular work
// such as BFS-per-source, where per-item cost varies by orders of magnitude.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalises a worker-count option: values < 1 mean "use
// GOMAXPROCS".
func Workers(requested int) int {
	if requested < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// For runs fn(i) for every i in [0, n) using the given number of workers.
// Iterations are distributed in contiguous static blocks, which is the right
// schedule for uniform per-item cost (e.g. per-node post-processing).
// workers < 1 selects GOMAXPROCS. For is a no-op when n <= 0.
func For(n, workers int, fn func(i int)) {
	workers = Workers(workers)
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ForDynamic runs fn(worker, i) for every i in [0, n) with dynamic
// chunk-grabbing scheduling: each worker atomically claims the next chunk of
// the given size. Use for irregular work such as one BFS per sampled source,
// where a static schedule would leave workers idle behind one giant block.
// The worker index lets callers keep per-worker scratch (distance arrays,
// queues) without locking.
func ForDynamic(n, workers, chunk int, fn func(worker, i int)) {
	workers = Workers(workers)
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(worker, i)
				}
			}
		}(w)
	}
	wg.Wait()
}

// AddFloat64 atomically adds delta to *addr using a CAS loop. Farness
// accumulators are shared across BFS workers; this is the contention-safe
// update they use.
func AddFloat64(addr *uint64, delta float64) {
	for {
		old := atomic.LoadUint64(addr)
		nw := mathFloat64bits(mathFloat64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(addr, old, nw) {
			return
		}
	}
}

// Float64Slice is a slice of float64 values supporting atomic accumulation.
// It is stored as raw bits so that AddFloat64's CAS loop applies.
type Float64Slice struct {
	bits []uint64
}

// NewFloat64Slice returns an atomically addressable zeroed slice of length n.
func NewFloat64Slice(n int) *Float64Slice {
	return &Float64Slice{bits: make([]uint64, n)}
}

// Len returns the slice length.
func (s *Float64Slice) Len() int { return len(s.bits) }

// Add atomically adds delta to element i.
func (s *Float64Slice) Add(i int, delta float64) { AddFloat64(&s.bits[i], delta) }

// Get loads element i.
func (s *Float64Slice) Get(i int) float64 {
	return mathFloat64frombits(atomic.LoadUint64(&s.bits[i]))
}

// Snapshot copies the current values into a plain []float64. Only safe to
// call once all writers are done (it does non-atomic-consistent reads per
// element, which is fine element-wise).
func (s *Float64Slice) Snapshot() []float64 {
	out := make([]float64, len(s.bits))
	for i := range s.bits {
		out[i] = s.Get(i)
	}
	return out
}
