// Package par contains the small set of parallel-execution helpers the rest
// of the system is built on: a bounded parallel-for over an index range and
// a dynamic (work-stealing-ish, chunk-grabbing) variant for irregular work
// such as BFS-per-source, where per-item cost varies by orders of magnitude.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalises a worker-count option: values < 1 mean "use
// GOMAXPROCS".
func Workers(requested int) int {
	if requested < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// For runs fn(i) for every i in [0, n) using the given number of workers.
// Iterations are distributed in contiguous static blocks, which is the right
// schedule for uniform per-item cost (e.g. per-node post-processing).
// workers < 1 selects GOMAXPROCS. For is a no-op when n <= 0.
func For(n, workers int, fn func(i int)) {
	workers = Workers(workers)
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// blockSize returns the contiguous block length of the static schedule
// shared by For, ForBlocks and PrefixSum: ⌈n/workers⌉. Deterministic in
// (n, workers), which lets two passes over the same range agree on block
// boundaries.
func blockSize(n, workers int) int {
	return (n + workers - 1) / workers
}

// NumBlocks returns the number of blocks ForBlocks will invoke for an
// n-item range at the given worker count — callers that carry a per-block
// accumulator (counts for a prefix sum, partial reductions) size it with
// this.
func NumBlocks(n, workers int) int {
	workers = Workers(workers)
	if n <= 0 {
		return 0
	}
	if workers > n {
		workers = n
	}
	chunk := blockSize(n, workers)
	return (n + chunk - 1) / chunk
}

// ForBlocks runs fn(block, lo, hi) once per contiguous block of the static
// schedule, one block per worker — the low-overhead variant of For for
// memset/copy/count-style loops where a closure call per element would
// dominate. Block boundaries are deterministic in (n, workers); block
// indices are dense in [0, NumBlocks(n, workers)).
func ForBlocks(n, workers int, fn func(block, lo, hi int)) {
	workers = Workers(workers)
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	chunk := blockSize(n, workers)
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for b := 0; b*chunk < n; b++ {
		lo := b * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			fn(b, lo, hi)
		}(b, lo, hi)
	}
	wg.Wait()
}

// FillInt32 sets every element of a to v across workers — the memset idiom
// the graph kernels repeat (distance rows, discovery tags, parent arrays)
// lifted into one helper. The static block schedule matches ForBlocks.
func FillInt32(a []int32, v int32, workers int) {
	ForBlocks(len(a), workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] = v
		}
	})
}

// PrefixSum converts a into its inclusive prefix sum in place
// (a[i] becomes a[0]+…+a[i]) and returns the total. The parallel schedule
// is the usual three-phase scan — per-block sums, a sequential scan of the
// block sums, then a per-block sweep — and integer addition is associative,
// so the result is bit-identical for every worker count. Small inputs run
// sequentially; CSR offset construction is the intended caller.
func PrefixSum(a []int64, workers int) int64 {
	n := len(a)
	workers = Workers(workers)
	if workers == 1 || n < 4096 {
		var run int64
		for i := range a {
			run += a[i]
			a[i] = run
		}
		return run
	}
	nb := NumBlocks(n, workers)
	sums := make([]int64, nb)
	ForBlocks(n, workers, func(b, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += a[i]
		}
		sums[b] = s
	})
	var total int64
	for b := range sums {
		s := sums[b]
		sums[b] = total
		total += s
	}
	ForBlocks(n, workers, func(b, lo, hi int) {
		run := sums[b]
		for i := lo; i < hi; i++ {
			run += a[i]
			a[i] = run
		}
	})
	return total
}

// ForDynamic runs fn(worker, i) for every i in [0, n) with dynamic
// chunk-grabbing scheduling: each worker atomically claims the next chunk of
// the given size. Use for irregular work such as one BFS per sampled source,
// where a static schedule would leave workers idle behind one giant block.
// The worker index lets callers keep per-worker scratch (distance arrays,
// queues) without locking.
func ForDynamic(n, workers, chunk int, fn func(worker, i int)) {
	workers = Workers(workers)
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(worker, i)
				}
			}
		}(w)
	}
	wg.Wait()
}

// AddFloat64 atomically adds delta to *addr using a CAS loop. Farness
// accumulators are shared across BFS workers; this is the contention-safe
// update they use.
func AddFloat64(addr *uint64, delta float64) {
	for {
		old := atomic.LoadUint64(addr)
		nw := mathFloat64bits(mathFloat64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(addr, old, nw) {
			return
		}
	}
}

// Float64Slice is a slice of float64 values supporting atomic accumulation.
// It is stored as raw bits so that AddFloat64's CAS loop applies.
type Float64Slice struct {
	bits []uint64
}

// NewFloat64Slice returns an atomically addressable zeroed slice of length n.
func NewFloat64Slice(n int) *Float64Slice {
	return &Float64Slice{bits: make([]uint64, n)}
}

// Len returns the slice length.
func (s *Float64Slice) Len() int { return len(s.bits) }

// Add atomically adds delta to element i.
func (s *Float64Slice) Add(i int, delta float64) { AddFloat64(&s.bits[i], delta) }

// Get loads element i.
func (s *Float64Slice) Get(i int) float64 {
	return mathFloat64frombits(atomic.LoadUint64(&s.bits[i]))
}

// Snapshot copies the current values into a plain []float64. Only safe to
// call once all writers are done (it does non-atomic-consistent reads per
// element, which is fine element-wise).
func (s *Float64Slice) Snapshot() []float64 {
	out := make([]float64, len(s.bits))
	for i := range s.bits {
		out[i] = s.Get(i)
	}
	return out
}
