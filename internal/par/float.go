package par

import "math"

// Thin aliases keep the hot CAS loop in par.go free of a package-qualified
// call that the inliner occasionally refuses.
func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }
