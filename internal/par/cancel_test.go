package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestCtxErr(t *testing.T) {
	if err := CtxErr(context.Background()); err != nil {
		t.Fatalf("live context: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := CtxErr(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled wrapped, got %v", err)
	}
}

func TestForDynamicCtxCoversRangeWhenLive(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		n := 57
		hits := make([]int32, n)
		err := ForDynamicCtx(context.Background(), n, workers, 2, func(_, i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForDynamicCtxStopsOnCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var visited atomic.Int64
		err := ForDynamicCtx(ctx, 1_000_000, workers, 1, func(_, i int) {
			if visited.Add(1) == 10 {
				cancel()
			}
		})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: want ErrCanceled, got %v", workers, err)
		}
		if v := visited.Load(); v >= 1_000_000 {
			t.Fatalf("workers=%d: cancellation did not stop the loop (visited %d)", workers, v)
		}
	}
}

func TestForDynamicCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := atomic.Bool{}
	err := ForDynamicCtx(ctx, 100, 4, 1, func(_, _ int) { called.Store(true) })
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	// Workers may observe the claim before the done poll on the very first
	// iteration only with workers == 1 and a sequential path; the parallel
	// path checks before every claim, so nothing should run.
	if called.Load() {
		t.Fatal("pre-canceled context still ran iterations")
	}
}

func TestForBlocksCtxCoversRangeWhenLive(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		n := 101
		hits := make([]int32, n)
		err := ForBlocksCtx(context.Background(), n, workers, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForBlocksCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var called atomic.Bool
	err := ForBlocksCtx(ctx, 100, 4, func(_, _, _ int) { called.Store(true) })
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if called.Load() {
		t.Fatal("pre-canceled context still ran blocks")
	}
}

func TestInterrupted(t *testing.T) {
	if Interrupted(nil) {
		t.Fatal("nil channel must read as not interrupted")
	}
	ch := make(chan struct{})
	if Interrupted(ch) {
		t.Fatal("open channel must read as not interrupted")
	}
	close(ch)
	if !Interrupted(ch) {
		t.Fatal("closed channel must read as interrupted")
	}
}
