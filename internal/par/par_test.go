package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 0, -1} {
		n := 101
		hits := make([]int32, n)
		For(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEmpty(t *testing.T) {
	called := false
	For(0, 4, func(int) { called = true })
	For(-5, 4, func(int) { called = true })
	if called {
		t.Fatal("For should not call fn for n <= 0")
	}
}

func TestForDynamicCoversRange(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		for _, chunk := range []int{1, 4, 100} {
			n := 57
			hits := make([]int32, n)
			ForDynamic(n, workers, chunk, func(_, i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d chunk=%d: index %d hit %d times", workers, chunk, i, h)
				}
			}
		}
	}
}

func TestForDynamicWorkerIndexInRange(t *testing.T) {
	workers := 4
	var bad atomic.Bool
	ForDynamic(200, workers, 2, func(w, _ int) {
		if w < 0 || w >= workers {
			bad.Store(true)
		}
	})
	if bad.Load() {
		t.Fatal("worker index out of range")
	}
}

func TestWorkersNormalisation(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit worker count should pass through")
	}
	if Workers(0) < 1 || Workers(-2) < 1 {
		t.Error("non-positive should map to at least 1")
	}
}

func TestFloat64SliceConcurrentAdds(t *testing.T) {
	s := NewFloat64Slice(4)
	const per = 1000
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			for i := 0; i < per; i++ {
				s.Add(i%4, 0.5)
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	snap := s.Snapshot()
	for i, v := range snap {
		if v != 4*per/4*0.5 {
			t.Errorf("slot %d = %v, want %v", i, v, 4*per/4*0.5)
		}
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
}
