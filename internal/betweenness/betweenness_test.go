package betweenness

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bfs"
	"repro/internal/graph"
)

func TestExactOnPath(t *testing.T) {
	// Path 0-1-2-3-4: bc(v) = #pairs {s,t} strictly separated by v.
	// bc(1) = |{(0,2),(0,3),(0,4)}| = 3; bc(2) = 4; symmetric.
	b := graph.NewBuilder(5)
	for i := 0; i < 4; i++ {
		_ = b.AddEdge(int32(i), int32(i+1))
	}
	g := b.Build()
	bc := Exact(g, 2)
	want := []float64{0, 3, 4, 3, 0}
	for i := range want {
		if math.Abs(bc[i]-want[i]) > 1e-9 {
			t.Errorf("bc[%d] = %v, want %v", i, bc[i], want[i])
		}
	}
}

func TestExactOnStarAndCycle(t *testing.T) {
	// Star with 4 leaves: centre carries all C(4,2)=6 pairs.
	star := graph.FromEdges(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	bc := Exact(star, 1)
	if math.Abs(bc[0]-6) > 1e-9 {
		t.Errorf("star centre bc = %v, want 6", bc[0])
	}
	for v := 1; v < 5; v++ {
		if bc[v] != 0 {
			t.Errorf("leaf bc = %v", bc[v])
		}
	}
	// C4: opposite pairs have two shortest paths, each midpoint gets 1/2.
	cyc := graph.FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	bc = Exact(cyc, 1)
	for v := range bc {
		if math.Abs(bc[v]-0.5) > 1e-9 {
			t.Errorf("C4 bc[%d] = %v, want 0.5", v, bc[v])
		}
	}
}

// bruteBetweenness enumerates all pairs and shortest-path counts directly.
func bruteBetweenness(g *graph.Graph) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	// σ and paths via BFS from each node.
	dist := make([][]int32, n)
	sigma := make([][]float64, n)
	for s := 0; s < n; s++ {
		dist[s] = make([]int32, n)
		bfs.Distances(g, graph.NodeID(s), dist[s], nil)
		sigma[s] = make([]float64, n)
		sigma[s][s] = 1
		// Count shortest paths level by level.
		for d := int32(1); ; d++ {
			any := false
			for v := 0; v < n; v++ {
				if dist[s][v] != d {
					continue
				}
				any = true
				for _, w := range g.Neighbors(graph.NodeID(v)) {
					if dist[s][w] == d-1 {
						sigma[s][v] += sigma[s][w]
					}
				}
			}
			if !any {
				break
			}
		}
	}
	for s := 0; s < n; s++ {
		for t2 := s + 1; t2 < n; t2++ {
			if dist[s][t2] < 0 || sigma[s][t2] == 0 {
				continue
			}
			for v := 0; v < n; v++ {
				if v == s || v == t2 {
					continue
				}
				if dist[s][v] >= 0 && dist[v][t2] >= 0 &&
					dist[s][v]+dist[v][t2] == dist[s][t2] {
					out[v] += sigma[s][v] * sigma[v][t2] / sigma[s][t2]
				}
			}
		}
	}
	return out
}

// Property: Brandes matches brute-force path counting on random connected
// graphs.
func TestExactMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(25) + 3
		b := graph.NewBuilder(n)
		for i := 1; i < n; i++ {
			_ = b.AddEdge(int32(rng.Intn(i)), int32(i))
		}
		for i := 0; i < rng.Intn(2*n); i++ {
			_ = b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		got := Exact(g, 2)
		want := bruteBetweenness(g)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSampledConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 150
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(int32(rng.Intn(i)), int32(i))
	}
	for i := 0; i < 3*n; i++ {
		_ = b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	g := b.Build()
	exact := Exact(g, 2)
	full := Sampled(g, n, 2, 1) // k = n must equal exact
	for v := range exact {
		if math.Abs(full[v]-exact[v]) > 1e-6 {
			t.Fatalf("full sampling differs at %d: %v vs %v", v, full[v], exact[v])
		}
	}
	// Partial sampling: rank correlation with exact should be high.
	est := Sampled(g, n/2, 2, 1)
	var cov, va, vb, ma, mb float64
	for v := range exact {
		ma += exact[v]
		mb += est[v]
	}
	ma /= float64(n)
	mb /= float64(n)
	for v := range exact {
		da, db := exact[v]-ma, est[v]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if corr := cov / math.Sqrt(va*vb); corr < 0.85 {
		t.Fatalf("sampled betweenness correlation = %v", corr)
	}
}
