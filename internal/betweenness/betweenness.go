// Package betweenness implements Brandes' algorithm for betweenness
// centrality, exact and sampled. The paper's related work leans on the
// same structural toolbox for betweenness (Pachorkar et al. via ear
// decomposition, Sariyüce et al.'s BADIOS shatters graphs with the very
// degree-1/identical-vertex reductions BRICS uses), so a farness library
// that downstream users adopt wants the companion metric available.
//
// Betweenness here is the undirected unnormalised convention: each
// unordered pair {s, t} contributes σ_st(v)/σ_st once.
package betweenness

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/queue"
)

// scratch carries one worker's Brandes state.
type scratch struct {
	dist  []int32
	sigma []float64
	delta []float64
	order []graph.NodeID // BFS visit order (for reverse dependency pass)
	q     *queue.FIFO
	score []float64 // worker-local accumulation
}

func newScratch(n int) *scratch {
	return &scratch{
		dist:  make([]int32, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
		order: make([]graph.NodeID, 0, n),
		q:     queue.NewFIFO(n),
		score: make([]float64, n),
	}
}

// brandesFrom accumulates source s's dependency contributions into
// sc.score (one BFS + one reverse sweep).
func brandesFrom(g *graph.Graph, s graph.NodeID, sc *scratch) {
	n := g.NumNodes()
	for i := 0; i < n; i++ {
		sc.dist[i] = -1
		sc.sigma[i] = 0
		sc.delta[i] = 0
	}
	sc.order = sc.order[:0]
	sc.q.Reset()
	sc.dist[s] = 0
	sc.sigma[s] = 1
	sc.q.Push(s)
	for !sc.q.Empty() {
		v := sc.q.Pop()
		sc.order = append(sc.order, v)
		dv := sc.dist[v]
		for _, w := range g.Neighbors(v) {
			if sc.dist[w] == -1 {
				sc.dist[w] = dv + 1
				sc.q.Push(w)
			}
			if sc.dist[w] == dv+1 {
				sc.sigma[w] += sc.sigma[v]
			}
		}
	}
	// Reverse order: accumulate dependencies.
	for i := len(sc.order) - 1; i >= 0; i-- {
		w := sc.order[i]
		dw := sc.dist[w]
		coeff := (1 + sc.delta[w]) / sc.sigma[w]
		for _, v := range g.Neighbors(w) {
			if sc.dist[v] == dw-1 {
				sc.delta[v] += sc.sigma[v] * coeff
			}
		}
		if w != s {
			sc.score[w] += sc.delta[w]
		}
	}
}

// Exact computes the exact betweenness of every node: one Brandes source
// per node, parallelised, with per-worker partial scores merged at the
// end. The undirected double-counting is normalised away (each pair is
// visited from both endpoints).
func Exact(g *graph.Graph, workers int) []float64 {
	return fromSources(g, allNodes(g.NumNodes()), workers, 0.5)
}

// Sampled estimates betweenness from k uniformly random sources
// (Brandes–Pich): each contribution is scaled by n/k.
func Sampled(g *graph.Graph, k int, workers int, seed int64) []float64 {
	n := g.NumNodes()
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	ids := allNodes(n)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		ids[i], ids[j] = ids[j], ids[i]
	}
	scale := 0.5 * float64(n) / float64(k)
	return fromSources(g, ids[:k], workers, scale)
}

func allNodes(n int) []graph.NodeID {
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	return ids
}

func fromSources(g *graph.Graph, sources []graph.NodeID, workers int, scale float64) []float64 {
	n := g.NumNodes()
	workers = par.Workers(workers)
	scratches := make([]*scratch, workers)
	for i := range scratches {
		scratches[i] = newScratch(n)
	}
	par.ForDynamic(len(sources), workers, 4, func(worker, i int) {
		brandesFrom(g, sources[i], scratches[worker])
	})
	out := make([]float64, n)
	for _, sc := range scratches {
		for v, x := range sc.score {
			out[v] += x * scale
		}
	}
	return out
}
