package bicc

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// decomposeBoth runs both engines and fails the test unless the parallel
// decomposition at every requested worker count is bit-identical to the
// sequential one — the acceptance bar of the FAST-BCC engine.
func decomposeBoth(t *testing.T, name string, g *graph.WGraph, workerCounts []int) *Decomposition {
	t.Helper()
	seq := DecomposeAlgo(g, AlgoSequential, 1)
	if err := seq.Validate(g); err != nil {
		t.Fatalf("%s: sequential: %v", name, err)
	}
	for _, w := range workerCounts {
		par := DecomposeAlgo(g, AlgoParallel, w)
		if err := par.Validate(g); err != nil {
			t.Fatalf("%s: parallel workers=%d: %v", name, w, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("%s: parallel workers=%d differs from sequential (seq %d blocks, par %d blocks)",
				name, w, seq.NumBlocks(), par.NumBlocks())
		}
	}
	return seq
}

var sweepWorkers = []int{1, 2, 4, 8}

// TestParallelMatchesSequentialFamilies pins the bit-identical contract on
// all four generator families of Table I, which carry the block structure
// the reduction pipeline actually sees (twins, chains, communities, grids).
func TestParallelMatchesSequentialFamilies(t *testing.T) {
	families := []struct {
		name  string
		build func(n int, seed int64) *graph.Graph
		n     int
	}{
		{"web", gen.Web, 4000},
		{"social", gen.Social, 4000},
		{"community", gen.Community, 4000},
		{"road", gen.Road, 4000},
	}
	for _, f := range families {
		f := f
		t.Run(f.name, func(t *testing.T) {
			t.Parallel()
			g := f.build(f.n, 7).ToWeighted()
			decomposeBoth(t, f.name, g, sweepWorkers)
		})
	}
}

// TestParallelMatchesSequentialDegenerate covers the shapes where the
// fence/skeleton machinery has edge cases: disconnected graphs, trees
// (every edge a bridge, empty skeleton), a single edge, isolated nodes,
// and the empty graph.
func TestParallelMatchesSequentialDegenerate(t *testing.T) {
	cases := []struct {
		name  string
		build func() *graph.WGraph
	}{
		{"empty", func() *graph.WGraph { return graph.NewWBuilder(0).Build() }},
		{"isolated-nodes", func() *graph.WGraph { return graph.NewWBuilder(9).Build() }},
		{"single-edge", func() *graph.WGraph {
			return graph.FromWeightedEdges(2, [][3]int32{{0, 1, 3}})
		}},
		{"single-edge-with-isolated", func() *graph.WGraph {
			return graph.FromWeightedEdges(6, [][3]int32{{2, 4, 1}})
		}},
		{"path", func() *graph.WGraph {
			b := graph.NewWBuilder(64)
			for i := 1; i < 64; i++ {
				_ = b.AddEdge(int32(i-1), int32(i), 1)
			}
			return b.Build()
		}},
		{"bridges-only-tree", func() *graph.WGraph {
			rng := rand.New(rand.NewSource(11))
			n := 600
			b := graph.NewWBuilder(n)
			for i := 1; i < n; i++ {
				_ = b.AddEdge(int32(rng.Intn(i)), int32(i), int32(1+rng.Intn(5)))
			}
			return b.Build()
		}},
		{"fig2", paperFig2},
		{"disconnected-mixed", func() *graph.WGraph {
			// Triangle, path, star and isolated nodes in one graph.
			return graph.FromWeightedEdges(14, [][3]int32{
				{0, 1, 1}, {1, 2, 1}, {0, 2, 1}, // triangle
				{4, 5, 1}, {5, 6, 1}, // path
				{8, 9, 1}, {8, 10, 1}, {8, 11, 1}, // star
			})
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			decomposeBoth(t, c.name, c.build(), sweepWorkers)
		})
	}
}

// TestParallelMatchesSequentialRandom sweeps random multi-component graphs
// with bridges, cycles and isolated nodes through both engines.
func TestParallelMatchesSequentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 40; trial++ {
		n := 10 + rng.Intn(300)
		b := graph.NewWBuilder(n)
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u != v {
				_ = b.AddEdge(u, v, int32(1+rng.Intn(4)))
			}
		}
		decomposeBoth(t, "random", b.Build(), []int{1, 2, 4, 8})
	}
}

// TestAutoPolicy checks the engine auto-selection: sequential below the
// edge threshold or at one worker, parallel above it with workers.
func TestAutoPolicy(t *testing.T) {
	small := paperFig2()
	if _, tm := DecomposeTimed(small, AlgoAuto, 8); tm.Algorithm != AlgoSequential.String() {
		t.Errorf("small graph at 8 workers ran %q, want sequential", tm.Algorithm)
	}
	big := gen.Social(6000, 3).ToWeighted()
	if big.NumEdges() < parallelMinEdges {
		t.Fatalf("test graph too small: %d edges", big.NumEdges())
	}
	if _, tm := DecomposeTimed(big, AlgoAuto, 1); tm.Algorithm != AlgoSequential.String() {
		t.Errorf("big graph at 1 worker ran %q, want sequential", tm.Algorithm)
	}
	if _, tm := DecomposeTimed(big, AlgoAuto, 4); tm.Algorithm != AlgoParallel.String() {
		t.Errorf("big graph at 4 workers ran %q, want parallel", tm.Algorithm)
	}
	if _, tm := DecomposeTimed(big, AlgoSequential, 4); tm.Algorithm != AlgoSequential.String() {
		t.Errorf("forced sequential ran %q", tm.Algorithm)
	}
	if _, tm := DecomposeTimed(small, AlgoParallel, 1); tm.Algorithm != AlgoParallel.String() {
		t.Errorf("forced parallel ran %q", tm.Algorithm)
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Algorithm
	}{
		{"", AlgoAuto}, {"auto", AlgoAuto},
		{"hopcroft-tarjan", AlgoSequential}, {"sequential", AlgoSequential}, {"dfs", AlgoSequential},
		{"fastbcc", AlgoParallel}, {"parallel", AlgoParallel}, {"fast-bcc", AlgoParallel},
	} {
		got, err := ParseAlgorithm(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseAlgorithm("bogus"); err == nil {
		t.Error("ParseAlgorithm(bogus) must fail")
	}
	for _, a := range []Algorithm{AlgoAuto, AlgoSequential, AlgoParallel} {
		back, err := ParseAlgorithm(a.String())
		if err != nil || back != a {
			t.Errorf("round-trip %v via %q failed: %v, %v", a, a.String(), back, err)
		}
	}
}

// FuzzDecompose feeds arbitrary edge lists through both engines and checks
// that the decomposition invariants hold, both engines agree bit-for-bit,
// and nothing panics.
func FuzzDecompose(f *testing.F) {
	f.Add([]byte{8, 0, 1, 1, 2, 0, 2, 2, 3})
	f.Add([]byte{3})
	f.Add([]byte{16, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := 2 + int(data[0]%64)
		b := graph.NewWBuilder(n)
		for i := 1; i+1 < len(data); i += 2 {
			u := int32(int(data[i]) % n)
			v := int32(int(data[i+1]) % n)
			if u != v {
				_ = b.AddEdge(u, v, int32(1+int(data[i])%3))
			}
		}
		g := b.Build()
		seq := DecomposeAlgo(g, AlgoSequential, 1)
		if err := seq.Validate(g); err != nil {
			t.Fatalf("sequential invariants: %v", err)
		}
		par := DecomposeAlgo(g, AlgoParallel, 4)
		if err := par.Validate(g); err != nil {
			t.Fatalf("parallel invariants: %v", err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatal("engines disagree")
		}
		for v := 0; v < n; v++ {
			if seq.IsCut[v] != (len(seq.BlocksOf[v]) >= 2) {
				t.Fatalf("cut flag of %d inconsistent with BlocksOf", v)
			}
		}
	})
}
