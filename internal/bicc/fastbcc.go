package bicc

import (
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/par"
)

// This file is the FAST-BCC-style parallel engine (Dong/Wang/Gu/Sun,
// "Provably Fast and Space-Efficient Parallel Biconnectivity"), adapted to
// the repo's CSR layout and par primitives. The sequential Hopcroft–Tarjan
// engine discovers blocks by DFS; that order is inherently serial, so this
// engine instead computes the *partition* of edges into blocks with four
// DFS-free phases and lets the shared canonical assembler (bicc.go) impose
// the deterministic numbering:
//
//  1. A level-synchronous parallel BFS spanning forest. Levels are claimed
//     by CAS, then a deterministic fix-up pass re-assigns every parent to
//     the smallest neighbour one level up, so the forest itself is
//     identical at every worker count.
//  2. Euler-tour-style tags per node: subtree size nd, preorder interval
//     [first, last], and the classic low/high = extremal preorder reachable
//     from the subtree through a single non-tree edge. All four are
//     level-bucketed sweeps (bottom-up or top-down), never a DFS.
//  3. Fence-condition classification. Identifying each non-root vertex v
//     with its parent tree edge (p(v), v), the skeleton graph hooks
//     (a) the endpoints of every unrelated non-tree edge, and
//     (c) child to parent for every tree edge that fails the fence
//     low(v) >= first(w) && high(v) <= last(w) — the Tarjan–Vishkin aux
//     graph rules with the related-non-tree rule dropped, which is exactly
//     the FAST-BCC observation. Parallel connectivity on the skeleton
//     (graph.ComponentsFromEdges) labels each vertex-proxy, every graph
//     edge inherits the label of a proxy vertex, and a count/prefix/scatter
//     groups edges into per-block lists.
//  4. The shared assembler canonicalises those lists, which is where cut
//     vertices fall out (membership in >= 2 blocks).
//
// Every phase is deterministic in its *output* even where its schedule is
// not (CAS claim order varies; the claimed set per level does not), so both
// engines feed the assembler the same partition and the Decomposition is
// bit-identical across engines and worker counts.

// bfsSeqFrontier is the frontier size under which a BFS level expands
// sequentially — goroutine fan-out costs more than the scan below it.
const bfsSeqFrontier = 256

// forest is the BFS spanning forest of phase 1.
type forest struct {
	parent []graph.NodeID   // parent in the BFS tree, -1 at roots
	level  []int32          // BFS depth from the component root
	levels [][]graph.NodeID // levels[d] = nodes at depth d, all components pooled
	roots  []graph.NodeID   // one per component, ascending node id
}

// buildForest runs one BFS per component (components discovered by an
// ascending root scan, as everywhere else in the pipeline) and pools the
// per-depth buckets across components so the tag sweeps of phase 2 can
// process a whole depth at once.
func buildForest(g *graph.WGraph, workers int) *forest {
	n := g.NumNodes()
	f := &forest{
		parent: make([]graph.NodeID, n),
		level:  make([]int32, n),
	}
	par.FillInt32(f.parent, -1, workers)
	par.FillInt32(f.level, -1, workers)
	for v := 0; v < n; v++ {
		if f.level[v] < 0 {
			f.roots = append(f.roots, graph.NodeID(v))
			f.bfs(g, graph.NodeID(v), workers)
		}
	}
	return f
}

// bfs expands one component level by level. Discovery runs with CAS claims
// when the frontier is large; the parent fix-up pass afterwards overwrites
// whatever claim order happened with the smallest depth-(d-1) neighbour
// (adjacency is sorted), which pins the forest shape.
func (f *forest) bfs(g *graph.WGraph, root graph.NodeID, workers int) {
	f.level[root] = 0
	if len(f.levels) == 0 {
		f.levels = append(f.levels, nil)
	}
	f.levels[0] = append(f.levels[0], root)
	frontier := []graph.NodeID{root}
	for depth := int32(1); len(frontier) > 0; depth++ {
		var next []graph.NodeID
		if workers == 1 || len(frontier) < bfsSeqFrontier {
			for _, u := range frontier {
				for _, w := range g.Neighbors(u) {
					if f.level[w] < 0 {
						f.level[w] = depth
						next = append(next, w)
					}
				}
			}
		} else {
			per := make([][]graph.NodeID, workers)
			par.ForDynamic(len(frontier), workers, 64, func(wk, i int) {
				for _, w := range g.Neighbors(frontier[i]) {
					if atomic.LoadInt32(&f.level[w]) < 0 &&
						atomic.CompareAndSwapInt32(&f.level[w], -1, depth) {
						per[wk] = append(per[wk], w)
					}
				}
			})
			for _, p := range per {
				next = append(next, p...)
			}
		}
		if len(next) == 0 {
			return
		}
		par.ForDynamic(len(next), workers, 128, func(_, i int) {
			w := next[i]
			for _, u := range g.Neighbors(w) {
				if f.level[u] == depth-1 {
					f.parent[w] = u
					break
				}
			}
		})
		if int(depth) >= len(f.levels) {
			f.levels = append(f.levels, nil)
		}
		f.levels[depth] = append(f.levels[depth], next...)
		frontier = next
	}
}

// tags carries the per-node Euler-tour values of phase 2. first/last are
// forest-global preorder numbers (component subtrees occupy disjoint
// intervals, roots laid out in ascending order), so ancestry tests work
// uniformly across the whole forest.
type tags struct {
	nd    []int32 // subtree size
	first []int32 // preorder number
	last  []int32 // first + nd - 1: subtree = [first, last]
	low   []int32 // min preorder reachable via one non-tree edge from subtree
	high  []int32 // max, likewise
}

// ancestor reports whether a is a (possibly improper) ancestor of b in the
// BFS forest: b's preorder falls inside a's subtree interval.
func (t *tags) ancestor(a, b graph.NodeID) bool {
	return t.first[a] <= t.first[b] && t.first[b] <= t.last[a]
}

// related reports whether u and w lie on one root-to-leaf path.
func (t *tags) related(u, w graph.NodeID) bool {
	return t.ancestor(u, w) || t.ancestor(w, u)
}

// newTags computes nd bottom-up, first top-down, then low/high bottom-up.
// Each sweep synchronises per BFS depth: a node's children live exactly one
// level deeper, so the value it reads was finalised by the previous
// iteration's barrier and every pass is an ordinary parallel loop.
func newTags(g *graph.WGraph, f *forest, workers int) *tags {
	n := g.NumNodes()
	t := &tags{
		nd:    make([]int32, n),
		first: make([]int32, n),
		last:  make([]int32, n),
		low:   make([]int32, n),
		high:  make([]int32, n),
	}
	// Subtree sizes, deepest level first.
	for d := len(f.levels) - 1; d >= 0; d-- {
		lvl := f.levels[d]
		par.ForDynamic(len(lvl), workers, 64, func(_, i int) {
			v := lvl[i]
			size := int32(1)
			for _, w := range g.Neighbors(v) {
				if f.parent[w] == v {
					size += t.nd[w]
				}
			}
			t.nd[v] = size
		})
	}
	// Preorder numbers: component base offsets in root order, then each
	// level hands contiguous child intervals down in sorted-adjacency order
	// (the same preorder a DFS would produce on this tree).
	base := int32(0)
	for _, r := range f.roots {
		t.first[r] = base
		base += t.nd[r]
	}
	for d := 0; d < len(f.levels)-1; d++ {
		lvl := f.levels[d]
		par.ForDynamic(len(lvl), workers, 64, func(_, i int) {
			v := lvl[i]
			off := t.first[v] + 1
			for _, w := range g.Neighbors(v) {
				if f.parent[w] == v {
					t.first[w] = off
					off += t.nd[w]
				}
			}
		})
	}
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			t.last[v] = t.first[v] + t.nd[v] - 1
		}
	})
	// low/high: seed with the node's own non-tree neighbours, then fold
	// children upward level by level.
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := graph.NodeID(i)
			lowV, highV := t.first[v], t.first[v]
			for _, w := range g.Neighbors(v) {
				if w == f.parent[v] || f.parent[w] == v {
					continue
				}
				if fw := t.first[w]; fw < lowV {
					lowV = fw
				} else if fw > highV {
					highV = fw
				}
			}
			t.low[v], t.high[v] = lowV, highV
		}
	})
	for d := len(f.levels) - 2; d >= 0; d-- {
		lvl := f.levels[d]
		par.ForDynamic(len(lvl), workers, 64, func(_, i int) {
			v := lvl[i]
			lowV, highV := t.low[v], t.high[v]
			for _, w := range g.Neighbors(v) {
				if f.parent[w] != v {
					continue
				}
				if t.low[w] < lowV {
					lowV = t.low[w]
				}
				if t.high[w] > highV {
					highV = t.high[w]
				}
			}
			t.low[v], t.high[v] = lowV, highV
		})
	}
	return t
}

// labelBlocks is phase 3: build the skeleton pairs, run parallel
// connectivity over them, label every graph edge with its block's skeleton
// component, and scatter edges into per-block lists. Returned lists are in
// arbitrary internal order — the assembler canonicalises.
func labelBlocks(g *graph.WGraph, f *forest, t *tags, workers int) [][]Edge {
	n := g.NumNodes()

	// emitPairs walks the canonical (u < w) edges of a node range and emits
	// the skeleton pair of each edge that induces one. Count and fill passes
	// share it, so the two passes agree exactly.
	emitPairs := func(lo, hi int, emit func(x, y graph.NodeID)) {
		for i := lo; i < hi; i++ {
			u := graph.NodeID(i)
			for _, w := range g.Neighbors(u) {
				if w <= u {
					continue
				}
				if f.parent[w] == u || f.parent[u] == w {
					c, p := w, u
					if f.parent[c] != p {
						c, p = u, w
					}
					// Fence rule (c): hook the child proxy to the parent
					// proxy when the subtree of c escapes p's interval.
					// Roots have no proxy edge, hence the parent[p] guard.
					if f.parent[p] >= 0 && (t.low[c] < t.first[p] || t.high[c] > t.last[p]) {
						emit(c, p)
					}
				} else if !t.related(u, w) {
					// Rule (a): unrelated non-tree edge hooks its
					// endpoints' proxies directly.
					emit(u, w)
				}
			}
		}
	}
	nbk := par.NumBlocks(n, workers)
	counts := make([]int64, nbk)
	par.ForBlocks(n, workers, func(b, lo, hi int) {
		var c int64
		emitPairs(lo, hi, func(_, _ graph.NodeID) { c++ })
		counts[b] = c
	})
	var totalPairs int64
	for b := range counts {
		c := counts[b]
		counts[b] = totalPairs
		totalPairs += c
	}
	pairs := make([][2]graph.NodeID, totalPairs)
	par.ForBlocks(n, workers, func(b, lo, hi int) {
		off := counts[b]
		emitPairs(lo, hi, func(x, y graph.NodeID) {
			pairs[off] = [2]graph.NodeID{x, y}
			off++
		})
	})
	labels := graph.ComponentsFromEdges(n, pairs, workers)

	// Every edge inherits a proxy label: tree edges that of the child,
	// ancestor–descendant non-tree edges that of the descendant, unrelated
	// non-tree edges either endpoint (rule (a) hooked them equal).
	edgeLabel := func(u, w graph.NodeID) int32 {
		switch {
		case f.parent[w] == u:
			return labels[w]
		case f.parent[u] == w:
			return labels[u]
		case t.ancestor(u, w):
			return labels[w]
		case t.ancestor(w, u):
			return labels[u]
		default:
			return labels[u]
		}
	}
	sizes := make([]int64, n)
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			u := graph.NodeID(i)
			for _, w := range g.Neighbors(u) {
				if w > u {
					atomic.AddInt64(&sizes[edgeLabel(u, w)], 1)
				}
			}
		}
	})
	totalEdges := par.PrefixSum(sizes, workers) // sizes[l] = end offset of label l
	cur := make([]int64, n)                     // claim cursor, starts at label start
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for l := lo; l < hi; l++ {
			if l > 0 {
				cur[l] = sizes[l-1]
			}
		}
	})
	flat := make([]Edge, totalEdges)
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			u := graph.NodeID(i)
			nbrs := g.Neighbors(u)
			ws := g.Weights(u)
			for j, w := range nbrs {
				if w <= u {
					continue
				}
				idx := atomic.AddInt64(&cur[edgeLabel(u, w)], 1) - 1
				flat[idx] = Edge{U: u, V: w, W: ws[j]}
			}
		}
	})
	var blocks [][]Edge
	start := int64(0)
	for l := 0; l < n; l++ {
		if end := sizes[l]; end > start {
			blocks = append(blocks, flat[start:end])
			start = end
		}
	}
	return blocks
}

// decomposeParallel is the FAST-BCC engine entry point; see the file
// comment for the phase breakdown.
func decomposeParallel(g *graph.WGraph, workers int) (*Decomposition, Timings) {
	var t Timings
	n := g.NumNodes()
	if n == 0 {
		return assemble(0, nil, workers), t
	}
	start := time.Now()
	f := buildForest(g, workers)
	t.SpanningForest = time.Since(start)

	start = time.Now()
	tg := newTags(g, f, workers)
	t.Tagging = time.Since(start)

	start = time.Now()
	blocks := labelBlocks(g, f, tg, workers)
	t.Labeling = time.Since(start)

	start = time.Now()
	d := assemble(n, blocks, workers)
	t.Assemble = time.Since(start)
	return d, t
}
