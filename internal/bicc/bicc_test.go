package bicc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// paperFig2 builds a graph shaped like the paper's Fig. 2 example: several
// blocks glued at cut vertices.
func paperFig2() *graph.WGraph {
	// Triangle {0,1,2}; 2 is a cut to bridge 2-3; 3 is a cut to triangle
	// {3,4,5}; 5 is a cut to edge 5-6.
	return graph.FromWeightedEdges(7, [][3]int32{
		{0, 1, 1}, {1, 2, 1}, {0, 2, 1},
		{2, 3, 1},
		{3, 4, 1}, {4, 5, 1}, {3, 5, 1},
		{5, 6, 1},
	})
}

func TestDecomposeFig2(t *testing.T) {
	g := paperFig2()
	d := Decompose(g)
	if err := d.Validate(g); err != nil {
		t.Fatal(err)
	}
	if d.NumBlocks() != 4 {
		t.Fatalf("blocks = %d, want 4", d.NumBlocks())
	}
	wantCuts := map[graph.NodeID]bool{2: true, 3: true, 5: true}
	for v := 0; v < g.NumNodes(); v++ {
		if d.IsCut[v] != wantCuts[graph.NodeID(v)] {
			t.Errorf("IsCut[%d] = %v, want %v", v, d.IsCut[v], wantCuts[graph.NodeID(v)])
		}
	}
	s := d.Summarize()
	if s.Count != 4 || s.Max != 3 {
		t.Errorf("stats = %+v, want Count 4 Max 3", s)
	}
}

func TestDecomposeSingleBlock(t *testing.T) {
	// A cycle is one biconnected component, no cuts.
	g := graph.FromWeightedEdges(5, [][3]int32{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {4, 0, 1}})
	d := Decompose(g)
	if d.NumBlocks() != 1 {
		t.Fatalf("blocks = %d, want 1", d.NumBlocks())
	}
	for v := 0; v < 5; v++ {
		if d.IsCut[v] {
			t.Errorf("cycle node %d must not be a cut", v)
		}
	}
	if err := d.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeTree(t *testing.T) {
	// A star: every edge its own block; centre is the only cut.
	g := graph.FromWeightedEdges(5, [][3]int32{{0, 1, 1}, {0, 2, 1}, {0, 3, 1}, {0, 4, 1}})
	d := Decompose(g)
	if d.NumBlocks() != 4 {
		t.Fatalf("blocks = %d, want 4", d.NumBlocks())
	}
	if !d.IsCut[0] {
		t.Error("star centre must be a cut")
	}
	for v := 1; v < 5; v++ {
		if d.IsCut[v] {
			t.Errorf("leaf %d must not be a cut", v)
		}
	}
}

func TestCommonBlock(t *testing.T) {
	g := paperFig2()
	d := Decompose(g)
	if b := d.CommonBlock(0, 1); b < 0 {
		t.Error("0 and 1 share the triangle block")
	}
	if b := d.CommonBlock(0, 6); b >= 0 {
		t.Error("0 and 6 must not share a block")
	}
	if b := d.CommonBlock(2, 3); b < 0 {
		t.Error("2 and 3 share the bridge block")
	}
}

// bruteCuts recomputes articulation points by deleting each node and
// counting components.
func bruteCuts(g *graph.WGraph) []bool {
	n := g.NumNodes()
	out := make([]bool, n)
	_, base := graph.WComponents(g)
	for v := 0; v < n; v++ {
		keep := make([]bool, n)
		for i := range keep {
			keep[i] = i != v
		}
		sub, _, _ := graph.WSubgraph(g, keep)
		_, c := graph.WComponents(sub)
		// Removing an isolated-ish node must not be counted: compare
		// against base components minus the one the node may have formed.
		if c > base {
			out[v] = true
		}
	}
	return out
}

// Property: articulation points match brute force and every edge lands in
// exactly one block, on random connected graphs.
func TestDecomposeMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(25) + 3
		b := graph.NewWBuilder(n)
		for i := 1; i < n; i++ {
			_ = b.AddEdge(int32(rng.Intn(i)), int32(i), 1)
		}
		extra := rng.Intn(2 * n)
		for i := 0; i < extra; i++ {
			_ = b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), 1)
		}
		g := b.Build()
		d := Decompose(g)
		if d.Validate(g) != nil {
			return false
		}
		want := bruteCuts(g)
		for v := 0; v < n; v++ {
			if d.IsCut[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCutVertices(t *testing.T) {
	g := paperFig2()
	d := Decompose(g)
	cuts := d.CutVertices()
	want := []graph.NodeID{2, 3, 5}
	if len(cuts) != len(want) {
		t.Fatalf("cuts = %v, want %v", cuts, want)
	}
	for i := range want {
		if cuts[i] != want[i] {
			t.Fatalf("cuts = %v, want %v", cuts, want)
		}
	}
}

func TestDeepGraphNoOverflow(t *testing.T) {
	// 200k-node path: a recursive DFS would overflow; the iterative one
	// must not.
	n := 200_000
	b := graph.NewWBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(int32(i-1), int32(i), 1)
	}
	g := b.Build()
	d := Decompose(g)
	if d.NumBlocks() != n-1 {
		t.Fatalf("blocks = %d, want %d", d.NumBlocks(), n-1)
	}
}

// TestDecomposeWorkersDeterministic checks the DecomposeWorkers contract:
// multi-component random graphs decompose bit-identically for every worker
// count, including counts beyond GOMAXPROCS.
func TestDecomposeWorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.Intn(180)
		b := graph.NewWBuilder(n)
		// Sparse random edges without connecting: several components with
		// bridges, cycles and isolated nodes.
		m := n + rng.Intn(2*n)
		for i := 0; i < m; i++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u != v {
				_ = b.AddEdge(u, v, int32(1+rng.Intn(4)))
			}
		}
		g := b.Build()
		base := DecomposeWorkers(g, 1)
		if err := base.Validate(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, w := range []int{2, 3, 4, 8} {
			got := DecomposeWorkers(g, w)
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("trial %d: workers=%d decomposition differs from sequential", trial, w)
			}
		}
	}
}
