// Package bicc implements the "B" of BRICS: decomposition of a graph into
// its biconnected components (blocks) and construction of the block
// cut-vertex tree (BCT) of the paper's Fig. 2. The decomposition runs on
// the weighted reduced graph — edge weights play no role in biconnectivity.
//
// Two engines produce the decomposition:
//
//   - A sequential iterative Hopcroft–Tarjan DFS with an explicit edge
//     stack (deep road-network-like graphs cannot overflow the goroutine
//     stack), fanned out across connected components.
//   - A FAST-BCC-style parallel algorithm (fastbcc.go) in the spirit of
//     Dong/Wang/Gu/Sun, built from a parallel BFS spanning forest,
//     Euler-tour first/last/low/high tags and a fence-condition edge
//     classification resolved by parallel connectivity on a skeleton graph.
//     It parallelizes *inside* one component, which is what matters on
//     realistic inputs with one giant component.
//
// Both engines funnel their raw blocks through the same canonical
// assembler, so the Decomposition is bit-identical for every engine and
// every worker count: blocks are numbered in ascending order of their two
// smallest nodes (two distinct blocks share at most one vertex, so that
// key is unique), each block's edges are oriented U < V and sorted, and
// cut flags derive from block membership. AlgoAuto picks the engine the
// way TraversalAuto picks traversal kernels: parallel when the worker
// budget and the edge count justify the tag/label passes, the DFS below
// that.
package bicc

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/par"
)

// Edge is one edge of a block, in the node ids of the decomposed graph,
// oriented U < V.
type Edge struct {
	U, V graph.NodeID
	W    int32
}

// Decomposition is the set of biconnected components of a graph in
// canonical form: blocks ascend by their (smallest, second-smallest) node
// pair, block edges ascend by (U, V) with U < V, and node lists are sorted.
// The canonical form is what makes the decomposition bit-identical across
// engines and worker counts.
type Decomposition struct {
	// BlockEdges lists the edges of each block. Every graph edge belongs
	// to exactly one block.
	BlockEdges [][]Edge
	// BlockNodes lists the distinct nodes of each block (sorted). A cut
	// vertex appears in every block it belongs to.
	BlockNodes [][]graph.NodeID
	// IsCut marks articulation points.
	IsCut []bool
	// BlocksOf maps every node to the ids of the blocks containing it
	// (length 1 for non-cut nodes of a connected graph with ≥ 1 edge).
	BlocksOf [][]int32
}

// NumBlocks returns the number of biconnected components.
func (d *Decomposition) NumBlocks() int { return len(d.BlockEdges) }

// CutVertices returns the articulation points in increasing order.
func (d *Decomposition) CutVertices() []graph.NodeID {
	var out []graph.NodeID
	for v, c := range d.IsCut {
		if c {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// Algorithm selects the decomposition engine.
type Algorithm int

const (
	// AlgoAuto (default) runs the parallel engine whenever more than one
	// worker is available and the graph carries at least parallelMinEdges
	// edges — below that the spanning-forest/tagging passes cost more than
	// the DFS they replace — and the sequential DFS otherwise.
	AlgoAuto Algorithm = iota
	// AlgoSequential forces the iterative Hopcroft–Tarjan DFS (one DFS per
	// connected component, components fanned across workers).
	AlgoSequential
	// AlgoParallel forces the FAST-BCC-style spanning-forest engine.
	AlgoParallel
)

// parallelMinEdges is the Auto threshold: under ~8k edges the parallel
// engine's extra passes (forest, tags, skeleton connectivity) dominate and
// the sequential DFS wins outright.
const parallelMinEdges = 1 << 13

// String names the engine for logs and benchmark tables.
func (a Algorithm) String() string {
	switch a {
	case AlgoSequential:
		return "hopcroft-tarjan"
	case AlgoParallel:
		return "fastbcc"
	default:
		return "auto"
	}
}

// ParseAlgorithm converts an engine name (as produced by String, with a few
// aliases) into an Algorithm; the empty string is Auto.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "", "auto":
		return AlgoAuto, nil
	case "hopcroft-tarjan", "sequential", "dfs":
		return AlgoSequential, nil
	case "fastbcc", "parallel", "fast-bcc":
		return AlgoParallel, nil
	}
	return 0, fmt.Errorf("bicc: unknown algorithm %q (want auto, hopcroft-tarjan or fastbcc)", s)
}

// parallel reports whether the decomposition should run the parallel engine
// for a graph with the given edge count at the given worker count.
func (a Algorithm) parallel(workers, edges int) bool {
	switch a {
	case AlgoSequential:
		return false
	case AlgoParallel:
		return true
	default:
		return workers > 1 && edges >= parallelMinEdges
	}
}

// Timings reports which engine a decomposition ran and the wall-clock of
// its substages. Purely informational — it varies run to run while the
// Decomposition itself is bit-identical — which is why it is returned
// beside the Decomposition instead of stored inside it.
type Timings struct {
	// Algorithm is the engine that ran ("hopcroft-tarjan" or "fastbcc").
	Algorithm string `json:"algorithm"`
	// SpanningForest, Tagging and Labeling split the parallel engine's
	// phases (BFS forest; first/last/low/high tags; skeleton connectivity
	// plus per-edge block labels). Zero under the sequential engine.
	SpanningForest time.Duration `json:"spanning_forest_ns"`
	Tagging        time.Duration `json:"tagging_ns"`
	Labeling       time.Duration `json:"labeling_ns"`
	// Assemble covers the canonical post-pass shared by both engines.
	Assemble time.Duration `json:"assemble_ns"`
	// Total is the whole decomposition.
	Total time.Duration `json:"total_ns"`
}

// Decompose computes the biconnected components of g with the sequential
// engine. Isolated nodes yield no blocks; disconnected inputs are processed
// per component, so callers that guarantee connectivity get the classic
// single-tree BCT. Decompose is DecomposeWorkers at one worker — every
// worker count and engine yields the same Decomposition.
func Decompose(g *graph.WGraph) *Decomposition { return DecomposeWorkers(g, 1) }

// DecomposeWorkers decomposes g under the AlgoAuto engine policy at the
// given worker count (<1 means GOMAXPROCS). The output is bit-identical
// for every worker count.
func DecomposeWorkers(g *graph.WGraph, workers int) *Decomposition {
	d, _ := DecomposeTimed(g, AlgoAuto, workers)
	return d
}

// DecomposeAlgo decomposes g with an explicit engine choice.
func DecomposeAlgo(g *graph.WGraph, algo Algorithm, workers int) *Decomposition {
	d, _ := DecomposeTimed(g, algo, workers)
	return d
}

// DecomposeTimed is DecomposeAlgo returning the per-substage wall-clock
// split alongside the decomposition.
func DecomposeTimed(g *graph.WGraph, algo Algorithm, workers int) (*Decomposition, Timings) {
	workers = par.Workers(workers)
	start := time.Now()
	var d *Decomposition
	var t Timings
	if algo.parallel(workers, g.NumEdges()) {
		d, t = decomposeParallel(g, workers)
		t.Algorithm = AlgoParallel.String()
	} else {
		d, t = decomposeSequential(g, workers)
		t.Algorithm = AlgoSequential.String()
	}
	t.Total = time.Since(start)
	return d, t
}

// assemble canonicalises raw per-block edge lists (any edge orientation and
// order, any block order) into the final Decomposition. Both engines end
// here, which is what pins the bit-identical contract: the engines only
// have to agree on the *partition* of edges into blocks — a property of the
// graph — and the assembler derives everything else deterministically.
// Blocks are keyed by their two smallest nodes; two distinct blocks share
// at most one vertex, so the key is unique and the order total.
func assemble(n int, blocks [][]Edge, workers int) *Decomposition {
	d := &Decomposition{
		IsCut:    make([]bool, n),
		BlocksOf: make([][]int32, n),
	}
	nb := len(blocks)
	if nb == 0 {
		return d
	}
	nodeLists := make([][]graph.NodeID, nb)
	par.ForDynamic(nb, workers, 16, func(_, b int) {
		blk := blocks[b]
		for i := range blk {
			if blk[i].U > blk[i].V {
				blk[i].U, blk[i].V = blk[i].V, blk[i].U
			}
		}
		sort.Slice(blk, func(i, j int) bool {
			return blk[i].U < blk[j].U || (blk[i].U == blk[j].U && blk[i].V < blk[j].V)
		})
		nodes := make([]graph.NodeID, 0, len(blk)+1)
		for _, e := range blk {
			nodes = append(nodes, e.U, e.V)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		out := nodes[:1]
		for _, v := range nodes[1:] {
			if v != out[len(out)-1] {
				out = append(out, v)
			}
		}
		nodeLists[b] = out
	})
	order := make([]int32, nb)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := nodeLists[order[i]], nodeLists[order[j]]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return a[1] < b[1]
	})
	d.BlockEdges = make([][]Edge, nb)
	d.BlockNodes = make([][]graph.NodeID, nb)
	for id, raw := range order {
		d.BlockEdges[id] = blocks[raw]
		d.BlockNodes[id] = nodeLists[raw]
		for _, v := range nodeLists[raw] {
			d.BlocksOf[v] = append(d.BlocksOf[v], int32(id))
		}
	}
	for v := 0; v < n; v++ {
		if len(d.BlocksOf[v]) >= 2 {
			d.IsCut[v] = true
		}
	}
	return d
}

// Stats summarises a decomposition the way Table I reports it: the number
// of blocks, the node count of the largest block, and the average node
// count per block.
type Stats struct {
	Count int
	Max   int
	Avg   float64
}

// Summarize computes block statistics.
func (d *Decomposition) Summarize() Stats {
	s := Stats{Count: d.NumBlocks()}
	total := 0
	for _, nodes := range d.BlockNodes {
		total += len(nodes)
		if len(nodes) > s.Max {
			s.Max = len(nodes)
		}
	}
	if s.Count > 0 {
		s.Avg = float64(total) / float64(s.Count)
	}
	return s
}

// CommonBlock returns a block id containing both u and v, or -1. Cut
// vertices have short block lists in practice; the scan intersects the
// smaller list against a set of the larger one only when both are long.
func (d *Decomposition) CommonBlock(u, v graph.NodeID) int32 {
	a, b := d.BlocksOf[u], d.BlocksOf[v]
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) <= 8 {
		for _, x := range a {
			for _, y := range b {
				if x == y {
					return x
				}
			}
		}
		return -1
	}
	set := make(map[int32]struct{}, len(b))
	for _, y := range b {
		set[y] = struct{}{}
	}
	for _, x := range a {
		if _, ok := set[x]; ok {
			return x
		}
	}
	return -1
}

// Validate checks the defining invariants of the decomposition against the
// source graph: every edge in exactly one block, cut flags consistent with
// block membership counts, and the canonical ordering contract (ascending
// U < V edges inside each block, blocks ascending by smallest node pair).
// Used by tests and the fuzz target.
func (d *Decomposition) Validate(g *graph.WGraph) error {
	edgeCount := 0
	for b, blk := range d.BlockEdges {
		edgeCount += len(blk)
		for i, e := range blk {
			if e.U >= e.V {
				return fmt.Errorf("bicc: block %d edge {%d,%d} not oriented U < V", b, e.U, e.V)
			}
			if i > 0 && !(blk[i-1].U < e.U || (blk[i-1].U == e.U && blk[i-1].V < e.V)) {
				return fmt.Errorf("bicc: block %d edges not sorted at %d", b, i)
			}
			if w, ok := g.EdgeWeight(e.U, e.V); !ok || w != e.W {
				return fmt.Errorf("bicc: block edge {%d,%d,%d} not in graph", e.U, e.V, e.W)
			}
		}
		if b > 0 {
			p, c := d.BlockNodes[b-1], d.BlockNodes[b]
			if !(p[0] < c[0] || (p[0] == c[0] && p[1] < c[1])) {
				return fmt.Errorf("bicc: blocks %d and %d out of canonical order", b-1, b)
			}
		}
	}
	if edgeCount != g.NumEdges() {
		return fmt.Errorf("bicc: blocks cover %d edges, graph has %d", edgeCount, g.NumEdges())
	}
	for v := 0; v < g.NumNodes(); v++ {
		inBlocks := len(d.BlocksOf[v])
		if d.IsCut[v] && inBlocks < 2 {
			return fmt.Errorf("bicc: cut vertex %d in %d blocks", v, inBlocks)
		}
		if !d.IsCut[v] && inBlocks > 1 {
			return fmt.Errorf("bicc: non-cut vertex %d in %d blocks", v, inBlocks)
		}
	}
	return nil
}
