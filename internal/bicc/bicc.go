// Package bicc implements the "B" of BRICS: decomposition of a graph into
// its biconnected components (blocks) and construction of the block
// cut-vertex tree (BCT) of the paper's Fig. 2. The decomposition runs on
// the weighted reduced graph — edge weights play no role in
// biconnectivity — using an iterative Hopcroft–Tarjan DFS with an explicit
// edge stack, so deep road-network-like graphs cannot overflow the
// goroutine stack.
package bicc

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
)

// Edge is one edge of a block, in the node ids of the decomposed graph.
type Edge struct {
	U, V graph.NodeID
	W    int32
}

// Decomposition is the set of biconnected components of a connected graph.
type Decomposition struct {
	// BlockEdges lists the edges of each block. Every graph edge belongs
	// to exactly one block.
	BlockEdges [][]Edge
	// BlockNodes lists the distinct nodes of each block (sorted). A cut
	// vertex appears in every block it belongs to.
	BlockNodes [][]graph.NodeID
	// IsCut marks articulation points.
	IsCut []bool
	// BlocksOf maps every node to the ids of the blocks containing it
	// (length 1 for non-cut nodes of a connected graph with ≥ 1 edge).
	BlocksOf [][]int32
}

// NumBlocks returns the number of biconnected components.
func (d *Decomposition) NumBlocks() int { return len(d.BlockEdges) }

// CutVertices returns the articulation points in increasing order.
func (d *Decomposition) CutVertices() []graph.NodeID {
	var out []graph.NodeID
	for v, c := range d.IsCut {
		if c {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// frame is one node of the explicit DFS stack.
type frame struct {
	v, parent graph.NodeID
	nextEdge  int32 // index into v's adjacency to resume from
}

// Decompose computes the biconnected components of g. The graph must be
// connected; isolated single-node graphs yield zero blocks. Disconnected
// inputs are processed per component (each component decomposes
// independently), so callers that guarantee connectivity get the classic
// single-tree BCT. Decompose is DecomposeWorkers at one worker — every
// worker count yields the same Decomposition.
func Decompose(g *graph.WGraph) *Decomposition { return DecomposeWorkers(g, 1) }

// DecomposeWorkers runs the Hopcroft–Tarjan decomposition with one DFS per
// connected component, components fanned out across workers (<1 means
// GOMAXPROCS). Components are node-disjoint, so the workers share the
// disc/low/IsCut arrays without conflict; each component keeps a local
// timer and local stacks, and the per-component block lists are merged in
// ascending order of the component's smallest node — the order the
// sequential root scan discovers them — so the output is bit-identical for
// every worker count. A connected input (the pipeline's guarantee) has one
// component and degenerates to the sequential pass.
func DecomposeWorkers(g *graph.WGraph, workers int) *Decomposition {
	n := g.NumNodes()
	workers = par.Workers(workers)
	d := &Decomposition{
		IsCut:    make([]bool, n),
		BlocksOf: make([][]int32, n),
	}
	if n == 0 {
		return d
	}
	const unvisited = int32(-1)
	disc := make([]int32, n)
	low := make([]int32, n)
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			disc[i] = unvisited
		}
	})

	// Label components by their smallest node; roots come out ascending.
	comp := disc // reuse: unvisited doubles as "no component yet"
	var roots []graph.NodeID
	var bfsQ []graph.NodeID
	for v := 0; v < n; v++ {
		if comp[v] != unvisited {
			continue
		}
		roots = append(roots, graph.NodeID(v))
		comp[v] = int32(len(roots) - 1)
		bfsQ = append(bfsQ[:0], graph.NodeID(v))
		for len(bfsQ) > 0 {
			u := bfsQ[len(bfsQ)-1]
			bfsQ = bfsQ[:len(bfsQ)-1]
			for _, w := range g.Neighbors(u) {
				if comp[w] == unvisited {
					comp[w] = comp[u]
					bfsQ = append(bfsQ, w)
				}
			}
		}
	}
	// Reset disc for the DFS passes (comp aliased it); each component's DFS
	// then touches only its own disjoint entries.
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			disc[i] = unvisited
		}
	})
	perComp := make([][][]Edge, len(roots))
	if len(roots) == 1 {
		perComp[0] = decomposeComponent(g, roots[0], disc, low, d.IsCut)
	} else {
		par.ForDynamic(len(roots), workers, 1, func(_, c int) {
			perComp[c] = decomposeComponent(g, roots[c], disc, low, d.IsCut)
		})
	}
	for _, blocks := range perComp {
		for _, blk := range blocks {
			d.addBlock(blk)
		}
	}
	return d
}

// decomposeComponent runs the iterative Hopcroft–Tarjan DFS over the
// component containing root, writing disc/low/isCut entries only for that
// component's nodes and returning its blocks in emission order. Safe to run
// concurrently for node-disjoint components sharing the arrays.
func decomposeComponent(g *graph.WGraph, root graph.NodeID, disc, low []int32, isCut []bool) [][]Edge {
	const unvisited = int32(-1)
	var blocks [][]Edge
	var timer int32
	var edgeStack []Edge
	var stack []frame

	emitBlock := func(u, v graph.NodeID) {
		// Pop edges until (u,v) inclusive; they form one block.
		var blk []Edge
		for len(edgeStack) > 0 {
			e := edgeStack[len(edgeStack)-1]
			edgeStack = edgeStack[:len(edgeStack)-1]
			blk = append(blk, e)
			if e.U == u && e.V == v {
				break
			}
		}
		blocks = append(blocks, blk)
	}

	rootChildren := 0
	disc[root] = timer
	low[root] = timer
	timer++
	stack = append(stack, frame{v: root, parent: -1})
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		v := f.v
		nbrs := g.Neighbors(v)
		ws := g.Weights(v)
		advanced := false
		for int(f.nextEdge) < len(nbrs) {
			w := nbrs[f.nextEdge]
			wt := ws[f.nextEdge]
			f.nextEdge++
			if w == f.parent {
				continue // simple graph: exactly one parent edge
			}
			if disc[w] == unvisited {
				disc[w] = timer
				low[w] = timer
				timer++
				if v == root {
					rootChildren++
				}
				edgeStack = append(edgeStack, Edge{U: v, V: w, W: wt})
				stack = append(stack, frame{v: w, parent: v})
				advanced = true
				break
			}
			if disc[w] < disc[v] {
				// Back edge to an ancestor.
				edgeStack = append(edgeStack, Edge{U: v, V: w, W: wt})
				if disc[w] < low[v] {
					low[v] = disc[w]
				}
			}
		}
		if advanced {
			continue
		}
		// v is finished; propagate low to parent and test the
		// articulation condition for the tree edge parent→v.
		stack = stack[:len(stack)-1]
		if f.parent >= 0 {
			p := f.parent
			if low[v] < low[p] {
				low[p] = low[v]
			}
			if low[v] >= disc[p] {
				if p != root {
					isCut[p] = true
				}
				emitBlock(p, v)
			}
		}
	}
	if rootChildren >= 2 {
		isCut[root] = true
	}
	return blocks
}

func (d *Decomposition) addBlock(edges []Edge) {
	id := int32(len(d.BlockEdges))
	d.BlockEdges = append(d.BlockEdges, edges)
	// Collect distinct nodes.
	seen := make(map[graph.NodeID]struct{}, len(edges)+1)
	var nodes []graph.NodeID
	add := func(v graph.NodeID) {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			nodes = append(nodes, v)
		}
	}
	for _, e := range edges {
		add(e.U)
		add(e.V)
	}
	// Insertion order is DFS-ish; sort for determinism.
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j] < nodes[j-1]; j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
	d.BlockNodes = append(d.BlockNodes, nodes)
	for _, v := range nodes {
		d.BlocksOf[v] = append(d.BlocksOf[v], id)
	}
}

// Stats summarises a decomposition the way Table I reports it: the number
// of blocks, the node count of the largest block, and the average node
// count per block.
type Stats struct {
	Count int
	Max   int
	Avg   float64
}

// Summarize computes block statistics.
func (d *Decomposition) Summarize() Stats {
	s := Stats{Count: d.NumBlocks()}
	total := 0
	for _, nodes := range d.BlockNodes {
		total += len(nodes)
		if len(nodes) > s.Max {
			s.Max = len(nodes)
		}
	}
	if s.Count > 0 {
		s.Avg = float64(total) / float64(s.Count)
	}
	return s
}

// CommonBlock returns a block id containing both u and v, or -1. Cut
// vertices have short block lists in practice; the scan intersects the
// smaller list against a set of the larger one only when both are long.
func (d *Decomposition) CommonBlock(u, v graph.NodeID) int32 {
	a, b := d.BlocksOf[u], d.BlocksOf[v]
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) <= 8 {
		for _, x := range a {
			for _, y := range b {
				if x == y {
					return x
				}
			}
		}
		return -1
	}
	set := make(map[int32]struct{}, len(b))
	for _, y := range b {
		set[y] = struct{}{}
	}
	for _, x := range a {
		if _, ok := set[x]; ok {
			return x
		}
	}
	return -1
}

// Validate checks the defining invariants of the decomposition against the
// source graph: every edge in exactly one block, cut flags consistent with
// block membership counts. Used by tests.
func (d *Decomposition) Validate(g *graph.WGraph) error {
	edgeCount := 0
	for _, blk := range d.BlockEdges {
		edgeCount += len(blk)
		for _, e := range blk {
			if w, ok := g.EdgeWeight(e.U, e.V); !ok || w != e.W {
				return fmt.Errorf("bicc: block edge {%d,%d,%d} not in graph", e.U, e.V, e.W)
			}
		}
	}
	if edgeCount != g.NumEdges() {
		return fmt.Errorf("bicc: blocks cover %d edges, graph has %d", edgeCount, g.NumEdges())
	}
	for v := 0; v < g.NumNodes(); v++ {
		inBlocks := len(d.BlocksOf[v])
		if d.IsCut[v] && inBlocks < 2 {
			return fmt.Errorf("bicc: cut vertex %d in %d blocks", v, inBlocks)
		}
		if !d.IsCut[v] && inBlocks > 1 {
			return fmt.Errorf("bicc: non-cut vertex %d in %d blocks", v, inBlocks)
		}
	}
	return nil
}
