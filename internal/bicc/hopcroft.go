package bicc

import (
	"time"

	"repro/internal/graph"
	"repro/internal/par"
)

// frame is one node of the explicit DFS stack.
type frame struct {
	v, parent graph.NodeID
	nextEdge  int32 // index into v's adjacency to resume from
}

// decomposeSequential runs the Hopcroft–Tarjan decomposition with one DFS
// per connected component, components fanned out across workers. Components
// are node-disjoint, so the workers share the disc/low arrays without
// conflict; each component keeps a local timer and local stacks, and the
// per-component block lists are concatenated in ascending order of the
// component's smallest node before the shared canonical assembler numbers
// them. A connected input (the pipeline's guarantee) has one component and
// degenerates to a single sequential DFS — which is why realistic inputs
// need the parallel engine in fastbcc.go.
func decomposeSequential(g *graph.WGraph, workers int) (*Decomposition, Timings) {
	n := g.NumNodes()
	var t Timings
	if n == 0 {
		return assemble(0, nil, workers), t
	}
	const unvisited = int32(-1)
	disc := make([]int32, n)
	low := make([]int32, n)
	par.FillInt32(disc, unvisited, workers)

	// Label components by their smallest node; roots come out ascending.
	comp := disc // reuse: unvisited doubles as "no component yet"
	var roots []graph.NodeID
	var bfsQ []graph.NodeID
	for v := 0; v < n; v++ {
		if comp[v] != unvisited {
			continue
		}
		roots = append(roots, graph.NodeID(v))
		comp[v] = int32(len(roots) - 1)
		bfsQ = append(bfsQ[:0], graph.NodeID(v))
		for len(bfsQ) > 0 {
			u := bfsQ[len(bfsQ)-1]
			bfsQ = bfsQ[:len(bfsQ)-1]
			for _, w := range g.Neighbors(u) {
				if comp[w] == unvisited {
					comp[w] = comp[u]
					bfsQ = append(bfsQ, w)
				}
			}
		}
	}
	// Reset disc for the DFS passes (comp aliased it); each component's DFS
	// then touches only its own disjoint entries.
	par.FillInt32(disc, unvisited, workers)
	perComp := make([][][]Edge, len(roots))
	if len(roots) == 1 {
		perComp[0] = decomposeComponent(g, roots[0], disc, low)
	} else {
		par.ForDynamic(len(roots), workers, 1, func(_, c int) {
			perComp[c] = decomposeComponent(g, graph.NodeID(roots[c]), disc, low)
		})
	}
	var blocks [][]Edge
	for _, bs := range perComp {
		blocks = append(blocks, bs...)
	}
	asmStart := time.Now()
	d := assemble(n, blocks, workers)
	t.Assemble = time.Since(asmStart)
	return d, t
}

// decomposeComponent runs the iterative Hopcroft–Tarjan DFS over the
// component containing root, writing disc/low entries only for that
// component's nodes and returning its blocks in emission order (the
// canonical assembler renumbers them). Safe to run concurrently for
// node-disjoint components sharing the arrays.
func decomposeComponent(g *graph.WGraph, root graph.NodeID, disc, low []int32) [][]Edge {
	const unvisited = int32(-1)
	var blocks [][]Edge
	var timer int32
	var edgeStack []Edge
	var stack []frame

	emitBlock := func(u, v graph.NodeID) {
		// Pop edges until (u,v) inclusive; they form one block.
		var blk []Edge
		for len(edgeStack) > 0 {
			e := edgeStack[len(edgeStack)-1]
			edgeStack = edgeStack[:len(edgeStack)-1]
			blk = append(blk, e)
			if e.U == u && e.V == v {
				break
			}
		}
		blocks = append(blocks, blk)
	}

	disc[root] = timer
	low[root] = timer
	timer++
	stack = append(stack, frame{v: root, parent: -1})
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		v := f.v
		nbrs := g.Neighbors(v)
		ws := g.Weights(v)
		advanced := false
		for int(f.nextEdge) < len(nbrs) {
			w := nbrs[f.nextEdge]
			wt := ws[f.nextEdge]
			f.nextEdge++
			if w == f.parent {
				continue // simple graph: exactly one parent edge
			}
			if disc[w] == unvisited {
				disc[w] = timer
				low[w] = timer
				timer++
				edgeStack = append(edgeStack, Edge{U: v, V: w, W: wt})
				stack = append(stack, frame{v: w, parent: v})
				advanced = true
				break
			}
			if disc[w] < disc[v] {
				// Back edge to an ancestor.
				edgeStack = append(edgeStack, Edge{U: v, V: w, W: wt})
				if disc[w] < low[v] {
					low[v] = disc[w]
				}
			}
		}
		if advanced {
			continue
		}
		// v is finished; propagate low to parent and test the
		// articulation condition for the tree edge parent→v.
		stack = stack[:len(stack)-1]
		if f.parent >= 0 {
			p := f.parent
			if low[v] < low[p] {
				low[p] = low[v]
			}
			if low[v] >= disc[p] {
				emitBlock(p, v)
			}
		}
	}
	return blocks
}
