package gen

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/reduce"
)

func TestGeneratorsConnectedAndSimple(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"erdosrenyi", ErdosRenyi(500, 1500, 1)},
		{"barabasi", BarabasiAlbert(500, 3, 2)},
		{"rmat", RMAT(9, 8, 0.57, 0.19, 0.19, 3)},
		{"wattsstrogatz", WattsStrogatz(500, 3, 0.1, 4)},
		{"plantedpartition", PlantedPartition(5, 50, 4, 0.5, 5)},
		{"grid", Grid(20, 20, 0.2, 6)},
		{"web", Web(2000, 7)},
		{"social", Social(2000, 8)},
		{"community", Community(2000, 9)},
		{"road", Road(2000, 10)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.g.NumNodes() == 0 {
				t.Fatal("empty graph")
			}
			if !graph.IsConnected(c.g) {
				t.Fatal("not connected")
			}
			if err := c.g.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Web(1500, 42)
	b := Web(1500, 42)
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("non-deterministic sizes")
	}
	var edgesA, edgesB [][2]graph.NodeID
	a.Edges(func(u, v graph.NodeID) { edgesA = append(edgesA, [2]graph.NodeID{u, v}) })
	b.Edges(func(u, v graph.NodeID) { edgesB = append(edgesB, [2]graph.NodeID{u, v}) })
	for i := range edgesA {
		if edgesA[i] != edgesB[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, edgesA[i], edgesB[i])
		}
	}
	c := Web(1500, 43)
	if c.NumEdges() == a.NumEdges() && c.NumNodes() == a.NumNodes() {
		// Different seeds are allowed to coincide in size but it is
		// suspicious; check the first edges differ somewhere.
		var diff bool
		var edgesC [][2]graph.NodeID
		c.Edges(func(u, v graph.NodeID) { edgesC = append(edgesC, [2]graph.NodeID{u, v}) })
		for i := range edgesA {
			if i < len(edgesC) && edgesA[i] != edgesC[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

// TestClassFingerprints asserts the structural properties each class
// generator is supposed to exhibit (the knobs the paper's Section IV-C2
// analysis keys on).
func TestClassFingerprints(t *testing.T) {
	const n = 4000
	t.Run("web", func(t *testing.T) {
		g := Web(n, 1)
		red, err := reduce.Run(g, reduce.All())
		if err != nil {
			t.Fatal(err)
		}
		nn := float64(g.NumNodes())
		if frac := float64(red.Stats.IdenticalNodes) / nn; frac < 0.2 {
			t.Errorf("web identical fraction = %.2f, want >= 0.2", frac)
		}
		if red.Stats.RedundantNodes == 0 {
			t.Error("web should have redundant nodes")
		}
		if red.Stats.IdenticalChainNodes == 0 {
			t.Error("web should have identical chains")
		}
	})
	t.Run("social", func(t *testing.T) {
		g := Social(n, 2)
		red, err := reduce.Run(g, reduce.All())
		if err != nil {
			t.Fatal(err)
		}
		nn := float64(g.NumNodes())
		if frac := float64(red.Stats.IdenticalNodes) / nn; frac < 0.2 {
			t.Errorf("social identical fraction = %.2f, want >= 0.2", frac)
		}
		if frac := float64(red.Stats.RedundantNodes) / nn; frac > 0.02 {
			t.Errorf("social redundant fraction = %.3f, want tiny", frac)
		}
	})
	t.Run("road", func(t *testing.T) {
		g := Road(n, 3)
		s := graph.Degrees(g)
		lowDeg := float64(s.CountDeg1+s.CountDeg2) / float64(g.NumNodes())
		if lowDeg < 0.6 {
			t.Errorf("road degree-1/2 fraction = %.2f, want >= 0.6", lowDeg)
		}
		red, err := reduce.Run(g, reduce.All())
		if err != nil {
			t.Fatal(err)
		}
		if float64(red.Stats.ChainNodes)/float64(g.NumNodes()) < 0.5 {
			t.Errorf("road chain fraction too low: %d of %d", red.Stats.ChainNodes, g.NumNodes())
		}
	})
}

func TestDatasetsRegistry(t *testing.T) {
	ds := Datasets(0.1)
	if len(ds) != 12 {
		t.Fatalf("datasets = %d, want 12", len(ds))
	}
	classes := map[Class]int{}
	for _, d := range ds {
		classes[d.Class]++
		if d.Nodes < 64 {
			t.Errorf("%s: nodes = %d below floor", d.Name, d.Nodes)
		}
		if d.PaperNodes <= 0 || d.PaperEdges <= 0 {
			t.Errorf("%s: missing paper sizes", d.Name)
		}
	}
	for _, c := range []Class{ClassWeb, ClassSocial, ClassCommunity, ClassRoad} {
		if classes[c] != 3 {
			t.Errorf("class %s has %d datasets, want 3", c, classes[c])
		}
	}
	if _, ok := ByName("usroads", 0.1); !ok {
		t.Error("ByName(usroads) failed")
	}
	if _, ok := ByName("usroads (sim)", 0.1); !ok {
		t.Error("ByName with suffix failed")
	}
	if _, ok := ByName("nope", 0.1); ok {
		t.Error("ByName(nope) should fail")
	}
}

func TestDatasetBuildSmall(t *testing.T) {
	for _, d := range Datasets(0.05) {
		g := d.Build()
		if !graph.IsConnected(g) {
			t.Errorf("%s: disconnected", d.Name)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}
