package gen

import (
	"math/rand"

	"repro/internal/graph"
)

// The four class generators below are tuned to the structural fingerprints
// the paper reports per graph class (Section IV-C2):
//
//	web:       ~44% identical nodes, ~54% degree-1/2 nodes, ~2.4% redundant
//	           nodes, very many biconnected components with a heavy tail.
//	social:    ~38% identical nodes, many degree-1/2 nodes, almost no
//	           redundant nodes, skewed BiCC distribution (largest ≈ 72%).
//	community: moderate twins/chains/redundant, one BiCC covering ~80%.
//	road:      70–85% degree-1/2 nodes, almost no twins or redundant
//	           nodes, few BiCCs with the largest covering >90%.

// attachTwinLeaves adds `count` leaf nodes in twin groups of the given mean
// size, each group hanging off one existing node, preferring high-degree
// targets (web-style hubs collect many identical leaves).
func attachTwinLeaves(b *graph.Builder, rng *rand.Rand, base, count, meanGroup int, next *graph.NodeID) {
	for count > 0 {
		g := 2 + rng.Intn(2*meanGroup-3+1) // 2..2*meanGroup-1, mean ≈ meanGroup
		if g > count {
			g = count
		}
		hub := graph.NodeID(rng.Intn(base))
		for i := 0; i < g; i++ {
			_ = b.AddEdge(hub, *next)
			*next++
		}
		count -= g
	}
}

// attachMidTwins adds pairs of non-leaf identical nodes: each pair attaches
// to the same 2-3 random core nodes.
func attachMidTwins(b *graph.Builder, rng *rand.Rand, base, pairs int, next *graph.NodeID) {
	for p := 0; p < pairs; p++ {
		deg := 2 + rng.Intn(2)
		targets := map[graph.NodeID]bool{}
		for len(targets) < deg {
			targets[graph.NodeID(rng.Intn(base))] = true
		}
		a, c := *next, *next+1
		*next += 2
		for t := range targets {
			_ = b.AddEdge(a, t)
			_ = b.AddEdge(c, t)
		}
	}
}

// attachChains adds dangling chains of mean length meanLen.
func attachChains(b *graph.Builder, rng *rand.Rand, base, count, meanLen int, next *graph.NodeID) {
	for count > 0 {
		l := 1 + rng.Intn(2*meanLen-1)
		if l > count {
			l = count
		}
		prev := graph.NodeID(rng.Intn(base))
		for i := 0; i < l; i++ {
			_ = b.AddEdge(prev, *next)
			prev = *next
			*next++
		}
		count -= l
	}
}

// attachIdenticalChains adds `pairs` pairs of equal-length parallel chains
// (the paper's Type-4 identical chains) between random core node pairs.
func attachIdenticalChains(b *graph.Builder, rng *rand.Rand, base, pairs, meanLen int, next *graph.NodeID) {
	for p := 0; p < pairs; p++ {
		u := graph.NodeID(rng.Intn(base))
		v := graph.NodeID(rng.Intn(base))
		if u == v {
			continue
		}
		l := 1 + rng.Intn(2*meanLen-1)
		for c := 0; c < 2; c++ {
			prev := u
			for i := 0; i < l; i++ {
				_ = b.AddEdge(prev, *next)
				prev = *next
				*next++
			}
			_ = b.AddEdge(prev, v)
		}
	}
}

// attachRedundant adds `count` nodes each placed on a fresh triangle of
// core nodes, making them 3-degree redundant.
func attachRedundant(b *graph.Builder, rng *rand.Rand, base, count int, next *graph.NodeID) {
	for i := 0; i < count; i++ {
		x := graph.NodeID(rng.Intn(base))
		y := graph.NodeID(rng.Intn(base))
		z := graph.NodeID(rng.Intn(base))
		if x == y || y == z || x == z {
			continue
		}
		_ = b.AddEdge(x, y)
		_ = b.AddEdge(y, z)
		_ = b.AddEdge(x, z)
		_ = b.AddEdge(*next, x)
		_ = b.AddEdge(*next, y)
		_ = b.AddEdge(*next, z)
		*next++
	}
}

// Web generates a web-graph stand-in with n total nodes: a scale-free core
// of ~n/4 nodes carrying ~44% twins, dangling chains and a sprinkle of
// redundant nodes, yielding very many small biconnected components.
func Web(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	core := n / 4
	if core < 10 {
		core = 10
	}
	b := graph.NewGrowingBuilder()
	// Scale-free core via preferential attachment.
	pool := []graph.NodeID{0, 1}
	_ = b.AddEdge(0, 1)
	for v := 2; v < core; v++ {
		deg := 1 + rng.Intn(3)
		for j := 0; j < deg; j++ {
			t := pool[rng.Intn(len(pool))]
			if int(t) != v {
				_ = b.AddEdge(graph.NodeID(v), t)
				pool = append(pool, graph.NodeID(v), t)
			}
		}
	}
	next := graph.NodeID(core)
	twinBudget := int(0.44 * float64(n))
	attachTwinLeaves(b, rng, core, twinBudget*3/4, 4, &next)
	attachMidTwins(b, rng, core, twinBudget/8, &next)
	attachChains(b, rng, core, int(0.22*float64(n)), 3, &next)
	attachIdenticalChains(b, rng, core, int(0.012*float64(n)), 2, &next)
	attachRedundant(b, rng, core, int(0.024*float64(n)), &next)
	return graph.Connect(b.Build())
}

// Social generates a social-network stand-in: a denser preferential core of
// ~n/2 nodes, ~38% twins, chains, and (deliberately) almost no redundant
// nodes; the reduced graph keeps one dominant biconnected component.
func Social(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	core := n / 2
	if core < 10 {
		core = 10
	}
	b := graph.NewGrowingBuilder()
	pool := []graph.NodeID{0, 1}
	_ = b.AddEdge(0, 1)
	for v := 2; v < core; v++ {
		deg := 2 + rng.Intn(5)
		for j := 0; j < deg; j++ {
			t := pool[rng.Intn(len(pool))]
			if int(t) != v {
				_ = b.AddEdge(graph.NodeID(v), t)
				pool = append(pool, graph.NodeID(v), t)
			}
		}
	}
	next := graph.NodeID(core)
	twinBudget := int(0.38 * float64(n))
	attachTwinLeaves(b, rng, core, twinBudget, 3, &next)
	attachChains(b, rng, core, int(0.10*float64(n)), 2, &next)
	attachIdenticalChains(b, rng, core, int(0.004*float64(n)), 2, &next)
	return graph.Connect(b.Build())
}

// Community generates a community-network stand-in: planted partition core
// (~70% of nodes) whose reduced graph keeps one biconnected component
// covering ~80%, plus moderate twins, chains and redundant nodes.
func Community(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	core := int(0.7 * float64(n))
	comms := 8 + rng.Intn(5)
	csize := core / comms
	if csize < 5 {
		csize = 5
	}
	core = comms * csize
	b := graph.NewGrowingBuilder()
	for c := 0; c < comms; c++ {
		base := c * csize
		for i := 0; i < csize*3; i++ {
			_ = b.AddEdge(graph.NodeID(base+rng.Intn(csize)), graph.NodeID(base+rng.Intn(csize)))
		}
	}
	for i := 0; i < core/2; i++ {
		_ = b.AddEdge(graph.NodeID(rng.Intn(core)), graph.NodeID(rng.Intn(core)))
	}
	next := graph.NodeID(core)
	attachTwinLeaves(b, rng, core, int(0.10*float64(n)), 3, &next)
	attachChains(b, rng, core, int(0.13*float64(n)), 3, &next)
	attachIdenticalChains(b, rng, core, int(0.008*float64(n)), 2, &next)
	attachRedundant(b, rng, core, int(0.03*float64(n)), &next)
	return graph.Connect(b.Build())
}

// Road generates a road-network stand-in: a sparse planar-ish grid whose
// edges are subdivided into chains, giving 70–85% degree-≤2 nodes, a
// dominant biconnected component, and essentially no twins or redundant
// nodes.
func Road(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	// Junction grid: n/meanChainLen nodes.
	meanSub := 4
	junctions := n / meanSub
	side := 1
	for side*side < junctions {
		side++
	}
	g := Grid(side, side, 0.25, seed)
	// Subdivide each edge into a path of 1..2*meanSub-1 nodes.
	b := graph.NewGrowingBuilder()
	next := graph.NodeID(g.NumNodes())
	g.Edges(func(u, v graph.NodeID) {
		l := rng.Intn(2*meanSub - 1)
		prev := u
		for i := 0; i < l; i++ {
			_ = b.AddEdge(prev, next)
			prev = next
			next++
		}
		_ = b.AddEdge(prev, v)
	})
	return graph.Connect(b.Build())
}
