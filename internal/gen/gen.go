// Package gen produces deterministic synthetic graphs. Because this module
// is offline, the twelve real-world datasets of the paper's Table I cannot
// be downloaded; instead each is simulated by a generator tuned to the
// structural fingerprint the BRICS techniques key on — the fraction of
// identical nodes, of degree-1/2 chain nodes, of redundant 3/4-degree
// nodes, and the shape of the biconnected decomposition (see DESIGN.md's
// substitution table). internal/io can load the real datasets when a user
// supplies the files.
//
// All generators are deterministic in their seed and return simple,
// undirected, connected graphs.
package gen

import (
	"math/rand"

	"repro/internal/graph"
)

// ErdosRenyi returns a connected G(n, m)-style random graph: m edges drawn
// uniformly, then connected with the minimum number of bridge edges.
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		_ = b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return graph.Connect(b.Build())
}

// BarabasiAlbert returns a preferential-attachment graph: each new node
// attaches to mPerNode existing nodes chosen proportionally to degree
// (implemented with the repeated-endpoint trick).
func BarabasiAlbert(n, mPerNode int, seed int64) *graph.Graph {
	if mPerNode < 1 {
		mPerNode = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// Endpoint pool: every edge contributes both endpoints, so sampling
	// the pool is degree-proportional sampling.
	pool := make([]graph.NodeID, 0, 2*n*mPerNode)
	start := mPerNode + 1
	if start > n {
		start = n
	}
	for i := 1; i < start; i++ {
		_ = b.AddEdge(graph.NodeID(i-1), graph.NodeID(i))
		pool = append(pool, graph.NodeID(i-1), graph.NodeID(i))
	}
	for v := start; v < n; v++ {
		chosen := map[graph.NodeID]bool{}
		for len(chosen) < mPerNode {
			var t graph.NodeID
			if len(pool) == 0 || rng.Intn(8) == 0 {
				t = graph.NodeID(rng.Intn(v))
			} else {
				t = pool[rng.Intn(len(pool))]
			}
			if int(t) != v {
				chosen[t] = true
			}
		}
		for t := range chosen {
			_ = b.AddEdge(graph.NodeID(v), t)
			pool = append(pool, graph.NodeID(v), t)
		}
	}
	return graph.Connect(b.Build())
}

// RMAT returns a Kronecker-style power-law graph over 2^scale nodes with
// approximately edgeFactor·2^scale edges, using the classic (a,b,c,d)
// quadrant probabilities. Duplicate edges collapse, so the effective edge
// count is lower, as in real RMAT use.
func RMAT(scale int, edgeFactor int, a, bb, c float64, seed int64) *graph.Graph {
	n := 1 << scale
	m := edgeFactor * n
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		var u, v int
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
			case r < a+bb:
				v |= 1 << bit
			case r < a+bb+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		_ = b.AddEdge(graph.NodeID(u), graph.NodeID(v))
	}
	return graph.Connect(b.Build())
}

// WattsStrogatz returns a small-world ring lattice with k neighbours per
// side and rewiring probability beta.
func WattsStrogatz(n, k int, beta float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			t := (v + j) % n
			if rng.Float64() < beta {
				t = rng.Intn(n)
			}
			_ = b.AddEdge(graph.NodeID(v), graph.NodeID(t))
		}
	}
	return graph.Connect(b.Build())
}

// PlantedPartition returns a community graph: `comms` communities of size
// csize with intra-community edge probability pin approximated by per-node
// degree din, and dout random cross-community edges per node.
func PlantedPartition(comms, csize int, din, dout float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := comms * csize
	b := graph.NewBuilder(n)
	for c := 0; c < comms; c++ {
		base := c * csize
		intra := int(din * float64(csize) / 2)
		for i := 0; i < intra*csize/csize; i++ {
			_ = i
		}
		edges := int(din * float64(csize))
		for i := 0; i < edges; i++ {
			_ = b.AddEdge(graph.NodeID(base+rng.Intn(csize)), graph.NodeID(base+rng.Intn(csize)))
		}
	}
	cross := int(dout * float64(n))
	for i := 0; i < cross; i++ {
		_ = b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return graph.Connect(b.Build())
}

// Grid returns a w×h lattice with a fraction of edges randomly deleted
// (connectivity restored afterwards) — the skeleton of the road-network
// generator.
func Grid(w, h int, dropFraction float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := w * h
	b := graph.NewBuilder(n)
	id := func(x, y int) graph.NodeID { return graph.NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w && rng.Float64() >= dropFraction {
				_ = b.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h && rng.Float64() >= dropFraction {
				_ = b.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	return graph.Connect(b.Build())
}
