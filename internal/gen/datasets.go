package gen

import "repro/internal/graph"

// Class labels the four graph classes of the paper's Table I.
type Class string

// The four classes evaluated in the paper.
const (
	ClassWeb       Class = "web"
	ClassSocial    Class = "social"
	ClassCommunity Class = "community"
	ClassRoad      Class = "road"
)

// Dataset is one stand-in for a Table I graph. Build is deterministic.
type Dataset struct {
	// Name matches the paper's dataset row, suffixed "(sim)" because the
	// graph is a structural simulation, not the original file.
	Name string
	// Class is the paper's grouping.
	Class Class
	// PaperNodes and PaperEdges are the original sizes from Table I.
	PaperNodes, PaperEdges int
	// Nodes is the simulated target size (scaled down to laptop scale;
	// the paper's evaluation machine had 40 hardware threads and 128 GB).
	Nodes int
	// Seed drives the generator.
	Seed int64
	// Build generates the graph.
	Build func() *graph.Graph
}

// Datasets returns the twelve Table I stand-ins in the paper's order:
// three web graphs, three social graphs, three community networks, three
// road networks. The `scale` parameter multiplies the default node counts
// (1.0 ≈ 10–20× smaller than the originals); use smaller scales in unit
// tests.
func Datasets(scale float64) []Dataset {
	if scale <= 0 {
		scale = 1
	}
	sz := func(n int) int {
		s := int(float64(n) * scale)
		if s < 64 {
			s = 64
		}
		return s
	}
	mk := func(name string, class Class, pn, pe, nodes int, seed int64, build func(n int, seed int64) *graph.Graph) Dataset {
		n := sz(nodes)
		return Dataset{
			Name: name + " (sim)", Class: class,
			PaperNodes: pn, PaperEdges: pe,
			Nodes: n, Seed: seed,
			Build: func() *graph.Graph { return build(n, seed) },
		}
	}
	return []Dataset{
		mk("web-NotreDame", ClassWeb, 325728, 1082486, 16000, 101, Web),
		mk("web-BerkStan", ClassWeb, 685230, 6650145, 20000, 102, Web),
		mk("webbase-1M", ClassWeb, 1000005, 2108301, 24000, 103, Web),
		mk("soc-Slashdot081106", ClassSocial, 77360, 469180, 10000, 201, Social),
		mk("soc-Slashdot090216", ClassSocial, 82168, 504230, 11000, 202, Social),
		mk("soc-douban", ClassSocial, 131580, 828255, 13000, 203, Social),
		mk("caidaRouterLevel", ClassCommunity, 192244, 609373, 12000, 301, Community),
		mk("com-citationCiteseer", ClassCommunity, 268495, 1156647, 14000, 302, Community),
		mk("com-amazon", ClassCommunity, 334863, 925872, 14000, 303, Community),
		mk("osm-minnesota", ClassRoad, 2642, 3304, 2642, 401, Road),
		mk("osm-luxembourg", ClassRoad, 114599, 119666, 12000, 402, Road),
		mk("usroads", ClassRoad, 29164, 284142, 8000, 403, Road),
	}
}

// ByName returns the dataset with the given name (with or without the
// " (sim)" suffix), or false.
func ByName(name string, scale float64) (Dataset, bool) {
	for _, d := range Datasets(scale) {
		if d.Name == name || d.Name == name+" (sim)" {
			return d, true
		}
	}
	return Dataset{}, false
}
