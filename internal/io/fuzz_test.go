package io

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList: arbitrary input must never panic, and accepted graphs
// must pass structural validation and round-trip through the writer.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n5 5\n5 6\n")
	f.Add("")
	f.Add("999999 1\n")
	f.Add("-3 4\n")
	f.Add("0 1 extra fields ignored\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip lost edges: %d vs %d", g2.NumEdges(), g.NumEdges())
		}
	})
}

// FuzzReadDIMACS: arbitrary input must never panic — malformed arc lines,
// arcs before the problem line, overflow ids and truncated files must all
// come back as errors.
func FuzzReadDIMACS(f *testing.F) {
	f.Add("c comment\np sp 4 2\na 1 2 7\na 2 3 1\n")
	f.Add("p sp 3 1\na 1 2")               // truncated final line, no newline
	f.Add("a 1 2 3\n")                     // arc before problem line
	f.Add("p sp 999999999999 1\na 1 2 3")  // node count overflows MaxNodeID
	f.Add("p sp 3 1\na 99999999999 2 3\n") // arc id overflows int32
	f.Add("p sp 3 1\na -1 2 3\n")          // negative id
	f.Add("p tw 3 1\n")                    // wrong problem kind
	f.Add("q nonsense\n")                  // unknown record type
	f.Add("p sp 3 1\na 1\n")               // short arc line
	f.Add("")                              // empty file
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadDIMACS(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
	})
}

// FuzzReadEdgeListTruncated: every prefix of a valid file either parses to a
// structurally valid graph or errors cleanly — a torn download must never
// panic or produce a graph that fails validation.
func FuzzReadEdgeListTruncated(f *testing.F) {
	const whole = "# nodes 5 edges 4\n0 1\n1 2\n2 3\n3 4\n"
	for cut := 0; cut <= len(whole); cut += 3 {
		f.Add(whole[:cut])
	}
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("truncated input accepted but invalid: %v", err)
		}
	})
}

// FuzzReadMatrixMarket: arbitrary input must never panic.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n1 2\n2 3\n")
	f.Add("%%MatrixMarket\n\n1 1 0\n")
	f.Add("%%MatrixMarket matrix\n2 2 1\n9 9\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadMatrixMarket(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
	})
}
