package io

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList: arbitrary input must never panic, and accepted graphs
// must pass structural validation and round-trip through the writer.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n5 5\n5 6\n")
	f.Add("")
	f.Add("999999 1\n")
	f.Add("-3 4\n")
	f.Add("0 1 extra fields ignored\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip lost edges: %d vs %d", g2.NumEdges(), g.NumEdges())
		}
	})
}

// FuzzReadMatrixMarket: arbitrary input must never panic.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n1 2\n2 3\n")
	f.Add("%%MatrixMarket\n\n1 1 0\n")
	f.Add("%%MatrixMarket matrix\n2 2 1\n9 9\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadMatrixMarket(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
	})
}
