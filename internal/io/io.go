// Package io reads and writes graph files. Readers accept the formats the
// paper's datasets ship in — SNAP whitespace edge lists, Matrix Market
// coordinate files (UF Sparse Matrix collection) and DIMACS .gr — optionally
// gzip-compressed, plus the repo's own .bricsbin binary CSR artifacts
// (package bincsr), and normalise per the paper's preprocessing: simple,
// undirected, self-loop-free. Connectivity is the caller's choice
// (graph.Connect). ReadAny dispatches among all of them by extension and
// magic-byte sniffing.
package io

import (
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/bincsr"
	"repro/internal/graph"
)

// MaxNodeID bounds accepted node identifiers (2^27 ≈ 134M). Ids are used
// directly as dense indices, so a single absurd id in a corrupt file would
// otherwise allocate gigabytes; the largest paper dataset has 10^6 nodes.
// Binary artifacts are bounded identically (it aliases graph.MaxNodeID, the
// bound bincsr enforces).
const MaxNodeID = graph.MaxNodeID

// ErrTruncated reports an input shorter than its own framing promises: a
// binary artifact cut mid-section, or a gzip stream missing its trailer. It
// aliases bincsr.ErrTruncated so errors.Is works across both packages.
var ErrTruncated = bincsr.ErrTruncated

// ReadEdgeList parses a SNAP-style edge list: one "u v" pair per line,
// '#' and '%' comment lines ignored. Node ids may be arbitrary
// non-negative integers up to MaxNodeID; they are used directly, so the
// resulting graph has max(id)+1 nodes (SNAP files are usually dense).
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	b := graph.NewGrowingBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("io: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("io: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("io: line %d: %v", lineNo, err)
		}
		if u > MaxNodeID || v > MaxNodeID {
			return nil, fmt.Errorf("io: line %d: node id exceeds MaxNodeID (%d)", lineNo, MaxNodeID)
		}
		if err := b.AddEdge(graph.NodeID(u), graph.NodeID(v)); err != nil {
			return nil, fmt.Errorf("io: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// ReadMatrixMarket parses a Matrix Market coordinate file as an undirected
// graph (values, if present, are ignored; the pattern is what matters).
// Ids in the file are 1-based.
func ReadMatrixMarket(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	// Header.
	if !sc.Scan() {
		return nil, fmt.Errorf("io: empty MatrixMarket file")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, "%%MatrixMarket") {
		return nil, fmt.Errorf("io: missing MatrixMarket header, got %q", header)
	}
	// Size line (first non-comment).
	var n int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("io: bad size line %q", line)
		}
		rows, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, err
		}
		cols, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, err
		}
		if cols > rows {
			rows = cols
		}
		if rows > MaxNodeID {
			return nil, fmt.Errorf("io: matrix dimension %d exceeds MaxNodeID (%d)", rows, MaxNodeID)
		}
		n = rows
		break
	}
	b := graph.NewBuilder(n)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("io: bad entry line %q", line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, err
		}
		if err := b.AddEdge(graph.NodeID(u-1), graph.NodeID(v-1)); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// ReadFile loads a graph from a path; it is ReadAny under the historical
// name.
func ReadFile(path string) (*graph.Graph, error) { return ReadAny(path) }

// ReadAny loads a graph from a path in any supported format, dispatching on
// extension — .bricsbin (binary CSR artifact), .mtx (Matrix Market), .gr
// (DIMACS shortest path), anything else an edge list — with transparent .gz
// decompression. A file whose first bytes are the bincsr magic is decoded
// as an artifact regardless of its name, so renamed artifacts keep working
// and a text parser never chews through binary data. Weighted artifacts
// yield their unweighted view (every consumer of this entry point is an
// unweighted analysis).
//
// Close errors from the file and any gzip layer are propagated: a
// decompressor that detects a corrupt trailer only at Close must not let
// the load report success. Short reads surface as ErrTruncated.
func ReadAny(path string) (g *graph.Graph, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer closeKeepErr(&err, f)
	var r io.Reader = f
	name := path
	if strings.HasSuffix(name, ".gz") {
		gz, gerr := gzip.NewReader(f)
		if gerr != nil {
			return nil, fmt.Errorf("io: %s: %v", path, gerr)
		}
		defer closeKeepErr(&err, gz)
		r = gz
		name = strings.TrimSuffix(name, ".gz")
	}
	tr := &truncTracker{r: r}
	br := bufio.NewReaderSize(tr, 1<<20)
	magic, _ := br.Peek(len(bincsr.Magic))
	switch {
	case strings.HasSuffix(name, ".bricsbin") || string(magic) == bincsr.Magic:
		art, aerr := bincsr.Read(br)
		if aerr != nil {
			return nil, fmt.Errorf("io: %s: %w", path, aerr)
		}
		return art.G, nil
	case strings.HasSuffix(name, ".mtx"):
		g, err = ReadMatrixMarket(br)
	case strings.HasSuffix(name, ".gr"):
		g, err = ReadDIMACS(br)
	default:
		g, err = ReadEdgeList(br)
	}
	// A truncated stream (a gzip body cut short, say) usually fails the
	// parser first — the decompressed tail is half a line — so the stream's
	// own truncation signal, not the confused parse error, is the root
	// cause to report.
	if err != nil && (tr.truncated || errors.Is(err, io.ErrUnexpectedEOF)) {
		err = fmt.Errorf("%w: %s: %v", ErrTruncated, path, err)
	} else if err == nil && tr.truncated {
		return nil, fmt.Errorf("%w: %s", ErrTruncated, path)
	}
	return g, err
}

// truncTracker remembers whether the wrapped reader ever reported an
// unexpected EOF, so ReadAny can attribute downstream parse failures to the
// real cause.
type truncTracker struct {
	r         io.Reader
	truncated bool
}

func (t *truncTracker) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if errors.Is(err, io.ErrUnexpectedEOF) {
		t.truncated = true
	}
	return n, err
}

// closeKeepErr closes c, surfacing its error unless one is already set.
func closeKeepErr(err *error, c io.Closer) {
	if cerr := c.Close(); cerr != nil && *err == nil {
		*err = cerr
	}
}

// WriteEdgeList writes g as a SNAP-style edge list with a size comment.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes %d edges %d\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	var werr error
	g.Edges(func(u, v graph.NodeID) {
		if werr == nil {
			_, werr = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// WriteFarnessCSV writes "node,farness,exact" rows.
func WriteFarnessCSV(w io.Writer, farness []float64, exact []bool) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "node,farness,exact"); err != nil {
		return err
	}
	for i, f := range farness {
		ex := false
		if exact != nil {
			ex = exact[i]
		}
		if _, err := fmt.Fprintf(bw, "%d,%g,%v\n", i, f, ex); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDIMACS parses a 9th-DIMACS-challenge shortest-path file (.gr):
// "c" comment lines, one "p sp n m" problem line, and "a u v w" arc lines
// with 1-based ids. Arc weights are dropped — the paper's preprocessing
// treats every graph as unweighted — and both arc directions collapse to
// one undirected edge.
func ReadDIMACS(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b *graph.Builder
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == 'c' {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "p":
			if len(fields) < 4 || fields[1] != "sp" {
				return nil, fmt.Errorf("io: line %d: bad problem line %q", lineNo, line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("io: line %d: %v", lineNo, err)
			}
			if n > MaxNodeID {
				return nil, fmt.Errorf("io: line %d: %d nodes exceeds MaxNodeID", lineNo, n)
			}
			b = graph.NewBuilder(n)
		case "a":
			if b == nil {
				return nil, fmt.Errorf("io: line %d: arc before problem line", lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("io: line %d: bad arc line %q", lineNo, line)
			}
			u, err := strconv.ParseInt(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("io: line %d: %v", lineNo, err)
			}
			v, err := strconv.ParseInt(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("io: line %d: %v", lineNo, err)
			}
			if err := b.AddEdge(graph.NodeID(u-1), graph.NodeID(v-1)); err != nil {
				return nil, fmt.Errorf("io: line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("io: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("io: missing DIMACS problem line")
	}
	return b.Build(), nil
}
