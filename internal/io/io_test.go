package io

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestReadEdgeList(t *testing.T) {
	in := `# SNAP comment
% matrix-style comment

0 1
1 2
2 0
2 2
1 0
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d nodes %d edges, want 3/3", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("0\n")); err == nil {
		t.Error("short line should error")
	}
	if _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Error("non-numeric should error")
	}
	if _, err := ReadEdgeList(strings.NewReader("-1 2\n")); err == nil {
		t.Error("negative id should error")
	}
}

func TestReadMatrixMarket(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
% a comment
4 4 4
1 2
2 3
3 4
4 1
`
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got %d nodes %d edges, want 4/4", g.NumNodes(), g.NumEdges())
	}
	// 1-based ids map to 0-based.
	if !g.HasEdge(0, 1) || !g.HasEdge(3, 0) {
		t.Error("edges mismapped")
	}
}

func TestReadMatrixMarketHeaderRequired(t *testing.T) {
	if _, err := ReadMatrixMarket(strings.NewReader("3 3 1\n1 2\n")); err == nil {
		t.Error("missing header should error")
	}
	if _, err := ReadMatrixMarket(strings.NewReader("")); err == nil {
		t.Error("empty file should error")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := graph.FromEdges(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	g.Edges(func(u, v graph.NodeID) {
		if !g2.HasEdge(u, v) {
			t.Errorf("edge {%d,%d} lost in round trip", u, v)
		}
	})
}

func TestReadFileDispatchAndGzip(t *testing.T) {
	dir := t.TempDir()

	// Plain edge list.
	el := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(el, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFile(el)
	if err != nil || g.NumEdges() != 2 {
		t.Fatalf("edge list: %v, %d edges", err, g.NumEdges())
	}

	// Gzipped Matrix Market.
	mm := filepath.Join(dir, "g.mtx.gz")
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	_, _ = zw.Write([]byte("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n1 2\n2 3\n"))
	_ = zw.Close()
	if err := os.WriteFile(mm, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err = ReadFile(mm)
	if err != nil || g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("mtx.gz: %v, %d/%d", err, g.NumNodes(), g.NumEdges())
	}

	if _, err := ReadFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file should error")
	}
}

func TestWriteFarnessCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFarnessCSV(&buf, []float64{1.5, 2}, []bool{true, false}); err != nil {
		t.Fatal(err)
	}
	want := "node,farness,exact\n0,1.5,true\n1,2,false\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
	buf.Reset()
	if err := WriteFarnessCSV(&buf, []float64{3}, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0,3,false") {
		t.Fatalf("nil exact flags: %q", buf.String())
	}
}

func TestReadDIMACS(t *testing.T) {
	in := `c road network
p sp 4 5
a 1 2 7
a 2 1 7
a 2 3 3
a 3 4 1
a 4 1 2
`
	g, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got %d/%d, want 4 nodes 4 edges (reciprocal arcs collapse)", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(3, 0) {
		t.Error("edges mismapped")
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := []string{
		"a 1 2 3\n",               // arc before problem line
		"p tw 3 3\n",              // wrong problem type
		"p sp 3 3\nx 1 2\n",       // unknown record
		"p sp 3 3\na 9 1 1\n",     // out of range
		"c only comments\n",       // no problem line
		"p sp 999999999 1\n",      // exceeds MaxNodeID
		"p sp 3 3\na one two 3\n", // non-numeric
	}
	for _, in := range cases {
		if _, err := ReadDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should error", in)
		}
	}
}

func TestReadFileDIMACSDispatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "road.gr")
	if err := os.WriteFile(path, []byte("p sp 2 1\na 1 2 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFile(path)
	if err != nil || g.NumEdges() != 1 {
		t.Fatalf("dispatch: %v %d", err, g.NumEdges())
	}
}
