package io

import (
	"bytes"
	"compress/gzip"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bincsr"
	"repro/internal/gen"
	"repro/internal/graph"
)

func sameGraph(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape differs: (%d,%d) vs (%d,%d)",
			a.NumNodes(), a.NumEdges(), b.NumNodes(), b.NumEdges())
	}
	ao, aa := a.CSR()
	bo, ba := b.CSR()
	for i := range ao {
		if ao[i] != bo[i] {
			t.Fatalf("offsets differ at %d", i)
		}
	}
	for i := range aa {
		if aa[i] != ba[i] {
			t.Fatalf("adjacency differs at %d", i)
		}
	}
}

func TestReadAnyDispatch(t *testing.T) {
	dir := t.TempDir()
	g := graph.Connect(gen.Web(300, 3))

	// By extension.
	binPath := filepath.Join(dir, "g.bricsbin")
	if err := bincsr.WriteFile(binPath, g, bincsr.FlagConnected); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAny(binPath)
	if err != nil {
		t.Fatalf("ReadAny(.bricsbin): %v", err)
	}
	sameGraph(t, g, got)

	// By magic sniff: same bytes under a text-looking name.
	data, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	sniffed := filepath.Join(dir, "renamed.txt")
	if err := os.WriteFile(sniffed, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = ReadAny(sniffed)
	if err != nil {
		t.Fatalf("ReadAny(sniffed artifact): %v", err)
	}
	sameGraph(t, g, got)

	// Text edge list still parses (and must not be mistaken for binary).
	txt := filepath.Join(dir, "g.txt")
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(txt, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = ReadAny(txt)
	if err != nil {
		t.Fatalf("ReadAny(.txt): %v", err)
	}
	sameGraph(t, g, got)

	// Gzipped artifact: decompression layered under the sniff.
	gzPath := filepath.Join(dir, "g.bricsbin.gz")
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(gzPath, zbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = ReadAny(gzPath)
	if err != nil {
		t.Fatalf("ReadAny(.bricsbin.gz): %v", err)
	}
	sameGraph(t, g, got)
}

func TestReadAnyTruncated(t *testing.T) {
	dir := t.TempDir()
	g := graph.Connect(gen.Road(200, 4))
	binPath := filepath.Join(dir, "g.bricsbin")
	if err := bincsr.WriteFile(binPath, g, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.bricsbin")
	if err := os.WriteFile(cut, data[:len(data)-32], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAny(cut); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated artifact: err = %v, want ErrTruncated", err)
	}
	// ErrTruncated and bincsr.ErrTruncated are one sentinel.
	if _, err := ReadAny(cut); !errors.Is(err, bincsr.ErrTruncated) {
		t.Fatalf("sentinel aliasing broken: %v", err)
	}

	// A gzip stream cut mid-body is a short read too.
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	var ebuf bytes.Buffer
	if err := WriteEdgeList(&ebuf, g); err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(ebuf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	zcut := filepath.Join(dir, "cut.txt.gz")
	if err := os.WriteFile(zcut, zbuf.Bytes()[:zbuf.Len()-20], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAny(zcut); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated gzip: err = %v, want ErrTruncated", err)
	}
}
