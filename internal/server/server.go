// Package server exposes the BRICS estimators as a JSON-over-HTTP service
// (see cmd/bricsd). The server owns one graph; estimation runs are cached
// per option set and invalidated by dynamic edge updates, which are applied
// through the exact incremental index.
//
// Endpoints:
//
//	GET    /healthz                           liveness
//	GET    /v1/graph                          node/edge counts
//	POST   /v1/estimate                       {"techniques":"BRIC","fraction":0.2,"seed":1}
//	GET    /v1/farness/{node}?...             one node's estimate (same query params)
//	GET    /v1/topk?k=10&...                  verified top-k (exact values)
//	POST   /v1/edges                          {"u":1,"v":2} insert (exact dynamic update)
//	DELETE /v1/edges?u=1&v=2                  remove an edge
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/topk"
)

// Server is the HTTP handler. Create with New; it is safe for concurrent
// use.
type Server struct {
	mu    sync.Mutex
	ix    *dynamic.Index
	cache map[string]*core.Result // estimation cache, cleared on mutation
	mux   *http.ServeMux
}

// New builds a server over a connected graph.
func New(g *graph.Graph, workers int) (*Server, error) {
	ix, err := dynamic.New(g, workers)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ix:    ix,
		cache: make(map[string]*core.Result),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/graph", s.handleGraph)
	s.mux.HandleFunc("/v1/estimate", s.handleEstimate)
	s.mux.HandleFunc("/v1/farness/", s.handleFarness)
	s.mux.HandleFunc("/v1/topk", s.handleTopK)
	s.mux.HandleFunc("/v1/edges", s.handleEdges)
	s.mux.HandleFunc("/v1/distance", s.handleDistance)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type graphBody struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	g := s.ix.Snapshot()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, graphBody{Nodes: g.NumNodes(), Edges: g.NumEdges()})
}

// estimateParams are shared by /v1/estimate, /v1/farness and /v1/topk.
type estimateParams struct {
	Techniques string  `json:"techniques"`
	Fraction   float64 `json:"fraction"`
	Seed       int64   `json:"seed"`
}

func (p *estimateParams) options() (core.Options, error) {
	tech, err := ParseTechniques(p.Techniques)
	if err != nil {
		return core.Options{}, err
	}
	return core.Options{
		Techniques:     tech,
		SampleFraction: p.Fraction,
		Seed:           p.Seed,
	}, nil
}

func (p *estimateParams) key() string {
	return fmt.Sprintf("%s/%g/%d", strings.ToUpper(p.Techniques), p.Fraction, p.Seed)
}

func paramsFromQuery(q map[string][]string) (estimateParams, error) {
	p := estimateParams{Techniques: "BRIC", Fraction: 0.2, Seed: 1}
	if v, ok := q["techniques"]; ok && len(v) > 0 {
		p.Techniques = v[0]
	}
	if v, ok := q["fraction"]; ok && len(v) > 0 {
		f, err := strconv.ParseFloat(v[0], 64)
		if err != nil {
			return p, fmt.Errorf("bad fraction: %v", err)
		}
		p.Fraction = f
	}
	if v, ok := q["seed"]; ok && len(v) > 0 {
		sd, err := strconv.ParseInt(v[0], 10, 64)
		if err != nil {
			return p, fmt.Errorf("bad seed: %v", err)
		}
		p.Seed = sd
	}
	return p, nil
}

// estimate returns the (possibly cached) estimation result for the params.
func (s *Server) estimate(p estimateParams) (*core.Result, error) {
	opts, err := p.options()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if res, ok := s.cache[p.key()]; ok {
		return res, nil
	}
	g := s.ix.Snapshot()
	res, err := core.Estimate(g, opts)
	if err != nil {
		return nil, err
	}
	s.cache[p.key()] = res
	return res, nil
}

type estimateBody struct {
	Nodes       int     `json:"nodes"`
	Samples     int     `json:"samples"`
	ReducedTo   int     `json:"reducedTo"`
	Blocks      int     `json:"blocks"`
	ExactCount  int     `json:"exactCount"`
	MeanFarness float64 `json:"meanFarness"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	p := estimateParams{Techniques: "BRIC", Fraction: 0.2, Seed: 1}
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
		writeErr(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	res, err := s.estimate(p)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	exact := 0
	var mean float64
	for i, f := range res.Farness {
		if res.Exact[i] {
			exact++
		}
		mean += f
	}
	if len(res.Farness) > 0 {
		mean /= float64(len(res.Farness))
	}
	writeJSON(w, http.StatusOK, estimateBody{
		Nodes:       len(res.Farness),
		Samples:     res.Stats.Samples,
		ReducedTo:   res.Stats.ReducedNodes,
		Blocks:      res.Stats.Blocks.Count,
		ExactCount:  exact,
		MeanFarness: mean,
	})
}

type farnessBody struct {
	Node      graph.NodeID `json:"node"`
	Farness   float64      `json:"farness"`
	Closeness float64      `json:"closeness"`
	Exact     bool         `json:"exact"`
}

func (s *Server) handleFarness(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/farness/")
	id, err := strconv.ParseInt(idStr, 10, 32)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad node id %q", idStr)
		return
	}
	p, err := paramsFromQuery(r.URL.Query())
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := s.estimate(p)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if id < 0 || int(id) >= len(res.Farness) {
		writeErr(w, http.StatusNotFound, "node %d out of range", id)
		return
	}
	f := res.Farness[id]
	body := farnessBody{Node: graph.NodeID(id), Farness: f, Exact: res.Exact[id]}
	if f > 0 {
		body.Closeness = 1 / f
	}
	writeJSON(w, http.StatusOK, body)
}

type topkBody struct {
	Nodes    []graph.NodeID `json:"nodes"`
	Farness  []float64      `json:"farness"`
	Verified int            `json:"verified"`
	Certain  bool           `json:"certain"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	k := 10
	if v := q.Get("k"); v != "" {
		kk, err := strconv.Atoi(v)
		if err != nil || kk <= 0 {
			writeErr(w, http.StatusBadRequest, "bad k %q", v)
			return
		}
		k = kk
	}
	p, err := paramsFromQuery(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts, err := p.options()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	g := s.ix.Snapshot()
	s.mu.Unlock()
	res, err := topk.Closeness(g, k, topk.Options{Estimate: opts})
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, topkBody{
		Nodes: res.Nodes, Farness: res.Farness,
		Verified: res.Verified, Certain: res.Certain,
	})
}

type edgeBody struct {
	U graph.NodeID `json:"u"`
	V graph.NodeID `json:"v"`
}

type edgeResult struct {
	Affected int `json:"affected"`
	Edges    int `json:"edges"`
}

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var e edgeBody
		if err := json.NewDecoder(r.Body).Decode(&e); err != nil {
			writeErr(w, http.StatusBadRequest, "bad body: %v", err)
			return
		}
		s.mu.Lock()
		err := s.ix.AddEdge(e.U, e.V)
		affected := s.ix.UpdatedLast
		if err == nil {
			s.cache = make(map[string]*core.Result)
		}
		edges := s.ix.Snapshot().NumEdges()
		s.mu.Unlock()
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, edgeResult{Affected: affected, Edges: edges})
	case http.MethodDelete:
		q := r.URL.Query()
		u, err1 := strconv.ParseInt(q.Get("u"), 10, 32)
		v, err2 := strconv.ParseInt(q.Get("v"), 10, 32)
		if err1 != nil || err2 != nil {
			writeErr(w, http.StatusBadRequest, "u and v query params required")
			return
		}
		s.mu.Lock()
		err := s.ix.RemoveEdge(graph.NodeID(u), graph.NodeID(v))
		affected := s.ix.UpdatedLast
		if err == nil {
			s.cache = make(map[string]*core.Result)
		}
		edges := s.ix.Snapshot().NumEdges()
		s.mu.Unlock()
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, edgeResult{Affected: affected, Edges: edges})
	default:
		writeErr(w, http.StatusMethodNotAllowed, "POST or DELETE")
	}
}

type distanceBody struct {
	From     graph.NodeID `json:"from"`
	To       graph.NodeID `json:"to"`
	Distance int32        `json:"distance"` // -1 when unreachable
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	from, err1 := strconv.ParseInt(q.Get("from"), 10, 32)
	to, err2 := strconv.ParseInt(q.Get("to"), 10, 32)
	if err1 != nil || err2 != nil {
		writeErr(w, http.StatusBadRequest, "from and to query params required")
		return
	}
	s.mu.Lock()
	g := s.ix.Snapshot()
	s.mu.Unlock()
	n := int64(g.NumNodes())
	if from < 0 || to < 0 || from >= n || to >= n {
		writeErr(w, http.StatusNotFound, "node out of range")
		return
	}
	d := bfs.PointToPoint(g, graph.NodeID(from), graph.NodeID(to))
	writeJSON(w, http.StatusOK, distanceBody{From: graph.NodeID(from), To: graph.NodeID(to), Distance: d})
}

// ParseTechniques converts a "BRIC" letter string into a technique mask.
func ParseTechniques(s string) (core.Technique, error) {
	return core.ParseTechniques(s)
}
