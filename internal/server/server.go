// Package server exposes the BRICS estimators as a JSON-over-HTTP service
// (see cmd/bricsd). The server owns one graph; estimation runs are cached
// per option set and invalidated by dynamic edge updates, which are applied
// through the exact incremental index.
//
// Endpoints:
//
//	GET    /healthz                           liveness (never blocks)
//	GET    /readyz                            readiness (503 while draining)
//	GET    /v1/graph                          node/edge counts
//	POST   /v1/estimate                       {"techniques":"BRIC","fraction":0.2,"seed":1,
//	                                           "traversal":"auto","relabel":"none"}
//	GET    /v1/farness/{node}?...             one node's estimate (same query params)
//	GET    /v1/topk?k=10&sketch=1&...         verified top-k (exact values)
//	GET    /v1/distance?from=1&to=2&mode=auto point-to-point distance
//	POST   /v1/edges                          {"u":1,"v":2} insert (exact dynamic update)
//	DELETE /v1/edges?u=1&v=2                  remove an edge
//
// Robustness model. Reads (health, graph, distance, cached estimates) load
// an immutable graph generation with one atomic pointer read and never wait
// behind an in-flight estimation. Concurrent estimate requests with
// identical parameters are deduplicated into a single run (singleflight);
// the run is aborted when its last waiter disconnects or times out. The
// number of simultaneous estimation runs is bounded — excess requests are
// shed with 429 and a Retry-After hint rather than queued. Every estimation
// endpoint honours a per-request deadline (?timeout=..., capped by the
// server's maximum) and a panicking run answers 500 without taking the
// daemon down. Error mapping: invalid parameters 400, capacity 429,
// canceled/draining 503, deadline 504, crash 500.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/sketch"
	"repro/internal/topk"
)

// Config tunes the server's admission control and deadlines. The zero value
// of any field selects its default.
type Config struct {
	// Workers bounds the goroutines of each estimation run
	// (0 = GOMAXPROCS).
	Workers int
	// MaxInflight bounds simultaneous estimation runs; requests beyond it
	// are shed with 429. Default 4.
	MaxInflight int
	// DefaultTimeout applies to estimation requests that carry no
	// ?timeout= parameter. Default 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps any client-requested deadline. Default 5m.
	MaxTimeout time.Duration
	// SoftMargin is how far ahead of a request's hard deadline its soft
	// deadline sits: a degrading (?degrade=accept) estimation request that is
	// still waiting when the soft deadline lands answers with the run's
	// freshest partial snapshot instead of riding into a timeout. Default
	// 500ms, clamped to at most half the request's deadline.
	SoftMargin time.Duration
	// DegradeByDefault selects the policy of estimation requests that carry
	// no ?degrade= parameter: true behaves like degrade=accept (never time
	// out with an empty answer when a partial one exists), false like
	// degrade=reject (exact or error — the historical behaviour, and the
	// default).
	DegradeByDefault bool
	// Sketch configures the per-generation cluster-BFS distance index behind
	// /v1/distance?mode=sketch|auto and /v1/topk?sketch=1. The zero value
	// selects the sketch package defaults; Workers is inherited from the
	// server when unset.
	Sketch sketch.Options
	// AssumeConnected skips the O(n+m) connectivity check at construction.
	// The registry sets it for artifacts whose FlagConnected records that
	// the converter already verified connectivity — the check would fault in
	// every page of an mmap-loaded graph and defeat the lazy load. A lying
	// flag surfaces as an error on the first edge mutation (the dynamic
	// index re-checks when it is built).
	AssumeConnected bool
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.SoftMargin <= 0 {
		c.SoftMargin = 500 * time.Millisecond
	}
	if c.Sketch.Workers == 0 {
		c.Sketch.Workers = c.Workers
	}
	return c
}

// Server is the HTTP handler. Create with New or NewWithConfig; it is safe
// for concurrent use.
type Server struct {
	gen  atomic.Pointer[generation] // current graph snapshot + caches; lock-free reads
	ixMu sync.Mutex                 // serialises edge mutations on ix
	// ix is the exact incremental farness index. It is built lazily, on the
	// first edge mutation: construction costs one BFS per node, which would
	// dominate time-to-first-query — and fault in every page of an
	// mmap-loaded graph — on the overwhelmingly common mutation-free path.
	// The index copies the adjacency into its own maps, so once it exists,
	// mutations never write through to the (possibly mapped, read-only)
	// initial graph. Guarded by ixMu.
	ix *dynamic.Index

	cfg        Config
	sem        chan struct{}   // admission slots for estimation runs
	baseCtx    context.Context // parent of every flight context; canceled by Close
	baseCancel context.CancelFunc
	ready      atomic.Bool
	mux        *http.ServeMux

	genSeq atomic.Uint64 // generation id source; bumped per edge mutation

	// runs is the status registry: every live estimation flight, across all
	// generations, for /v1/status and the progress-based Retry-After hint.
	runsMu sync.Mutex
	runs   map[*flight]struct{}

	// durs is a ring of recent full-run durations; its median anchors the
	// Retry-After estimate.
	durMu sync.Mutex
	durs  [32]time.Duration
	durI  int

	// runWG counts detached estimation goroutines (Server.run). They can
	// outlive the HTTP requests that started them (waiters time out, the run
	// keeps computing for the cache), so an owner about to invalidate the
	// graph's backing memory — the registry, before munmap — must Close and
	// then WaitRuns.
	runWG sync.WaitGroup
}

// New builds a server over a connected graph with default admission and
// deadline settings.
func New(g *graph.Graph, workers int) (*Server, error) {
	return NewWithConfig(g, Config{Workers: workers})
}

// NewWithConfig builds a server over a connected graph. The graph is served
// as-is — it may be a read-only CSR view over mapped memory (bincsr.Mapped);
// the first edge mutation copies it into the dynamic index's own storage.
func NewWithConfig(g *graph.Graph, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if !cfg.AssumeConnected && !graph.IsConnected(g) {
		return nil, fmt.Errorf("server: graph must be connected")
	}
	baseCtx, baseCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		sem:        make(chan struct{}, cfg.MaxInflight),
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		mux:        http.NewServeMux(),
		runs:       make(map[*flight]struct{}),
	}
	s.genSeq.Store(1)
	s.gen.Store(newGeneration(g, 1))
	s.ready.Store(true)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/readyz", s.handleReady)
	s.mux.HandleFunc("/v1/status", s.handleStatus)
	s.mux.HandleFunc("/v1/graph", s.handleGraph)
	s.mux.HandleFunc("/v1/estimate", s.handleEstimate)
	s.mux.HandleFunc("/v1/farness/", s.handleFarness)
	s.mux.HandleFunc("/v1/topk", s.handleTopK)
	s.mux.HandleFunc("/v1/edges", s.handleEdges)
	s.mux.HandleFunc("/v1/distance", s.handleDistance)
	return s, nil
}

// SetReady flips the /readyz answer; cmd/bricsd marks the server not-ready
// at the start of a graceful shutdown so load balancers stop routing to it
// while in-flight requests drain.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Close aborts every in-flight estimation run and marks the server
// not-ready. Subsequent estimation requests fail with 503.
func (s *Server) Close() {
	s.ready.Store(false)
	s.baseCancel()
}

// WaitRuns blocks until every detached estimation goroutine has exited.
// Call after Close (which aborts their contexts) and before invalidating
// the graph's backing memory — e.g. unmapping a bincsr artifact: a run
// traversing an unmapped CSR view is a segfault, not an error.
func (s *Server) WaitRuns() { s.runWG.Wait() }

// ServeHTTP implements http.Handler. A panic in any handler is converted to
// a 500 response instead of crashing the daemon (http.ErrAbortHandler is
// re-raised for net/http to handle).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if v := recover(); v != nil {
			if v == http.ErrAbortHandler {
				panic(v)
			}
			writeErr(w, http.StatusInternalServerError, "internal error: %v", v)
		}
	}()
	if err := fault.Inject(r.Context(), "server.handle"); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.mux.ServeHTTP(w, r)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// writeEstimateErr maps an estimation failure onto its HTTP status:
// capacity 429 (+Retry-After), crash 500, caller deadline 504,
// partial-rejected and canceled/draining 503 (+Retry-After), anything else
// (validation) 400. The Retry-After hint is computed live from the median
// observed run time and the in-flight runs' progress, not a constant.
func (s *Server) writeEstimateErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var pe *panicError
	switch {
	case errors.Is(err, errBusy):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		status = http.StatusTooManyRequests
	case errors.As(err, &pe):
		status = http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, errPartialOnly):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		status = http.StatusServiceUnavailable
	case errors.Is(err, core.ErrCanceled), errors.Is(err, context.Canceled):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		status = http.StatusServiceUnavailable
	}
	writeErr(w, status, "%v", err)
}

// degradeOf parses the ?degrade= policy parameter shared by the estimation
// endpoints, falling back to the configured default when absent.
func (s *Server) degradeOf(q map[string][]string) (bool, error) {
	v := ""
	if vs, ok := q["degrade"]; ok && len(vs) > 0 {
		v = vs[0]
	}
	switch v {
	case "":
		return s.cfg.DegradeByDefault, nil
	case "accept":
		return true, nil
	case "reject":
		return false, nil
	}
	return false, fmt.Errorf("bad degrade %q (want accept or reject)", v)
}

// requestCtx derives the estimation context for one request: the client's
// disconnect signal plus a deadline from ?timeout= (or the server default),
// capped at the configured maximum.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.cfg.DefaultTimeout
	if v := r.URL.Query().Get("timeout"); v != "" {
		pd, err := time.ParseDuration(v)
		if err != nil || pd <= 0 {
			return nil, nil, fmt.Errorf("bad timeout %q (want a positive duration like 30s)", v)
		}
		d = pd
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// runStatus describes one in-flight estimation run for /v1/status.
type runStatus struct {
	Key           string  `json:"key"`
	Generation    uint64  `json:"generation"`
	Completed     int64   `json:"completed"`
	Planned       int64   `json:"planned"`
	Progress      float64 `json:"progress"`
	ElapsedMillis int64   `json:"elapsedMillis"`
}

type statusBody struct {
	Ready           bool        `json:"ready"`
	Generation      uint64      `json:"generation"`
	Nodes           int         `json:"nodes"`
	Edges           int         `json:"edges"`
	Inflight        []runStatus `json:"inflight"`
	CacheEntries    int         `json:"cacheEntries"`
	MedianRunMillis int64       `json:"medianRunMillis"`
	RetryAfter      int         `json:"retryAfter"`
}

// statusSnapshot assembles the server's live state; handleStatus serves it
// directly and the multi-graph registry embeds it per graph.
func (s *Server) statusSnapshot() statusBody {
	gen := s.gen.Load()
	gen.mu.Lock()
	cached := len(gen.cache)
	gen.mu.Unlock()
	body := statusBody{
		Ready:           s.ready.Load(),
		Generation:      gen.id,
		Nodes:           gen.g.NumNodes(),
		Edges:           gen.g.NumEdges(),
		Inflight:        []runStatus{},
		CacheEntries:    cached,
		MedianRunMillis: s.medianRunDuration().Milliseconds(),
		RetryAfter:      s.retryAfter(),
	}
	now := time.Now()
	for _, f := range s.inflightRuns() {
		body.Inflight = append(body.Inflight, runStatus{
			Key:           f.key,
			Generation:    f.genID,
			Completed:     f.prog.Completed(),
			Planned:       f.prog.Planned(),
			Progress:      f.prog.Fraction(),
			ElapsedMillis: now.Sub(f.started).Milliseconds(),
		})
	}
	return body
}

// handleStatus reports the server's live state: current generation id, graph
// size, every in-flight estimation run with its progress fraction, the cache
// population, and the Retry-After hint a shed request would receive now.
// Like /healthz it never blocks behind an estimation.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.statusSnapshot())
}

type graphBody struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	g := s.gen.Load().g
	writeJSON(w, http.StatusOK, graphBody{Nodes: g.NumNodes(), Edges: g.NumEdges()})
}

// estimateParams are shared by /v1/estimate, /v1/farness and /v1/topk.
// Traversal ("auto", "per-source", "batched", "hybrid", "frontier"),
// Batching ("auto",
// "arbitrary", "clustered") and Relabel ("none", "degree", "bfs") are
// perf-only knobs: they participate in the cache key — so a client sweeping
// engines actually re-runs — but never change farness values.
type estimateParams struct {
	Techniques string  `json:"techniques"`
	Fraction   float64 `json:"fraction"`
	Seed       int64   `json:"seed"`
	Traversal  string  `json:"traversal"`
	Batching   string  `json:"batching"`
	Relabel    string  `json:"relabel"`
}

// resolve validates the params and returns the canonical cache key plus the
// fully-populated estimation options. The key is derived from the parsed
// values, not the raw strings, so "bric", "BRIC" and "CIRB" (and traversal
// aliases like "do" for "hybrid") all dedup onto one cache entry; the
// server's worker bound is plumbed into the options so estimation
// parallelism follows the -workers flag.
func (s *Server) resolve(p estimateParams) (string, core.Options, error) {
	tech, err := ParseTechniques(p.Techniques)
	if err != nil {
		return "", core.Options{}, err
	}
	if p.Fraction <= 0 || p.Fraction > 1 {
		return "", core.Options{}, fmt.Errorf("fraction %g out of range (0,1]", p.Fraction)
	}
	trav, err := core.ParseTraversalMode(p.Traversal)
	if err != nil {
		return "", core.Options{}, err
	}
	batching, err := core.ParseBatchingMode(p.Batching)
	if err != nil {
		return "", core.Options{}, err
	}
	relab, err := graph.ParseRelabelMode(p.Relabel)
	if err != nil {
		return "", core.Options{}, err
	}
	key := fmt.Sprintf("%s/%g/%d/%s/%s/%s", tech, p.Fraction, p.Seed, trav, batching, relab)
	return key, core.Options{
		Techniques:     tech,
		SampleFraction: p.Fraction,
		Seed:           p.Seed,
		Workers:        s.cfg.Workers,
		Traversal:      trav,
		Batching:       batching,
		Relabel:        relab,
	}, nil
}

func paramsFromQuery(q map[string][]string) (estimateParams, error) {
	p := estimateParams{Techniques: "BRIC", Fraction: 0.2, Seed: 1}
	if v, ok := q["techniques"]; ok && len(v) > 0 {
		p.Techniques = v[0]
	}
	if v, ok := q["fraction"]; ok && len(v) > 0 {
		f, err := strconv.ParseFloat(v[0], 64)
		if err != nil {
			return p, fmt.Errorf("bad fraction: %v", err)
		}
		p.Fraction = f
	}
	if v, ok := q["seed"]; ok && len(v) > 0 {
		sd, err := strconv.ParseInt(v[0], 10, 64)
		if err != nil {
			return p, fmt.Errorf("bad seed: %v", err)
		}
		p.Seed = sd
	}
	if v, ok := q["traversal"]; ok && len(v) > 0 {
		p.Traversal = v[0]
	}
	if v, ok := q["batching"]; ok && len(v) > 0 {
		p.Batching = v[0]
	}
	if v, ok := q["relabel"]; ok && len(v) > 0 {
		p.Relabel = v[0]
	}
	return p, nil
}

type estimateBody struct {
	Nodes       int     `json:"nodes"`
	Samples     int     `json:"samples"`
	ReducedTo   int     `json:"reducedTo"`
	Blocks      int     `json:"blocks"`
	ExactCount  int     `json:"exactCount"`
	MeanFarness float64 `json:"meanFarness"`
	// Partial marks a degraded (anytime) answer: the run was cut short and
	// the values are estimates from Completed of Planned samples, with the
	// proven mean bounds below. Partial answers are never cached server-side.
	Partial   bool    `json:"partial,omitempty"`
	Completed int     `json:"completed,omitempty"`
	Planned   int     `json:"planned,omitempty"`
	Progress  float64 `json:"progress,omitempty"`
	MeanLow   float64 `json:"meanLow,omitempty"`
	MeanHigh  float64 `json:"meanHigh,omitempty"`
}

func estimateBodyOf(res *core.Result) estimateBody {
	exact := 0
	var mean float64
	for i, f := range res.Farness {
		if res.Exact[i] {
			exact++
		}
		mean += f
	}
	if len(res.Farness) > 0 {
		mean /= float64(len(res.Farness))
	}
	body := estimateBody{
		Nodes:       len(res.Farness),
		Samples:     res.Stats.Samples,
		ReducedTo:   res.Stats.ReducedNodes,
		Blocks:      res.Stats.Blocks.Count,
		ExactCount:  exact,
		MeanFarness: mean,
	}
	if res.Partial {
		body.Partial = true
		body.Completed = res.Completed
		body.Planned = res.Planned
		if res.Planned > 0 {
			body.Progress = float64(res.Completed) / float64(res.Planned)
		}
		var lo, hi float64
		for i := range res.Low {
			lo += res.Low[i]
			hi += res.High[i]
		}
		if n := len(res.Low); n > 0 {
			body.MeanLow, body.MeanHigh = lo/float64(n), hi/float64(n)
		}
	}
	return body
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	p := estimateParams{Techniques: "BRIC", Fraction: 0.2, Seed: 1}
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
		writeErr(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	key, opts, err := s.resolve(p)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	degrade, err := s.degradeOf(r.URL.Query())
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel, err := s.requestCtx(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	res, err := s.estimate(ctx, key, opts, degrade)
	if err != nil {
		s.writeEstimateErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, estimateBodyOf(res))
}

type farnessBody struct {
	Node      graph.NodeID `json:"node"`
	Farness   float64      `json:"farness"`
	Closeness float64      `json:"closeness"`
	Exact     bool         `json:"exact"`
	// Partial marks a degraded answer; Low/High are then the node's proven
	// farness bounds and Progress the run's completed fraction.
	Partial  bool     `json:"partial,omitempty"`
	Low      *float64 `json:"low,omitempty"`
	High     *float64 `json:"high,omitempty"`
	Progress float64  `json:"progress,omitempty"`
}

func (s *Server) handleFarness(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/farness/")
	id, err := strconv.ParseInt(idStr, 10, 32)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad node id %q", idStr)
		return
	}
	p, err := paramsFromQuery(r.URL.Query())
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, opts, err := s.resolve(p)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	degrade, err := s.degradeOf(r.URL.Query())
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel, err := s.requestCtx(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	res, err := s.estimate(ctx, key, opts, degrade)
	if err != nil {
		s.writeEstimateErr(w, err)
		return
	}
	if id < 0 || int(id) >= len(res.Farness) {
		writeErr(w, http.StatusNotFound, "node %d out of range", id)
		return
	}
	f := res.Farness[id]
	body := farnessBody{Node: graph.NodeID(id), Farness: f, Exact: res.Exact[id]}
	if f > 0 {
		body.Closeness = 1 / f
	}
	if res.Partial {
		body.Partial = true
		if len(res.Low) == len(res.Farness) {
			lo, hi := res.Low[id], res.High[id]
			body.Low, body.High = &lo, &hi
		}
		if res.Planned > 0 {
			body.Progress = float64(res.Completed) / float64(res.Planned)
		}
	}
	writeJSON(w, http.StatusOK, body)
}

type topkBody struct {
	Nodes    []graph.NodeID `json:"nodes"`
	Farness  []float64      `json:"farness"`
	Verified int            `json:"verified"`
	Filtered int            `json:"filtered"`
	Certain  bool           `json:"certain"`
	// Partial marks a degraded ranking: verification was cut short at the
	// soft deadline and unverified slots hold estimates. Never cached.
	Partial bool `json:"partial,omitempty"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	k := 10
	if v := q.Get("k"); v != "" {
		kk, err := strconv.Atoi(v)
		if err != nil || kk <= 0 {
			writeErr(w, http.StatusBadRequest, "bad k %q (want an integer ≥ 1)", v)
			return
		}
		k = kk
	}
	p, err := paramsFromQuery(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	_, opts, err := s.resolve(p)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	degrade, err := s.degradeOf(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel, err := s.requestCtx(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	// A degrading top-k run races its soft deadline, not the hard one: the
	// anytime search then degrades to the best-so-far ranking with time to
	// spare for the response, instead of dying at the hard deadline empty.
	runCtx := ctx
	if degrade {
		opts.Anytime = true
		if dl, ok := ctx.Deadline(); ok {
			if soft := time.Until(dl) - s.cfg.SoftMargin; soft > 0 {
				var softCancel context.CancelFunc
				runCtx, softCancel = context.WithTimeout(ctx, soft)
				defer softCancel()
			}
		}
	}
	// Top-k runs bypass the estimate cache but still count against the
	// admission bound: take a slot or shed the request.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.writeEstimateErr(w, errBusy)
		return
	}
	gen := s.gen.Load()
	topts := topk.Options{Estimate: opts}
	// ?sketch=1 enables the cluster-sketch candidate filter: proven farness
	// lower bounds skip verification traversals without changing the result.
	if v := q.Get("sketch"); v != "" {
		use, err := strconv.ParseBool(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad sketch %q (want a boolean)", v)
			return
		}
		if use {
			topts.Sketch = s.sketchFor(gen)
		}
	}
	res, err := topk.ClosenessContext(runCtx, gen.g, k, topts)
	if err != nil {
		s.writeEstimateErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, topkBody{
		Nodes: res.Nodes, Farness: res.Farness,
		Verified: res.Verified, Filtered: res.Filtered, Certain: res.Certain,
		Partial: res.Partial,
	})
}

type edgeBody struct {
	U graph.NodeID `json:"u"`
	V graph.NodeID `json:"v"`
}

type edgeResult struct {
	Affected int `json:"affected"`
	Edges    int `json:"edges"`
}

// ensureIndex builds the dynamic farness index on first use, under ixMu.
// This is where a mutation-bound server pays the one-BFS-per-node setup the
// constructor deferred — and where a graph falsely flagged connected
// (Config.AssumeConnected) is finally caught.
func (s *Server) ensureIndex() error {
	if s.ix != nil {
		return nil
	}
	ix, err := dynamic.New(s.gen.Load().g, s.cfg.Workers)
	if err != nil {
		return err
	}
	s.ix = ix
	return nil
}

// mutate applies one edge update under the mutation lock and, on success,
// installs a fresh generation: new snapshot, empty cache, no flights, next
// id. Runs still computing against the old generation finish (and cache)
// there harmlessly — new requests only ever see the new generation. The
// fault checkpoint lets the chaos suite stall or crash a mutation mid-swap.
func (s *Server) mutate(apply func() error) (affected, edges int, err error) {
	s.ixMu.Lock()
	defer s.ixMu.Unlock()
	if err := fault.Inject(context.Background(), "server.mutate"); err != nil {
		return 0, s.gen.Load().g.NumEdges(), err
	}
	if err := s.ensureIndex(); err != nil {
		return 0, s.gen.Load().g.NumEdges(), err
	}
	err = apply()
	affected = s.ix.UpdatedLast
	if err != nil {
		return affected, s.gen.Load().g.NumEdges(), err
	}
	g := s.ix.Snapshot()
	s.gen.Store(newGeneration(g, s.genSeq.Add(1)))
	return affected, g.NumEdges(), nil
}

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var e edgeBody
		if err := json.NewDecoder(r.Body).Decode(&e); err != nil {
			writeErr(w, http.StatusBadRequest, "bad body: %v", err)
			return
		}
		affected, edges, err := s.mutate(func() error { return s.ix.AddEdge(e.U, e.V) })
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, edgeResult{Affected: affected, Edges: edges})
	case http.MethodDelete:
		q := r.URL.Query()
		u, err1 := strconv.ParseInt(q.Get("u"), 10, 32)
		v, err2 := strconv.ParseInt(q.Get("v"), 10, 32)
		if err1 != nil || err2 != nil {
			writeErr(w, http.StatusBadRequest, "u and v query params required")
			return
		}
		affected, edges, err := s.mutate(func() error {
			return s.ix.RemoveEdge(graph.NodeID(u), graph.NodeID(v))
		})
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, edgeResult{Affected: affected, Edges: edges})
	default:
		writeErr(w, http.StatusMethodNotAllowed, "POST or DELETE")
	}
}

type distanceBody struct {
	From     graph.NodeID `json:"from"`
	To       graph.NodeID `json:"to"`
	Distance int32        `json:"distance"` // -1 when unreachable
	// Method reports which path answered: "exact" (bidirectional BFS) or
	// "sketch" (cluster-sketch bounds, no traversal).
	Method string `json:"method"`
	// Lower and Upper are the sketch's proven distance bounds; present only
	// on sketch-consulted responses (mode=sketch|auto).
	Lower *int32 `json:"lower,omitempty"`
	Upper *int32 `json:"upper,omitempty"`
}

// distMode selects how /v1/distance answers one query.
type distMode byte

const (
	// distExact (default) runs a bidirectional BFS per request.
	distExact distMode = iota
	// distSketch answers the sketch's proven upper bound in O(k) with no
	// traversal (falling back to exact only when the sketch cannot bound the
	// pair at all, e.g. across components).
	distSketch
	// distAuto answers from the sketch when its bound gap is within ?tol=
	// (default 0: only proven-exact answers) and escapes to the exact BFS
	// otherwise.
	distAuto
)

func parseDistMode(s string) (distMode, error) {
	switch s {
	case "", "exact":
		return distExact, nil
	case "sketch":
		return distSketch, nil
	case "auto":
		return distAuto, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want exact, sketch or auto)", s)
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	from, err1 := strconv.ParseInt(q.Get("from"), 10, 32)
	to, err2 := strconv.ParseInt(q.Get("to"), 10, 32)
	if err1 != nil || err2 != nil {
		writeErr(w, http.StatusBadRequest, "from and to query params required")
		return
	}
	mode, err := parseDistMode(q.Get("mode"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	var tol int32
	if v := q.Get("tol"); v != "" {
		t64, err := strconv.ParseInt(v, 10, 32)
		if err != nil || t64 < 0 {
			writeErr(w, http.StatusBadRequest, "bad tol %q (want an integer >= 0)", v)
			return
		}
		tol = int32(t64)
	}
	gen := s.gen.Load()
	g := gen.g
	n := int64(g.NumNodes())
	if from < 0 || to < 0 || from >= n || to >= n {
		writeErr(w, http.StatusNotFound, "node out of range")
		return
	}
	u, v := graph.NodeID(from), graph.NodeID(to)
	respond := func(val distVal) {
		body := distanceBody{From: u, To: v, Distance: val.d, Method: val.method}
		if val.method == "sketch" {
			body.Lower, body.Upper = &val.lo, &val.hi
		}
		writeJSON(w, http.StatusOK, body)
	}
	// Distance is symmetric on an undirected graph: cache under the ordered
	// pair so (a,b) and (b,a) share an entry. The mode and tolerance are part
	// of the key — see generation.distCache.
	key := distKey{u: u, v: v, mode: mode, tol: tol}
	if key.u > key.v {
		key.u, key.v = key.v, key.u
	}
	if val, ok := gen.lookupDist(key); ok {
		respond(val)
		return
	}
	// The exact path honors the request's cancellation and ?timeout=
	// deadline like every estimation endpoint: a closed connection or
	// expired budget abandons the traversal at the next expansion level.
	// Sketch answers are O(k) lookups and never need the context.
	ctx, cancel, err := s.requestCtx(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	var val distVal
	switch mode {
	case distSketch:
		if lo, hi, ok := s.sketchFor(gen).Bounds(u, v); ok {
			val = distVal{d: hi, lo: lo, hi: hi, method: "sketch"}
		} else {
			// The sketch cannot bound the pair (different components):
			// answer exactly rather than failing the request.
			d, err := bfs.PointToPointCtx(ctx, g, u, v)
			if err != nil {
				s.writeEstimateErr(w, err)
				return
			}
			val = distVal{d: d, method: "exact"}
		}
	case distAuto:
		sk := s.sketchFor(gen)
		if lo, hi, ok := sk.Bounds(u, v); ok && hi-lo <= tol {
			val = distVal{d: hi, lo: lo, hi: hi, method: "sketch"}
		} else {
			d, err := bfs.PointToPointCtx(ctx, g, u, v)
			if err != nil {
				s.writeEstimateErr(w, err)
				return
			}
			val = distVal{d: d, method: "exact"}
		}
	default:
		d, err := bfs.PointToPointCtx(ctx, g, u, v)
		if err != nil {
			s.writeEstimateErr(w, err)
			return
		}
		val = distVal{d: d, method: "exact"}
	}
	gen.storeDist(key, val)
	respond(val)
}

// ParseTechniques converts a "BRIC" letter string into a technique mask.
func ParseTechniques(s string) (core.Technique, error) {
	return core.ParseTechniques(s)
}
