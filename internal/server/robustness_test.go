package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
)

func newRobustServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	g := gen.Community(400, 5)
	s, err := NewWithConfig(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	t.Cleanup(fault.Clear)
	return s
}

func doJSON(s *Server, method, target, body string) *httptest.ResponseRecorder {
	var r *http.Request
	if body != "" {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}

// TestClientDisconnectAbortsEstimate: a request whose context is canceled
// mid-run must get an error promptly AND the underlying compute must be
// abandoned (its flight context canceled) within 100ms.
func TestClientDisconnectAbortsEstimate(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 2})
	entered := make(chan struct{})
	aborted := make(chan error, 1)
	restore := fault.Set("server.estimate", func(ctx context.Context) error {
		close(entered)
		err := fault.Sleep(ctx, 5*time.Second)
		aborted <- err
		return err
	})
	defer restore()

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/estimate", strings.NewReader(`{}`)).WithContext(ctx)
	respCh := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		respCh <- w
	}()
	<-entered
	canceledAt := time.Now()
	cancel()
	w := <-respCh
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", w.Code, w.Body)
	}
	select {
	case err := <-aborted:
		if !errors.Is(err, core.ErrCanceled) {
			t.Fatalf("compute finished with %v, want ErrCanceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("compute not abandoned after client disconnect")
	}
	if latency := time.Since(canceledAt); latency > 100*time.Millisecond {
		t.Fatalf("compute abandoned %v after disconnect (want ≤100ms)", latency)
	}
}

// TestSingleflightDedup: concurrent requests with identical parameters
// (modulo technique-string spelling) share one estimation run, and a later
// identical request is served from the cache without recomputing.
func TestSingleflightDedup(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 2})
	var runs atomic.Int64
	restore := fault.Set("server.estimate", func(ctx context.Context) error {
		runs.Add(1)
		return fault.Sleep(ctx, 50*time.Millisecond) // hold the flight open so all callers join it
	})
	defer restore()

	spellings := []string{"BRIC", "bric", "CIRB", "bRiC"}
	var wg sync.WaitGroup
	codes := make([]int, 8)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"techniques":%q,"fraction":0.2,"seed":1}`, spellings[i%len(spellings)])
			codes[i] = doJSON(s, http.MethodPost, "/v1/estimate", body).Code
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("request %d: status %d", i, c)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("identical concurrent requests ran %d estimations, want 1", got)
	}
	if w := doJSON(s, http.MethodPost, "/v1/estimate", `{"techniques":"cirb","fraction":0.2,"seed":1}`); w.Code != http.StatusOK {
		t.Fatalf("cached request: status %d", w.Code)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("cached request recomputed (runs=%d, want 1)", got)
	}
}

// TestShedLoadWith429: when every estimation slot is busy, a request with
// different parameters is shed with 429 and a Retry-After hint instead of
// queuing behind the running estimate.
func TestShedLoadWith429(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 2, MaxInflight: 1})
	entered := make(chan struct{})
	restore := fault.Set("server.estimate", func(ctx context.Context) error {
		select {
		case entered <- struct{}{}:
		default:
		}
		return fault.Sleep(ctx, 5*time.Second)
	})
	defer restore()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/estimate", strings.NewReader(`{"seed":1}`)).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		s.ServeHTTP(httptest.NewRecorder(), req)
		close(done)
	}()
	<-entered

	w := doJSON(s, http.MethodPost, "/v1/estimate", `{"seed":2}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After header")
	}
	// Top-k shares the admission bound.
	if w := doJSON(s, http.MethodGet, "/v1/topk?k=3", ""); w.Code != http.StatusTooManyRequests {
		t.Fatalf("topk status = %d, want 429", w.Code)
	}
	cancel()
	<-done
}

// TestPanicRecovery: a crash inside an estimation run answers 500 and the
// daemon keeps serving; same for a crash in the HTTP handler path.
func TestPanicRecovery(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 2})
	restore := fault.Set("server.estimate", fault.Panic("estimation crashed"))
	if w := doJSON(s, http.MethodPost, "/v1/estimate", `{}`); w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body %s", w.Code, w.Body)
	}
	restore()
	if w := doJSON(s, http.MethodPost, "/v1/estimate", `{}`); w.Code != http.StatusOK {
		t.Fatalf("post-crash request: status %d, want 200; body %s", w.Code, w.Body)
	}

	restore = fault.Set("server.handle", fault.Panic("handler crashed"))
	if w := doJSON(s, http.MethodGet, "/healthz", ""); w.Code != http.StatusInternalServerError {
		t.Fatalf("handler crash: status %d, want 500", w.Code)
	}
	restore()
	if w := doJSON(s, http.MethodGet, "/healthz", ""); w.Code != http.StatusOK {
		t.Fatalf("post-crash health: status %d, want 200", w.Code)
	}
}

// TestRequestTimeout504: a request-scoped deadline that fires mid-run maps
// to 504 Gateway Timeout.
func TestRequestTimeout504(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 2})
	restore := fault.Set("server.estimate", fault.Delay(5*time.Second))
	defer restore()
	w := doJSON(s, http.MethodPost, "/v1/estimate?timeout=30ms", `{}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", w.Code, w.Body)
	}
}

// TestReadsUnblockedDuringEstimate: liveness and graph reads answer
// immediately while an estimation run is in flight (the old implementation
// serialised them behind the run's lock).
func TestReadsUnblockedDuringEstimate(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 2})
	entered := make(chan struct{})
	restore := fault.Set("server.estimate", func(ctx context.Context) error {
		close(entered)
		return fault.Sleep(ctx, 5*time.Second)
	})
	defer restore()
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/estimate", strings.NewReader(`{}`)).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		s.ServeHTTP(httptest.NewRecorder(), req)
		close(done)
	}()
	<-entered

	start := time.Now()
	for _, target := range []string{"/healthz", "/readyz", "/v1/graph", "/v1/distance?from=0&to=1"} {
		if w := doJSON(s, http.MethodGet, target, ""); w.Code != http.StatusOK {
			t.Fatalf("%s: status %d during in-flight estimate", target, w.Code)
		}
	}
	if took := time.Since(start); took > 500*time.Millisecond {
		t.Fatalf("reads blocked %v behind in-flight estimate", took)
	}
	cancel()
	<-done
}

// TestValidation400: malformed parameters are rejected at the boundary with
// 400, before any compute is admitted.
func TestValidation400(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 2})
	cases := []struct {
		method, target, body string
	}{
		{http.MethodPost, "/v1/estimate", `{"fraction":0}`},
		{http.MethodPost, "/v1/estimate", `{"fraction":-0.5}`},
		{http.MethodPost, "/v1/estimate", `{"fraction":1.5}`},
		{http.MethodPost, "/v1/estimate", `{"techniques":"XYZ"}`},
		{http.MethodPost, "/v1/estimate?timeout=nonsense", `{}`},
		{http.MethodPost, "/v1/estimate?timeout=-5s", `{}`},
		{http.MethodGet, "/v1/farness/0?fraction=2", ""},
		{http.MethodGet, "/v1/topk?k=0", ""},
		{http.MethodGet, "/v1/topk?k=-3", ""},
		{http.MethodGet, "/v1/topk?fraction=0", ""},
	}
	for _, c := range cases {
		if w := doJSON(s, c.method, c.target, c.body); w.Code != http.StatusBadRequest {
			t.Errorf("%s %s %s: status %d, want 400", c.method, c.target, c.body, w.Code)
		}
	}
}

// TestWorkersPlumbed: the server's worker bound reaches the estimation
// options (the old code dropped it on the floor).
func TestWorkersPlumbed(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 3})
	_, opts, err := s.resolve(estimateParams{Techniques: "BRIC", Fraction: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if opts.Workers != 3 {
		t.Fatalf("opts.Workers = %d, want 3", opts.Workers)
	}
}

// TestKeyNormalization: the cache key comes from the parsed technique mask,
// so spelling variants resolve to one entry.
func TestKeyNormalization(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 2})
	k1, _, err := s.resolve(estimateParams{Techniques: "bric", Fraction: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	k2, _, err := s.resolve(estimateParams{Techniques: "CIRB", Fraction: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("keys differ for spelling variants: %q vs %q", k1, k2)
	}
	k3, _, err := s.resolve(estimateParams{Techniques: "BR", Fraction: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Fatalf("distinct techniques share key %q", k1)
	}
	// Batching is a perf-only knob but must still split the cache, so a
	// client sweeping modes re-runs instead of replaying one timing.
	k4, opts, err := s.resolve(estimateParams{Techniques: "bric", Fraction: 0.2, Seed: 1, Batching: "clustered"})
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k4 {
		t.Fatalf("batching mode does not affect key %q", k1)
	}
	if opts.Batching != core.BatchingClustered {
		t.Fatalf("opts.Batching = %v, want clustered", opts.Batching)
	}
	if _, _, err := s.resolve(estimateParams{Techniques: "bric", Fraction: 0.2, Seed: 1, Batching: "bogus"}); err == nil {
		t.Fatal("bad batching mode accepted")
	}
}

// TestCloseAbortsInflight: Close cancels running estimates (503) and flips
// readiness so /readyz reports draining.
func TestCloseAbortsInflight(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 2})
	entered := make(chan struct{})
	restore := fault.Set("server.estimate", func(ctx context.Context) error {
		close(entered)
		return fault.Sleep(ctx, 5*time.Second)
	})
	defer restore()
	respCh := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/estimate", strings.NewReader(`{}`)))
		respCh <- w
	}()
	<-entered
	s.Close()
	w := <-respCh
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", w.Code, w.Body)
	}
	if w := doJSON(s, http.MethodGet, "/readyz", ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after Close: status %d, want 503", w.Code)
	}
}

// TestMutationInstallsFreshGeneration: an edge update invalidates the cache
// atomically — the same params recompute against the new snapshot.
func TestMutationInstallsFreshGeneration(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 2})
	var runs atomic.Int64
	restore := fault.Set("server.estimate", func(ctx context.Context) error {
		runs.Add(1)
		return nil
	})
	defer restore()
	if w := doJSON(s, http.MethodPost, "/v1/estimate", `{}`); w.Code != http.StatusOK {
		t.Fatalf("estimate: status %d", w.Code)
	}
	var before graphBody
	if w := doJSON(s, http.MethodGet, "/v1/graph", ""); true {
		_ = json.NewDecoder(w.Body).Decode(&before)
	}
	// Find a node not adjacent to 0 so the insert is a real new edge.
	g := s.gen.Load().g
	v := -1
	for cand := 1; cand < g.NumNodes(); cand++ {
		if bfs.PointToPoint(g, 0, graph.NodeID(cand)) > 1 {
			v = cand
			break
		}
	}
	if v < 0 {
		t.Fatal("no non-adjacent node found")
	}
	if w := doJSON(s, http.MethodPost, "/v1/edges", fmt.Sprintf(`{"u":0,"v":%d}`, v)); w.Code != http.StatusOK {
		t.Fatalf("edge insert: status %d; body %s", w.Code, w.Body)
	}
	var after graphBody
	if w := doJSON(s, http.MethodGet, "/v1/graph", ""); true {
		_ = json.NewDecoder(w.Body).Decode(&after)
	}
	if after.Edges != before.Edges+1 {
		t.Fatalf("edges %d after insert, want %d", after.Edges, before.Edges+1)
	}
	if w := doJSON(s, http.MethodPost, "/v1/estimate", `{}`); w.Code != http.StatusOK {
		t.Fatalf("re-estimate: status %d", w.Code)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("estimations after mutation = %d, want 2 (cache must be invalidated)", got)
	}
}
