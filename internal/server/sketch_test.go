package server

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// newSketchTestServer serves a connected graph (so exact distances are finite
// and sketch bounds always apply) with a small sketch configuration.
func newSketchTestServer(t *testing.T) (*Server, *httptest.Server, *graph.Graph) {
	t.Helper()
	g := graph.Connect(gen.Social(800, 9))
	s, err := NewWithConfig(g, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts, g
}

// mode=auto with tol=0 only answers from the sketch when the bounds meet, so
// its distances must equal exact mode's on every pair.
func TestDistanceAutoMatchesExact(t *testing.T) {
	_, ts, g := newSketchTestServer(t)
	rng := rand.New(rand.NewSource(11))
	n := g.NumNodes()
	for i := 0; i < 40; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		var exact, auto distanceBody
		if resp := getJSON(t, fmt.Sprintf("%s/v1/distance?from=%d&to=%d", ts.URL, u, v), &exact); resp.StatusCode != 200 {
			t.Fatalf("exact (%d,%d): status %d", u, v, resp.StatusCode)
		}
		if resp := getJSON(t, fmt.Sprintf("%s/v1/distance?from=%d&to=%d&mode=auto", ts.URL, u, v), &auto); resp.StatusCode != 200 {
			t.Fatalf("auto (%d,%d): status %d", u, v, resp.StatusCode)
		}
		if exact.Method != "exact" {
			t.Fatalf("exact mode answered via %q", exact.Method)
		}
		if auto.Distance != exact.Distance {
			t.Fatalf("auto d(%d,%d) = %d (method %s), exact %d", u, v, auto.Distance, auto.Method, exact.Distance)
		}
		if auto.Method == "sketch" && (auto.Lower == nil || auto.Upper == nil || *auto.Lower != *auto.Upper) {
			t.Fatalf("auto sketch answer without tight bounds: %+v", auto)
		}
	}
}

// mode=sketch returns proven bounds bracketing the exact distance on every
// pair of a connected graph.
func TestDistanceSketchBounds(t *testing.T) {
	_, ts, g := newSketchTestServer(t)
	rng := rand.New(rand.NewSource(13))
	n := g.NumNodes()
	sawSketch := false
	for i := 0; i < 40; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		var exact, sk distanceBody
		getJSON(t, fmt.Sprintf("%s/v1/distance?from=%d&to=%d", ts.URL, u, v), &exact)
		if resp := getJSON(t, fmt.Sprintf("%s/v1/distance?from=%d&to=%d&mode=sketch", ts.URL, u, v), &sk); resp.StatusCode != 200 {
			t.Fatalf("sketch (%d,%d): status %d", u, v, resp.StatusCode)
		}
		if sk.Method != "sketch" {
			t.Fatalf("sketch mode on a connected graph answered via %q", sk.Method)
		}
		if sk.Lower == nil || sk.Upper == nil {
			t.Fatalf("sketch answer without bounds: %+v", sk)
		}
		if *sk.Lower > exact.Distance || exact.Distance > *sk.Upper {
			t.Fatalf("bounds [%d,%d] exclude exact d(%d,%d)=%d", *sk.Lower, *sk.Upper, u, v, exact.Distance)
		}
		if sk.Distance != *sk.Upper {
			t.Fatalf("sketch distance %d != upper bound %d", sk.Distance, *sk.Upper)
		}
		sawSketch = true
	}
	if !sawSketch {
		t.Fatal("no sketch answers observed")
	}
}

// The distance cache is keyed on (ordered pair, mode, tol): symmetric queries
// share an entry, different modes never do.
func TestDistanceCacheKeying(t *testing.T) {
	s, ts, _ := newSketchTestServer(t)
	var fwd, rev distanceBody
	getJSON(t, ts.URL+"/v1/distance?from=5&to=120", &fwd)
	getJSON(t, ts.URL+"/v1/distance?from=120&to=5", &rev)
	if fwd.Distance != rev.Distance {
		t.Fatalf("asymmetric cache: %d vs %d", fwd.Distance, rev.Distance)
	}
	gen := s.gen.Load()
	if _, ok := gen.lookupDist(distKey{u: 5, v: 120, mode: distExact}); !ok {
		t.Fatal("exact answer not cached under the ordered pair")
	}
	if _, ok := gen.lookupDist(distKey{u: 5, v: 120, mode: distSketch}); ok {
		t.Fatal("sketch-mode entry exists before any sketch query")
	}
	var sk distanceBody
	getJSON(t, ts.URL+"/v1/distance?from=120&to=5&mode=sketch", &sk)
	if _, ok := gen.lookupDist(distKey{u: 5, v: 120, mode: distSketch}); !ok {
		t.Fatal("sketch answer not cached under its own mode")
	}
}

func TestDistanceBadParams(t *testing.T) {
	_, ts, _ := newSketchTestServer(t)
	for _, q := range []string{
		"from=1&to=2&mode=magic",
		"from=1&to=2&mode=auto&tol=-1",
		"from=1&to=2&mode=auto&tol=abc",
	} {
		var eb errorBody
		resp := getJSON(t, ts.URL+"/v1/distance?"+q, &eb)
		if resp.StatusCode != 400 || eb.Error == "" {
			t.Fatalf("%s: status %d body %+v, want 400 with error", q, resp.StatusCode, eb)
		}
	}
}

// ?sketch=1 must not change the top-k answer, only (possibly) the number of
// verification traversals.
func TestTopKSketchFilterIdentical(t *testing.T) {
	_, ts, _ := newSketchTestServer(t)
	base := "/v1/topk?k=8&fraction=0.3&seed=2"
	var plain, filtered topkBody
	if resp := getJSON(t, ts.URL+base, &plain); resp.StatusCode != 200 {
		t.Fatalf("topk: status %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+base+"&sketch=1", &filtered); resp.StatusCode != 200 {
		t.Fatalf("topk sketch: status %d", resp.StatusCode)
	}
	if len(plain.Nodes) != len(filtered.Nodes) {
		t.Fatalf("length diverged: %d vs %d", len(plain.Nodes), len(filtered.Nodes))
	}
	for i := range plain.Nodes {
		if plain.Nodes[i] != filtered.Nodes[i] || plain.Farness[i] != filtered.Farness[i] {
			t.Fatalf("entry %d diverged: (%d,%v) vs (%d,%v)",
				i, filtered.Nodes[i], filtered.Farness[i], plain.Nodes[i], plain.Farness[i])
		}
	}
	var eb errorBody
	if resp := getJSON(t, ts.URL+base+"&sketch=sometimes", &eb); resp.StatusCode != 400 {
		t.Fatalf("bad sketch param: status %d, want 400", resp.StatusCode)
	}
}
