package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	g := gen.Social(600, 3)
	s, err := New(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestHealthAndGraph(t *testing.T) {
	_, ts := newTestServer(t)
	var h map[string]string
	resp := getJSON(t, ts.URL+"/healthz", &h)
	if resp.StatusCode != 200 || h["status"] != "ok" {
		t.Fatalf("healthz: %d %v", resp.StatusCode, h)
	}
	var gb graphBody
	resp = getJSON(t, ts.URL+"/v1/graph", &gb)
	if resp.StatusCode != 200 || gb.Nodes == 0 || gb.Edges == 0 {
		t.Fatalf("graph: %d %+v", resp.StatusCode, gb)
	}
}

func TestEstimateEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	body := bytes.NewBufferString(`{"techniques":"BRIC","fraction":0.3,"seed":1}`)
	resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb estimateBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if eb.Nodes == 0 || eb.Samples == 0 || eb.ReducedTo >= eb.Nodes || eb.MeanFarness <= 0 {
		t.Fatalf("estimate body: %+v", eb)
	}
	// Bad techniques string.
	resp2, err := http.Post(ts.URL+"/v1/estimate", "application/json",
		bytes.NewBufferString(`{"techniques":"XYZ"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 400 {
		t.Fatalf("bad techniques: status %d", resp2.StatusCode)
	}
}

func TestFarnessEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var fb farnessBody
	resp := getJSON(t, ts.URL+"/v1/farness/0?fraction=0.3", &fb)
	if resp.StatusCode != 200 || fb.Farness <= 0 || fb.Closeness <= 0 {
		t.Fatalf("farness: %d %+v", resp.StatusCode, fb)
	}
	// Caching: second call must return the identical value.
	var fb2 farnessBody
	getJSON(t, ts.URL+"/v1/farness/0?fraction=0.3", &fb2)
	if fb2.Farness != fb.Farness {
		t.Fatal("cache miss changed the value")
	}
	resp = getJSON(t, ts.URL+"/v1/farness/99999999", nil)
	if resp.StatusCode != 404 {
		t.Fatalf("out of range: %d", resp.StatusCode)
	}
	resp = getJSON(t, ts.URL+"/v1/farness/notanumber", nil)
	if resp.StatusCode != 400 {
		t.Fatalf("bad id: %d", resp.StatusCode)
	}
}

func TestTopKEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var tb topkBody
	resp := getJSON(t, ts.URL+"/v1/topk?k=5&fraction=0.3", &tb)
	if resp.StatusCode != 200 || len(tb.Nodes) != 5 || len(tb.Farness) != 5 {
		t.Fatalf("topk: %d %+v", resp.StatusCode, tb)
	}
	for i := 1; i < len(tb.Farness); i++ {
		if tb.Farness[i] < tb.Farness[i-1] {
			t.Fatal("topk not sorted")
		}
	}
	resp = getJSON(t, ts.URL+"/v1/topk?k=zero", nil)
	if resp.StatusCode != 400 {
		t.Fatalf("bad k: %d", resp.StatusCode)
	}
}

func TestEdgeMutationInvalidatesCache(t *testing.T) {
	s, ts := newTestServer(t)
	// Prime the cache.
	var before farnessBody
	getJSON(t, ts.URL+"/v1/farness/0?fraction=0.5&techniques=C", &before)

	// Find two distant nodes to connect. (The dynamic index is built lazily
	// on first mutation, so read the graph off the current generation.)
	g := s.gen.Load().g
	u, v := graph.NodeID(0), graph.NodeID(-1)
	for cand := g.NumNodes() - 1; cand > 0; cand-- {
		if !g.HasEdge(u, graph.NodeID(cand)) {
			v = graph.NodeID(cand)
			break
		}
	}
	if v < 0 {
		t.Skip("no non-adjacent pair found")
	}
	body, _ := json.Marshal(edgeBody{U: u, V: v})
	resp, err := http.Post(ts.URL+"/v1/edges", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var er edgeResult
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || er.Edges != g.NumEdges()+1 {
		t.Fatalf("insert: %d %+v", resp.StatusCode, er)
	}

	// Delete it again via the API.
	req, _ := http.NewRequest(http.MethodDelete,
		fmt.Sprintf("%s/v1/edges?u=%d&v=%d", ts.URL, u, v), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	// Deleting a non-existent edge errors.
	req, _ = http.NewRequest(http.MethodDelete,
		fmt.Sprintf("%s/v1/edges?u=%d&v=%d", ts.URL, u, v), nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("double delete: %d", resp.StatusCode)
	}
}

func TestMethodGuards(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/graph", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/graph: %d", resp.StatusCode)
	}
	resp = getJSON(t, ts.URL+"/v1/estimate", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/estimate: %d", resp.StatusCode)
	}
}

func TestParseTechniques(t *testing.T) {
	if _, err := ParseTechniques("BRIC"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseTechniques("b+r i c s"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseTechniques("Q"); err == nil {
		t.Fatal("want error for unknown letter")
	}
}

func TestDistanceEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var db struct {
		Distance int32 `json:"distance"`
	}
	resp := getJSON(t, ts.URL+"/v1/distance?from=0&to=1", &db)
	if resp.StatusCode != 200 || db.Distance < 1 {
		t.Fatalf("distance: %d %+v", resp.StatusCode, db)
	}
	resp = getJSON(t, ts.URL+"/v1/distance?from=0&to=999999", nil)
	if resp.StatusCode != 404 {
		t.Fatalf("out of range: %d", resp.StatusCode)
	}
	resp = getJSON(t, ts.URL+"/v1/distance?from=x", nil)
	if resp.StatusCode != 400 {
		t.Fatalf("bad params: %d", resp.StatusCode)
	}
}

// TestFrontierTraversalParam: traversal=frontier is accepted on the GET
// endpoints, produces the same farness as the per-source engine (the engines
// are bit-identical by contract), and lands in its own cache entry.
func TestFrontierTraversalParam(t *testing.T) {
	_, ts := newTestServer(t)
	var per, fr farnessBody
	resp := getJSON(t, ts.URL+"/v1/farness/0?fraction=0.3&traversal=per-source", &per)
	if resp.StatusCode != 200 {
		t.Fatalf("per-source: %d", resp.StatusCode)
	}
	resp = getJSON(t, ts.URL+"/v1/farness/0?fraction=0.3&traversal=frontier", &fr)
	if resp.StatusCode != 200 {
		t.Fatalf("frontier: %d", resp.StatusCode)
	}
	if fr.Farness != per.Farness {
		t.Fatalf("engines disagree: frontier %v, per-source %v", fr.Farness, per.Farness)
	}
	resp = getJSON(t, ts.URL+"/v1/farness/0?traversal=bogus", nil)
	if resp.StatusCode != 400 {
		t.Fatalf("bad traversal: %d", resp.StatusCode)
	}
}

// TestDistanceTimeout: /v1/distance shares the estimation endpoints' context
// plumbing — a malformed ?timeout= is a 400, an expired one a 504.
func TestDistanceTimeout(t *testing.T) {
	_, ts := newTestServer(t)
	resp := getJSON(t, ts.URL+"/v1/distance?from=0&to=1&timeout=bananas", nil)
	if resp.StatusCode != 400 {
		t.Fatalf("bad timeout: %d", resp.StatusCode)
	}
	resp = getJSON(t, ts.URL+"/v1/distance?from=0&to=1&timeout=1ns", nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired timeout: %d", resp.StatusCode)
	}
}
