package server

import (
	"context"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		name     string
		median   time.Duration
		progress []float64
		want     int
	}{
		{"no history", 0, []float64{0.5}, 1},
		{"no inflight", 10 * time.Second, nil, 1},
		{"half done of 10s", 10 * time.Second, []float64{0.5}, 5},
		{"soonest wins", 10 * time.Second, []float64{0.1, 0.9}, 1},
		{"barely started", 4 * time.Second, []float64{0.0}, 4},
		{"almost done floors at 1", 10 * time.Second, []float64{0.999}, 1},
		{"stuck run clamps at 30", 10 * time.Minute, []float64{0.1}, 30},
		{"garbage fraction clamped", 10 * time.Second, []float64{-3, 7}, 1},
		{"ceil partial seconds", 3 * time.Second, []float64{0.5}, 2},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.median, c.progress); got != c.want {
			t.Errorf("%s: retryAfterSeconds(%v, %v) = %d, want %d", c.name, c.median, c.progress, got, c.want)
		}
	}
}

func TestMedianRunDuration(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 1})
	if got := s.medianRunDuration(); got != 0 {
		t.Fatalf("empty ring median = %v, want 0", got)
	}
	for _, d := range []time.Duration{time.Second, 3 * time.Second, 2 * time.Second} {
		s.recordRunDuration(d)
	}
	if got := s.medianRunDuration(); got != 2*time.Second {
		t.Fatalf("median of 1s/3s/2s = %v, want 2s", got)
	}
	// Overflow the ring with a uniform value: the old samples must age out.
	for i := 0; i < len(s.durs); i++ {
		s.recordRunDuration(5 * time.Second)
	}
	if got := s.medianRunDuration(); got != 5*time.Second {
		t.Fatalf("median after ring wrap = %v, want 5s", got)
	}
}

// TestShedRetryAfterReflectsProgress: a 429 response's Retry-After header is
// derived from the run-time history and the in-flight run's live progress,
// not a constant.
func TestShedRetryAfterReflectsProgress(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 1, MaxInflight: 1})
	// Seed the duration history: median 8s.
	for _, d := range []time.Duration{8 * time.Second, 8 * time.Second, 8 * time.Second} {
		s.recordRunDuration(d)
	}
	// Occupy the only slot with a run held open at its first checkpoint.
	entered := make(chan struct{})
	var once sync.Once
	restore := fault.Set("server.estimate", func(ctx context.Context) error {
		once.Do(func() { close(entered) })
		return fault.Sleep(ctx, 5*time.Second)
	})
	defer restore()
	go func() {
		_ = doJSON(s, http.MethodPost, "/v1/estimate?timeout=5s", `{"seed":900}`)
	}()
	<-entered
	// The held run has made no progress: remaining ≈ 1.0 × 8s.
	w := doJSON(s, http.MethodPost, "/v1/estimate", `{"seed":901}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", w.Code, w.Body)
	}
	ra, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer", w.Header().Get("Retry-After"))
	}
	if ra < 7 || ra > 9 {
		t.Fatalf("Retry-After = %d, want ≈8 (median 8s, zero progress)", ra)
	}
	if !strings.Contains(w.Body.String(), "capacity") {
		t.Fatalf("unexpected 429 body: %s", w.Body)
	}
}

// TestShedRetryAfterWithoutHistory: before any run has completed the hint
// degrades to the 1-second floor.
func TestShedRetryAfterWithoutHistory(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 1, MaxInflight: 1})
	entered := make(chan struct{})
	var once sync.Once
	restore := fault.Set("server.estimate", func(ctx context.Context) error {
		once.Do(func() { close(entered) })
		return fault.Sleep(ctx, 5*time.Second)
	})
	defer restore()
	go func() { _ = doJSON(s, http.MethodPost, "/v1/estimate?timeout=5s", `{"seed":910}`) }()
	<-entered
	w := doJSON(s, http.MethodPost, "/v1/estimate", `{"seed":911}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\" with no history", got)
	}
}
