package server

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// TestSketchStaleGenerationNotStored: a sketch build that completes against a
// generation an edge mutation has meanwhile replaced must be served to its
// caller but NOT stored on the dead generation — storing it would pin the
// stale snapshot's memory for the lifetime of the generation object.
func TestSketchStaleGenerationNotStored(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 2})
	stale := s.gen.Load()
	// Swap the generation out from under the build (some candidate edges may
	// already exist; any successful insert installs a fresh generation).
	for v := 200; v < 220; v++ {
		if w := doJSON(s, http.MethodPost, "/v1/edges", fmt.Sprintf(`{"u":0,"v":%d}`, v)); w.Code == http.StatusOK {
			break
		}
	}
	if s.gen.Load() == stale {
		t.Fatal("mutation did not install a fresh generation")
	}
	sk1 := s.sketchFor(stale)
	if sk1 == nil {
		t.Fatal("stale-generation build returned nil")
	}
	if stale.sketch != nil {
		t.Fatal("sketch stored on a stale generation")
	}
	// Each stale caller rebuilds (nothing cached) — distinct objects prove
	// nothing was retained.
	if sk2 := s.sketchFor(stale); sk2 == sk1 {
		t.Fatal("second stale build returned the first build's sketch; it must not have been stored")
	}
	// The current generation still caches normally.
	cur := s.gen.Load()
	a, b := s.sketchFor(cur), s.sketchFor(cur)
	if a == nil || a != b {
		t.Fatal("current-generation sketch not shared between callers")
	}
	if cur.sketch != a {
		t.Fatal("current-generation sketch not stored")
	}
}

// TestSketchBuildConcurrentWithMutations hammers sketch-answered distance
// queries while edges churn: every response must succeed, and under -race
// this doubles as the regression test for the build/swap race the sync.Once
// version had.
func TestSketchBuildConcurrentWithMutations(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 2})
	n := s.gen.Load().g.NumNodes()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				u, v := (w*67+i)%n, (w*31+i*7)%n
				rec := doJSON(s, http.MethodGet,
					fmt.Sprintf("/v1/distance?from=%d&to=%d&mode=sketch", u, v), "")
				if rec.Code != http.StatusOK {
					t.Errorf("distance %d->%d: %d %s", u, v, rec.Code, rec.Body)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 30; i++ {
		u, v := i%n, (i*13+57)%n
		if u == v {
			continue
		}
		add := doJSON(s, http.MethodPost, "/v1/edges", fmt.Sprintf(`{"u":%d,"v":%d}`, u, v))
		if add.Code != http.StatusOK && add.Code != http.StatusBadRequest {
			t.Fatalf("add edge: %d %s", add.Code, add.Body)
		}
		if add.Code == http.StatusOK {
			del := doJSON(s, http.MethodDelete, fmt.Sprintf("/v1/edges?u=%d&v=%d", u, v), "")
			if del.Code != http.StatusOK {
				t.Fatalf("remove edge: %d %s", del.Code, del.Body)
			}
		}
	}
	close(stop)
	wg.Wait()
}
