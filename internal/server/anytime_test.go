package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// slowFlight intercepts the next estimation flight at its entry checkpoint,
// installs a per-source delay on its progress tracker (throttling the run so
// deadlines land mid-flight, deterministically under any scheduler), and
// releases it. Returns after the throttle is installed.
func slowFlight(t *testing.T, s *Server, perSource time.Duration) {
	t.Helper()
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	restore := fault.Set("server.estimate", func(ctx context.Context) error {
		once.Do(func() {
			close(entered)
			<-release
		})
		return nil
	})
	t.Cleanup(restore)
	go func() {
		<-entered
		// The flight is registered (trackRun precedes the run goroutine) and
		// parked before EstimateContext, so its Progress is not yet in use.
		var f *flight
		for f == nil {
			s.runsMu.Lock()
			for ff := range s.runs {
				f = ff
			}
			s.runsMu.Unlock()
			if f == nil {
				time.Sleep(time.Millisecond)
			}
		}
		f.prog.OnAdvance = func(int64, int64) { time.Sleep(perSource) }
		close(release)
	}()
}

func decodeEstimate(t *testing.T, w *httptest.ResponseRecorder) estimateBody {
	t.Helper()
	var b estimateBody
	if err := json.NewDecoder(w.Body).Decode(&b); err != nil {
		t.Fatalf("bad estimate body: %v", err)
	}
	return b
}

// TestDegradeAcceptSoftDeadlineSnapshot: a degrade=accept request whose soft
// deadline lands mid-run is answered from the freshest published snapshot —
// 200, partial, with proven mean bounds around the estimate.
func TestDegradeAcceptSoftDeadlineSnapshot(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 1, SoftMargin: 100 * time.Millisecond})
	slowFlight(t, s, 10*time.Millisecond)
	w := doJSON(s, http.MethodPost, "/v1/estimate?timeout=400ms&degrade=accept", `{"seed":500,"techniques":"RIC","traversal":"per-source"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", w.Code, w.Body)
	}
	b := decodeEstimate(t, w)
	if !b.Partial {
		t.Fatalf("degraded answer not marked partial: %+v", b)
	}
	if b.Completed <= 0 || b.Completed >= b.Planned {
		t.Fatalf("implausible snapshot progress %d/%d", b.Completed, b.Planned)
	}
	if b.Progress <= 0 || b.Progress >= 1 {
		t.Fatalf("progress %v out of (0,1)", b.Progress)
	}
	if b.MeanLow > b.MeanFarness || b.MeanFarness > b.MeanHigh {
		t.Fatalf("mean %v outside its bounds [%v, %v]", b.MeanFarness, b.MeanLow, b.MeanHigh)
	}
}

// TestDegradeAcceptHardDeadlinePartial: with no soft window (margin wider
// than the deadline) the accepting waiter leaves at the hard deadline, the
// cancel propagates, and the run's final partial result comes back within
// the grace wait — still 200, still flagged.
func TestDegradeAcceptHardDeadlinePartial(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 1}) // default SoftMargin 500ms > timeout
	slowFlight(t, s, 10*time.Millisecond)
	w := doJSON(s, http.MethodPost, "/v1/estimate?timeout=200ms&degrade=accept", `{"seed":510,"techniques":"RIC","traversal":"per-source"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", w.Code, w.Body)
	}
	b := decodeEstimate(t, w)
	if !b.Partial || b.Completed <= 0 || b.Completed >= b.Planned {
		t.Fatalf("bad hard-deadline partial: %+v", b)
	}
}

// TestPartialNeverCached: after a degraded answer, the next identical request
// must run fresh and produce the exact (non-partial) result.
func TestPartialNeverCached(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 1})
	slowFlight(t, s, 5*time.Millisecond)
	w := doJSON(s, http.MethodPost, "/v1/estimate?timeout=250ms&degrade=accept", `{"seed":520,"techniques":"RIC","traversal":"per-source"}`)
	if w.Code != http.StatusOK || !decodeEstimate(t, w).Partial {
		t.Fatalf("setup: expected partial 200, got %d %s", w.Code, w.Body)
	}
	gen := s.gen.Load()
	gen.mu.Lock()
	cached := len(gen.cache)
	gen.mu.Unlock()
	if cached != 0 {
		t.Fatalf("partial result entered the estimate cache (%d entries)", cached)
	}
	// Same key, generous deadline: a fresh, full run.
	w = doJSON(s, http.MethodPost, "/v1/estimate?timeout=30s&degrade=accept", `{"seed":520,"techniques":"RIC","traversal":"per-source"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("full rerun: %d %s", w.Code, w.Body)
	}
	if b := decodeEstimate(t, w); b.Partial {
		t.Fatalf("second run served a partial as if cached: %+v", b)
	}
	gen.mu.Lock()
	cached = len(gen.cache)
	gen.mu.Unlock()
	if cached != 1 {
		t.Fatalf("full result not cached (%d entries)", cached)
	}
}

// TestDegradeRejectStaysExactOrError: the default policy times out with 504
// rather than serving a partial.
func TestDegradeRejectStaysExactOrError(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 1})
	slowFlight(t, s, 5*time.Millisecond)
	w := doJSON(s, http.MethodPost, "/v1/estimate?timeout=200ms&degrade=reject", `{"seed":530,"techniques":"RIC","traversal":"per-source"}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", w.Code, w.Body)
	}
	if strings.Contains(w.Body.String(), `"partial":true`) {
		t.Fatalf("reject waiter saw partial data: %s", w.Body)
	}
}

// TestDegradeRejectPartialFlightIs503: a reject waiter whose shared flight
// degrades under it (server drain interrupts the run after progress was made)
// gets 503 + Retry-After, never the partial payload.
func TestDegradeRejectPartialFlightIs503(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 1})
	slowFlight(t, s, 5*time.Millisecond)
	respCh := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		respCh <- doJSON(s, http.MethodPost, "/v1/estimate?timeout=30s&degrade=reject", `{"seed":540,"techniques":"RIC","traversal":"per-source"}`)
	}()
	// Let the throttled run bank some sources, then drain the server.
	time.Sleep(150 * time.Millisecond)
	s.Close()
	w := <-respCh
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("503 without a Retry-After hint")
	}
}

// TestDegradeAcceptDrainServesPartial: the same drain, but an accepting
// waiter keeps the partial the interrupted run assembled.
func TestDegradeAcceptDrainServesPartial(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 1})
	slowFlight(t, s, 5*time.Millisecond)
	respCh := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		respCh <- doJSON(s, http.MethodPost, "/v1/estimate?timeout=30s&degrade=accept", `{"seed":550,"techniques":"RIC","traversal":"per-source"}`)
	}()
	time.Sleep(150 * time.Millisecond)
	s.Close()
	w := <-respCh
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", w.Code, w.Body)
	}
	if b := decodeEstimate(t, w); !b.Partial || b.Completed <= 0 {
		t.Fatalf("drained accept waiter got %+v, want a partial with progress", b)
	}
}

// TestFarnessPartialBounds: the per-node endpoint carries the node's own
// proven bounds on a degraded answer.
func TestFarnessPartialBounds(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 1, SoftMargin: 100 * time.Millisecond})
	slowFlight(t, s, 10*time.Millisecond)
	w := doJSON(s, http.MethodGet, "/v1/farness/3?timeout=400ms&degrade=accept&seed=560&techniques=RIC&traversal=per-source", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", w.Code, w.Body)
	}
	var b farnessBody
	if err := json.NewDecoder(w.Body).Decode(&b); err != nil {
		t.Fatal(err)
	}
	if !b.Partial {
		t.Fatalf("degraded farness not marked partial: %+v", b)
	}
	if b.Low == nil || b.High == nil {
		t.Fatal("partial farness missing bounds")
	}
	if *b.Low > b.Farness || b.Farness > *b.High {
		t.Fatalf("farness %v outside its bounds [%v, %v]", b.Farness, *b.Low, *b.High)
	}
	if b.Progress <= 0 || b.Progress >= 1 {
		t.Fatalf("progress %v out of (0,1)", b.Progress)
	}
}

// TestDegradeValidation: an unknown degrade value is a 400.
func TestDegradeValidation(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 1})
	w := doJSON(s, http.MethodPost, "/v1/estimate?degrade=maybe", `{}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", w.Code, w.Body)
	}
}

// TestStatusEndpoint: /v1/status reports the generation id, in-flight runs
// with live progress fractions, and never blocks behind an estimation.
func TestStatusEndpoint(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 1})
	readStatus := func() statusBody {
		w := doJSON(s, http.MethodGet, "/v1/status", "")
		if w.Code != http.StatusOK {
			t.Fatalf("status endpoint: %d %s", w.Code, w.Body)
		}
		var b statusBody
		if err := json.NewDecoder(w.Body).Decode(&b); err != nil {
			t.Fatal(err)
		}
		return b
	}
	b := readStatus()
	if !b.Ready || b.Generation != 1 || b.Nodes == 0 || len(b.Inflight) != 0 {
		t.Fatalf("idle status: %+v", b)
	}

	// Hold a throttled run mid-flight and observe it.
	slowFlight(t, s, 5*time.Millisecond)
	respCh := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		respCh <- doJSON(s, http.MethodPost, "/v1/estimate?timeout=10s", `{"seed":570}`)
	}()
	deadline := time.Now().Add(2 * time.Second)
	var seen bool
	for time.Now().Before(deadline) {
		b = readStatus()
		if len(b.Inflight) == 1 && b.Inflight[0].Completed > 0 {
			run := b.Inflight[0]
			if run.Planned <= 0 || run.Progress <= 0 || run.Progress > 1 || run.Generation != 1 || run.Key == "" {
				t.Fatalf("inflight run status: %+v", run)
			}
			seen = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !seen {
		t.Fatal("in-flight run never appeared in /v1/status with progress")
	}
	if w := <-respCh; w.Code != http.StatusOK {
		t.Fatalf("held run finished with %d %s", w.Code, w.Body)
	}
	b = readStatus()
	if len(b.Inflight) != 0 || b.CacheEntries != 1 || b.MedianRunMillis <= 0 {
		t.Fatalf("post-run status: %+v", b)
	}

	// A mutation bumps the generation id.
	for v := 200; v < 220; v++ {
		if w := doJSON(s, http.MethodPost, "/v1/edges", `{"u":0,"v":`+itoa(v)+`}`); w.Code == http.StatusOK {
			break
		}
	}
	if b = readStatus(); b.Generation != 2 || b.CacheEntries != 0 {
		t.Fatalf("post-mutation status: %+v", b)
	}
}

func itoa(v int) string {
	b, _ := json.Marshal(v)
	return string(b)
}
