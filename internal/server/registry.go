package server

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bincsr"
)

// ErrUnknownGraph reports a request for a graph id the registry was not
// configured with; the HTTP layer maps it to 404.
var ErrUnknownGraph = errors.New("server: unknown graph")

// errRegistryClosed sheds requests arriving after Close; mapped to 503.
var errRegistryClosed = errors.New("server: registry closed")

// RegistryConfig tunes the multi-graph registry.
type RegistryConfig struct {
	// Server is the configuration template every per-graph Server is built
	// from (workers, admission, deadlines, sketch options). AssumeConnected
	// is overridden per artifact from its FlagConnected bit.
	Server Config
	// MaxResidentBytes caps the summed ResidentBytes of loaded artifacts.
	// A load pushing past the cap evicts idle graphs (refcount zero),
	// least-recently-used first. 0 means unlimited. The cap bounds hoarding,
	// not correctness: a single artifact larger than the whole budget still
	// loads and serves — there is simply nothing left to evict.
	MaxResidentBytes int64
	// Verify selects how much of an artifact is checked at load time
	// (bincsr.VerifyFast by default — see bincsr.VerifyMode).
	Verify bincsr.VerifyMode
	// DefaultGraph is the id behind the legacy single-graph routes
	// (/v1/..., /readyz). Empty selects the lexicographically first id.
	DefaultGraph string
}

// Registry serves many graphs from one address, each under
// /graphs/{id}/v1/... with the legacy single-graph routes aliased to a
// default graph. Graphs are artifacts (.bricsbin) loaded lazily via
// bincsr.OpenMapped on first request — time-to-first-query is page-cache
// time, not parse time — and evicted LRU under a resident-byte budget.
//
// Lifetime safety: unmapping an artifact while a traversal still walks its
// CSR views is a segfault, so every request holds a reference on its graph
// entry for the duration of the handler, eviction only ever selects entries
// with zero references, and the evictor stops the entry's server and drains
// its detached estimation goroutines (Server.Close + Server.WaitRuns)
// before munmap. An evicted graph is not gone — the next request for its id
// reloads it from the artifact.
type Registry struct {
	cfg       RegistryConfig
	defaultID string

	mu        sync.Mutex
	paths     map[string]string    // registered id → artifact path; immutable
	entries   map[string]*regEntry // loading or loaded
	loadCount map[string]int       // per-id loads (reloads after eviction)
	resident  int64
	evictions int64
	closed    bool
}

// regEntry is one graph's load state. refs/lastAccess/loaded are guarded by
// Registry.mu; srv/mapped/err are written once by the loader before ready is
// closed and read-only afterwards.
type regEntry struct {
	id, path string
	ready    chan struct{}
	err      error
	srv      *Server
	mapped   *bincsr.Mapped

	refs       int
	lastAccess time.Time
	loaded     bool // load finished successfully and resident is accounted
}

// DiscoverArtifacts maps every .bricsbin file directly under dir to a graph
// id (the file name without extension).
func DiscoverArtifacts(dir string) (map[string]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	paths := make(map[string]string)
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".bricsbin") {
			continue
		}
		paths[strings.TrimSuffix(name, ".bricsbin")] = filepath.Join(dir, name)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("server: no .bricsbin artifacts in %s", dir)
	}
	return paths, nil
}

// NewRegistry builds a registry over id → artifact path. Nothing is loaded
// until the first request for each graph.
func NewRegistry(paths map[string]string, cfg RegistryConfig) (*Registry, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("server: registry needs at least one graph")
	}
	cfg.Server = cfg.Server.withDefaults()
	def := cfg.DefaultGraph
	if def == "" {
		ids := make([]string, 0, len(paths))
		for id := range paths {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		def = ids[0]
	} else if _, ok := paths[def]; !ok {
		return nil, fmt.Errorf("%w: default graph %q", ErrUnknownGraph, def)
	}
	r := &Registry{
		cfg:       cfg,
		defaultID: def,
		paths:     make(map[string]string, len(paths)),
		entries:   make(map[string]*regEntry),
		loadCount: make(map[string]int),
	}
	for id, p := range paths {
		if id == "" || strings.ContainsAny(id, "/?#") {
			return nil, fmt.Errorf("server: graph id %q is not routable", id)
		}
		r.paths[id] = p
	}
	return r, nil
}

// DefaultGraph returns the id behind the legacy single-graph routes.
func (r *Registry) DefaultGraph() string { return r.defaultID }

// acquire returns the entry for id with a reference held, loading the
// artifact if necessary. Concurrent first requests for one id share a single
// load (the ready channel); requests for different ids load independently.
func (r *Registry) acquire(id string) (*regEntry, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, errRegistryClosed
	}
	path, ok := r.paths[id]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownGraph, id)
	}
	if e, ok := r.entries[id]; ok {
		e.refs++
		e.lastAccess = time.Now()
		r.mu.Unlock()
		<-e.ready
		if e.err != nil {
			r.release(e)
			return nil, e.err
		}
		return e, nil
	}
	// Leader: install a placeholder so followers wait on this load, then
	// load outside the lock — a slow mmap/verify must not block requests
	// for other graphs.
	e := &regEntry{id: id, path: path, ready: make(chan struct{}), refs: 1, lastAccess: time.Now()}
	r.entries[id] = e
	r.loadCount[id]++
	r.mu.Unlock()

	e.load(r.cfg)
	r.mu.Lock()
	if e.err != nil {
		if r.entries[id] == e {
			delete(r.entries, id)
		}
	} else {
		e.loaded = true
		r.resident += e.mapped.ResidentBytes()
		r.evictLocked(e)
	}
	closed := r.closed
	r.mu.Unlock()
	close(e.ready)
	if e.err != nil {
		return nil, e.err
	}
	if closed {
		// Lost the race against Close; Close never saw this entry loaded,
		// so retire it here.
		r.release(e)
		r.retire(e)
		return nil, errRegistryClosed
	}
	return e, nil
}

// load opens the artifact and builds its server. Connectivity handling
// follows the artifact's flags: FlagConnected skips the O(n+m) scan (the
// converter already proved it — rescanning would fault in every page and
// forfeit the lazy load); an unflagged artifact is scanned like any other
// graph.
func (e *regEntry) load(cfg RegistryConfig) {
	m, err := bincsr.OpenMapped(e.path, bincsr.Options{Verify: cfg.Verify, Workers: cfg.Server.Workers})
	if err != nil {
		e.err = fmt.Errorf("graph %q: %w", e.id, err)
		return
	}
	scfg := cfg.Server
	scfg.AssumeConnected = m.Header.Connected()
	srv, err := NewWithConfig(m.G, scfg)
	if err != nil {
		_ = m.Close()
		e.err = fmt.Errorf("graph %q: %w", e.id, err)
		return
	}
	e.mapped, e.srv = m, srv
}

// release drops one reference.
func (r *Registry) release(e *regEntry) {
	r.mu.Lock()
	e.refs--
	r.mu.Unlock()
}

// evictLocked evicts idle graphs LRU-first until the resident total fits the
// budget. keep (the entry that just loaded) is never evicted — evicting the
// graph a request is about to use would thrash. Entries with live references
// or still loading are skipped; if only those remain, the registry runs over
// budget rather than breaking them.
func (r *Registry) evictLocked(keep *regEntry) {
	max := r.cfg.MaxResidentBytes
	if max <= 0 {
		return
	}
	for r.resident > max {
		var victim *regEntry
		for _, e := range r.entries {
			if e == keep || !e.loaded || e.refs > 0 {
				continue
			}
			if victim == nil || e.lastAccess.Before(victim.lastAccess) {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(r.entries, victim.id)
		r.resident -= victim.mapped.ResidentBytes()
		r.evictions++
		// Stopping the victim's server and draining its runs can take a
		// moment; do it off the registry lock. No new reference can appear —
		// the entry is out of the map.
		go r.retire(victim)
	}
}

// retire stops an evicted entry's server, waits out its detached estimation
// goroutines, and only then unmaps the artifact.
func (r *Registry) retire(e *regEntry) {
	e.srv.Close()
	e.srv.WaitRuns()
	_ = e.mapped.Close()
}

// Close evicts everything and rejects further requests. It returns after
// every loaded graph's runs are drained and its mapping released.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	victims := make([]*regEntry, 0, len(r.entries))
	for id, e := range r.entries {
		if e.loaded {
			victims = append(victims, e)
			r.resident -= e.mapped.ResidentBytes()
		}
		// Loading entries retire themselves when their load completes (see
		// acquire); loaded ones are ours.
		delete(r.entries, id)
	}
	r.mu.Unlock()
	for _, e := range victims {
		r.retire(e)
	}
}

// registryGraphStatus is one graph's row in /graphs and /v1/status.
type registryGraphStatus struct {
	ID     string `json:"id"`
	Loaded bool   `json:"loaded"`
	// Mapped distinguishes a true zero-copy memory mapping from the heap
	// copy fallback (non-linux builds); meaningful only when Loaded.
	Mapped        bool  `json:"mapped,omitempty"`
	ResidentBytes int64 `json:"residentBytes,omitempty"`
	Refs          int   `json:"refs,omitempty"`
	Loads         int   `json:"loads,omitempty"`
	IdleMillis    int64 `json:"idleMillis,omitempty"`
}

// registryStatus is the registry block embedded in /v1/status and the body
// of /graphs.
type registryStatus struct {
	Graphs           []registryGraphStatus `json:"graphs"`
	ResidentBytes    int64                 `json:"residentBytes"`
	MaxResidentBytes int64                 `json:"maxResidentBytes,omitempty"`
	Evictions        int64                 `json:"evictions"`
	DefaultGraph     string                `json:"defaultGraph"`
}

func (r *Registry) status() registryStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]string, 0, len(r.paths))
	for id := range r.paths {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	now := time.Now()
	st := registryStatus{
		Graphs:           make([]registryGraphStatus, 0, len(ids)),
		ResidentBytes:    r.resident,
		MaxResidentBytes: r.cfg.MaxResidentBytes,
		Evictions:        r.evictions,
		DefaultGraph:     r.defaultID,
	}
	for _, id := range ids {
		row := registryGraphStatus{ID: id, Loads: r.loadCount[id]}
		if e, ok := r.entries[id]; ok && e.loaded {
			row.Loaded = true
			row.Mapped = e.mapped.Mapped()
			row.ResidentBytes = e.mapped.ResidentBytes()
			row.Refs = e.refs
			row.IdleMillis = now.Sub(e.lastAccess).Milliseconds()
		}
		st.Graphs = append(st.Graphs, row)
	}
	return st
}

// registryStatusBody is the merged /v1/status answer: the default graph's
// live state plus the registry block.
type registryStatusBody struct {
	statusBody
	Graph    string         `json:"graph"`
	Registry registryStatus `json:"registry"`
}

// ServeHTTP routes:
//
//	GET /healthz                  liveness (never loads a graph)
//	GET /graphs                   every registered graph's load state
//	    /graphs/{id}              one graph's load state (no load triggered)
//	    /graphs/{id}/v1/...       that graph's full Server API
//	    /graphs/{id}/healthz      per-graph liveness (loads the graph)
//	    /v1/..., /readyz          legacy single-graph routes → default graph
//	GET /v1/status                default graph's status + registry block
//
// A panic anywhere answers 500 without taking the daemon down, mirroring
// Server.ServeHTTP.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	defer func() {
		if v := recover(); v != nil {
			if v == http.ErrAbortHandler {
				panic(v)
			}
			writeErr(w, http.StatusInternalServerError, "internal error: %v", v)
		}
	}()
	p := req.URL.Path
	switch {
	case p == "/healthz":
		// Liveness must not depend on any graph loading.
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	case p == "/graphs" || p == "/graphs/":
		if req.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, http.StatusOK, r.status())
	case strings.HasPrefix(p, "/graphs/"):
		rest := strings.TrimPrefix(p, "/graphs/")
		id, sub, slash := strings.Cut(rest, "/")
		if !slash || sub == "" {
			// /graphs/{id}: that graph's row, without forcing a load.
			r.handleGraphInfo(w, req, id)
			return
		}
		r.delegate(w, req, id, "/"+sub)
	case p == "/v1/status":
		r.handleMergedStatus(w, req)
	default:
		r.delegate(w, req, r.defaultID, p)
	}
}

func (r *Registry) handleGraphInfo(w http.ResponseWriter, req *http.Request, id string) {
	if req.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	for _, row := range r.status().Graphs {
		if row.ID == id {
			writeJSON(w, http.StatusOK, row)
			return
		}
	}
	writeErr(w, http.StatusNotFound, "unknown graph %q", id)
}

func (r *Registry) handleMergedStatus(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	e, err := r.acquire(r.defaultID)
	if err != nil {
		r.writeAcquireErr(w, err)
		return
	}
	defer r.release(e)
	writeJSON(w, http.StatusOK, registryStatusBody{
		statusBody: e.srv.statusSnapshot(),
		Graph:      r.defaultID,
		Registry:   r.status(),
	})
}

// delegate pins the graph for the request's duration and hands the request
// to its server with the /graphs/{id} prefix stripped.
func (r *Registry) delegate(w http.ResponseWriter, req *http.Request, id, path string) {
	e, err := r.acquire(id)
	if err != nil {
		r.writeAcquireErr(w, err)
		return
	}
	defer r.release(e)
	req2 := req.Clone(req.Context())
	req2.URL.Path = path
	e.srv.ServeHTTP(w, req2)
}

func (r *Registry) writeAcquireErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownGraph):
		writeErr(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, errRegistryClosed):
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
	default:
		// The artifact failed to load — an operational problem, not the
		// client's.
		writeErr(w, http.StatusInternalServerError, "%v", err)
	}
}
