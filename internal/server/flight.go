package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/sketch"
)

// errBusy sheds load when every estimation slot is taken; handlers map it to
// 429 + Retry-After.
var errBusy = errors.New("server: estimation capacity saturated")

// errPartialOnly is what a degrade=reject waiter gets when the run it joined
// could only produce a partial result (another waiter's soft deadline, a
// drain, or the shared flight being interrupted). Handlers map it to 503: the
// caller asked for exact-or-nothing and got nothing.
var errPartialOnly = errors.New("server: run degraded to a partial result (degrade=reject)")

// panicError wraps a value recovered from a crashed estimation run so the
// handler can answer 500 while the daemon keeps serving.
type panicError struct{ val any }

func (p *panicError) Error() string { return fmt.Sprintf("estimation run panicked: %v", p.val) }

// degradeGrace is how long a degrading waiter lingers past its hard deadline
// for the canceled run to assemble its final partial result — the assembly is
// a copy plus O(n log n) bound math, not a traversal, so this stays small.
const degradeGrace = 500 * time.Millisecond

// generation is one immutable version of the served graph together with its
// result cache and in-flight estimate runs. Readers load the current
// generation from Server.gen with a single atomic pointer read — they never
// contend with estimates — and edge mutations install a fresh generation,
// which atomically invalidates the cache and detaches (but does not abort)
// runs still computing against the old snapshot.
type generation struct {
	g  *graph.Graph
	id uint64 // monotone across mutations; reported by /v1/status

	mu      sync.Mutex // guards cache and flights; held only for map ops
	cache   map[string]*core.Result
	flights map[string]*flight

	// sketch is the generation's cluster-BFS distance index, built lazily on
	// the first sketch/auto distance (or sketch-filtered topk) request and
	// shared by every subsequent one. Tied to the generation, it dies with
	// the snapshot on the next edge mutation — the sketch can never answer
	// against a stale graph. Guarded by skMu rather than a sync.Once: a build
	// that loses the race against a generation swap must not be stored (see
	// Server.sketchFor), and a Once cannot express "ran, kept nothing".
	skMu   sync.Mutex
	sketch *sketch.Sketch

	// distCache memoises /v1/distance answers per (pair, mode, tolerance).
	// The mode is part of the key — a sketch upper bound must never be
	// served to an exact-mode caller — and the map is cleared wholesale when
	// it reaches distCacheCap (simpler than LRU and rare at that size).
	distMu    sync.Mutex
	distCache map[distKey]distVal
}

// distKey canonicalises one distance query: endpoints ordered (the graph is
// undirected), plus the answering mode and its tolerance.
type distKey struct {
	u, v graph.NodeID
	mode distMode
	tol  int32
}

// distVal is one cached distance answer.
type distVal struct {
	d      int32
	lo, hi int32
	method string
}

// distCacheCap bounds the per-generation distance cache (~1.5 MB of
// entries); see generation.distCache.
const distCacheCap = 1 << 16

func newGeneration(g *graph.Graph, id uint64) *generation {
	return &generation{
		g:         g,
		id:        id,
		cache:     make(map[string]*core.Result),
		flights:   make(map[string]*flight),
		distCache: make(map[distKey]distVal),
	}
}

// sketchFor returns gen's sketch, building it on first use. The build runs
// outside the generation lock; when it completes against a generation that an
// edge mutation has meanwhile replaced, the sketch is served to the caller
// that asked but NOT stored — storing it would pin the dead snapshot's memory
// for as long as the generation object lives, and no future request will ever
// load that generation again anyway.
func (s *Server) sketchFor(gen *generation) *sketch.Sketch {
	gen.skMu.Lock()
	if sk := gen.sketch; sk != nil {
		gen.skMu.Unlock()
		return sk
	}
	gen.skMu.Unlock()
	sk := sketch.Build(gen.g, s.cfg.Sketch)
	gen.skMu.Lock()
	defer gen.skMu.Unlock()
	if gen.sketch != nil {
		return gen.sketch // a concurrent builder won; share its copy
	}
	if s.gen.Load() == gen {
		gen.sketch = sk
	}
	return sk
}

// lookupDist returns a cached distance answer for key.
func (gen *generation) lookupDist(key distKey) (distVal, bool) {
	gen.distMu.Lock()
	v, ok := gen.distCache[key]
	gen.distMu.Unlock()
	return v, ok
}

// storeDist caches a distance answer, clearing the map when it is full.
func (gen *generation) storeDist(key distKey, v distVal) {
	gen.distMu.Lock()
	if len(gen.distCache) >= distCacheCap {
		clear(gen.distCache)
	}
	gen.distCache[key] = v
	gen.distMu.Unlock()
}

// flight is one in-flight estimation run, deduplicating concurrent requests
// with identical parameters (singleflight). The run's context derives from
// the server's base context — not any single request's — and is canceled
// when the last waiter walks away (client disconnects, deadlines expire) or
// the server closes, so abandoned work stops burning CPU. Every flight runs
// in anytime mode: prog carries live progress (surfaced by /v1/status and the
// Retry-After hint) and periodic partial snapshots that degrading waiters can
// take when their soft deadline lands.
type flight struct {
	done    chan struct{} // closed when res/err are set
	res     *core.Result
	err     error
	waiters int // guarded by the generation's mu
	cancel  context.CancelFunc
	prog    *core.Progress
	key     string
	genID   uint64
	started time.Time
}

// estimate returns the cached result for key, joins an identical in-flight
// run, or starts one (subject to admission control). ctx is the request's
// context: its cancellation abandons only this caller's wait, aborting the
// compute itself only when no other request still wants the result. degrade
// selects the caller's deadline policy: an accepting waiter takes a partial
// snapshot at its soft deadline instead of timing out, a rejecting waiter
// insists on the exact result or an error.
func (s *Server) estimate(ctx context.Context, key string, opts core.Options, degrade bool) (*core.Result, error) {
	gen := s.gen.Load()
	gen.mu.Lock()
	if res, ok := gen.cache[key]; ok {
		gen.mu.Unlock()
		return res, nil
	}
	if f, ok := gen.flights[key]; ok {
		f.waiters++
		gen.mu.Unlock()
		return s.wait(ctx, gen, key, f, degrade)
	}
	// Leader: take an estimation slot or shed the request.
	select {
	case s.sem <- struct{}{}:
	default:
		gen.mu.Unlock()
		return nil, errBusy
	}
	fctx, fcancel := context.WithCancel(s.baseCtx)
	f := &flight{
		done: make(chan struct{}), waiters: 1, cancel: fcancel,
		prog: &core.Progress{}, key: key, genID: gen.id, started: time.Now(),
	}
	opts.Anytime = true
	opts.Progress = f.prog
	gen.flights[key] = f
	gen.mu.Unlock()

	s.trackRun(f)
	s.runWG.Add(1)
	go s.run(fctx, gen, key, f, opts)
	return s.wait(ctx, gen, key, f, degrade)
}

// run executes one estimation flight: panic-safe, cancellable, publishing
// into the generation's cache on success. A partial result (the run was
// interrupted and degraded) is handed to its waiters but never cached — the
// next identical request starts a fresh run. Always releases the admission
// slot and retires the flight from the status registry.
func (s *Server) run(fctx context.Context, gen *generation, key string, f *flight, opts core.Options) {
	defer s.runWG.Done()
	defer func() { <-s.sem }()
	defer s.untrackRun(f)
	defer f.cancel()
	res, err := func() (res *core.Result, err error) {
		defer func() {
			if v := recover(); v != nil {
				res, err = nil, &panicError{val: v}
			}
		}()
		if err := fault.Checkpoint(fctx, "server.estimate"); err != nil {
			return nil, err
		}
		return core.EstimateContext(fctx, gen.g, opts)
	}()
	gen.mu.Lock()
	f.res, f.err = res, err
	if gen.flights[key] == f {
		delete(gen.flights, key)
	}
	if err == nil && res != nil && !res.Partial {
		gen.cache[key] = res
		s.recordRunDuration(time.Since(f.started))
	}
	gen.mu.Unlock()
	close(f.done)
}

// wait blocks until the flight completes or the caller's deadline policy
// fires. The last waiter to walk away aborts the flight's compute and
// retires it from the dedup map, so a later identical request starts fresh.
//
// Degraded-mode state machine (degrade=true):
//
//	waiting ──soft deadline, snapshot available──▶ serve snapshot (200 partial)
//	waiting ──soft deadline, no snapshot yet─────▶ keep waiting to the hard deadline
//	waiting ──hard deadline──▶ leave; if last waiter the cancel propagates and
//	          the run's final partial is served after a short grace wait; else
//	          the freshest snapshot; else 504
//	waiting ──flight done────▶ exact result, or the run's own partial
//
// A degrade=false waiter skips the soft timer entirely and converts any
// partial outcome into errPartialOnly (503).
func (s *Server) wait(ctx context.Context, gen *generation, key string, f *flight, degrade bool) (*core.Result, error) {
	finish := func() (*core.Result, error) {
		gen.mu.Lock()
		f.waiters--
		gen.mu.Unlock()
		if f.err == nil && f.res != nil && f.res.Partial && !degrade {
			return nil, errPartialOnly
		}
		return f.res, f.err
	}
	// leave retires this waiter; the last one out cancels the compute.
	leave := func() bool {
		gen.mu.Lock()
		f.waiters--
		abandoned := f.waiters == 0
		if abandoned && gen.flights[key] == f {
			delete(gen.flights, key)
		}
		gen.mu.Unlock()
		if abandoned {
			f.cancel()
		}
		return abandoned
	}

	var soft <-chan time.Time
	if degrade {
		if dl, ok := ctx.Deadline(); ok {
			if d := time.Until(dl) - s.cfg.SoftMargin; d > 0 {
				t := time.NewTimer(d)
				defer t.Stop()
				soft = t.C
			}
		}
	}
	select {
	case <-f.done:
		return finish()
	case <-soft:
		// Soft deadline: serve the freshest published snapshot, leaving the
		// run to any remaining waiters (or cancellation if we were the last —
		// the snapshot is already assembled and immutable either way).
		if snap := f.prog.Snapshot(); snap != nil {
			leave()
			return snap, nil
		}
		// Nothing published yet; hold on until the run finishes or the hard
		// deadline fires.
		select {
		case <-f.done:
			return finish()
		case <-ctx.Done():
		}
	case <-ctx.Done():
	}
	// Hard deadline (or client disconnect).
	abandoned := leave()
	if degrade {
		if abandoned {
			// Our cancel is propagating into the run; its final partial
			// assembly is cheap, so linger briefly for a result strictly
			// fresher than any snapshot.
			t := time.NewTimer(degradeGrace)
			defer t.Stop()
			select {
			case <-f.done:
				if f.err == nil && f.res != nil && f.res.Partial {
					return f.res, nil
				}
			case <-t.C:
			}
		}
		if snap := f.prog.Snapshot(); snap != nil {
			return snap, nil
		}
	}
	return nil, par.CtxErr(ctx)
}

// trackRun registers a started flight in the status registry behind
// /v1/status and the Retry-After hint.
func (s *Server) trackRun(f *flight) {
	s.runsMu.Lock()
	s.runs[f] = struct{}{}
	s.runsMu.Unlock()
}

func (s *Server) untrackRun(f *flight) {
	s.runsMu.Lock()
	delete(s.runs, f)
	s.runsMu.Unlock()
}

// inflightRuns snapshots the live flights, most advanced first.
func (s *Server) inflightRuns() []*flight {
	s.runsMu.Lock()
	out := make([]*flight, 0, len(s.runs))
	for f := range s.runs {
		out = append(out, f)
	}
	s.runsMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].prog.Fraction() > out[j].prog.Fraction() })
	return out
}

// recordRunDuration feeds the completed-run duration ring behind the
// Retry-After estimate. Only full (uninterrupted) runs are recorded: a
// degraded run's elapsed time says nothing about how long the next full run
// will take.
func (s *Server) recordRunDuration(d time.Duration) {
	s.durMu.Lock()
	s.durs[s.durI%len(s.durs)] = d
	s.durI++
	s.durMu.Unlock()
}

// medianRunDuration returns the median of the recorded full-run durations,
// or 0 when none have completed yet.
func (s *Server) medianRunDuration() time.Duration {
	s.durMu.Lock()
	n := s.durI
	if n > len(s.durs) {
		n = len(s.durs)
	}
	tmp := make([]time.Duration, n)
	copy(tmp, s.durs[:n])
	s.durMu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	return tmp[n/2]
}

// retryAfterSeconds estimates how long a shed request should back off: the
// soonest in-flight run to finish frees a slot, and its remaining time is the
// median full-run duration scaled by its unfinished fraction. No history or
// no progress data degrades to the 1-second floor; the hint is clamped to
// [1, 30] so a stuck run cannot push clients away for minutes.
func retryAfterSeconds(median time.Duration, progress []float64) int {
	const floor, ceil = 1, 30
	if median <= 0 || len(progress) == 0 {
		return floor
	}
	best := math.Inf(1)
	for _, p := range progress {
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		if rem := 1 - p; rem < best {
			best = rem
		}
	}
	secs := int(math.Ceil(best * median.Seconds()))
	if secs < floor {
		return floor
	}
	if secs > ceil {
		return ceil
	}
	return secs
}

// retryAfter computes the live Retry-After hint from the duration history and
// the in-flight runs' progress.
func (s *Server) retryAfter() int {
	runs := s.inflightRuns()
	fracs := make([]float64, len(runs))
	for i, f := range runs {
		fracs[i] = f.prog.Fraction()
	}
	return retryAfterSeconds(s.medianRunDuration(), fracs)
}
