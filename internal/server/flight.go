package server

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/par"
)

// errBusy sheds load when every estimation slot is taken; handlers map it to
// 429 + Retry-After.
var errBusy = errors.New("server: estimation capacity saturated")

// panicError wraps a value recovered from a crashed estimation run so the
// handler can answer 500 while the daemon keeps serving.
type panicError struct{ val any }

func (p *panicError) Error() string { return fmt.Sprintf("estimation run panicked: %v", p.val) }

// generation is one immutable version of the served graph together with its
// result cache and in-flight estimate runs. Readers load the current
// generation from Server.gen with a single atomic pointer read — they never
// contend with estimates — and edge mutations install a fresh generation,
// which atomically invalidates the cache and detaches (but does not abort)
// runs still computing against the old snapshot.
type generation struct {
	g *graph.Graph

	mu      sync.Mutex // guards cache and flights; held only for map ops
	cache   map[string]*core.Result
	flights map[string]*flight
}

func newGeneration(g *graph.Graph) *generation {
	return &generation{
		g:       g,
		cache:   make(map[string]*core.Result),
		flights: make(map[string]*flight),
	}
}

// flight is one in-flight estimation run, deduplicating concurrent requests
// with identical parameters (singleflight). The run's context derives from
// the server's base context — not any single request's — and is canceled
// when the last waiter walks away (client disconnects, deadlines expire) or
// the server closes, so abandoned work stops burning CPU.
type flight struct {
	done    chan struct{} // closed when res/err are set
	res     *core.Result
	err     error
	waiters int // guarded by the generation's mu
	cancel  context.CancelFunc
}

// estimate returns the cached result for key, joins an identical in-flight
// run, or starts one (subject to admission control). ctx is the request's
// context: its cancellation abandons only this caller's wait, aborting the
// compute itself only when no other request still wants the result.
func (s *Server) estimate(ctx context.Context, key string, opts core.Options) (*core.Result, error) {
	gen := s.gen.Load()
	gen.mu.Lock()
	if res, ok := gen.cache[key]; ok {
		gen.mu.Unlock()
		return res, nil
	}
	if f, ok := gen.flights[key]; ok {
		f.waiters++
		gen.mu.Unlock()
		return s.wait(ctx, gen, key, f)
	}
	// Leader: take an estimation slot or shed the request.
	select {
	case s.sem <- struct{}{}:
	default:
		gen.mu.Unlock()
		return nil, errBusy
	}
	fctx, fcancel := context.WithCancel(s.baseCtx)
	f := &flight{done: make(chan struct{}), waiters: 1, cancel: fcancel}
	gen.flights[key] = f
	gen.mu.Unlock()

	go s.run(fctx, gen, key, f, opts)
	return s.wait(ctx, gen, key, f)
}

// run executes one estimation flight: panic-safe, cancellable, publishing
// into the generation's cache on success. Always releases the admission slot.
func (s *Server) run(fctx context.Context, gen *generation, key string, f *flight, opts core.Options) {
	defer func() { <-s.sem }()
	defer f.cancel()
	res, err := func() (res *core.Result, err error) {
		defer func() {
			if v := recover(); v != nil {
				res, err = nil, &panicError{val: v}
			}
		}()
		if err := fault.Checkpoint(fctx, "server.estimate"); err != nil {
			return nil, err
		}
		return core.EstimateContext(fctx, gen.g, opts)
	}()
	gen.mu.Lock()
	f.res, f.err = res, err
	if gen.flights[key] == f {
		delete(gen.flights, key)
	}
	if err == nil {
		gen.cache[key] = res
	}
	gen.mu.Unlock()
	close(f.done)
}

// wait blocks until the flight completes or the caller's context fires.
// The last waiter to walk away aborts the flight's compute and retires it
// from the dedup map, so a later identical request starts fresh.
func (s *Server) wait(ctx context.Context, gen *generation, key string, f *flight) (*core.Result, error) {
	select {
	case <-f.done:
		gen.mu.Lock()
		f.waiters--
		gen.mu.Unlock()
		return f.res, f.err
	case <-ctx.Done():
		gen.mu.Lock()
		f.waiters--
		abandoned := f.waiters == 0
		if abandoned && gen.flights[key] == f {
			delete(gen.flights, key)
		}
		gen.mu.Unlock()
		if abandoned {
			f.cancel()
		}
		return nil, par.CtxErr(ctx)
	}
}
