package server

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/sketch"
)

// errBusy sheds load when every estimation slot is taken; handlers map it to
// 429 + Retry-After.
var errBusy = errors.New("server: estimation capacity saturated")

// panicError wraps a value recovered from a crashed estimation run so the
// handler can answer 500 while the daemon keeps serving.
type panicError struct{ val any }

func (p *panicError) Error() string { return fmt.Sprintf("estimation run panicked: %v", p.val) }

// generation is one immutable version of the served graph together with its
// result cache and in-flight estimate runs. Readers load the current
// generation from Server.gen with a single atomic pointer read — they never
// contend with estimates — and edge mutations install a fresh generation,
// which atomically invalidates the cache and detaches (but does not abort)
// runs still computing against the old snapshot.
type generation struct {
	g *graph.Graph

	mu      sync.Mutex // guards cache and flights; held only for map ops
	cache   map[string]*core.Result
	flights map[string]*flight

	// sketch is the generation's cluster-BFS distance index, built lazily on
	// the first sketch/auto distance (or sketch-filtered topk) request and
	// shared by every subsequent one. Tied to the generation, it dies with
	// the snapshot on the next edge mutation — the sketch can never answer
	// against a stale graph.
	sketchOnce sync.Once
	sketch     *sketch.Sketch

	// distCache memoises /v1/distance answers per (pair, mode, tolerance).
	// The mode is part of the key — a sketch upper bound must never be
	// served to an exact-mode caller — and the map is cleared wholesale when
	// it reaches distCacheCap (simpler than LRU and rare at that size).
	distMu    sync.Mutex
	distCache map[distKey]distVal
}

// distKey canonicalises one distance query: endpoints ordered (the graph is
// undirected), plus the answering mode and its tolerance.
type distKey struct {
	u, v graph.NodeID
	mode distMode
	tol  int32
}

// distVal is one cached distance answer.
type distVal struct {
	d      int32
	lo, hi int32
	method string
}

// distCacheCap bounds the per-generation distance cache (~1.5 MB of
// entries); see generation.distCache.
const distCacheCap = 1 << 16

func newGeneration(g *graph.Graph) *generation {
	return &generation{
		g:         g,
		cache:     make(map[string]*core.Result),
		flights:   make(map[string]*flight),
		distCache: make(map[distKey]distVal),
	}
}

// sketchFor returns the generation's sketch, building it on first use with
// the server's configured options. Concurrent first callers block on the
// build once; afterwards the sketch is read-only and lock-free.
func (gen *generation) sketchFor(opts sketch.Options) *sketch.Sketch {
	gen.sketchOnce.Do(func() { gen.sketch = sketch.Build(gen.g, opts) })
	return gen.sketch
}

// lookupDist returns a cached distance answer for key.
func (gen *generation) lookupDist(key distKey) (distVal, bool) {
	gen.distMu.Lock()
	v, ok := gen.distCache[key]
	gen.distMu.Unlock()
	return v, ok
}

// storeDist caches a distance answer, clearing the map when it is full.
func (gen *generation) storeDist(key distKey, v distVal) {
	gen.distMu.Lock()
	if len(gen.distCache) >= distCacheCap {
		clear(gen.distCache)
	}
	gen.distCache[key] = v
	gen.distMu.Unlock()
}

// flight is one in-flight estimation run, deduplicating concurrent requests
// with identical parameters (singleflight). The run's context derives from
// the server's base context — not any single request's — and is canceled
// when the last waiter walks away (client disconnects, deadlines expire) or
// the server closes, so abandoned work stops burning CPU.
type flight struct {
	done    chan struct{} // closed when res/err are set
	res     *core.Result
	err     error
	waiters int // guarded by the generation's mu
	cancel  context.CancelFunc
}

// estimate returns the cached result for key, joins an identical in-flight
// run, or starts one (subject to admission control). ctx is the request's
// context: its cancellation abandons only this caller's wait, aborting the
// compute itself only when no other request still wants the result.
func (s *Server) estimate(ctx context.Context, key string, opts core.Options) (*core.Result, error) {
	gen := s.gen.Load()
	gen.mu.Lock()
	if res, ok := gen.cache[key]; ok {
		gen.mu.Unlock()
		return res, nil
	}
	if f, ok := gen.flights[key]; ok {
		f.waiters++
		gen.mu.Unlock()
		return s.wait(ctx, gen, key, f)
	}
	// Leader: take an estimation slot or shed the request.
	select {
	case s.sem <- struct{}{}:
	default:
		gen.mu.Unlock()
		return nil, errBusy
	}
	fctx, fcancel := context.WithCancel(s.baseCtx)
	f := &flight{done: make(chan struct{}), waiters: 1, cancel: fcancel}
	gen.flights[key] = f
	gen.mu.Unlock()

	go s.run(fctx, gen, key, f, opts)
	return s.wait(ctx, gen, key, f)
}

// run executes one estimation flight: panic-safe, cancellable, publishing
// into the generation's cache on success. Always releases the admission slot.
func (s *Server) run(fctx context.Context, gen *generation, key string, f *flight, opts core.Options) {
	defer func() { <-s.sem }()
	defer f.cancel()
	res, err := func() (res *core.Result, err error) {
		defer func() {
			if v := recover(); v != nil {
				res, err = nil, &panicError{val: v}
			}
		}()
		if err := fault.Checkpoint(fctx, "server.estimate"); err != nil {
			return nil, err
		}
		return core.EstimateContext(fctx, gen.g, opts)
	}()
	gen.mu.Lock()
	f.res, f.err = res, err
	if gen.flights[key] == f {
		delete(gen.flights, key)
	}
	if err == nil {
		gen.cache[key] = res
	}
	gen.mu.Unlock()
	close(f.done)
}

// wait blocks until the flight completes or the caller's context fires.
// The last waiter to walk away aborts the flight's compute and retires it
// from the dedup map, so a later identical request starts fresh.
func (s *Server) wait(ctx context.Context, gen *generation, key string, f *flight) (*core.Result, error) {
	select {
	case <-f.done:
		gen.mu.Lock()
		f.waiters--
		gen.mu.Unlock()
		return f.res, f.err
	case <-ctx.Done():
		gen.mu.Lock()
		f.waiters--
		abandoned := f.waiters == 0
		if abandoned && gen.flights[key] == f {
			delete(gen.flights, key)
		}
		gen.mu.Unlock()
		if abandoned {
			f.cancel()
		}
		return nil, par.CtxErr(ctx)
	}
}
