package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// The chaos suite drives a live bricsd (a real HTTP listener, real client
// connections) through overload, injected faults and mutation churn, and
// asserts the invariants the rest of this package promises one at a time:
// every response is a legal status with a parseable body, partial results
// are flagged and never cached or served as exact, generation ids stay
// consistent across (possibly failing) mutations, and drain terminates.
// Run it under -race; `make chaos` and the CI chaos job do.

// httpDo issues one request against a live test server and returns the
// status code and body. A transport error is a test failure — the server
// must always answer, however degraded.
func httpDo(t *testing.T, client *http.Client, method, url, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("build %s %s: %v", method, url, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: transport error: %v", method, url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s %s: read body: %v", method, url, err)
	}
	return resp.StatusCode, b
}

// TestChaosStormSurvivesOverloadAndFaults floods a live server with a mixed
// workload — estimates under tight deadlines with both degrade policies,
// top-k and per-node reads, status polls, edge mutations — while a seeded
// fault plan stalls flight entries, crashes two traversals, and fails some
// mutations. Invariants: every response has a legal status and a JSON body,
// observed generation ids never move backwards, the injected panics are
// contained to their runs, and afterwards the server serves a clean exact
// answer.
func TestChaosStormSurvivesOverloadAndFaults(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 2, MaxInflight: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := &http.Client{Timeout: 10 * time.Second}

	errInjected := errors.New("chaos: mutation refused")
	plan := &fault.Plan{
		Seed: 42,
		Rules: []fault.Rule{
			{Point: "server.estimate", Prob: 0.5, Delay: 30 * time.Millisecond},
			{Point: "core.traverse", After: 1, Count: 2, Panic: "chaos: traversal crashed"},
			{Point: "server.mutate", Prob: 0.3, Err: errInjected},
		},
	}
	restore := plan.Install()
	defer restore()

	legal := func(kind string) map[int]bool {
		switch kind {
		case "estimate":
			return map[int]bool{200: true, 429: true, 500: true, 503: true, 504: true}
		case "edges":
			return map[int]bool{200: true, 400: true}
		default: // status, graph, distance
			return map[int]bool{200: true}
		}
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	report := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	check := func(kind, what string, code int, body []byte) {
		if !legal(kind)[code] {
			report("%s: illegal status %d (body %s)", what, code, body)
			return
		}
		var v map[string]any
		if err := json.Unmarshal(body, &v); err != nil {
			report("%s: status %d with unparseable body %q: %v", what, code, body, err)
		}
	}

	// Estimators: distinct keys so runs actually fan out, tight deadlines,
	// alternating degrade policy.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				degrade := "accept"
				if (w+i)%2 == 0 {
					degrade = "reject"
				}
				timeout := []string{"75ms", "150ms", "400ms", "2s"}[i%4]
				url := fmt.Sprintf("%s/v1/estimate?timeout=%s&degrade=%s", ts.URL, timeout, degrade)
				body := fmt.Sprintf(`{"seed":%d,"techniques":"RIC","traversal":"per-source"}`, 700+w*8+i)
				code, b := httpDo(t, client, http.MethodPost, url, body)
				check("estimate", fmt.Sprintf("estimator %d req %d", w, i), code, b)
				// A degraded 200 must carry honest progress accounting.
				if code == 200 {
					var eb estimateBody
					if json.Unmarshal(b, &eb) == nil && eb.Partial {
						if eb.Completed <= 0 || eb.Completed > eb.Planned {
							report("estimator %d req %d: partial with progress %d/%d", w, i, eb.Completed, eb.Planned)
						}
					}
				}
			}
		}(w)
	}
	// Read-side pressure: farness and top-k share the estimation stack.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			code, b := httpDo(t, client, http.MethodGet,
				fmt.Sprintf("%s/v1/farness/%d?timeout=300ms&degrade=accept&seed=%d&techniques=RIC&traversal=per-source", ts.URL, i, 760+i), "")
			check("estimate", fmt.Sprintf("farness %d", i), code, b)
			code, b = httpDo(t, client, http.MethodGet,
				fmt.Sprintf("%s/v1/topk?k=5&timeout=500ms&degrade=accept&seed=%d", ts.URL, 770+i), "")
			check("estimate", fmt.Sprintf("topk %d", i), code, b)
		}
	}()
	// Mutation churn: some of these are refused by the fault plan (400), the
	// rest install fresh generations under the estimators' feet.
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := s.gen.Load().g.NumNodes()
		for i := 0; i < 12; i++ {
			u, v := (i*17)%n, (i*29+101)%n
			if u == v {
				continue
			}
			code, b := httpDo(t, client, http.MethodPost, ts.URL+"/v1/edges",
				fmt.Sprintf(`{"u":%d,"v":%d}`, u, v))
			check("edges", fmt.Sprintf("mutation %d", i), code, b)
		}
	}()
	// Status poller: generation ids observed by one sequential client must
	// never decrease, and the body must stay coherent mid-chaos.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastGen uint64
		for i := 0; i < 20; i++ {
			code, b := httpDo(t, client, http.MethodGet, ts.URL+"/v1/status", "")
			check("status", fmt.Sprintf("status poll %d", i), code, b)
			var sb statusBody
			if err := json.Unmarshal(b, &sb); err != nil {
				continue
			}
			if sb.Generation < lastGen {
				report("status poll %d: generation went backwards %d -> %d", i, lastGen, sb.Generation)
			}
			lastGen = sb.Generation
			for _, r := range sb.Inflight {
				if r.Progress < 0 || r.Progress > 1 {
					report("status poll %d: inflight progress %v out of [0,1]", i, r.Progress)
				}
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()
	wg.Wait()

	for _, f := range failures {
		t.Error(f)
	}
	if fired := plan.Fired(1); fired < 1 || fired > 2 {
		t.Errorf("traversal panic rule fired %d times, want 1..2", fired)
	}
	// The storm is over; the daemon must be fully healthy.
	restore()
	if code, _ := httpDo(t, client, http.MethodGet, ts.URL+"/healthz", ""); code != 200 {
		t.Fatalf("healthz after storm: %d", code)
	}
	code, b := httpDo(t, client, http.MethodPost, ts.URL+"/v1/estimate?timeout=30s",
		`{"seed":799,"techniques":"RIC","traversal":"per-source"}`)
	if code != 200 {
		t.Fatalf("clean estimate after storm: %d %s", code, b)
	}
	var eb estimateBody
	if err := json.Unmarshal(b, &eb); err != nil || eb.Partial {
		t.Fatalf("post-storm estimate not exact: err=%v body=%s", err, b)
	}
}

// TestChaosPartialNeverServedAsExact repeatedly interrupts throttled runs
// with mixed-deadline waiters and then compares every answer against the
// true exact result: a response not flagged partial must match the clean
// full run bit-for-bit, and a flagged partial must carry honest progress
// and mean bounds that contain the exact value.
func TestChaosPartialNeverServedAsExact(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 1})
	type answer struct {
		seed int
		code int
		body estimateBody
	}
	var mu sync.Mutex
	var answers []answer

	for wave := 0; wave < 3; wave++ {
		seed := 820 + wave
		slowFlight(t, s, 5*time.Millisecond)
		body := fmt.Sprintf(`{"seed":%d,"techniques":"RIC","traversal":"per-source"}`, seed)
		var wg sync.WaitGroup
		for i := 0; i < 6; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				timeout := []string{"150ms", "250ms", "30s"}[i%3]
				w := doJSON(s, http.MethodPost,
					fmt.Sprintf("/v1/estimate?timeout=%s&degrade=accept", timeout), body)
				var b estimateBody
				if w.Code == http.StatusOK {
					if err := json.NewDecoder(w.Body).Decode(&b); err != nil {
						t.Errorf("wave %d req %d: bad body: %v", wave, i, err)
						return
					}
				}
				mu.Lock()
				answers = append(answers, answer{seed, w.Code, b})
				mu.Unlock()
			}(i)
		}
		wg.Wait()
		time.Sleep(30 * time.Millisecond) // let the wave's run untrack fully
	}

	// Ground truth per seed, computed clean after the chaos.
	fault.Clear()
	exact := make(map[int]estimateBody)
	for wave := 0; wave < 3; wave++ {
		seed := 820 + wave
		w := doJSON(s, http.MethodPost, "/v1/estimate?timeout=30s",
			fmt.Sprintf(`{"seed":%d,"techniques":"RIC","traversal":"per-source"}`, seed))
		if w.Code != http.StatusOK {
			t.Fatalf("ground truth seed %d: %d %s", seed, w.Code, w.Body)
		}
		b := decodeEstimate(t, w)
		if b.Partial {
			t.Fatalf("ground-truth run for seed %d returned partial — a partial was cached", seed)
		}
		exact[seed] = b
	}

	for _, a := range answers {
		if a.code != http.StatusOK {
			continue // timeouts/cancellations are fine; exactness is what's audited
		}
		ex := exact[a.seed]
		if a.body.Partial {
			if a.body.Completed <= 0 || a.body.Completed > a.body.Planned {
				t.Errorf("seed %d: partial with progress %d/%d", a.seed, a.body.Completed, a.body.Planned)
			}
			if a.body.MeanLow > ex.MeanFarness || ex.MeanFarness > a.body.MeanHigh {
				t.Errorf("seed %d: exact mean %v outside partial bounds [%v, %v]",
					a.seed, ex.MeanFarness, a.body.MeanLow, a.body.MeanHigh)
			}
		} else if a.body.MeanFarness != ex.MeanFarness {
			t.Errorf("seed %d: unflagged answer %v differs from exact %v — a partial was served as exact",
				a.seed, a.body.MeanFarness, ex.MeanFarness)
		}
	}
}

// TestChaosGenerationConsistency churns edge mutations through a fault plan
// that refuses some of them mid-swap, with sketch-answered reads racing the
// whole time: the generation id must advance exactly on each successful
// mutation and stay put on each refused one, and every read must succeed.
func TestChaosGenerationConsistency(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 2})
	plan := &fault.Plan{
		Seed: 7,
		Rules: []fault.Rule{
			{Point: "server.mutate", Prob: 0.4, Err: errors.New("chaos: swap refused")},
		},
	}
	restore := plan.Install()
	defer restore()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	n := s.gen.Load().g.NumNodes()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				u, v := (w*41+i)%n, (w*13+i*7+5)%n
				rec := doJSON(s, http.MethodGet,
					fmt.Sprintf("/v1/distance?from=%d&to=%d&mode=sketch", u, v), "")
				if rec.Code != http.StatusOK {
					t.Errorf("read %d->%d during churn: %d %s", u, v, rec.Code, rec.Body)
					return
				}
			}
		}(w)
	}

	gen := func() uint64 {
		var sb statusBody
		w := doJSON(s, http.MethodGet, "/v1/status", "")
		if err := json.NewDecoder(w.Body).Decode(&sb); err != nil {
			t.Fatalf("status: %v", err)
		}
		return sb.Generation
	}
	last := gen()
	for i := 0; i < 30; i++ {
		u, v := (i*23)%n, (i*31+77)%n
		if u == v {
			continue
		}
		w := doJSON(s, http.MethodPost, "/v1/edges", fmt.Sprintf(`{"u":%d,"v":%d}`, u, v))
		now := gen()
		switch w.Code {
		case http.StatusOK:
			if now != last+1 {
				t.Fatalf("mutation %d succeeded but generation went %d -> %d, want +1", i, last, now)
			}
		case http.StatusBadRequest:
			if now != last {
				t.Fatalf("mutation %d failed (%s) but generation went %d -> %d, want unchanged", i, w.Body, last, now)
			}
		default:
			t.Fatalf("mutation %d: status %d %s", i, w.Code, w.Body)
		}
		last = now
	}
	if plan.Fired(0) == 0 {
		t.Error("fault plan never refused a mutation; churn too small to prove anything")
	}
	close(stop)
	wg.Wait()
}

// TestChaosGracefulDrain parks several estimation runs, flips readiness off
// and closes the server: every waiter — accept and reject alike — must get
// an answer promptly, the inflight registry must empty, and the liveness
// endpoints must keep serving on the drained process.
func TestChaosGracefulDrain(t *testing.T) {
	s := newRobustServer(t, Config{Workers: 2, MaxInflight: 8})
	restore := fault.Set("server.estimate", func(ctx context.Context) error {
		return fault.Sleep(ctx, 30*time.Second)
	})
	defer restore()

	const waiters = 4
	codes := make(chan int, waiters)
	for i := 0; i < waiters; i++ {
		degrade := []string{"accept", "reject"}[i%2]
		go func(i int, degrade string) {
			w := doJSON(s, http.MethodPost,
				"/v1/estimate?timeout=30s&degrade="+degrade,
				fmt.Sprintf(`{"seed":%d,"techniques":"RIC","traversal":"per-source"}`, 840+i))
			codes <- w.Code
		}(i, degrade)
	}
	// Wait until all runs are registered and parked.
	deadline := time.Now().Add(2 * time.Second)
	for len(s.inflightRuns()) < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d runs in flight after 2s", len(s.inflightRuns()), waiters)
		}
		time.Sleep(5 * time.Millisecond)
	}

	s.SetReady(false)
	if w := doJSON(s, http.MethodGet, "/readyz", ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", w.Code)
	}
	s.Close()

	for i := 0; i < waiters; i++ {
		select {
		case code := <-codes:
			// Parked runs made no progress, so accept waiters cannot be
			// handed a partial either: everyone gets a clean 503.
			if code != http.StatusServiceUnavailable {
				t.Errorf("drained waiter answered %d, want 503", code)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("drain did not complete: waiter still blocked 2s after Close")
		}
	}
	deadline = time.Now().Add(2 * time.Second)
	for len(s.inflightRuns()) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d runs still tracked 2s after drain", len(s.inflightRuns()))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if w := doJSON(s, http.MethodGet, "/healthz", ""); w.Code != http.StatusOK {
		t.Fatalf("healthz on drained server: %d", w.Code)
	}
	var sb statusBody
	w := doJSON(s, http.MethodGet, "/v1/status", "")
	if err := json.NewDecoder(w.Body).Decode(&sb); err != nil {
		t.Fatalf("status on drained server: %v", err)
	}
	if sb.Ready || len(sb.Inflight) != 0 {
		t.Fatalf("drained status = ready %v, %d inflight; want not-ready, none", sb.Ready, len(sb.Inflight))
	}
}
