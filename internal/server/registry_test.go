package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bincsr"
	"repro/internal/gen"
	"repro/internal/graph"
)

// writeArtifacts builds one connected artifact per name into dir and returns
// id → path.
func writeArtifacts(t *testing.T, dir string, n int, names ...string) map[string]string {
	t.Helper()
	paths := make(map[string]string)
	for i, name := range names {
		g := graph.Connect(gen.Community(n, int64(i+1)))
		p := filepath.Join(dir, name+".bricsbin")
		if err := bincsr.WriteFile(p, g, bincsr.FlagConnected); err != nil {
			t.Fatalf("WriteFile %s: %v", name, err)
		}
		paths[name] = p
	}
	return paths
}

func newTestRegistry(t *testing.T, cfg RegistryConfig, names ...string) (*Registry, *httptest.Server) {
	t.Helper()
	paths := writeArtifacts(t, t.TempDir(), 300, names...)
	r, err := NewRegistry(paths, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(r)
	t.Cleanup(func() { ts.Close(); r.Close() })
	return r, ts
}

func TestRegistryRoutesAndLazyLoad(t *testing.T) {
	r, ts := newTestRegistry(t, RegistryConfig{}, "alpha", "beta")

	// Nothing loads at construction or for /healthz and /graphs.
	code, body := httpDo(t, ts.Client(), http.MethodGet, ts.URL+"/healthz", "")
	if code != 200 {
		t.Fatalf("/healthz: %d %s", code, body)
	}
	var st registryStatus
	code, body = httpDo(t, ts.Client(), http.MethodGet, ts.URL+"/graphs", "")
	if code != 200 {
		t.Fatalf("/graphs: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Graphs) != 2 || st.Graphs[0].Loaded || st.Graphs[1].Loaded {
		t.Fatalf("graphs loaded before any request: %+v", st.Graphs)
	}
	if st.DefaultGraph != "alpha" {
		t.Fatalf("default %q, want alpha (lexicographic)", st.DefaultGraph)
	}

	// A per-graph route loads exactly that graph.
	var gb graphBody
	code, body = httpDo(t, ts.Client(), http.MethodGet, ts.URL+"/graphs/beta/v1/graph", "")
	if code != 200 {
		t.Fatalf("/graphs/beta/v1/graph: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &gb); err != nil || gb.Nodes == 0 {
		t.Fatalf("bad graph body %s: %v", body, err)
	}
	if got := loadedIDs(r); len(got) != 1 || got[0] != "beta" {
		t.Fatalf("loaded %v, want [beta]", got)
	}

	// Legacy routes hit the default graph.
	code, _ = httpDo(t, ts.Client(), http.MethodGet, ts.URL+"/v1/graph", "")
	if code != 200 {
		t.Fatalf("legacy /v1/graph: %d", code)
	}
	if got := loadedIDs(r); len(got) != 2 {
		t.Fatalf("loaded %v, want both", got)
	}

	// Unknown ids 404 on both route shapes.
	if code, _ = httpDo(t, ts.Client(), http.MethodGet, ts.URL+"/graphs/nope/v1/graph", ""); code != 404 {
		t.Fatalf("unknown graph: %d", code)
	}
	if code, _ = httpDo(t, ts.Client(), http.MethodGet, ts.URL+"/graphs/nope", ""); code != 404 {
		t.Fatalf("unknown graph info: %d", code)
	}

	// /v1/status carries the registry block and the default graph's state.
	var sb registryStatusBody
	code, body = httpDo(t, ts.Client(), http.MethodGet, ts.URL+"/v1/status", "")
	if code != 200 {
		t.Fatalf("/v1/status: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &sb); err != nil {
		t.Fatal(err)
	}
	if sb.Graph != "alpha" || sb.Nodes == 0 || len(sb.Registry.Graphs) != 2 {
		t.Fatalf("merged status: %s", body)
	}
	if !sb.Registry.Graphs[0].Mapped && isLinux() {
		t.Fatalf("expected a true mapping on linux: %+v", sb.Registry.Graphs[0])
	}
}

func isLinux() bool { return os.Getenv("GOOS") == "linux" || fileExists("/proc/self/maps") }

func fileExists(p string) bool { _, err := os.Stat(p); return err == nil }

func loadedIDs(r *Registry) []string {
	var out []string
	for _, row := range r.status().Graphs {
		if row.Loaded {
			out = append(out, row.ID)
		}
	}
	return out
}

func TestRegistryEstimateAndMutatePerGraph(t *testing.T) {
	_, ts := newTestRegistry(t, RegistryConfig{}, "a", "b")
	// Estimate on graph a.
	code, body := httpDo(t, ts.Client(), http.MethodPost, ts.URL+"/graphs/a/v1/estimate",
		`{"techniques":"C","fraction":1.0,"seed":1}`)
	if code != 200 {
		t.Fatalf("estimate a: %d %s", code, body)
	}
	// Mutate graph b: its generation advances, a's does not.
	code, body = httpDo(t, ts.Client(), http.MethodPost, ts.URL+"/graphs/b/v1/edges", `{"u":0,"v":7}`)
	if code != 200 && code != 400 { // 400 if the edge already exists
		t.Fatalf("edge insert b: %d %s", code, body)
	}
	var sa, sb statusBody
	_, ba := httpDo(t, ts.Client(), http.MethodGet, ts.URL+"/graphs/a/v1/status", "")
	_, bb := httpDo(t, ts.Client(), http.MethodGet, ts.URL+"/graphs/b/v1/status", "")
	if err := json.Unmarshal(ba, &sa); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bb, &sb); err != nil {
		t.Fatal(err)
	}
	if sa.Generation != 1 {
		t.Fatalf("graph a generation %d, want 1 (untouched)", sa.Generation)
	}
	if code == 200 && sb.Generation != 2 {
		t.Fatalf("graph b generation %d after mutation, want 2", sb.Generation)
	}
	if sa.CacheEntries != 1 {
		t.Fatalf("graph a cache entries %d, want 1 (per-graph cache)", sa.CacheEntries)
	}
}

func TestRegistryEvictionAndReload(t *testing.T) {
	// Budget fits either artifact alone but never both, so every switch of
	// graphs evicts the idle one.
	paths := writeArtifacts(t, t.TempDir(), 300, "a", "b")
	sizeA, sizeB := artifactSize(t, paths["a"]), artifactSize(t, paths["b"])
	r, err := NewRegistry(paths, RegistryConfig{MaxResidentBytes: sizeA + sizeB - 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ts := httptest.NewServer(r)
	defer ts.Close()

	get := func(id string) {
		code, body := httpDo(t, ts.Client(), http.MethodGet, ts.URL+"/graphs/"+id+"/v1/graph", "")
		if code != 200 {
			t.Fatalf("graph %s: %d %s", id, code, body)
		}
	}
	get("a")
	get("b") // loading b pushes past budget → a (idle, LRU) is evicted
	st := r.status()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1; status %+v", st.Evictions, st)
	}
	if got := loadedIDs(r); len(got) != 1 || got[0] != "b" {
		t.Fatalf("loaded %v, want [b]", got)
	}
	if st.ResidentBytes != sizeB {
		t.Fatalf("resident %d, want %d", st.ResidentBytes, sizeB)
	}
	get("a") // reload after eviction must serve correctly
	for _, row := range r.status().Graphs {
		if row.ID == "a" && row.Loads != 2 {
			t.Fatalf("graph a loads = %d, want 2 (load + reload)", row.Loads)
		}
	}
}

func artifactSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

// TestChaosRegistryEvictionUnderFire hammers a tight-budget registry from
// many goroutines that keep switching between graphs — every request races
// load, eviction and reload of the graph it targets — with long-running
// estimates mixed in so detached run goroutines are alive while their graph
// becomes an eviction candidate. Invariants: no crash (munmap-after-drain is
// what keeps traversals off freed memory; a violation is a SIGSEGV, not a
// test failure message), every response is a legal status, and afterwards
// every graph still answers exactly and correctly.
func TestChaosRegistryEvictionUnderFire(t *testing.T) {
	names := []string{"g0", "g1", "g2", "g3"}
	paths := writeArtifacts(t, t.TempDir(), 300, names...)
	one := artifactSize(t, paths["g0"])
	r, err := NewRegistry(paths, RegistryConfig{
		// Room for ~2 graphs: constant eviction pressure with 4 in rotation.
		MaxResidentBytes: 2*one + one/2,
		Server:           Config{MaxInflight: 2, DefaultTimeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ts := httptest.NewServer(r)
	defer ts.Close()

	var wg sync.WaitGroup
	var reqs, evictionsSeen atomic.Int64
	deadline := time.Now().Add(3 * time.Second)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			client := ts.Client()
			for time.Now().Before(deadline) {
				id := names[rng.Intn(len(names))]
				var code int
				var body []byte
				switch rng.Intn(4) {
				case 0:
					code, body = httpDo(t, client, http.MethodPost,
						fmt.Sprintf("%s/graphs/%s/v1/estimate?timeout=500ms", ts.URL, id),
						`{"techniques":"C","fraction":1.0,"seed":1}`)
				case 1:
					code, body = httpDo(t, client, http.MethodGet,
						fmt.Sprintf("%s/graphs/%s/v1/distance?from=0&to=5", ts.URL, id), "")
				case 2:
					code, body = httpDo(t, client, http.MethodGet,
						fmt.Sprintf("%s/graphs/%s/v1/graph", ts.URL, id), "")
				default:
					code, body = httpDo(t, client, http.MethodGet, ts.URL+"/v1/status", "")
				}
				reqs.Add(1)
				switch code {
				case 200, 429, 503, 504:
					// Legal under overload/draining.
				default:
					t.Errorf("illegal status %d: %s", code, body)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	evictionsSeen.Store(r.status().Evictions)
	if evictionsSeen.Load() == 0 {
		t.Fatalf("chaos run drove no evictions (%d requests) — budget not exercised", reqs.Load())
	}

	// Aftermath: every graph answers an exact estimate with correct shape.
	for _, id := range names {
		code, body := httpDo(t, ts.Client(), http.MethodPost,
			fmt.Sprintf("%s/graphs/%s/v1/estimate", ts.URL, id),
			`{"techniques":"C","fraction":1.0,"seed":7}`)
		if code != 200 {
			t.Fatalf("aftermath estimate %s: %d %s", id, code, body)
		}
		var eb estimateBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Partial || eb.Nodes == 0 {
			t.Fatalf("aftermath %s: partial or empty: %s", id, body)
		}
	}
	t.Logf("chaos: %d requests, %d evictions", reqs.Load(), evictionsSeen.Load())
}

func TestRegistryCloseDrains(t *testing.T) {
	r, ts := newTestRegistry(t, RegistryConfig{}, "solo")
	// Kick off a slow estimate whose waiter gives up, leaving the detached
	// run alive, then Close: it must return only after the run drains.
	code, _ := httpDo(t, ts.Client(), http.MethodPost,
		ts.URL+"/graphs/solo/v1/estimate?timeout=50ms", `{"techniques":"BRIC","fraction":1.0,"seed":3}`)
	if code != 200 && code != 503 && code != 504 {
		t.Fatalf("estimate: %d", code)
	}
	r.Close()
	if code, _ := httpDo(t, ts.Client(), http.MethodGet, ts.URL+"/graphs/solo/v1/graph", ""); code != 503 {
		t.Fatalf("post-close request: %d, want 503", code)
	}
}
