// Package stats computes the quality metrics of the paper's evaluation
// (Section IV-C1): the per-node approximation ratio AR(v) =
// estimated/actual, the average ratio ("Quality"), error percentages, and
// speedup ratios, plus distribution summaries used by the experiment
// harness.
package stats

import (
	"math"
	"sort"
	"time"
)

// AR returns the per-node approximation ratios estimated[i]/actual[i].
// Nodes with actual == 0 (only possible for a single-node graph) get ratio
// 1.
func AR(estimated, actual []float64) []float64 {
	out := make([]float64, len(estimated))
	for i := range estimated {
		if actual[i] == 0 {
			out[i] = 1
			continue
		}
		out[i] = estimated[i] / actual[i]
	}
	return out
}

// Quality is the paper's headline metric: the mean approximation ratio
// over all nodes. 1.0 is perfect; the paper's plots hover in [0.9, 1.1].
func Quality(estimated, actual []float64) float64 {
	if len(estimated) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range estimated {
		if actual[i] == 0 {
			s++
		} else {
			s += estimated[i] / actual[i]
		}
	}
	return s / float64(len(estimated))
}

// AvgErrorPercent is the mean |AR−1|·100 — the "average error percentage"
// of the abstract.
func AvgErrorPercent(estimated, actual []float64) float64 {
	if len(estimated) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range estimated {
		if actual[i] == 0 {
			continue
		}
		s += math.Abs(estimated[i]/actual[i] - 1)
	}
	return s / float64(len(estimated)) * 100
}

// Speedup is baseline time over candidate time (>1 means the candidate is
// faster), the paper's speedup definition with random sampling as baseline.
func Speedup(baseline, candidate time.Duration) float64 {
	if candidate <= 0 {
		return math.Inf(1)
	}
	return float64(baseline) / float64(candidate)
}

// Summary is a five-number-plus-mean description of a sample.
type Summary struct {
	Min, P25, Median, P75, Max, Mean float64
	N                                int
}

// Summarize computes a Summary; the input is not modified.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q := func(p float64) float64 {
		idx := p * float64(len(s)-1)
		lo := int(idx)
		hi := lo + 1
		if hi >= len(s) {
			return s[len(s)-1]
		}
		frac := idx - float64(lo)
		return s[lo]*(1-frac) + s[hi]*frac
	}
	var mean float64
	for _, x := range s {
		mean += x
	}
	mean /= float64(len(s))
	return Summary{
		Min: s[0], P25: q(0.25), Median: q(0.5), P75: q(0.75), Max: s[len(s)-1],
		Mean: mean, N: len(s),
	}
}

// Pearson returns the Pearson correlation of two equal-length samples —
// used to compare estimated vs actual farness rankings (Fig. 5-style
// scatter agreement).
func Pearson(a, b []float64) float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		return math.NaN()
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(n)
	mb /= float64(n)
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(va*vb)
}

// TopKOverlap returns |topK(est) ∩ topK(actual)| / k for the k smallest
// farness values (the most central nodes) — a ranking-quality metric for
// the top-k use case the paper's related work cites.
func TopKOverlap(estimated, actual []float64, k int) float64 {
	if k <= 0 || len(estimated) != len(actual) || len(estimated) == 0 {
		return math.NaN()
	}
	if k > len(estimated) {
		k = len(estimated)
	}
	idx := func(xs []float64) map[int]bool {
		ord := make([]int, len(xs))
		for i := range ord {
			ord[i] = i
		}
		sort.Slice(ord, func(i, j int) bool { return xs[ord[i]] < xs[ord[j]] })
		out := make(map[int]bool, k)
		for _, i := range ord[:k] {
			out[i] = true
		}
		return out
	}
	e := idx(estimated)
	a := idx(actual)
	hits := 0
	for i := range e {
		if a[i] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// KendallTau computes the Kendall rank correlation τ-a between two
// equal-length value series, by merge-sort inversion counting in
// O(n log n). 1 means identical ranking, −1 reversed. Ranking agreement is
// the metric that matters when estimated centralities feed a top-k
// selection.
func KendallTau(a, b []float64) float64 {
	n := len(a)
	if n != len(b) || n < 2 {
		return math.NaN()
	}
	// Sort indices by a, then count discordant pairs as inversions of b
	// in that order. Ties are counted as half-discordant (τ-a treats tied
	// pairs as concordance 0; we approximate by excluding exact ties from
	// the numerator only when tied in both).
	ord := make([]int, n)
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(i, j int) bool {
		if a[ord[i]] != a[ord[j]] {
			return a[ord[i]] < a[ord[j]]
		}
		return b[ord[i]] < b[ord[j]]
	})
	seq := make([]float64, n)
	for i, idx := range ord {
		seq[i] = b[idx]
	}
	inv := countInversions(seq)
	total := float64(n) * float64(n-1) / 2
	return 1 - 2*float64(inv)/total
}

func countInversions(xs []float64) int64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	buf := make([]float64, n)
	var rec func(lo, hi int) int64
	rec = func(lo, hi int) int64 {
		if hi-lo < 2 {
			return 0
		}
		mid := (lo + hi) / 2
		inv := rec(lo, mid) + rec(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			if xs[i] <= xs[j] {
				buf[k] = xs[i]
				i++
			} else {
				buf[k] = xs[j]
				inv += int64(mid - i)
				j++
			}
			k++
		}
		for i < mid {
			buf[k] = xs[i]
			i++
			k++
		}
		for j < hi {
			buf[k] = xs[j]
			j++
			k++
		}
		copy(xs[lo:hi], buf[lo:hi])
		return inv
	}
	return rec(0, n)
}

// Histogram bins the sample into `bins` equal-width buckets over
// [min, max]; returned counts have length bins. Used by the experiment
// harness to render AR distributions (Fig. 5) as text.
func Histogram(xs []float64, bins int) (counts []int, min, width float64) {
	if bins <= 0 || len(xs) == 0 {
		return nil, 0, 0
	}
	min, max := xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	counts = make([]int, bins)
	width = (max - min) / float64(bins)
	if width == 0 {
		counts[0] = len(xs)
		return counts, min, width
	}
	for _, x := range xs {
		i := int((x - min) / width)
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return counts, min, width
}
