package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestARAndQuality(t *testing.T) {
	est := []float64{10, 22, 30}
	act := []float64{10, 20, 30}
	ar := AR(est, act)
	want := []float64{1, 1.1, 1}
	for i := range want {
		if math.Abs(ar[i]-want[i]) > 1e-12 {
			t.Errorf("AR[%d] = %v, want %v", i, ar[i], want[i])
		}
	}
	if q := Quality(est, act); math.Abs(q-(1+1.1+1)/3) > 1e-12 {
		t.Errorf("Quality = %v", q)
	}
	if e := AvgErrorPercent(est, act); math.Abs(e-10.0/3) > 1e-9 {
		t.Errorf("AvgErrorPercent = %v, want %v", e, 10.0/3)
	}
}

func TestQualityEdgeCases(t *testing.T) {
	if !math.IsNaN(Quality(nil, nil)) {
		t.Error("empty Quality should be NaN")
	}
	// actual == 0 counts as ratio 1.
	if q := Quality([]float64{5}, []float64{0}); q != 1 {
		t.Errorf("zero-actual quality = %v, want 1", q)
	}
	ar := AR([]float64{5}, []float64{0})
	if ar[0] != 1 {
		t.Errorf("zero-actual AR = %v, want 1", ar[0])
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(2*time.Second, time.Second); s != 2 {
		t.Errorf("Speedup = %v, want 2", s)
	}
	if !math.IsInf(Speedup(time.Second, 0), 1) {
		t.Error("zero candidate should give +Inf")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 || s.N != 5 {
		t.Errorf("Summary = %+v", s)
	}
	if s.P25 != 2 || s.P75 != 4 {
		t.Errorf("quartiles = %v,%v want 2,4", s.P25, s.P75)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Errorf("empty summary N = %d", empty.N)
	}
	// Input must not be reordered.
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Summarize mutated its input")
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if p := Pearson(a, a); math.Abs(p-1) > 1e-12 {
		t.Errorf("self correlation = %v", p)
	}
	b := []float64{4, 3, 2, 1}
	if p := Pearson(a, b); math.Abs(p+1) > 1e-12 {
		t.Errorf("anti correlation = %v", p)
	}
	if !math.IsNaN(Pearson(a, []float64{1, 1, 1, 1})) {
		t.Error("constant series should give NaN")
	}
	if !math.IsNaN(Pearson(a, a[:2])) {
		t.Error("length mismatch should give NaN")
	}
}

// Property: Pearson is invariant under positive affine transforms.
func TestPearsonAffineInvariance(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 3 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		ys := make([]float64, len(xs))
		varying := false
		for i := range xs {
			ys[i] = 2*xs[i] + 7
			if xs[i] != xs[0] {
				varying = true
			}
		}
		if !varying {
			return true
		}
		p := Pearson(xs, ys)
		return math.Abs(p-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKOverlap(t *testing.T) {
	est := []float64{1, 2, 3, 4, 5}
	act := []float64{1, 2, 3, 4, 5}
	if o := TopKOverlap(est, act, 2); o != 1 {
		t.Errorf("identical overlap = %v, want 1", o)
	}
	act2 := []float64{5, 4, 3, 2, 1}
	if o := TopKOverlap(est, act2, 2); o != 0 {
		t.Errorf("reverse overlap = %v, want 0", o)
	}
	if o := TopKOverlap(est, act, 100); o != 1 {
		t.Errorf("k>n overlap = %v, want 1", o)
	}
	if !math.IsNaN(TopKOverlap(est, act, 0)) {
		t.Error("k=0 should give NaN")
	}
}

func TestKendallTau(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if tau := KendallTau(a, a); math.Abs(tau-1) > 1e-12 {
		t.Errorf("identical tau = %v", tau)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if tau := KendallTau(a, rev); math.Abs(tau+1) > 1e-12 {
		t.Errorf("reversed tau = %v", tau)
	}
	// One swapped adjacent pair: 10 pairs, 1 discordant -> 1-2/10 = 0.8.
	b := []float64{1, 2, 3, 5, 4}
	if tau := KendallTau(a, b); math.Abs(tau-0.8) > 1e-12 {
		t.Errorf("one-swap tau = %v, want 0.8", tau)
	}
	if !math.IsNaN(KendallTau(a, a[:2])) {
		t.Error("length mismatch should be NaN")
	}
}

// Property: KendallTau matches the O(n^2) definition on random inputs.
func TestKendallTauBruteForce(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 2 || len(xs) > 40 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		ys := make([]float64, len(xs))
		for i := range ys {
			ys[i] = float64((i*7919)%13) - xs[i]
		}
		got := KendallTau(xs, ys)
		// brute force
		var conc int64
		n := len(xs)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				da := xs[i] - xs[j]
				db := ys[i] - ys[j]
				switch {
				case da*db > 0 || (da == 0 && db == 0) || (da == 0 && db != 0):
					// Our tie convention: pairs tied in a count as
					// concordant when b orders them consistently with the
					// tie-broken sort; replicate by treating a-ties as
					// concordant.
					conc++
				case da == 0 || db == 0:
					conc++
				}
			}
		}
		total := float64(n) * float64(n-1) / 2
		want := 2*float64(conc)/total - 1
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	counts, min, width := Histogram([]float64{0, 1, 2, 3}, 2)
	if min != 0 || width != 1.5 {
		t.Fatalf("min/width = %v/%v", min, width)
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	counts, _, width = Histogram([]float64{5, 5, 5}, 3)
	if width != 0 || counts[0] != 3 {
		t.Fatalf("constant histogram = %v width %v", counts, width)
	}
	if c, _, _ := Histogram(nil, 4); c != nil {
		t.Fatal("empty input should return nil")
	}
}
