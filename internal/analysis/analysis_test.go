package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bfs"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestDegreeHistogram(t *testing.T) {
	// Star: one node of degree 4, four of degree 1.
	g := graph.FromEdges(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	h := DegreeHistogram(g)
	if len(h) != 5 || h[1] != 4 || h[4] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// Triangle: both coefficients are 1.
	tri := graph.FromEdges(3, [][2]int32{{0, 1}, {1, 2}, {0, 2}})
	g, l := ClusteringCoefficient(tri)
	if g != 1 || l != 1 {
		t.Fatalf("triangle clustering = %v/%v", g, l)
	}
	// Path: no triangles, zero.
	path := graph.FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	g, l = ClusteringCoefficient(path)
	if g != 0 || l != 0 {
		t.Fatalf("path clustering = %v/%v", g, l)
	}
	// Paw: triangle 0-1-2 with tail 0-3. Local at 0: 1/3; 1,2: 1; global:
	// 3 triangles-as-triads / (3+1+1... compute directly: closed triads:
	// node0 C(3,2)=3 pairs, 1 closed; node1 1/1; node2 1/1; node3 deg1.
	// global = (1+1+1)/(3+1+1) = 0.6.
	paw := graph.FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {0, 3}})
	g, l = ClusteringCoefficient(paw)
	if absf(g-0.6) > 1e-12 {
		t.Fatalf("paw global clustering = %v, want 0.6", g)
	}
	if absf(l-(1.0/3+1+1)/3) > 1e-12 {
		t.Fatalf("paw avg local = %v", l)
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// bruteDiameter computes the true diameter.
func bruteDiameter(g *graph.Graph) int32 {
	var d int32
	dist := make([]int32, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		bfs.Distances(g, graph.NodeID(v), dist, nil)
		if e := bfs.Eccentricity(dist); e > d {
			d = e
		}
	}
	return d
}

// Property: the double-sweep bounds bracket the true diameter.
func TestDiameterBoundsBracket(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 2
		b := graph.NewBuilder(n)
		for i := 1; i < n; i++ {
			_ = b.AddEdge(int32(rng.Intn(i)), int32(i))
		}
		for i := 0; i < rng.Intn(2*n); i++ {
			_ = b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		truth := bruteDiameter(g)
		lo, hi := DiameterBounds(g, 4, seed)
		return lo <= truth && truth <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDiameterBoundsPath(t *testing.T) {
	// On a path the double sweep is exact.
	n := 50
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		_ = b.AddEdge(int32(i), int32(i+1))
	}
	g := b.Build()
	lo, _ := DiameterBounds(g, 2, 1)
	if lo != int32(n-1) {
		t.Fatalf("path diameter lower bound = %d, want %d", lo, n-1)
	}
}

func TestEffectiveDiameter(t *testing.T) {
	g := gen.Social(1000, 2)
	ed := EffectiveDiameter(g, 8, 1)
	lo, hi := DiameterBounds(g, 4, 1)
	if ed <= 0 || ed > float64(hi) {
		t.Fatalf("effective diameter %v outside (0, %d]", ed, hi)
	}
	_ = lo
	if EffectiveDiameter(graph.FromEdges(1, nil), 4, 1) != 0 {
		t.Fatal("single node effective diameter should be 0")
	}
}

func TestSummarize(t *testing.T) {
	g := gen.Road(1200, 3)
	s := Summarize(g, 1)
	if s.Nodes != g.NumNodes() || s.Edges != g.NumEdges() {
		t.Fatal("size mismatch")
	}
	if s.Deg1Frac+s.Deg2Frac < 0.5 {
		t.Errorf("road degree-1/2 fraction = %v", s.Deg1Frac+s.Deg2Frac)
	}
	if s.DiameterLower > s.DiameterUpper {
		t.Errorf("bounds inverted: %d > %d", s.DiameterLower, s.DiameterUpper)
	}
	if s.GlobalClustering < 0 || s.GlobalClustering > 1 {
		t.Errorf("clustering out of range: %v", s.GlobalClustering)
	}
}
