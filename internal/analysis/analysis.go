// Package analysis computes descriptive graph statistics — degree
// distribution, clustering, diameter bounds — used to characterise inputs
// the way the paper's Section IV-C2 characterises its graph classes, and
// exposed through cmd/graphinfo.
package analysis

import (
	"math/rand"
	"sort"

	"repro/internal/bfs"
	"repro/internal/graph"
	"repro/internal/queue"
)

// DegreeHistogram returns counts[d] = number of nodes with degree d.
func DegreeHistogram(g *graph.Graph) []int {
	maxDeg := 0
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		if d := g.Degree(graph.NodeID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	counts := make([]int, maxDeg+1)
	for v := 0; v < n; v++ {
		counts[g.Degree(graph.NodeID(v))]++
	}
	return counts
}

// ClusteringCoefficient returns the global clustering coefficient
// (3×triangles / open-plus-closed triads) and the average local
// coefficient. O(Σ deg²) — fine for the sparse graphs this library
// targets.
func ClusteringCoefficient(g *graph.Graph) (global, avgLocal float64) {
	n := g.NumNodes()
	var triangles, triads int64
	var localSum float64
	withDeg2 := 0
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(graph.NodeID(v))
		d := len(nbrs)
		if d < 2 {
			continue
		}
		withDeg2++
		var closed int64
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(nbrs[i], nbrs[j]) {
					closed++
				}
			}
		}
		pairs := int64(d) * int64(d-1) / 2
		triangles += closed
		triads += pairs
		localSum += float64(closed) / float64(pairs)
	}
	if triads > 0 {
		global = float64(triangles) / float64(triads)
	}
	if withDeg2 > 0 {
		avgLocal = localSum / float64(withDeg2)
	}
	return global, avgLocal
}

// DiameterBounds estimates the diameter of a connected graph with repeated
// double sweeps: a BFS from a random node finds a far node u; a BFS from u
// finds its eccentricity, a lower bound that is usually tight on real
// graphs. The returned upper bound is 2× the best-known eccentricity of a
// sweep midpoint (the classic double-sweep upper bound).
func DiameterBounds(g *graph.Graph, sweeps int, seed int64) (lower, upper int32) {
	n := g.NumNodes()
	if n == 0 {
		return 0, 0
	}
	if sweeps < 1 {
		sweeps = 4
	}
	rng := rand.New(rand.NewSource(seed))
	dist := make([]int32, n)
	q := queue.NewFIFO(n)
	upper = int32(1 << 30)
	for s := 0; s < sweeps; s++ {
		start := graph.NodeID(rng.Intn(n))
		bfs.Distances(g, start, dist, q)
		far := argmax(dist)
		bfs.Distances(g, far, dist, q)
		ecc := bfs.Eccentricity(dist)
		if ecc > lower {
			lower = ecc
		}
		// Midpoint of the found path: a node at ecc/2 from far.
		mid := graph.NodeID(-1)
		for v := 0; v < n; v++ {
			if dist[v] == ecc/2 {
				mid = graph.NodeID(v)
				break
			}
		}
		if mid >= 0 {
			bfs.Distances(g, mid, dist, q)
			if u := 2 * bfs.Eccentricity(dist); u < upper {
				upper = u
			}
		}
	}
	if upper < lower {
		upper = lower
	}
	return lower, upper
}

func argmax(dist []int32) graph.NodeID {
	best := graph.NodeID(0)
	for v := 1; v < len(dist); v++ {
		if dist[v] > dist[best] {
			best = graph.NodeID(v)
		}
	}
	return best
}

// EffectiveDiameter estimates the 90th-percentile pairwise distance from
// `samples` random BFS sources.
func EffectiveDiameter(g *graph.Graph, samples int, seed int64) float64 {
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	if samples < 1 {
		samples = 16
	}
	if samples > n {
		samples = n
	}
	rng := rand.New(rand.NewSource(seed))
	dist := make([]int32, n)
	q := queue.NewFIFO(n)
	var all []int32
	for s := 0; s < samples; s++ {
		bfs.Distances(g, graph.NodeID(rng.Intn(n)), dist, q)
		for _, d := range dist {
			if d > 0 {
				all = append(all, d)
			}
		}
	}
	if len(all) == 0 {
		return 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return float64(all[int(float64(len(all)-1)*0.9)])
}

// Summary bundles the statistics cmd/graphinfo reports.
type Summary struct {
	Nodes, Edges     int
	MinDeg, MaxDeg   int
	MeanDeg          float64
	Deg1Frac         float64 // fraction of degree-1 nodes
	Deg2Frac         float64 // fraction of degree-2 nodes
	GlobalClustering float64
	AvgLocalClust    float64
	DiameterLower    int32
	DiameterUpper    int32
	EffectiveDiam    float64
}

// Summarize computes a Summary for a connected graph.
func Summarize(g *graph.Graph, seed int64) Summary {
	ds := graph.Degrees(g)
	gc, lc := ClusteringCoefficient(g)
	lo, hi := DiameterBounds(g, 4, seed)
	n := g.NumNodes()
	s := Summary{
		Nodes: n, Edges: g.NumEdges(),
		MinDeg: ds.Min, MaxDeg: ds.Max, MeanDeg: ds.Mean,
		GlobalClustering: gc, AvgLocalClust: lc,
		DiameterLower: lo, DiameterUpper: hi,
		EffectiveDiam: EffectiveDiameter(g, 16, seed),
	}
	if n > 0 {
		s.Deg1Frac = float64(ds.CountDeg1) / float64(n)
		s.Deg2Frac = float64(ds.CountDeg2) / float64(n)
	}
	return s
}
