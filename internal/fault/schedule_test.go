package fault

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPlanAfterAndCount(t *testing.T) {
	errBoom := errors.New("boom")
	p := &Plan{Seed: 1, Rules: []Rule{
		{Point: "x", After: 2, Count: 3, Err: errBoom},
	}}
	restore := p.Install()
	defer restore()
	ctx := context.Background()
	var fired int
	for i := 0; i < 10; i++ {
		if err := Inject(ctx, "x"); err != nil {
			if !errors.Is(err, errBoom) {
				t.Fatalf("hit %d: %v", i, err)
			}
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3 (After=2, Count=3)", fired)
	}
	if p.Fired(0) != 3 || p.Hits(0) != 10 {
		t.Fatalf("accounting: fired=%d hits=%d", p.Fired(0), p.Hits(0))
	}
}

func TestPlanProbSeededDeterministic(t *testing.T) {
	run := func() []bool {
		p := &Plan{Seed: 42, Rules: []Rule{{Point: "y", Prob: 0.5, Err: errors.New("e")}}}
		restore := p.Install()
		defer restore()
		out := make([]bool, 40)
		for i := range out {
			out[i] = Inject(context.Background(), "y") != nil
		}
		return out
	}
	a, b := run(), run()
	var any, all bool = false, true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded plan not replayable at hit %d", i)
		}
		any = any || a[i]
		all = all && a[i]
	}
	if !any || all {
		t.Fatalf("Prob=0.5 over 40 hits fired degenerately (any=%v all=%v)", any, all)
	}
}

func TestPlanCancelAndDelay(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := &Plan{Seed: 7, Rules: []Rule{
		{Point: "stage", Delay: 5 * time.Millisecond, Cancel: cancel, Count: 1},
	}}
	restore := p.Install()
	defer restore()
	start := time.Now()
	if err := Inject(ctx, "stage"); err != nil {
		t.Fatalf("delay alone should not error: %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("delay did not stall the checkpoint")
	}
	if ctx.Err() == nil {
		t.Fatal("cancel action did not run")
	}
	// Count=1: a second hit is a no-op.
	if err := Inject(ctx, "stage"); err != nil {
		t.Fatalf("exhausted rule still firing: %v", err)
	}
	if p.Fired(0) != 1 {
		t.Fatalf("fired %d, want 1", p.Fired(0))
	}
}

func TestPlanPanicRule(t *testing.T) {
	p := &Plan{Seed: 1, Rules: []Rule{{Point: "crash", Panic: "chaos"}}}
	restore := p.Install()
	defer restore()
	defer func() {
		if recover() == nil {
			t.Fatal("panic rule did not panic")
		}
	}()
	_ = Inject(context.Background(), "crash")
}

func TestPlanConcurrentHits(t *testing.T) {
	errBoom := errors.New("boom")
	p := &Plan{Seed: 3, Rules: []Rule{{Point: "par", After: 50, Count: 10, Err: errBoom}}}
	restore := p.Install()
	defer restore()
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if Inject(context.Background(), "par") != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 10 {
		t.Fatalf("fired %d, want exactly Count=10 under concurrency", fired)
	}
	if p.Hits(0) != 800 {
		t.Fatalf("hits %d, want 800", p.Hits(0))
	}
}

func TestPlanMultipleRulesSamePoint(t *testing.T) {
	e1, e2 := errors.New("first"), errors.New("second")
	p := &Plan{Seed: 1, Rules: []Rule{
		{Point: "z", Count: 1, Err: e1},
		{Point: "z", Err: e2},
	}}
	restore := p.Install()
	defer restore()
	if err := Inject(context.Background(), "z"); !errors.Is(err, e1) {
		t.Fatalf("first hit: want first rule's error, got %v", err)
	}
	if err := Inject(context.Background(), "z"); !errors.Is(err, e2) {
		t.Fatalf("second hit: want second rule's error, got %v", err)
	}
}
