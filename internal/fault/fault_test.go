package fault

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/par"
)

func TestInjectDisarmed(t *testing.T) {
	if err := Inject(context.Background(), "nope"); err != nil {
		t.Fatalf("disarmed inject: %v", err)
	}
}

func TestSetRestore(t *testing.T) {
	sentinel := errors.New("boom")
	restore := Set("p", func(context.Context) error { return sentinel })
	if err := Inject(context.Background(), "p"); !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel, got %v", err)
	}
	if err := Inject(context.Background(), "other"); err != nil {
		t.Fatalf("other point must stay clean: %v", err)
	}
	restore()
	if err := Inject(context.Background(), "p"); err != nil {
		t.Fatalf("after restore: %v", err)
	}
	if armed.Load() != 0 {
		t.Fatalf("armed count leaked: %d", armed.Load())
	}
}

func TestSetNestedRestore(t *testing.T) {
	e1, e2 := errors.New("one"), errors.New("two")
	r1 := Set("p", func(context.Context) error { return e1 })
	r2 := Set("p", func(context.Context) error { return e2 })
	if err := Inject(context.Background(), "p"); !errors.Is(err, e2) {
		t.Fatalf("want e2, got %v", err)
	}
	r2()
	if err := Inject(context.Background(), "p"); !errors.Is(err, e1) {
		t.Fatalf("want e1 after inner restore, got %v", err)
	}
	r1()
	if err := Inject(context.Background(), "p"); err != nil {
		t.Fatalf("after full restore: %v", err)
	}
	if armed.Load() != 0 {
		t.Fatalf("armed count leaked: %d", armed.Load())
	}
}

func TestClear(t *testing.T) {
	Set("a", Panic("a"))
	Set("b", Panic("b"))
	Clear()
	if armed.Load() != 0 {
		t.Fatalf("armed count after Clear: %d", armed.Load())
	}
	if err := Inject(context.Background(), "a"); err != nil {
		t.Fatalf("after Clear: %v", err)
	}
}

// TestRestoreAfterClearIsNoop: a deferred restore whose installation was
// meanwhile swept by Clear (or replaced by a later Set) must do nothing —
// the old implementation panicked writing to the nilled map, taking down
// whole chaos tests in their cleanup stack.
func TestRestoreAfterClearIsNoop(t *testing.T) {
	restore := Set("p", Panic("stale"))
	Clear()
	restore() // must not panic, must not resurrect anything
	if armed.Load() != 0 {
		t.Fatalf("armed count after restore-post-Clear: %d", armed.Load())
	}
	if err := Inject(context.Background(), "p"); err != nil {
		t.Fatalf("stale restore resurrected a hook: %v", err)
	}
	// Replacement case: the first restore is stale once a second Set owns
	// the point, so it must leave the second hook in place.
	r1 := Set("p", Panic("first"))
	errSecond := errors.New("second")
	r2 := Set("p", func(context.Context) error { return errSecond })
	r1()
	if err := Inject(context.Background(), "p"); err != errSecond {
		t.Fatalf("stale restore disturbed the live hook: %v", err)
	}
	r2()
	Clear()
}

func TestCheckpointReportsCancellation(t *testing.T) {
	if err := Checkpoint(context.Background(), "p"); err != nil {
		t.Fatalf("live ctx: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Checkpoint(ctx, "p"); !errors.Is(err, par.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestDelayInterruptible(t *testing.T) {
	restore := Set("slow", Delay(5*time.Second))
	defer restore()
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := Inject(ctx, "slow")
	if !errors.Is(err, par.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("delay not interrupted: took %v", elapsed)
	}
}

func TestSleepCompletes(t *testing.T) {
	if err := Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("uninterrupted sleep: %v", err)
	}
}

func TestPanicHook(t *testing.T) {
	restore := Set("crash", Panic("deliberate"))
	defer restore()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = Inject(context.Background(), "crash")
}
