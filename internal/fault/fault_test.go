package fault

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/par"
)

func TestInjectDisarmed(t *testing.T) {
	if err := Inject(context.Background(), "nope"); err != nil {
		t.Fatalf("disarmed inject: %v", err)
	}
}

func TestSetRestore(t *testing.T) {
	sentinel := errors.New("boom")
	restore := Set("p", func(context.Context) error { return sentinel })
	if err := Inject(context.Background(), "p"); !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel, got %v", err)
	}
	if err := Inject(context.Background(), "other"); err != nil {
		t.Fatalf("other point must stay clean: %v", err)
	}
	restore()
	if err := Inject(context.Background(), "p"); err != nil {
		t.Fatalf("after restore: %v", err)
	}
	if armed.Load() != 0 {
		t.Fatalf("armed count leaked: %d", armed.Load())
	}
}

func TestSetNestedRestore(t *testing.T) {
	e1, e2 := errors.New("one"), errors.New("two")
	r1 := Set("p", func(context.Context) error { return e1 })
	r2 := Set("p", func(context.Context) error { return e2 })
	if err := Inject(context.Background(), "p"); !errors.Is(err, e2) {
		t.Fatalf("want e2, got %v", err)
	}
	r2()
	if err := Inject(context.Background(), "p"); !errors.Is(err, e1) {
		t.Fatalf("want e1 after inner restore, got %v", err)
	}
	r1()
	if err := Inject(context.Background(), "p"); err != nil {
		t.Fatalf("after full restore: %v", err)
	}
	if armed.Load() != 0 {
		t.Fatalf("armed count leaked: %d", armed.Load())
	}
}

func TestClear(t *testing.T) {
	Set("a", Panic("a"))
	Set("b", Panic("b"))
	Clear()
	if armed.Load() != 0 {
		t.Fatalf("armed count after Clear: %d", armed.Load())
	}
	if err := Inject(context.Background(), "a"); err != nil {
		t.Fatalf("after Clear: %v", err)
	}
}

func TestCheckpointReportsCancellation(t *testing.T) {
	if err := Checkpoint(context.Background(), "p"); err != nil {
		t.Fatalf("live ctx: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Checkpoint(ctx, "p"); !errors.Is(err, par.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestDelayInterruptible(t *testing.T) {
	restore := Set("slow", Delay(5 * time.Second))
	defer restore()
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := Inject(ctx, "slow")
	if !errors.Is(err, par.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("delay not interrupted: took %v", elapsed)
	}
}

func TestSleepCompletes(t *testing.T) {
	if err := Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("uninterrupted sleep: %v", err)
	}
}

func TestPanicHook(t *testing.T) {
	restore := Set("crash", Panic("deliberate"))
	defer restore()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = Inject(context.Background(), "crash")
}
