package fault

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Rule is one declarative fault of a chaos Plan: at checkpoint Point, after
// skipping the first After hits, fire with probability Prob (1 when zero) at
// most Count times (unbounded when zero). What "fire" means is the union of
// the action fields — sleep Delay, run Cancel, return Err, panic with Panic —
// applied in that order, so a rule can both stall a stage and then kill it.
type Rule struct {
	// Point names the checkpoint this rule arms (see the package comment for
	// the registry of points across the stack).
	Point string
	// After skips this many hits of the checkpoint before the rule becomes
	// eligible — "fail the third traversal", not just "fail a traversal".
	After int
	// Count caps how many times the rule fires; 0 means every eligible hit.
	Count int
	// Prob fires the rule on each eligible hit with this probability, drawn
	// from the plan's seeded generator; 0 means always (deterministic rules
	// shouldn't have to say Prob: 1).
	Prob float64
	// Delay stalls the checkpoint, waking early if the run's context dies.
	Delay time.Duration
	// Cancel runs when the rule fires — typically a context.CancelFunc,
	// simulating a client abandoning the run at exactly this stage.
	Cancel func()
	// Err aborts the stage with this error.
	Err error
	// Panic, when non-empty, crashes the stage (after the other actions),
	// exercising recovery paths.
	Panic string
}

// Plan is a seeded, declarative fault schedule: a set of Rules armed
// together, sharing one deterministic random source, with per-rule hit and
// fire accounting. The same Plan (same Seed, same Rules, same execution
// interleaving of hits per point) fires the same faults, which is what makes
// a chaos scenario replayable.
type Plan struct {
	Seed  int64
	Rules []Rule

	mu    sync.Mutex
	rng   *rand.Rand
	hits  []int
	fired []int
}

// Install arms every rule and returns a restore function detaching them;
// tests defer the restore. Rules for the same point are evaluated in order
// on each hit, all eligible ones fire, and the first non-nil error (or
// panic) wins.
func (p *Plan) Install() (restore func()) {
	p.mu.Lock()
	p.rng = rand.New(rand.NewSource(p.Seed))
	p.hits = make([]int, len(p.Rules))
	p.fired = make([]int, len(p.Rules))
	p.mu.Unlock()

	byPoint := make(map[string][]int)
	for i, r := range p.Rules {
		byPoint[r.Point] = append(byPoint[r.Point], i)
	}
	restores := make([]func(), 0, len(byPoint))
	for point, idxs := range byPoint {
		idxs := idxs
		restores = append(restores, Set(point, func(ctx context.Context) error {
			return p.hit(ctx, idxs)
		}))
	}
	return func() {
		for _, r := range restores {
			r()
		}
	}
}

// hit evaluates the point's rules for one checkpoint execution. Accounting
// runs under the plan mutex (checkpoints race across workers); the actions
// themselves run outside it so a Delay doesn't serialise the fan-out.
func (p *Plan) hit(ctx context.Context, idxs []int) error {
	var firing []int
	p.mu.Lock()
	for _, i := range idxs {
		r := &p.Rules[i]
		h := p.hits[i]
		p.hits[i]++
		if h < r.After {
			continue
		}
		if r.Count > 0 && p.fired[i] >= r.Count {
			continue
		}
		if r.Prob > 0 && p.rng.Float64() >= r.Prob {
			continue
		}
		p.fired[i]++
		firing = append(firing, i)
	}
	p.mu.Unlock()

	var firstErr error
	for _, i := range firing {
		r := &p.Rules[i]
		if r.Delay > 0 {
			if err := Sleep(ctx, r.Delay); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if r.Cancel != nil {
			r.Cancel()
		}
		if r.Err != nil && firstErr == nil {
			firstErr = r.Err
		}
		if r.Panic != "" {
			panic("fault: " + r.Panic)
		}
	}
	return firstErr
}

// Fired reports how many times rule i has fired so far.
func (p *Plan) Fired(i int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fired == nil || i < 0 || i >= len(p.fired) {
		return 0
	}
	return p.fired[i]
}

// Hits reports how many times rule i's checkpoint has been hit so far
// (whether or not the rule fired).
func (p *Plan) Hits(i int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.hits == nil || i < 0 || i >= len(p.hits) {
		return 0
	}
	return p.hits[i]
}
