// Package fault is a tiny test-only fault-injection registry that makes the
// estimation stack's failure paths deterministically testable: tests install
// a hook at a named point (delay, panic, or arbitrary code) and the
// production code calls Checkpoint at its cancellation checkpoints, which
// doubles as the injection site. When no hook is armed — the production
// steady state — Inject is a single atomic load.
//
// Point names in use across the stack (grep for fault.Checkpoint /
// fault.Inject to enumerate):
//
//	reduce.twins, reduce.chains, reduce.redundant, reduce.round
//	core.reduce, core.decompose, core.traverse, core.aggregate
//	server.estimate, server.handle
package fault

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/par"
)

// Hook runs at an injection point with the run's context. A non-nil return
// aborts the run with that error; panicking exercises the crash paths.
type Hook func(ctx context.Context) error

// entry wraps a hook so each Set installation has a unique identity: the
// returned restore only undoes its own installation, and becomes a no-op if
// the point was meanwhile replaced or swept by Clear.
type entry struct{ h Hook }

var (
	armed atomic.Int64 // number of installed hooks; 0 = fast path
	mu    sync.RWMutex
	hooks map[string]*entry
)

// Set installs a hook at the named point, replacing any previous one, and
// returns a function restoring the previous state. Tests should defer the
// restore; hooks must not be left armed across tests.
func Set(point string, h Hook) (restore func()) {
	mu.Lock()
	defer mu.Unlock()
	if hooks == nil {
		hooks = make(map[string]*entry)
	}
	prev, had := hooks[point]
	if !had {
		armed.Add(1)
	}
	e := &entry{h}
	hooks[point] = e
	return func() {
		mu.Lock()
		defer mu.Unlock()
		if hooks[point] != e {
			return // replaced or Cleared since; nothing of ours to undo
		}
		if had {
			hooks[point] = prev
			return
		}
		delete(hooks, point)
		armed.Add(-1)
	}
}

// Clear removes every installed hook.
func Clear() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int64(len(hooks)))
	hooks = nil
}

// Inject runs the hook installed at point, if any. The disarmed fast path is
// one atomic load, cheap enough for per-stage production checkpoints.
func Inject(ctx context.Context, point string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.RLock()
	e := hooks[point]
	mu.RUnlock()
	if e == nil || e.h == nil {
		return nil
	}
	return e.h(ctx)
}

// Checkpoint is the stack's cooperative cancellation checkpoint: it fires
// any injected fault at the named point, then reports the context's state as
// a par.ErrCanceled-wrapping error. Stage drivers call it between stages.
func Checkpoint(ctx context.Context, point string) error {
	if err := Inject(ctx, point); err != nil {
		return err
	}
	return par.CtxErr(ctx)
}

// Sleep blocks for d or until ctx is done, whichever comes first, returning
// par.CtxErr(ctx) — the building block of Delay and of custom slow-stage
// hooks.
func Sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return par.CtxErr(ctx)
	}
}

// Delay returns a hook that simulates a slow stage: it sleeps for d but
// wakes immediately when the run's context is canceled, so cancellation
// latency tests measure the checkpoint plumbing, not the timer.
func Delay(d time.Duration) Hook {
	return func(ctx context.Context) error { return Sleep(ctx, d) }
}

// Panic returns a hook that crashes the run, for exercising panic-recovery
// paths.
func Panic(msg string) Hook {
	return func(context.Context) error { panic("fault: " + msg) }
}
