// Package queue provides the two work-queues the traversal kernels need: a
// plain FIFO of node ids for BFS, and a monotone bucket queue (Dial's
// structure) for single-source shortest paths on small-integer-weighted
// graphs, which is what the chain-contracted reduced graph is.
package queue

// FIFO is an allocation-friendly queue of int32 values. The zero value is
// ready to use; Reset allows reuse across traversals without reallocating.
type FIFO struct {
	buf  []int32
	head int
}

// NewFIFO returns a FIFO with capacity pre-allocated for n pushes.
func NewFIFO(n int) *FIFO { return &FIFO{buf: make([]int32, 0, n)} }

// Push appends v.
func (q *FIFO) Push(v int32) { q.buf = append(q.buf, v) }

// Pop removes and returns the oldest element. It must not be called on an
// empty queue.
func (q *FIFO) Pop() int32 {
	v := q.buf[q.head]
	q.head++
	return v
}

// Empty reports whether the queue has no pending elements.
func (q *FIFO) Empty() bool { return q.head == len(q.buf) }

// Len returns the number of pending elements.
func (q *FIFO) Len() int { return len(q.buf) - q.head }

// Reset empties the queue, retaining capacity.
func (q *FIFO) Reset() {
	q.buf = q.buf[:0]
	q.head = 0
}

// Bucket is a monotone bucket priority queue for Dial's algorithm. Keys are
// non-negative distances; the structure exploits that in SSSP with maximum
// edge weight C, all keys in flight lie within a window of width C+1, so a
// ring of C+1 buckets suffices.
type Bucket struct {
	buckets [][]int32
	cur     int // current distance being drained
	size    int // number of pending entries
}

// NewBucket returns a bucket queue for edge weights up to maxWeight.
func NewBucket(maxWeight int32) *Bucket {
	if maxWeight < 1 {
		maxWeight = 1
	}
	return &Bucket{buckets: make([][]int32, int(maxWeight)+1)}
}

// Push inserts node v with distance key d. d must be >= the key of the last
// popped element (monotonicity of Dijkstra/Dial) and within cur+maxWeight.
func (q *Bucket) Push(v int32, d int32) {
	idx := int(d) % len(q.buckets)
	q.buckets[idx] = append(q.buckets[idx], v)
	q.size++
}

// Pop removes and returns a node with the minimum pending distance key,
// along with that key. It must not be called when Empty.
func (q *Bucket) Pop() (v int32, d int32) {
	for {
		idx := q.cur % len(q.buckets)
		b := q.buckets[idx]
		if len(b) > 0 {
			v = b[len(b)-1]
			q.buckets[idx] = b[:len(b)-1]
			q.size--
			return v, int32(q.cur)
		}
		q.cur++
	}
}

// Empty reports whether no entries are pending.
func (q *Bucket) Empty() bool { return q.size == 0 }

// Reset prepares the queue for a fresh traversal, retaining bucket storage.
func (q *Bucket) Reset() {
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
	}
	q.cur = 0
	q.size = 0
}
