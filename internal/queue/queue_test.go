package queue

import (
	"container/heap"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	q := NewFIFO(4)
	for i := int32(0); i < 10; i++ {
		q.Push(i)
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d, want 10", q.Len())
	}
	for i := int32(0); i < 10; i++ {
		if got := q.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	if !q.Empty() {
		t.Fatal("queue should be empty")
	}
	q.Reset()
	q.Push(7)
	if q.Pop() != 7 || !q.Empty() {
		t.Fatal("Reset/reuse broken")
	}
}

func TestBucketBasic(t *testing.T) {
	q := NewBucket(3)
	q.Push(10, 0)
	q.Push(11, 2)
	q.Push(12, 1)
	v, d := q.Pop()
	if v != 10 || d != 0 {
		t.Fatalf("Pop = %d,%d want 10,0", v, d)
	}
	v, d = q.Pop()
	if v != 12 || d != 1 {
		t.Fatalf("Pop = %d,%d want 12,1", v, d)
	}
	v, d = q.Pop()
	if v != 11 || d != 2 {
		t.Fatalf("Pop = %d,%d want 11,2", v, d)
	}
	if !q.Empty() {
		t.Fatal("should be empty")
	}
}

func TestBucketRingWrap(t *testing.T) {
	// Keys span many multiples of the ring size; the monotone window
	// invariant (pending keys within [cur, cur+C]) must still hold.
	q := NewBucket(2)
	q.Push(1, 0)
	cur := int32(0)
	for step := 0; step < 50; step++ {
		v, d := q.Pop()
		if d < cur {
			t.Fatalf("non-monotone pop: %d after %d", d, cur)
		}
		cur = d
		if step < 49 {
			q.Push(v, d+2) // always within window
		}
	}
	if !q.Empty() {
		t.Fatal("should be empty")
	}
}

// model heap for the property test
type pair struct{ v, d int32 }
type pairHeap []pair

func (h pairHeap) Len() int            { return len(h) }
func (h pairHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(pair)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Property: under the Dial usage pattern (monotone pushes within the weight
// window), Bucket pops keys in the same order a binary heap would.
func TestBucketMatchesHeap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		maxW := int32(rng.Intn(5) + 1)
		q := NewBucket(maxW)
		var h pairHeap
		heap.Init(&h)
		q.Push(0, 0)
		heap.Push(&h, pair{0, 0})
		pending := 1
		var lastPopped int32
		for step := 0; step < 300 && pending > 0; step++ {
			_, d := q.Pop()
			hp := heap.Pop(&h).(pair)
			if d != hp.d {
				return false // key order mismatch (ids may tie-break differently)
			}
			if d < lastPopped {
				return false
			}
			lastPopped = d
			pending--
			// push 0..2 new entries within the legal window
			for k := rng.Intn(3); k > 0 && pending < 40; k-- {
				nd := d + int32(rng.Intn(int(maxW))+1)
				nv := int32(rng.Intn(1000))
				q.Push(nv, nd)
				heap.Push(&h, pair{nv, nd})
				pending++
			}
		}
		return q.Empty() == (h.Len() == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketReset(t *testing.T) {
	q := NewBucket(2)
	q.Push(1, 0)
	q.Push(2, 1)
	q.Pop()
	q.Reset()
	if !q.Empty() {
		t.Fatal("Reset should empty queue")
	}
	q.Push(5, 0)
	v, d := q.Pop()
	if v != 5 || d != 0 {
		t.Fatalf("after Reset: Pop = %d,%d want 5,0", v, d)
	}
}
