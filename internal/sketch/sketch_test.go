package sketch

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/bfs"
	"repro/internal/gen"
	"repro/internal/graph"
)

// families builds one small connected graph per generator family.
func families(n int) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"web":       graph.Connect(gen.Web(n, 11)),
		"social":    graph.Connect(gen.Social(n, 22)),
		"community": graph.Connect(gen.Community(n, 33)),
		"road":      graph.Connect(gen.Road(n, 44)),
	}
}

// Property: the sketch's bounds bracket the true distance for random pairs
// on every generator family, and lower == upper implies equality.
func TestBoundsBracketExact(t *testing.T) {
	for name, g := range families(1500) {
		t.Run(name, func(t *testing.T) {
			n := g.NumNodes()
			sk := Build(g, Options{Clusters: 8, Workers: 4})
			rng := rand.New(rand.NewSource(7))
			dist := make([]int32, n)
			for trial := 0; trial < 40; trial++ {
				u := graph.NodeID(rng.Intn(n))
				bfs.Distances(g, u, dist, nil)
				for pair := 0; pair < 10; pair++ {
					v := graph.NodeID(rng.Intn(n))
					lo, hi, ok := sk.Bounds(u, v)
					if !ok {
						t.Fatalf("Bounds(%d,%d): no bound on a connected graph", u, v)
					}
					exact := dist[v]
					if lo > exact || exact > hi {
						t.Fatalf("Bounds(%d,%d) = [%d,%d], exact %d outside", u, v, lo, hi, exact)
					}
					if lo == hi && hi != exact {
						t.Fatalf("Bounds(%d,%d) claimed exact %d, want %d", u, v, hi, exact)
					}
				}
			}
		})
	}
}

// Property: the build is bit-identical at every worker count.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	for name, g := range families(1200) {
		t.Run(name, func(t *testing.T) {
			base := Build(g, Options{Clusters: 8, Workers: 1})
			for _, w := range []int{2, 4, 8} {
				sk := Build(g, Options{Clusters: 8, Workers: w})
				if sk.k != base.k || sk.r != base.r {
					t.Fatalf("workers=%d: shape (k=%d,r=%d) != (k=%d,r=%d)", w, sk.k, sk.r, base.k, base.r)
				}
				for i := range base.dist {
					if sk.dist[i] != base.dist[i] {
						t.Fatalf("workers=%d: dist[%d] = %d, want %d", w, i, sk.dist[i], base.dist[i])
					}
				}
				for i := range base.masks {
					if sk.masks[i] != base.masks[i] {
						t.Fatalf("workers=%d: masks[%d] = %#x, want %#x", w, i, sk.masks[i], base.masks[i])
					}
				}
			}
		})
	}
}

// Farness lower bounds must never exceed the exact farness.
func TestFarnessLowerBounds(t *testing.T) {
	for name, g := range families(800) {
		t.Run(name, func(t *testing.T) {
			sk := Build(g, Options{Clusters: 8, Workers: 4})
			lb := sk.FarnessLowerBounds(4)
			far := bfs.ExactFarness(g, 4)
			nonzero := 0
			for v := range lb {
				if float64(lb[v]) > far[v] {
					t.Fatalf("lb[%d] = %d exceeds exact farness %v", v, lb[v], far[v])
				}
				if lb[v] > 0 {
					nonzero++
				}
			}
			if nonzero == 0 {
				t.Fatalf("all lower bounds are zero; the filter can never fire")
			}
		})
	}
}

// Query answers exactly regardless of which path (sketch or BFS fallback)
// served it, at every tolerance.
func TestQueryEscapeHatch(t *testing.T) {
	g := graph.Connect(gen.Social(1000, 5))
	n := g.NumNodes()
	sk := Build(g, Options{Clusters: 8})
	rng := rand.New(rand.NewSource(9))
	dist := make([]int32, n)
	sketchHits := 0
	for trial := 0; trial < 200; trial++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		bfs.Distances(g, u, dist, nil)
		d, fromSketch, err := sk.Query(context.Background(), g, u, v, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d != dist[v] {
			t.Fatalf("Query(%d,%d,tol=0) = %d, want %d (fromSketch=%v)", u, v, d, dist[v], fromSketch)
		}
		if fromSketch {
			sketchHits++
		}
		// At a loose tolerance the answer may be approximate but stays a
		// bounded overestimate.
		d2, _, err := sk.Query(context.Background(), g, u, v, 2)
		if err != nil {
			t.Fatal(err)
		}
		if d2 < dist[v] || d2 > dist[v]+2 {
			t.Fatalf("Query(%d,%d,tol=2) = %d, want within [%d,%d]", u, v, d2, dist[v], dist[v]+2)
		}
	}
	if sketchHits == 0 {
		t.Fatal("tol=0 never answered from the sketch; exactness detection is broken")
	}
}

// Degenerate inputs: empty and single-node graphs, and a pair split across
// components (no common seed → ok=false).
func TestDegenerateGraphs(t *testing.T) {
	empty := graph.FromEdges(0, nil)
	sk := Build(empty, Options{})
	if sk.Clusters() != 0 || sk.Bytes() != 0 {
		t.Fatalf("empty graph: got %v", sk)
	}
	one := graph.FromEdges(1, nil)
	sk = Build(one, Options{})
	if lo, hi, ok := sk.Bounds(0, 0); !ok || lo != 0 || hi != 0 {
		t.Fatalf("single node self-pair: [%d,%d] ok=%v", lo, hi, ok)
	}
	// Two components: {0,1} and {2,3}. With clusters covering both sides, a
	// cross-component pair has no common seed.
	two := graph.FromEdges(4, [][2]int32{{0, 1}, {2, 3}})
	sk = Build(two, Options{Clusters: 4})
	if _, _, ok := sk.Bounds(0, 2); ok {
		t.Fatal("cross-component pair reported a bound")
	}
	if d, _, ok := sk.Distance(0, 2); ok || d != -1 {
		t.Fatalf("cross-component Distance = %d ok=%v, want -1 false", d, ok)
	}
	if d, fromSketch, err := sk.Query(context.Background(), two, 0, 2, 0); err != nil || fromSketch || d != -1 {
		t.Fatalf("cross-component Query = %d fromSketch=%v err=%v", d, fromSketch, err)
	}
}

// A canceled build returns an error, not a partial sketch.
func TestBuildCanceled(t *testing.T) {
	g := graph.Connect(gen.Web(2000, 3))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sk, err := BuildContext(ctx, g, Options{Clusters: 8})
	if err == nil || sk != nil {
		t.Fatalf("pre-canceled build: sketch=%v err=%v", sk, err)
	}
}

func TestStringAndAccessors(t *testing.T) {
	g := graph.Connect(gen.Community(500, 1))
	sk := Build(g, Options{Clusters: 4, Radius: 2})
	if sk.Radius() != 2 || sk.Clusters() != 4 || sk.Seeds() == 0 || sk.Bytes() == 0 {
		t.Fatalf("accessors: %v", sk)
	}
	if !bytes.Contains([]byte(sk.String()), []byte("r=2")) {
		t.Fatalf("String: %s", sk)
	}
}
