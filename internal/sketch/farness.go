package sketch

import (
	"repro/internal/graph"
	"repro/internal/par"
)

// FarnessLowerBounds returns, for every vertex v, a proven lower bound on
// its farness Σ_u d(v, u): for any landmark s the triangle inequality gives
// d(v, u) ≥ |d(v, s) − d(u, s)|, so
//
//	far(v) ≥ max_s Σ_u |d(v, s) − d(u, s)|
//
// taking the cluster centers as landmarks. The inner sum is evaluated in
// O(1) per (vertex, center) from each center's distance histogram: with
// cnt≤(a) vertices at distance ≤ a and sum≤(a) their distance total,
// Σ_u |a − d(u, s)| = a·cnt≤(a) − sum≤(a) + (sumTot − sum≤(a)) − a·(reached − cnt≤(a)).
// Vertices unreachable from a center are excluded from that center's sum —
// farness in this repo sums within the component, so the bound stays valid
// on the component the center lives in and centers outside v's component
// contribute nothing.
//
// topk uses these bounds as a candidate filter: once k exact values are
// known, any candidate whose lower bound already meets the k-th best farness
// provably cannot improve the answer and its verification BFS is skipped.
// Total cost is O(k·(n + maxDist)) — about one BFS worth of work for the
// whole array. Deterministic at every worker count.
func (s *Sketch) FarnessLowerBounds(workers int) []int64 {
	workers = par.Workers(workers)
	lb := make([]int64, s.n)
	if s.k == 0 || s.n == 0 {
		return lb
	}
	// Decode the exact center distances once: centers are lane 0 of their
	// cluster, so d(v, center_c) = dist[v][c] + j for the offset j whose mask
	// carries bit 0.
	cd := make([]int32, s.n*s.k)
	par.ForBlocks(s.n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			for c := 0; c < s.k; c++ {
				cd[v*s.k+c] = s.seedDistance(graph.NodeID(v), c, 0)
			}
		}
	})
	for c := 0; c < s.k; c++ {
		// Histogram of d(·, center_c) over reached vertices, then prefix
		// counts and sums by distance value.
		maxD := int32(0)
		for v := 0; v < s.n; v++ {
			if d := cd[v*s.k+c]; d > maxD {
				maxD = d
			}
		}
		cnt := make([]int64, maxD+2)
		for v := 0; v < s.n; v++ {
			if d := cd[v*s.k+c]; d != Unreached {
				cnt[d]++
			}
		}
		cntLE := make([]int64, maxD+2) // vertices at distance ≤ a
		sumLE := make([]int64, maxD+2) // their distance total
		var runC, runS int64
		for a := int32(0); a <= maxD; a++ {
			runC += cnt[a]
			runS += int64(a) * cnt[a]
			cntLE[a] = runC
			sumLE[a] = runS
		}
		reached, sumTot := runC, runS
		par.ForBlocks(s.n, workers, func(_, lo, hi int) {
			for v := lo; v < hi; v++ {
				a := cd[v*s.k+c]
				if a == Unreached {
					continue
				}
				aa := int64(a)
				bound := aa*cntLE[a] - sumLE[a] + (sumTot - sumLE[a]) - aa*(reached-cntLE[a])
				if bound > lb[v] {
					lb[v] = bound
				}
			}
		})
	}
	return lb
}
