// Package sketch implements cluster-BFS distance sketches: a compact
// per-vertex index that answers point-to-point distance queries with proven
// lower/upper bounds in O(k) time — no traversal — after a one-time build of
// k multi-source sweeps.
//
// The construction follows Wang, Blelloch, Gu and Sun's Parallel Cluster-BFS
// (see PAPERS.md): a *cluster* is a set of up to 64 nearby seed vertices (a
// high-degree center plus neighbours within radius r), and one pass of the
// repo's 64-lane bit-parallel engine (internal/bfs MultiSourceMasksInto)
// computes the distances from all of a cluster's seeds to every vertex
// simultaneously. Because the seeds lie within distance 2r of each other,
// the ≤64 distances from one cluster to a vertex v span the window
// [d, d+2r] where d = dist(v, cluster); the sketch therefore stores, per
// (vertex, cluster), one base distance plus 2r+1 lane bitmasks — which seeds
// sit at offset 0, 1, …, 2r — instead of 64 separate values.
//
// A query Bounds(u, v) scans the two vertices' cluster rows: every seed s
// reachable from both sides yields d(u,s)+d(s,v) as an upper bound and
// |d(u,s)−d(s,v)| as a lower bound (triangle inequality), and the bitmask
// intersection finds the best such seed per cluster in (2r+1)² word
// operations rather than 64 comparisons. Both bounds are proven, so callers
// that need exactness can detect lower == upper; Query falls back to an
// exact bidirectional BFS when the gap exceeds their tolerance.
package sketch

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/bfs"
	"repro/internal/graph"
	"repro/internal/par"
)

// Unreached marks a (vertex, cluster) pair with no path, mirroring
// bfs.Unreached.
const Unreached = bfs.Unreached

// Options configures Build. The zero value selects the defaults.
type Options struct {
	// Clusters is the number of seed clusters k (default 16). Each cluster
	// contributes up to 64 landmark seeds and costs one 64-lane sweep to
	// build plus ~(4 + 8·(2·Radius+1)) bytes per vertex to store.
	Clusters int
	// Radius is the cluster growth radius r (default 1): seeds are the
	// center plus BFS-order neighbours within r hops, capped at 64.
	Radius int
	// Workers bounds the build parallelism (<1 = GOMAXPROCS). The sketch is
	// bit-identical at every worker count: clusters write disjoint stripes.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Clusters <= 0 {
		o.Clusters = 16
	}
	if o.Radius <= 0 {
		o.Radius = 1
	}
	return o
}

// Sketch is the built index. It is immutable after Build and safe for
// concurrent queries.
type Sketch struct {
	n, k, r int
	nm      int // masks per (vertex, cluster): 2r+1 distance offsets

	// dist[v*k + c] is the minimum distance from v to any seed of cluster c
	// (Unreached when no seed is reachable). masks[(v*k+c)*nm + j] holds the
	// lanes of cluster c's seeds at distance dist[v*k+c]+j from v. Rows of
	// one vertex are contiguous, so a query streams 2·k cache lines.
	dist  []int32
	masks []uint64

	centers []graph.NodeID
	seeds   [][]graph.NodeID // per cluster, lane order; seeds[c][0] == centers[c]
}

// Build constructs a sketch over g. Centers are chosen by descending degree
// (ties by id), skipping vertices already absorbed into an earlier cluster,
// so the clusters tile the high-degree core of the graph. Deterministic for
// every worker count.
func Build(g *graph.Graph, opts Options) *Sketch {
	s, _ := BuildContext(context.Background(), g, opts)
	return s
}

// BuildContext is Build with cooperative cancellation, polled between
// cluster sweeps and inside each sweep at frontier-level granularity. A
// canceled build returns a nil sketch and a par.ErrCanceled-wrapping error.
func BuildContext(ctx context.Context, g *graph.Graph, opts Options) (*Sketch, error) {
	opts = opts.withDefaults()
	n := g.NumNodes()
	workers := par.Workers(opts.Workers)
	s := &Sketch{n: n, r: opts.Radius, nm: 2*opts.Radius + 1}
	s.selectClusters(g, opts.Clusters)
	s.k = len(s.seeds)
	if n == 0 || s.k == 0 {
		return s, par.CtxErr(ctx)
	}

	s.dist = make([]int32, n*s.k)
	s.masks = make([]uint64, n*s.k*s.nm)
	par.ForBlocks(len(s.dist), workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			s.dist[i] = Unreached
		}
	})

	// One 64-lane sweep per cluster, fanned out across the pool. Cluster c
	// writes only the c-th stripe of dist/masks, so the parallel build is
	// race-free and bit-identical to a sequential one.
	k, nm := s.k, s.nm
	done := ctx.Done()
	scratch := make([]*bfs.MSScratch, min(workers, k))
	for i := range scratch {
		scratch[i] = bfs.NewMSScratch(n, 1)
		scratch[i].SetDone(done)
	}
	err := par.ForDynamicCtx(ctx, k, workers, 1, func(worker, c int) {
		dist, masks := s.dist, s.masks
		bfs.MultiSourceMasksInto(g, s.seeds[c], scratch[worker], func(v graph.NodeID, mask uint64, d int32) {
			base := int(v)*k + c
			if dist[base] == Unreached {
				dist[base] = d // visits arrive in increasing d: first is the minimum
			}
			if j := int(d - dist[base]); j < nm {
				masks[base*nm+j] |= mask
			}
			// j ≥ nm cannot happen for seeds within radius r of one center
			// (pairwise distance ≤ 2r bounds the offset window); the guard
			// keeps the bounds proven even if a caller hands Build a
			// malformed seed set.
		})
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// selectClusters picks centers by descending degree with ascending-id
// tie-breaks and grows each cluster by a radius-r BFS, claiming up to 64
// unclaimed seeds per cluster (center first, then neighbours in visit
// order). Claimed vertices are skipped as later centers and seeds, so the k
// clusters spread across the graph instead of piling onto one hub.
func (s *Sketch) selectClusters(g *graph.Graph, k int) {
	n := g.NumNodes()
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	claimed := make([]bool, n)
	var frontier, next []graph.NodeID
	for _, center := range order {
		if len(s.seeds) == k {
			break
		}
		if claimed[center] {
			continue
		}
		seeds := []graph.NodeID{center}
		claimed[center] = true
		frontier = append(frontier[:0], center)
		for hop := 0; hop < s.r && len(seeds) < bfs.MSBFSWidth; hop++ {
			next = next[:0]
			for _, u := range frontier {
				for _, w := range g.Neighbors(u) {
					if claimed[w] {
						continue
					}
					claimed[w] = true
					next = append(next, w)
					if seeds = append(seeds, w); len(seeds) == bfs.MSBFSWidth {
						break
					}
				}
				if len(seeds) == bfs.MSBFSWidth {
					break
				}
			}
			frontier, next = next, frontier
		}
		s.centers = append(s.centers, center)
		s.seeds = append(s.seeds, seeds)
	}
}

// Clusters returns the number of clusters actually built (≤ Options.Clusters
// on tiny graphs).
func (s *Sketch) Clusters() int { return s.k }

// Radius returns the cluster growth radius.
func (s *Sketch) Radius() int { return s.r }

// Seeds returns the total number of landmark seeds across all clusters.
func (s *Sketch) Seeds() int {
	total := 0
	for _, m := range s.seeds {
		total += len(m)
	}
	return total
}

// Bytes reports the memory footprint of the index arrays.
func (s *Sketch) Bytes() int64 {
	return int64(len(s.dist))*4 + int64(len(s.masks))*8
}

// Bounds returns proven bounds lower ≤ d(u, v) ≤ upper from the sketch
// alone, in O(k·(2r+1)²) word operations. ok is false when no seed reaches
// both endpoints (different components, or an empty sketch) — upper is then
// meaningless and the caller must fall back to an exact traversal. When ok,
// both bounds hold with certainty; lower == upper proves the distance.
func (s *Sketch) Bounds(u, v graph.NodeID) (lower, upper int32, ok bool) {
	if u == v {
		return 0, 0, true
	}
	k, nm := s.k, s.nm
	lower, upper = 1, math.MaxInt32
	ub, vb := int(u)*k, int(v)*k
	for c := 0; c < k; c++ {
		du, dv := s.dist[ub+c], s.dist[vb+c]
		if du == Unreached || dv == Unreached {
			continue
		}
		mu := s.masks[(ub+c)*nm : (ub+c+1)*nm]
		mv := s.masks[(vb+c)*nm : (vb+c+1)*nm]
		for j1 := 0; j1 < nm; j1++ {
			if mu[j1] == 0 {
				continue
			}
			for j2 := 0; j2 < nm; j2++ {
				if mu[j1]&mv[j2] == 0 {
					continue
				}
				// A seed at distance du+j1 from u and dv+j2 from v: the
				// triangle inequality brackets d(u,v) by the sum and the
				// absolute difference.
				a, b := du+int32(j1), dv+int32(j2)
				if sum := a + b; sum < upper {
					upper = sum
				}
				diff := a - b
				if diff < 0 {
					diff = -diff
				}
				if diff > lower {
					lower = diff
				}
			}
		}
	}
	if upper == math.MaxInt32 {
		return 0, -1, false
	}
	return lower, upper, true
}

// Distance returns the sketch's distance estimate for (u, v): the proven
// upper bound, with exact reporting whether the bounds met (the estimate is
// then the true distance). ok is false when the sketch cannot bound the pair
// at all (see Bounds).
func (s *Sketch) Distance(u, v graph.NodeID) (d int32, exact, ok bool) {
	lo, hi, ok := s.Bounds(u, v)
	if !ok {
		return -1, false, false
	}
	return hi, lo == hi, true
}

// Query is the escape-hatch form: it answers from the sketch when the bound
// gap upper−lower is within tol, and falls back to an exact bidirectional
// BFS on g otherwise (or when the sketch cannot bound the pair). fromSketch
// reports which path answered. tol = 0 means only proven-exact sketch
// answers are returned without traversal. g must be the graph the sketch was
// built from.
func (s *Sketch) Query(ctx context.Context, g *graph.Graph, u, v graph.NodeID, tol int32) (d int32, fromSketch bool, err error) {
	lo, hi, ok := s.Bounds(u, v)
	if ok && hi-lo <= tol {
		return hi, true, nil
	}
	d, err = bfs.PointToPointCtx(ctx, g, u, v)
	return d, false, err
}

// seedDistance decodes the exact distance from v to cluster c's seed at the
// given lane, or Unreached.
func (s *Sketch) seedDistance(v graph.NodeID, c, lane int) int32 {
	base := int(v)*s.k + c
	d := s.dist[base]
	if d == Unreached {
		return Unreached
	}
	bit := uint64(1) << uint(lane)
	for j := 0; j < s.nm; j++ {
		if s.masks[base*s.nm+j]&bit != 0 {
			return d + int32(j)
		}
	}
	return Unreached
}

// String summarises the sketch for logs.
func (s *Sketch) String() string {
	return fmt.Sprintf("sketch{k=%d r=%d seeds=%d bytes=%d}", s.k, s.r, s.Seeds(), s.Bytes())
}
