// Package dynamic maintains exact farness values under edge insertions and
// deletions — the "extension of this problem to dynamic setting" the
// paper's conclusion names as future work, following the filtering idea of
// Sariyüce, Kaya, Saule and Çatalyürek ("Incremental algorithms for
// closeness centrality", the paper's reference [24]).
//
// The key observation: after inserting edge {u, v}, the distance d(x, y)
// can only change if a path through the new edge beats the old distance,
// which requires |d(x,u) − d(x,v)| ≥ 2 for the *source* x (otherwise
// d(x,u)+1+d(v,y) ≥ d(x,v)+d(v,y) ≥ d(x,y) for every y). Distances — and
// hence farness — are therefore untouched for every node outside the
// affected set X = {x : |d(x,u) − d(x,v)| ≥ 2}, and one BFS per affected
// node refreshes the rest: 2 + |X| traversals instead of n.
//
// Deletion is symmetric with the filter |d(x,u) − d(x,v)| = 1 computed
// *before* the removal (an edge whose endpoints are equidistant from x
// lies on no shortest path from x).
package dynamic

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/queue"
)

// Index maintains a mutable undirected simple graph together with the
// exact farness of every node.
type Index struct {
	adj     []map[graph.NodeID]struct{}
	farness []int64
	workers int
	// UpdatedLast reports how many nodes the last mutation refreshed
	// (the |X| of the filter); useful for instrumentation and tests.
	UpdatedLast int
}

// New builds an index from a connected simple graph. Cost: one BFS per
// node (the unavoidable initial exact computation), parallelised.
func New(g *graph.Graph, workers int) (*Index, error) {
	if !graph.IsConnected(g) {
		return nil, fmt.Errorf("dynamic: graph must be connected")
	}
	n := g.NumNodes()
	ix := &Index{
		adj:     make([]map[graph.NodeID]struct{}, n),
		farness: make([]int64, n),
		workers: par.Workers(workers),
	}
	for v := 0; v < n; v++ {
		ix.adj[v] = make(map[graph.NodeID]struct{}, g.Degree(graph.NodeID(v)))
		for _, w := range g.Neighbors(graph.NodeID(v)) {
			ix.adj[v][w] = struct{}{}
		}
	}
	ix.recomputeAll()
	return ix, nil
}

// NumNodes returns the node count.
func (ix *Index) NumNodes() int { return len(ix.adj) }

// Degree returns the current degree of v.
func (ix *Index) Degree(v graph.NodeID) int { return len(ix.adj[v]) }

// HasEdge reports whether {u, v} is present.
func (ix *Index) HasEdge(u, v graph.NodeID) bool {
	_, ok := ix.adj[u][v]
	return ok
}

// Farness returns the exact farness of v.
func (ix *Index) Farness(v graph.NodeID) float64 { return float64(ix.farness[v]) }

// FarnessAll returns a copy of all farness values.
func (ix *Index) FarnessAll() []float64 {
	out := make([]float64, len(ix.farness))
	for i, f := range ix.farness {
		out[i] = float64(f)
	}
	return out
}

// bfs runs a BFS over the current adjacency, filling dist.
func (ix *Index) bfs(src graph.NodeID, dist []int32, q *queue.FIFO) {
	for i := range dist {
		dist[i] = -1
	}
	q.Reset()
	dist[src] = 0
	q.Push(src)
	for !q.Empty() {
		u := q.Pop()
		du := dist[u]
		for w := range ix.adj[u] {
			if dist[w] == -1 {
				dist[w] = du + 1
				q.Push(w)
			}
		}
	}
}

func (ix *Index) recomputeAll() {
	n := len(ix.adj)
	type ws struct {
		dist []int32
		q    *queue.FIFO
	}
	scratch := make([]ws, ix.workers)
	for i := range scratch {
		scratch[i] = ws{dist: make([]int32, n), q: queue.NewFIFO(n)}
	}
	par.ForDynamic(n, ix.workers, 8, func(worker, v int) {
		s := &scratch[worker]
		ix.bfs(graph.NodeID(v), s.dist, s.q)
		var sum int64
		for _, d := range s.dist {
			sum += int64(d)
		}
		ix.farness[v] = sum
	})
	ix.UpdatedLast = n
}

// refresh recomputes farness for exactly the given nodes.
func (ix *Index) refresh(affected []graph.NodeID) {
	n := len(ix.adj)
	type ws struct {
		dist []int32
		q    *queue.FIFO
	}
	scratch := make([]ws, ix.workers)
	for i := range scratch {
		scratch[i] = ws{dist: make([]int32, n), q: queue.NewFIFO(n)}
	}
	par.ForDynamic(len(affected), ix.workers, 1, func(worker, i int) {
		s := &scratch[worker]
		v := affected[i]
		ix.bfs(v, s.dist, s.q)
		var sum int64
		for _, d := range s.dist {
			sum += int64(d)
		}
		ix.farness[v] = sum
	})
	ix.UpdatedLast = len(affected)
}

// affectedSet returns nodes x with |d(x,u) − d(x,v)| >= threshold.
func (ix *Index) affectedSet(u, v graph.NodeID, threshold int32) []graph.NodeID {
	n := len(ix.adj)
	du := make([]int32, n)
	dv := make([]int32, n)
	q := queue.NewFIFO(n)
	ix.bfs(u, du, q)
	ix.bfs(v, dv, q)
	var out []graph.NodeID
	for x := 0; x < n; x++ {
		diff := du[x] - dv[x]
		if diff < 0 {
			diff = -diff
		}
		if diff >= threshold {
			out = append(out, graph.NodeID(x))
		}
	}
	return out
}

// AddEdge inserts the undirected edge {u, v} and refreshes the farness of
// every affected node. Inserting an existing edge or a self loop is a
// no-op returning nil.
func (ix *Index) AddEdge(u, v graph.NodeID) error {
	n := graph.NodeID(len(ix.adj))
	if u < 0 || v < 0 || u >= n || v >= n {
		return fmt.Errorf("dynamic: edge {%d,%d} out of range", u, v)
	}
	if u == v || ix.HasEdge(u, v) {
		ix.UpdatedLast = 0
		return nil
	}
	// Filter before mutating: the affected test uses pre-insertion
	// distances, and a source is affected iff the endpoints were ≥ 2
	// apart from it.
	affected := ix.affectedSet(u, v, 2)
	ix.adj[u][v] = struct{}{}
	ix.adj[v][u] = struct{}{}
	ix.refresh(affected)
	return nil
}

// RemoveEdge deletes the undirected edge {u, v} and refreshes affected
// farness values. It refuses deletions that would disconnect the graph.
func (ix *Index) RemoveEdge(u, v graph.NodeID) error {
	n := graph.NodeID(len(ix.adj))
	if u < 0 || v < 0 || u >= n || v >= n {
		return fmt.Errorf("dynamic: edge {%d,%d} out of range", u, v)
	}
	if !ix.HasEdge(u, v) {
		return fmt.Errorf("dynamic: edge {%d,%d} not present", u, v)
	}
	// A source x can be affected only if the edge lies on one of its
	// shortest paths, which needs |d(x,u) − d(x,v)| = 1 (equality 0 means
	// the edge is a chord of equal-distance rings). Compute the filter
	// before deleting.
	affected := ix.affectedSet(u, v, 1)
	delete(ix.adj[u], v)
	delete(ix.adj[v], u)
	// Connectivity check: u must still reach v.
	dist := make([]int32, len(ix.adj))
	q := queue.NewFIFO(len(ix.adj))
	ix.bfs(u, dist, q)
	if dist[v] == -1 {
		ix.adj[u][v] = struct{}{}
		ix.adj[v][u] = struct{}{}
		return fmt.Errorf("dynamic: removing {%d,%d} would disconnect the graph", u, v)
	}
	ix.refresh(affected)
	return nil
}

// Snapshot materialises the current graph as an immutable CSR Graph.
func (ix *Index) Snapshot() *graph.Graph {
	b := graph.NewBuilder(len(ix.adj))
	for u := range ix.adj {
		for v := range ix.adj[u] {
			if graph.NodeID(u) < v {
				_ = b.AddEdge(graph.NodeID(u), v)
			}
		}
	}
	return b.Build()
}

// TopK returns the k most central nodes under the current graph.
func (ix *Index) TopK(k int) []graph.NodeID {
	n := len(ix.adj)
	if k > n {
		k = n
	}
	ord := make([]graph.NodeID, n)
	for i := range ord {
		ord[i] = graph.NodeID(i)
	}
	sort.Slice(ord, func(i, j int) bool { return ix.farness[ord[i]] < ix.farness[ord[j]] })
	return ord[:k]
}
