package dynamic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bfs"
	"repro/internal/graph"
)

func ring(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		_ = b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return b.Build()
}

func checkAgainstScratch(t *testing.T, ix *Index) {
	t.Helper()
	g := ix.Snapshot()
	want := bfs.ExactFarness(g, 1)
	for v := 0; v < g.NumNodes(); v++ {
		if ix.Farness(graph.NodeID(v)) != want[v] {
			t.Fatalf("node %d: index %v, scratch %v", v, ix.Farness(graph.NodeID(v)), want[v])
		}
	}
}

func TestNewMatchesExact(t *testing.T) {
	ix, err := New(ring(10), 2)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstScratch(t, ix)
	if ix.NumNodes() != 10 || ix.Degree(0) != 2 {
		t.Fatal("basic accessors broken")
	}
}

func TestNewRejectsDisconnected(t *testing.T) {
	g := graph.FromEdges(4, [][2]int32{{0, 1}, {2, 3}})
	if _, err := New(g, 1); err == nil {
		t.Fatal("expected error for disconnected input")
	}
}

func TestAddEdgeChord(t *testing.T) {
	// Adding a chord across a ring shortens many distances.
	ix, err := New(ring(12), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.AddEdge(0, 6); err != nil {
		t.Fatal(err)
	}
	if ix.UpdatedLast == 0 {
		t.Fatal("chord must affect some nodes")
	}
	if ix.UpdatedLast == ix.NumNodes() {
		t.Log("all nodes affected (acceptable for a diameter chord)")
	}
	checkAgainstScratch(t, ix)
	if !ix.HasEdge(0, 6) || !ix.HasEdge(6, 0) {
		t.Fatal("edge not recorded")
	}
}

func TestAddEdgeNoOpCases(t *testing.T) {
	ix, _ := New(ring(6), 1)
	if err := ix.AddEdge(2, 2); err != nil {
		t.Fatal(err)
	}
	if err := ix.AddEdge(0, 1); err != nil { // already present
		t.Fatal(err)
	}
	if ix.UpdatedLast != 0 {
		t.Fatal("no-op should refresh nothing")
	}
	if err := ix.AddEdge(0, 99); err == nil {
		t.Fatal("out of range should error")
	}
	checkAgainstScratch(t, ix)
}

func TestAddEdgeTriangleFilter(t *testing.T) {
	// Closing a triangle over adjacent-distance endpoints changes nothing:
	// |d(x,u)-d(x,v)| <= 1 for all x when u,v share a neighbour at equal
	// distance... construct: path 0-1-2 plus 0-3, add edge {0,2}? d(x,0)
	// and d(x,2) differ by 2 for x=2... use equidistant endpoints instead.
	g := graph.FromEdges(4, [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	ix, _ := New(g, 1)
	// 1 and 2 are equidistant from the *other* nodes (0 and 3), so only
	// the endpoints themselves — whose mutual distance drops 2 → 1 — are
	// affected.
	if err := ix.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if ix.UpdatedLast != 2 {
		t.Fatalf("square diagonal should affect exactly its endpoints, got %d", ix.UpdatedLast)
	}
	checkAgainstScratch(t, ix)
}

func TestRemoveEdge(t *testing.T) {
	ix, _ := New(ring(8), 1)
	if err := ix.AddEdge(0, 4); err != nil {
		t.Fatal(err)
	}
	if err := ix.RemoveEdge(0, 4); err != nil {
		t.Fatal(err)
	}
	checkAgainstScratch(t, ix)
	if ix.HasEdge(0, 4) {
		t.Fatal("edge still present")
	}
}

func TestRemoveEdgeGuards(t *testing.T) {
	ix, _ := New(ring(6), 1)
	if err := ix.RemoveEdge(0, 3); err == nil {
		t.Fatal("absent edge should error")
	}
	// Removing a bridge must be refused.
	g := graph.FromEdges(3, [][2]int32{{0, 1}, {1, 2}})
	ix2, _ := New(g, 1)
	if err := ix2.RemoveEdge(0, 1); err == nil {
		t.Fatal("bridge removal should be refused")
	}
	if !ix2.HasEdge(0, 1) {
		t.Fatal("refused removal must restore the edge")
	}
	checkAgainstScratch(t, ix2)
}

func TestTopK(t *testing.T) {
	// Star: centre is the unique most central node.
	g := graph.FromEdges(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	ix, _ := New(g, 1)
	top := ix.TopK(1)
	if len(top) != 1 || top[0] != 0 {
		t.Fatalf("TopK = %v, want [0]", top)
	}
	if got := len(ix.TopK(99)); got != 5 {
		t.Fatalf("TopK clamp: %d", got)
	}
}

// Property: a random sequence of insertions and (safe) deletions keeps the
// index equal to the from-scratch computation.
func TestRandomMutationSequence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 5
		// Start from a random tree (connected).
		b := graph.NewBuilder(n)
		for i := 1; i < n; i++ {
			_ = b.AddEdge(graph.NodeID(rng.Intn(i)), graph.NodeID(i))
		}
		g := b.Build()
		ix, err := New(g, 2)
		if err != nil {
			return false
		}
		var added [][2]graph.NodeID
		for step := 0; step < 15; step++ {
			if len(added) > 0 && rng.Intn(3) == 0 {
				// Remove a previously added (non-tree) edge.
				i := rng.Intn(len(added))
				e := added[i]
				if ix.HasEdge(e[0], e[1]) {
					if err := ix.RemoveEdge(e[0], e[1]); err != nil {
						return false
					}
				}
				added = append(added[:i], added[i+1:]...)
			} else {
				u := graph.NodeID(rng.Intn(n))
				v := graph.NodeID(rng.Intn(n))
				if u == v || ix.HasEdge(u, v) {
					continue
				}
				if err := ix.AddEdge(u, v); err != nil {
					return false
				}
				added = append(added, [2]graph.NodeID{u, v})
			}
		}
		snap := ix.Snapshot()
		want := bfs.ExactFarness(snap, 1)
		for v := range want {
			if ix.Farness(graph.NodeID(v)) != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The point of the incremental index: on small-diameter graphs most node
// pairs are nearly equidistant to a new edge's endpoints, so few farness
// values need refreshing. (On a path the filter correctly marks nearly
// everyone — a chord really does change global distances there.)
func TestLocalityOfUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 300
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(graph.NodeID(rng.Intn(i)), graph.NodeID(i))
	}
	for i := 0; i < 2500; i++ {
		_ = b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g := b.Build()
	ix, _ := New(g, 2)
	total := 0
	edges := 0
	for i := 0; i < 10; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v || ix.HasEdge(u, v) {
			continue
		}
		if err := ix.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
		total += ix.UpdatedLast
		edges++
	}
	if edges == 0 {
		t.Skip("no insertions drawn")
	}
	avg := float64(total) / float64(edges)
	if avg > float64(n)/3 {
		t.Fatalf("avg affected = %.1f of %d nodes — filter not selective on a dense graph", avg, n)
	}
	checkAgainstScratch(t, ix)
}
