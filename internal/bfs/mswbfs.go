package bfs

import (
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/queue"
)

// MSMaxBucketWeight is the largest maximum edge weight for which the
// lane-masked Dial kernel is used. Beyond it lanes rarely coincide on a
// bucket level, so the shared edge scans that make multi-source traversal
// pay off disappear while the mask bookkeeping remains; the drivers then
// fall back to one plain Dial per source. Chain contraction produces
// weights equal to contracted chain lengths, which sit far below this on
// every graph family the paper evaluates.
const MSMaxBucketWeight = 512

// MultiSourceW runs a lane-masked Dial (bucket-queue) shortest-path sweep
// from up to 64 sources simultaneously over an integer-weighted graph. Like
// MultiSource it calls visit(v, lane, d) exactly once per reached
// (source, node) pair, with d the weighted shortest-path distance.
//
// The kernel generalises Dial's monotone bucket ring to lane masks: each
// bucket holds (node, mask) entries meaning "the lanes in mask may reach
// node at this distance"; draining buckets in increasing distance settles
// every lane at its true distance, with stale entries filtered by the
// per-node seen mask. Entries landing on the same node at the same distance
// are coalesced before edge relaxation, so lanes whose frontiers coincide
// share one edge scan — the same win the unweighted kernel gets per level.
func MultiSourceW(g *graph.WGraph, sources []graph.NodeID, visit func(v graph.NodeID, lane int, d int32)) {
	MultiSourceWInto(g, sources, NewMSScratch(g.NumNodes(), g.MaxWeight()), visit)
}

// MultiSourceWInto is MultiSourceW with caller-provided scratch. The
// scratch must have been created with at least the graph's maximum edge
// weight.
func MultiSourceWInto(g *graph.WGraph, sources []graph.NodeID, s *MSScratch, visit func(v graph.NodeID, lane int, d int32)) {
	MultiSourceWMasksInto(g, sources, s, expandMask(visit))
}

// MultiSourceWMasksInto is MultiSourceWInto at mask granularity: visit
// receives the lanes newly settled at v for distance d as a bitmask. Unlike
// the unweighted kernel, the same (v, d) pair may be reported across several
// calls — bucket entries arriving from different predecessors settle
// disjoint lane subsets — but each (source, node) pair is still covered
// exactly once over the whole sweep, so expanding every mask bit-by-bit
// recovers the per-lane visit sequence of MultiSourceWInto.
func MultiSourceWMasksInto(g *graph.WGraph, sources []graph.NodeID, s *MSScratch, visit func(v graph.NodeID, mask uint64, d int32)) {
	if len(sources) == 0 {
		return
	}
	if len(sources) > MSBFSWidth {
		panic("bfs: MultiSourceW supports at most 64 sources per batch")
	}
	n := g.NumNodes()
	s.reset(n)
	if len(s.pend) < n {
		s.pend = make([]uint64, n)
	}
	if maxW := int(g.MaxWeight()); len(s.buckets) <= maxW {
		s.buckets = make([][]msEntry, maxW+1)
	}
	seen, pend := s.seen, s.pend
	ring := len(s.buckets)
	for i := range s.buckets {
		s.buckets[i] = s.buckets[i][:0]
	}
	levelNodes := s.levelNodes[:0]

	pending := 0
	for lane, src := range sources {
		s.buckets[0] = append(s.buckets[0], msEntry{src, uint64(1) << uint(lane)})
		pending++
	}

	for d := int32(0); pending > 0; d++ {
		slot := int(d) % ring
		entries := s.buckets[slot]
		if len(entries) == 0 {
			continue
		}
		if par.Interrupted(s.done) {
			break
		}
		pending -= len(entries)
		// Phase 1: settle new lanes, coalescing same-distance arrivals per
		// node so phase 2 scans each node's edges once for all its lanes.
		levelNodes = levelNodes[:0]
		for _, e := range entries {
			nw := e.mask &^ seen[e.v]
			if nw == 0 {
				continue
			}
			// Branch-avoiding queue insert (see msbfs.go): append
			// speculatively, retract by the already-pending bit.
			levelNodes = append(levelNodes, e.v)
			levelNodes = levelNodes[:len(levelNodes)-int(nzb(pend[e.v]))]
			pend[e.v] |= nw
			seen[e.v] |= nw
			visit(e.v, nw, d)
		}
		s.buckets[slot] = entries[:0]
		// Phase 2: relax. Every push targets a strictly larger distance
		// (weights are ≥ 1), so the slot being drained never grows.
		for _, v := range levelNodes {
			m := pend[v]
			pend[v] = 0
			nbrs := g.Neighbors(v)
			ws := g.Weights(v)
			for i, w := range nbrs {
				fm := m &^ seen[w]
				if fm == 0 {
					continue
				}
				nslot := int(d+ws[i]) % ring
				s.buckets[nslot] = append(s.buckets[nslot], msEntry{w, fm})
				pending++
			}
		}
	}
	s.levelNodes = levelNodes[:0]
}

// multiSourceLevelSyncW is the unweighted multi-source kernel running over a
// WGraph whose weights are all 1 (the common case after reductions that
// contracted nothing); it avoids the bucket ring entirely and shares the
// direction-optimising level-sync kernel with the simple-graph entry point.
// Callers guarantee the all-weights-one precondition
// (graph.WGraph.Unweighted).
func multiSourceLevelSyncW(g *graph.WGraph, sources []graph.NodeID, s *MSScratch, visit func(v graph.NodeID, mask uint64, d int32)) {
	offsets, adj, _ := g.CSR()
	msLevelSync(offsets, adj, sources, s, visit)
}

// MultiSourceWRows fills rows[lane][v] with the shortest-path distance from
// batch[lane] to v (Unreached where unreachable), choosing the best kernel
// for the graph: the level-synchronous bit-parallel sweep when every weight
// is 1, the lane-masked Dial when the maximum weight is bucketable, and one
// plain Dial per source beyond that (see MSMaxBucketWeight). unweighted is
// the caller's cached g.Unweighted(). rows must hold len(batch) slices of
// length g.NumNodes(); the scratch must cover the graph's size and weight.
func MultiSourceWRows(g *graph.WGraph, unweighted bool, batch []graph.NodeID, s *MSScratch, rows [][]int32) {
	for lane := range batch {
		Fill(rows[lane])
	}
	fill := maskRowFill(rows, len(batch))
	switch {
	case unweighted:
		multiSourceLevelSyncW(g, batch, s, fill)
	case g.MaxWeight() <= MSMaxBucketWeight:
		MultiSourceWMasksInto(g, batch, s, fill)
	default:
		if s.fb == nil || s.fbMaxW < g.MaxWeight() {
			s.fb = queue.NewBucket(g.MaxWeight())
			s.fbMaxW = g.MaxWeight()
		}
		for lane, src := range batch {
			if par.Interrupted(s.done) {
				break
			}
			wDistancesDone(g, src, rows[lane], s.fb, s.done)
		}
	}
}
