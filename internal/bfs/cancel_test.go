package bfs

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
)

func cancelTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return gen.Community(4000, 7)
}

func cancelTestWGraph(t *testing.T) *graph.WGraph {
	t.Helper()
	g := cancelTestGraph(t)
	b := graph.NewWBuilder(g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			if graph.NodeID(u) < v {
				w := int32(1 + (u+int(v))%3)
				b.AddEdge(graph.NodeID(u), v, w)
			}
		}
	}
	return b.Build()
}

func TestDistancesCtxMatchesPlain(t *testing.T) {
	g := cancelTestGraph(t)
	n := g.NumNodes()
	want := make([]int32, n)
	got := make([]int32, n)
	Distances(g, 3, want, nil)
	if err := DistancesCtx(context.Background(), g, 3, got, nil); err != nil {
		t.Fatalf("live ctx: %v", err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("dist[%d]: plain %d vs ctx %d", i, want[i], got[i])
		}
	}
}

func TestDistancesCtxPreCanceled(t *testing.T) {
	g := cancelTestGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dist := make([]int32, g.NumNodes())
	err := DistancesCtx(ctx, g, 0, dist, nil)
	if !errors.Is(err, par.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestWDistancesCtxMatchesPlain(t *testing.T) {
	g := cancelTestWGraph(t)
	n := g.NumNodes()
	want := make([]int32, n)
	got := make([]int32, n)
	WDistances(g, 5, want, nil)
	if err := WDistancesCtx(context.Background(), g, 5, got, nil); err != nil {
		t.Fatalf("live ctx: %v", err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("dist[%d]: plain %d vs ctx %d", i, want[i], got[i])
		}
	}
}

func TestWDistancesCtxPreCanceled(t *testing.T) {
	g := cancelTestWGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dist := make([]int32, g.NumNodes())
	err := WDistancesCtx(ctx, g, 0, dist, nil)
	if !errors.Is(err, par.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestRunBatchesCtxMatchesPlain(t *testing.T) {
	g := cancelTestGraph(t)
	n := g.NumNodes()
	sources := make([]graph.NodeID, 0, 100)
	for i := 0; i < 100; i++ {
		sources = append(sources, graph.NodeID((i*37)%n))
	}
	// Accumulate per-lane farness with plain and ctx drivers; they must agree.
	plain := make([]int64, len(sources))
	RunBatches(g, sources, 4, func(_, base int, batch []graph.NodeID, rows [][]int32) {
		for lane := range batch {
			s, _ := Sum(rows[lane])
			plain[base+lane] = s
		}
	})
	withCtx := make([]int64, len(sources))
	err := RunBatchesCtx(context.Background(), g, sources, 4, func(_, base int, batch []graph.NodeID, rows [][]int32) {
		for lane := range batch {
			s, _ := Sum(rows[lane])
			withCtx[base+lane] = s
		}
	})
	if err != nil {
		t.Fatalf("live ctx run: %v", err)
	}
	for i := range plain {
		if plain[i] != withCtx[i] {
			t.Fatalf("farness[%d]: plain %d vs ctx %d", i, plain[i], withCtx[i])
		}
	}
}

func TestRunBatchesCtxCanceledMidRun(t *testing.T) {
	g := cancelTestGraph(t)
	n := g.NumNodes()
	var sources []graph.NodeID
	for i := 0; i < 64*20; i++ {
		sources = append(sources, graph.NodeID(i%n))
	}
	ctx, cancel := context.WithCancel(context.Background())
	var handled atomic.Int64 // the handler runs concurrently from both workers
	err := RunBatchesCtx(ctx, g, sources, 2, func(_, _ int, _ []graph.NodeID, _ [][]int32) {
		if handled.Add(1) == 2 {
			cancel()
		}
	})
	if !errors.Is(err, par.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if int(handled.Load()) >= len(sources)/MSBFSWidth {
		t.Fatalf("cancellation did not stop the driver (handled %d batches)", handled.Load())
	}
}

func TestRunBatchesWCtxMatchesPlain(t *testing.T) {
	g := cancelTestWGraph(t)
	sources := []graph.NodeID{0, 17, 99, 1033, 2048}
	plain := make([]int64, len(sources))
	RunBatchesW(g, sources, 2, func(_, base int, batch []graph.NodeID, rows [][]int32) {
		for lane := range batch {
			s, _ := Sum(rows[lane])
			plain[base+lane] = s
		}
	})
	withCtx := make([]int64, len(sources))
	err := RunBatchesWCtx(context.Background(), g, sources, 2, func(_, base int, batch []graph.NodeID, rows [][]int32) {
		for lane := range batch {
			s, _ := Sum(rows[lane])
			withCtx[base+lane] = s
		}
	})
	if err != nil {
		t.Fatalf("live ctx run: %v", err)
	}
	for i := range plain {
		if plain[i] != withCtx[i] {
			t.Fatalf("farness[%d]: plain %d vs ctx %d", i, plain[i], withCtx[i])
		}
	}
}

func TestRunBatchesWCtxPreCanceled(t *testing.T) {
	g := cancelTestWGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	handled := 0
	err := RunBatchesWCtx(ctx, g, []graph.NodeID{0, 1, 2}, 2, func(_, _ int, _ []graph.NodeID, _ [][]int32) {
		handled++
	})
	if !errors.Is(err, par.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if handled != 0 {
		t.Fatalf("pre-canceled run still handled %d batches", handled)
	}
}
