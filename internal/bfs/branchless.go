package bfs

// Branch-avoiding primitives for the 64-lane kernels, after Green, Dukhan
// and Vuduc's "Branch-Avoiding Graph Algorithms": the mask-update hot loops
// run over data whose branch outcomes are close to random (is this node
// newly seen? did every lane arrive? was it already queued?), so a
// mispredicted branch per visited edge costs more than computing both
// outcomes and selecting arithmetically. The visit loops in msbfs.go and
// mswbfs.go use these helpers to keep their per-node bookkeeping free of
// data-dependent branches; branches that *prune work* (skipping saturated
// rows, the pull early-exit) are kept — those avoid loads, not just control.

// nzb returns 1 when x != 0 and 0 otherwise without a branch: x | -x has its
// top bit set exactly when x is non-zero (for x = 0 both operands are zero;
// otherwise either x or its two's complement has bit 63 set).
func nzb(x uint64) uint64 {
	return (x | -x) >> 63
}

// AccumulateLanes adds d to dst[lane] for every lane whose bit is set in
// mask, using an arithmetic select per lane — d & -bit is d when the bit is
// 1 and 0 when it is 0 — instead of iterating the set bits with an
// unpredictable loop. dst is the per-lane accumulator sliced to the batch
// width; mask bits at or above len(dst) must be zero (the kernels guarantee
// this: lanes beyond the batch are never seeded). For the dense masks that
// clustered batching produces, the fixed-trip-count loop with no
// data-dependent branches beats the popcount-iteration form.
func AccumulateLanes(dst []int64, mask uint64, d int64) {
	for lane := range dst {
		dst[lane] += d & -int64((mask>>uint(lane))&1)
	}
}
