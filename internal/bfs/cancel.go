package bfs

import (
	"context"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/queue"
)

// This file holds the context-aware entry points of the per-source kernels.
// Each wraps the corresponding done-channel kernel: the traversal polls
// ctx.Done() every interruptEvery queue pops and bails early once it fires.
// A non-nil return wraps par.ErrCanceled and means dist holds a partial
// traversal that must be discarded; a nil return guarantees output
// bit-identical to the non-ctx variant (the poll never changes visit order).

// DistancesCtx is Distances with cooperative cancellation.
func DistancesCtx(ctx context.Context, g *graph.Graph, src graph.NodeID, dist []int32, q *queue.FIFO) error {
	distancesDone(g, src, dist, q, ctx.Done())
	return par.CtxErr(ctx)
}

// WDistancesCtx is WDistances with cooperative cancellation.
func WDistancesCtx(ctx context.Context, g *graph.WGraph, src graph.NodeID, dist []int32, b *queue.Bucket) error {
	wDistancesDone(g, src, dist, b, ctx.Done())
	return par.CtxErr(ctx)
}

// WDistancesBFSCtx is WDistancesBFS with cooperative cancellation.
func WDistancesBFSCtx(ctx context.Context, g *graph.WGraph, src graph.NodeID, dist []int32, q *queue.FIFO) error {
	wDistancesBFSDone(g, src, dist, q, ctx.Done())
	return par.CtxErr(ctx)
}

// WDistancesAutoCtx is WDistancesAuto with cooperative cancellation.
func WDistancesAutoCtx(ctx context.Context, g *graph.WGraph, unweighted bool, src graph.NodeID, s *Scratch) error {
	wDistancesAutoDone(g, unweighted, src, s, ctx.Done())
	return par.CtxErr(ctx)
}
