package bfs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestPointToPointBasics(t *testing.T) {
	g := graph.FromEdges(6, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	cases := []struct {
		s, t graph.NodeID
		want int32
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 4, 4}, {4, 0, 4}, {1, 3, 2},
		{0, 5, -1}, // node 5 isolated
	}
	for _, c := range cases {
		if got := PointToPoint(g, c.s, c.t); got != c.want {
			t.Errorf("d(%d,%d) = %d, want %d", c.s, c.t, got, c.want)
		}
	}
}

// Edge cases that must return without allocating the full n-sized scratch:
// src == dst (any graph), an isolated endpoint (the cheap disconnected
// case), and the single-node graph.
func TestPointToPointEdgeCasesAllocFree(t *testing.T) {
	g := graph.FromEdges(5, [][2]int32{{0, 1}, {1, 2}}) // nodes 3, 4 isolated
	single := graph.FromEdges(1, nil)
	cases := []struct {
		name string
		g    *graph.Graph
		s, t graph.NodeID
		want int32
	}{
		{"src==dst", g, 2, 2, 0},
		{"isolated src", g, 3, 0, Unreached},
		{"isolated dst", g, 0, 4, Unreached},
		{"both isolated", g, 3, 4, Unreached},
		{"single-node", single, 0, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := PointToPoint(c.g, c.s, c.t); got != c.want {
				t.Fatalf("d(%d,%d) = %d, want %d", c.s, c.t, got, c.want)
			}
			allocs := testing.AllocsPerRun(20, func() { PointToPoint(c.g, c.s, c.t) })
			if allocs != 0 {
				t.Fatalf("d(%d,%d) allocated %.0f objects, want 0", c.s, c.t, allocs)
			}
		})
	}
}

// Disconnected pairs with non-isolated endpoints still answer -1 (via the
// search), and the search stops after exploring the smaller component.
func TestPointToPointDisconnectedComponents(t *testing.T) {
	g := graph.FromEdges(7, [][2]int32{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 6}})
	for _, c := range [][2]graph.NodeID{{0, 3}, {3, 0}, {2, 6}} {
		if got := PointToPoint(g, c[0], c[1]); got != Unreached {
			t.Fatalf("d(%d,%d) = %d, want %d", c[0], c[1], got, Unreached)
		}
	}
}

// Property: bidirectional distance equals BFS distance for random pairs on
// random graphs (including disconnected ones).
func TestPointToPointMatchesBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 2
		b := graph.NewBuilder(n)
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			_ = b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		dist := make([]int32, n)
		for trial := 0; trial < 12; trial++ {
			s := graph.NodeID(rng.Intn(n))
			tt := graph.NodeID(rng.Intn(n))
			Distances(g, s, dist, nil)
			if got := PointToPoint(g, s, tt); got != dist[tt] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPointToPointVsBFS(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := randomConnected(rng, 30000)
	n := g.NumNodes()
	dist := make([]int32, n)
	b.Run("bidirectional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			PointToPoint(g, graph.NodeID(i%n), graph.NodeID((i*7919+13)%n))
		}
	})
	b.Run("full-bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Distances(g, graph.NodeID(i%n), dist, nil)
		}
	})
}
