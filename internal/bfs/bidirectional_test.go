package bfs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestPointToPointBasics(t *testing.T) {
	g := graph.FromEdges(6, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	cases := []struct {
		s, t graph.NodeID
		want int32
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 4, 4}, {4, 0, 4}, {1, 3, 2},
		{0, 5, -1}, // node 5 isolated
	}
	for _, c := range cases {
		if got := PointToPoint(g, c.s, c.t); got != c.want {
			t.Errorf("d(%d,%d) = %d, want %d", c.s, c.t, got, c.want)
		}
	}
}

// Property: bidirectional distance equals BFS distance for random pairs on
// random graphs (including disconnected ones).
func TestPointToPointMatchesBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 2
		b := graph.NewBuilder(n)
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			_ = b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		dist := make([]int32, n)
		for trial := 0; trial < 12; trial++ {
			s := graph.NodeID(rng.Intn(n))
			tt := graph.NodeID(rng.Intn(n))
			Distances(g, s, dist, nil)
			if got := PointToPoint(g, s, tt); got != dist[tt] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPointToPointVsBFS(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := randomConnected(rng, 30000)
	n := g.NumNodes()
	dist := make([]int32, n)
	b.Run("bidirectional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			PointToPoint(g, graph.NodeID(i%n), graph.NodeID((i*7919+13)%n))
		}
	})
	b.Run("full-bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Distances(g, graph.NodeID(i%n), dist, nil)
		}
	})
}
