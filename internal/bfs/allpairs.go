package bfs

import (
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/queue"
)

// ExactFarness computes the exact farness of every node of the (connected,
// unweighted) graph g: farness(v) = Σ_w d(v, w). It runs one BFS per node,
// parallelised across the given number of workers with dynamic scheduling.
// This is the ground-truth oracle for every quality metric in the paper.
func ExactFarness(g *graph.Graph, workers int) []float64 {
	n := g.NumNodes()
	farness := make([]float64, n)
	workers = par.Workers(workers)
	type ws struct {
		dist []int32
		q    *queue.FIFO
	}
	scratch := make([]ws, workers)
	for i := range scratch {
		scratch[i] = ws{dist: make([]int32, n), q: queue.NewFIFO(n)}
	}
	par.ForDynamic(n, workers, 16, func(worker, v int) {
		s := &scratch[worker]
		Distances(g, graph.NodeID(v), s.dist, s.q)
		sum, _ := Sum(s.dist)
		farness[v] = float64(sum)
	})
	return farness
}

// ExactFarnessW is ExactFarness over a weighted graph; it is used by tests
// to validate reductions on the contracted graph.
func ExactFarnessW(g *graph.WGraph, workers int) []float64 {
	n := g.NumNodes()
	farness := make([]float64, n)
	workers = par.Workers(workers)
	unweighted := g.Unweighted()
	maxW := g.MaxWeight()
	scratch := make([]*Scratch, workers)
	for i := range scratch {
		scratch[i] = NewScratch(n, maxW)
	}
	par.ForDynamic(n, workers, 16, func(worker, v int) {
		s := scratch[worker]
		WDistancesAuto(g, unweighted, graph.NodeID(v), s)
		sum, _ := Sum(s.Dist)
		farness[v] = float64(sum)
	})
	return farness
}

// ExactFarnessFrontier is ExactFarness with the traversal-level parallelism
// transposed: sources run sequentially and each BFS fans its frontier out
// across the workers (the edge-map engine). Peak memory is one distance row
// regardless of worker count, and farness is bit-identical to ExactFarness —
// the two are interchangeable oracles.
func ExactFarnessFrontier(g *graph.Graph, workers int) []float64 {
	n := g.NumNodes()
	farness := make([]float64, n)
	dist := make([]int32, n)
	fs := NewFrontierScratch()
	for v := 0; v < n; v++ {
		FrontierDistances(g, graph.NodeID(v), dist, workers, fs)
		sum, _ := Sum(dist)
		farness[v] = float64(sum)
	}
	return farness
}

// AllPairs computes the full distance matrix of a small graph. Intended for
// tests only: memory is Θ(n²).
func AllPairs(g *graph.Graph) [][]int32 {
	n := g.NumNodes()
	out := make([][]int32, n)
	q := queue.NewFIFO(n)
	for v := 0; v < n; v++ {
		out[v] = make([]int32, n)
		Distances(g, graph.NodeID(v), out[v], q)
	}
	return out
}

// AllPairsFrontier is AllPairs computed row by row with the frontier-parallel
// engine; tests use it to cross-check the edge-map kernel against the
// sequential matrix. Memory is Θ(n²) like AllPairs.
func AllPairsFrontier(g *graph.Graph, workers int) [][]int32 {
	n := g.NumNodes()
	out := make([][]int32, n)
	fs := NewFrontierScratch()
	for v := 0; v < n; v++ {
		out[v] = make([]int32, n)
		FrontierDistances(g, graph.NodeID(v), out[v], workers, fs)
	}
	return out
}

// AllPairsW is AllPairs on a weighted graph; tests only.
func AllPairsW(g *graph.WGraph) [][]int32 {
	n := g.NumNodes()
	out := make([][]int32, n)
	b := queue.NewBucket(g.MaxWeight())
	for v := 0; v < n; v++ {
		out[v] = make([]int32, n)
		WDistances(g, graph.NodeID(v), out[v], b)
	}
	return out
}
