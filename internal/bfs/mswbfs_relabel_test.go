package bfs

import (
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/queue"
)

// These tests compose the weighted 64-lane engine with cache-aware
// relabeling — the exact pairing the estimators run in production (the
// reduced graph is rebuilt under a permutation, sources map through Perm on
// the way in, rows map back through it on the way out) — and pin that the
// composition changes no distance. Three weight regimes force all three
// kernels behind MultiSourceWRows: all-ones (level-synchronous sweep),
// small weights (lane-masked Dial), and weights above MSMaxBucketWeight
// (per-source Dial fallback).

func relabelWeightRegimes() []struct {
	name   string
	lo, hi int32
} {
	return []struct {
		name   string
		lo, hi int32
	}{
		{"unit", 1, 1},
		{"bucketable", 1, 9},
		{"fallback", MSMaxBucketWeight + 1, MSMaxBucketWeight + 64},
	}
}

// TestMultiSourceWRowsUnderRelabeling: rows computed on the relabeled graph,
// read back through the permutation, equal per-source Dial rows on the
// original graph — for every family, weight regime and relabel ordering.
func TestMultiSourceWRowsUnderRelabeling(t *testing.T) {
	for _, fam := range genFamilies {
		for _, reg := range relabelWeightRegimes() {
			for _, mode := range []graph.RelabelMode{graph.RelabelDegree, graph.RelabelBFS} {
				rng := rand.New(rand.NewSource(29))
				g := graph.Connect(fam.build(rng.Intn(300)+100, 17))
				wg := reweight(g, reg.lo, reg.hi, rng)
				rg, r := graph.RelabelW(wg, mode, 2)
				if r == nil {
					t.Fatalf("%s/%s/%s: relabeling returned no permutation", fam.name, reg.name, mode)
				}
				n := wg.NumNodes()
				batch := randomBatch(rng, n)
				batchR := make([]graph.NodeID, len(batch))
				for i, s := range batch {
					batchR[i] = r.Perm[s]
				}
				rows := make([][]int32, len(batch))
				for i := range rows {
					rows[i] = make([]int32, n)
				}
				s := NewMSScratch(n, rg.MaxWeight())
				MultiSourceWRows(rg, rg.Unweighted(), batchR, s, rows)

				want := make([]int32, n)
				b := queue.NewBucket(wg.MaxWeight())
				for lane, src := range batch {
					WDistances(wg, src, want, b)
					for v := 0; v < n; v++ {
						if got := rows[lane][r.Perm[v]]; got != want[v] {
							t.Fatalf("%s/%s/%s lane %d node %d: got %d, want %d",
								fam.name, reg.name, mode, lane, v, got, want[v])
						}
					}
				}
			}
		}
	}
}

// TestMultiSourceWMasksUnderRelabeling pins the mask-granularity contract on
// a relabeled graph: masks may split one (node, distance) pair across calls,
// but unioned over the sweep every (source, node) pair is covered exactly
// once, at the per-source distance.
func TestMultiSourceWMasksUnderRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := graph.Connect(genFamilies[3].build(220, 13)) // road: long chains stress bucket reuse
	wg := reweight(g, 1, 7, rng)
	rg, r := graph.RelabelW(wg, graph.RelabelBFS, 1)
	n := wg.NumNodes()
	batch := randomBatch(rng, n)
	batchR := make([]graph.NodeID, len(batch))
	for i, s := range batch {
		batchR[i] = r.Perm[s]
	}
	seen := make([][]int32, len(batch))
	for i := range seen {
		seen[i] = make([]int32, n)
		Fill(seen[i])
	}
	MultiSourceWMasksInto(rg, batchR, NewMSScratch(n, rg.MaxWeight()), func(v graph.NodeID, mask uint64, d int32) {
		for m := mask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			if seen[lane][v] != Unreached {
				t.Fatalf("lane %d node %d settled twice (d=%d then d=%d)", lane, v, seen[lane][v], d)
			}
			seen[lane][v] = d
		}
	})
	want := make([]int32, n)
	b := queue.NewBucket(wg.MaxWeight())
	for lane, src := range batch {
		WDistances(wg, src, want, b)
		for v := 0; v < n; v++ {
			if got := seen[lane][r.Perm[v]]; got != want[v] {
				t.Fatalf("lane %d node %d: got %d, want %d", lane, v, got, want[v])
			}
		}
	}
}
