package bfs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestMultiSourceMatchesSequentialBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnected(rng, 200)
	sources := []graph.NodeID{0, 5, 17, 42, 199}
	got := make(map[[2]int32]int32)
	MultiSource(g, sources, func(v graph.NodeID, lane int, d int32) {
		key := [2]int32{int32(lane), v}
		if _, dup := got[key]; dup {
			t.Fatalf("duplicate visit for lane %d node %d", lane, v)
		}
		got[key] = d
	})
	dist := make([]int32, g.NumNodes())
	for lane, s := range sources {
		Distances(g, s, dist, nil)
		for v := 0; v < g.NumNodes(); v++ {
			want := dist[v]
			d, ok := got[[2]int32{int32(lane), int32(v)}]
			if want == Unreached {
				if ok {
					t.Fatalf("lane %d visited unreachable node %d", lane, v)
				}
				continue
			}
			if !ok || d != want {
				t.Fatalf("lane %d node %d: got %d,%v want %d", lane, v, d, ok, want)
			}
		}
	}
}

func TestMultiSourceDuplicateSources(t *testing.T) {
	g := graph.FromEdges(3, [][2]int32{{0, 1}, {1, 2}})
	counts := map[int]int{}
	MultiSource(g, []graph.NodeID{1, 1}, func(v graph.NodeID, lane int, d int32) {
		counts[lane]++
	})
	if counts[0] != 3 || counts[1] != 3 {
		t.Fatalf("duplicate-source lanes should both cover the graph: %v", counts)
	}
}

func TestMultiSourceEmptyAndLimits(t *testing.T) {
	g := graph.FromEdges(2, [][2]int32{{0, 1}})
	MultiSource(g, nil, func(graph.NodeID, int, int32) {
		t.Fatal("no sources should mean no visits")
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >64 sources")
		}
	}()
	many := make([]graph.NodeID, 65)
	MultiSource(g, many, func(graph.NodeID, int, int32) {})
}

// Property: MultiSourceFarness equals per-source BFS sums on random graphs
// with random batch sizes (crossing the 64-lane boundary).
func TestMultiSourceFarnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(150) + 2
		g := randomConnected(rng, n)
		k := rng.Intn(130) + 1
		if k > n {
			k = n
		}
		sources := make([]graph.NodeID, k)
		for i := range sources {
			sources[i] = graph.NodeID(rng.Intn(n))
		}
		acc, far := MultiSourceFarness(g, sources)

		wantAcc := make([]int64, n)
		dist := make([]int32, n)
		for i, s := range sources {
			Distances(g, s, dist, nil)
			var sum int64
			for v, d := range dist {
				wantAcc[v] += int64(d)
				sum += int64(d)
			}
			if far[i] != sum {
				return false
			}
		}
		for v := range wantAcc {
			if acc[v] != wantAcc[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMultiSourceVsSequential(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnected(rng, 20000)
	n := g.NumNodes()
	sources := make([]graph.NodeID, 64)
	for i := range sources {
		sources[i] = graph.NodeID(rng.Intn(n))
	}
	b.Run("ms64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var total int64
			MultiSource(g, sources, func(_ graph.NodeID, _ int, d int32) { total += int64(d) })
		}
	})
	b.Run("seq64", func(b *testing.B) {
		dist := make([]int32, n)
		for i := 0; i < b.N; i++ {
			var total int64
			for _, s := range sources {
				Distances(g, s, dist, nil)
				sum, _ := Sum(dist)
				total += sum
			}
		}
	})
}

// A dense graph with a full 64-lane batch drives the level-sync kernel
// through its lane-masked bottom-up branch (mf exceeds mu/alpha on the
// first level); visits must still match sequential BFS exactly.
func TestMultiSourceDenseBottomUp(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 400
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(int32(rng.Intn(i)), int32(i))
	}
	for i := 0; i < 20*n; i++ {
		_ = b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	g := b.Build()
	sources := make([]graph.NodeID, MSBFSWidth)
	for i := range sources {
		sources[i] = graph.NodeID(rng.Intn(n))
	}
	rows := make([][]int32, len(sources))
	for i := range rows {
		rows[i] = make([]int32, n)
		Fill(rows[i])
	}
	MultiSource(g, sources, func(v graph.NodeID, lane int, d int32) {
		if rows[lane][v] != Unreached {
			t.Fatalf("duplicate visit for lane %d node %d", lane, v)
		}
		rows[lane][v] = d
	})
	dist := make([]int32, n)
	for lane, s := range sources {
		Distances(g, s, dist, nil)
		for v := range dist {
			if rows[lane][v] != dist[v] {
				t.Fatalf("lane %d node %d: got %d want %d", lane, v, rows[lane][v], dist[v])
			}
		}
	}
}
