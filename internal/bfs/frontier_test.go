package bfs

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/queue"
)

// frontierWorkerSweep is the worker sweep of the frontier property tests; the
// engine must be bit-identical at every point of it. -short trims it to the
// endpoints (the sequential path and the most oversubscribed one).
func frontierWorkerSweep(t *testing.T) []int {
	if testing.Short() {
		return []int{1, 8}
	}
	return []int{1, 2, 4, 8}
}

var relabelModes = []graph.RelabelMode{graph.RelabelNone, graph.RelabelDegree, graph.RelabelBFS}

// TestFrontierMatchesDistancesOnFamilies cross-checks the frontier-parallel
// edge-map engine against sequential BFS on all four generator families,
// under every relabel mode and worker count: distances bit-identical per
// node, and therefore the farness sums too. The 5000-node road case drives
// long, thin frontiers through the sequential-fallback path; the social case
// drives the dense pull path.
func TestFrontierMatchesDistancesOnFamilies(t *testing.T) {
	workerSweep := frontierWorkerSweep(t)
	modes := relabelModes
	if testing.Short() {
		modes = relabelModes[:1]
	}
	for _, fam := range genFamilies {
		t.Run(fam.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(23))
			sizes := []int{60, 400, 5000}
			if testing.Short() {
				sizes = sizes[:2]
			}
			for _, size := range sizes {
				base := fam.build(size, int64(size))
				for _, mode := range modes {
					g, _ := graph.Relabel(base, mode, 2)
					n := g.NumNodes()
					want := make([]int32, n)
					got := make([]int32, n)
					fs := NewFrontierScratch()
					for trial := 0; trial < 4; trial++ {
						src := graph.NodeID(rng.Intn(n))
						Distances(g, src, want, nil)
						wantSum, _ := Sum(want)
						for _, w := range workerSweep {
							FrontierDistances(g, src, got, w, fs)
							for v := 0; v < n; v++ {
								if got[v] != want[v] {
									t.Fatalf("%s n=%d relabel=%v workers=%d src=%d node %d: frontier %d, sequential %d",
										fam.name, n, mode, w, src, v, got[v], want[v])
								}
							}
							if gotSum, _ := Sum(got); gotSum != wantSum {
								t.Fatalf("%s workers=%d: farness %d, want %d", fam.name, w, gotSum, wantSum)
							}
						}
					}
				}
			}
		})
	}
}

// TestWFrontierMatchesWDistances cross-checks the parallel bucketed-Dial
// kernel against the sequential Dial on randomly weighted versions of the
// four families across the worker sweep, including the unit-weight range that
// routes through the unweighted edge-map over the WGraph CSR.
func TestWFrontierMatchesWDistances(t *testing.T) {
	workerSweep := frontierWorkerSweep(t)
	weightRanges := []struct {
		name   string
		lo, hi int32
	}{
		{"unit", 1, 1},
		{"small", 1, 7},
		{"wide", 1, 60},
	}
	for _, fam := range genFamilies {
		for _, wr := range weightRanges {
			t.Run(fam.name+"/"+wr.name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(29))
				trials := 4
				if testing.Short() {
					trials = 2
				}
				fs := NewFrontierScratch()
				for trial := 0; trial < trials; trial++ {
					g := fam.build(rng.Intn(900)+80, int64(trial)+17)
					wg := reweight(g, wr.lo, wr.hi, rng)
					n := wg.NumNodes()
					unweighted := wg.Unweighted()
					want := make([]int32, n)
					got := make([]int32, n)
					bq := queue.NewBucket(wg.MaxWeight())
					src := graph.NodeID(rng.Intn(n))
					WDistances(wg, src, want, bq)
					for _, w := range workerSweep {
						WFrontierDistances(wg, unweighted, src, got, w, fs)
						for v := 0; v < n; v++ {
							if got[v] != want[v] {
								t.Fatalf("%s/%s workers=%d src=%d node %d: frontier %d, dial %d",
									fam.name, wr.name, w, src, v, got[v], want[v])
							}
						}
					}
				}
			})
		}
	}
}

// TestExactFarnessFrontierMatchesExactFarness checks the two all-sources
// oracles are interchangeable: same farness vector, bit for bit, at every
// worker count.
func TestExactFarnessFrontierMatchesExactFarness(t *testing.T) {
	g := gen.Social(700, 19)
	want := ExactFarness(g, 4)
	for _, w := range frontierWorkerSweep(t) {
		got := ExactFarnessFrontier(g, w)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("workers=%d node %d: frontier %v, per-source %v", w, v, got[v], want[v])
			}
		}
	}
}

// TestAllPairsFrontierMatchesAllPairs cross-checks the full distance matrix
// on a small community graph (dense enough to exercise the pull path).
func TestAllPairsFrontierMatchesAllPairs(t *testing.T) {
	g := gen.Community(300, 7)
	want := AllPairs(g)
	got := AllPairsFrontier(g, 4)
	for v := range want {
		for w := range want[v] {
			if got[v][w] != want[v][w] {
				t.Fatalf("d(%d,%d): frontier %d, sequential %d", v, w, got[v][w], want[v][w])
			}
		}
	}
}

// TestFrontierCtxCanceled: a pre-canceled context aborts both kernels with a
// context error instead of finishing the traversal.
func TestFrontierCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := gen.Web(500, 3)
	dist := make([]int32, g.NumNodes())
	if err := FrontierDistancesCtx(ctx, g, 0, dist, 4, nil); err == nil {
		t.Fatal("FrontierDistancesCtx: expected a context error")
	}
	rng := rand.New(rand.NewSource(1))
	wg := reweight(g, 1, 9, rng)
	if err := WFrontierDistancesCtx(ctx, wg, false, 0, dist, 4, nil); err == nil {
		t.Fatal("WFrontierDistancesCtx: expected a context error")
	}
}

// TestAccumulateLanes compares the branch-avoiding lane accumulator against
// the obvious branchy loop on random masks, including lane counts below the
// full 64-bit width.
func TestAccumulateLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		lanes := rng.Intn(MSBFSWidth) + 1
		mask := rng.Uint64()
		if lanes < 64 {
			mask &= (1 << uint(lanes)) - 1
		}
		d := int64(rng.Intn(1000))
		got := make([]int64, lanes)
		want := make([]int64, lanes)
		for i := range want {
			want[i] = int64(rng.Intn(100))
			got[i] = want[i]
		}
		AccumulateLanes(got, mask, d)
		for lane := range want {
			if mask&(1<<uint(lane)) != 0 {
				want[lane] += d
			}
		}
		for lane := range want {
			if got[lane] != want[lane] {
				t.Fatalf("trial %d lane %d (mask %#x d %d): branchless %d, branchy %d",
					trial, lane, mask, d, got[lane], want[lane])
			}
		}
	}
}

// TestNzb pins the nonzero-bit helper the branch-avoiding rewrites lean on.
func TestNzb(t *testing.T) {
	cases := []struct {
		x    uint64
		want uint64
	}{
		{0, 0}, {1, 1}, {2, 1}, {1 << 63, 1}, {^uint64(0), 1}, {0xdeadbeef, 1},
	}
	for _, c := range cases {
		if got := nzb(c.x); got != c.want {
			t.Fatalf("nzb(%#x) = %d, want %d", c.x, got, c.want)
		}
	}
}

// TestBranchlessCommitMatchesBranchy property-checks the scalar update the
// multi-source commit loop performs per node against an if-based reference:
// the partial-lane counter delta and the full-saturation detector must agree
// for every (old, arriving, active) triple.
func TestBranchlessCommitMatchesBranchy(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 5000; trial++ {
		lanes := rng.Intn(MSBFSWidth) + 1
		var active uint64
		if lanes == 64 {
			active = ^uint64(0)
		} else {
			active = (1 << uint(lanes)) - 1
		}
		old := rng.Uint64() & active
		nw := rng.Uint64() & active &^ old
		now := old | nw

		// Branch-avoiding form (mirrors msbfs.go).
		wasSeen := nzb(old)
		notFull := nzb(now ^ active)
		deltaBranchless := int((wasSeen^1)&notFull) - int(wasSeen&(notFull^1))
		fullDiffContribution := nw ^ active

		// Branchy reference: the counter tracks nodes that are seen by some
		// lane but not yet all lanes.
		deltaBranchy := 0
		if old == 0 && now != active {
			deltaBranchy = 1
		} else if old != 0 && now == active {
			deltaBranchy = -1
		}
		if deltaBranchless != deltaBranchy {
			t.Fatalf("old=%#x nw=%#x active=%#x: branchless delta %d, branchy %d",
				old, nw, active, deltaBranchless, deltaBranchy)
		}
		// fullDiff accumulates nw^active; it is zero across a level exactly
		// when every commit arrived with the full mask.
		if (fullDiffContribution == 0) != (nw == active) {
			t.Fatalf("old=%#x nw=%#x active=%#x: fullDiff contribution inconsistent", old, nw, active)
		}
	}
}

// TestMultiSourceFarnessMatchesExact runs the branchless multi-source kernel
// end to end against per-source BFS sums on each family — the equivalence
// test for the branch-avoiding visit-loop rewrites.
func TestMultiSourceFarnessMatchesExact(t *testing.T) {
	for _, fam := range genFamilies {
		t.Run(fam.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(61))
			g := fam.build(600, 47)
			n := g.NumNodes()
			batch := randomBatch(rng, n)
			_, far := MultiSourceFarness(g, batch)
			dist := make([]int32, n)
			for lane, src := range batch {
				Distances(g, src, dist, nil)
				sum, _ := Sum(dist)
				if far[lane] != sum {
					t.Fatalf("%s lane %d (src %d): batched farness %d, per-source %d",
						fam.name, lane, src, far[lane], sum)
				}
			}
		})
	}
}
