// Package bfs provides the traversal kernels of the system: plain and
// direction-optimising breadth-first search on unweighted graphs, and Dial's
// bucket-queue shortest paths on the integer-weighted graphs produced by
// chain contraction. All kernels write into caller-provided distance buffers
// so that the per-source parallel drivers can reuse scratch per worker.
package bfs

import (
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/queue"
)

// Unreached marks nodes not reached by a traversal.
const Unreached int32 = -1

// Fill sets every element of dist to Unreached. Kernels call it themselves;
// it is exported for callers that compose partial traversals.
func Fill(dist []int32) {
	for i := range dist {
		dist[i] = Unreached
	}
}

// interruptEvery is how many queue pops a per-source kernel processes
// between polls of its done channel. Coarse enough that the poll vanishes in
// the edge-scan cost, fine enough that cancellation lands within a fraction
// of a millisecond even on large graphs.
const interruptEvery = 2048

// Distances runs a BFS from src over g, filling dist with hop counts
// (Unreached for unreachable nodes). dist must have length g.NumNodes().
// The scratch queue may be nil, in which case one is allocated.
func Distances(g *graph.Graph, src graph.NodeID, dist []int32, q *queue.FIFO) {
	distancesDone(g, src, dist, q, nil)
}

// distancesDone is the BFS kernel with an optional interruption channel: a
// nil done never interrupts; a fired done makes the kernel return early,
// leaving dist partial (callers discard it).
func distancesDone(g *graph.Graph, src graph.NodeID, dist []int32, q *queue.FIFO, done <-chan struct{}) {
	Fill(dist)
	if q == nil {
		q = queue.NewFIFO(g.NumNodes())
	} else {
		q.Reset()
	}
	dist[src] = 0
	q.Push(src)
	budget := interruptEvery
	for !q.Empty() {
		if budget--; budget == 0 {
			if par.Interrupted(done) {
				return
			}
			budget = interruptEvery
		}
		u := q.Pop()
		du := dist[u]
		for _, v := range g.Neighbors(u) {
			if dist[v] == Unreached {
				dist[v] = du + 1
				q.Push(v)
			}
		}
	}
}

// Scratch bundles the per-worker reusable state for weighted traversals.
type Scratch struct {
	Dist []int32
	Q    *queue.FIFO
	B    *queue.Bucket
	// Direction-optimising frontier state (bitset words + two frontier
	// buffers), allocated lazily on first hybrid traversal and pooled across
	// sources like the rest of the scratch.
	front          []uint64
	frontier, spare []graph.NodeID
}

// hybridState returns the pooled direction-optimising buffers sized for an
// n-node graph, growing them on first use or when a larger graph shows up.
// The bitset words are returned zeroed (the kernel clears the bits it sets).
func (s *Scratch) hybridState(n int) (front []uint64, frontier, spare []graph.NodeID) {
	words := (n + 63) / 64
	if len(s.front) < words {
		s.front = make([]uint64, words)
	}
	if cap(s.frontier) < n {
		s.frontier = make([]graph.NodeID, 0, n)
		s.spare = make([]graph.NodeID, 0, n)
	}
	return s.front, s.frontier[:0], s.spare[:0]
}

// NewScratch allocates traversal scratch for an n-node graph whose edge
// weights do not exceed maxWeight.
func NewScratch(n int, maxWeight int32) *Scratch {
	return &Scratch{
		Dist: make([]int32, n),
		Q:    queue.NewFIFO(n),
		B:    queue.NewBucket(maxWeight),
	}
}

// WDistances runs Dial's algorithm from src over the weighted graph g,
// filling dist with shortest-path lengths. For all-weights-one graphs it is
// equivalent to BFS (and BFS should be preferred; see WDistancesAuto).
// dist must have length g.NumNodes(); b must have been created with at least
// the graph's maximum edge weight.
func WDistances(g *graph.WGraph, src graph.NodeID, dist []int32, b *queue.Bucket) {
	wDistancesDone(g, src, dist, b, nil)
}

// wDistancesDone is the Dial kernel with an optional interruption channel
// (see distancesDone).
func wDistancesDone(g *graph.WGraph, src graph.NodeID, dist []int32, b *queue.Bucket, done <-chan struct{}) {
	Fill(dist)
	if b == nil {
		b = queue.NewBucket(g.MaxWeight())
	} else {
		b.Reset()
	}
	dist[src] = 0
	b.Push(src, 0)
	budget := interruptEvery
	for !b.Empty() {
		if budget--; budget == 0 {
			if par.Interrupted(done) {
				return
			}
			budget = interruptEvery
		}
		u, du := b.Pop()
		if dist[u] != du {
			continue // stale entry superseded by a shorter path
		}
		nbrs := g.Neighbors(u)
		ws := g.Weights(u)
		for i, v := range nbrs {
			nd := du + ws[i]
			if dist[v] == Unreached || nd < dist[v] {
				dist[v] = nd
				b.Push(v, nd)
			}
		}
	}
}

// WDistancesBFS runs plain BFS over a weighted graph whose weights are all
// 1; callers guarantee the precondition (see graph.WGraph.Unweighted).
func WDistancesBFS(g *graph.WGraph, src graph.NodeID, dist []int32, q *queue.FIFO) {
	wDistancesBFSDone(g, src, dist, q, nil)
}

func wDistancesBFSDone(g *graph.WGraph, src graph.NodeID, dist []int32, q *queue.FIFO, done <-chan struct{}) {
	Fill(dist)
	if q == nil {
		q = queue.NewFIFO(g.NumNodes())
	} else {
		q.Reset()
	}
	dist[src] = 0
	q.Push(src)
	budget := interruptEvery
	for !q.Empty() {
		if budget--; budget == 0 {
			if par.Interrupted(done) {
				return
			}
			budget = interruptEvery
		}
		u := q.Pop()
		du := dist[u]
		for _, v := range g.Neighbors(u) {
			if dist[v] == Unreached {
				dist[v] = du + 1
				q.Push(v)
			}
		}
	}
}

// WDistancesAuto dispatches to BFS when the graph is unweighted (detected
// once by the caller and passed in) and Dial otherwise.
func WDistancesAuto(g *graph.WGraph, unweighted bool, src graph.NodeID, s *Scratch) {
	wDistancesAutoDone(g, unweighted, src, s, nil)
}

func wDistancesAutoDone(g *graph.WGraph, unweighted bool, src graph.NodeID, s *Scratch, done <-chan struct{}) {
	if unweighted {
		wDistancesBFSDone(g, src, s.Dist, s.Q, done)
	} else {
		wDistancesDone(g, src, s.Dist, s.B, done)
	}
}

// Eccentricity returns the largest finite distance in dist, i.e. the
// eccentricity of the traversal's source within its component.
func Eccentricity(dist []int32) int32 {
	var ecc int32
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Sum returns the sum of all finite distances in dist — the farness of the
// source restricted to its component — and the count of reached nodes
// (including the source itself).
func Sum(dist []int32) (sum int64, reached int) {
	for _, d := range dist {
		if d != Unreached {
			sum += int64(d)
			reached++
		}
	}
	return sum, reached
}
