package bfs

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/queue"
)

// genFamilies are the four generator families of the paper's evaluation;
// the multi-source kernels must agree with the per-source ones on each.
var genFamilies = []struct {
	name  string
	build func(n int, seed int64) *graph.Graph
}{
	{"web", gen.Web},
	{"social", gen.Social},
	{"community", gen.Community},
	{"road", gen.Road},
}

// randomBatch draws a batch of 1–64 sources, duplicates allowed (duplicate
// sampled sources cannot happen in the estimators, but the kernels document
// support for them).
func randomBatch(rng *rand.Rand, n int) []graph.NodeID {
	k := rng.Intn(MSBFSWidth) + 1
	batch := make([]graph.NodeID, k)
	for i := range batch {
		batch[i] = graph.NodeID(rng.Intn(n))
	}
	return batch
}

// reweight copies g into a weighted graph with random weights in [lo, hi].
func reweight(g *graph.Graph, lo, hi int32, rng *rand.Rand) *graph.WGraph {
	wb := graph.NewWBuilder(g.NumNodes())
	g.Edges(func(u, v graph.NodeID) {
		w := lo + rng.Int31n(hi-lo+1)
		if err := wb.AddEdge(u, v, w); err != nil {
			panic(err)
		}
	})
	return wb.Build()
}

// TestMultiSourceMatchesDistancesOnFamilies cross-checks the unweighted
// multi-source kernel against per-source BFS on all four generator
// families with random batch sizes.
func TestMultiSourceMatchesDistancesOnFamilies(t *testing.T) {
	for _, fam := range genFamilies {
		t.Run(fam.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 6; trial++ {
				n := rng.Intn(400) + 80
				g := fam.build(n, int64(trial)+11)
				n = g.NumNodes()
				batch := randomBatch(rng, n)
				rows := make([][]int32, len(batch))
				for i := range rows {
					rows[i] = make([]int32, n)
					Fill(rows[i])
				}
				MultiSource(g, batch, func(v graph.NodeID, lane int, d int32) {
					if rows[lane][v] != Unreached {
						t.Fatalf("duplicate visit lane %d node %d", lane, v)
					}
					rows[lane][v] = d
				})
				want := make([]int32, n)
				for lane, s := range batch {
					Distances(g, s, want, nil)
					for v := 0; v < n; v++ {
						if rows[lane][v] != want[v] {
							t.Fatalf("%s n=%d lane=%d (src %d) node %d: batched %d, per-source %d",
								fam.name, n, lane, s, v, rows[lane][v], want[v])
						}
					}
				}
			}
		})
	}
}

// TestMultiSourceWMatchesWDistances cross-checks the lane-masked Dial
// kernel against per-source Dial on randomly weighted versions of the four
// families, including duplicate sources, plus the all-weights-one and
// above-bucketable-fallback paths via MultiSourceWRows.
func TestMultiSourceWMatchesWDistances(t *testing.T) {
	weightRanges := []struct {
		name   string
		lo, hi int32
	}{
		{"unit", 1, 1},
		{"small", 1, 7},
		{"wide", 1, 60},
		{"fallback", MSMaxBucketWeight, MSMaxBucketWeight + 80}, // forces per-source Dial
	}
	for _, fam := range genFamilies {
		for _, wr := range weightRanges {
			t.Run(fam.name+"/"+wr.name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(13))
				for trial := 0; trial < 4; trial++ {
					g := fam.build(rng.Intn(300)+60, int64(trial)+31)
					wg := reweight(g, wr.lo, wr.hi, rng)
					n := wg.NumNodes()
					batch := randomBatch(rng, n)
					batch[0] = batch[len(batch)-1] // ensure a duplicate source when len > 1
					rows := make([][]int32, len(batch))
					for i := range rows {
						rows[i] = make([]int32, n)
					}
					s := NewMSScratch(n, wg.MaxWeight())
					MultiSourceWRows(wg, wg.Unweighted(), batch, s, rows)
					want := make([]int32, n)
					bq := queue.NewBucket(wg.MaxWeight())
					for lane, src := range batch {
						WDistances(wg, src, want, bq)
						for v := 0; v < n; v++ {
							if rows[lane][v] != want[v] {
								t.Fatalf("%s/%s lane=%d (src %d) node %d: batched %d, per-source %d",
									fam.name, wr.name, lane, src, v, rows[lane][v], want[v])
							}
						}
					}
				}
			})
		}
	}
}

// TestMultiSourceWVisitOnce checks the exactly-once visit contract of the
// masked-Dial kernel directly (MultiSourceWRows would hide double visits).
func TestMultiSourceWVisitOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gen.Community(250, 9)
	wg := reweight(g, 1, 9, rng)
	batch := randomBatch(rng, wg.NumNodes())
	seen := make(map[[2]int32]bool)
	MultiSourceW(wg, batch, func(v graph.NodeID, lane int, d int32) {
		key := [2]int32{int32(lane), v}
		if seen[key] {
			t.Fatalf("duplicate visit for lane %d node %d", lane, v)
		}
		seen[key] = true
	})
	dist := make([]int32, wg.NumNodes())
	bq := queue.NewBucket(wg.MaxWeight())
	for lane, src := range batch {
		WDistances(wg, src, dist, bq)
		for v := 0; v < wg.NumNodes(); v++ {
			if want := dist[v] != Unreached; seen[[2]int32{int32(lane), int32(v)}] != want {
				t.Fatalf("lane %d node %d: visited=%v, reachable=%v", lane, v, !want, want)
			}
		}
	}
}

// TestRunBatchesMatchesPerSource exercises the parallel drivers end to end:
// many batches, several workers, scratch reuse across batches.
func TestRunBatchesMatchesPerSource(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := gen.Social(900, 3)
	n := g.NumNodes()
	sources := make([]graph.NodeID, 200) // 4 batches
	for i := range sources {
		sources[i] = graph.NodeID(rng.Intn(n))
	}
	got := make([][]int32, len(sources))
	RunBatches(g, sources, 4, func(_, base int, batch []graph.NodeID, rows [][]int32) {
		for lane := range batch {
			got[base+lane] = append([]int32(nil), rows[lane]...)
		}
	})
	want := make([]int32, n)
	for i, s := range sources {
		Distances(g, s, want, nil)
		for v := 0; v < n; v++ {
			if got[i][v] != want[v] {
				t.Fatalf("source %d node %d: driver %d, per-source %d", i, v, got[i][v], want[v])
			}
		}
	}

	wg := reweight(g, 1, 5, rng)
	gotW := make([][]int32, len(sources))
	RunBatchesW(wg, sources, 3, func(_, base int, batch []graph.NodeID, rows [][]int32) {
		for lane := range batch {
			gotW[base+lane] = append([]int32(nil), rows[lane]...)
		}
	})
	bq := queue.NewBucket(wg.MaxWeight())
	for i, s := range sources {
		WDistances(wg, s, want, bq)
		for v := 0; v < n; v++ {
			if gotW[i][v] != want[v] {
				t.Fatalf("weighted source %d node %d: driver %d, per-source %d", i, v, gotW[i][v], want[v])
			}
		}
	}
}
