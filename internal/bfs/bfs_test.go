package bfs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		_ = b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

func randomConnected(rng *rand.Rand, n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(int32(rng.Intn(i)), int32(i)) // random spanning tree
	}
	extra := rng.Intn(2 * n)
	for i := 0; i < extra; i++ {
		_ = b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.Build()
}

func TestDistancesPath(t *testing.T) {
	g := path(6)
	dist := make([]int32, 6)
	Distances(g, 0, dist, nil)
	for i := int32(0); i < 6; i++ {
		if dist[i] != i {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], i)
		}
	}
	Distances(g, 3, dist, nil)
	want := []int32{3, 2, 1, 0, 1, 2}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
}

func TestDistancesUnreachable(t *testing.T) {
	g := graph.FromEdges(4, [][2]int32{{0, 1}, {2, 3}})
	dist := make([]int32, 4)
	Distances(g, 0, dist, nil)
	if dist[2] != Unreached || dist[3] != Unreached {
		t.Error("nodes in other component should be Unreached")
	}
	sum, reached := Sum(dist)
	if sum != 1 || reached != 2 {
		t.Errorf("Sum = %d,%d want 1,2", sum, reached)
	}
}

func TestWDistancesWeightedPath(t *testing.T) {
	// 0 -5- 1 -1- 2, plus direct 0 -7- 2: shortest 0→2 is 6.
	g := graph.FromWeightedEdges(3, [][3]int32{{0, 1, 5}, {1, 2, 1}, {0, 2, 7}})
	dist := make([]int32, 3)
	WDistances(g, 0, dist, nil)
	if dist[0] != 0 || dist[1] != 5 || dist[2] != 6 {
		t.Fatalf("dist = %v, want [0 5 6]", dist)
	}
}

func TestWDistancesEqualsBFSOnUnweighted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomConnected(rng, 50)
	wg := g.ToWeighted()
	d1 := make([]int32, 50)
	d2 := make([]int32, 50)
	Distances(g, 13, d1, nil)
	WDistances(wg, 13, d2, nil)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("dist[%d]: BFS=%d Dial=%d", i, d1[i], d2[i])
		}
	}
	WDistancesBFS(wg, 13, d2, nil)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("WDistancesBFS dist[%d]: %d vs %d", i, d2[i], d1[i])
		}
	}
}

// Property: Dial distances satisfy the triangle condition over every edge
// and match a reference Bellman-Ford on random weighted graphs.
func TestWDistancesAgainstBellmanFord(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(25) + 2
		b := graph.NewWBuilder(n)
		for i := 1; i < n; i++ {
			_ = b.AddEdge(int32(rng.Intn(i)), int32(i), int32(rng.Intn(6)+1))
		}
		for i := 0; i < n; i++ {
			_ = b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), int32(rng.Intn(6)+1))
		}
		g := b.Build()
		src := int32(rng.Intn(n))
		dist := make([]int32, n)
		WDistances(g, src, dist, nil)

		// Bellman-Ford reference.
		const inf = int32(1 << 30)
		ref := make([]int32, n)
		for i := range ref {
			ref[i] = inf
		}
		ref[src] = 0
		for it := 0; it < n; it++ {
			changed := false
			g.Edges(func(u, v int32, w int32) {
				if ref[u]+w < ref[v] {
					ref[v] = ref[u] + w
					changed = true
				}
				if ref[v]+w < ref[u] {
					ref[u] = ref[v] + w
					changed = true
				}
			})
			if !changed {
				break
			}
		}
		for i := range ref {
			want := ref[i]
			if want == inf {
				want = Unreached
			}
			if dist[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: direction-optimising BFS agrees with plain BFS, with the
// scratch reused across traversals the way the per-source drivers reuse it.
func TestHybridDistancesMatchesBFS(t *testing.T) {
	s := &Scratch{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(120) + 2
		g := randomConnected(rng, n)
		src := int32(rng.Intn(n))
		d1 := make([]int32, n)
		d2 := make([]int32, n)
		Distances(g, src, d1, nil)
		HybridDistances(g, src, d2, s)
		for i := range d1 {
			if d1[i] != d2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHybridDistancesDenseBottomUp(t *testing.T) {
	// A dense graph with a hub-heavy frontier drives mf past mu/alpha on the
	// first level, so the pull branch actually runs.
	rng := rand.New(rand.NewSource(3))
	n := 60
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(int32(rng.Intn(i)), int32(i))
	}
	for i := 0; i < 6*n; i++ {
		_ = b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	g := b.Build()
	d1 := make([]int32, n)
	d2 := make([]int32, n)
	Distances(g, 0, d1, nil)
	HybridDistances(g, 0, d2, nil)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("dist[%d]: BFS=%d hybrid=%d", i, d1[i], d2[i])
		}
	}
}

// WHybridDistancesAuto matches WDistancesAuto on both unweighted and
// weighted graphs (the latter shares the Dial path).
func TestWHybridAutoMatchesWAuto(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 90
	g := randomConnected(rng, n)
	wg := g.ToWeighted()
	s1 := NewScratch(n, wg.MaxWeight())
	s2 := NewScratch(n, wg.MaxWeight())
	for src := int32(0); src < 10; src++ {
		WDistancesAuto(wg, true, src, s1)
		WHybridDistancesAuto(wg, true, src, s2)
		for i := range s1.Dist {
			if s1.Dist[i] != s2.Dist[i] {
				t.Fatalf("src %d dist[%d]: auto=%d hybrid=%d", src, i, s1.Dist[i], s2.Dist[i])
			}
		}
	}
}

func TestExactFarnessPath(t *testing.T) {
	// Path 0-1-2-3: farness = [6,4,4,6].
	g := path(4)
	far := ExactFarness(g, 2)
	want := []float64{6, 4, 4, 6}
	for i := range want {
		if far[i] != want[i] {
			t.Errorf("farness[%d] = %v, want %v", i, far[i], want[i])
		}
	}
}

func TestExactFarnessWMatchesUnweighted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomConnected(rng, 40)
	f1 := ExactFarness(g, 3)
	f2 := ExactFarnessW(g.ToWeighted(), 3)
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("farness[%d]: %v vs %v", i, f1[i], f2[i])
		}
	}
}

func TestEccentricity(t *testing.T) {
	g := path(5)
	dist := make([]int32, 5)
	Distances(g, 0, dist, nil)
	if Eccentricity(dist) != 4 {
		t.Errorf("Eccentricity = %d, want 4", Eccentricity(dist))
	}
}

func TestAllPairsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomConnected(rng, 30)
	ap := AllPairs(g)
	for u := 0; u < 30; u++ {
		for v := 0; v < 30; v++ {
			if ap[u][v] != ap[v][u] {
				t.Fatalf("asymmetric distances %d,%d", u, v)
			}
		}
		if ap[u][u] != 0 {
			t.Fatalf("d(%d,%d) != 0", u, u)
		}
	}
}
