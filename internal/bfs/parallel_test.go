package bfs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// Property: level-parallel BFS matches sequential BFS for any worker count.
func TestParallelDistancesMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) + 2
		g := randomConnected(rng, n)
		src := graph.NodeID(rng.Intn(n))
		want := make([]int32, n)
		Distances(g, src, want, nil)
		for _, workers := range []int{1, 2, 5} {
			got := make([]int32, n)
			ParallelDistances(g, src, got, workers)
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelDistancesLargeFrontier(t *testing.T) {
	// A broad shallow graph forces the parallel branch (frontier >> 4*workers).
	rng := rand.New(rand.NewSource(7))
	n := 5000
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(0, graph.NodeID(i)) // star
	}
	for i := 0; i < 3*n; i++ {
		_ = b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g := b.Build()
	want := make([]int32, n)
	Distances(g, 17, want, nil)
	got := make([]int32, n)
	ParallelDistances(g, 17, got, 4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dist[%d]: parallel %d, sequential %d", i, got[i], want[i])
		}
	}
}

func TestParallelExactFarness(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomConnected(rng, 200)
	sources := []graph.NodeID{0, 50, 199}
	got := ParallelExactFarness(g, sources, 3)
	all := ExactFarness(g, 2)
	for i, s := range sources {
		if float64(got[i]) != all[s] {
			t.Fatalf("source %d: %d vs %v", s, got[i], all[s])
		}
	}
}

func BenchmarkParallelVsSequentialBFS(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnected(rng, 50000)
	dist := make([]int32, g.NumNodes())
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Distances(g, 0, dist, nil)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ParallelDistances(g, 0, dist, 0)
		}
	})
}
