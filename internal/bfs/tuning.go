package bfs

// DirectionTuning bundles the direction-optimisation (Beamer push/pull)
// switching parameters shared by every traversal kernel in this package —
// the per-source hybrid BFS (hybrid.go), the 64-lane multi-source pull path
// (msbfs.go) and the frontier-parallel edge-map engine (frontier.go) all
// consult the same rule through pullLevel, so one tuning decision governs
// them all. This is the single home of these constants; kernels must not
// copy them.
//
// The rule: switch a level to bottom-up ("pull") when the frontier's
// out-edge count mf exceeds mu/Alpha (mu = unexplored directed edges), the
// frontier holds at least n/Beta nodes, and mf exceeds PullFloor·n.
//
//   - Alpha: Beamer et al. use alpha = 14, tuned on suites with average
//     degree 16+ where a pull sweep's scan-until-hit exits quickly. On the
//     sparse graphs this repo's generator families model (average degree
//     3–6) the per-node scan is longer, so pull only pays once the
//     frontier's out-edges approach the unexplored-edge count — level traces
//     across all four families put the break-even near mu/4, and alpha = 4
//     picks exactly the levels where pull wins while never firing on
//     road-like graphs.
//   - Beta: flipping back to push when the frontier has fewer than n/Beta
//     nodes keeps the O(n) pull sweep off narrow waves and every BFS tail,
//     where mu decays to zero and the alpha test fires vacuously.
//   - PullFloor: the absolute cost floor of a pull level in units of n — the
//     sweep iterates every node, so pull can only beat push when the
//     frontier's out-edge count exceeds a few multiples of n. Web-like
//     graphs with average degree ~3 have wide levels whose mf barely reaches
//     n; the relative alpha test alone would flip them to pull and lose.
//
// All three tests are stateless in (mf, mu, frontier), so kernels flip back
// to push the moment the frontier's edge mass drops instead of waiting out a
// hysteresis window.
type DirectionTuning struct {
	Alpha     int64
	Beta      int64
	PullFloor int64
}

// DefaultTuning is the package-wide tuning every kernel uses; see the
// DirectionTuning doc comment for the rationale behind each value.
var DefaultTuning = DirectionTuning{Alpha: 4, Beta: 24, PullFloor: 2}

// PullLevel decides whether the next level of a traversal with frontier
// out-edge mass mf, unexplored edge mass mu and the given frontier size
// should run bottom-up.
func (t DirectionTuning) PullLevel(mf, mu int64, frontierLen, n int) bool {
	return mf > mu/t.Alpha &&
		int64(frontierLen)*t.Beta >= int64(n) &&
		mf > t.PullFloor*int64(n)
}

// pullLevel is the kernels' shorthand for DefaultTuning.PullLevel.
func pullLevel(mf, mu int64, frontierLen, n int) bool {
	return DefaultTuning.PullLevel(mf, mu, frontierLen, n)
}
