package bfs

import (
	"context"

	"repro/internal/graph"
	"repro/internal/par"
)

// BatchHandler consumes one completed multi-source batch. base is the index
// of batch[0] in the driver's source list, batch the ≤64 sources of this
// sweep, and rows[lane][v] the distance from batch[lane] to v (Unreached
// where unreachable). Handlers run concurrently from up to `workers`
// goroutines — one invocation per batch, identified by a stable worker
// index for callers that keep their own per-worker state. rows alias the
// worker's scratch and are only valid for the duration of the call.
type BatchHandler func(worker, base int, batch []graph.NodeID, rows [][]int32)

// batchScratch is the per-worker reusable state of the batch drivers: one
// multi-source scratch plus a 64-row distance slab, allocated once per
// worker and reused for every batch the worker claims.
type batchScratch struct {
	ms   *MSScratch
	slab []int32
	rows [][]int32
}

func newBatchScratch(n int, maxWeight int32) *batchScratch {
	b := &batchScratch{
		ms:   NewMSScratch(n, maxWeight),
		slab: make([]int32, MSBFSWidth*n),
		rows: make([][]int32, MSBFSWidth),
	}
	for i := range b.rows {
		b.rows[i] = b.slab[i*n : (i+1)*n : (i+1)*n]
	}
	return b
}

// numBatches returns how many ≤64-wide batches k sources split into.
func numBatches(k int) int { return (k + MSBFSWidth - 1) / MSBFSWidth }

// runBatches is the shared fan-out: split sources into ≤64-wide batches,
// hand batches to workers with dynamic scheduling (batch costs vary with
// how much the lanes' frontiers overlap), and run sweep+handle per batch
// on the worker's own scratch. Cancellation lands at two granularities:
// workers stop claiming batches once ctx is done, and the running sweep's
// kernel bails at its next frontier level (the scratch carries ctx.Done()).
// A non-nil error means the handler may have seen only a subset of batches
// and the caller must discard its accumulation.
func runBatches(ctx context.Context, n int, sources []graph.NodeID, workers int, maxWeight int32,
	sweep func(s *batchScratch, batch []graph.NodeID, rows [][]int32),
	handle BatchHandler) error {
	if len(sources) == 0 {
		return par.CtxErr(ctx)
	}
	nb := numBatches(len(sources))
	workers = par.Workers(workers)
	if workers > nb {
		workers = nb
	}
	done := ctx.Done()
	scratch := make([]*batchScratch, workers)
	for i := range scratch {
		scratch[i] = newBatchScratch(n, maxWeight)
		scratch[i].ms.SetDone(done)
	}
	return par.ForDynamicCtx(ctx, nb, workers, 1, func(worker, bi int) {
		base := bi * MSBFSWidth
		hi := base + MSBFSWidth
		if hi > len(sources) {
			hi = len(sources)
		}
		batch := sources[base:hi]
		s := scratch[worker]
		rows := s.rows[:len(batch)]
		sweep(s, batch, rows)
		if par.Interrupted(done) {
			return // rows are partial; don't hand them to the accumulator
		}
		handle(worker, base, batch, rows)
	})
}

// RunBatches traverses the unweighted graph g from every source using
// bit-parallel 64-wide multi-source sweeps fanned out across a worker
// pool. Per-worker scratch (lane-mask arrays, frontier buffers and the
// distance slab) is allocated once and reused across batches. This is the
// batched engine behind the estimators' TraversalBatched mode.
func RunBatches(g *graph.Graph, sources []graph.NodeID, workers int, handle BatchHandler) {
	_ = RunBatchesCtx(context.Background(), g, sources, workers, handle)
}

// RunBatchesCtx is RunBatches with cooperative cancellation: workers stop
// claiming batches once ctx is done and in-flight sweeps bail at their next
// frontier level. On a non-nil (par.ErrCanceled-wrapping) return the handler
// may have seen only a subset of batches; callers discard their
// accumulation.
func RunBatchesCtx(ctx context.Context, g *graph.Graph, sources []graph.NodeID, workers int, handle BatchHandler) error {
	n := g.NumNodes()
	return runBatches(ctx, n, sources, workers, 1, func(s *batchScratch, batch []graph.NodeID, rows [][]int32) {
		for lane := range batch {
			Fill(rows[lane])
		}
		MultiSourceInto(g, batch, s.ms, func(v graph.NodeID, lane int, d int32) {
			rows[lane][v] = d
		})
	}, handle)
}

// RunBatchesW is RunBatches over an integer-weighted graph (the reduced
// graphs chain contraction produces). Kernel selection follows
// MultiSourceWRows: level-synchronous sweeps when all weights are 1, the
// lane-masked Dial when the maximum weight is bucketable, and a per-source
// Dial fallback beyond MSMaxBucketWeight — the handler sees identical
// batch/rows shapes either way.
func RunBatchesW(g *graph.WGraph, sources []graph.NodeID, workers int, handle BatchHandler) {
	_ = RunBatchesWCtx(context.Background(), g, sources, workers, handle)
}

// RunBatchesWCtx is RunBatchesW with cooperative cancellation (see
// RunBatchesCtx for the contract).
func RunBatchesWCtx(ctx context.Context, g *graph.WGraph, sources []graph.NodeID, workers int, handle BatchHandler) error {
	n := g.NumNodes()
	unweighted := g.Unweighted()
	maxW := g.MaxWeight()
	return runBatches(ctx, n, sources, workers, maxW, func(s *batchScratch, batch []graph.NodeID, rows [][]int32) {
		MultiSourceWRows(g, unweighted, batch, s.ms, rows)
	}, handle)
}
