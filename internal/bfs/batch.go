package bfs

import (
	"context"
	"math/bits"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/par"
)

// BatchHandler consumes one completed multi-source batch. base is the index
// of batch[0] in the driver's source list, batch the ≤64 sources of this
// sweep, and rows[lane][v] the distance from batch[lane] to v (Unreached
// where unreachable). Handlers run concurrently from up to `workers`
// goroutines — one invocation per batch, identified by a stable worker
// index for callers that keep their own per-worker state. rows alias the
// worker's scratch and are only valid for the duration of the call.
type BatchHandler func(worker, base int, batch []graph.NodeID, rows [][]int32)

// batchScratch is the per-worker reusable state of the batch drivers: one
// multi-source scratch plus a 64-row distance slab, allocated once per
// worker and reused for every batch the worker claims.
type batchScratch struct {
	ms   *MSScratch
	slab []int32
	rows [][]int32
}

func newBatchScratch(n int, maxWeight int32) *batchScratch {
	b := &batchScratch{
		ms:   NewMSScratch(n, maxWeight),
		slab: make([]int32, MSBFSWidth*n),
		rows: make([][]int32, MSBFSWidth),
	}
	for i := range b.rows {
		b.rows[i] = b.slab[i*n : (i+1)*n : (i+1)*n]
	}
	return b
}

// numBatches returns how many ≤64-wide batches k sources split into.
func numBatches(k int) int { return (k + MSBFSWidth - 1) / MSBFSWidth }

// runBatches is the shared fan-out: split sources into ≤64-wide batches,
// hand batches to workers with dynamic scheduling (batch costs vary with
// how much the lanes' frontiers overlap), and run sweep+handle per batch
// on the worker's own scratch. Cancellation lands at two granularities:
// workers stop claiming batches once ctx is done, and the running sweep's
// kernel bails at its next frontier level (the scratch carries ctx.Done()).
// A non-nil error means the handler may have seen only a subset of batches
// and the caller must discard its accumulation.
func runBatches(ctx context.Context, n int, sources []graph.NodeID, workers int, maxWeight int32,
	sweep func(s *batchScratch, batch []graph.NodeID, rows [][]int32),
	handle BatchHandler) error {
	if len(sources) == 0 {
		return par.CtxErr(ctx)
	}
	if err := fault.Checkpoint(ctx, "bfs.batch"); err != nil {
		return err
	}
	nb := numBatches(len(sources))
	workers = par.Workers(workers)
	if workers > nb {
		workers = nb
	}
	done := ctx.Done()
	scratch := make([]*batchScratch, workers)
	for i := range scratch {
		scratch[i] = newBatchScratch(n, maxWeight)
		scratch[i].ms.SetDone(done)
	}
	return par.ForDynamicCtx(ctx, nb, workers, 1, func(worker, bi int) {
		base := bi * MSBFSWidth
		hi := base + MSBFSWidth
		if hi > len(sources) {
			hi = len(sources)
		}
		batch := sources[base:hi]
		s := scratch[worker]
		rows := s.rows[:len(batch)]
		sweep(s, batch, rows)
		if par.Interrupted(done) {
			return // rows are partial; don't hand them to the accumulator
		}
		handle(worker, base, batch, rows)
	})
}

// RunBatches traverses the unweighted graph g from every source using
// bit-parallel 64-wide multi-source sweeps fanned out across a worker
// pool. Per-worker scratch (lane-mask arrays, frontier buffers and the
// distance slab) is allocated once and reused across batches. This is the
// batched engine behind the estimators' TraversalBatched mode.
func RunBatches(g *graph.Graph, sources []graph.NodeID, workers int, handle BatchHandler) {
	_ = RunBatchesCtx(context.Background(), g, sources, workers, handle)
}

// maskRowFill returns a mask-level visitor that scatters distances into the
// per-lane rows, with a fast path for the fully merged mask (all k lanes
// arriving together) that walks the rows directly instead of decoding bits.
func maskRowFill(rows [][]int32, k int) func(v graph.NodeID, mask uint64, d int32) {
	full := fullMask(k)
	return func(v graph.NodeID, mask uint64, d int32) {
		if mask == full {
			for lane := 0; lane < k; lane++ {
				rows[lane][v] = d
			}
			return
		}
		for m := mask; m != 0; m &= m - 1 {
			rows[bits.TrailingZeros64(m)][v] = d
		}
	}
}

// fullMask is the bitmask with the low k lanes set.
func fullMask(k int) uint64 {
	if k >= MSBFSWidth {
		return ^uint64(0)
	}
	return uint64(1)<<uint(k) - 1
}

// RunBatchesCtx is RunBatches with cooperative cancellation: workers stop
// claiming batches once ctx is done and in-flight sweeps bail at their next
// frontier level. On a non-nil (par.ErrCanceled-wrapping) return the handler
// may have seen only a subset of batches; callers discard their
// accumulation.
func RunBatchesCtx(ctx context.Context, g *graph.Graph, sources []graph.NodeID, workers int, handle BatchHandler) error {
	n := g.NumNodes()
	return runBatches(ctx, n, sources, workers, 1, func(s *batchScratch, batch []graph.NodeID, rows [][]int32) {
		for lane := range batch {
			Fill(rows[lane])
		}
		MultiSourceMasksInto(g, batch, s.ms, maskRowFill(rows, len(batch)))
	}, handle)
}

// MaskHandler consumes the visit stream of a mask-granularity batch run:
// one call per (node, newly arrived lane set, distance) triple, identified
// by the worker that produced it and the batch's base index into the
// driver's source list. Handlers for different batches run concurrently;
// callers that accumulate should either use atomics for cross-batch cells
// or keep per-worker state (the worker index is stable).
type MaskHandler func(worker, base int, batch []graph.NodeID, v graph.NodeID, mask uint64, d int32)

// RunBatchesMaskCtx traverses the unweighted graph from every source with
// 64-wide multi-source sweeps like RunBatchesCtx, but streams mask-level
// visits to the handler instead of materialising per-lane distance rows —
// the right shape for pure accumulation (farness sums) where a merged-lane
// visit can be consumed as one d·popcount update instead of 64 row writes
// followed by 64 row scans. On a non-nil return the handler saw a partial
// visit stream and the caller must discard its accumulation.
func RunBatchesMaskCtx(ctx context.Context, g *graph.Graph, sources []graph.NodeID, workers int, handle MaskHandler) error {
	if len(sources) == 0 {
		return par.CtxErr(ctx)
	}
	nb := numBatches(len(sources))
	workers = par.Workers(workers)
	if workers > nb {
		workers = nb
	}
	done := ctx.Done()
	scratch := make([]*MSScratch, workers)
	for i := range scratch {
		scratch[i] = NewMSScratch(g.NumNodes(), 1)
		scratch[i].SetDone(done)
	}
	return par.ForDynamicCtx(ctx, nb, workers, 1, func(worker, bi int) {
		base := bi * MSBFSWidth
		hi := base + MSBFSWidth
		if hi > len(sources) {
			hi = len(sources)
		}
		batch := sources[base:hi]
		MultiSourceMasksInto(g, batch, scratch[worker], func(v graph.NodeID, mask uint64, d int32) {
			handle(worker, base, batch, v, mask, d)
		})
	})
}

// RunBatchesW is RunBatches over an integer-weighted graph (the reduced
// graphs chain contraction produces). Kernel selection follows
// MultiSourceWRows: level-synchronous sweeps when all weights are 1, the
// lane-masked Dial when the maximum weight is bucketable, and a per-source
// Dial fallback beyond MSMaxBucketWeight — the handler sees identical
// batch/rows shapes either way.
func RunBatchesW(g *graph.WGraph, sources []graph.NodeID, workers int, handle BatchHandler) {
	_ = RunBatchesWCtx(context.Background(), g, sources, workers, handle)
}

// RunBatchesWCtx is RunBatchesW with cooperative cancellation (see
// RunBatchesCtx for the contract).
func RunBatchesWCtx(ctx context.Context, g *graph.WGraph, sources []graph.NodeID, workers int, handle BatchHandler) error {
	n := g.NumNodes()
	unweighted := g.Unweighted()
	maxW := g.MaxWeight()
	return runBatches(ctx, n, sources, workers, maxW, func(s *batchScratch, batch []graph.NodeID, rows [][]int32) {
		MultiSourceWRows(g, unweighted, batch, s.ms, rows)
	}, handle)
}
