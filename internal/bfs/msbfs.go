package bfs

import (
	"math/bits"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/queue"
)

// MSBFSWidth is the number of sources one multi-source sweep carries — one
// bit lane per source.
const MSBFSWidth = 64

// MSScratch bundles the reusable state of the multi-source kernels so that
// batch drivers can run many sweeps without reallocating: the seen/cur/next
// lane-mask arrays and frontier buffers of the unweighted kernel, and the
// bucket ring of the weighted one. A scratch is sized for a node count and a
// maximum edge weight at construction and must not be shared between
// concurrent sweeps; the batch drivers keep one per worker.
type MSScratch struct {
	seen, cur, next []uint64
	frontier        []graph.NodeID
	touched         []graph.NodeID
	// Weighted (masked-Dial) state; allocated lazily on first weighted use.
	buckets    [][]msEntry
	pend       []uint64
	levelNodes []graph.NodeID
	// Fallback per-source Dial queue for weights beyond the bucketable
	// range; allocated lazily, regrown when a wider graph shows up.
	fb     *queue.Bucket
	fbMaxW int32
	// done, when non-nil, interrupts sweeps at frontier-level boundaries;
	// see SetDone.
	done <-chan struct{}
}

// SetDone installs an interruption channel (typically a ctx.Done()) polled by
// every kernel using this scratch at each frontier level or bucket drain.
// When the channel fires a sweep returns early with partial output, which
// callers must discard — the ctx-aware batch drivers do this by returning
// par.ErrCanceled from the whole fan-out. A nil channel (the default)
// disables interruption.
func (s *MSScratch) SetDone(done <-chan struct{}) { s.done = done }

// msEntry is one pending bucket-queue item: the lanes in mask may reach v at
// the bucket's distance.
type msEntry struct {
	v    graph.NodeID
	mask uint64
}

// NewMSScratch allocates multi-source scratch for n-node graphs whose edge
// weights do not exceed maxWeight (pass 1 for unweighted use).
func NewMSScratch(n int, maxWeight int32) *MSScratch {
	if maxWeight < 1 {
		maxWeight = 1
	}
	return &MSScratch{
		seen:     make([]uint64, n),
		cur:      make([]uint64, n),
		next:     make([]uint64, n),
		frontier: make([]graph.NodeID, 0, n),
		touched:  make([]graph.NodeID, 0, n),
		buckets:  make([][]msEntry, int(maxWeight)+1),
	}
}

// reset clears the lane-mask arrays for a fresh sweep over n nodes, growing
// the scratch if the graph is larger than any seen before.
func (s *MSScratch) reset(n int) {
	if len(s.seen) < n {
		s.seen = make([]uint64, n)
		s.cur = make([]uint64, n)
		s.next = make([]uint64, n)
		return
	}
	clear(s.seen[:n])
	clear(s.cur[:n])
	clear(s.next[:n])
}

// MultiSource runs a bit-parallel breadth-first search from up to 64
// sources simultaneously (the "more the merrier" technique: one uint64 per
// node carries one lane per source, so a single edge scan advances all
// sources at once). It calls visit(v, lane, d) exactly once per reached
// (source, node) pair with the hop distance d — including (s, s, 0).
//
// Sampling-based centrality wants exactly this access pattern: the k
// sampled sources all traverse the same graph, and batching them divides
// the number of edge scans by up to 64 on overlapping frontiers.
//
// The kernel is sequential by design; callers parallelise across batches
// (see RunBatches and MultiSourceFarness).
func MultiSource(g *graph.Graph, sources []graph.NodeID, visit func(v graph.NodeID, lane int, d int32)) {
	MultiSourceInto(g, sources, NewMSScratch(g.NumNodes(), 1), visit)
}

// MultiSourceInto is MultiSource with caller-provided scratch, the form the
// batch drivers use to avoid per-batch allocation.
func MultiSourceInto(g *graph.Graph, sources []graph.NodeID, s *MSScratch, visit func(v graph.NodeID, lane int, d int32)) {
	offsets, adj := g.CSR()
	msLevelSync(offsets, adj, sources, s, expandMask(visit))
}

// MultiSourceMasksInto is MultiSourceInto at mask granularity: visit is
// called with the set of lanes that reach v at distance d, packed as a
// bitmask, instead of once per lane. When lane frontiers coincide — the
// whole point of proximity-clustered batching — one call replaces up to 64,
// which lets accumulating handlers add d·popcount(mask) instead of looping
// lanes. Expanding every mask bit-by-bit recovers exactly the per-lane visit
// sequence of MultiSourceInto.
func MultiSourceMasksInto(g *graph.Graph, sources []graph.NodeID, s *MSScratch, visit func(v graph.NodeID, mask uint64, d int32)) {
	offsets, adj := g.CSR()
	msLevelSync(offsets, adj, sources, s, visit)
}

// expandMask adapts a per-lane visitor to the mask-level kernel interface.
func expandMask(visit func(v graph.NodeID, lane int, d int32)) func(v graph.NodeID, mask uint64, d int32) {
	return func(v graph.NodeID, mask uint64, d int32) {
		for m := mask; m != 0; m &= m - 1 {
			visit(v, bits.TrailingZeros64(m), d)
		}
	}
}

// msLevelSync is the level-synchronous bit-parallel kernel over raw CSR
// arrays, shared by the simple-graph and all-weights-one contracted-graph
// entry points. Levels run top-down (push) until the frontier's out-edges
// outgrow the unexplored edges by the alpha heuristic, then flip to
// lane-masked bottom-up (pull) sweeps: every node missing at least one lane
// scans its own neighbours, ORing in their current frontier masks, with an
// early exit once all missing lanes are found. The per-(node, lane) visit
// set of a level is the union over frontier neighbours either way, so push
// and pull levels produce identical visits — only the scan order inside a
// level differs, which the accumulating callers are insensitive to.
//
// Two shared-frontier fast paths exploit overlapping lanes (clustered
// batches make overlap the common case, see core's Options.Batching):
//
//   - Saturated rows are skipped: a push edge whose head has already seen
//     every lane the tail carries is dropped before touching the next-mask
//     array, and pull rows with no missing lanes were always skipped. After
//     lanes merge, re-expansions of the already-covered region cost one seen
//     load per edge instead of a read-modify-write per edge.
//
//   - Once every lane travels in one shared frontier — every frontier mask
//     equals the full lane set and no node is partially seen — the sweep
//     drops the mask bookkeeping entirely and proceeds as a single BFS over
//     the unseen region (msMergedTail): each adjacency row is expanded once
//     and the full mask is handed to visit in one call per node, the "64
//     BFSes for the price of one" regime of Wang et al.'s cluster-BFS.
func msLevelSync(offsets []int64, adj []graph.NodeID, sources []graph.NodeID, s *MSScratch, visit func(v graph.NodeID, mask uint64, d int32)) {
	if len(sources) == 0 {
		return
	}
	if len(sources) > MSBFSWidth {
		panic("bfs: MultiSource supports at most 64 sources per batch")
	}
	n := len(offsets) - 1
	s.reset(n)
	seen, cur, next := s.seen, s.cur, s.next
	frontier := s.frontier[:0]
	var active uint64 // union of all source lanes: the "fully seen" mask
	var mf int64      // out-edges of the current frontier
	for lane, src := range sources {
		// Duplicate source nodes share one frontier slot (their lanes ride
		// the same mask) but each lane still gets its zero-distance visit.
		if seen[src] == 0 {
			frontier = append(frontier, src)
			mf += offsets[src+1] - offsets[src]
		}
		seen[src] |= uint64(1) << uint(lane)
		active |= uint64(1) << uint(lane)
	}
	// partial counts nodes seen by some but not all lanes; zero is one half
	// of the merged-frontier condition.
	partial := 0
	for _, src := range frontier {
		cur[src] = seen[src]
		visit(src, seen[src], 0)
		if seen[src] != active {
			partial++
		}
	}

	mu := int64(len(adj)) - mf
	touched := s.touched[:0]
	for d := int32(1); len(frontier) > 0; d++ {
		if par.Interrupted(s.done) {
			break
		}
		// Same direction rule as the per-source hybrid kernel (see
		// pullLevel); here mf counts the union frontier's out-edges, which
		// with up to 64 overlapping lanes crosses the pull thresholds far
		// more often — and a single shared pull sweep serves all lanes.
		bottomUp := pullLevel(mf, mu, len(frontier), n)
		var nmf int64
		// fullDiff accumulates nw ^ active over the level's commits: zero
		// afterwards means every commit carried the full lane set — the
		// branch-avoiding form of the old per-commit allFull test.
		var fullDiff uint64
		if bottomUp {
			// Pull: nodes missing lanes gather them from their neighbours'
			// frontier masks. touched receives the new frontier so the two
			// buffers alternate.
			newFrontier := touched[:0]
			for v := 0; v < n; v++ {
				want := active &^ seen[v]
				if want == 0 {
					continue
				}
				var nw uint64
				for _, w := range adj[offsets[v]:offsets[v+1]] {
					if m := cur[w] & want; m != 0 {
						nw |= m
						if nw == want {
							break
						}
					}
				}
				if nw == 0 {
					continue
				}
				next[v] = nw
				newFrontier = append(newFrontier, graph.NodeID(v))
			}
			for _, u := range frontier {
				cur[u] = 0
			}
			for _, v := range newFrontier {
				nw := next[v]
				next[v] = 0
				old := seen[v]
				now := old | nw
				seen[v] = now
				cur[v] = nw
				nmf += offsets[v+1] - offsets[v]
				fullDiff |= nw ^ active
				// partial moves by +1 when a node is first seen but not yet
				// full, −1 when a previously partial node fills up —
				// computed with 0/1 arithmetic instead of nested branches.
				wasSeen := nzb(old)
				notFull := nzb(now ^ active)
				partial += int((wasSeen^1)&notFull) - int(wasSeen&(notFull^1))
				visit(v, nw, d)
			}
			frontier, touched = newFrontier, frontier
		} else {
			// Push: scan the frontier's out-edges, collecting touched nodes,
			// then commit lanes, visits and the next frontier. Heads that
			// already saw every lane the tail carries are skipped outright —
			// their commit delta would be zero.
			touched = touched[:0]
			for _, u := range frontier {
				m := cur[u]
				for _, w := range adj[offsets[u]:offsets[u+1]] {
					if m&^seen[w] == 0 {
						continue
					}
					// Branch-avoiding queue insert: append speculatively,
					// then retract by the already-queued bit — a
					// data-dependent length adjustment instead of an
					// unpredictable membership branch. (The saturation skip
					// above stays a branch: it prunes the next[w] load-store
					// entirely.)
					touched = append(touched, w)
					touched = touched[:len(touched)-int(nzb(next[w]))]
					next[w] |= m
				}
			}
			for _, u := range frontier {
				cur[u] = 0
			}
			newFrontier := frontier[:0]
			for _, w := range touched {
				nw := next[w] &^ seen[w]
				next[w] = 0
				if nw == 0 {
					continue
				}
				old := seen[w]
				now := old | nw
				seen[w] = now
				cur[w] = nw
				newFrontier = append(newFrontier, w)
				nmf += offsets[w+1] - offsets[w]
				fullDiff |= nw ^ active
				wasSeen := nzb(old)
				notFull := nzb(now ^ active)
				partial += int((wasSeen^1)&notFull) - int(wasSeen&(notFull^1))
				visit(w, nw, d)
			}
			frontier = newFrontier
		}
		mu -= mf
		mf = nmf
		if fullDiff == 0 && partial == 0 && len(frontier) > 0 {
			// Every lane now rides one shared frontier and no node awaits
			// stragglers: the rest of the sweep is a single BFS.
			frontier, touched = msMergedTail(offsets, adj, s, active, frontier, touched, d, mf, mu, visit)
			break
		}
	}
	s.frontier = frontier[:0]
	s.touched = touched[:0]
}

// msMergedTail finishes a multi-source sweep after all lanes have merged
// into one shared frontier: every frontier node carries the full lane mask
// and every reached node is either fully seen or unseen, so level expansion
// degenerates to a plain direction-optimised BFS (seen acts as the visited
// bit) and each newly reached node gets one full-mask visit. Returns the
// (emptied) frontier buffers so the caller can stash them back in the
// scratch.
func msMergedTail(offsets []int64, adj []graph.NodeID, s *MSScratch, active uint64,
	frontier, touched []graph.NodeID, dPrev int32, mf, mu int64,
	visit func(v graph.NodeID, mask uint64, d int32)) ([]graph.NodeID, []graph.NodeID) {
	n := len(offsets) - 1
	seen, cur, next := s.seen, s.cur, s.next
	for d := dPrev + 1; len(frontier) > 0; d++ {
		if par.Interrupted(s.done) {
			break
		}
		bottomUp := pullLevel(mf, mu, len(frontier), n)
		newFrontier := touched[:0]
		var nmf int64
		if bottomUp {
			for v := 0; v < n; v++ {
				if seen[v] != 0 {
					continue
				}
				for _, w := range adj[offsets[v]:offsets[v+1]] {
					if cur[w] != 0 {
						newFrontier = append(newFrontier, graph.NodeID(v))
						break
					}
				}
			}
		} else {
			for _, u := range frontier {
				for _, w := range adj[offsets[u]:offsets[u+1]] {
					if seen[w] == 0 && next[w] == 0 {
						next[w] = 1
						newFrontier = append(newFrontier, w)
					}
				}
			}
		}
		for _, u := range frontier {
			cur[u] = 0
		}
		for _, v := range newFrontier {
			next[v] = 0
			seen[v] = active
			cur[v] = active
			nmf += offsets[v+1] - offsets[v]
			visit(v, active, d)
		}
		frontier, touched = newFrontier, frontier
		mu -= mf
		mf = nmf
	}
	return frontier, touched
}

// MultiSourceFarness computes, for every node, the sum of distances from
// the given sources (the random-sampling accumulator of Algorithm 1) plus
// the exact farness of each source, using 64-wide multi-source sweeps.
// It returns acc[v] = Σ_s d(s,v) and far[i] = farness(sources[i]) within
// the source's component.
func MultiSourceFarness(g *graph.Graph, sources []graph.NodeID) (acc []int64, far []int64) {
	n := g.NumNodes()
	acc = make([]int64, n)
	far = make([]int64, len(sources))
	s := NewMSScratch(n, 1)
	for base := 0; base < len(sources); base += MSBFSWidth {
		hi := base + MSBFSWidth
		if hi > len(sources) {
			hi = len(sources)
		}
		batch := sources[base:hi]
		laneFar := far[base:hi]
		MultiSourceMasksInto(g, batch, s, func(v graph.NodeID, mask uint64, d int32) {
			acc[v] += int64(d) * int64(bits.OnesCount64(mask))
			AccumulateLanes(laneFar, mask, int64(d))
		})
	}
	return acc, far
}
