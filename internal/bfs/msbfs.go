package bfs

import (
	"math/bits"

	"repro/internal/graph"
)

// MSBFSWidth is the number of sources one multi-source sweep carries — one
// bit lane per source.
const MSBFSWidth = 64

// MultiSource runs a bit-parallel breadth-first search from up to 64
// sources simultaneously (the "more the merrier" technique: one uint64 per
// node carries one lane per source, so a single edge scan advances all
// sources at once). It calls visit(v, lane, d) exactly once per reached
// (source, node) pair with the hop distance d — including (s, s, 0).
//
// Sampling-based centrality wants exactly this access pattern: the k
// sampled sources all traverse the same graph, and batching them divides
// the number of edge scans by up to 64 on overlapping frontiers.
//
// The kernel is sequential by design; callers parallelise across batches
// (see MultiSourceFarness).
func MultiSource(g *graph.Graph, sources []graph.NodeID, visit func(v graph.NodeID, lane int, d int32)) {
	if len(sources) == 0 {
		return
	}
	if len(sources) > MSBFSWidth {
		panic("bfs: MultiSource supports at most 64 sources per batch")
	}
	n := g.NumNodes()
	seen := make([]uint64, n)
	next := make([]uint64, n)
	frontier := make([]graph.NodeID, 0, n)
	for lane, s := range sources {
		bit := uint64(1) << uint(lane)
		if seen[s]&bit == 0 {
			visit(s, lane, 0)
		} else {
			// Duplicate source node: its other lane(s) still need the
			// zero-distance visit.
			visit(s, lane, 0)
		}
		seen[s] |= bit
	}
	// Deduplicate the initial frontier.
	for _, s := range sources {
		found := false
		for _, f := range frontier {
			if f == s {
				found = true
				break
			}
		}
		if !found {
			frontier = append(frontier, s)
		}
	}
	cur := make([]uint64, n)
	for _, s := range sources {
		cur[s] = seen[s]
	}

	var touched []graph.NodeID
	for d := int32(1); len(frontier) > 0; d++ {
		touched = touched[:0]
		for _, u := range frontier {
			m := cur[u]
			for _, w := range g.Neighbors(u) {
				if next[w] == 0 {
					touched = append(touched, w)
				}
				next[w] |= m
			}
		}
		// Commit the level: new lanes per node, visits, next frontier.
		newFrontier := frontier[:0]
		for _, w := range touched {
			nw := next[w] &^ seen[w]
			next[w] = 0
			if nw == 0 {
				cur[w] = 0
				continue
			}
			seen[w] |= nw
			cur[w] = nw
			newFrontier = append(newFrontier, w)
			for m := nw; m != 0; m &= m - 1 {
				visit(w, bits.TrailingZeros64(m), d)
			}
		}
		// Clear cur for nodes leaving the frontier.
		for _, u := range frontier[len(newFrontier):cap(frontier)] {
			_ = u
		}
		frontier = newFrontier
	}
}

// MultiSourceFarness computes, for every node, the sum of distances from
// the given sources (the random-sampling accumulator of Algorithm 1) plus
// the exact farness of each source, using 64-wide multi-source sweeps.
// It returns acc[v] = Σ_s d(s,v) and far[i] = farness(sources[i]) within
// the source's component.
func MultiSourceFarness(g *graph.Graph, sources []graph.NodeID) (acc []int64, far []int64) {
	n := g.NumNodes()
	acc = make([]int64, n)
	far = make([]int64, len(sources))
	for base := 0; base < len(sources); base += MSBFSWidth {
		hi := base + MSBFSWidth
		if hi > len(sources) {
			hi = len(sources)
		}
		batch := sources[base:hi]
		MultiSource(g, batch, func(v graph.NodeID, lane int, d int32) {
			acc[v] += int64(d)
			far[base+lane] += int64(d)
		})
	}
	return acc, far
}
