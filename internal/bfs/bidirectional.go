package bfs

import (
	"context"

	"repro/internal/graph"
	"repro/internal/par"
)

// PointToPoint returns d(s, t) using bidirectional BFS: both endpoints
// expand level by level, always growing the smaller frontier, and stop one
// level after the frontiers first touch. On small-world graphs this visits
// O(√) of the nodes a full BFS would — it backs the server's /v1/distance
// endpoint. Returns -1 when t is unreachable from s.
func PointToPoint(g *graph.Graph, s, t graph.NodeID) int32 {
	return pointToPointDone(g, s, t, nil)
}

// PointToPointCtx is PointToPoint with cooperative cancellation, polled once
// per expansion level — the form the server's /distance handler uses so a
// closed request or deadline abandons the search. On a non-nil error the
// distance is meaningless and must be discarded.
func PointToPointCtx(ctx context.Context, g *graph.Graph, s, t graph.NodeID) (int32, error) {
	d := pointToPointDone(g, s, t, ctx.Done())
	if err := par.CtxErr(ctx); err != nil {
		return Unreached, err
	}
	return d, nil
}

func pointToPointDone(g *graph.Graph, s, t graph.NodeID, done <-chan struct{}) int32 {
	if s == t {
		return 0 // covers the single-node graph too: no scratch allocated
	}
	if g.Degree(s) == 0 || g.Degree(t) == 0 {
		// An isolated endpoint can reach nothing but itself; answer the
		// disconnected pair without allocating the two n-sized arrays.
		return Unreached
	}
	n := g.NumNodes()
	distS := make([]int32, n)
	distT := make([]int32, n)
	for i := 0; i < n; i++ {
		distS[i] = Unreached
		distT[i] = Unreached
	}
	distS[s] = 0
	distT[t] = 0
	frontS := []graph.NodeID{s}
	frontT := []graph.NodeID{t}
	levelS, levelT := int32(0), int32(0)
	best := int32(-1)

	expand := func(front []graph.NodeID, level int32, mine, other []int32) []graph.NodeID {
		var next []graph.NodeID
		for _, u := range front {
			for _, w := range g.Neighbors(u) {
				if mine[w] != Unreached {
					continue
				}
				mine[w] = level + 1
				if other[w] != Unreached {
					if cand := mine[w] + other[w]; best < 0 || cand < best {
						best = cand
					}
				}
				next = append(next, w)
			}
		}
		return next
	}

	for len(frontS) > 0 && len(frontT) > 0 {
		if par.Interrupted(done) {
			return Unreached // partial search; the ctx wrapper surfaces the error
		}
		// Once the frontiers have met, one more level from each side
		// cannot improve below levelS+levelT+1; stop when best is already
		// that tight.
		if best >= 0 && best <= levelS+levelT+1 {
			return best
		}
		if len(frontS) <= len(frontT) {
			frontS = expand(frontS, levelS, distS, distT)
			levelS++
		} else {
			frontT = expand(frontT, levelT, distT, distS)
			levelT++
		}
	}
	return best
}
