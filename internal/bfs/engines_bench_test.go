package bfs

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// BenchmarkEngineOrderingMatrix crosses the three unweighted traversal
// kernels with the three CSR orderings on the four generator families. One
// op is a fixed batch of 64 traversals, so per-source, hybrid and the
// 64-lane batched engine are directly comparable; the ordering axis isolates
// the memory-layout effect on each kernel. The estimation-level version of
// this matrix (engines × orderings through Estimate itself) lives in
// internal/experiments and feeds BENCH_traversal.json.
func BenchmarkEngineOrderingMatrix(b *testing.B) {
	families := []struct {
		name string
		make func(n int, seed int64) *graph.Graph
	}{
		{"web", gen.Web},
		{"social", gen.Social},
		{"community", gen.Community},
		{"road", gen.Road},
	}
	const n = 20000
	for _, fam := range families {
		base := graph.Connect(fam.make(n, 1))
		for _, mode := range []graph.RelabelMode{graph.RelabelNone, graph.RelabelDegree, graph.RelabelBFS} {
			g, r := graph.Relabel(base, mode, 0)
			sources := make([]graph.NodeID, MSBFSWidth)
			for i := range sources {
				s := graph.NodeID((i * 131) % n)
				if r != nil {
					s = r.Perm[s]
				}
				sources[i] = s
			}
			name := func(engine string) string {
				return fmt.Sprintf("%s/%s/%s", fam.name, mode, engine)
			}
			b.Run(name("per-source"), func(b *testing.B) {
				s := NewScratch(g.NumNodes(), 0)
				for i := 0; i < b.N; i++ {
					for _, src := range sources {
						Distances(g, src, s.Dist, s.Q)
					}
				}
			})
			b.Run(name("hybrid"), func(b *testing.B) {
				s := NewScratch(g.NumNodes(), 0)
				for i := 0; i < b.N; i++ {
					for _, src := range sources {
						HybridDistances(g, src, s.Dist, s)
					}
				}
			})
			b.Run(name("batched"), func(b *testing.B) {
				s := NewMSScratch(g.NumNodes(), 1)
				var sink int64
				for i := 0; i < b.N; i++ {
					MultiSourceInto(g, sources, s, func(v graph.NodeID, lane int, d int32) {
						sink += int64(d)
					})
				}
				_ = sink
			})
		}
	}
}
