package bfs

import (
	"context"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/par"
)

// This file holds the frontier-parallel ("edge-map", in GBBS terms)
// traversal engine: a single traversal whose per-level work is split across
// workers, for the cases where source-level parallelism has nothing to fan
// out over — exact all-sources ground truth, topk verification BFS, a
// low-sample-count run on one giant component. Two kernels share the
// FrontierScratch state:
//
//   - frontierDone: level-synchronous BFS with direction optimisation.
//     Sparse (push) levels split the frontier into static blocks; each block
//     claims discovered nodes with a CAS from Unreached to the level and
//     collects them into a per-block buffer. Dense (pull) levels — chosen by
//     the same tuned alpha/beta rule as the per-source hybrid kernel
//     (pullLevel) — split the *node range* instead: every unvisited node
//     scans its own neighbours for a frontier member (dist == level−1) and
//     claims itself, contention-free. Either way the next frontier is
//     compacted from the per-block buffers with one par.PrefixSum over the
//     block counts and a parallel copy.
//
//   - wFrontierDone: parallel bucketed Dial. Buckets settle in increasing
//     distance exactly as in the sequential kernel; within one bucket the
//     settled nodes' edges relax in parallel with an atomic min-CAS on dist.
//     Integer weights ≥ 1 mean every push targets a strictly later bucket,
//     so draining bucket d concurrently never misses a relaxation into d.
//
// Determinism: BFS levels and shortest-path distances are unique, so
// whichever worker wins a claim writes the same value — dist (and therefore
// farness, eccentricity, every accumulated integer) is bit-identical to the
// sequential kernels at every worker count. Only the *order* of nodes inside
// the next frontier depends on the race, and that order affects nothing but
// scan order. All cross-worker accesses inside a parallel sweep go through
// sync/atomic (the race detector requires it even where the winning value is
// unique); sweeps are separated by WaitGroup barriers, so the sequential
// small-frontier path may use plain loads and stores.

// frontierSeqEdges is the per-worker edge-mass threshold below which a push
// level runs sequentially: fanning out costs a goroutine spawn per worker
// (~1 µs), which only pays once each worker has a few thousand edge scans to
// amortise it over. BFS tails and narrow waves stay on the sequential path.
const frontierSeqEdges = 2048

// FrontierScratch bundles the reusable state of the frontier-parallel
// kernels: the two frontier buffers, the per-block claim buffers the
// compaction gathers, and the weighted kernel's bucket ring. A scratch grows
// lazily to the largest (graph, worker count) it has seen and must not be
// shared between concurrent traversals; drivers that loop over sources keep
// one and reuse it.
type FrontierScratch struct {
	frontier, next []graph.NodeID
	bufs           [][]graph.NodeID // per-block claim buffers
	counts         []int64          // per-block claim counts → prefix sum
	degs           []int64          // per-block out-edge sums (Beamer mf)
	// Weighted (parallel Dial) state, allocated on first weighted use.
	ring     [][]graph.NodeID // shared bucket ring, slot = distance mod len
	settled  []graph.NodeID   // current bucket after stale filtering
	pushBufs [][]wpush        // per-block relaxation output
}

// wpush is one successful relaxation: node v was improved to distance nd and
// must enter bucket nd.
type wpush struct {
	v  graph.NodeID
	nd int32
}

// NewFrontierScratch returns an empty scratch; every buffer grows on first
// use.
func NewFrontierScratch() *FrontierScratch { return &FrontierScratch{} }

// grow sizes the unweighted buffers for an n-node graph at the given worker
// count (block count never exceeds workers; see par.NumBlocks).
func (s *FrontierScratch) grow(n, workers int) {
	if cap(s.frontier) < n {
		s.frontier = make([]graph.NodeID, 0, n)
		s.next = make([]graph.NodeID, 0, n)
	}
	if len(s.bufs) < workers {
		s.bufs = append(s.bufs, make([][]graph.NodeID, workers-len(s.bufs))...)
		s.counts = make([]int64, workers)
		s.degs = make([]int64, workers)
	}
}

// growW additionally sizes the weighted kernel's bucket ring.
func (s *FrontierScratch) growW(n, workers, ring int) {
	s.grow(n, workers)
	if len(s.ring) < ring {
		s.ring = append(s.ring, make([][]graph.NodeID, ring-len(s.ring))...)
	}
	if len(s.pushBufs) < workers {
		s.pushBufs = append(s.pushBufs, make([][]wpush, workers-len(s.pushBufs))...)
	}
	if cap(s.settled) < n {
		s.settled = make([]graph.NodeID, 0, n)
	}
}

// FrontierDistances runs the frontier-parallel BFS from src, filling dist
// like Distances. fs may be nil (scratch is then allocated); drivers looping
// over sources pass a pooled FrontierScratch.
func FrontierDistances(g *graph.Graph, src graph.NodeID, dist []int32, workers int, fs *FrontierScratch) {
	offsets, adj := g.CSR()
	frontierDone(offsets, adj, src, dist, workers, fs, nil)
}

// FrontierDistancesCtx is FrontierDistances with cooperative cancellation,
// polled once per frontier level. A non-nil return means dist is partial and
// must be discarded.
func FrontierDistancesCtx(ctx context.Context, g *graph.Graph, src graph.NodeID, dist []int32, workers int, fs *FrontierScratch) error {
	if err := fault.Checkpoint(ctx, "bfs.frontier"); err != nil {
		return err
	}
	offsets, adj := g.CSR()
	frontierDone(offsets, adj, src, dist, workers, fs, ctx.Done())
	return par.CtxErr(ctx)
}

// WFrontierDistances is the weighted-graph entry point of the frontier
// engine: the level-synchronous edge-map when every weight is 1 (unweighted
// is the caller's cached g.Unweighted()), the parallel bucketed Dial
// otherwise. dist must have length g.NumNodes().
func WFrontierDistances(g *graph.WGraph, unweighted bool, src graph.NodeID, dist []int32, workers int, fs *FrontierScratch) {
	wFrontierAutoDone(g, unweighted, src, dist, workers, fs, nil)
}

// WFrontierDistancesCtx is WFrontierDistances with cooperative cancellation,
// polled at level (BFS) or bucket (Dial) boundaries.
func WFrontierDistancesCtx(ctx context.Context, g *graph.WGraph, unweighted bool, src graph.NodeID, dist []int32, workers int, fs *FrontierScratch) error {
	if err := fault.Checkpoint(ctx, "bfs.frontier"); err != nil {
		return err
	}
	wFrontierAutoDone(g, unweighted, src, dist, workers, fs, ctx.Done())
	return par.CtxErr(ctx)
}

func wFrontierAutoDone(g *graph.WGraph, unweighted bool, src graph.NodeID, dist []int32, workers int, fs *FrontierScratch, done <-chan struct{}) {
	if unweighted {
		offsets, adj, _ := g.CSR()
		frontierDone(offsets, adj, src, dist, workers, fs, done)
		return
	}
	wFrontierDone(g, src, dist, workers, fs, done)
}

// frontierDone is the level-synchronous edge-map kernel over raw CSR arrays
// (shared by the simple-graph and all-weights-one contracted-graph entry
// points) with an optional interruption channel polled once per level.
func frontierDone(offsets []int64, adj []graph.NodeID, src graph.NodeID, dist []int32, workers int, fs *FrontierScratch, done <-chan struct{}) {
	n := len(offsets) - 1
	workers = par.Workers(workers)
	if fs == nil {
		fs = NewFrontierScratch()
	}
	fs.grow(n, workers)
	par.ForBlocks(n, workers, func(_, lo, hi int) { Fill(dist[lo:hi]) })
	dist[src] = 0
	frontier := append(fs.frontier[:0], src)
	next := fs.next[:0]
	mf := offsets[src+1] - offsets[src] // out-edges of the current frontier
	mu := int64(len(adj)) - mf          // directed edges not yet explored

	for level := int32(1); len(frontier) > 0; level++ {
		if par.Interrupted(done) {
			break
		}
		var nmf int64
		switch {
		case pullLevel(mf, mu, len(frontier), n):
			// Dense pull: split the node range; each block's owner is the
			// only writer of its nodes, so claims are contention-free. A
			// neighbour in the current frontier is recognised by
			// dist == level−1 — no bitset needed, and nodes claimed this
			// level carry `level`, never level−1, so concurrent claims can't
			// be mistaken for frontier members.
			nb := par.NumBlocks(n, workers)
			par.ForBlocks(n, workers, func(b, lo, hi int) {
				buf := fs.bufs[b][:0]
				var bmf int64
				for v := lo; v < hi; v++ {
					if dist[v] != Unreached { // plain read: only this block writes [lo, hi)
						continue
					}
					for _, w := range adj[offsets[v]:offsets[v+1]] {
						if atomic.LoadInt32(&dist[w]) == level-1 {
							atomic.StoreInt32(&dist[v], level)
							buf = append(buf, graph.NodeID(v))
							bmf += offsets[v+1] - offsets[v]
							break
						}
					}
				}
				fs.bufs[b] = buf
				fs.counts[b] = int64(len(buf))
				fs.degs[b] = bmf
			})
			next, nmf = fs.compact(next, nb, workers)
		case workers == 1 || mf < frontierSeqEdges*int64(workers):
			// Small frontier: a sequential sweep avoids the fan-out cost.
			// The preceding sweep's WaitGroup barrier makes plain accesses
			// race-free.
			next = next[:0]
			for _, u := range frontier {
				for _, w := range adj[offsets[u]:offsets[u+1]] {
					if dist[w] == Unreached {
						dist[w] = level
						next = append(next, w)
						nmf += offsets[w+1] - offsets[w]
					}
				}
			}
		default:
			// Sparse push: split the frontier; discoveries claim their node
			// with a CAS from Unreached to the (unique) level value, so
			// whichever worker wins writes the same distance.
			nb := par.NumBlocks(len(frontier), workers)
			par.ForBlocks(len(frontier), workers, func(b, lo, hi int) {
				buf := fs.bufs[b][:0]
				var bmf int64
				for _, u := range frontier[lo:hi] {
					for _, w := range adj[offsets[u]:offsets[u+1]] {
						if atomic.LoadInt32(&dist[w]) == Unreached &&
							atomic.CompareAndSwapInt32(&dist[w], Unreached, level) {
							buf = append(buf, w)
							bmf += offsets[w+1] - offsets[w]
						}
					}
				}
				fs.bufs[b] = buf
				fs.counts[b] = int64(len(buf))
				fs.degs[b] = bmf
			})
			next, nmf = fs.compact(next, nb, workers)
		}
		frontier, next = next, frontier
		mu -= mf
		mf = nmf
	}
	fs.frontier, fs.next = frontier[:0], next[:0]
}

// compact gathers the per-block claim buffers into one next-frontier slice:
// a parallel prefix sum over the block counts fixes each block's output
// offset, then the copies run in parallel. Returns the filled slice and the
// next frontier's total out-edge count. Block order is preserved, so a pull
// level's next frontier is sorted by node id.
func (s *FrontierScratch) compact(next []graph.NodeID, nb, workers int) ([]graph.NodeID, int64) {
	counts := s.counts[:nb]
	total := par.PrefixSum(counts, workers)
	next = next[:total]
	par.For(nb, workers, func(b int) {
		copy(next[counts[b]-int64(len(s.bufs[b])):counts[b]], s.bufs[b])
	})
	var nmf int64
	for _, d := range s.degs[:nb] {
		nmf += d
	}
	return next, nmf
}

// wFrontierDone is the parallel bucketed-Dial kernel: buckets are drained in
// increasing distance exactly like the sequential wDistancesDone, but one
// bucket's edge relaxations are split across workers, improving dist with an
// atomic min-CAS. Weights ≥ 1 guarantee every push lands in a strictly later
// bucket, so the bucket being drained never grows under its own relaxations
// and the sequential settle order — hence the unique final distances — is
// preserved at every worker count.
func wFrontierDone(g *graph.WGraph, src graph.NodeID, dist []int32, workers int, fs *FrontierScratch, done <-chan struct{}) {
	offsets, adj, wts := g.CSR()
	n := len(offsets) - 1
	workers = par.Workers(workers)
	if fs == nil {
		fs = NewFrontierScratch()
	}
	maxW := int(g.MaxWeight())
	if maxW < 1 {
		maxW = 1
	}
	ring := maxW + 1 // reachable targets span (d, d+maxW]: never the slot being drained
	fs.growW(n, workers, ring)
	par.ForBlocks(n, workers, func(_, lo, hi int) { Fill(dist[lo:hi]) })
	buckets := fs.ring[:ring]
	for i := range buckets {
		buckets[i] = buckets[i][:0]
	}
	dist[src] = 0
	buckets[0] = append(buckets[0], src)
	pending := 1

	for d := int32(0); pending > 0; d++ {
		slot := int(d) % ring
		entries := buckets[slot]
		if len(entries) == 0 {
			continue
		}
		if par.Interrupted(done) {
			break
		}
		pending -= len(entries)
		// Settle: a node's entry for bucket d is final exactly when
		// dist == d (a later improvement leaves a stale entry behind; the
		// push that achieved the final value is unique, so each node settles
		// once). No relaxation is in flight here, so plain reads suffice.
		settled := fs.settled[:0]
		var mass int64
		for _, u := range entries {
			if dist[u] == d {
				settled = append(settled, u)
				mass += offsets[u+1] - offsets[u]
			}
		}
		buckets[slot] = entries[:0]
		if len(settled) == 0 {
			continue
		}
		if workers == 1 || mass < frontierSeqEdges*int64(workers) {
			// Sequential relax — same loop as the plain Dial kernel.
			for _, u := range settled {
				lo, hi := offsets[u], offsets[u+1]
				for i := lo; i < hi; i++ {
					w := adj[i]
					nd := d + wts[i]
					if dist[w] == Unreached || nd < dist[w] {
						dist[w] = nd
						buckets[int(nd)%ring] = append(buckets[int(nd)%ring], w)
						pending++
					}
				}
			}
			fs.settled = settled[:0]
			continue
		}
		nb := par.NumBlocks(len(settled), workers)
		par.ForBlocks(len(settled), workers, func(b, blo, bhi int) {
			buf := fs.pushBufs[b][:0]
			for _, u := range settled[blo:bhi] {
				lo, hi := offsets[u], offsets[u+1]
				for i := lo; i < hi; i++ {
					w := adj[i]
					nd := d + wts[i]
					// Min-CAS: improve dist[w] to nd unless an equal or
					// better value is already in place. The CAS that lands a
					// given value wins exactly once, so each improvement
					// enqueues w exactly once.
					for {
						cur := atomic.LoadInt32(&dist[w])
						if cur != Unreached && cur <= nd {
							break
						}
						if atomic.CompareAndSwapInt32(&dist[w], cur, nd) {
							buf = append(buf, wpush{w, nd})
							break
						}
					}
				}
			}
			fs.pushBufs[b] = buf
		})
		// Merge the per-block pushes into the shared ring sequentially (the
		// merge is O(pushes), the same work the sequential kernel spends on
		// its own enqueues). Merge order follows block order; bucket
		// contents may still differ from the sequential kernel's order, but
		// settle filtering keys on dist values, which are unique.
		for b := 0; b < nb; b++ {
			for _, p := range fs.pushBufs[b] {
				buckets[int(p.nd)%ring] = append(buckets[int(p.nd)%ring], p.v)
				pending++
			}
		}
		fs.settled = settled[:0]
	}
}
