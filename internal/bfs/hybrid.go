package bfs

import (
	"context"

	"repro/internal/graph"
	"repro/internal/par"
)

// This file holds the direction-optimising (Beamer-style push/pull hybrid)
// per-source BFS. Top-down ("push") levels expand the frontier through its
// out-edges; once the frontier's out-edge count mf exceeds a fraction of the
// unexplored edges mu (the DefaultTuning rule, see tuning.go), the kernel
// flips to bottom-up ("pull") levels, where every unvisited node scans its
// own neighbours for a frontier member and stops at the first hit — on
// low-diameter graphs the one or two widest levels dominate the edge scans,
// and the pull sweep's early exit skips most of them. When the frontier
// shrinks below n/beta the kernel flips back.
//
// BFS levels are unique, so the hybrid produces exactly the distance array
// of the plain kernel at every switch point: callers may substitute it
// freely without breaking the repo's bit-identical-results contract. The
// kernel runs over the raw CSR arrays (graph.Graph.CSR) so one
// implementation serves both the simple and the all-weights-one contracted
// graphs.

// The push/pull switching rule and its alpha/beta/floor constants live in
// tuning.go (DirectionTuning / DefaultTuning / pullLevel), shared with the
// msbfs pull path and the frontier-parallel engine.

// HybridDistances runs a direction-optimising BFS from src, filling dist
// like Distances (hop counts, Unreached for unreachable nodes). s may be
// nil, in which case scratch is allocated; the per-source drivers pass a
// pooled per-worker Scratch.
func HybridDistances(g *graph.Graph, src graph.NodeID, dist []int32, s *Scratch) {
	offsets, adj := g.CSR()
	hybridDone(offsets, adj, src, dist, s, nil)
}

// HybridDistancesCtx is HybridDistances with cooperative cancellation,
// polled at frontier-level boundaries.
func HybridDistancesCtx(ctx context.Context, g *graph.Graph, src graph.NodeID, dist []int32, s *Scratch) error {
	offsets, adj := g.CSR()
	hybridDone(offsets, adj, src, dist, s, ctx.Done())
	return par.CtxErr(ctx)
}

// WHybridDistancesBFS is HybridDistances over a weighted graph whose weights
// are all 1; callers guarantee the precondition (graph.WGraph.Unweighted).
func WHybridDistancesBFS(g *graph.WGraph, src graph.NodeID, dist []int32, s *Scratch) {
	offsets, adj, _ := g.CSR()
	hybridDone(offsets, adj, src, dist, s, nil)
}

// WHybridDistancesBFSCtx is WHybridDistancesBFS with cooperative
// cancellation, the form the block-local drivers use: the caller picks the
// dist row (typically a prefix of pooled scratch sized to the block).
func WHybridDistancesBFSCtx(ctx context.Context, g *graph.WGraph, src graph.NodeID, dist []int32, s *Scratch) error {
	offsets, adj, _ := g.CSR()
	hybridDone(offsets, adj, src, dist, s, ctx.Done())
	return par.CtxErr(ctx)
}

// WHybridDistancesAuto dispatches to the hybrid BFS when the graph is
// unweighted (cached by the caller) and Dial otherwise — the
// direction-optimising counterpart of WDistancesAuto. Pull sweeps need the
// unit-weight guarantee (a pulled edge must close exactly one level), so
// weighted graphs keep the bucket queue.
func WHybridDistancesAuto(g *graph.WGraph, unweighted bool, src graph.NodeID, s *Scratch) {
	wHybridAutoDone(g, unweighted, src, s, nil)
}

// WHybridDistancesAutoCtx is WHybridDistancesAuto with cooperative
// cancellation.
func WHybridDistancesAutoCtx(ctx context.Context, g *graph.WGraph, unweighted bool, src graph.NodeID, s *Scratch) error {
	wHybridAutoDone(g, unweighted, src, s, ctx.Done())
	return par.CtxErr(ctx)
}

func wHybridAutoDone(g *graph.WGraph, unweighted bool, src graph.NodeID, s *Scratch, done <-chan struct{}) {
	if unweighted {
		offsets, adj, _ := g.CSR()
		hybridDone(offsets, adj, src, s.Dist, s, done)
		return
	}
	wDistancesDone(g, src, s.Dist, s.B, done)
}

// hybridDone is the direction-optimising kernel over raw CSR arrays with an
// optional interruption channel polled once per level (hybrid levels scan
// up to the whole graph, so per-pop budgets don't apply).
func hybridDone(offsets []int64, adj []graph.NodeID, src graph.NodeID, dist []int32, s *Scratch, done <-chan struct{}) {
	n := len(offsets) - 1
	Fill(dist)
	if s == nil {
		s = &Scratch{}
	}
	front, frontier, spare := s.hybridState(n)

	dist[src] = 0
	frontier = append(frontier, src)
	mf := offsets[src+1] - offsets[src] // out-edges of the current frontier
	mu := int64(len(adj)) - mf         // directed edges not yet explored
	bottomUp := false

	for d := int32(1); len(frontier) > 0; d++ {
		if par.Interrupted(done) {
			break
		}
		bottomUp = pullLevel(mf, mu, len(frontier), n)
		var nmf int64
		if bottomUp {
			// Pull: publish the frontier as a bitset, then let every
			// unvisited node claim its level from the first frontier
			// neighbour it sees.
			for _, u := range frontier {
				front[u>>6] |= 1 << uint(u&63)
			}
			next := spare[:0]
			for v := 0; v < n; v++ {
				if dist[v] != Unreached {
					continue
				}
				for _, w := range adj[offsets[v]:offsets[v+1]] {
					if front[w>>6]&(1<<uint(w&63)) != 0 {
						dist[v] = d
						next = append(next, graph.NodeID(v))
						nmf += offsets[v+1] - offsets[v]
						break
					}
				}
			}
			for _, u := range frontier {
				front[u>>6] = 0
			}
			frontier, spare = next, frontier
		} else {
			// Push: classic frontier expansion. spare receives the next
			// level so the two buffers alternate like in the pull branch.
			next := spare[:0]
			for _, u := range frontier {
				for _, w := range adj[offsets[u]:offsets[u+1]] {
					if dist[w] == Unreached {
						dist[w] = d
						next = append(next, w)
						nmf += offsets[w+1] - offsets[w]
					}
				}
			}
			frontier, spare = next, frontier
		}
		mu -= mf
		mf = nmf
	}
	s.frontier, s.spare = frontier[:0], spare[:0]
}
