package bfs

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
)

// ParallelDistances runs a level-synchronous parallel BFS from src: each
// level's frontier is split across workers, discoveries claim nodes with a
// CAS on the distance array, and per-worker next-frontiers are concatenated
// between levels. Use for one very large traversal (e.g. a giant single
// biconnected block) when per-source parallelism has nothing to fan out
// over; for many sources prefer the per-source drivers or MultiSource.
//
// dist must have length g.NumNodes(); it is fully overwritten.
func ParallelDistances(g *graph.Graph, src graph.NodeID, dist []int32, workers int) {
	parallelDistancesDone(g, src, dist, workers, nil)
}

// ParallelDistancesCtx is ParallelDistances with cooperative cancellation,
// polled once per frontier level (each level is a bounded parallel sweep,
// so cancellation latency is one level's fan-out). A non-nil return means
// dist is partial and must be discarded.
func ParallelDistancesCtx(ctx context.Context, g *graph.Graph, src graph.NodeID, dist []int32, workers int) error {
	parallelDistancesDone(g, src, dist, workers, ctx.Done())
	return par.CtxErr(ctx)
}

func parallelDistancesDone(g *graph.Graph, src graph.NodeID, dist []int32, workers int, done <-chan struct{}) {
	workers = par.Workers(workers)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[src] = 0
	frontier := []graph.NodeID{src}
	nexts := make([][]graph.NodeID, workers)

	for level := int32(1); len(frontier) > 0; level++ {
		if par.Interrupted(done) {
			return
		}
		if len(frontier) < 4*workers {
			// Small frontier: sequential sweep avoids the fan-out cost.
			var next []graph.NodeID
			for _, u := range frontier {
				for _, w := range g.Neighbors(u) {
					if dist[w] == Unreached {
						dist[w] = level
						next = append(next, w)
					}
				}
			}
			frontier = next
			continue
		}
		var wg sync.WaitGroup
		chunk := (len(frontier) + workers - 1) / workers
		for wk := 0; wk < workers; wk++ {
			lo := wk * chunk
			if lo >= len(frontier) {
				break
			}
			hi := lo + chunk
			if hi > len(frontier) {
				hi = len(frontier)
			}
			wg.Add(1)
			go func(wk, lo, hi int) {
				defer wg.Done()
				local := nexts[wk][:0]
				for _, u := range frontier[lo:hi] {
					for _, w := range g.Neighbors(u) {
						// Claim w with a CAS from Unreached to level.
						if atomic.LoadInt32(&dist[w]) == Unreached &&
							atomic.CompareAndSwapInt32(&dist[w], Unreached, level) {
							local = append(local, w)
						}
					}
				}
				nexts[wk] = local
			}(wk, lo, hi)
		}
		wg.Wait()
		frontier = frontier[:0]
		for wk := range nexts {
			frontier = append(frontier, nexts[wk]...)
		}
	}
}

// ParallelExactFarness computes exact farness using level-parallel BFS per
// source — the right shape when the graph is huge but the caller wants
// only a handful of sources' exact values.
func ParallelExactFarness(g *graph.Graph, sources []graph.NodeID, workers int) []int64 {
	out := make([]int64, len(sources))
	dist := make([]int32, g.NumNodes())
	for i, s := range sources {
		ParallelDistances(g, s, dist, workers)
		sum, _ := Sum(dist)
		out[i] = sum
	}
	return out
}
