package bfs

import (
	"context"

	"repro/internal/graph"
)

// ParallelDistances runs a frontier-parallel BFS from src: each level's work
// is split across workers by the edge-map engine (see frontier.go), with
// direction-optimising push/pull switching and prefix-sum frontier
// compaction. Use for one very large traversal (e.g. a giant single
// biconnected block) when per-source parallelism has nothing to fan out
// over; for many sources prefer the per-source drivers or MultiSource.
//
// dist must have length g.NumNodes(); it is fully overwritten. The result is
// bit-identical to Distances at every worker count (BFS levels are unique).
func ParallelDistances(g *graph.Graph, src graph.NodeID, dist []int32, workers int) {
	FrontierDistances(g, src, dist, workers, nil)
}

// ParallelDistancesCtx is ParallelDistances with cooperative cancellation,
// polled once per frontier level (each level is a bounded parallel sweep,
// so cancellation latency is one level's fan-out). A non-nil return means
// dist is partial and must be discarded.
func ParallelDistancesCtx(ctx context.Context, g *graph.Graph, src graph.NodeID, dist []int32, workers int) error {
	return FrontierDistancesCtx(ctx, g, src, dist, workers, nil)
}

// ParallelExactFarness computes exact farness using the frontier-parallel
// engine per source — the right shape when the graph is huge but the caller
// wants only a handful of sources' exact values. Sources run sequentially;
// each traversal fans its levels out across the workers.
func ParallelExactFarness(g *graph.Graph, sources []graph.NodeID, workers int) []int64 {
	out := make([]int64, len(sources))
	dist := make([]int32, g.NumNodes())
	fs := NewFrontierScratch()
	for i, s := range sources {
		FrontierDistances(g, s, dist, workers, fs)
		sum, _ := Sum(dist)
		out[i] = sum
	}
	return out
}
