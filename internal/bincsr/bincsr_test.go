package bincsr

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// families builds one small graph per generator family plus degenerate
// shapes.
func families(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	return map[string]*graph.Graph{
		"web":       gen.Web(600, 1),
		"social":    gen.Social(600, 2),
		"community": gen.Community(600, 3),
		"road":      gen.Road(600, 4),
		"empty":     graph.FromEdges(0, nil),
		"singleton": graph.FromEdges(1, nil),
		"edgeless":  graph.FromEdges(5, nil),
		"path":      graph.FromEdges(4, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}}),
	}
}

func encode(tb testing.TB, g *graph.Graph, flags Flags) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, g, flags); err != nil {
		tb.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	for name, g := range families(t) {
		data := encode(t, g, FlagConnected)
		art, err := Read(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: Read: %v", name, err)
		}
		if !art.Header.Connected() || art.Header.Weighted() {
			t.Fatalf("%s: flags %v round-tripped wrong", name, art.Header.Flags)
		}
		if err := art.G.Validate(); err != nil {
			t.Fatalf("%s: Validate: %v", name, err)
		}
		wantOff, wantAdj := g.CSR()
		gotOff, gotAdj := art.G.CSR()
		if !reflect.DeepEqual(wantOff, gotOff) || !reflect.DeepEqual(append([]graph.NodeID{}, wantAdj...), append([]graph.NodeID{}, gotAdj...)) {
			t.Fatalf("%s: CSR arrays differ after round trip", name)
		}
	}
}

func TestRoundTripWeighted(t *testing.T) {
	w := graph.FromWeightedEdges(5, [][3]int32{{0, 1, 3}, {1, 2, 1}, {2, 3, 7}, {3, 4, 2}, {0, 4, 5}})
	var buf bytes.Buffer
	if err := WriteW(&buf, w, 0); err != nil {
		t.Fatalf("WriteW: %v", err)
	}
	art, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if art.W == nil || !art.Header.Weighted() {
		t.Fatalf("weighted artifact lost its weights")
	}
	if err := art.W.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d, ok := art.W.EdgeWeight(2, 3); !ok || d != 7 {
		t.Fatalf("EdgeWeight(2,3) = %d,%v want 7,true", d, ok)
	}
	// The unweighted view shares the same adjacency.
	if art.G.NumEdges() != w.NumEdges() {
		t.Fatalf("unweighted view has %d edges, want %d", art.G.NumEdges(), w.NumEdges())
	}
}

func TestMappedMatchesRead(t *testing.T) {
	dir := t.TempDir()
	for name, g := range families(t) {
		path := filepath.Join(dir, name+".bricsbin")
		if err := WriteFile(path, g, FlagConnected); err != nil {
			t.Fatalf("%s: WriteFile: %v", name, err)
		}
		for _, mode := range []VerifyMode{VerifyFast, VerifyFull} {
			m, err := OpenMapped(path, Options{Verify: mode})
			if err != nil {
				t.Fatalf("%s: OpenMapped(%v): %v", name, mode, err)
			}
			if err := m.G.Validate(); err != nil {
				t.Fatalf("%s: mapped Validate: %v", name, err)
			}
			wantOff, wantAdj := g.CSR()
			gotOff, gotAdj := m.G.CSR()
			if !reflect.DeepEqual(wantOff, gotOff) {
				t.Fatalf("%s: mapped offsets differ", name)
			}
			if len(wantAdj) != len(gotAdj) {
				t.Fatalf("%s: mapped adj length differs", name)
			}
			for i := range wantAdj {
				if wantAdj[i] != gotAdj[i] {
					t.Fatalf("%s: mapped adj[%d] differs", name, i)
				}
			}
			if err := m.VerifyFull(2); err != nil {
				t.Fatalf("%s: VerifyFull: %v", name, err)
			}
			if err := m.Close(); err != nil {
				t.Fatalf("%s: Close: %v", name, err)
			}
			if err := m.Close(); err != nil {
				t.Fatalf("%s: second Close: %v", name, err)
			}
		}
	}
}

func TestMappedZeroCopyAliasing(t *testing.T) {
	if !hostLittleEndian {
		t.Skip("zero-copy aliasing is little-endian only")
	}
	g := gen.Road(500, 9)
	path := filepath.Join(t.TempDir(), "g.bricsbin")
	if err := WriteFile(path, g, 0); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Mapped() {
		// Linux: the offsets slice must point inside the mapping.
		off, _ := m.G.CSR()
		p := reflect.ValueOf(off).Pointer()
		d := reflect.ValueOf(m.data).Pointer()
		if p < d || p >= d+uintptr(len(m.data)) {
			t.Fatalf("offsets slice %#x does not alias the mapping [%#x,%#x)", p, d, d+uintptr(len(m.data)))
		}
	}
	if m.ResidentBytes() <= 0 {
		t.Fatalf("ResidentBytes = %d", m.ResidentBytes())
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	g := gen.Web(400, 7)
	good := encode(t, g, FlagConnected)

	corrupt := func(name string, mutate func(b []byte), wantErr error) {
		b := append([]byte{}, good...)
		mutate(b)
		_, err := Read(bytes.NewReader(b))
		if err == nil {
			t.Fatalf("%s: Read accepted a corrupt artifact", name)
		}
		if wantErr != nil && !errors.Is(err, wantErr) {
			t.Fatalf("%s: err = %v, want %v", name, err, wantErr)
		}
	}

	corrupt("bad magic", func(b []byte) { b[0] = 'X' }, ErrFormat)
	corrupt("bad version", func(b []byte) {
		binary.LittleEndian.PutUint32(b[8:], 99)
		binary.LittleEndian.PutUint32(b[68:], crc32.Checksum(b[:crcEnd], castagnoli))
	}, ErrFormat)
	corrupt("header bitflip", func(b []byte) { b[20] ^= 1 }, ErrChecksum)
	corrupt("offsets bitflip", func(b []byte) { b[headerSize+3] ^= 0x40 }, ErrChecksum)
	corrupt("edges bitflip", func(b []byte) {
		h, _ := decodeHeader(b)
		b[h.edgesOff+5] ^= 0x10
	}, ErrChecksum)
	corrupt("misaligned sections", func(b []byte) {
		// Shift the claimed edges offset; the layout check must reject it
		// before any CRC math.
		binary.LittleEndian.PutUint64(b[40:], binary.LittleEndian.Uint64(b[40:])+8)
		binary.LittleEndian.PutUint32(b[68:], crc32.Checksum(b[:crcEnd], castagnoli))
	}, ErrFormat)
	corrupt("absurd node count", func(b []byte) {
		binary.LittleEndian.PutUint64(b[16:], uint64(graph.MaxNodeID)+2)
		binary.LittleEndian.PutUint32(b[68:], crc32.Checksum(b[:crcEnd], castagnoli))
	}, nil)

	for _, cut := range []int{0, 4, headerSize - 1, headerSize + 9, len(good) - 1} {
		_, err := Read(bytes.NewReader(good[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

// TestCheckedCorruptionPastChecksum forges a checksum-valid artifact whose
// adjacency is structurally bad: the full-verify scan must catch it.
func TestCheckedCorruptionPastChecksum(t *testing.T) {
	g := graph.FromEdges(4, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}})
	offsets, adj := g.CSR()
	badAdj := append([]graph.NodeID{}, adj...)
	badAdj[0] = 99 // out of range, then re-checksummed below
	var buf bytes.Buffer
	if err := writeSections(&buf, offsets, badAdj, nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil || !errors.Is(err, ErrFormat) {
		t.Fatalf("Read = %v, want ErrFormat (out-of-range neighbour)", err)
	}

	// The mmap fast path skips the scan by design; full verify catches it.
	path := filepath.Join(t.TempDir(), "bad.bricsbin")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(path, Options{Verify: VerifyFull}); err == nil {
		t.Fatalf("OpenMapped(VerifyFull) accepted an out-of-range neighbour")
	}
}

func TestOpenMappedRejectsWrongSize(t *testing.T) {
	g := gen.Social(300, 5)
	data := encode(t, g, 0)
	dir := t.TempDir()
	short := filepath.Join(dir, "short.bricsbin")
	if err := os.WriteFile(short, data[:len(data)-16], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(short, Options{}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short file: err = %v, want ErrTruncated", err)
	}
	long := filepath.Join(dir, "long.bricsbin")
	if err := os.WriteFile(long, append(data, 0, 0, 0), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(long, Options{}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("oversized file: err = %v, want ErrTruncated", err)
	}
}

func TestSectionAlignment(t *testing.T) {
	g := gen.Community(300, 6)
	data := encode(t, g, 0)
	h, err := decodeHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int64{h.offsetsOff, h.edgesOff} {
		if off%Align != 0 {
			t.Fatalf("section offset %d not %d-byte aligned", off, Align)
		}
	}
	if int64(len(data)) != h.edgesOff+h.AdjLen*4 {
		t.Fatalf("file size %d, want %d", len(data), h.edgesOff+h.AdjLen*4)
	}
}

func TestFromCSRContract(t *testing.T) {
	if _, err := graph.FromCSR(nil, nil); err == nil {
		t.Fatal("FromCSR accepted empty offsets")
	}
	if _, err := graph.FromCSR([]int64{1, 2}, make([]graph.NodeID, 2)); err == nil {
		t.Fatal("FromCSR accepted offsets[0] != 0")
	}
	if _, err := graph.FromCSR([]int64{0, 2, 1}, make([]graph.NodeID, 1)); err == nil {
		t.Fatal("FromCSR accepted non-monotone offsets")
	}
	if _, err := graph.FromCSR([]int64{0, 1}, make([]graph.NodeID, 2)); err == nil {
		t.Fatal("FromCSR accepted offsets not ending at len(adj)")
	}
	g, err := graph.FromCSR([]int64{0, 1, 2}, []graph.NodeID{1, 0})
	if err != nil {
		t.Fatalf("FromCSR: %v", err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("FromCSR view: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if _, err := graph.WFromCSR([]int64{0, 1, 2}, []graph.NodeID{1, 0}, []int32{5}); err == nil {
		t.Fatal("WFromCSR accepted mismatched weights length")
	}
}
