package bincsr_test

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/bincsr"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	repro_io "repro/internal/io"
)

// TestFarnessIdenticalAcrossLoadPaths is the acceptance gate for the binary
// load path: farness computed over an mmap-loaded artifact must be
// bit-identical to farness over the same graph round-tripped through the
// text format, at every worker count, on all four generator families. The
// kernels index the CSR arrays directly, so any aliasing or decode bug in
// the mapped views shows up here as a differing bit pattern.
func TestFarnessIdenticalAcrossLoadPaths(t *testing.T) {
	dir := t.TempDir()
	fams := map[string]*graph.Graph{
		"web":       gen.Web(400, 11),
		"social":    gen.Social(400, 12),
		"community": gen.Community(400, 13),
		"road":      gen.Road(400, 14),
	}
	for name, g0 := range fams {
		g0 = graph.Connect(g0)

		// Text path: serialise to the edge-list format and parse it back.
		var buf bytes.Buffer
		if err := repro_io.WriteEdgeList(&buf, g0); err != nil {
			t.Fatalf("%s: WriteEdgeList: %v", name, err)
		}
		gText, err := repro_io.ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("%s: ReadEdgeList: %v", name, err)
		}

		// Binary path: convert and mmap.
		path := filepath.Join(dir, name+".bricsbin")
		if err := bincsr.WriteFile(path, g0, bincsr.FlagConnected); err != nil {
			t.Fatalf("%s: WriteFile: %v", name, err)
		}
		m, err := bincsr.OpenMapped(path, bincsr.Options{})
		if err != nil {
			t.Fatalf("%s: OpenMapped: %v", name, err)
		}

		for _, workers := range []int{1, 2, 4} {
			want := core.ExactFarness(gText, workers)
			got := core.ExactFarness(m.G, workers)
			if len(want) != len(got) {
				t.Fatalf("%s w=%d: length %d vs %d", name, workers, len(want), len(got))
			}
			for v := range want {
				if math.Float64bits(want[v]) != math.Float64bits(got[v]) {
					t.Fatalf("%s w=%d: farness[%d] differs: text %v mmap %v",
						name, workers, v, want[v], got[v])
				}
			}
		}
		if err := m.Close(); err != nil {
			t.Fatalf("%s: Close: %v", name, err)
		}
	}
}
