//go:build linux

package bincsr

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and shared: replicas mapping the
// same artifact share page-cache frames, so N processes pay one copy of the
// adjacency data.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size == 0 {
		return nil, false, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func unmapFile(data []byte) error {
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
