package bincsr

import (
	"encoding/binary"
	"unsafe"
)

// The on-disk format is little-endian. On little-endian hosts (every
// platform this project targets in practice) the typed arrays and their
// byte images are the same bits, so writing serialises with zero copies and
// the mmap path aliases the mapping directly. Big-endian hosts fall back to
// an explicit encode/decode copy — correctness everywhere, zero-copy where
// it matters.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// int64Bytes returns the little-endian byte image of s. On LE hosts it
// aliases s (no copy); the caller must not let the view outlive s.
func int64Bytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
	}
	b := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
	}
	return b
}

// int32Bytes returns the little-endian byte image of s (see int64Bytes).
func int32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
	}
	b := make([]byte, len(s)*4)
	for i, v := range s {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(v))
	}
	return b
}

// decodeInt64 fills dst from its little-endian byte image. On LE hosts it
// is a single memmove.
func decodeInt64(dst []int64, b []byte) {
	if len(dst) == 0 {
		return
	}
	if hostLittleEndian {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), len(dst)*8), b)
		return
	}
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
}

// decodeInt32 fills dst from its little-endian byte image (see
// decodeInt64).
func decodeInt32(dst []int32, b []byte) {
	if len(dst) == 0 {
		return
	}
	if hostLittleEndian {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), len(dst)*4), b)
		return
	}
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
}

// aliasInt64 reinterprets a little-endian byte region as []int64 without
// copying. Caller guarantees 8-byte alignment (section offsets are 64-byte
// aligned and mmap bases are page-aligned) and a little-endian host.
func aliasInt64(b []byte, n int64) []int64 {
	if n == 0 {
		return []int64{}
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
}

// aliasInt32 reinterprets a little-endian byte region as []int32 (see
// aliasInt64).
func aliasInt32(b []byte, n int64) []int32 {
	if n == 0 {
		return []int32{}
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
}
