package bincsr

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// FuzzReadBinCSR feeds arbitrary bytes to the full-verification reader. The
// invariants: Read never panics, never over-allocates off a lying header
// (the MaxNodeID bound and chunked section reads cap allocation by the
// bytes actually present), and anything it does accept round-trips to an
// identical artifact — so corrupt, truncated, misaligned and bit-flipped
// inputs all surface as errors, not as quietly wrong graphs.
func FuzzReadBinCSR(f *testing.F) {
	seed := func(g *graph.Graph, flags Flags) []byte {
		var buf bytes.Buffer
		if err := Write(&buf, g, flags); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	valid := seed(gen.Web(200, 1), FlagConnected)
	f.Add(valid)
	f.Add(seed(graph.FromEdges(0, nil), 0))
	f.Add(seed(graph.FromEdges(3, [][2]graph.NodeID{{0, 1}, {1, 2}}), 0))
	{
		var buf bytes.Buffer
		if err := WriteW(&buf, graph.FromWeightedEdges(3, [][3]int32{{0, 1, 2}, {1, 2, 9}}), 0); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Classic liars: a valid header grafted onto nothing, truncations, and a
	// size field inflated past the data.
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)-3])
	{
		lying := append([]byte{}, valid...)
		binary.LittleEndian.PutUint64(lying[24:], 1<<40)
		f.Add(lying)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		art, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must be a coherent graph that re-encodes to an
		// artifact accepted again with the same shape.
		if art.G == nil {
			t.Fatal("accepted artifact with nil graph")
		}
		if err := art.G.Validate(); err != nil {
			t.Fatalf("accepted artifact fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if art.Header.Weighted() {
			if art.W == nil {
				t.Fatal("weighted artifact with nil W")
			}
			if err := WriteW(&buf, art.W, art.Header.Flags); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
		} else if err := Write(&buf, art.G, art.Header.Flags); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if again.Header.N != art.Header.N || again.Header.AdjLen != art.Header.AdjLen {
			t.Fatalf("round trip changed shape: (%d,%d) -> (%d,%d)",
				art.Header.N, art.Header.AdjLen, again.Header.N, again.Header.AdjLen)
		}
	})
}
