package bincsr

import (
	"fmt"
	"hash/crc32"
	"os"
	"sync/atomic"

	"repro/internal/graph"
)

// VerifyMode selects how much of an artifact OpenMapped checks before
// serving it.
type VerifyMode int

const (
	// VerifyFast (the default) validates the header CRC, the offsets
	// section CRC and the offsets structure — O(n) over the small array,
	// touching none of the edge pages, so a mapped graph is ready in
	// page-cache time. The edges section is trusted until first fault-in;
	// a kernel tripping over a corrupt artifact is contained by the
	// server's per-request panic recovery, and operators who do not trust
	// their artifact store use VerifyFull.
	VerifyFast VerifyMode = iota
	// VerifyFull additionally checks the edges/weights section CRCs and
	// runs the parallel neighbour-range/sortedness scan. It faults in the
	// whole artifact once (sequentially — still far cheaper than a text
	// parse).
	VerifyFull
)

// Options tunes OpenMapped.
type Options struct {
	Verify  VerifyMode
	Workers int // parallel verification scan width (0 = GOMAXPROCS)
}

// Mapped is an artifact whose arrays alias an mmap'd file (zero-copy) or,
// on platforms without mmap support and on big-endian hosts, a private heap
// copy. The embedded Artifact's graph views follow graph.FromCSR's aliasing
// contract: they are valid only until Close, which unmaps the memory — the
// caller must guarantee no traversal is still running (the server registry
// does this with per-graph reference counts and run draining).
type Mapped struct {
	Artifact
	data   []byte
	mapped bool
	path   string
	closed atomic.Bool
}

// OpenMapped maps the artifact at path. On linux/little-endian the returned
// graph's offsets and edges slices are views straight into the mapping —
// load cost is independent of graph size (page faults are paid lazily by
// the first traversals, and the page cache is shared across processes
// mapping the same artifact). Elsewhere the file is read into memory
// (copy fallback) behind the same API.
func OpenMapped(path string, opts Options) (m *Mapped, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer closeKeepErr(&err, f)
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, want at least the %d-byte header", ErrTruncated, size, headerSize)
	}
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	h, err := decodeHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	_, _, _, total := layout(h.N, h.AdjLen, h.Weighted())
	if size != total {
		return nil, fmt.Errorf("%w: file is %d bytes, layout wants %d", ErrTruncated, size, total)
	}

	data, mapped, err := mapFile(f, size)
	if err != nil {
		return nil, err
	}
	mm := &Mapped{data: data, mapped: mapped, path: path}
	defer func() {
		if err != nil {
			_ = mm.Close()
			m = nil
		}
	}()
	m = mm

	var offsets []int64
	var adj, weights []int32
	if hostLittleEndian {
		// Zero-copy: alias the mapping. Section offsets are 64-byte
		// aligned and the base is page-aligned, so the views are aligned.
		offsets = aliasInt64(data[h.offsetsOff:], h.N+1)
		adj = aliasInt32(data[h.edgesOff:], h.AdjLen)
		if h.Weighted() {
			weights = aliasInt32(data[h.weightsOff:], h.AdjLen)
		}
	} else {
		// Big-endian host: the on-disk bits are byte-swapped relative to
		// memory; decode-copy instead of aliasing.
		offsets = make([]int64, h.N+1)
		decodeInt64(offsets, data[h.offsetsOff:h.offsetsOff+(h.N+1)*8])
		adj = make([]int32, h.AdjLen)
		decodeInt32(adj, data[h.edgesOff:h.edgesOff+h.AdjLen*4])
		if h.Weighted() {
			weights = make([]int32, h.AdjLen)
			decodeInt32(weights, data[h.weightsOff:h.weightsOff+h.AdjLen*4])
		}
	}

	// The offsets section is always verified — it is the array every
	// kernel indexes blindly, it is small, and checking it touches no edge
	// pages.
	if got := crc32.Checksum(data[h.offsetsOff:h.offsetsOff+(h.N+1)*8], castagnoli); got != h.offCRC {
		return nil, fmt.Errorf("%w: offsets section CRC %08x, want %08x", ErrChecksum, got, h.offCRC)
	}
	if opts.Verify == VerifyFull {
		if got := crc32.Checksum(data[h.edgesOff:h.edgesOff+h.AdjLen*4], castagnoli); got != h.edgeCRC {
			return nil, fmt.Errorf("%w: edges section CRC %08x, want %08x", ErrChecksum, got, h.edgeCRC)
		}
		if h.Weighted() {
			if got := crc32.Checksum(data[h.weightsOff:h.weightsOff+h.AdjLen*4], castagnoli); got != h.wCRC {
				return nil, fmt.Errorf("%w: weights section CRC %08x, want %08x", ErrChecksum, got, h.wCRC)
			}
		}
		art, err := assemble(h, offsets, adj, weights, opts.Workers)
		if err != nil {
			return nil, err
		}
		m.Artifact = *art
		return m, nil
	}
	// Fast path: structural offsets check only (graph.FromCSR).
	g, err := fromCSRArtifact(h, offsets, adj, weights)
	if err != nil {
		return nil, err
	}
	m.Artifact = *g
	return m, nil
}

// fromCSRArtifact wraps arrays without the O(m) adjacency scan.
func fromCSRArtifact(h Header, offsets []int64, adj, weights []int32) (*Artifact, error) {
	g, err := graph.FromCSR(offsets, adj)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	art := &Artifact{Header: h, G: g}
	if h.Weighted() {
		if art.W, err = graph.WFromCSR(offsets, adj, weights); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
	}
	return art, nil
}

// Mapped reports whether the artifact is an actual memory mapping (true on
// linux little-endian hosts) or the copy fallback.
func (m *Mapped) Mapped() bool { return m.mapped }

// Path returns the artifact path.
func (m *Mapped) Path() string { return m.path }

// ResidentBytes is the byte footprint the artifact pins: the mapping (or
// heap copy) length. For a mapping this is virtual size — actual residency
// grows as traversals fault pages in — which is the honest upper bound an
// eviction budget should charge.
func (m *Mapped) ResidentBytes() int64 { return int64(len(m.data)) }

// VerifyFull re-checks the full artifact (section CRCs plus the adjacency
// scan) on demand, e.g. before trusting a long-lived mapping after external
// tampering is suspected.
func (m *Mapped) VerifyFull(workers int) error {
	h := m.Header
	if got := crc32.Checksum(m.data[h.edgesOff:h.edgesOff+h.AdjLen*4], castagnoli); got != h.edgeCRC {
		return fmt.Errorf("%w: edges section CRC %08x, want %08x", ErrChecksum, got, h.edgeCRC)
	}
	if h.Weighted() {
		if got := crc32.Checksum(m.data[h.weightsOff:h.weightsOff+h.AdjLen*4], castagnoli); got != h.wCRC {
			return fmt.Errorf("%w: weights section CRC %08x, want %08x", ErrChecksum, got, h.wCRC)
		}
	}
	offsets, adj := m.G.CSR()
	var weights []int32
	if m.W != nil {
		_, _, weights = m.W.CSR()
	}
	return scanAdjacency(offsets, adj, weights, workers)
}

// Close releases the mapping (or heap copy). After Close every graph view
// handed out by this Mapped is invalid; see the type doc for the draining
// contract. Close is idempotent.
func (m *Mapped) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	data := m.data
	m.data = nil
	m.G, m.W = nil, nil
	if m.mapped {
		return unmapFile(data)
	}
	return nil
}
