//go:build !linux

package bincsr

import (
	"io"
	"os"
)

// mapFile on platforms without the syscall.Mmap path reads the file into
// memory — the copy fallback behind the same Mapped API. Loads are still a
// single sequential read of a binary image (no parsing), just not
// zero-copy.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size == 0 {
		return nil, false, nil
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
		return nil, false, err
	}
	return data, false, nil
}

func unmapFile([]byte) error { return nil }
