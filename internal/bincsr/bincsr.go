// Package bincsr reads and writes .bricsbin artifacts: a versioned binary
// CSR graph format designed so the arrays are directly mappable. A text
// graph is parsed once (cmd/brics convert) and every subsequent load is a
// page-cache-speed mmap instead of a parser — N bricsd replicas mapping the
// same artifact share one copy of the adjacency data in the page cache.
//
// On-disk layout (all integers little-endian):
//
//	offset size  field
//	0      8     magic "BRICSBIN"
//	8      4     version (currently 1)
//	12     4     flags (bit 0 weighted, bit 1 connected)
//	16     8     n — node count
//	24     8     adjLen — directed adjacency entries (2·edges)
//	32     8     offsets section start (byte offset, 64-byte aligned)
//	40     8     edges section start (64-byte aligned)
//	48     8     weights section start (0 when unweighted)
//	56     4     offsets section CRC32-C
//	60     4     edges section CRC32-C
//	64     4     weights section CRC32-C (0 when unweighted)
//	68     4     header CRC32-C (over bytes [0, 68))
//	72     56    reserved, zero
//	128    ...   offsets section: (n+1) × int64
//	...          edges section:   adjLen × int32 (sorted per row)
//	...          weights section: adjLen × int32 (optional)
//
// Sections start on 64-byte boundaries (zero padding between them). An
// mmap base is page-aligned, so file-offset alignment carries into memory:
// the offsets/edges slices handed to traversal kernels are cache-line
// aligned views straight into the mapping, no decode step. Version 1
// section offsets are fully determined by n, adjLen and the weighted flag;
// readers verify the stored offsets against the canonical layout, so a
// reshuffled (misaligned) artifact is rejected rather than mis-aliased.
package bincsr

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/graph"
	"repro/internal/par"
)

// Magic identifies a .bricsbin artifact; it is the first 8 bytes of the
// file and what io.ReadAny sniffs on.
const Magic = "BRICSBIN"

// Version is the current format version. Readers reject artifacts with a
// newer version (forward compatibility is explicit, not guessed); older
// versions would be migrated by re-converting, but version 1 is the first.
const Version = 1

const (
	headerSize = 128
	// Align is the section alignment: one cache line, so mapped arrays
	// never split a cache line with the header and SIMD-friendly loads in
	// future kernels stay aligned.
	Align = 64
	// crcEnd is where the header CRC coverage stops (the CRC field itself
	// and the reserved tail are excluded).
	crcEnd = 68
)

// Flags is the artifact feature bitmask.
type Flags uint32

const (
	// FlagWeighted marks an artifact carrying a weights section; it round
	// trips a WGraph instead of a Graph.
	FlagWeighted Flags = 1 << 0
	// FlagConnected records that the converter verified (or enforced, via
	// graph.Connect) connectivity, letting servers skip the O(n+m)
	// IsConnected scan on load — the scan would fault in every page and
	// defeat the lazy-load point of the mmap path.
	FlagConnected Flags = 1 << 1
)

var (
	// ErrTruncated reports an artifact (or any graph file) shorter than
	// its own header or framing promises.
	ErrTruncated = errors.New("bincsr: truncated input")
	// ErrFormat reports bytes that are not a .bricsbin artifact or violate
	// the version-1 layout.
	ErrFormat = errors.New("bincsr: malformed artifact")
	// ErrChecksum reports a section whose CRC32-C does not match its
	// header entry.
	ErrChecksum = errors.New("bincsr: checksum mismatch")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Header is the decoded artifact header.
type Header struct {
	Version uint32
	Flags   Flags
	N       int64 // nodes
	AdjLen  int64 // directed adjacency entries (2·edges)

	offsetsOff, edgesOff, weightsOff int64
	offCRC, edgeCRC, wCRC            uint32
}

// Weighted reports whether the artifact carries a weights section.
func (h Header) Weighted() bool { return h.Flags&FlagWeighted != 0 }

// Connected reports whether the converter recorded the graph as connected.
func (h Header) Connected() bool { return h.Flags&FlagConnected != 0 }

// align64 rounds up to the next section boundary.
func align64(off int64) int64 { return (off + Align - 1) &^ (Align - 1) }

// layout computes the canonical version-1 section offsets and total file
// size for a graph shape.
func layout(n, adjLen int64, weighted bool) (offsetsOff, edgesOff, weightsOff, total int64) {
	offsetsOff = headerSize
	edgesOff = align64(offsetsOff + (n+1)*8)
	end := edgesOff + adjLen*4
	if weighted {
		weightsOff = align64(end)
		end = weightsOff + adjLen*4
	}
	return offsetsOff, edgesOff, weightsOff, end
}

// encodeHeader assembles the 128-byte header, computing the header CRC.
func encodeHeader(h Header) [headerSize]byte {
	var b [headerSize]byte
	copy(b[0:8], Magic)
	binary.LittleEndian.PutUint32(b[8:], h.Version)
	binary.LittleEndian.PutUint32(b[12:], uint32(h.Flags))
	binary.LittleEndian.PutUint64(b[16:], uint64(h.N))
	binary.LittleEndian.PutUint64(b[24:], uint64(h.AdjLen))
	binary.LittleEndian.PutUint64(b[32:], uint64(h.offsetsOff))
	binary.LittleEndian.PutUint64(b[40:], uint64(h.edgesOff))
	binary.LittleEndian.PutUint64(b[48:], uint64(h.weightsOff))
	binary.LittleEndian.PutUint32(b[56:], h.offCRC)
	binary.LittleEndian.PutUint32(b[60:], h.edgeCRC)
	binary.LittleEndian.PutUint32(b[64:], h.wCRC)
	binary.LittleEndian.PutUint32(b[68:], crc32.Checksum(b[:crcEnd], castagnoli))
	return b
}

// decodeHeader parses and validates the fixed-size header: magic, version,
// header CRC, node bound, and the canonical section layout.
func decodeHeader(b []byte) (Header, error) {
	if len(b) < headerSize {
		return Header{}, fmt.Errorf("%w: %d header bytes, want %d", ErrTruncated, len(b), headerSize)
	}
	if string(b[0:8]) != Magic {
		return Header{}, fmt.Errorf("%w: bad magic %q", ErrFormat, b[0:8])
	}
	h := Header{
		Version: binary.LittleEndian.Uint32(b[8:]),
		Flags:   Flags(binary.LittleEndian.Uint32(b[12:])),
		N:       int64(binary.LittleEndian.Uint64(b[16:])),
		AdjLen:  int64(binary.LittleEndian.Uint64(b[24:])),
	}
	if h.Version != Version {
		return Header{}, fmt.Errorf("%w: version %d (this reader handles %d)", ErrFormat, h.Version, Version)
	}
	want := crc32.Checksum(b[:crcEnd], castagnoli)
	if got := binary.LittleEndian.Uint32(b[68:]); got != want {
		return Header{}, fmt.Errorf("%w: header CRC %08x, want %08x", ErrChecksum, got, want)
	}
	if h.N < 0 || h.N > graph.MaxNodeID {
		return Header{}, fmt.Errorf("%w: %d nodes outside [0, %d]", ErrFormat, h.N, int64(graph.MaxNodeID))
	}
	// Both directions of every edge are stored, so the adjacency length is
	// even and bounded by the complete graph on n nodes.
	if h.AdjLen < 0 || h.AdjLen%2 != 0 || (h.N > 0 && h.AdjLen > h.N*(h.N-1)) || (h.N == 0 && h.AdjLen != 0) {
		return Header{}, fmt.Errorf("%w: adjacency length %d invalid for %d nodes", ErrFormat, h.AdjLen, h.N)
	}
	h.offsetsOff = int64(binary.LittleEndian.Uint64(b[32:]))
	h.edgesOff = int64(binary.LittleEndian.Uint64(b[40:]))
	h.weightsOff = int64(binary.LittleEndian.Uint64(b[48:]))
	offsetsOff, edgesOff, weightsOff, _ := layout(h.N, h.AdjLen, h.Weighted())
	if h.offsetsOff != offsetsOff || h.edgesOff != edgesOff || h.weightsOff != weightsOff {
		return Header{}, fmt.Errorf("%w: section offsets (%d,%d,%d) differ from the canonical v1 layout (%d,%d,%d)",
			ErrFormat, h.offsetsOff, h.edgesOff, h.weightsOff, offsetsOff, edgesOff, weightsOff)
	}
	h.offCRC = binary.LittleEndian.Uint32(b[56:])
	h.edgeCRC = binary.LittleEndian.Uint32(b[60:])
	h.wCRC = binary.LittleEndian.Uint32(b[64:])
	if !h.Weighted() && h.wCRC != 0 {
		return Header{}, fmt.Errorf("%w: weights CRC set on an unweighted artifact", ErrFormat)
	}
	return h, nil
}

// Artifact is one decoded .bricsbin: the header plus the graph. G is always
// populated (for a weighted artifact it is the unweighted view over the
// same arrays); W is populated only when the artifact carries weights.
type Artifact struct {
	Header Header
	G      *graph.Graph
	W      *graph.WGraph
}

// Write serialises g as a version-1 artifact. Pass FlagConnected when the
// graph is known connected so loaders can skip the connectivity scan. The
// three section checksums are computed concurrently before the (sequential,
// buffered) write.
func Write(w io.Writer, g *graph.Graph, flags Flags) error {
	offsets, adj := g.CSR()
	return writeSections(w, offsets, adj, nil, flags&^FlagWeighted)
}

// WriteW serialises a weighted graph, adding the weights section.
func WriteW(w io.Writer, g *graph.WGraph, flags Flags) error {
	offsets, adj, weights := g.CSR()
	return writeSections(w, offsets, adj, weights, flags|FlagWeighted)
}

// WriteFile writes g to path via Write.
func WriteFile(path string, g *graph.Graph, flags Flags) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer closeKeepErr(&err, f)
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := Write(bw, g, flags); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteFileW writes a weighted graph to path via WriteW.
func WriteFileW(path string, g *graph.WGraph, flags Flags) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer closeKeepErr(&err, f)
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := WriteW(bw, g, flags); err != nil {
		return err
	}
	return bw.Flush()
}

// closeKeepErr closes c, surfacing its error unless one is already set —
// the write path must not report success when the final flush-to-disk
// close fails.
func closeKeepErr(err *error, c io.Closer) {
	if cerr := c.Close(); cerr != nil && *err == nil {
		*err = cerr
	}
}

func writeSections(w io.Writer, offsets []int64, adj []graph.NodeID, weights []int32, flags Flags) error {
	n := int64(len(offsets)) - 1
	if n < 0 {
		return fmt.Errorf("bincsr: graph has an empty offsets array")
	}
	if n > graph.MaxNodeID {
		return fmt.Errorf("bincsr: %d nodes exceeds MaxNodeID (%d)", n, int64(graph.MaxNodeID))
	}
	adjLen := int64(len(adj))
	offBytes := int64Bytes(offsets)
	edgeBytes := int32Bytes(adj)
	var wBytes []byte
	if flags&FlagWeighted != 0 {
		wBytes = int32Bytes(weights)
	}

	h := Header{Version: Version, Flags: flags, N: n, AdjLen: adjLen}
	h.offsetsOff, h.edgesOff, h.weightsOff, _ = layout(n, adjLen, h.Weighted())

	// The checksums are the CPU-bound part of conversion; one goroutine
	// per section overlaps them (the sections are independent byte
	// ranges).
	crcs := make([]uint32, 3)
	done := make(chan struct{}, 3)
	for i, b := range [][]byte{offBytes, edgeBytes, wBytes} {
		go func(i int, b []byte) {
			crcs[i] = crc32.Checksum(b, castagnoli)
			done <- struct{}{}
		}(i, b)
	}
	for range 3 {
		<-done
	}
	h.offCRC, h.edgeCRC = crcs[0], crcs[1]
	if h.Weighted() {
		h.wCRC = crcs[2]
	}

	hdr := encodeHeader(h)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	pos := int64(headerSize)
	writePart := func(start int64, b []byte) error {
		if err := writeZeros(w, start-pos); err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
		pos = start + int64(len(b))
		return nil
	}
	if err := writePart(h.offsetsOff, offBytes); err != nil {
		return err
	}
	if err := writePart(h.edgesOff, edgeBytes); err != nil {
		return err
	}
	if h.Weighted() {
		if err := writePart(h.weightsOff, wBytes); err != nil {
			return err
		}
	}
	return nil
}

var zeroPad [Align]byte

// writeZeros pads to the next section boundary (gaps are < Align bytes).
func writeZeros(w io.Writer, gap int64) error {
	if gap == 0 {
		return nil
	}
	if gap < 0 || gap >= Align {
		return fmt.Errorf("bincsr: internal: section gap %d", gap)
	}
	_, err := w.Write(zeroPad[:gap])
	return err
}

// Read decodes an artifact from a stream with full verification: header and
// section checksums, offsets structure, neighbour range, and positive
// weights. Allocation is driven by the bytes actually present — a header
// lying about its sizes hits ErrTruncated before any oversized allocation
// (the MaxNodeID bound caps the node count up front).
func Read(r io.Reader) (*Artifact, error) {
	return readAll(r, 0)
}

// ReadWorkers is Read with a parallel verification scan (0 = GOMAXPROCS).
func ReadWorkers(r io.Reader, workers int) (*Artifact, error) {
	return readAll(r, workers)
}

// ReadFile loads an artifact from a file via Read, propagating Close
// errors.
func ReadFile(path string) (a *Artifact, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer closeKeepErr(&err, f)
	return Read(bufio.NewReaderSize(f, 1<<20))
}

func readAll(r io.Reader, workers int) (*Artifact, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	h, err := decodeHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	pos := int64(headerSize)
	section := func(start, size int64) ([]byte, error) {
		if err := discardN(r, start-pos); err != nil {
			return nil, err
		}
		b, err := readExact(r, size)
		if err != nil {
			return nil, err
		}
		pos = start + size
		return b, nil
	}
	offBytes, err := section(h.offsetsOff, (h.N+1)*8)
	if err != nil {
		return nil, err
	}
	if got := crc32.Checksum(offBytes, castagnoli); got != h.offCRC {
		return nil, fmt.Errorf("%w: offsets section CRC %08x, want %08x", ErrChecksum, got, h.offCRC)
	}
	edgeBytes, err := section(h.edgesOff, h.AdjLen*4)
	if err != nil {
		return nil, err
	}
	if got := crc32.Checksum(edgeBytes, castagnoli); got != h.edgeCRC {
		return nil, fmt.Errorf("%w: edges section CRC %08x, want %08x", ErrChecksum, got, h.edgeCRC)
	}
	var wtBytes []byte
	if h.Weighted() {
		if wtBytes, err = section(h.weightsOff, h.AdjLen*4); err != nil {
			return nil, err
		}
		if got := crc32.Checksum(wtBytes, castagnoli); got != h.wCRC {
			return nil, fmt.Errorf("%w: weights section CRC %08x, want %08x", ErrChecksum, got, h.wCRC)
		}
	}

	offsets := make([]int64, h.N+1)
	decodeInt64(offsets, offBytes)
	adj := make([]graph.NodeID, h.AdjLen)
	decodeInt32(adj, edgeBytes)
	var weights []int32
	if h.Weighted() {
		weights = make([]int32, h.AdjLen)
		decodeInt32(weights, wtBytes)
	}
	return assemble(h, offsets, adj, weights, workers)
}

// assemble builds the graph views over decoded (or mapped) arrays, running
// the structural checks shared by both read paths: offsets via
// graph.FromCSR, then the parallel neighbour-range/sortedness scan.
func assemble(h Header, offsets []int64, adj []graph.NodeID, weights []int32, workers int) (*Artifact, error) {
	g, err := graph.FromCSR(offsets, adj)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if err := scanAdjacency(offsets, adj, weights, workers); err != nil {
		return nil, err
	}
	art := &Artifact{Header: h, G: g}
	if h.Weighted() {
		if art.W, err = graph.WFromCSR(offsets, adj, weights); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
	}
	return art, nil
}

// scanAdjacency verifies every adjacency row in parallel: neighbours in
// range, strictly sorted (no duplicates, no self loops follows from the
// converter but is not required for memory safety so it is not re-checked
// here), and weights positive. This is what makes a checksum-valid but
// hand-corrupted artifact fail loudly instead of crashing a kernel with an
// out-of-range index.
func scanAdjacency(offsets []int64, adj []graph.NodeID, weights []int32, workers int) error {
	n := len(offsets) - 1
	var mu sync.Mutex
	var bad error
	fail := func(err error) {
		mu.Lock()
		if bad == nil {
			bad = err
		}
		mu.Unlock()
	}
	par.ForBlocks(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			row := adj[offsets[v]:offsets[v+1]]
			prev := graph.NodeID(-1)
			for i, w := range row {
				if w < 0 || int(w) >= n {
					fail(fmt.Errorf("%w: node %d has out-of-range neighbour %d", ErrFormat, v, w))
					return
				}
				if w <= prev {
					fail(fmt.Errorf("%w: adjacency of node %d not strictly sorted", ErrFormat, v))
					return
				}
				prev = w
				if weights != nil && weights[offsets[v]+int64(i)] <= 0 {
					fail(fmt.Errorf("%w: edge {%d,%d} has non-positive weight", ErrFormat, v, w))
					return
				}
			}
		}
	})
	return bad
}

// readExact reads exactly want bytes, growing the buffer chunk by chunk so
// a truncated stream errors out having allocated no more than ~2× the bytes
// actually present — never the full size a corrupt header claims.
func readExact(r io.Reader, want int64) ([]byte, error) {
	const chunk = 4 << 20
	if want == 0 {
		return nil, nil
	}
	cap0 := want
	if cap0 > chunk {
		cap0 = chunk
	}
	buf := make([]byte, 0, cap0)
	for int64(len(buf)) < want {
		c := want - int64(len(buf))
		if c > chunk {
			c = chunk
		}
		old := len(buf)
		buf = append(buf, make([]byte, c)...)
		if _, err := io.ReadFull(r, buf[old:]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
	}
	return buf, nil
}

// discardN skips alignment padding.
func discardN(r io.Reader, n int64) error {
	if n == 0 {
		return nil
	}
	if n < 0 {
		return fmt.Errorf("%w: sections overlap", ErrFormat)
	}
	if _, err := io.CopyN(io.Discard, r, n); err != nil {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return nil
}
