package reduce

import (
	"fmt"
	"testing"

	"repro/internal/graph"
)

// BenchmarkReductionPipeline measures the full iterative pipeline per
// generator family and worker count — the preprocessing cost the paper's
// Table II amortises over the sampled traversals. Single-core hosts still
// run the >1-worker cases (goroutines interleave); the speedup columns are
// only meaningful with real cores.
func BenchmarkReductionPipeline(b *testing.B) {
	for _, fam := range generatorFamilies() {
		g := graph.Connect(fam.gen(20000, 42))
		for _, w := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", fam.name, w), func(b *testing.B) {
				b.ReportAllocs()
				opts := Options{Twins: true, Chains: true, Redundant: true, Workers: w}
				for i := 0; i < b.N; i++ {
					if _, err := RunIterative(g, opts, 0); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkReductionAllocs isolates the allocation profile of the
// single-pass pipeline at one worker — the pooled-scratch target of the
// churn audit (identity maps, keep masks and remaps used to be rebuilt per
// stage and per round; now they come from sync.Pool buffers).
func BenchmarkReductionAllocs(b *testing.B) {
	for _, fam := range generatorFamilies() {
		g := graph.Connect(fam.gen(20000, 42))
		b.Run(fam.name, func(b *testing.B) {
			b.ReportAllocs()
			opts := Options{Twins: true, Chains: true, Redundant: true, Workers: 1}
			for i := 0; i < b.N; i++ {
				if _, err := Run(g, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
