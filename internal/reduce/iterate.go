package reduce

import (
	"repro/internal/chains"
	"repro/internal/graph"
	"repro/internal/redundant"
)

// RunIterative executes the Algorithm 4 pipeline and then keeps iterating
// the chain and redundant stages on the weighted reduced graph until a
// fixpoint: each removal round can expose new degree-≤2 runs (e.g. an
// anchor whose dangling tails are gone) and new redundant neighbourhoods
// that the paper's single pass leaves in place. Twins are detected once, on
// the original simple graph, exactly as in Run.
//
// maxRounds caps the extra rounds (0 means no cap); real graphs converge
// in 2–4.
func RunIterative(g *graph.Graph, opts Options, maxRounds int) (*Reduction, error) {
	red, err := Run(g, opts)
	if err != nil {
		return nil, err
	}
	if !opts.Chains && !opts.Redundant {
		return red, nil
	}
	for round := 0; maxRounds == 0 || round < maxRounds; round++ {
		removed := 0
		if opts.Chains {
			removed += contractWeightedChains(red)
		}
		if opts.Redundant {
			removed += removeRedundantRound(red)
		}
		red.Stats.ExtraRounds = round + 1
		if removed == 0 {
			break
		}
	}
	return red, nil
}

// contractWeightedChains runs one weighted chain round over red.G,
// appending events and rebuilding the reduced graph. Returns the number of
// removed nodes.
func contractWeightedChains(red *Reduction) int {
	wch := chains.WFind(red.G)
	if wch.WholeGraph || wch.Removed == 0 {
		return 0
	}
	cur := red.G
	keep := make([]bool, cur.NumNodes())
	for i := range keep {
		keep[i] = true
	}
	for ci := range wch.Chains {
		c := &wch.Chains[ci]
		interior := make([]graph.NodeID, len(c.Interior))
		for i, v := range c.Interior {
			keep[v] = false
			interior[i] = red.ToOld[v]
		}
		v := graph.NodeID(-1)
		if c.V >= 0 {
			v = red.ToOld[c.V]
		}
		red.Events = append(red.Events, &ChainEvent{
			U:        red.ToOld[c.U],
			V:        v,
			Interior: interior,
			Kind:     c.Type,
			Offsets:  append([]int32(nil), c.Offsets...),
			Total:    c.Total,
		})
		red.Stats.ChainNodes += len(c.Interior)
		red.Stats.NumChains++
	}
	// Rebuild: kept-kept edges plus contracted parallels.
	var kept []graph.NodeID
	toNewLocal := make([]graph.NodeID, cur.NumNodes())
	for i := range toNewLocal {
		toNewLocal[i] = -1
	}
	for v := 0; v < cur.NumNodes(); v++ {
		if keep[v] {
			toNewLocal[v] = graph.NodeID(len(kept))
			kept = append(kept, graph.NodeID(v))
		}
	}
	b := graph.NewWBuilder(len(kept))
	cur.Edges(func(u, v graph.NodeID, w int32) {
		if keep[u] && keep[v] {
			_ = b.AddEdge(toNewLocal[u], toNewLocal[v], w)
		}
	})
	for ci := range wch.Chains {
		c := &wch.Chains[ci]
		if c.Type == chains.Parallel && c.U != c.V {
			_ = b.AddEdge(toNewLocal[c.U], toNewLocal[c.V], c.Total)
		}
	}
	newToOld := make([]graph.NodeID, len(kept))
	for i, v := range kept {
		newToOld[i] = red.ToOld[v]
	}
	red.G = b.Build()
	red.ToOld = newToOld
	red.rebuildToNew()
	return wch.Removed
}

// removeRedundantRound runs one redundant-node round over red.G. Returns
// the number of removed nodes.
func removeRedundantRound(red *Reduction) int {
	rn := redundant.Find(red.G, nil)
	if len(rn.Nodes) == 0 {
		return 0
	}
	keep := make([]bool, red.G.NumNodes())
	for i := range keep {
		keep[i] = true
	}
	for i := range rn.Nodes {
		nd := &rn.Nodes[i]
		keep[nd.V] = false
		nbrs := make([]graph.NodeID, len(nd.Nbrs))
		for j, x := range nd.Nbrs {
			nbrs[j] = red.ToOld[x]
		}
		red.Events = append(red.Events, &RedundantEvent{
			V:       red.ToOld[nd.V],
			Nbrs:    nbrs,
			Weights: append([]int32(nil), nd.Weights...),
		})
	}
	red.Stats.RedundantNodes += len(rn.Nodes)
	sub, toOld, _ := graph.WSubgraph(red.G, keep)
	newToOld := make([]graph.NodeID, len(toOld))
	for i, old := range toOld {
		newToOld[i] = red.ToOld[old]
	}
	red.G = sub
	red.ToOld = newToOld
	red.rebuildToNew()
	return len(rn.Nodes)
}

// rebuildToNew refreshes the inverse map after a round changed ToOld.
func (r *Reduction) rebuildToNew() {
	for i := range r.ToNew {
		r.ToNew[i] = -1
	}
	for newID, old := range r.ToOld {
		r.ToNew[old] = graph.NodeID(newID)
	}
}
