package reduce

import (
	"context"
	"time"

	"repro/internal/chains"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/redundant"
)

// RunIterative executes the Algorithm 4 pipeline and then keeps iterating
// the chain and redundant stages on the weighted reduced graph until a
// fixpoint: each removal round can expose new degree-≤2 runs (e.g. an
// anchor whose dangling tails are gone) and new redundant neighbourhoods
// that the paper's single pass leaves in place. Twins are detected once, on
// the original simple graph, exactly as in Run.
//
// maxRounds caps the extra rounds (0 means no cap); real graphs converge
// in 2–4.
func RunIterative(g *graph.Graph, opts Options, maxRounds int) (*Reduction, error) {
	return run(context.Background(), g, opts, true, maxRounds)
}

// RunIterativeContext is RunIterative with cooperative cancellation: in
// addition to RunContext's per-stage checkpoints, the fixpoint loop checks
// ctx before every round (checkpoint "reduce.round").
func RunIterativeContext(ctx context.Context, g *graph.Graph, opts Options, maxRounds int) (*Reduction, error) {
	return run(ctx, g, opts, true, maxRounds)
}

// rounds iterates the chain and redundant stages until no round removes a
// node (or maxRounds is hit). Each round reuses the pooled scratch of the
// first pass — the fixpoint loop allocates nothing beyond the events and
// the per-round reduced graphs.
func (p *pipeline) rounds(ctx context.Context, opts Options, maxRounds int) error {
	t0 := time.Now()
	defer func() { p.red.Timings.Rounds = time.Since(t0) }()
	for round := 0; maxRounds == 0 || round < maxRounds; round++ {
		if err := fault.Checkpoint(ctx, "reduce.round"); err != nil {
			return err
		}
		removed := 0
		if opts.Chains {
			removed += p.chainRound()
		}
		if opts.Redundant {
			removed += p.redundantRound()
		}
		p.red.Stats.ExtraRounds = round + 1
		if removed == 0 {
			break
		}
	}
	return nil
}

// chainRound runs one weighted chain round over p.wg, appending events and
// rebuilding the reduced graph. Returns the number of removed nodes.
func (p *pipeline) chainRound() int {
	wch := chains.WFindWorkers(p.wg, p.workers)
	if wch.WholeGraph || wch.Removed == 0 {
		return 0
	}
	red := p.red
	stageN := p.wg.NumNodes()
	keep := p.sc.keepAll(stageN, p.workers)
	extra := make([]graph.WEdge, 0, len(wch.Chains))
	for ci := range wch.Chains {
		c := &wch.Chains[ci]
		interior := make([]graph.NodeID, len(c.Interior))
		for i, v := range c.Interior {
			keep[v] = false
			interior[i] = p.oldOf(v)
		}
		v := graph.NodeID(-1)
		if c.V >= 0 {
			v = p.oldOf(c.V)
		}
		// c.Offsets is freshly allocated per chain by WFind; the event
		// takes ownership rather than copying.
		red.Events = append(red.Events, &ChainEvent{
			U:        p.oldOf(c.U),
			V:        v,
			Interior: interior,
			Kind:     c.Type,
			Offsets:  c.Offsets,
			Total:    c.Total,
		})
		red.Stats.ChainNodes += len(c.Interior)
		red.Stats.NumChains++
		if c.Type == chains.Parallel && c.U != c.V {
			extra = append(extra, graph.WEdge{U: c.U, V: c.V, W: c.Total})
		}
	}
	wg := graph.WContractInto(p.wg, keep, p.sc.toNew[:stageN], extra, p.workers)
	p.compose(stageN, wg.NumNodes())
	p.wg = wg
	return wch.Removed
}

// redundantRound runs one redundant-node round over p.wg. Returns the
// number of removed nodes.
func (p *pipeline) redundantRound() int {
	rn := redundant.FindWorkers(p.wg, nil, p.workers)
	if len(rn.Nodes) == 0 {
		return 0
	}
	p.red.Stats.RedundantNodes += len(rn.Nodes)
	p.removeRedundant(rn)
	return len(rn.Nodes)
}
