package reduce

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// workerSweep returns the worker counts the determinism tests compare:
// 1..GOMAXPROCS plus a few fixed counts beyond it, so block-boundary and
// oversubscription cases are exercised even on small machines.
func workerSweep() []int {
	seen := map[int]bool{}
	var out []int
	add := func(w int) {
		if w >= 1 && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	for w := 1; w <= runtime.GOMAXPROCS(0); w++ {
		add(w)
	}
	for _, w := range []int{2, 3, 4, 7, 8} {
		add(w)
	}
	return out
}

// assertSameReduction fails unless got matches want in every field of the
// determinism contract: Events, ToOld, ToNew, Stats and the reduced graph.
// Timings is deliberately excluded — it is wall-clock, not output.
func assertSameReduction(t *testing.T, label string, want, got *Reduction) {
	t.Helper()
	if !reflect.DeepEqual(want.Stats, got.Stats) {
		t.Fatalf("%s: Stats differ: want %+v, got %+v", label, want.Stats, got.Stats)
	}
	if !reflect.DeepEqual(want.ToOld, got.ToOld) {
		t.Fatalf("%s: ToOld differs", label)
	}
	if !reflect.DeepEqual(want.ToNew, got.ToNew) {
		t.Fatalf("%s: ToNew differs", label)
	}
	if len(want.Events) != len(got.Events) {
		t.Fatalf("%s: event count differs: want %d, got %d", label, len(want.Events), len(got.Events))
	}
	for i := range want.Events {
		if !reflect.DeepEqual(want.Events[i], got.Events[i]) {
			t.Fatalf("%s: event %d differs: want %#v, got %#v", label, i, want.Events[i], got.Events[i])
		}
	}
	if !reflect.DeepEqual(want.G, got.G) {
		t.Fatalf("%s: reduced graph differs (n=%d vs n=%d, m=%d vs m=%d)",
			label, want.G.NumNodes(), got.G.NumNodes(), want.G.NumEdges(), got.G.NumEdges())
	}
}

// generatorFamilies are the paper's four graph classes at a size small
// enough for CI but large enough to hit every stage (twins, chains,
// redundant nodes, fixpoint rounds) and the parallel builders' block
// thresholds.
func generatorFamilies() []struct {
	name string
	gen  func(int, int64) *graph.Graph
} {
	return []struct {
		name string
		gen  func(int, int64) *graph.Graph
	}{
		{"web", gen.Web},
		{"social", gen.Social},
		{"community", gen.Community},
		{"road", gen.Road},
	}
}

// TestRunDeterministicAcrossWorkers pins the tentpole guarantee: for every
// generator family, Run at any worker count is bit-identical to Run at one
// worker.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	for _, fam := range generatorFamilies() {
		g := graph.Connect(fam.gen(6000, 12345))
		base, err := Run(g, Options{Twins: true, Chains: true, Redundant: true, Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", fam.name, err)
		}
		for _, w := range workerSweep() {
			got, err := Run(g, Options{Twins: true, Chains: true, Redundant: true, Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", fam.name, w, err)
			}
			assertSameReduction(t, fmt.Sprintf("%s workers=%d", fam.name, w), base, got)
		}
	}
}

// TestRunIterativeDeterministicAcrossWorkers covers the fixpoint rounds
// (weighted chains with direction-dependent offsets, repeated redundant
// sweeps) under the same sweep.
func TestRunIterativeDeterministicAcrossWorkers(t *testing.T) {
	for _, fam := range generatorFamilies() {
		g := graph.Connect(fam.gen(6000, 999))
		base, err := RunIterative(g, Options{Twins: true, Chains: true, Redundant: true, Workers: 1}, 0)
		if err != nil {
			t.Fatalf("%s: %v", fam.name, err)
		}
		for _, w := range workerSweep() {
			got, err := RunIterative(g, Options{Twins: true, Chains: true, Redundant: true, Workers: w}, 0)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", fam.name, w, err)
			}
			assertSameReduction(t, fmt.Sprintf("%s iterative workers=%d", fam.name, w), base, got)
		}
	}
}

// TestDeterminismRandomMixed stresses the sweep with adversarial random
// graphs (the same generator the correctness property tests use), across
// every stage subset — partial pipelines exercise the nil-curToOld
// identity path and the ToWeighted shortcut.
func TestDeterminismRandomMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		g := randomMixed(rng)
		if !graph.IsConnected(g) {
			g = graph.Connect(g)
		}
		for oi, opts := range allOptions() {
			opts.Workers = 1
			base, err := Run(g, opts)
			if err != nil {
				t.Fatalf("trial %d opts %d: %v", trial, oi, err)
			}
			for _, w := range []int{2, 3, 5} {
				opts.Workers = w
				got, err := Run(g, opts)
				if err != nil {
					t.Fatalf("trial %d opts %d workers=%d: %v", trial, oi, w, err)
				}
				assertSameReduction(t, fmt.Sprintf("trial %d opts %d workers=%d", trial, oi, w), base, got)
			}
		}
	}
}
