package reduce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bfs"
	"repro/internal/graph"
)

// randomMixed builds a connected graph that exercises all reduction stages:
// a random core plus attached twins, chains (dangling/cycle/parallel) and
// triangle-capped nodes.
func randomMixed(rng *rand.Rand) *graph.Graph {
	nc := rng.Intn(8) + 5
	b := graph.NewGrowingBuilder()
	for i := 1; i < nc; i++ {
		_ = b.AddEdge(int32(rng.Intn(i)), int32(i))
	}
	for i := 0; i < 2*nc; i++ {
		_ = b.AddEdge(int32(rng.Intn(nc)), int32(rng.Intn(nc)))
	}
	next := int32(nc)
	// Twin leaves.
	for c := 0; c < rng.Intn(3); c++ {
		hub := int32(rng.Intn(nc))
		for j := 0; j < rng.Intn(3)+2; j++ {
			_ = b.AddEdge(hub, next)
			next++
		}
	}
	// Chains.
	for c := 0; c < rng.Intn(4); c++ {
		l := rng.Intn(4) + 1
		u := int32(rng.Intn(nc))
		prev := u
		for j := 0; j < l; j++ {
			_ = b.AddEdge(prev, next)
			prev = next
			next++
		}
		switch rng.Intn(3) {
		case 0:
		case 1:
			_ = b.AddEdge(prev, u)
		case 2:
			v := int32(rng.Intn(nc))
			if v != u {
				_ = b.AddEdge(prev, v)
			}
		}
	}
	// Redundant 3-degree candidates: a fresh node attached to a triangle.
	for c := 0; c < rng.Intn(3); c++ {
		x := int32(rng.Intn(nc))
		y := int32(rng.Intn(nc))
		z := int32(rng.Intn(nc))
		if x == y || y == z || x == z {
			continue
		}
		_ = b.AddEdge(x, y)
		_ = b.AddEdge(y, z)
		_ = b.AddEdge(x, z)
		_ = b.AddEdge(next, x)
		_ = b.AddEdge(next, y)
		_ = b.AddEdge(next, z)
		next++
	}
	return b.Build()
}

func allOptions() []Options {
	return []Options{
		{},
		{Twins: true},
		{Chains: true},
		{Redundant: true},
		{Twins: true, Chains: true},
		{Chains: true, Redundant: true},
		All(),
	}
}

// Property: for every stage combination, (1) distances between kept nodes
// are preserved by the reduced graph, and (2) Scatter+Extend reproduces the
// original-graph BFS distances for every node, from every kept source.
func TestReductionPreservesAndExtends(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomMixed(rng)
		if !graph.IsConnected(g) {
			g = graph.Connect(g)
		}
		n := g.NumNodes()
		apFull := bfs.AllPairs(g)
		for _, opts := range allOptions() {
			red, err := Run(g, opts)
			if err != nil {
				return false
			}
			// Sanity: maps are mutually inverse, events cover removed.
			removed := 0
			for v := 0; v < n; v++ {
				if red.ToNew[v] == -1 {
					removed++
				} else if red.ToOld[red.ToNew[v]] != int32(v) {
					return false
				}
			}
			if removed != red.NumRemoved() || removed != red.Stats.Removed() {
				return false
			}
			distR := make([]int32, red.G.NumNodes())
			distOrig := make([]int32, n)
			for srcR := 0; srcR < red.G.NumNodes(); srcR++ {
				bfs.WDistances(red.G, int32(srcR), distR, nil)
				srcOrig := red.ToOld[srcR]
				// Kept-kept distances preserved.
				for wR := 0; wR < red.G.NumNodes(); wR++ {
					if distR[wR] != apFull[srcOrig][red.ToOld[wR]] {
						return false
					}
				}
				// Extension reproduces everything else.
				red.Scatter(distR, distOrig)
				red.Extend(distOrig)
				for v := 0; v < n; v++ {
					want := apFull[srcOrig][v]
					if int32(v) == srcOrig {
						want = 0
					}
					// The twin self-correction: d(rep, twin) where src is
					// the rep must be the group distance — which equals
					// the true distance, so no exception needed.
					if distOrig[v] != want {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSkipsChainsOnPurePath(t *testing.T) {
	// A pure path has no anchors; the chain stage must be skipped, not
	// crash, and the graph must survive unreduced by that stage.
	g := graph.FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	red, err := Run(g, All())
	if err != nil {
		t.Fatal(err)
	}
	if red.Stats.ChainNodes != 0 {
		t.Errorf("ChainNodes = %d, want 0 (stage skipped)", red.Stats.ChainNodes)
	}
	// Twins stage still applies: leaves 0 and 3 are not twins here (their
	// neighbours differ), so nothing is removed at all.
	if red.G.NumNodes() != 4 {
		t.Errorf("reduced nodes = %d, want 4", red.G.NumNodes())
	}
}

func TestStatsCountingPerStage(t *testing.T) {
	// Hub 0 with two twin leaves and a dangling chain; core is a triangle
	// with a redundant node 8 attached. Note 5/6 and 7/8 also form closed
	// twin pairs, so stages are asserted in isolation.
	g := graph.FromEdges(9, [][2]int32{
		{0, 1}, {0, 2}, // twin leaves
		{0, 3}, {3, 4}, // dangling chain
		{0, 5}, {0, 6}, {5, 6}, {5, 7}, {6, 7}, // core with triangle 5-6-7
		{8, 5}, {8, 6}, {8, 7}, // redundant 3-degree node
	})
	redT, err := Run(g, Options{Twins: true})
	if err != nil {
		t.Fatal(err)
	}
	// Twin groups: leaves {1,2}, closed pair {5,6}, closed pair {7,8}.
	if redT.Stats.IdenticalNodes != 3 {
		t.Errorf("IdenticalNodes = %d, want 3", redT.Stats.IdenticalNodes)
	}
	if redT.Stats.TwinGroups != 3 {
		t.Errorf("TwinGroups = %d, want 3", redT.Stats.TwinGroups)
	}

	redC, err := Run(g, Options{Chains: true})
	if err != nil {
		t.Fatal(err)
	}
	// Chain interiors: the dangling run 3-4 plus the leaf twins 1 and 2
	// (each a singleton dangling chain).
	if redC.Stats.ChainNodes != 4 {
		t.Errorf("ChainNodes = %d, want 4", redC.Stats.ChainNodes)
	}

	redR, err := Run(g, Options{Redundant: true})
	if err != nil {
		t.Fatal(err)
	}
	if redR.Stats.RedundantNodes < 1 {
		t.Errorf("RedundantNodes = %d, want >= 1", redR.Stats.RedundantNodes)
	}

	redAll, err := Run(g, All())
	if err != nil {
		t.Fatal(err)
	}
	if redAll.G.NumNodes()+redAll.Stats.Removed() != g.NumNodes() {
		t.Errorf("node accounting broken: %d + %d != %d",
			redAll.G.NumNodes(), redAll.Stats.Removed(), g.NumNodes())
	}
}

func TestIdenticalChainClassification(t *testing.T) {
	// Two equal-length chains between 0 and 3 → Type-4 identical chains.
	g := graph.FromEdges(10, [][2]int32{
		{0, 1}, {1, 3}, // chain A interior {1}
		{0, 2}, {2, 3}, // chain B interior {2}
		{0, 4}, {0, 5}, {4, 5}, // anchor stubs
		{3, 6}, {3, 7}, {6, 7},
		{4, 8}, {5, 8}, {6, 9}, {7, 9},
	})
	red, err := Run(g, Options{Chains: true})
	if err != nil {
		t.Fatal(err)
	}
	if red.Stats.IdenticalChainNodes != 2 {
		t.Errorf("IdenticalChainNodes = %d, want 2", red.Stats.IdenticalChainNodes)
	}
}

func TestEventsAnchorsAndRemoved(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := graph.Connect(randomMixed(rng))
	red, err := Run(g, All())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	for _, e := range red.Events {
		for _, r := range e.Removed() {
			if seen[r] {
				t.Fatalf("node %d removed twice", r)
			}
			seen[r] = true
			if red.ToNew[r] != -1 {
				t.Fatalf("removed node %d still in reduced graph", r)
			}
		}
		if len(e.Anchors()) == 0 {
			t.Fatal("event without anchors")
		}
	}
	if len(seen) != red.NumRemoved() {
		t.Fatalf("events removed %d nodes, expected %d", len(seen), red.NumRemoved())
	}
}
