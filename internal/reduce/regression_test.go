package reduce

import (
	"math/rand"
	"testing"

	"repro/internal/bfs"
	"repro/internal/graph"
)

// TestRegressionSeeds pins the seeds of historical property-test failures
// with detailed diagnostics.
func TestRegressionSeeds(t *testing.T) {
	for _, seed := range []int64{-2952851558929064026, -2464622358371175107} {
		rng := rand.New(rand.NewSource(seed))
		g := randomMixed(rng)
		if !graph.IsConnected(g) {
			g = graph.Connect(g)
		}
		n := g.NumNodes()
		apFull := bfs.AllPairs(g)
		for oi, opts := range allOptions() {
			red, err := Run(g, opts)
			if err != nil {
				t.Fatalf("seed %d opts %d: %v", seed, oi, err)
			}
			distR := make([]int32, red.G.NumNodes())
			distOrig := make([]int32, n)
			for srcR := 0; srcR < red.G.NumNodes(); srcR++ {
				bfs.WDistances(red.G, int32(srcR), distR, nil)
				srcOrig := red.ToOld[srcR]
				for wR := 0; wR < red.G.NumNodes(); wR++ {
					if distR[wR] != apFull[srcOrig][red.ToOld[wR]] {
						t.Fatalf("seed %d opts %d (%+v): kept-kept distance %d->%d: reduced %d, full %d",
							seed, oi, opts, srcOrig, red.ToOld[wR], distR[wR], apFull[srcOrig][red.ToOld[wR]])
					}
				}
				red.Scatter(distR, distOrig)
				red.Extend(distOrig)
				for v := 0; v < n; v++ {
					if distOrig[v] != apFull[srcOrig][v] {
						t.Fatalf("seed %d opts %d (%+v): extended distance %d->%d: got %d, want %d (event=%v)",
							seed, oi, opts, srcOrig, v, distOrig[v], apFull[srcOrig][v], describeNode(red, int32(v)))
					}
				}
			}
		}
	}
}

func describeNode(red *Reduction, v int32) string {
	if red.ToNew[v] >= 0 {
		return "kept"
	}
	for _, e := range red.Events {
		for _, r := range e.Removed() {
			if r == v {
				switch ev := e.(type) {
				case *TwinEvent:
					return "twin"
				case *ChainEvent:
					return "chain:" + ev.Kind.String()
				case *RedundantEvent:
					return "redundant"
				}
			}
		}
	}
	return "unknown"
}
