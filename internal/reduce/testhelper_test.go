package reduce

import (
	"repro/internal/chains"
	"repro/internal/graph"
)

// wfindForTest exposes weighted chain discovery to the tests in this
// package without importing internal/chains there directly.
func wfindForTest(g *graph.WGraph) *chains.WResult { return chains.WFind(g) }
