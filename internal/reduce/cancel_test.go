package reduce

import (
	"context"
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/par"
)

func TestRunContextMatchesRun(t *testing.T) {
	g := gen.Community(1500, 3)
	want, err := Run(g, All())
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunContext(context.Background(), g, All())
	if err != nil {
		t.Fatal(err)
	}
	if want.Stats != got.Stats {
		t.Fatalf("stats differ: %+v vs %+v", want.Stats, got.Stats)
	}
	if len(want.Events) != len(got.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(want.Events), len(got.Events))
	}
	for i := range want.ToOld {
		if want.ToOld[i] != got.ToOld[i] {
			t.Fatalf("ToOld[%d]: %d vs %d", i, want.ToOld[i], got.ToOld[i])
		}
	}
}

func TestRunContextPreCanceled(t *testing.T) {
	g := gen.Community(200, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	red, err := RunContext(ctx, g, All())
	if !errors.Is(err, par.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if red != nil {
		t.Fatal("canceled run must not return a Reduction")
	}
}

func TestRunContextCanceledMidStage(t *testing.T) {
	g := gen.Community(200, 1)
	for _, point := range []string{"reduce.chains", "reduce.redundant"} {
		ctx, cancel := context.WithCancel(context.Background())
		restore := fault.Set(point, func(context.Context) error {
			cancel() // cancel while "inside" the preceding stage
			return nil
		})
		red, err := RunContext(ctx, g, All())
		restore()
		if !errors.Is(err, par.ErrCanceled) {
			t.Fatalf("%s: want ErrCanceled, got %v", point, err)
		}
		if red != nil {
			t.Fatalf("%s: canceled run must not return a Reduction", point)
		}
	}
}

func TestRunIterativeContextCanceledAtRound(t *testing.T) {
	g := gen.Road(400, 2)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	restore := fault.Set("reduce.round", func(context.Context) error {
		calls++
		if calls == 1 {
			cancel()
		}
		return nil
	})
	defer restore()
	red, err := RunIterativeContext(ctx, g, All(), 0)
	if !errors.Is(err, par.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if red != nil {
		t.Fatal("canceled run must not return a Reduction")
	}
}
