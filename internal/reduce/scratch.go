package reduce

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/par"
)

// scratch pools the per-run working buffers of the pipeline — the keep
// mask, the stage-local old→new renumbering, and the double-buffered
// stage→original id maps — so Run/RunIterative stop allocating them per
// stage and per fixpoint round. Buffers are sized for the input graph once
// and sliced down as the stages shrink it; a sync.Pool recycles them across
// runs. Only the final ToOld/ToNew and the Events (the caller-visible
// output) are freshly allocated.
type scratch struct {
	keep  []bool
	toNew []graph.NodeID
	maps  [2][]graph.NodeID
	flip  int
}

var scratchPool sync.Pool

func getScratch(n int) *scratch {
	s, _ := scratchPool.Get().(*scratch)
	if s == nil {
		s = &scratch{}
	}
	if cap(s.keep) < n {
		s.keep = make([]bool, n)
		s.toNew = make([]graph.NodeID, n)
		s.maps[0] = make([]graph.NodeID, n)
		s.maps[1] = make([]graph.NodeID, n)
	}
	s.flip = 0
	return s
}

func putScratch(s *scratch) { scratchPool.Put(s) }

// keepAll returns the pooled keep mask sliced to k entries, all true.
func (s *scratch) keepAll(k, workers int) []bool {
	keep := s.keep[:k]
	par.ForBlocks(k, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			keep[i] = true
		}
	})
	return keep
}

// nextMap flips to the other pooled id-map buffer and returns it sliced to
// k entries. The pipeline only ever needs the current map and its
// successor, so two alternating buffers suffice.
func (s *scratch) nextMap(k int) []graph.NodeID {
	s.flip ^= 1
	return s.maps[s.flip][:k]
}
