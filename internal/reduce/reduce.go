// Package reduce orchestrates the BRICS reduction pipeline of the paper's
// Algorithm 4: identical-node removal (I), chain contraction (C) and
// redundant-node removal (R), in that order, producing a weighted reduced
// graph plus the bookkeeping needed to recover every removed node's
// distance from any traversal source in O(1) (the paper's Algorithms 2
// and 3, run as a post-processing "extension" step per source).
//
// All bookkeeping is kept in *original* node ids. The removal log is
// replayed in reverse removal order by Extend, which guarantees that the
// anchors an event depends on (nodes that were still alive when the event's
// nodes were removed) already carry distances: an anchor is either kept —
// its distance comes from the traversal — or was removed by a later event.
//
// The whole pipeline is parallel: stage detection fans out across
// Options.Workers (twins by hash shard, chains by anchor, redundant tests
// by node, CSR rebuilds by block) and the per-stage working buffers come
// from a pooled scratch, yet every worker count produces bit-identical
// Events, ToOld, ToNew, Stats and G. Only Timings varies run to run.
package reduce

import (
	"context"
	"time"

	"repro/internal/chains"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/redundant"
	"repro/internal/twins"
)

// Options selects which reduction stages run.
type Options struct {
	// Twins removes identical nodes (paper Section III-A).
	Twins bool
	// Chains contracts degree-≤2 chains (Section III-B).
	Chains bool
	// Redundant removes redundant 3/4-degree nodes (Section III-C).
	Redundant bool
	// Workers bounds the parallelism of every stage; <1 means GOMAXPROCS.
	// The result is bit-identical for every worker count (Timings aside) —
	// the sequential pipeline is simply Workers=1.
	Workers int
	// Relabel, when not RelabelNone, additionally produces a cache-aware
	// reordering of the reduced graph (Reduction.Relabeled/Relab) for the
	// traversal phase. The canonical G/ToOld/ToNew/Events are unaffected —
	// estimators traverse the relabeled copy and map rows back through the
	// permutation, so sampling and results stay in canonical ids.
	Relabel graph.RelabelMode
}

// All enables every stage — the paper's "Cumulative" configuration before
// the biconnected decomposition.
func All() Options { return Options{Twins: true, Chains: true, Redundant: true} }

// Stats reports how much each stage removed; Table I's structural columns
// come from here.
type Stats struct {
	// IdenticalNodes is the number of removed twin nodes.
	IdenticalNodes int
	// IdenticalChainNodes is the number of interior nodes in Type-4
	// identical chains (chains with the same endpoints and equal length,
	// all but one of which are redundant).
	IdenticalChainNodes int
	// ChainNodes is the total number of removed chain interior nodes.
	ChainNodes int
	// RedundantNodes is the number of removed redundant 3/4-degree nodes.
	RedundantNodes int
	// TwinGroups is the number of identical-node groups.
	TwinGroups int
	// NumChains is the number of discovered chains.
	NumChains int
	// ExtraRounds counts the fixpoint rounds RunIterative performed
	// beyond the paper's single pass (0 for Run).
	ExtraRounds int
}

// Removed returns the total number of removed nodes.
func (s Stats) Removed() int { return s.IdenticalNodes + s.ChainNodes + s.RedundantNodes }

// Timings records the wall-clock time of each preprocessing stage. Purely
// informational — it is the one field of Reduction outside the determinism
// contract (Events/ToOld/ToNew/Stats/G are bit-identical across worker
// counts; Timings varies run to run).
type Timings struct {
	Twins     time.Duration
	Chains    time.Duration
	Redundant time.Duration
	// Rounds covers all RunIterative fixpoint rounds together.
	Rounds time.Duration
}

// Event is one removal record. Extend recovers the distances of the
// event's removed nodes into dist (indexed by original node id), reading
// the distances of the event's anchors.
type Event interface {
	// Removed lists the original ids this event deleted.
	Removed() []graph.NodeID
	// Anchors lists the original ids whose distances Extend reads.
	Anchors() []graph.NodeID
	// Extend writes distances for the removed nodes.
	Extend(dist []int32)
}

// TwinEvent removes a group of identical nodes, keeping Rep.
type TwinEvent struct {
	Rep graph.NodeID
	// Members are the removed twins (Rep excluded).
	Members []graph.NodeID
	// GroupDist is the pairwise distance inside the group: 1 for closed
	// twins, 2 for open twins.
	GroupDist int32
}

// Removed implements Event.
func (e *TwinEvent) Removed() []graph.NodeID { return e.Members }

// Anchors implements Event.
func (e *TwinEvent) Anchors() []graph.NodeID { return []graph.NodeID{e.Rep} }

// Extend implements Event: every twin sits exactly where its representative
// sits — unless the source *is* the representative, in which case the twins
// are GroupDist away (Fact III.2's equal-farness argument needs exactly this
// correction for the group's own pairwise distances).
func (e *TwinEvent) Extend(dist []int32) {
	d := dist[e.Rep]
	if d == 0 {
		d = e.GroupDist
	}
	for _, m := range e.Members {
		dist[m] = d
	}
}

// ChainEvent removes the interior of one chain (paper Algorithm 2).
type ChainEvent struct {
	// U and V are the anchors in original ids; V is -1 for dangling
	// (Type-1) chains and equals U for pendant cycles (Type-2).
	U, V graph.NodeID
	// Interior lists the removed nodes in path order from U;
	// Interior[i] is i+1 unit steps from U unless Offsets is set.
	Interior []graph.NodeID
	// Kind is the chain classification.
	Kind chains.Type
	// Identical marks Type-4 members (reporting only).
	Identical bool
	// Offsets (weighted chains from the iterative pipeline only) gives
	// Interior[i]'s weighted distance from U; Total is the chain's full
	// weighted length. Nil means unit steps.
	Offsets []int32
	Total   int32
}

// Removed implements Event.
func (e *ChainEvent) Removed() []graph.NodeID { return e.Interior }

// Anchors implements Event.
func (e *ChainEvent) Anchors() []graph.NodeID {
	if e.V < 0 || e.V == e.U {
		return []graph.NodeID{e.U}
	}
	return []graph.NodeID{e.U, e.V}
}

func (e *ChainEvent) chain() chains.Chain {
	return chains.Chain{U: e.U, V: e.V, Interior: e.Interior, Type: e.Kind}
}

func (e *ChainEvent) wchain() chains.WChain {
	return chains.WChain{U: e.U, V: e.V, Interior: e.Interior, Offsets: e.Offsets, Total: e.Total, Type: e.Kind}
}

// Extend implements Event using the split formula of Algorithm 2 (its
// weighted generalisation when Offsets is set).
func (e *ChainEvent) Extend(dist []int32) {
	du := dist[e.U]
	var dv int32
	if e.V >= 0 {
		dv = dist[e.V]
	}
	if e.Offsets != nil {
		c := e.wchain()
		for i := range e.Interior {
			dist[e.Interior[i]] = c.InteriorDistance(du, dv, i)
		}
		return
	}
	c := e.chain()
	for i := range e.Interior {
		dist[e.Interior[i]] = c.InteriorDistance(du, dv, i)
	}
}

// SumDistances returns Σ_i d(s, Interior[i]) given anchor distances — O(1)
// for unit chains, O(ℓ) for weighted ones.
func (e *ChainEvent) SumDistances(dist []int32) int64 {
	du := dist[e.U]
	var dv int32
	if e.V >= 0 {
		dv = dist[e.V]
	}
	if e.Offsets != nil {
		c := e.wchain()
		return c.SumInteriorDistances(du, dv)
	}
	c := e.chain()
	return c.SumInteriorDistances(du, dv)
}

// RedundantEvent removes one redundant 3/4-degree node (paper Algorithm 3).
type RedundantEvent struct {
	V       graph.NodeID
	Nbrs    []graph.NodeID
	Weights []int32
}

// Removed implements Event.
func (e *RedundantEvent) Removed() []graph.NodeID { return []graph.NodeID{e.V} }

// Anchors implements Event.
func (e *RedundantEvent) Anchors() []graph.NodeID { return e.Nbrs }

// Extend implements Event.
func (e *RedundantEvent) Extend(dist []int32) {
	node := redundant.Node{V: e.V, Nbrs: e.Nbrs, Weights: e.Weights}
	dist[e.V] = node.Distance(dist)
}

// Reduction is the result of the pipeline.
type Reduction struct {
	// Orig is the input graph.
	Orig *graph.Graph
	// G is the reduced weighted graph.
	G *graph.WGraph
	// ToOld maps reduced ids to original ids; ToNew is the inverse (-1
	// for removed originals).
	ToOld []graph.NodeID
	ToNew []graph.NodeID
	// Events is the removal log in removal order.
	Events []Event
	// Stats summarises the stages.
	Stats Stats
	// Timings holds per-stage wall-clock times (informational only).
	Timings Timings
	// Relabeled is G rebuilt under the cache-aware ordering requested by
	// Options.Relabel (nil when RelabelNone): an isomorphic copy whose node
	// ids are Relab.Perm[reduced id]. Traversal-only — every other field
	// stays in canonical reduced ids.
	Relabeled *graph.WGraph
	// Relab is the permutation that produced Relabeled (nil when
	// RelabelNone): Perm[canonical reduced id] = relabeled id, Inv inverse.
	Relab *graph.Relabeling
	// scatterT composes Relab.Inv with ToOld (scatterT[relabeled id] =
	// original id) so ScatterPerm reads the traversal row sequentially
	// instead of gathering through the permutation per node.
	scatterT []graph.NodeID
}

// NumRemoved returns the number of removed original nodes.
func (r *Reduction) NumRemoved() int { return r.Orig.NumNodes() - len(r.ToOld) }

// Run executes the pipeline on the connected simple graph g.
func Run(g *graph.Graph, opts Options) (*Reduction, error) {
	return run(context.Background(), g, opts, false, 0)
}

// RunContext is Run with cooperative cancellation: the pipeline checks ctx
// between stages (checkpoints "reduce.twins", "reduce.chains",
// "reduce.redundant") and abandons the run with a par.ErrCanceled-wrapping
// error once it is done. The pooled scratch is returned either way; a
// non-nil error means no Reduction is produced.
func RunContext(ctx context.Context, g *graph.Graph, opts Options) (*Reduction, error) {
	return run(ctx, g, opts, false, 0)
}

// run is the shared driver behind Run and RunIterative. The fault
// checkpoints double as the pipeline's cancellation points; the pooled
// scratch is returned by the deferred putScratch on every path.
func run(ctx context.Context, g *graph.Graph, opts Options, iterate bool, maxRounds int) (*Reduction, error) {
	n := g.NumNodes()
	p := &pipeline{
		red:     &Reduction{Orig: g},
		workers: par.Workers(opts.Workers),
		sc:      getScratch(n),
	}
	defer putScratch(p.sc)

	if err := fault.Checkpoint(ctx, "reduce.twins"); err != nil {
		return nil, err
	}
	p.stageTwins(g, opts)
	if err := fault.Checkpoint(ctx, "reduce.chains"); err != nil {
		return nil, err
	}
	p.stageChains(opts)
	if err := fault.Checkpoint(ctx, "reduce.redundant"); err != nil {
		return nil, err
	}
	p.stageRedundant(opts)
	if iterate && (opts.Chains || opts.Redundant) {
		if err := p.rounds(ctx, opts, maxRounds); err != nil {
			return nil, err
		}
	}
	p.finish(n)
	if opts.Relabel != graph.RelabelNone {
		p.red.Relabeled, p.red.Relab = graph.RelabelW(p.red.G, opts.Relabel, p.workers)
		p.red.scatterT = make([]graph.NodeID, len(p.red.ToOld))
		for j, canon := range p.red.Relab.Inv {
			p.red.scatterT[j] = p.red.ToOld[canon]
		}
	}
	return p.red, nil
}

// pipeline carries the mutable state the stages thread through: the current
// graph (simple until chain contraction, weighted after), the pooled
// scratch, and the current-stage→original id map. A nil curToOld is the
// identity — no stage has shrunk the graph yet — which spares the identity
// map the old sequential code allocated and filled up front.
type pipeline struct {
	red      *Reduction
	workers  int
	sc       *scratch
	curToOld []graph.NodeID // nil = identity; else pooled, len = cur graph size
	cur      *graph.Graph   // simple graph, valid until stageChains
	wg       *graph.WGraph  // weighted graph, valid from stageChains on
}

func (p *pipeline) oldOf(v graph.NodeID) graph.NodeID {
	if p.curToOld == nil {
		return v
	}
	return p.curToOld[v]
}

// compose folds the stage-local renumbering sc.toNew[:stageN] into
// curToOld, writing the next stage→original map into the spare pooled
// buffer (the two map buffers alternate, so the source is never the
// destination).
func (p *pipeline) compose(stageN, kept int) {
	next := p.sc.nextMap(kept)
	toNew := p.sc.toNew
	if cur := p.curToOld; cur != nil {
		par.ForBlocks(stageN, p.workers, func(_, lo, hi int) {
			for v := lo; v < hi; v++ {
				if nv := toNew[v]; nv >= 0 {
					next[nv] = cur[v]
				}
			}
		})
	} else {
		par.ForBlocks(stageN, p.workers, func(_, lo, hi int) {
			for v := lo; v < hi; v++ {
				if nv := toNew[v]; nv >= 0 {
					next[nv] = graph.NodeID(v)
				}
			}
		})
	}
	p.curToOld = next
}

// stageTwins removes identical nodes from the simple graph.
func (p *pipeline) stageTwins(g *graph.Graph, opts Options) {
	p.cur = g
	if !opts.Twins {
		return
	}
	t0 := time.Now()
	defer func() { p.red.Timings.Twins = time.Since(t0) }()
	tw := twins.FindWorkers(p.cur, p.workers)
	if len(tw.Groups) == 0 {
		return
	}
	red := p.red
	stageN := p.cur.NumNodes()
	keep := p.sc.keepAll(stageN, p.workers)
	for _, grp := range tw.Groups {
		members := make([]graph.NodeID, 0, len(grp.Members)-1)
		for _, m := range grp.Members[1:] {
			keep[m] = false
			members = append(members, p.oldOf(m))
		}
		red.Events = append(red.Events, &TwinEvent{
			Rep:       p.oldOf(grp.Rep()),
			Members:   members,
			GroupDist: grp.Dist(),
		})
	}
	red.Stats.IdenticalNodes = tw.Removed
	red.Stats.TwinGroups = len(tw.Groups)
	sub := graph.SubgraphInto(p.cur, keep, p.sc.toNew[:stageN], p.workers)
	p.compose(stageN, sub.NumNodes())
	p.cur = sub
}

// stageChains contracts chains of the (twin-reduced) simple graph; the
// pipeline is weighted from here on.
func (p *pipeline) stageChains(opts Options) {
	var ch *chains.Result
	if opts.Chains {
		t0 := time.Now()
		defer func() { p.red.Timings.Chains = time.Since(t0) }()
		ch = chains.FindWorkers(p.cur, p.workers)
		// A graph that is (or became, after twin removal) a pure path or
		// cycle has no anchor to hang chains from; skip the stage and
		// leave the degree-≤2 nodes in place. Callers answer the original
		// pure path/cycle case in closed form before reducing. An
		// anchored graph with zero chains likewise has nothing to do.
		if ch.WholeGraph || len(ch.Chains) == 0 {
			ch = nil
		}
	}
	if ch == nil {
		p.wg = p.cur.ToWeighted()
		p.cur = nil
		return
	}
	red := p.red
	red.Stats.NumChains = len(ch.Chains)
	red.Stats.ChainNodes = ch.Removed
	identical := classifyIdentical(p.cur, ch.Chains)
	stageN := p.cur.NumNodes()
	keep := p.sc.keepAll(stageN, p.workers)
	extra := make([]graph.WEdge, 0, len(ch.Chains))
	for ci := range ch.Chains {
		c := &ch.Chains[ci]
		interior := make([]graph.NodeID, len(c.Interior))
		for i, v := range c.Interior {
			keep[v] = false
			interior[i] = p.oldOf(v)
		}
		v := graph.NodeID(-1)
		if c.V >= 0 {
			v = p.oldOf(c.V)
		}
		ev := &ChainEvent{
			U:         p.oldOf(c.U),
			V:         v,
			Interior:  interior,
			Kind:      c.Type,
			Identical: identical[ci],
		}
		if identical[ci] {
			red.Stats.IdenticalChainNodes += len(interior)
		}
		red.Events = append(red.Events, ev)
		if c.Type == chains.Parallel && c.U != c.V {
			extra = append(extra, graph.WEdge{U: c.U, V: c.V, W: c.EdgeWeight()})
		}
	}
	wg := graph.ContractInto(p.cur, keep, p.sc.toNew[:stageN], extra, p.workers)
	p.compose(stageN, wg.NumNodes())
	p.wg = wg
	p.cur = nil
}

// stageRedundant removes redundant 3/4-degree nodes from the weighted graph.
func (p *pipeline) stageRedundant(opts Options) {
	if !opts.Redundant {
		return
	}
	t0 := time.Now()
	defer func() { p.red.Timings.Redundant = time.Since(t0) }()
	rn := redundant.FindWorkers(p.wg, nil, p.workers)
	if len(rn.Nodes) == 0 {
		return
	}
	p.red.Stats.RedundantNodes = len(rn.Nodes)
	p.removeRedundant(rn)
}

// removeRedundant appends events for rn's nodes and rebuilds p.wg without
// them; shared by the first pass and the fixpoint rounds. rn's Nbrs and
// Weights slices are freshly allocated per node by redundant.Find, so the
// events take ownership instead of re-copying.
func (p *pipeline) removeRedundant(rn *redundant.Result) {
	red := p.red
	stageN := p.wg.NumNodes()
	keep := p.sc.keepAll(stageN, p.workers)
	for i := range rn.Nodes {
		nd := &rn.Nodes[i]
		keep[nd.V] = false
		nbrs := make([]graph.NodeID, len(nd.Nbrs))
		for j, x := range nd.Nbrs {
			nbrs[j] = p.oldOf(x)
		}
		red.Events = append(red.Events, &RedundantEvent{
			V:       p.oldOf(nd.V),
			Nbrs:    nbrs,
			Weights: nd.Weights,
		})
	}
	sub := graph.WSubgraphInto(p.wg, keep, p.sc.toNew[:stageN], p.workers)
	p.compose(stageN, sub.NumNodes())
	p.wg = sub
}

// finish materialises the caller-owned ToOld/ToNew from the pooled map and
// hands over the reduced graph.
func (p *pipeline) finish(n int) {
	red := p.red
	red.G = p.wg
	kept := p.wg.NumNodes()
	red.ToOld = make([]graph.NodeID, kept)
	if p.curToOld == nil {
		par.ForBlocks(kept, p.workers, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				red.ToOld[i] = graph.NodeID(i)
			}
		})
	} else {
		copy(red.ToOld, p.curToOld)
	}
	red.ToNew = make([]graph.NodeID, n)
	toOld, toNew := red.ToOld, red.ToNew
	par.ForBlocks(n, p.workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			toNew[i] = -1
		}
	})
	par.ForBlocks(kept, p.workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			toNew[toOld[i]] = graph.NodeID(i)
		}
	})
}

// classifyIdentical marks Type-4 chains: Parallel chains sharing both
// endpoints with another chain of equal length. Only used for reporting —
// the contraction's min-weight parallel-edge rule removes redundant
// parallels regardless.
func classifyIdentical(g *graph.Graph, cs []chains.Chain) []bool {
	type key struct {
		a, b graph.NodeID
		l    int
	}
	count := make(map[key]int)
	mk := func(c *chains.Chain) (key, bool) {
		if c.Type != chains.Parallel || c.V < 0 || c.U == c.V {
			return key{}, false
		}
		a, b := c.U, c.V
		if a > b {
			a, b = b, a
		}
		return key{a, b, len(c.Interior)}, true
	}
	for i := range cs {
		if k, ok := mk(&cs[i]); ok {
			count[k]++
		}
	}
	out := make([]bool, len(cs))
	for i := range cs {
		if k, ok := mk(&cs[i]); ok && count[k] >= 2 {
			out[i] = true
		}
	}
	return out
}

// TraversalGraph returns the graph the traversal phase should run over and
// the canonical→traversal id permutation: (Relabeled, Relab.Perm) when the
// reduction carries a cache-aware reordering, (G, nil) otherwise. Callers
// map sources through the permutation on the way in and read distance rows
// through it on the way out (ScatterPerm); everything else — sampling,
// events, block decomposition — stays in canonical reduced ids, which is
// what keeps relabeled runs bit-identical to unrelabeled ones.
func (r *Reduction) TraversalGraph() (*graph.WGraph, []graph.NodeID) {
	if r.Relabeled != nil {
		return r.Relabeled, r.Relab.Perm
	}
	return r.G, nil
}

// Scatter copies reduced-graph distances into an original-id distance
// array, leaving removed entries untouched. Callers usually follow with
// Extend. distOrig must be pre-filled with -1 (or stale values that Extend
// and Scatter jointly overwrite — every kept and removed entry is written).
func (r *Reduction) Scatter(distReduced, distOrig []int32) {
	for newID, old := range r.ToOld {
		distOrig[old] = distReduced[newID]
	}
}

// ScatterPerm is Scatter for a distance row computed on the relabeled
// traversal graph (perm must be this reduction's own canonical→relabeled
// permutation, i.e. the one TraversalGraph returned). A nil perm is plain
// Scatter. The copy walks the precomputed Inv∘ToOld composition so the
// traversal row is read sequentially.
func (r *Reduction) ScatterPerm(distReduced []int32, perm []graph.NodeID, distOrig []int32) {
	if perm == nil {
		r.Scatter(distReduced, distOrig)
		return
	}
	for j, old := range r.scatterT {
		distOrig[old] = distReduced[j]
	}
}

// Extend replays the removal log in reverse, filling distances for every
// removed node. distOrig must already hold distances for all kept nodes
// (see Scatter).
func (r *Reduction) Extend(distOrig []int32) {
	for i := len(r.Events) - 1; i >= 0; i-- {
		r.Events[i].Extend(distOrig)
	}
}
