package reduce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bfs"
	"repro/internal/graph"
)

// Property: the iterative pipeline preserves kept-kept distances and its
// extension reproduces original BFS distances — same contract as Run, on
// the same adversarial graphs.
func TestIterativePreservesAndExtends(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomMixed(rng)
		if !graph.IsConnected(g) {
			g = graph.Connect(g)
		}
		n := g.NumNodes()
		apFull := bfs.AllPairs(g)
		red, err := RunIterative(g, All(), 0)
		if err != nil {
			return false
		}
		if red.G.NumNodes()+red.Stats.Removed() != n {
			return false
		}
		distR := make([]int32, red.G.NumNodes())
		distOrig := make([]int32, n)
		for srcR := 0; srcR < red.G.NumNodes(); srcR++ {
			bfs.WDistances(red.G, int32(srcR), distR, nil)
			srcOrig := red.ToOld[srcR]
			for wR := 0; wR < red.G.NumNodes(); wR++ {
				if distR[wR] != apFull[srcOrig][red.ToOld[wR]] {
					return false
				}
			}
			red.Scatter(distR, distOrig)
			red.Extend(distOrig)
			for v := 0; v < n; v++ {
				if distOrig[v] != apFull[srcOrig][v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The cascade the single pass misses: an anchor with two dangling tails
// becomes a pendant after the first round and only the iterative pipeline
// removes it.
func TestIterativeCascades(t *testing.T) {
	// Core K4 {0,1,2,3}; node 4 hangs off 0 and carries two tails 5 and 6.
	g := graph.FromEdges(7, [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		{0, 4}, {4, 5}, {4, 6},
	})
	single, err := Run(g, Options{Chains: true})
	if err != nil {
		t.Fatal(err)
	}
	iter, err := RunIterative(g, Options{Chains: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Single pass: 5 and 6 are twin-less singleton tails of anchor 4
	// (degree 3), so only they go. Iterative: 4 becomes degree-1 after
	// its tails are gone and is swept in round 2.
	if single.G.NumNodes() != 5 {
		t.Fatalf("single pass kept %d nodes, want 5", single.G.NumNodes())
	}
	if iter.G.NumNodes() != 4 {
		t.Fatalf("iterative kept %d nodes, want 4 (the K4)", iter.G.NumNodes())
	}
	if iter.Stats.ExtraRounds < 1 {
		t.Fatalf("ExtraRounds = %d", iter.Stats.ExtraRounds)
	}
}

// Weighted chains carry offsets; check them against BFS explicitly.
func TestWeightedChainOffsets(t *testing.T) {
	// Path of tails: 0(K4 corner) - 4 - 5 - 6 where 4 also had a tail 7
	// removed in round 1, turning 4-5-6 into a weighted... simpler: build
	// a graph whose round-2 chain has non-unit weights via contraction:
	// K4 + pendant path 0-4-5, plus a parallel route 0-6-7-5 making 4,5
	// interior of parallel chains, then... Assert via the generic
	// property test instead; here just exercise WFind directly.
	wg := graph.FromWeightedEdges(5, [][3]int32{
		{0, 1, 2}, {1, 2, 3}, {2, 3, 1}, {0, 4, 1}, {3, 4, 1}, {0, 3, 9},
	})
	// Nodes 1,2 form a weighted chain between 0 and 3 (offsets 2, 5,
	// total 6); node 4 is interior of another chain (0-4-3, total 2).
	ch := wfindForTest(wg)
	if len(ch.Chains) != 2 {
		t.Fatalf("chains = %+v", ch.Chains)
	}
	for _, c := range ch.Chains {
		switch len(c.Interior) {
		case 2:
			if c.Offsets[0] != 2 || c.Offsets[1] != 5 || c.Total != 6 {
				t.Fatalf("long chain offsets = %v total %d", c.Offsets, c.Total)
			}
		case 1:
			if c.Offsets[0] != 1 || c.Total != 2 {
				t.Fatalf("short chain offsets = %v total %d", c.Offsets, c.Total)
			}
		default:
			t.Fatalf("unexpected chain %+v", c)
		}
	}
}
