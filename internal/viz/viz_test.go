package viz

import (
	"bytes"
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	var buf bytes.Buffer
	BarChart(&buf, "title", []Bar{
		{Label: "a", Value: 2, Note: "q=1.0"},
		{Label: "bb", Value: 1},
		{Label: "c", Value: 0},
	}, 10)
	out := buf.String()
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// The max bar uses the full width; half value uses half.
	if strings.Count(lines[1], "█") != 10 {
		t.Errorf("max bar width = %d, want 10 (%q)", strings.Count(lines[1], "█"), lines[1])
	}
	if strings.Count(lines[2], "█") != 5 {
		t.Errorf("half bar width = %d, want 5", strings.Count(lines[2], "█"))
	}
	if strings.Count(lines[3], "█") != 0 {
		t.Errorf("zero bar should be empty")
	}
	if !strings.Contains(lines[1], "q=1.0") {
		t.Error("missing note")
	}
}

func TestBarChartEmptyAndTiny(t *testing.T) {
	var buf bytes.Buffer
	BarChart(&buf, "t", nil, 0)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty chart marker missing")
	}
	buf.Reset()
	// A positive value that rounds to zero width still shows a sliver.
	BarChart(&buf, "t", []Bar{{Label: "x", Value: 0.001}, {Label: "y", Value: 100}}, 10)
	if !strings.Contains(buf.String(), "▏") {
		t.Error("sliver marker missing for tiny value")
	}
}

func TestHistogram(t *testing.T) {
	var buf bytes.Buffer
	Histogram(&buf, "h", []int{1, 3, 0}, 0.9, 0.1, 12)
	out := buf.String()
	if !strings.Contains(out, "h") || strings.Count(out, "\n") != 4 {
		t.Fatalf("histogram output: %q", out)
	}
	if !strings.Contains(out, "[  0.9000,   1.0000)") {
		t.Errorf("bucket labels wrong: %q", out)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline runes = %d", len([]rune(s)))
	}
	if Sparkline(nil) != "" {
		t.Error("empty input should return empty string")
	}
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat series should render minimum ticks: %q", flat)
		}
	}
}
