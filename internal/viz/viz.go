// Package viz renders the experiment results as text figures — horizontal
// bar charts and histograms — so cmd/experiments can show the *shape* of
// the paper's Figs. 4–9, not just tables.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bar is one labelled value of a bar chart.
type Bar struct {
	Label string
	Value float64
	// Note is appended after the value (e.g. a quality annotation, the
	// way the paper prints speedups on top of its histogram bars).
	Note string
}

// BarChart writes a horizontal bar chart. Values must be non-negative;
// bars scale to width characters at the maximum value.
func BarChart(w io.Writer, title string, bars []Bar, width int) {
	if width <= 0 {
		width = 40
	}
	fmt.Fprintln(w, title)
	if len(bars) == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	maxVal := 0.0
	maxLabel := 0
	for _, b := range bars {
		if b.Value > maxVal {
			maxVal = b.Value
		}
		if len(b.Label) > maxLabel {
			maxLabel = len(b.Label)
		}
	}
	for _, b := range bars {
		n := 0
		if maxVal > 0 {
			n = int(math.Round(b.Value / maxVal * float64(width)))
		}
		if n < 0 {
			n = 0
		}
		bar := strings.Repeat("█", n)
		if n == 0 && b.Value > 0 {
			bar = "▏"
		}
		note := ""
		if b.Note != "" {
			note = "  " + b.Note
		}
		fmt.Fprintf(w, "  %-*s %8.2f %s%s\n", maxLabel, b.Label, b.Value, bar, note)
	}
}

// Histogram renders counts (as produced by stats.Histogram) with bucket
// ranges.
func Histogram(w io.Writer, title string, counts []int, min, width float64, barWidth int) {
	if barWidth <= 0 {
		barWidth = 40
	}
	fmt.Fprintln(w, title)
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range counts {
		lo := min + float64(i)*width
		hi := lo + width
		n := 0
		if maxC > 0 {
			n = int(math.Round(float64(c) / float64(maxC) * float64(barWidth)))
		}
		fmt.Fprintf(w, "  [%8.4f, %8.4f) %7d %s\n", lo, hi, c, strings.Repeat("█", n))
	}
}

// Sparkline returns a compact one-line sparkline of the values.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	min, max := values[0], values[0]
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	for _, v := range values {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(ticks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ticks) {
			idx = len(ticks) - 1
		}
		sb.WriteRune(ticks[idx])
	}
	return sb.String()
}
