package brics_test

import (
	"bytes"
	"math"
	"testing"

	brics "repro"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	g := brics.GenerateSocial(800, 3)
	if !brics.IsConnected(g) {
		t.Fatal("generator must return connected graphs")
	}
	res, err := brics.Estimate(g, brics.Options{
		Techniques:     brics.TechCumulative,
		SampleFraction: 0.5,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	exact := brics.ExactFarness(g, 0)
	var q float64
	for i := range exact {
		q += res.Farness[i] / exact[i]
	}
	q /= float64(len(exact))
	if q < 0.9 || q > 1.1 {
		t.Fatalf("quality = %v", q)
	}
	for i := range exact {
		if res.Exact[i] && math.Abs(res.Farness[i]-exact[i]) > 1e-9 {
			t.Fatalf("node %d flagged exact but %v != %v", i, res.Farness[i], exact[i])
		}
	}
}

func TestPublicBuilderAndConnect(t *testing.T) {
	b := brics.NewBuilder(4)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(2, 3)
	g := b.Build()
	if brics.IsConnected(g) {
		t.Fatal("should be disconnected")
	}
	g = brics.Connect(g)
	if !brics.IsConnected(g) {
		t.Fatal("Connect failed")
	}
	gb := brics.NewGrowingBuilder()
	_ = gb.AddEdge(0, 9)
	if gb.Build().NumNodes() != 10 {
		t.Fatal("growing builder broken")
	}
}

func TestPublicIO(t *testing.T) {
	g := brics.FromEdges(4, [][2]brics.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	var buf bytes.Buffer
	if err := brics.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := brics.ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 4 {
		t.Fatalf("round trip edges = %d", g2.NumEdges())
	}
}

func TestCloseness(t *testing.T) {
	c := brics.Closeness([]float64{2, 0, 4})
	if c[0] != 0.5 || c[1] != 0 || c[2] != 0.25 {
		t.Fatalf("Closeness = %v", c)
	}
}

func TestRandomSamplingPublic(t *testing.T) {
	g := brics.GenerateRoad(600, 2)
	res := brics.RandomSampling(g, 0.5, 0, 9)
	if len(res.Farness) != g.NumNodes() {
		t.Fatal("result size mismatch")
	}
	if res.Stats.Samples < g.NumNodes()/3 {
		t.Fatalf("samples = %d", res.Stats.Samples)
	}
}

func TestGeneratorsPublic(t *testing.T) {
	for _, g := range []*brics.Graph{
		brics.GenerateWeb(500, 1),
		brics.GenerateSocial(500, 1),
		brics.GenerateCommunity(500, 1),
		brics.GenerateRoad(500, 1),
	} {
		if !brics.IsConnected(g) {
			t.Fatal("generator produced disconnected graph")
		}
	}
}

func TestDistancePublic(t *testing.T) {
	// Path 0-1-2-3: bidirectional BFS must return the exact hop count.
	g := brics.FromEdges(4, [][2]brics.NodeID{{0, 1}, {1, 2}, {2, 3}})
	if d := brics.Distance(g, 0, 3); d != 3 {
		t.Fatalf("Distance(0,3) = %d, want 3", d)
	}
	if d := brics.Distance(g, 2, 2); d != 0 {
		t.Fatalf("Distance(2,2) = %d, want 0", d)
	}
	// Disconnected pair: -1, matching the documented contract.
	g2 := brics.FromEdges(3, [][2]brics.NodeID{{0, 1}})
	if d := brics.Distance(g2, 0, 2); d != -1 {
		t.Fatalf("Distance across components = %d, want -1", d)
	}
}

func TestBatchingModePublic(t *testing.T) {
	m, err := brics.ParseBatchingMode("clustered")
	if err != nil || m != brics.BatchingClustered {
		t.Fatalf("ParseBatchingMode: %v, %v", m, err)
	}
	g := brics.GenerateWeb(1200, 4)
	base, err := brics.Estimate(g, brics.Options{
		Techniques: brics.TechICR, SampleFraction: 0.3, Seed: 2,
		Traversal: brics.TraversalBatched, Batching: brics.BatchingArbitrary,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := brics.Estimate(g, brics.Options{
		Techniques: brics.TechICR, SampleFraction: 0.3, Seed: 2,
		Traversal: brics.TraversalBatched, Batching: brics.BatchingClustered,
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := range base.Farness {
		if base.Farness[v] != got.Farness[v] {
			t.Fatalf("batching changed farness[%d]: %v != %v", v, base.Farness[v], got.Farness[v])
		}
	}
}

func TestTimed(t *testing.T) {
	d := brics.Timed(func() {})
	if d < 0 {
		t.Fatal("negative duration")
	}
}
