// Dynamic-graph scenario (the paper's conclusion names "extension of this
// problem to dynamic setting" as future work): maintain exact farness
// centrality of a growing social network without recomputing from scratch.
// Each inserted friendship refreshes only the nodes whose distances the
// edge actually changed (the |d(x,u)−d(x,v)| ≥ 2 filter of Sariyüce et
// al., the paper's reference [24]).
//
//	go run ./examples/dynamicgraph
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	brics "repro"
)

func main() {
	const n = 4000
	g := brics.GenerateSocial(n, 21)
	fmt.Printf("initial network: %d users, %d edges\n", g.NumNodes(), g.NumEdges())

	start := time.Now()
	ix, err := brics.NewDynamicIndex(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)
	fmt.Printf("index built in %v (one traversal per node — paid once)\n", buildTime.Round(time.Millisecond))

	rng := rand.New(rand.NewSource(7))
	inserted := 0
	totalAffected := 0
	start = time.Now()
	for inserted < 50 {
		u := brics.NodeID(rng.Intn(ix.NumNodes()))
		v := brics.NodeID(rng.Intn(ix.NumNodes()))
		if u == v || ix.HasEdge(u, v) {
			continue
		}
		if err := ix.AddEdge(u, v); err != nil {
			log.Fatal(err)
		}
		inserted++
		totalAffected += ix.UpdatedLast
	}
	updTime := time.Since(start)

	fmt.Printf("50 edge insertions in %v — avg %.1f affected nodes per edge (of %d)\n",
		updTime.Round(time.Millisecond), float64(totalAffected)/50, ix.NumNodes())
	perUpdate := updTime / 50
	scratchEstimate := buildTime
	fmt.Printf("amortised per-update cost %v vs %v from scratch (%.0fx cheaper)\n",
		perUpdate.Round(time.Microsecond), scratchEstimate.Round(time.Millisecond),
		float64(scratchEstimate)/float64(perUpdate))

	top := ix.TopK(5)
	fmt.Println("current most central users:")
	for i, v := range top {
		fmt.Printf("  %d. user %5d  farness %.0f\n", i+1, v, ix.Farness(v))
	}

	// Sanity: the index agrees with a from-scratch run.
	exact := brics.ExactFarness(ix.Snapshot(), 0)
	for v, f := range exact {
		if ix.Farness(brics.NodeID(v)) != f {
			log.Fatalf("index drift at node %d", v)
		}
	}
	fmt.Println("verified: index matches from-scratch computation exactly")
}
