// Web-graph scenario (paper Section IV-C2a): compare every BRICS
// configuration on a web-like graph — the class where all four reductions
// bite (44% identical nodes, 54% chain nodes, 2.4% redundant nodes) and
// where the paper observes that adding the BiCC decomposition *costs* a
// little speed for a little quality. This is the Fig. 6 ablation as a
// runnable program.
//
//	go run ./examples/webgraph
package main

import (
	"fmt"
	"log"
	"time"

	brics "repro"
)

func main() {
	const n = 24000
	g := brics.GenerateWeb(n, 5)
	fmt.Printf("web graph: %d pages, %d links\n", g.NumNodes(), g.NumEdges())

	exact := brics.ExactFarness(g, 0)

	start := time.Now()
	baseline := brics.RandomSampling(g, 0.4, 0, 1)
	baseTime := time.Since(start)
	fmt.Printf("%-22s %10v  quality %.4f  speedup  1.00x\n",
		"random sampling", baseTime.Round(time.Millisecond), quality(baseline.Farness, exact))

	configs := []struct {
		name string
		tech brics.Technique
	}{
		{"C+R (chains+redundant)", brics.TechCR},
		{"I+C+R (+identical)", brics.TechICR},
		{"Cumulative (BRICS)", brics.TechCumulative},
	}
	for _, c := range configs {
		start = time.Now()
		res, err := brics.Estimate(g, brics.Options{
			Techniques:     c.tech,
			SampleFraction: 0.4,
			Seed:           1,
		})
		if err != nil {
			log.Fatal(err)
		}
		dur := time.Since(start)
		fmt.Printf("%-22s %10v  quality %.4f  speedup %5.2fx  (reduced to %d nodes, %d blocks)\n",
			c.name, dur.Round(time.Millisecond), quality(res.Farness, exact),
			float64(baseTime)/float64(dur), res.Stats.ReducedNodes, res.Stats.Blocks.Count)
	}

	// The two estimator variants (ablation beyond the paper).
	for _, kind := range []struct {
		name string
		k    brics.EstimatorKind
	}{{"estimator=weighted", brics.EstimatorWeighted}, {"estimator=paper", brics.EstimatorPaper}} {
		res, err := brics.Estimate(g, brics.Options{
			Techniques:     brics.TechCumulative,
			SampleFraction: 0.2,
			Seed:           1,
			Estimator:      kind.k,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s @20%%           quality %.4f\n", kind.name, quality(res.Farness, exact))
	}
}

func quality(est, actual []float64) float64 {
	var s float64
	for i := range est {
		s += est[i] / actual[i]
	}
	return s / float64(len(est))
}
