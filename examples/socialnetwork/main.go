// Social-network scenario (paper Section IV-C2b): find the most central
// users — e.g. seed users for an influence campaign — from estimated
// closeness centrality. Social graphs carry ~38% identical nodes (users
// following exactly the same accounts), so the I+C reduction plus the
// biconnected decomposition gives good estimates with a fraction of the
// traversals, and the top-k ranking it induces matches the exact ranking
// closely.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	brics "repro"
)

func main() {
	const n = 15000
	g := brics.GenerateSocial(n, 11)
	fmt.Printf("social graph: %d users, %d follow edges\n", g.NumNodes(), g.NumEdges())

	// The paper's social-class configuration: identical nodes + chains +
	// BiCC (redundant nodes are rare in this class, so R is skipped).
	start := time.Now()
	res, err := brics.Estimate(g, brics.Options{
		Techniques:     brics.TechBiCC | brics.TechIdentical | brics.TechChains,
		SampleFraction: 0.2,
		Seed:           3,
	})
	if err != nil {
		log.Fatal(err)
	}
	estTime := time.Since(start)

	closeness := brics.Closeness(res.Farness)
	top := rank(closeness, 10)

	fmt.Printf("estimated in %v using %d of %d traversals (%.0f%% of nodes sampled exactly)\n",
		estTime.Round(time.Millisecond), res.Stats.Samples, g.NumNodes(),
		100*float64(res.Stats.Samples)/float64(g.NumNodes()))
	fmt.Printf("reductions: %d identical, %d chain nodes removed; %d biconnected components (largest %d)\n",
		res.Stats.Reduction.IdenticalNodes, res.Stats.Reduction.ChainNodes,
		res.Stats.Blocks.Count, res.Stats.Blocks.Max)

	// Validate the ranking against the exact top-10.
	exact := brics.ExactFarness(g, 0)
	exactTop := rank(brics.Closeness(exact), 10)
	fmt.Println("top influencers (estimated closeness | exact rank position):")
	for i, v := range top {
		exactPos := -1
		for j, w := range exactTop {
			if v == w {
				exactPos = j
			}
		}
		fmt.Printf("  %2d. user %6d  closeness %.3e  exact-rank %d\n", i+1, v, closeness[v], exactPos+1)
	}
	fmt.Printf("top-10 overlap with exact ranking: %d/10\n", overlap(top, exactTop))
}

func rank(score []float64, k int) []int {
	ord := make([]int, len(score))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(i, j int) bool { return score[ord[i]] > score[ord[j]] })
	if k > len(ord) {
		k = len(ord)
	}
	return ord[:k]
}

func overlap(a, b []int) int {
	set := map[int]bool{}
	for _, x := range a {
		set[x] = true
	}
	n := 0
	for _, x := range b {
		if set[x] {
			n++
		}
	}
	return n
}
