// Quickstart: build a small graph, estimate farness with the full BRICS
// pipeline, and compare against the exact values.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	brics "repro"
)

func main() {
	// A toy network: a dense core (0-3), a twin pair (4,5), a chain
	// (6-7-8) and a pendant triangle — one instance of every structure
	// BRICS exploits.
	g := brics.FromEdges(12, [][2]brics.NodeID{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, // core K4
		{4, 0}, {4, 1}, {5, 0}, {5, 1}, // twins 4,5
		{3, 6}, {6, 7}, {7, 8}, // dangling chain
		{2, 9}, {9, 10}, {10, 11}, {11, 9}, // triangle on a stalk
	})

	res, err := brics.Estimate(g, brics.Options{
		Techniques:     brics.TechCumulative, // B+R+I+C (+S)
		SampleFraction: 0.5,
		Seed:           42,
	})
	if err != nil {
		log.Fatal(err)
	}

	exact := brics.ExactFarness(g, 0)
	fmt.Println("node  estimate    exact  flagged-exact")
	for v := range res.Farness {
		fmt.Printf("%4d  %8.1f  %7.1f  %v\n", v, res.Farness[v], exact[v], res.Exact[v])
	}
	s := res.Stats
	fmt.Printf("\nreduced %d -> %d nodes; %d twin, %d chain, %d redundant nodes removed; %d blocks; %d samples\n",
		g.NumNodes(), s.ReducedNodes,
		s.Reduction.IdenticalNodes, s.Reduction.ChainNodes, s.Reduction.RedundantNodes,
		s.Blocks.Count, s.Samples)
}
