// Road-network scenario (paper Section IV-C2d): road graphs are 70–85%
// degree-1/2 nodes, so the chain contraction does almost all the work and
// the biconnected decomposition is cheap but unnecessary. This example
// generates a road-like graph, runs the chain-only configuration (the
// paper's recommendation for this class), and reports speedup and quality
// against both the exact oracle and the random-sampling baseline — e.g.
// for picking depot locations with the best average drive distance.
//
//	go run ./examples/roadnetwork
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	brics "repro"
)

func main() {
	const n = 20000
	g := brics.GenerateRoad(n, 7)
	fmt.Printf("road network: %d junctions+segments, %d edges\n", g.NumNodes(), g.NumEdges())

	// Ground truth (expensive: one BFS per node).
	start := time.Now()
	exact := brics.ExactFarness(g, 0)
	exactTime := time.Since(start)

	// Baseline: uniform sampling at 30%.
	start = time.Now()
	baseline := brics.RandomSampling(g, 0.3, 0, 1)
	baselineTime := time.Since(start)

	// BRICS, chain-contraction only (CS), 30% of the *reduced* graph.
	start = time.Now()
	res, err := brics.Estimate(g, brics.Options{
		Techniques:     brics.TechChains,
		SampleFraction: 0.3,
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}
	bricsTime := time.Since(start)

	fmt.Printf("exact:    %v\n", exactTime.Round(time.Millisecond))
	fmt.Printf("random:   %v  quality %.4f\n", baselineTime.Round(time.Millisecond), quality(baseline.Farness, exact))
	fmt.Printf("BRICS CS: %v  quality %.4f  speedup over random %.2fx\n",
		bricsTime.Round(time.Millisecond), quality(res.Farness, exact),
		float64(baselineTime)/float64(bricsTime))
	fmt.Printf("reduction: %d -> %d nodes (%d chain nodes contracted)\n",
		g.NumNodes(), res.Stats.ReducedNodes, res.Stats.Reduction.ChainNodes)

	// Depot placement: the 5 most central locations.
	type depot struct {
		node brics.NodeID
		far  float64
	}
	var ds []depot
	for v, f := range res.Farness {
		ds = append(ds, depot{brics.NodeID(v), f})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].far < ds[j].far })
	fmt.Println("best depot candidates (lowest average distance):")
	for _, d := range ds[:5] {
		fmt.Printf("  junction %6d  avg distance %.1f\n", d.node, d.far/float64(g.NumNodes()-1))
	}
}

func quality(est, actual []float64) float64 {
	var s float64
	for i := range est {
		s += est[i] / actual[i]
	}
	return s / float64(len(est))
}
