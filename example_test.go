package brics_test

import (
	"fmt"

	brics "repro"
)

// The basic flow: build a graph, estimate farness, read values.
func ExampleEstimate() {
	// A path 0-1-2-3-4 with a hub: farness is exact here because the
	// whole graph reduces away.
	g := brics.FromEdges(5, [][2]brics.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	res, err := brics.Estimate(g, brics.Options{
		Techniques:     brics.TechCumulative,
		SampleFraction: 0.5,
		Seed:           1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Farness[2], res.Exact[2])
	// Output: 6 true
}

// Exact computation for ground truth.
func ExampleExactFarness() {
	g := brics.FromEdges(4, [][2]brics.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	far := brics.ExactFarness(g, 1)
	fmt.Println(far)
	// Output: [4 4 4 4]
}

// Closeness is the inverse of farness.
func ExampleCloseness() {
	fmt.Println(brics.Closeness([]float64{4, 2}))
	// Output: [0.25 0.5]
}

// Verified top-k: exact values for the k most central nodes without
// computing everything exactly.
func ExampleTopKCloseness() {
	g := brics.FromEdges(7, [][2]brics.NodeID{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, // star: 0 is most central
		{1, 2}, {3, 4},
	})
	res, err := brics.TopKCloseness(g, 1, brics.TopKOptions{
		Estimate: brics.Options{SampleFraction: 0.5, Seed: 1},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Nodes[0], res.Farness[0])
	// Output: 0 6
}

// Maintaining farness under edge insertions.
func ExampleDynamicIndex() {
	g := brics.FromEdges(4, [][2]brics.NodeID{{0, 1}, {1, 2}, {2, 3}})
	ix, err := brics.NewDynamicIndex(g, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(ix.Farness(0))
	if err := ix.AddEdge(0, 3); err != nil {
		panic(err)
	}
	fmt.Println(ix.Farness(0))
	// Output:
	// 6
	// 4
}
