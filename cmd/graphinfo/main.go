// Command graphinfo characterises a graph the way the paper's Section
// IV-C2 characterises its classes: degrees, chains, twins, redundant
// nodes, biconnected structure, clustering and diameter — and recommends a
// BRICS technique configuration based on the same per-class rules the
// paper derives.
//
//	graphinfo -input graph.txt            (also .mtx, .gr, .bricsbin, .gz)
//	graphinfo -dataset soc-douban
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/bicc"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	repro_io "repro/internal/io"
	"repro/internal/reduce"
)

func main() {
	var (
		input   = flag.String("input", "", "input graph file")
		dataset = flag.String("dataset", "", "synthetic dataset name")
		scale   = flag.Float64("scale", 1.0, "dataset scale")
		seed    = flag.Int64("seed", 1, "seed for sampled statistics")
		workers = flag.Int("workers", 0, "worker goroutines for reduction and BiCC (0 = GOMAXPROCS)")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	var name string
	switch {
	case *input != "":
		g, err = repro_io.ReadAny(*input)
		name = *input
	case *dataset != "":
		ds, ok := gen.ByName(*dataset, *scale)
		if !ok {
			err = fmt.Errorf("unknown dataset %q", *dataset)
		} else {
			g = ds.Build()
			name = ds.Name
		}
	default:
		err = fmt.Errorf("one of -input or -dataset is required")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphinfo:", err)
		os.Exit(1)
	}
	if !graph.IsConnected(g) {
		fmt.Println("note: graph disconnected; connecting with bridge edges for analysis")
		g = graph.Connect(g)
	}

	s := analysis.Summarize(g, *seed)
	fmt.Printf("graph %s\n", name)
	fmt.Printf("  nodes %d, edges %d, mean degree %.2f (min %d, max %d)\n",
		s.Nodes, s.Edges, s.MeanDeg, s.MinDeg, s.MaxDeg)
	fmt.Printf("  degree-1 nodes %.1f%%, degree-2 nodes %.1f%%\n", 100*s.Deg1Frac, 100*s.Deg2Frac)
	fmt.Printf("  clustering: global %.4f, avg local %.4f\n", s.GlobalClustering, s.AvgLocalClust)
	fmt.Printf("  diameter in [%d, %d], effective (90th pct) %.0f\n",
		s.DiameterLower, s.DiameterUpper, s.EffectiveDiam)

	ropts := reduce.All()
	ropts.Workers = *workers
	red, err := reduce.Run(g, ropts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphinfo:", err)
		os.Exit(1)
	}
	rs := red.Stats
	n := float64(g.NumNodes())
	fmt.Printf("  BRICS structure: identical %.1f%%, chain %.1f%%, redundant %.1f%% -> reduced to %d nodes (%.1f%%)\n",
		100*float64(rs.IdenticalNodes)/n, 100*float64(rs.ChainNodes)/n,
		100*float64(rs.RedundantNodes)/n,
		red.G.NumNodes(), 100*float64(red.G.NumNodes())/n)
	d := bicc.DecomposeWorkers(red.G, *workers)
	bs := d.Summarize()
	maxFrac := 0.0
	if red.G.NumNodes() > 0 {
		maxFrac = float64(bs.Max) / float64(red.G.NumNodes())
	}
	fmt.Printf("  reduced-graph BiCCs: %d (largest %.0f%% of reduced nodes)\n", bs.Count, 100*maxFrac)

	fmt.Printf("  recommended techniques: %s\n", recommend(rs, n, maxFrac))
}

// recommend applies the paper's per-class guidance (Section IV-C2): skip I
// when twins are rare, skip R when redundant nodes are rare, and skip the
// BiCC decomposition when one block dominates the reduced graph.
func recommend(rs reduce.Stats, n, maxBlockFrac float64) core.Technique {
	var t core.Technique = core.TechChains
	if float64(rs.IdenticalNodes)/n > 0.02 {
		t |= core.TechIdentical
	}
	if float64(rs.RedundantNodes)/n > 0.005 {
		t |= core.TechRedundant
	}
	if maxBlockFrac < 0.7 {
		t |= core.TechBiCC
	}
	return t
}
